
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_acr_schemes.cpp" "tests/CMakeFiles/acr_tests.dir/test_acr_schemes.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/test_acr_schemes.cpp.o.d"
  "/root/repo/tests/test_apps.cpp" "tests/CMakeFiles/acr_tests.dir/test_apps.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/test_apps.cpp.o.d"
  "/root/repo/tests/test_checksum.cpp" "tests/CMakeFiles/acr_tests.dir/test_checksum.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/test_checksum.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/acr_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/acr_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_control_flows.cpp" "tests/CMakeFiles/acr_tests.dir/test_control_flows.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/test_control_flows.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/acr_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/acr_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_failure.cpp" "tests/CMakeFiles/acr_tests.dir/test_failure.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/test_failure.cpp.o.d"
  "/root/repo/tests/test_fuzz_faults.cpp" "tests/CMakeFiles/acr_tests.dir/test_fuzz_faults.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/test_fuzz_faults.cpp.o.d"
  "/root/repo/tests/test_integration_smoke.cpp" "tests/CMakeFiles/acr_tests.dir/test_integration_smoke.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/test_integration_smoke.cpp.o.d"
  "/root/repo/tests/test_model.cpp" "tests/CMakeFiles/acr_tests.dir/test_model.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/test_model.cpp.o.d"
  "/root/repo/tests/test_more_protocol.cpp" "tests/CMakeFiles/acr_tests.dir/test_more_protocol.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/test_more_protocol.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/acr_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_predictor.cpp" "tests/CMakeFiles/acr_tests.dir/test_predictor.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/test_predictor.cpp.o.d"
  "/root/repo/tests/test_pup.cpp" "tests/CMakeFiles/acr_tests.dir/test_pup.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/test_pup.cpp.o.d"
  "/root/repo/tests/test_rt.cpp" "tests/CMakeFiles/acr_tests.dir/test_rt.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/test_rt.cpp.o.d"
  "/root/repo/tests/test_semi_blocking.cpp" "tests/CMakeFiles/acr_tests.dir/test_semi_blocking.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/test_semi_blocking.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/acr_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/acr_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/test_topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/acr/CMakeFiles/acr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/acr_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/acr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/acr_model.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/acr_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/acr_failure.dir/DependInfo.cmake"
  "/root/repo/build/src/pup/CMakeFiles/acr_pup.dir/DependInfo.cmake"
  "/root/repo/build/src/checksum/CMakeFiles/acr_checksum.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/acr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/acr_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
