# Empty compiler generated dependencies file for acr_tests.
# This may be replaced when dependencies are built.
