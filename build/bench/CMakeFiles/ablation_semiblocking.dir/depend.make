# Empty dependencies file for ablation_semiblocking.
# This may be replaced when dependencies are built.
