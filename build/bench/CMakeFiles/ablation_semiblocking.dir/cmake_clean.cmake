file(REMOVE_RECURSE
  "CMakeFiles/ablation_semiblocking.dir/ablation_semiblocking.cpp.o"
  "CMakeFiles/ablation_semiblocking.dir/ablation_semiblocking.cpp.o.d"
  "ablation_semiblocking"
  "ablation_semiblocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_semiblocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
