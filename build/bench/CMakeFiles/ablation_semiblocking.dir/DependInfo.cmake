
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_semiblocking.cpp" "bench/CMakeFiles/ablation_semiblocking.dir/ablation_semiblocking.cpp.o" "gcc" "bench/CMakeFiles/ablation_semiblocking.dir/ablation_semiblocking.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/acr/CMakeFiles/acr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/acr_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/acr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/acr_model.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/acr_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/acr_failure.dir/DependInfo.cmake"
  "/root/repo/build/src/pup/CMakeFiles/acr_pup.dir/DependInfo.cmake"
  "/root/repo/build/src/checksum/CMakeFiles/acr_checksum.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/acr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/acr_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
