# Empty compiler generated dependencies file for ablation_consensus.
# This may be replaced when dependencies are built.
