file(REMOVE_RECURSE
  "CMakeFiles/ablation_consensus.dir/ablation_consensus.cpp.o"
  "CMakeFiles/ablation_consensus.dir/ablation_consensus.cpp.o.d"
  "ablation_consensus"
  "ablation_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
