file(REMOVE_RECURSE
  "CMakeFiles/fig7_model.dir/fig7_model.cpp.o"
  "CMakeFiles/fig7_model.dir/fig7_model.cpp.o.d"
  "fig7_model"
  "fig7_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
