# Empty dependencies file for fig10_restart_overhead.
# This may be replaced when dependencies are built.
