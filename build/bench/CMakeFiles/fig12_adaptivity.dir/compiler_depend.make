# Empty compiler generated dependencies file for fig12_adaptivity.
# This may be replaced when dependencies are built.
