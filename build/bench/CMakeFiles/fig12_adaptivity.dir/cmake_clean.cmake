file(REMOVE_RECURSE
  "CMakeFiles/fig12_adaptivity.dir/fig12_adaptivity.cpp.o"
  "CMakeFiles/fig12_adaptivity.dir/fig12_adaptivity.cpp.o.d"
  "fig12_adaptivity"
  "fig12_adaptivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_adaptivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
