# Empty compiler generated dependencies file for fig1_surfaces.
# This may be replaced when dependencies are built.
