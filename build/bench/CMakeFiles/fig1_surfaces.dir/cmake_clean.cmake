file(REMOVE_RECURSE
  "CMakeFiles/fig1_surfaces.dir/fig1_surfaces.cpp.o"
  "CMakeFiles/fig1_surfaces.dir/fig1_surfaces.cpp.o.d"
  "fig1_surfaces"
  "fig1_surfaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_surfaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
