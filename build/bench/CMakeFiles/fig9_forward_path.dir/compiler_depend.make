# Empty compiler generated dependencies file for fig9_forward_path.
# This may be replaced when dependencies are built.
