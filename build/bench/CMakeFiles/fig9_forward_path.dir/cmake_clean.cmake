file(REMOVE_RECURSE
  "CMakeFiles/fig9_forward_path.dir/fig9_forward_path.cpp.o"
  "CMakeFiles/fig9_forward_path.dir/fig9_forward_path.cpp.o.d"
  "fig9_forward_path"
  "fig9_forward_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_forward_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
