# Empty dependencies file for fig6_mapping_loads.
# This may be replaced when dependencies are built.
