file(REMOVE_RECURSE
  "CMakeFiles/fig6_mapping_loads.dir/fig6_mapping_loads.cpp.o"
  "CMakeFiles/fig6_mapping_loads.dir/fig6_mapping_loads.cpp.o.d"
  "fig6_mapping_loads"
  "fig6_mapping_loads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_mapping_loads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
