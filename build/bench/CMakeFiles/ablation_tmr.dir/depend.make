# Empty dependencies file for ablation_tmr.
# This may be replaced when dependencies are built.
