file(REMOVE_RECURSE
  "CMakeFiles/ablation_tmr.dir/ablation_tmr.cpp.o"
  "CMakeFiles/ablation_tmr.dir/ablation_tmr.cpp.o.d"
  "ablation_tmr"
  "ablation_tmr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tmr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
