# Empty compiler generated dependencies file for fig8_checkpoint_overhead.
# This may be replaced when dependencies are built.
