# Empty compiler generated dependencies file for acr_pup.
# This may be replaced when dependencies are built.
