file(REMOVE_RECURSE
  "CMakeFiles/acr_pup.dir/checker.cpp.o"
  "CMakeFiles/acr_pup.dir/checker.cpp.o.d"
  "CMakeFiles/acr_pup.dir/pup.cpp.o"
  "CMakeFiles/acr_pup.dir/pup.cpp.o.d"
  "CMakeFiles/acr_pup.dir/storage.cpp.o"
  "CMakeFiles/acr_pup.dir/storage.cpp.o.d"
  "libacr_pup.a"
  "libacr_pup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acr_pup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
