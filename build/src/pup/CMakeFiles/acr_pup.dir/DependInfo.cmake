
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pup/checker.cpp" "src/pup/CMakeFiles/acr_pup.dir/checker.cpp.o" "gcc" "src/pup/CMakeFiles/acr_pup.dir/checker.cpp.o.d"
  "/root/repo/src/pup/pup.cpp" "src/pup/CMakeFiles/acr_pup.dir/pup.cpp.o" "gcc" "src/pup/CMakeFiles/acr_pup.dir/pup.cpp.o.d"
  "/root/repo/src/pup/storage.cpp" "src/pup/CMakeFiles/acr_pup.dir/storage.cpp.o" "gcc" "src/pup/CMakeFiles/acr_pup.dir/storage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/acr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/checksum/CMakeFiles/acr_checksum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
