file(REMOVE_RECURSE
  "libacr_pup.a"
)
