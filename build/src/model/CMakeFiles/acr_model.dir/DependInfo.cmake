
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/acr_model.cpp" "src/model/CMakeFiles/acr_model.dir/acr_model.cpp.o" "gcc" "src/model/CMakeFiles/acr_model.dir/acr_model.cpp.o.d"
  "/root/repo/src/model/params.cpp" "src/model/CMakeFiles/acr_model.dir/params.cpp.o" "gcc" "src/model/CMakeFiles/acr_model.dir/params.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/acr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/acr_failure.dir/DependInfo.cmake"
  "/root/repo/build/src/pup/CMakeFiles/acr_pup.dir/DependInfo.cmake"
  "/root/repo/build/src/checksum/CMakeFiles/acr_checksum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
