# Empty compiler generated dependencies file for acr_model.
# This may be replaced when dependencies are built.
