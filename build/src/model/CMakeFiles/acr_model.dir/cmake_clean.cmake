file(REMOVE_RECURSE
  "CMakeFiles/acr_model.dir/acr_model.cpp.o"
  "CMakeFiles/acr_model.dir/acr_model.cpp.o.d"
  "CMakeFiles/acr_model.dir/params.cpp.o"
  "CMakeFiles/acr_model.dir/params.cpp.o.d"
  "libacr_model.a"
  "libacr_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acr_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
