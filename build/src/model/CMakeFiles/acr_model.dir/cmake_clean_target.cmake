file(REMOVE_RECURSE
  "libacr_model.a"
)
