file(REMOVE_RECURSE
  "libacr_net.a"
)
