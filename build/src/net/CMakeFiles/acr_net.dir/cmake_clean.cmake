file(REMOVE_RECURSE
  "CMakeFiles/acr_net.dir/link_load.cpp.o"
  "CMakeFiles/acr_net.dir/link_load.cpp.o.d"
  "libacr_net.a"
  "libacr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
