# Empty dependencies file for acr_net.
# This may be replaced when dependencies are built.
