# Empty compiler generated dependencies file for acr_apps.
# This may be replaced when dependencies are built.
