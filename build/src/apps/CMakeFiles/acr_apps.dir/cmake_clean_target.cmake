file(REMOVE_RECURSE
  "libacr_apps.a"
)
