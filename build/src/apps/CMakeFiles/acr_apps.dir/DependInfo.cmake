
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/hpccg.cpp" "src/apps/CMakeFiles/acr_apps.dir/hpccg.cpp.o" "gcc" "src/apps/CMakeFiles/acr_apps.dir/hpccg.cpp.o.d"
  "/root/repo/src/apps/iterative.cpp" "src/apps/CMakeFiles/acr_apps.dir/iterative.cpp.o" "gcc" "src/apps/CMakeFiles/acr_apps.dir/iterative.cpp.o.d"
  "/root/repo/src/apps/jacobi3d.cpp" "src/apps/CMakeFiles/acr_apps.dir/jacobi3d.cpp.o" "gcc" "src/apps/CMakeFiles/acr_apps.dir/jacobi3d.cpp.o.d"
  "/root/repo/src/apps/leanmd.cpp" "src/apps/CMakeFiles/acr_apps.dir/leanmd.cpp.o" "gcc" "src/apps/CMakeFiles/acr_apps.dir/leanmd.cpp.o.d"
  "/root/repo/src/apps/minilulesh.cpp" "src/apps/CMakeFiles/acr_apps.dir/minilulesh.cpp.o" "gcc" "src/apps/CMakeFiles/acr_apps.dir/minilulesh.cpp.o.d"
  "/root/repo/src/apps/minimd.cpp" "src/apps/CMakeFiles/acr_apps.dir/minimd.cpp.o" "gcc" "src/apps/CMakeFiles/acr_apps.dir/minimd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/acr_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/pup/CMakeFiles/acr_pup.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/checksum/CMakeFiles/acr_checksum.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/acr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/acr_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
