file(REMOVE_RECURSE
  "CMakeFiles/acr_apps.dir/hpccg.cpp.o"
  "CMakeFiles/acr_apps.dir/hpccg.cpp.o.d"
  "CMakeFiles/acr_apps.dir/iterative.cpp.o"
  "CMakeFiles/acr_apps.dir/iterative.cpp.o.d"
  "CMakeFiles/acr_apps.dir/jacobi3d.cpp.o"
  "CMakeFiles/acr_apps.dir/jacobi3d.cpp.o.d"
  "CMakeFiles/acr_apps.dir/leanmd.cpp.o"
  "CMakeFiles/acr_apps.dir/leanmd.cpp.o.d"
  "CMakeFiles/acr_apps.dir/minilulesh.cpp.o"
  "CMakeFiles/acr_apps.dir/minilulesh.cpp.o.d"
  "CMakeFiles/acr_apps.dir/minimd.cpp.o"
  "CMakeFiles/acr_apps.dir/minimd.cpp.o.d"
  "libacr_apps.a"
  "libacr_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acr_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
