file(REMOVE_RECURSE
  "CMakeFiles/acr_sim.dir/lifetime.cpp.o"
  "CMakeFiles/acr_sim.dir/lifetime.cpp.o.d"
  "CMakeFiles/acr_sim.dir/phase_model.cpp.o"
  "CMakeFiles/acr_sim.dir/phase_model.cpp.o.d"
  "libacr_sim.a"
  "libacr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
