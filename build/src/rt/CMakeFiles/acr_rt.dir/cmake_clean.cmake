file(REMOVE_RECURSE
  "CMakeFiles/acr_rt.dir/cluster.cpp.o"
  "CMakeFiles/acr_rt.dir/cluster.cpp.o.d"
  "CMakeFiles/acr_rt.dir/engine.cpp.o"
  "CMakeFiles/acr_rt.dir/engine.cpp.o.d"
  "CMakeFiles/acr_rt.dir/node.cpp.o"
  "CMakeFiles/acr_rt.dir/node.cpp.o.d"
  "libacr_rt.a"
  "libacr_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acr_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
