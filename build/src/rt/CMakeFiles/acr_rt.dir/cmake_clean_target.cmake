file(REMOVE_RECURSE
  "libacr_rt.a"
)
