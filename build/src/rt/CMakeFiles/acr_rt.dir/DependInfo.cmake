
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/cluster.cpp" "src/rt/CMakeFiles/acr_rt.dir/cluster.cpp.o" "gcc" "src/rt/CMakeFiles/acr_rt.dir/cluster.cpp.o.d"
  "/root/repo/src/rt/engine.cpp" "src/rt/CMakeFiles/acr_rt.dir/engine.cpp.o" "gcc" "src/rt/CMakeFiles/acr_rt.dir/engine.cpp.o.d"
  "/root/repo/src/rt/node.cpp" "src/rt/CMakeFiles/acr_rt.dir/node.cpp.o" "gcc" "src/rt/CMakeFiles/acr_rt.dir/node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/acr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pup/CMakeFiles/acr_pup.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/acr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/acr_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/checksum/CMakeFiles/acr_checksum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
