# Empty compiler generated dependencies file for acr_rt.
# This may be replaced when dependencies are built.
