file(REMOVE_RECURSE
  "CMakeFiles/acr_common.dir/cli.cpp.o"
  "CMakeFiles/acr_common.dir/cli.cpp.o.d"
  "CMakeFiles/acr_common.dir/logging.cpp.o"
  "CMakeFiles/acr_common.dir/logging.cpp.o.d"
  "CMakeFiles/acr_common.dir/stats.cpp.o"
  "CMakeFiles/acr_common.dir/stats.cpp.o.d"
  "CMakeFiles/acr_common.dir/table.cpp.o"
  "CMakeFiles/acr_common.dir/table.cpp.o.d"
  "libacr_common.a"
  "libacr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
