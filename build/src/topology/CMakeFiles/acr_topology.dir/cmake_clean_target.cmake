file(REMOVE_RECURSE
  "libacr_topology.a"
)
