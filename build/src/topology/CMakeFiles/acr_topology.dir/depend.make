# Empty dependencies file for acr_topology.
# This may be replaced when dependencies are built.
