file(REMOVE_RECURSE
  "CMakeFiles/acr_topology.dir/mapping.cpp.o"
  "CMakeFiles/acr_topology.dir/mapping.cpp.o.d"
  "CMakeFiles/acr_topology.dir/torus.cpp.o"
  "CMakeFiles/acr_topology.dir/torus.cpp.o.d"
  "libacr_topology.a"
  "libacr_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acr_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
