file(REMOVE_RECURSE
  "CMakeFiles/acr_failure.dir/adaptive_interval.cpp.o"
  "CMakeFiles/acr_failure.dir/adaptive_interval.cpp.o.d"
  "CMakeFiles/acr_failure.dir/distributions.cpp.o"
  "CMakeFiles/acr_failure.dir/distributions.cpp.o.d"
  "CMakeFiles/acr_failure.dir/estimator.cpp.o"
  "CMakeFiles/acr_failure.dir/estimator.cpp.o.d"
  "CMakeFiles/acr_failure.dir/injector.cpp.o"
  "CMakeFiles/acr_failure.dir/injector.cpp.o.d"
  "libacr_failure.a"
  "libacr_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acr_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
