
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/failure/adaptive_interval.cpp" "src/failure/CMakeFiles/acr_failure.dir/adaptive_interval.cpp.o" "gcc" "src/failure/CMakeFiles/acr_failure.dir/adaptive_interval.cpp.o.d"
  "/root/repo/src/failure/distributions.cpp" "src/failure/CMakeFiles/acr_failure.dir/distributions.cpp.o" "gcc" "src/failure/CMakeFiles/acr_failure.dir/distributions.cpp.o.d"
  "/root/repo/src/failure/estimator.cpp" "src/failure/CMakeFiles/acr_failure.dir/estimator.cpp.o" "gcc" "src/failure/CMakeFiles/acr_failure.dir/estimator.cpp.o.d"
  "/root/repo/src/failure/injector.cpp" "src/failure/CMakeFiles/acr_failure.dir/injector.cpp.o" "gcc" "src/failure/CMakeFiles/acr_failure.dir/injector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/acr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pup/CMakeFiles/acr_pup.dir/DependInfo.cmake"
  "/root/repo/build/src/checksum/CMakeFiles/acr_checksum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
