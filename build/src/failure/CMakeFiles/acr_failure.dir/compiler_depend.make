# Empty compiler generated dependencies file for acr_failure.
# This may be replaced when dependencies are built.
