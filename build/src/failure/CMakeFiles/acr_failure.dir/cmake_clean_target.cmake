file(REMOVE_RECURSE
  "libacr_failure.a"
)
