file(REMOVE_RECURSE
  "CMakeFiles/acr_core.dir/config.cpp.o"
  "CMakeFiles/acr_core.dir/config.cpp.o.d"
  "CMakeFiles/acr_core.dir/manager.cpp.o"
  "CMakeFiles/acr_core.dir/manager.cpp.o.d"
  "CMakeFiles/acr_core.dir/node_agent.cpp.o"
  "CMakeFiles/acr_core.dir/node_agent.cpp.o.d"
  "CMakeFiles/acr_core.dir/predictor.cpp.o"
  "CMakeFiles/acr_core.dir/predictor.cpp.o.d"
  "CMakeFiles/acr_core.dir/runtime.cpp.o"
  "CMakeFiles/acr_core.dir/runtime.cpp.o.d"
  "CMakeFiles/acr_core.dir/stats.cpp.o"
  "CMakeFiles/acr_core.dir/stats.cpp.o.d"
  "libacr_core.a"
  "libacr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
