# Empty compiler generated dependencies file for acr_core.
# This may be replaced when dependencies are built.
