
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/acr/config.cpp" "src/acr/CMakeFiles/acr_core.dir/config.cpp.o" "gcc" "src/acr/CMakeFiles/acr_core.dir/config.cpp.o.d"
  "/root/repo/src/acr/manager.cpp" "src/acr/CMakeFiles/acr_core.dir/manager.cpp.o" "gcc" "src/acr/CMakeFiles/acr_core.dir/manager.cpp.o.d"
  "/root/repo/src/acr/node_agent.cpp" "src/acr/CMakeFiles/acr_core.dir/node_agent.cpp.o" "gcc" "src/acr/CMakeFiles/acr_core.dir/node_agent.cpp.o.d"
  "/root/repo/src/acr/predictor.cpp" "src/acr/CMakeFiles/acr_core.dir/predictor.cpp.o" "gcc" "src/acr/CMakeFiles/acr_core.dir/predictor.cpp.o.d"
  "/root/repo/src/acr/runtime.cpp" "src/acr/CMakeFiles/acr_core.dir/runtime.cpp.o" "gcc" "src/acr/CMakeFiles/acr_core.dir/runtime.cpp.o.d"
  "/root/repo/src/acr/stats.cpp" "src/acr/CMakeFiles/acr_core.dir/stats.cpp.o" "gcc" "src/acr/CMakeFiles/acr_core.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/acr_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/acr_failure.dir/DependInfo.cmake"
  "/root/repo/build/src/checksum/CMakeFiles/acr_checksum.dir/DependInfo.cmake"
  "/root/repo/build/src/pup/CMakeFiles/acr_pup.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/acr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/acr_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
