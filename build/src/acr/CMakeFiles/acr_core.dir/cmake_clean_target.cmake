file(REMOVE_RECURSE
  "libacr_core.a"
)
