file(REMOVE_RECURSE
  "CMakeFiles/acr_checksum.dir/crc32c.cpp.o"
  "CMakeFiles/acr_checksum.dir/crc32c.cpp.o.d"
  "CMakeFiles/acr_checksum.dir/fletcher.cpp.o"
  "CMakeFiles/acr_checksum.dir/fletcher.cpp.o.d"
  "libacr_checksum.a"
  "libacr_checksum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acr_checksum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
