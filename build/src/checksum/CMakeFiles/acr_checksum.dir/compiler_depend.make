# Empty compiler generated dependencies file for acr_checksum.
# This may be replaced when dependencies are built.
