file(REMOVE_RECURSE
  "libacr_checksum.a"
)
