
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checksum/crc32c.cpp" "src/checksum/CMakeFiles/acr_checksum.dir/crc32c.cpp.o" "gcc" "src/checksum/CMakeFiles/acr_checksum.dir/crc32c.cpp.o.d"
  "/root/repo/src/checksum/fletcher.cpp" "src/checksum/CMakeFiles/acr_checksum.dir/fletcher.cpp.o" "gcc" "src/checksum/CMakeFiles/acr_checksum.dir/fletcher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/acr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
