# Empty compiler generated dependencies file for acr_driver.
# This may be replaced when dependencies are built.
