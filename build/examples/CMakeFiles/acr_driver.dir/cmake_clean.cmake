file(REMOVE_RECURSE
  "CMakeFiles/acr_driver.dir/acr_driver.cpp.o"
  "CMakeFiles/acr_driver.dir/acr_driver.cpp.o.d"
  "acr_driver"
  "acr_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acr_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
