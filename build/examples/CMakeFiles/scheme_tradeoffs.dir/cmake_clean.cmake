file(REMOVE_RECURSE
  "CMakeFiles/scheme_tradeoffs.dir/scheme_tradeoffs.cpp.o"
  "CMakeFiles/scheme_tradeoffs.dir/scheme_tradeoffs.cpp.o.d"
  "scheme_tradeoffs"
  "scheme_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheme_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
