# Empty compiler generated dependencies file for scheme_tradeoffs.
# This may be replaced when dependencies are built.
