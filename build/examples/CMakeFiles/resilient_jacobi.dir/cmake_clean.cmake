file(REMOVE_RECURSE
  "CMakeFiles/resilient_jacobi.dir/resilient_jacobi.cpp.o"
  "CMakeFiles/resilient_jacobi.dir/resilient_jacobi.cpp.o.d"
  "resilient_jacobi"
  "resilient_jacobi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilient_jacobi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
