# Empty compiler generated dependencies file for resilient_jacobi.
# This may be replaced when dependencies are built.
