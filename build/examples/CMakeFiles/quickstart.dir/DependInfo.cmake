
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/acr/CMakeFiles/acr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/acr_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/acr_failure.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/acr_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/acr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/acr_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/pup/CMakeFiles/acr_pup.dir/DependInfo.cmake"
  "/root/repo/build/src/checksum/CMakeFiles/acr_checksum.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
