file(REMOVE_RECURSE
  "CMakeFiles/adaptive_md.dir/adaptive_md.cpp.o"
  "CMakeFiles/adaptive_md.dir/adaptive_md.cpp.o.d"
  "adaptive_md"
  "adaptive_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
