# Empty compiler generated dependencies file for adaptive_md.
# This may be replaced when dependencies are built.
