// Durable checkpoint storage — moved to the ckpt layer.
//
// The vault is part of the pluggable checkpoint-redundancy subsystem now
// (src/ckpt/vault.h, the FILE tier under ckpt::Store). This shim keeps the
// historical include path and acr::pup spellings compiling.
#pragma once

#include "ckpt/vault.h"

namespace acr::pup {

using StoredImage = ckpt::StoredImage;
using CheckpointVault = ckpt::CheckpointVault;

}  // namespace acr::pup
