#include "pup/checker.h"

#include <cmath>
#include <cstring>
#include <vector>

namespace acr::pup {

namespace {

constexpr std::size_t kHeaderSize = sizeof(std::uint8_t) + sizeof(std::uint64_t);

/// Cursor over one self-describing stream.
class StreamCursor {
 public:
  explicit StreamCursor(std::span<const std::byte> s) : s_(s) {}

  bool done() const { return pos_ == s_.size(); }

  struct Record {
    Tag tag;
    std::uint64_t count;
    std::span<const std::byte> payload;
  };

  Record next(std::size_t elem_size_hint = 0) {
    (void)elem_size_hint;
    if (pos_ + kHeaderSize > s_.size())
      throw StreamError("malformed stream: truncated record header at offset " +
                        std::to_string(pos_));
    std::uint8_t t = 0;
    std::uint64_t n = 0;
    std::memcpy(&t, s_.data() + pos_, sizeof t);
    std::memcpy(&n, s_.data() + pos_ + sizeof t, sizeof n);
    pos_ += kHeaderSize;
    Tag tag = static_cast<Tag>(t);
    std::size_t payload = static_cast<std::size_t>(n) * payload_elem_size(tag);
    if (pos_ + payload > s_.size())
      throw StreamError("malformed stream: truncated payload at offset " +
                        std::to_string(pos_));
    Record r{tag, n, s_.subspan(pos_, payload)};
    pos_ += payload;
    return r;
  }

  static std::size_t payload_elem_size(Tag tag) {
    switch (tag) {
      case Tag::Bytes:
      case Tag::I8:
      case Tag::U8:
        return 1;
      case Tag::I16:
      case Tag::U16:
        return 2;
      case Tag::I32:
      case Tag::U32:
      case Tag::F32:
        return 4;
      case Tag::I64:
      case Tag::U64:
      case Tag::F64:
      case Tag::Size:
        return 8;
      case Tag::OptionsPush:
        return sizeof(CompareOptions);
      case Tag::OptionsPop:
        return 0;
    }
    throw StreamError("malformed stream: unknown record tag " +
                      std::to_string(static_cast<int>(tag)));
  }

 private:
  std::span<const std::byte> s_;
  std::size_t pos_ = 0;
};

template <typename F>
bool fp_equal(F a, F b, const CompareOptions& opts) {
  if (a == b) return true;  // also covers +0/-0
  if (std::isnan(a) && std::isnan(b)) return true;
  double diff = std::fabs(static_cast<double>(a) - static_cast<double>(b));
  if (opts.abs_tol > 0.0 && diff <= opts.abs_tol) return true;
  if (opts.rel_tol > 0.0) {
    double scale = std::max(std::fabs(static_cast<double>(a)),
                            std::fabs(static_cast<double>(b)));
    if (diff <= opts.rel_tol * scale) return true;
  }
  return false;
}

template <typename F>
std::size_t compare_fp_payload(std::span<const std::byte> a,
                               std::span<const std::byte> b,
                               const CompareOptions& opts, bool stop_at_first,
                               std::size_t* first_elem) {
  std::size_t n = a.size() / sizeof(F);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < n; ++i) {
    F va, vb;
    std::memcpy(&va, a.data() + i * sizeof(F), sizeof(F));
    std::memcpy(&vb, b.data() + i * sizeof(F), sizeof(F));
    if (!fp_equal(va, vb, opts)) {
      if (mismatches == 0) *first_elem = i;
      ++mismatches;
      if (stop_at_first) return mismatches;
    }
  }
  return mismatches;
}

std::size_t compare_raw_payload(std::span<const std::byte> a,
                                std::span<const std::byte> b,
                                std::size_t elem_size, bool stop_at_first,
                                std::size_t* first_elem) {
  if (std::memcmp(a.data(), b.data(), a.size()) == 0) return 0;
  std::size_t n = a.size() / elem_size;
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::memcmp(a.data() + i * elem_size, b.data() + i * elem_size,
                    elem_size) != 0) {
      if (mismatches == 0) *first_elem = i;
      ++mismatches;
      if (stop_at_first) return mismatches;
    }
  }
  return mismatches;
}

}  // namespace

CompareResult compare_streams(std::span<const std::byte> local,
                              std::span<const std::byte> remote,
                              const CheckerConfig& config) {
  CompareResult res;
  StreamCursor lc(local), rc(remote);
  std::vector<CompareOptions> option_stack{config.defaults};
  std::size_t record_index = 0;

  auto fail_structural = [&](const std::string& why) {
    res.match = false;
    res.mismatched_elements += 1;
    res.first.record_index = record_index;
    res.first.element_index = 0;
    res.first.detail = "structural divergence: " + why;
  };

  while (!lc.done() || !rc.done()) {
    if (lc.done() != rc.done()) {
      fail_structural("streams have different lengths");
      return res;
    }
    StreamCursor::Record a = lc.next();
    StreamCursor::Record b = rc.next();

    if (a.tag == Tag::OptionsPush && b.tag == Tag::OptionsPush) {
      CompareOptions opts;
      std::memcpy(&opts, a.payload.data(), sizeof opts);
      option_stack.push_back(opts);
      ++record_index;
      continue;
    }
    if (a.tag == Tag::OptionsPop && b.tag == Tag::OptionsPop) {
      if (option_stack.size() > 1) option_stack.pop_back();
      ++record_index;
      continue;
    }

    if (a.tag != b.tag) {
      fail_structural(std::string("record tags differ (") + tag_name(a.tag) +
                      " vs " + tag_name(b.tag) + ")");
      return res;
    }
    if (a.count != b.count) {
      fail_structural("record counts differ (" + std::to_string(a.count) +
                      " vs " + std::to_string(b.count) + ") for " +
                      tag_name(a.tag));
      return res;
    }

    const CompareOptions& opts = option_stack.back();
    ++res.records_compared;
    if (!opts.ignore && !a.payload.empty()) {
      res.bytes_compared += a.payload.size();
      std::size_t first_elem = 0;
      std::size_t mism = 0;
      bool fp_with_tol =
          (opts.rel_tol > 0.0 || opts.abs_tol > 0.0) &&
          (a.tag == Tag::F32 || a.tag == Tag::F64);
      if (fp_with_tol && a.tag == Tag::F32) {
        mism = compare_fp_payload<float>(a.payload, b.payload, opts,
                                         config.stop_at_first, &first_elem);
      } else if (fp_with_tol && a.tag == Tag::F64) {
        mism = compare_fp_payload<double>(a.payload, b.payload, opts,
                                          config.stop_at_first, &first_elem);
      } else {
        mism = compare_raw_payload(a.payload, b.payload,
                                   StreamCursor::payload_elem_size(a.tag),
                                   config.stop_at_first, &first_elem);
      }
      if (mism > 0) {
        if (res.match) {
          res.first.record_index = record_index;
          res.first.element_index = first_elem;
          res.first.tag = a.tag;
          res.first.detail = std::string("payload divergence in ") +
                             tag_name(a.tag) + " record " +
                             std::to_string(record_index) + " element " +
                             std::to_string(first_elem);
        }
        res.match = false;
        res.mismatched_elements += mism;
        if (config.stop_at_first) return res;
      }
    }
    ++record_index;
  }
  return res;
}

}  // namespace acr::pup
