// Checkpoint comparator — the `PUPer::checker` of the paper (§4.1).
//
// Walks two self-describing PUP streams (the node's local checkpoint and the
// remote checkpoint received from its buddy in the other replica) in
// lockstep and reports whether they represent the same application state.
// Honours the CompareOptions scopes embedded in the stream: replica-variant
// fields are skipped and floating point payloads are compared with the
// application-specified relative/absolute tolerance instead of bitwise.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "pup/pup.h"

namespace acr::pup {

/// Where and how the first divergence was found.
struct Mismatch {
  std::size_t record_index = 0;   ///< ordinal of the diverging record
  std::size_t element_index = 0;  ///< element within the record payload
  Tag tag = Tag::Bytes;
  std::string detail;             ///< human-readable description
};

struct CompareResult {
  bool match = true;
  /// Total diverging elements across all records (0 when match).
  std::size_t mismatched_elements = 0;
  /// Number of records compared (excluding options records).
  std::size_t records_compared = 0;
  /// Number of payload bytes actually compared (ignored scopes excluded).
  std::size_t bytes_compared = 0;
  /// First divergence, valid when !match.
  Mismatch first;

  explicit operator bool() const { return match; }
};

/// Default tolerances applied where the stream does not override them.
struct CheckerConfig {
  CompareOptions defaults;
  /// Stop at the first mismatch (cheaper) instead of counting all.
  bool stop_at_first = true;
};

/// Compare two checkpoint streams. A structural divergence (different tags,
/// counts, or stream lengths) is itself a mismatch — the replicas' states
/// have diverged even if no payload byte can be compared.
///
/// Throws StreamError only if a stream is malformed (truncated header),
/// which indicates a framework bug or transport corruption rather than SDC.
CompareResult compare_streams(std::span<const std::byte> local,
                              std::span<const std::byte> remote,
                              const CheckerConfig& config = {});

inline CompareResult compare_checkpoints(const Checkpoint& local,
                                         const Checkpoint& remote,
                                         const CheckerConfig& config = {}) {
  return compare_streams(local.bytes(), remote.bytes(), config);
}

}  // namespace acr::pup
