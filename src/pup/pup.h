// PUP (Pack/UnPack) serialization framework.
//
// This mirrors the Charm++ PUP framework the paper builds on (§4.1):
// application types expose a single `pup()` traversal that is reused for
//   * sizing      — computing the checkpoint byte count,
//   * packing     — producing a local checkpoint,
//   * unpacking   — restoring state on restart, and
//   * checking    — comparing a local checkpoint against the remote copy
//                   received from the buddy node to detect silent data
//                   corruption (the `PUPer::checker` of the paper).
//
// The stream is self-describing: every field is emitted as a tagged record
// (tag, element count, payload). This is what lets the checker compare two
// checkpoints *without* the live object, honour per-field floating point
// tolerances, and skip fields the application marked replica-variant.
//
// Chunk-stable boundaries (the invariant the ckpt codec leans on): the
// packed stream is a pure function of the traversed values — no timestamps,
// addresses, map iteration hashes, padding garbage or alignment skips ever
// reach the buffer, and record framing depends only on field types and
// container sizes. Hence if an application mutates only part of its state
// between epochs, every byte *before* the first changed field and every
// byte *after* the last changed field (given unchanged container sizes) is
// bit-identical across the two packs, at the same offsets. The codec's
// 256 KiB chunk grid (checksum::kDigestChunk) exploits this: untouched
// regions produce digest-identical chunks that incremental checkpoints
// drop from the wire. Growing or shrinking a container shifts every later
// offset — such epochs simply ship more chunks; correctness never depends
// on stability, only the delta hit rate does.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "buf/buffer.h"
#include "common/require.h"

namespace acr::pup {

/// Record tags embedded in the checkpoint stream.
enum class Tag : std::uint8_t {
  Bytes = 0,
  I8, U8, I16, U16, I32, U32, I64, U64,
  F32, F64,
  Size,         ///< container element count (u64); framework structure, not
                ///< flippable user data — corrupting it would make the
                ///< stream unrestorable rather than model an SDC
  OptionsPush,  ///< payload: CompareOptions
  OptionsPop,   ///< no payload
};

const char* tag_name(Tag t);

/// Per-field comparison behaviour, scoped with push/pop (nestable).
struct CompareOptions {
  /// Field is replica-variant (timers, pointers-as-ids): never compared.
  bool ignore = false;
  /// Relative tolerance for F32/F64 payloads (0 = bitwise).
  double rel_tol = 0.0;
  /// Absolute tolerance for F32/F64 payloads (0 = bitwise).
  double abs_tol = 0.0;
};

enum class Mode { Sizing, Packing, Unpacking };

/// Base serializer. User code writes one traversal:
///
///   struct Particle {
///     double x, y, z;
///     void pup(acr::pup::Puper& p) { p | x; p | y; p | z; }
///   };
///
/// and every PUP mode reuses it.
class Puper {
 public:
  virtual ~Puper() = default;

  Mode mode() const { return mode_; }
  bool is_sizing() const { return mode_ == Mode::Sizing; }
  bool is_packing() const { return mode_ == Mode::Packing; }
  bool is_unpacking() const { return mode_ == Mode::Unpacking; }

  /// Raw byte blob (no endianness/type interpretation in the checker).
  void raw_bytes(void* data, std::size_t n) { record(Tag::Bytes, data, n, 1); }

  /// Typed array of a fundamental type.
  template <typename T>
  void array(T* data, std::size_t count) {
    static_assert(std::is_arithmetic_v<T>, "array() is for arithmetic types");
    record(tag_of<T>(), data, count, sizeof(T));
  }

  template <typename T>
  void value(T& v) {
    array(&v, 1);
  }

  /// Container element count. Distinct from value() so the checker and the
  /// fault injector can tell structure apart from user data.
  void size_value(std::uint64_t& n) { record(Tag::Size, &n, 1, sizeof n); }

  /// Scope comparison options over the fields pupped until pop_options().
  void push_options(const CompareOptions& opts) {
    CompareOptions copy = opts;
    record(Tag::OptionsPush, &copy, 1, sizeof(CompareOptions));
  }
  void pop_options() { record(Tag::OptionsPop, nullptr, 0, 0); }

  template <typename T>
  static constexpr Tag tag_of() {
    if constexpr (std::is_same_v<T, float>) return Tag::F32;
    else if constexpr (std::is_same_v<T, double>) return Tag::F64;
    else if constexpr (std::is_same_v<T, bool>) return Tag::U8;
    else if constexpr (std::is_integral_v<T> && std::is_signed_v<T>) {
      switch (sizeof(T)) {
        case 1: return Tag::I8;
        case 2: return Tag::I16;
        case 4: return Tag::I32;
        default: return Tag::I64;
      }
    } else {
      switch (sizeof(T)) {
        case 1: return Tag::U8;
        case 2: return Tag::U16;
        case 4: return Tag::U32;
        default: return Tag::U64;
      }
    }
  }

 protected:
  explicit Puper(Mode mode) : mode_(mode) {}

  /// One stream record: header (tag, element count) + payload of
  /// count*elem_size bytes. Implementations size, write, or read it.
  virtual void record(Tag tag, void* data, std::size_t count,
                      std::size_t elem_size) = 0;

 private:
  Mode mode_;
};

// ---------------------------------------------------------------------------
// pup dispatch: member pup(), free pup() via ADL, arithmetic, containers.
// ---------------------------------------------------------------------------

template <typename T>
concept HasMemberPup = requires(T& t, Puper& p) { t.pup(p); };

template <typename T>
  requires std::is_arithmetic_v<T>
inline void pup_value(Puper& p, T& v) {
  p.value(v);
}

template <typename T>
  requires std::is_enum_v<T>
inline void pup_value(Puper& p, T& v) {
  auto u = static_cast<std::underlying_type_t<T>>(v);
  p.value(u);
  v = static_cast<T>(u);
}

template <HasMemberPup T>
inline void pup_value(Puper& p, T& v) {
  v.pup(p);
}

inline void pup_value(Puper& p, std::string& s) {
  std::uint64_t n = s.size();
  p.size_value(n);
  if (p.is_unpacking()) s.resize(n);
  if (n > 0) p.array(s.data(), static_cast<std::size_t>(n));
}

template <typename T>
inline void pup_value(Puper& p, std::vector<T>& v) {
  std::uint64_t n = v.size();
  p.size_value(n);
  if (p.is_unpacking()) v.resize(n);
  if constexpr (std::is_arithmetic_v<T>) {
    if (n > 0) p.array(v.data(), static_cast<std::size_t>(n));
  } else {
    for (auto& e : v) pup_value(p, e);
  }
}

template <typename T, std::size_t N>
inline void pup_value(Puper& p, std::array<T, N>& a) {
  if constexpr (std::is_arithmetic_v<T>) {
    p.array(a.data(), N);
  } else {
    for (auto& e : a) pup_value(p, e);
  }
}

template <typename A, typename B>
inline void pup_value(Puper& p, std::pair<A, B>& pr) {
  pup_value(p, pr.first);
  pup_value(p, pr.second);
}

template <typename K, typename V>
inline void pup_value(Puper& p, std::map<K, V>& m) {
  std::uint64_t n = m.size();
  p.size_value(n);
  if (p.is_unpacking()) {
    m.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      K k{};
      V v{};
      pup_value(p, k);
      pup_value(p, v);
      m.emplace(std::move(k), std::move(v));
    }
  } else {
    for (auto& [k, v] : m) {
      K key = k;  // keys are const in the map; copy for the traversal
      pup_value(p, key);
      pup_value(p, v);
    }
  }
}

/// Charm++-style `p | x` spelling.
template <typename T>
inline Puper& operator|(Puper& p, T& v) {
  pup_value(p, v);
  return p;
}

// ---------------------------------------------------------------------------
// Concrete PUPers.
// ---------------------------------------------------------------------------

/// Computes the exact byte size of the stream a Packer would produce.
class Sizer final : public Puper {
 public:
  Sizer() : Puper(Mode::Sizing) {}
  std::size_t size() const { return size_; }

 protected:
  void record(Tag tag, void* data, std::size_t count,
              std::size_t elem_size) override;

 private:
  std::size_t size_ = 0;
};

/// Serialized checkpoint image over shared immutable storage. Copying a
/// Checkpoint (double-buffer promotion, restore staging, buddy transfer)
/// shares the bytes instead of duplicating them.
class Checkpoint {
 public:
  Checkpoint() = default;
  explicit Checkpoint(buf::Buffer data) : data_(std::move(data)) {}
  explicit Checkpoint(std::vector<std::byte> data)
      : data_(buf::Buffer::wrap(std::move(data))) {}

  std::span<const std::byte> bytes() const { return data_.bytes(); }
  /// Copy-on-write mutable view (detaches from shared storage first); the
  /// door the SDC fault injector flips bits through.
  std::span<std::byte> mutable_bytes() { return data_.mutable_bytes(); }
  const buf::Buffer& buffer() const { return data_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Sequence number assigned by the checkpoint coordinator.
  std::uint64_t epoch = 0;

 private:
  buf::Buffer data_;
};

/// Writes the stream into a BufferBuilder, optionally teeing every byte
/// into a second Sink (e.g. a streaming checksum) so digesting happens in
/// the same traversal as packing.
class Packer final : public Puper {
 public:
  /// Self-contained: packs into a private builder (fresh arena).
  Packer() : Puper(Mode::Packing), out_(&own_) {}
  /// Packs into an external builder, enabling arena reuse across epochs.
  explicit Packer(buf::BufferBuilder& out) : Puper(Mode::Packing), out_(&out) {}

  /// Also stream every packed byte into `sink` (nullptr detaches).
  void tee(buf::Sink* sink) { tee_ = sink; }

  Checkpoint take() { return Checkpoint(out_->take()); }
  buf::Buffer take_buffer() { return out_->take(); }
  std::size_t bytes_written() const { return out_->size(); }

 protected:
  void record(Tag tag, void* data, std::size_t count,
              std::size_t elem_size) override;

 private:
  buf::BufferBuilder own_;
  buf::BufferBuilder* out_;
  buf::Sink* tee_ = nullptr;
};

/// Reads the stream back into live objects, validating record headers.
/// A header mismatch throws StreamError (corrupt or mismatched stream).
class StreamError : public std::runtime_error {
 public:
  explicit StreamError(const std::string& what) : std::runtime_error(what) {}
};

class Unpacker final : public Puper {
 public:
  explicit Unpacker(std::span<const std::byte> in)
      : Puper(Mode::Unpacking), in_(in) {}
  explicit Unpacker(const Checkpoint& c) : Unpacker(c.bytes()) {}
  /// The Unpacker only references the checkpoint's bytes; binding it to a
  /// temporary would dangle.
  explicit Unpacker(Checkpoint&&) = delete;

  /// True once every byte of the stream has been consumed.
  bool exhausted() const { return pos_ == in_.size(); }

 protected:
  void record(Tag tag, void* data, std::size_t count,
              std::size_t elem_size) override;

 private:
  void read(void* dst, std::size_t n);

  std::span<const std::byte> in_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Convenience entry points.
// ---------------------------------------------------------------------------

/// Size of the checkpoint `obj` would produce.
template <typename T>
std::size_t checkpoint_size(T& obj) {
  Sizer s;
  s | obj;
  return s.size();
}

/// Serialize `obj` into a fresh checkpoint.
template <typename T>
Checkpoint make_checkpoint(T& obj) {
  Packer p;
  p | obj;
  return p.take();
}

/// Restore `obj` from `c`. Throws StreamError on malformed input.
template <typename T>
void restore_checkpoint(T& obj, const Checkpoint& c) {
  Unpacker u(c);
  u | obj;
  ACR_REQUIRE(u.exhausted(), "checkpoint has trailing bytes after restore");
}

}  // namespace acr::pup
