#include "pup/pup.h"

namespace acr::pup {

namespace {

struct RecordHeader {
  std::uint8_t tag;
  std::uint64_t count;
};

constexpr std::size_t kHeaderSize = sizeof(std::uint8_t) + sizeof(std::uint64_t);

}  // namespace

const char* tag_name(Tag t) {
  switch (t) {
    case Tag::Bytes: return "bytes";
    case Tag::I8: return "i8";
    case Tag::U8: return "u8";
    case Tag::I16: return "i16";
    case Tag::U16: return "u16";
    case Tag::I32: return "i32";
    case Tag::U32: return "u32";
    case Tag::I64: return "i64";
    case Tag::U64: return "u64";
    case Tag::F32: return "f32";
    case Tag::F64: return "f64";
    case Tag::Size: return "size";
    case Tag::OptionsPush: return "options-push";
    case Tag::OptionsPop: return "options-pop";
  }
  return "invalid";
}

void Sizer::record(Tag, void*, std::size_t count, std::size_t elem_size) {
  size_ += kHeaderSize + count * elem_size;
}

void Packer::record(Tag tag, void* data, std::size_t count,
                    std::size_t elem_size) {
  std::size_t payload = count * elem_size;
  std::uint8_t header[kHeaderSize];
  header[0] = static_cast<std::uint8_t>(tag);
  std::uint64_t n = count;
  std::memcpy(header + 1, &n, sizeof n);
  out_->append(header, kHeaderSize);
  if (payload > 0) out_->append(data, payload);
  if (tee_ != nullptr) {
    tee_->write(std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(header), kHeaderSize));
    if (payload > 0)
      tee_->write(std::span<const std::byte>(
          static_cast<const std::byte*>(data), payload));
  }
}

void Unpacker::read(void* dst, std::size_t n) {
  if (pos_ + n > in_.size())
    throw StreamError("checkpoint stream truncated (need " +
                      std::to_string(n) + " bytes at offset " +
                      std::to_string(pos_) + ", stream has " +
                      std::to_string(in_.size()) + ")");
  std::memcpy(dst, in_.data() + pos_, n);
  pos_ += n;
}

void Unpacker::record(Tag tag, void* data, std::size_t count,
                      std::size_t elem_size) {
  std::uint8_t t = 0;
  std::uint64_t n = 0;
  read(&t, sizeof t);
  read(&n, sizeof n);
  if (t != static_cast<std::uint8_t>(tag))
    throw StreamError(std::string("record tag mismatch: stream has ") +
                      tag_name(static_cast<Tag>(t)) + ", object expects " +
                      tag_name(tag));
  if (n != count)
    throw StreamError("record count mismatch for " + std::string(tag_name(tag)) +
                      ": stream has " + std::to_string(n) +
                      ", object expects " + std::to_string(count));
  std::size_t payload = count * elem_size;
  if (tag == Tag::OptionsPush || tag == Tag::OptionsPop) {
    // Options records still round-trip their payload so the packer/unpacker
    // stay symmetric, but they carry comparison metadata, not object state.
    if (payload > 0) read(data, payload);
    return;
  }
  if (payload > 0) read(data, payload);
}

}  // namespace acr::pup
