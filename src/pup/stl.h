// PUP adapters for additional standard containers.
//
// Associative containers with unordered iteration (unordered_map/set) are
// serialized in SORTED key order: checkpoint streams must be canonical so
// that buddy replicas — whose hash tables may have different bucket layouts
// — produce bit-identical images (§2.1's comparability requirement).
#pragma once

#include <algorithm>
#include <deque>
#include <optional>
#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "pup/pup.h"

namespace acr::pup {

template <typename T>
inline void pup_value(Puper& p, std::deque<T>& d) {
  std::uint64_t n = d.size();
  p.size_value(n);
  if (p.is_unpacking()) d.resize(n);
  for (auto& e : d) pup_value(p, e);
}

template <typename T>
inline void pup_value(Puper& p, std::set<T>& s) {
  std::uint64_t n = s.size();
  p.size_value(n);
  if (p.is_unpacking()) {
    s.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      T v{};
      pup_value(p, v);
      s.insert(std::move(v));
    }
  } else {
    for (const T& v : s) {
      T copy = v;  // set elements are const; traverse a copy
      pup_value(p, copy);
    }
  }
}

template <typename T>
inline void pup_value(Puper& p, std::optional<T>& o) {
  std::uint8_t has = o.has_value() ? 1 : 0;
  p.value(has);
  if (p.is_unpacking()) {
    if (has) {
      T v{};
      pup_value(p, v);
      o = std::move(v);
    } else {
      o.reset();
    }
  } else if (has) {
    pup_value(p, *o);
  }
}

namespace detail {
template <typename Tuple, std::size_t... Is>
void pup_tuple_impl(Puper& p, Tuple& t, std::index_sequence<Is...>) {
  (pup_value(p, std::get<Is>(t)), ...);
}
}  // namespace detail

template <typename... Ts>
inline void pup_value(Puper& p, std::tuple<Ts...>& t) {
  detail::pup_tuple_impl(p, t, std::index_sequence_for<Ts...>{});
}

template <typename K, typename V, typename H, typename E>
inline void pup_value(Puper& p, std::unordered_map<K, V, H, E>& m) {
  std::uint64_t n = m.size();
  p.size_value(n);
  if (p.is_unpacking()) {
    m.clear();
    m.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      K k{};
      V v{};
      pup_value(p, k);
      pup_value(p, v);
      m.emplace(std::move(k), std::move(v));
    }
    return;
  }
  // Canonical order: sort keys so replicas with different hash-table
  // internals serialize identically.
  std::vector<const K*> keys;
  keys.reserve(m.size());
  for (const auto& [k, v] : m) keys.push_back(&k);
  std::sort(keys.begin(), keys.end(),
            [](const K* a, const K* b) { return *a < *b; });
  for (const K* k : keys) {
    K key = *k;
    pup_value(p, key);
    pup_value(p, m.at(*k));
  }
}

template <typename T, typename H, typename E>
inline void pup_value(Puper& p, std::unordered_set<T, H, E>& s) {
  std::uint64_t n = s.size();
  p.size_value(n);
  if (p.is_unpacking()) {
    s.clear();
    s.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      T v{};
      pup_value(p, v);
      s.insert(std::move(v));
    }
    return;
  }
  std::vector<const T*> items;
  items.reserve(s.size());
  for (const auto& v : s) items.push_back(&v);
  std::sort(items.begin(), items.end(),
            [](const T* a, const T* b) { return *a < *b; });
  for (const T* v : items) {
    T copy = *v;
    pup_value(p, copy);
  }
}

}  // namespace acr::pup
