#include "sim/lifetime.h"

#include <algorithm>

#include "common/require.h"
#include "common/rng.h"
#include "failure/distributions.h"

namespace acr::sim {

namespace {

struct Trial {
  // Wall clock and useful-work position.
  double t = 0.0;
  double done = 0.0;
  double verified = 0.0;  ///< work position of the last verified checkpoint
  bool latent_sdc[2] = {false, false};
  bool weak_pending = false;
  bool permanent_sdc = false;
  // Tally.
  double ckpt_time = 0.0;
  double rework_time = 0.0;
  double restart_time = 0.0;
  int hard_failures = 0;
  int sdc_detected = 0;
};

}  // namespace

LifetimeResult simulate_lifetime(const LifetimeConfig& cfg) {
  ACR_REQUIRE(cfg.trials > 0, "need at least one trial");
  ACR_REQUIRE(cfg.tau > 0.0 && cfg.work > 0.0, "bad lifetime parameters");

  failure::Exponential hard_gap(cfg.hard_mtbf);
  failure::Exponential sdc_gap(cfg.sdc_mtbf);
  Pcg32 rng(cfg.seed, 0x11fe);

  LifetimeResult out;
  int trials_with_permanent = 0;

  for (int trial = 0; trial < cfg.trials; ++trial) {
    Trial s;
    double next_ckpt = cfg.tau;
    double next_hard = hard_gap.sample(rng);
    double next_sdc = sdc_gap.sample(rng);

    auto overhead = [&](double dt) { s.t += dt; };

    auto do_rollback_to_verified = [&](double restart_cost) {
      s.rework_time += s.done - s.verified;
      // The rework is recomputed in real time: the wall clock advances by
      // the lost work plus the restart cost, the work position rewinds.
      // The job's net work position is unchanged: the laggard recomputes
      // while the healthy replica idles at the next synchronization point.
      overhead((s.done - s.verified) + restart_cost);
      s.restart_time += restart_cost;
      s.latent_sdc[0] = s.latent_sdc[1] = false;  // corrupted span recomputed
    };

    auto do_checkpoint = [&](bool compare) {
      overhead(cfg.checkpoint_cost);
      s.ckpt_time += cfg.checkpoint_cost;
      if (compare && (s.latent_sdc[0] || s.latent_sdc[1])) {
        // Mismatch: both replicas roll back to the verified image.
        ++s.sdc_detected;
        s.restart_time += cfg.restart_sdc;
        s.rework_time += s.done - s.verified;
        overhead(cfg.restart_sdc + (s.done - s.verified));
        s.done = s.verified;
        s.latent_sdc[0] = s.latent_sdc[1] = false;
        return;
      }
      if (!compare) {
        // Recovery checkpoint (medium/weak): corruption in the healthy
        // replica is copied to both sides and becomes undetectable.
        if (s.latent_sdc[0] || s.latent_sdc[1]) s.permanent_sdc = true;
        s.latent_sdc[0] = s.latent_sdc[1] = false;
      }
      s.verified = s.done;
    };

    while (s.done < cfg.work) {
      double finish_at = s.t + (cfg.work - s.done);
      double next_event = std::min({finish_at, next_ckpt, next_hard, next_sdc});
      // Forward progress up to the event.
      s.done += next_event - s.t;
      s.t = next_event;
      if (s.t == finish_at && s.t < std::min({next_ckpt, next_hard, next_sdc}))
        break;

      if (next_event == next_sdc) {
        int replica = static_cast<int>(rng.bounded(2));
        s.latent_sdc[replica] = true;
        next_sdc = s.t + sdc_gap.sample(rng);
        continue;
      }

      if (next_event == next_hard) {
        ++s.hard_failures;
        int crashed = static_cast<int>(rng.bounded(2));
        next_hard = s.t + hard_gap.sample(rng);
        switch (cfg.scheme) {
          case model::Scheme::Strong:
            // Crashed replica recomputes from the verified checkpoint; the
            // healthy one waits at the next synchronization point. Its own
            // latent corruption (if any) is caught at the next compare;
            // the crashed side's corrupt span is recomputed cleanly.
            s.latent_sdc[crashed] = false;
            do_rollback_to_verified(cfg.restart_hard);
            break;
          case model::Scheme::Medium: {
            // Healthy replica checkpoints immediately and ships it.
            s.latent_sdc[crashed] = false;
            s.restart_time += cfg.restart_hard;
            overhead(cfg.restart_hard);
            do_checkpoint(/*compare=*/false);
            next_ckpt = s.t + cfg.tau;
            break;
          }
          case model::Scheme::Weak:
            if (s.weak_pending) {
              // Second failure within the window: fall back to the
              // verified checkpoint (the paper's rollback caveat).
              s.weak_pending = false;
              do_rollback_to_verified(cfg.restart_hard);
            } else {
              s.latent_sdc[crashed] = false;
              s.weak_pending = true;  // recover at the next periodic ckpt
            }
            break;
        }
        continue;
      }

      if (next_event == next_ckpt) {
        if (s.weak_pending) {
          s.weak_pending = false;
          s.restart_time += cfg.restart_hard;
          overhead(cfg.restart_hard);
          do_checkpoint(/*compare=*/false);
        } else {
          do_checkpoint(/*compare=*/true);
        }
        next_ckpt = s.t + cfg.tau;
        continue;
      }
    }

    out.mean_total_time += s.t;
    out.mean_checkpoint_time += s.ckpt_time;
    out.mean_rework_time += s.rework_time;
    out.mean_restart_time += s.restart_time;
    out.mean_hard_failures += s.hard_failures;
    out.mean_sdc_detected += s.sdc_detected;
    if (s.permanent_sdc) ++trials_with_permanent;
  }

  double n = static_cast<double>(cfg.trials);
  out.mean_total_time /= n;
  out.mean_checkpoint_time /= n;
  out.mean_rework_time /= n;
  out.mean_restart_time /= n;
  out.mean_hard_failures /= n;
  out.mean_sdc_detected /= n;
  out.mean_overhead_fraction = (out.mean_total_time - cfg.work) / cfg.work;
  out.prob_undetected_sdc = trials_with_permanent / n;
  return out;
}

}  // namespace acr::sim
