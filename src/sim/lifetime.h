// Monte-Carlo lifetime simulator (Figs. 9 and 11, and a stochastic
// cross-check of the §5 closed-form model).
//
// Plays a whole job — useful work, periodic checkpoints, Poisson hard
// failures and SDC strikes — against the semantics of one resilience
// scheme, tracking forward-path overhead, rework, recovery costs, and
// whether any silent corruption slipped through an unprotected window into
// the committed state.
#pragma once

#include <cstdint>

#include "model/acr_model.h"

namespace acr::sim {

struct LifetimeConfig {
  double work = 3600.0;             ///< useful seconds required
  double tau = 100.0;               ///< checkpoint period
  double checkpoint_cost = 1.0;     ///< delta (from the phase model)
  double restart_hard = 1.0;        ///< hard-error restart cost
  double restart_sdc = 0.5;         ///< SDC rollback restart cost
  model::Scheme scheme = model::Scheme::Strong;
  double hard_mtbf = 1e5;           ///< system (both replicas)
  double sdc_mtbf = 1e6;            ///< detectable-SDC events (both replicas)
  std::uint64_t seed = 1;
  int trials = 200;
};

struct LifetimeResult {
  double mean_total_time = 0.0;
  double mean_overhead_fraction = 0.0;  ///< (T - W) / W
  double mean_checkpoint_time = 0.0;
  double mean_rework_time = 0.0;
  double mean_restart_time = 0.0;
  double mean_hard_failures = 0.0;
  double mean_sdc_detected = 0.0;
  /// Fraction of trials in which at least one SDC became permanent
  /// (entered the committed state through an unprotected window).
  double prob_undetected_sdc = 0.0;
};

LifetimeResult simulate_lifetime(const LifetimeConfig& config);

}  // namespace acr::sim
