#include "sim/phase_model.h"

#include <bit>
#include <cmath>

#include "common/require.h"

namespace acr::sim {

const char* detection_mode_name(DetectionMode m) {
  switch (m) {
    case DetectionMode::FullDefault: return "default";
    case DetectionMode::FullMixed: return "mixed";
    case DetectionMode::FullColumn: return "column";
    case DetectionMode::Checksum: return "checksum";
  }
  return "?";
}

PhaseModel::PhaseModel(int nodes_per_replica, const apps::MiniAppSpec& app,
                       PhaseModelParams params)
    : nodes_(nodes_per_replica),
      app_(app),
      params_(params),
      bytes_per_node_(apps::checkpoint_bytes_per_node(app)),
      torus_(topo::bgp_partition(2 * nodes_per_replica)) {
  ACR_REQUIRE(nodes_per_replica > 0, "need at least one node per replica");
}

double PhaseModel::transfer_time(topo::MappingScheme mapping,
                                 double bytes) const {
  topo::ReplicaMapping rm(torus_, mapping, params_.mixed_chunk);
  net::LinkLoadModel loads(torus_);
  loads.add_traffic(rm.buddy_pairs(), bytes);
  return loads.phase_time(params_.net);
}

double PhaseModel::barrier_cost() const {
  int stages = std::bit_width(static_cast<unsigned>(nodes_)) - 1;
  return params_.restart_barrier_base +
         params_.restart_barrier_per_stage * stages;
}

CheckpointPhases PhaseModel::checkpoint_phases(DetectionMode mode) const {
  CheckpointPhases p;
  double serialize_rate = params_.net.pack_bandwidth / app_.serialization_complexity;
  p.local_checkpoint = bytes_per_node_ / serialize_rate;
  switch (mode) {
    // Full comparison walks the self-describing stream record by record, so
    // its rate degrades with the app's structural complexity (many tiny
    // records for the MD apps); the checksum streams the packed buffer
    // linearly and does not.
    case DetectionMode::FullDefault:
      p.transfer = transfer_time(topo::MappingScheme::Default, bytes_per_node_);
      p.comparison = bytes_per_node_ * app_.serialization_complexity /
                     params_.net.compare_bandwidth;
      break;
    case DetectionMode::FullMixed:
      p.transfer = transfer_time(topo::MappingScheme::Mixed, bytes_per_node_);
      p.comparison = bytes_per_node_ * app_.serialization_complexity /
                     params_.net.compare_bandwidth;
      break;
    case DetectionMode::FullColumn:
      p.transfer = transfer_time(topo::MappingScheme::Column, bytes_per_node_);
      p.comparison = bytes_per_node_ * app_.serialization_complexity /
                     params_.net.compare_bandwidth;
      break;
    case DetectionMode::Checksum:
      // Digest travels instead of the checkpoint; computing it costs ~4
      // instructions per byte on both replicas (charged once per node).
      p.transfer = transfer_time(topo::MappingScheme::Default, 32.0);
      p.comparison = bytes_per_node_ * 4.0 * params_.net.gamma;
      break;
  }
  return p;
}

RestartPhases PhaseModel::restart_strong() const {
  RestartPhases r;
  // One buddy ships its verified checkpoint to the one fresh node: a single
  // point-to-point message, no contention, mapping-independent.
  topo::ReplicaMapping rm(torus_, topo::MappingScheme::Default);
  int hops = rm.buddy_distance(0);
  r.transfer = params_.net.alpha * hops + bytes_per_node_ * params_.net.beta();
  double rate = params_.net.unpack_bandwidth / app_.serialization_complexity;
  r.reconstruction = bytes_per_node_ / rate + barrier_cost();
  return r;
}

RestartPhases PhaseModel::restart_medium(topo::MappingScheme mapping) const {
  RestartPhases r;
  // Every healthy node ships the fresh checkpoint to its buddy at once:
  // same congestion picture as the checkpoint transfer phase.
  r.transfer = transfer_time(mapping, bytes_per_node_);
  double rate = params_.net.unpack_bandwidth / app_.serialization_complexity;
  r.reconstruction = bytes_per_node_ / rate + barrier_cost();
  return r;
}

RestartPhases PhaseModel::restart_sdc() const {
  RestartPhases r;
  double rate = params_.net.unpack_bandwidth / app_.serialization_complexity;
  r.reconstruction = bytes_per_node_ / rate + barrier_cost();
  return r;
}

}  // namespace acr::sim
