// Large-scale checkpoint/restart phase model (Figs. 8 and 10).
//
// At 1K-64K cores per replica we cannot instantiate live application state,
// but the phase costs the paper measures decompose cleanly:
//   local checkpoint — serialize app state at the node's pack rate, scaled
//                      by the app's serialization complexity (LULESH's rich
//                      structures, the MD apps' scattered atoms);
//   transfer         — every replica-0 node ships its checkpoint (or an
//                      8-byte digest) to its buddy; the completion time is
//                      governed by contention on the torus links, computed
//                      exactly by the net::LinkLoadModel over the chosen
//                      replica mapping;
//   comparison       — stream-compare at memory bandwidth (full mode) or
//                      recompute the Fletcher digest at ~4 instr/byte
//                      (checksum mode, both replicas);
//   reconstruction   — deserialize + rebuild at restart, plus the restart
//                      barrier/broadcast ladder the paper observes for
//                      small-footprint apps (Fig. 10c).
#pragma once

#include <string>

#include "apps/table2.h"
#include "net/link_load.h"
#include "topology/mapping.h"

namespace acr::sim {

enum class DetectionMode { FullDefault, FullMixed, FullColumn, Checksum };

const char* detection_mode_name(DetectionMode m);

/// Fig. 8 bar decomposition.
struct CheckpointPhases {
  double local_checkpoint = 0.0;
  double transfer = 0.0;
  double comparison = 0.0;
  double total() const { return local_checkpoint + transfer + comparison; }
};

/// Fig. 10 bar decomposition.
struct RestartPhases {
  double transfer = 0.0;
  double reconstruction = 0.0;
  double total() const { return transfer + reconstruction; }
};

struct PhaseModelParams {
  net::NetworkParams net;
  /// Restart synchronization: base cost plus a per-tree-stage term for the
  /// barriers/broadcasts of an unexpected restart (§6.3).
  double restart_barrier_base = 5e-3;
  double restart_barrier_per_stage = 2.5e-3;
  int mixed_chunk = 2;
};

class PhaseModel {
 public:
  /// `nodes_per_replica` physical nodes per replica; the machine torus has
  /// 2x that (BG/P partition shapes from topo::bgp_partition).
  PhaseModel(int nodes_per_replica, const apps::MiniAppSpec& app,
             PhaseModelParams params = {});

  /// One coordinated checkpoint (forward path), Fig. 8.
  CheckpointPhases checkpoint_phases(DetectionMode mode) const;

  /// Restart after a hard error, Fig. 10. Strong resilience ships one
  /// checkpoint point-to-point; medium/weak ship all buddies at once and
  /// feel the mapping.
  RestartPhases restart_strong() const;
  RestartPhases restart_medium(topo::MappingScheme mapping) const;

  /// Restart after a detected SDC: local rollback only (reconstruction).
  RestartPhases restart_sdc() const;

  double checkpoint_bytes_per_node() const { return bytes_per_node_; }
  int nodes_per_replica() const { return nodes_; }
  const topo::Torus3D& torus() const { return torus_; }

 private:
  double transfer_time(topo::MappingScheme mapping, double bytes) const;
  double barrier_cost() const;

  int nodes_;
  apps::MiniAppSpec app_;
  PhaseModelParams params_;
  double bytes_per_node_;
  topo::Torus3D torus_;
};

}  // namespace acr::sim
