#include "apps/leanmd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/require.h"
#include "common/rng.h"

namespace acr::apps {

namespace {
/// Flattened atom record width in a migration/ghost message:
/// [id, x, y, z, vx, vy, vz].
constexpr std::size_t kAtomRecord = 7;
}  // namespace

rt::Cluster::TaskFactory LeanMdConfig::factory() const {
  LeanMdConfig cfg = *this;
  return [cfg](int replica, int node_index) {
    (void)replica;
    std::vector<std::unique_ptr<rt::Task>> tasks;
    int first = node_index * cfg.slots_per_node;
    int last = std::min(first + cfg.slots_per_node, cfg.num_tasks);
    for (int t = first; t < last; ++t)
      tasks.push_back(std::make_unique<LeanMdTask>(cfg, t));
    return tasks;
  };
}

LeanMdTask::LeanMdTask(const LeanMdConfig& config, int task_id)
    : IterativeTask(config.iterations), cfg_(config), task_id_(task_id) {}

void LeanMdTask::init() {
  // Deterministic lattice-with-jitter fill of this task's slab. The RNG is
  // seeded by logical position (task id), so buddy tasks agree.
  Pcg32 rng(0xBEEF5EEDULL ^ static_cast<std::uint64_t>(task_id_), 42);
  int n = cfg_.atoms_per_task;
  int per_side = std::max(1, static_cast<int>(std::cbrt(static_cast<double>(n))) + 1);
  int placed = 0;
  for (int k = 0; k < per_side && placed < n; ++k) {
    for (int j = 0; j < per_side && placed < n; ++j) {
      for (int i = 0; i < per_side && placed < n; ++i, ++placed) {
        ids_.push_back(static_cast<std::int64_t>(task_id_) * cfg_.atoms_per_task +
                       placed);
        x_.push_back((i + 0.5) * cfg_.box_xy / per_side +
                     0.05 * rng.uniform(-1.0, 1.0));
        y_.push_back((j + 0.5) * cfg_.box_xy / per_side +
                     0.05 * rng.uniform(-1.0, 1.0));
        z_.push_back(z_lo() + (k + 0.5) * cfg_.slab_width / per_side +
                     0.05 * rng.uniform(-1.0, 1.0));
        vx_.push_back(0.3 * rng.uniform(-1.0, 1.0));
        vy_.push_back(0.3 * rng.uniform(-1.0, 1.0));
        vz_.push_back(0.3 * rng.uniform(-1.0, 1.0));
      }
    }
  }
  sort_atoms_by_id();
}

void LeanMdTask::sort_atoms_by_id() {
  std::vector<std::size_t> order(ids_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return ids_[a] < ids_[b]; });
  auto permute = [&](auto& v) {
    auto copy = v;
    for (std::size_t i = 0; i < order.size(); ++i) v[i] = copy[order[i]];
  };
  permute(ids_);
  permute(x_);
  permute(y_);
  permute(z_);
  permute(vx_);
  permute(vy_);
  permute(vz_);
}

void LeanMdTask::send_phase(std::uint64_t iter, int phase) {
  if (phase == 0) {
    // Ghost export: atoms within the cutoff of a boundary.
    for (int dir = -1; dir <= 1; dir += 2) {
      int nbr = task_id_ + dir;
      if (nbr < 0 || nbr >= cfg_.num_tasks) continue;
      std::vector<double> data;
      for (std::size_t a = 0; a < ids_.size(); ++a) {
        bool near = dir < 0 ? (z_[a] - z_lo() < cfg_.cutoff)
                            : (z_hi() - z_[a] < cfg_.cutoff);
        if (!near) continue;
        data.insert(data.end(), {static_cast<double>(ids_[a]), x_[a], y_[a],
                                 z_[a], vx_[a], vy_[a], vz_[a]});
      }
      send_phase_msg(addr_of(nbr), iter, phase, /*sender=*/-dir,
                     std::move(data));
    }
    return;
  }
  // Phase 1: migration. Always send (possibly empty) so the expected
  // message count is fixed.
  for (int dir = -1; dir <= 1; dir += 2) {
    int nbr = task_id_ + dir;
    if (nbr < 0 || nbr >= cfg_.num_tasks) continue;
    send_phase_msg(addr_of(nbr), iter, phase, /*sender=*/-dir,
                   dir < 0 ? emigrants_lo_ : emigrants_hi_);
  }
}

int LeanMdTask::expected_in_phase(std::uint64_t, int) const {
  int n = 0;
  if (task_id_ > 0) ++n;
  if (task_id_ < cfg_.num_tasks - 1) ++n;
  return n;
}

double LeanMdTask::force_and_integrate(
    const std::map<int, std::vector<double>>& ghosts) {
  std::size_t n = ids_.size();
  std::vector<double> fx(n, 0.0), fy(n, 0.0), fz(n, 0.0);
  double cutoff2 = cfg_.cutoff * cfg_.cutoff;
  double pairs = 0.0;

  auto accumulate = [&](std::size_t a, double bx, double by, double bz,
                        bool half) {
    double dx = x_[a] - bx, dy = y_[a] - by, dz = z_[a] - bz;
    double r2 = dx * dx + dy * dy + dz * dz;
    if (r2 >= cutoff2 || r2 < 1e-12) return;
    pairs += 1.0;
    // Truncated LJ-style force magnitude / r.
    double inv2 = 1.0 / r2;
    double inv6 = inv2 * inv2 * inv2;
    double fmag = 24.0 * inv2 * inv6 * (2.0 * inv6 - 1.0);
    fmag = std::clamp(fmag, -1e3, 1e3);  // keep the toy integrator stable
    fx[a] += (half ? 1.0 : 1.0) * fmag * dx;
    fy[a] += fmag * dy;
    fz[a] += fmag * dz;
  };

  // Local-local pairs (both sides accumulated, Newton's third law kept by
  // symmetry of the loop).
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = 0; b < n; ++b)
      if (a != b) accumulate(a, x_[b], y_[b], z_[b], true);
  // Local-ghost pairs.
  for (const auto& [sender, data] : ghosts) {
    (void)sender;
    for (std::size_t off = 0; off + kAtomRecord <= data.size();
         off += kAtomRecord)
      for (std::size_t a = 0; a < n; ++a)
        accumulate(a, data[off + 1], data[off + 2], data[off + 3], false);
  }

  // Velocity-Verlet-ish integration with reflective X/Y walls.
  emigrants_lo_.clear();
  emigrants_hi_.clear();
  for (std::size_t a = 0; a < n; ++a) {
    vx_[a] += cfg_.dt * fx[a];
    vy_[a] += cfg_.dt * fy[a];
    vz_[a] += cfg_.dt * fz[a];
    x_[a] += cfg_.dt * vx_[a];
    y_[a] += cfg_.dt * vy_[a];
    z_[a] += cfg_.dt * vz_[a];
    if (x_[a] < 0.0 || x_[a] > cfg_.box_xy) vx_[a] = -vx_[a];
    if (y_[a] < 0.0 || y_[a] > cfg_.box_xy) vy_[a] = -vy_[a];
    x_[a] = std::clamp(x_[a], 0.0, cfg_.box_xy);
    y_[a] = std::clamp(y_[a], 0.0, cfg_.box_xy);
    // Global Z walls reflect; interior crossings migrate in phase 1.
    if (task_id_ == 0 && z_[a] < z_lo()) {
      vz_[a] = -vz_[a];
      z_[a] = z_lo() + (z_lo() - z_[a]);
    }
    if (task_id_ == cfg_.num_tasks - 1 && z_[a] > z_hi()) {
      vz_[a] = -vz_[a];
      z_[a] = z_hi() - (z_[a] - z_hi());
    }
  }

  // Collect emigrants (descending index so erasure is stable).
  for (std::size_t a = n; a-- > 0;) {
    int dir = 0;
    if (z_[a] < z_lo() && task_id_ > 0) dir = -1;
    if (z_[a] >= z_hi() && task_id_ < cfg_.num_tasks - 1) dir = +1;
    if (dir == 0) continue;
    auto& out = dir < 0 ? emigrants_lo_ : emigrants_hi_;
    out.insert(out.end(), {static_cast<double>(ids_[a]), x_[a], y_[a], z_[a],
                           vx_[a], vy_[a], vz_[a]});
    auto erase_at = [&](auto& v) { v.erase(v.begin() + static_cast<long>(a)); };
    erase_at(ids_);
    erase_at(x_);
    erase_at(y_);
    erase_at(z_);
    erase_at(vx_);
    erase_at(vy_);
    erase_at(vz_);
  }
  return pairs;
}

double LeanMdTask::compute_phase(
    std::uint64_t, int phase, const std::map<int, std::vector<double>>& msgs) {
  if (phase == 0) {
    double pairs = force_and_integrate(msgs);
    return (pairs + static_cast<double>(ids_.size())) * cfg_.seconds_per_pair;
  }
  // Phase 1: absorb immigrants, restore canonical (id-sorted) order.
  for (const auto& [sender, data] : msgs) {
    (void)sender;
    for (std::size_t off = 0; off + kAtomRecord <= data.size();
         off += kAtomRecord) {
      ids_.push_back(static_cast<std::int64_t>(data[off]));
      x_.push_back(data[off + 1]);
      y_.push_back(data[off + 2]);
      z_.push_back(data[off + 3]);
      vx_.push_back(data[off + 4]);
      vy_.push_back(data[off + 5]);
      vz_.push_back(data[off + 6]);
    }
  }
  sort_atoms_by_id();
  emigrants_lo_.clear();
  emigrants_hi_.clear();
  return static_cast<double>(ids_.size()) * cfg_.seconds_per_pair;
}

void LeanMdTask::pup_state(pup::Puper& p) {
  p | ids_;
  p | x_;
  p | y_;
  p | z_;
  p | vx_;
  p | vy_;
  p | vz_;
  p | emigrants_lo_;
  p | emigrants_hi_;
}

double LeanMdTask::kinetic_energy() const {
  double ke = 0.0;
  for (std::size_t a = 0; a < ids_.size(); ++a)
    ke += 0.5 * (vx_[a] * vx_[a] + vy_[a] * vy_[a] + vz_[a] * vz_[a]);
  return ke;
}

}  // namespace acr::apps
