// MiniMD mini-app: neighbor-list molecular dynamics in the style of the
// Mantevo miniMD (mimicking LAMMPS) (§6.1). Fixed atom ownership (atoms
// reflect at slab walls instead of migrating), an explicitly stored
// neighbor list rebuilt every few steps, and force evaluation through that
// list — the indirection produces the "scattered in memory" checkpoint
// data the paper calls out for the MD codes.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/iterative.h"
#include "rt/cluster.h"

namespace acr::apps {

struct MiniMdConfig {
  int atoms_per_task = 64;  ///< paper: 1000 per core
  int num_tasks = 4;
  int slots_per_node = 1;  ///< MPI style
  std::uint64_t iterations = 10;
  int rebuild_every = 3;   ///< neighbor-list rebuild cadence
  double cutoff = 2.8;     ///< force cutoff
  double skin = 0.4;       ///< extra list radius
  double box = 9.0;        ///< cubic per-task box edge
  double dt = 2e-3;
  double seconds_per_pair = 2e-9;

  int nodes_needed() const {
    return (num_tasks + slots_per_node - 1) / slots_per_node;
  }
  rt::Cluster::TaskFactory factory() const;
};

class MiniMdTask final : public IterativeTask {
 public:
  MiniMdTask(const MiniMdConfig& config, int task_id);

  std::size_t neighbor_pairs() const { return list_a_.size(); }
  double kinetic_energy() const;

 protected:
  void init() override;
  void send_phase(std::uint64_t iter, int phase) override;
  int expected_in_phase(std::uint64_t iter, int phase) const override;
  double compute_phase(std::uint64_t iter, int phase,
                       const std::map<int, std::vector<double>>& msgs) override;
  void pup_state(pup::Puper& p) override;

 private:
  rt::TaskAddr addr_of(int task) const {
    return rt::TaskAddr{task / cfg_.slots_per_node,
                        task % cfg_.slots_per_node};
  }
  bool rebuild_step(std::uint64_t iter) const {
    return ((iter - 1) % static_cast<std::uint64_t>(cfg_.rebuild_every)) == 0;
  }
  void rebuild_neighbor_list();

  MiniMdConfig cfg_;
  int task_id_;

  // Atom state (checkpointed). Ownership is fixed: walls reflect.
  std::vector<double> x_, y_, z_;
  std::vector<double> vx_, vy_, vz_;
  // Stored neighbor list (checkpointed — integer data interleaved with the
  // doubles exercises mixed-type PUP streams).
  std::vector<std::int32_t> list_a_, list_b_;
  std::uint64_t last_rebuild_iter_ = 0;
};

}  // namespace acr::apps
