#include "apps/minilulesh.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/require.h"

namespace acr::apps {

rt::Cluster::TaskFactory MiniLuleshConfig::factory() const {
  MiniLuleshConfig cfg = *this;
  return [cfg](int replica, int node_index) {
    (void)replica;
    std::vector<std::unique_ptr<rt::Task>> tasks;
    int first = node_index * cfg.slots_per_node;
    int last = std::min(first + cfg.slots_per_node, cfg.num_tasks);
    for (int t = first; t < last; ++t)
      tasks.push_back(std::make_unique<MiniLuleshTask>(cfg, t));
    return tasks;
  };
}

MiniLuleshTask::MiniLuleshTask(const MiniLuleshConfig& config, int task_id)
    : IterativeTask(config.iterations), cfg_(config), task_id_(task_id) {
  ACR_REQUIRE(std::has_single_bit(static_cast<unsigned>(cfg_.num_tasks)),
              "dt min-reduce butterfly requires a power-of-two task count");
  stages_ = std::countr_zero(static_cast<unsigned>(cfg_.num_tasks));
}

void MiniLuleshTask::init() {
  std::size_t nn = nodes_per_task();
  px_.resize(nn);
  py_.resize(nn);
  pz_.resize(nn);
  vx_.assign(nn, 0.0);
  vy_.assign(nn, 0.0);
  vz_.assign(nn, 0.0);
  std::size_t n = 0;
  for (int k = 0; k <= cfg_.ez; ++k) {
    for (int j = 0; j <= cfg_.ey; ++j) {
      for (int i = 0; i <= cfg_.ex; ++i, ++n) {
        px_[n] = static_cast<double>(i);
        py_[n] = static_cast<double>(j);
        pz_[n] = static_cast<double>(task_id_ * cfg_.ez + k);
      }
    }
  }
  std::size_t ne = cfg_.elements_per_task();
  energy_.assign(ne, 0.0);
  pressure_.assign(ne, 0.0);
  relvol_.assign(ne, 1.0);
  // Sedov-style point deposit: the first element of task 0 carries the
  // initial energy that drives the shock.
  if (task_id_ == 0) energy_[0] = 3.948746e+7;
  dt_ = 1e-3;
}

void MiniLuleshTask::send_phase(std::uint64_t iter, int phase) {
  if (phase == 0) {
    // Exchange the boundary plane of nodal velocities with Z neighbors
    // (the force contribution across the slab interface).
    for (int dir = -1; dir <= 1; dir += 2) {
      int nbr = task_id_ + dir;
      if (nbr < 0 || nbr >= cfg_.num_tasks) continue;
      std::size_t base = dir < 0 ? 0 : (nodes_per_task() - node_plane());
      std::vector<double> data;
      data.reserve(3 * node_plane());
      for (std::size_t n = 0; n < node_plane(); ++n) data.push_back(vx_[base + n]);
      for (std::size_t n = 0; n < node_plane(); ++n) data.push_back(vy_[base + n]);
      for (std::size_t n = 0; n < node_plane(); ++n) data.push_back(vz_[base + n]);
      send_phase_msg(addr_of(nbr), iter, phase, /*sender=*/-dir,
                     std::move(data));
    }
    return;
  }
  int stage = phase - 1;
  int partner = task_id_ ^ (1 << stage);
  send_phase_msg(addr_of(partner), iter, phase, /*sender=*/partner,
                 {local_dt_min_});
}

int MiniLuleshTask::expected_in_phase(std::uint64_t, int phase) const {
  if (phase == 0) {
    int n = 0;
    if (task_id_ > 0) ++n;
    if (task_id_ < cfg_.num_tasks - 1) ++n;
    return n;
  }
  return 1;
}

void MiniLuleshTask::hydro_step(
    const std::map<int, std::vector<double>>& halos) {
  const double gamma_eos = 1.4;
  const double qq = 0.06;  // artificial viscosity coefficient
  std::size_t ne = cfg_.elements_per_task();

  // Ghost velocity planes (zero at the global boundary).
  std::vector<double> ghost_lo(3 * node_plane(), 0.0);
  std::vector<double> ghost_hi(3 * node_plane(), 0.0);
  for (const auto& [sender, data] : halos) {
    if (sender < 0)
      ghost_lo = data;
    else
      ghost_hi = data;
  }

  // Element update: EOS + viscosity from a divergence proxy built out of
  // the nodal velocities around the element.
  local_dt_min_ = 1e-2;
  std::size_t e = 0;
  for (int k = 0; k < cfg_.ez; ++k) {
    for (int j = 0; j < cfg_.ey; ++j) {
      for (int i = 0; i < cfg_.ex; ++i, ++e) {
        auto nidx = [&](int ii, int jj, int kk) {
          return static_cast<std::size_t>(kk) * node_plane() +
                 static_cast<std::size_t>(jj) * (cfg_.ex + 1) + ii;
        };
        double div = (vx_[nidx(i + 1, j, k)] - vx_[nidx(i, j, k)]) +
                     (vy_[nidx(i, j + 1, k)] - vy_[nidx(i, j, k)]) +
                     (vz_[nidx(i, j, k + 1)] - vz_[nidx(i, j, k)]);
        relvol_[e] = std::max(1e-6, relvol_[e] * (1.0 + dt_ * div));
        double q = div < 0.0 ? qq * div * div : 0.0;
        pressure_[e] =
            std::max(0.0, (gamma_eos - 1.0) * energy_[e] / relvol_[e] + q);
        energy_[e] = std::max(
            0.0, energy_[e] - dt_ * pressure_[e] * div);
        double ss = std::sqrt(gamma_eos * (pressure_[e] + 1e-12) /
                              std::max(relvol_[e], 1e-6));
        double cand = 0.4 / std::max(ss, 1e-9);
        local_dt_min_ = std::min(local_dt_min_, cand);
      }
    }
  }
  ACR_ASSERT(e == ne);
  (void)ne;

  // Nodal update: accelerate nodes away from high pressure (gradient
  // proxy), using the ghost planes at the slab interfaces.
  auto pressure_at = [&](int i, int j, int k) {
    i = std::clamp(i, 0, cfg_.ex - 1);
    j = std::clamp(j, 0, cfg_.ey - 1);
    k = std::clamp(k, 0, cfg_.ez - 1);
    return pressure_[static_cast<std::size_t>(k) * cfg_.ex * cfg_.ey +
                     static_cast<std::size_t>(j) * cfg_.ex + i];
  };
  std::size_t n = 0;
  for (int k = 0; k <= cfg_.ez; ++k) {
    for (int j = 0; j <= cfg_.ey; ++j) {
      for (int i = 0; i <= cfg_.ex; ++i, ++n) {
        double gx = pressure_at(i, j, k) - pressure_at(i - 1, j, k);
        double gy = pressure_at(i, j, k) - pressure_at(i, j - 1, k);
        double gz = pressure_at(i, j, k) - pressure_at(i, j, k - 1);
        // Interface coupling: blend in the neighbor's boundary velocity so
        // information crosses the slab boundary.
        if (k == 0) {
          std::size_t g = static_cast<std::size_t>(j) * (cfg_.ex + 1) + i;
          vz_[n] = 0.5 * (vz_[n] + ghost_lo[2 * node_plane() + g]);
        }
        if (k == cfg_.ez) {
          std::size_t g = static_cast<std::size_t>(j) * (cfg_.ex + 1) + i;
          vz_[n] = 0.5 * (vz_[n] + ghost_hi[2 * node_plane() + g]);
        }
        vx_[n] -= dt_ * gx;
        vy_[n] -= dt_ * gy;
        vz_[n] -= dt_ * gz;
        px_[n] += dt_ * vx_[n];
        py_[n] += dt_ * vy_[n];
        pz_[n] += dt_ * vz_[n];
      }
    }
  }
}

double MiniLuleshTask::compute_phase(
    std::uint64_t, int phase, const std::map<int, std::vector<double>>& msgs) {
  if (phase == 0) {
    hydro_step(msgs);
    if (stages_ == 0) dt_ = std::min(local_dt_min_, 1e-2);
    return static_cast<double>(cfg_.elements_per_task()) *
           cfg_.seconds_per_element;
  }
  ACR_REQUIRE(msgs.size() == 1, "dt butterfly expects one partner message");
  local_dt_min_ = std::min(local_dt_min_, msgs.begin()->second[0]);
  if (phase == stages_) dt_ = std::min(local_dt_min_, 1e-2);
  return 1e-7;
}

void MiniLuleshTask::pup_state(pup::Puper& p) {
  p | px_;
  p | py_;
  p | pz_;
  p | vx_;
  p | vy_;
  p | vz_;
  p | energy_;
  p | pressure_;
  p | relvol_;
  p | dt_;
  p | local_dt_min_;
}

double MiniLuleshTask::total_energy() const {
  double s = 0.0;
  for (double e : energy_) s += e;
  return s;
}

}  // namespace acr::apps
