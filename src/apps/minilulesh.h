// MiniLulesh: a reduced Lagrangian explicit shock-hydrodynamics step in the
// style of LLNL's LULESH (§6.1). Captures the traits the paper leans on:
//  * both element-centred (energy, pressure, relative volume) and
//    node-centred (coordinates, velocities) fields — several independently
//    shaped arrays, making serialization structurally richer than a single
//    block (the paper notes LULESH's higher local-checkpoint cost);
//  * a global minimum-timestep reduction every cycle (butterfly min-reduce);
//  * transcendental-heavy per-element updates (EOS + artificial viscosity).
// The mesh is a 1D slab decomposition of a structured hex mesh along Z.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/iterative.h"
#include "rt/cluster.h"

namespace acr::apps {

struct MiniLuleshConfig {
  /// Elements per task per dimension (paper: 32x32x64 per core).
  int ex = 6;
  int ey = 6;
  int ez = 6;
  int num_tasks = 4;  ///< power of two (dt min-reduce butterfly)
  int slots_per_node = 1;
  std::uint64_t iterations = 12;
  double seconds_per_element = 6e-8;  ///< hydro step is flop-heavy

  int nodes_needed() const {
    return (num_tasks + slots_per_node - 1) / slots_per_node;
  }
  std::size_t elements_per_task() const {
    return static_cast<std::size_t>(ex) * ey * ez;
  }
  rt::Cluster::TaskFactory factory() const;
};

class MiniLuleshTask final : public IterativeTask {
 public:
  MiniLuleshTask(const MiniLuleshConfig& config, int task_id);

  double total_energy() const;
  double dt() const { return dt_; }

 protected:
  void init() override;
  void send_phase(std::uint64_t iter, int phase) override;
  int expected_in_phase(std::uint64_t iter, int phase) const override;
  double compute_phase(std::uint64_t iter, int phase,
                       const std::map<int, std::vector<double>>& msgs) override;
  int num_phases() const override { return 1 + stages_; }
  void pup_state(pup::Puper& p) override;

 private:
  std::size_t node_plane() const {
    return static_cast<std::size_t>(cfg_.ex + 1) * (cfg_.ey + 1);
  }
  std::size_t nodes_per_task() const {
    return node_plane() * static_cast<std::size_t>(cfg_.ez + 1);
  }
  rt::TaskAddr addr_of(int task) const {
    return rt::TaskAddr{task / cfg_.slots_per_node,
                        task % cfg_.slots_per_node};
  }

  void hydro_step(const std::map<int, std::vector<double>>& halos);

  MiniLuleshConfig cfg_;
  int task_id_;
  int stages_;

  // Node-centred fields (checkpointed): positions and velocities, SoA.
  std::vector<double> px_, py_, pz_;
  std::vector<double> vx_, vy_, vz_;
  // Element-centred fields (checkpointed).
  std::vector<double> energy_, pressure_, relvol_;
  // Cycle state.
  double dt_ = 1e-3;
  double local_dt_min_ = 1e-3;  ///< scratch: this cycle's local candidate
};

}  // namespace acr::apps
