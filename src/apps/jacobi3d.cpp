#include "apps/jacobi3d.h"

#include <cmath>

#include "common/require.h"

namespace acr::apps {

std::size_t Jacobi3DConfig::doubles_per_task() const {
  return static_cast<std::size_t>(block_x + 2) *
         static_cast<std::size_t>(block_y + 2) *
         static_cast<std::size_t>(block_z + 2);
}

rt::Cluster::TaskFactory Jacobi3DConfig::factory() const {
  Jacobi3DConfig cfg = *this;
  return [cfg](int replica, int node_index) {
    (void)replica;  // replicas run identical work
    std::vector<std::unique_ptr<rt::Task>> tasks;
    int first = node_index * cfg.slots_per_node;
    int last = std::min(first + cfg.slots_per_node, cfg.total_tasks());
    for (int t = first; t < last; ++t)
      tasks.push_back(std::make_unique<Jacobi3DTask>(cfg, t));
    return tasks;
  };
}

Jacobi3DTask::Jacobi3DTask(const Jacobi3DConfig& config, int task_id)
    : IterativeTask(config.iterations), cfg_(config), task_id_(task_id) {
  ACR_REQUIRE(task_id >= 0 && task_id < cfg_.total_tasks(),
              "task id outside the task grid");
  tx_ = task_id % cfg_.tasks_x;
  ty_ = (task_id / cfg_.tasks_x) % cfg_.tasks_y;
  tz_ = task_id / (cfg_.tasks_x * cfg_.tasks_y);
}

void Jacobi3DTask::init() {
  u_.assign(cfg_.doubles_per_task(), 0.0);
  u_new_.assign(cfg_.doubles_per_task(), 0.0);
  // Deterministic initial condition from global coordinates: identical in
  // both replicas, different across tasks. Points at or beyond the seeded
  // Z fraction start exactly zero and stay bitwise zero until the update
  // front (one cell per iteration) reaches them.
  double z_seeded =
      cfg_.init_fill_fraction *
      static_cast<double>(cfg_.tasks_z) * static_cast<double>(cfg_.block_z);
  for (int k = 0; k < cfg_.block_z; ++k) {
    for (int j = 0; j < cfg_.block_y; ++j) {
      for (int i = 0; i < cfg_.block_x; ++i) {
        double gx = tx_ * cfg_.block_x + i;
        double gy = ty_ * cfg_.block_y + j;
        double gz = tz_ * cfg_.block_z + k;
        if (gz >= z_seeded) continue;
        u_[idx(i, j, k)] =
            std::sin(0.13 * gx) * std::cos(0.07 * gy) + 0.01 * gz;
      }
    }
  }
}

int Jacobi3DTask::neighbor_task(int face) const {
  int nx = tx_, ny = ty_, nz = tz_;
  switch (face) {
    case XLo: nx -= 1; break;
    case XHi: nx += 1; break;
    case YLo: ny -= 1; break;
    case YHi: ny += 1; break;
    case ZLo: nz -= 1; break;
    case ZHi: nz += 1; break;
  }
  if (nx < 0 || nx >= cfg_.tasks_x || ny < 0 || ny >= cfg_.tasks_y ||
      nz < 0 || nz >= cfg_.tasks_z)
    return -1;
  return nx + cfg_.tasks_x * (ny + cfg_.tasks_y * nz);
}

std::vector<double> Jacobi3DTask::extract_face(int face) const {
  std::vector<double> out;
  auto push_plane_x = [&](int i) {
    for (int k = 0; k < cfg_.block_z; ++k)
      for (int j = 0; j < cfg_.block_y; ++j) out.push_back(u_[idx(i, j, k)]);
  };
  auto push_plane_y = [&](int j) {
    for (int k = 0; k < cfg_.block_z; ++k)
      for (int i = 0; i < cfg_.block_x; ++i) out.push_back(u_[idx(i, j, k)]);
  };
  auto push_plane_z = [&](int k) {
    for (int j = 0; j < cfg_.block_y; ++j)
      for (int i = 0; i < cfg_.block_x; ++i) out.push_back(u_[idx(i, j, k)]);
  };
  switch (face) {
    case XLo: push_plane_x(0); break;
    case XHi: push_plane_x(cfg_.block_x - 1); break;
    case YLo: push_plane_y(0); break;
    case YHi: push_plane_y(cfg_.block_y - 1); break;
    case ZLo: push_plane_z(0); break;
    case ZHi: push_plane_z(cfg_.block_z - 1); break;
  }
  return out;
}

void Jacobi3DTask::apply_halo(int face, const std::vector<double>& data) {
  std::size_t n = 0;
  auto pull_plane_x = [&](int i_ghost) {
    for (int k = 0; k < cfg_.block_z; ++k)
      for (int j = 0; j < cfg_.block_y; ++j)
        u_[idx(i_ghost, j, k)] = data[n++];
  };
  auto pull_plane_y = [&](int j_ghost) {
    for (int k = 0; k < cfg_.block_z; ++k)
      for (int i = 0; i < cfg_.block_x; ++i)
        u_[idx(i, j_ghost, k)] = data[n++];
  };
  auto pull_plane_z = [&](int k_ghost) {
    for (int j = 0; j < cfg_.block_y; ++j)
      for (int i = 0; i < cfg_.block_x; ++i)
        u_[idx(i, j, k_ghost)] = data[n++];
  };
  // Data arriving from face F fills the ghost plane on side F.
  switch (face) {
    case XLo: pull_plane_x(-1); break;
    case XHi: pull_plane_x(cfg_.block_x); break;
    case YLo: pull_plane_y(-1); break;
    case YHi: pull_plane_y(cfg_.block_y); break;
    case ZLo: pull_plane_z(-1); break;
    case ZHi: pull_plane_z(cfg_.block_z); break;
  }
}

void Jacobi3DTask::send_phase(std::uint64_t iter, int phase) {
  for (int face = 0; face < 6; ++face) {
    int nbr = neighbor_task(face);
    if (nbr < 0) continue;
    rt::TaskAddr dst{nbr / cfg_.slots_per_node, nbr % cfg_.slots_per_node};
    // The receiver sees this data arriving on its opposite face.
    send_phase_msg(dst, iter, phase, opposite(face), extract_face(face));
  }
}

int Jacobi3DTask::expected_in_phase(std::uint64_t, int) const {
  int n = 0;
  for (int face = 0; face < 6; ++face)
    if (neighbor_task(face) >= 0) ++n;
  return n;
}

double Jacobi3DTask::compute_phase(
    std::uint64_t, int, const std::map<int, std::vector<double>>& msgs) {
  for (const auto& [face, data] : msgs) apply_halo(face, data);
  const double inv6 = 1.0 / 6.0;
  for (int k = 0; k < cfg_.block_z; ++k) {
    for (int j = 0; j < cfg_.block_y; ++j) {
      for (int i = 0; i < cfg_.block_x; ++i) {
        u_new_[idx(i, j, k)] =
            inv6 * (u_[idx(i - 1, j, k)] + u_[idx(i + 1, j, k)] +
                    u_[idx(i, j - 1, k)] + u_[idx(i, j + 1, k)] +
                    u_[idx(i, j, k - 1)] + u_[idx(i, j, k + 1)]);
      }
    }
  }
  std::swap(u_, u_new_);
  // Canonicalize the ghost shell: the swapped-in buffer's ghost planes hold
  // two-iteration-old halo data, which would differ between a freshly
  // restored replica and one that never rolled back — a false SDC mismatch.
  // Zeroed ghosts make the checkpointed state a pure function of the
  // iteration number. (Halos are rewritten before every stencil pass.)
  zero_ghost_planes();
  double points = static_cast<double>(cfg_.block_x) * cfg_.block_y *
                  cfg_.block_z;
  return points * cfg_.seconds_per_point;
}

void Jacobi3DTask::zero_ghost_planes() {
  for (int k = 0; k < cfg_.block_z; ++k) {
    for (int j = 0; j < cfg_.block_y; ++j) {
      u_[idx(-1, j, k)] = 0.0;
      u_[idx(cfg_.block_x, j, k)] = 0.0;
    }
    for (int i = 0; i < cfg_.block_x; ++i) {
      u_[idx(i, -1, k)] = 0.0;
      u_[idx(i, cfg_.block_y, k)] = 0.0;
    }
  }
  for (int j = 0; j < cfg_.block_y; ++j) {
    for (int i = 0; i < cfg_.block_x; ++i) {
      u_[idx(i, j, -1)] = 0.0;
      u_[idx(i, j, cfg_.block_z)] = 0.0;
    }
  }
}

void Jacobi3DTask::pup_state(pup::Puper& p) {
  p | u_;  // u_new_ is scratch and excluded from the checkpoint
  if (p.is_unpacking()) u_new_.assign(u_.size(), 0.0);
}

double Jacobi3DTask::solution_norm() const {
  double s = 0.0;
  for (int k = 0; k < cfg_.block_z; ++k)
    for (int j = 0; j < cfg_.block_y; ++j)
      for (int i = 0; i < cfg_.block_x; ++i) s += u_[idx(i, j, k)] * u_[idx(i, j, k)];
  return s;
}

}  // namespace acr::apps
