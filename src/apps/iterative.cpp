#include "apps/iterative.h"

namespace acr::apps {

void IterativeTask::on_start() {
  if (!initialized_) {
    init();
    initialized_ = true;
  }
  begin_phase();
}

void IterativeTask::on_resume() {
  if (iter_ >= total_iters_) {
    ctx->notify_done();
    return;
  }
  begin_phase();
}

void IterativeTask::begin_phase() {
  if (iter_ >= total_iters_) {
    ctx->notify_done();
    return;
  }
  std::uint64_t iter = iter_ + 1;
  // Resend protection: a pause/unpause cycle must not duplicate sends, but
  // a rollback (which rewinds sent_iter_/sent_phase_ via pup) must resend.
  bool already_sent =
      sent_iter_ > iter ||
      (sent_iter_ == iter && sent_phase_ >= phase_);
  if (!already_sent) {
    sent_iter_ = iter;
    sent_phase_ = phase_;
    send_phase(iter, phase_);
  }
  try_compute();
}

void IterativeTask::on_message(const rt::Message& m) {
  PhaseMsg pm = rt::unpack_payload<PhaseMsg>(m);
  // Stale data for an already-completed iteration (duplicates after a
  // rollback in the *other* direction) is dropped; identical duplicates for
  // a pending phase overwrite idempotently.
  if (pm.iter <= iter_) return;
  buffer_[{pm.iter, pm.phase}][pm.sender] = std::move(pm.data);
  try_compute();
}

void IterativeTask::try_compute() {
  if (computing_ || ctx->paused()) return;
  if (iter_ >= total_iters_) return;
  std::uint64_t iter = iter_ + 1;
  auto key = std::make_pair(iter, phase_);
  int expected = expected_in_phase(iter, phase_);
  auto it = buffer_.find(key);
  int have = it == buffer_.end() ? 0 : static_cast<int>(it->second.size());
  if (have < expected) return;

  static const std::map<std::int32_t, std::vector<double>> kEmpty;
  const auto& msgs = it == buffer_.end() ? kEmpty : it->second;
  computing_ = true;
  double cost = compute_phase(iter, phase_, msgs);
  if (it != buffer_.end()) buffer_.erase(it);
  ctx->after_compute(cost, [this]() { finish_phase(); });
}

void IterativeTask::finish_phase() {
  computing_ = false;
  ++phase_;
  if (phase_ < num_phases()) {
    begin_phase();
    return;
  }
  // Iteration complete.
  phase_ = 0;
  ++iter_;
  rt::ProgressDecision d = ctx->report_progress(iter_);
  if (iter_ >= total_iters_) {
    ctx->notify_done();
    return;
  }
  if (d == rt::ProgressDecision::Pause) return;
  begin_phase();
}

void IterativeTask::pup(pup::Puper& p) {
  p | total_iters_;
  p | iter_;
  p | phase_;
  p | sent_iter_;
  p | sent_phase_;
  p | initialized_;
  p | buffer_;
  pup_state(p);
  // A restore can land while this object was mid-compute (the node was
  // running when the rollback arrived); the stale transient would wedge
  // try_compute forever. Checkpoints are only cut at iteration boundaries,
  // where computing_ is false by construction.
  if (p.is_unpacking()) computing_ = false;
}

void IterativeTask::send_phase_msg(rt::TaskAddr dst, std::uint64_t iter,
                                   int phase, int sender_key,
                                   std::vector<double> data) {
  PhaseMsg pm;
  pm.iter = iter;
  pm.phase = phase;
  pm.sender = sender_key;
  pm.data = std::move(data);
  ctx->send(dst, /*tag=*/1, rt::pack_payload(pm));
}

}  // namespace acr::apps
