// Base class for bulk-synchronous iterative mini-app tasks.
//
// Encapsulates the interaction contract with ACR's coordinated
// checkpointing (rt/task.h): per-iteration progress reports, pausing at the
// consensus iteration, early-arrival buffering that is part of the
// checkpoint, idempotent handling of duplicate messages after rollbacks,
// and exact re-entry via on_resume().
//
// An iteration consists of `num_phases()` sub-phases (e.g. HPCCG: halo
// exchange + matvec, then the butterfly allreduce stages of the dot
// products). In each phase the task sends messages, waits for the expected
// incoming set, computes, and moves on; completing the last phase completes
// the iteration.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "rt/task.h"

namespace acr::apps {

/// Payload of every app message.
struct PhaseMsg {
  std::uint64_t iter = 0;   ///< iteration the data belongs to (1-based)
  std::int32_t phase = 0;   ///< sub-phase within the iteration
  std::int32_t sender = 0;  ///< app-defined sender key (unique per phase)
  std::vector<double> data;

  void pup(pup::Puper& p) {
    p | iter;
    p | phase;
    p | sender;
    p | data;
  }
};

class IterativeTask : public rt::Task {
 public:
  explicit IterativeTask(std::uint64_t total_iterations)
      : total_iters_(total_iterations) {}

  // --- rt::Task ---------------------------------------------------------------
  void on_start() final;
  void on_resume() final;
  void on_message(const rt::Message& m) final;
  void pup(pup::Puper& p) final;
  std::uint64_t progress() const final { return iter_; }

  std::uint64_t total_iterations() const { return total_iters_; }

 protected:
  /// Allocate and initialise application state. Called exactly once, from
  /// the first on_start (never after restores).
  virtual void init() = 0;

  /// Send this task's messages for (iter, phase) via send_phase_msg().
  virtual void send_phase(std::uint64_t iter, int phase) = 0;

  /// How many messages (distinct sender keys) phase `phase` of iteration
  /// `iter` expects. May be zero (compute-only phase).
  virtual int expected_in_phase(std::uint64_t iter, int phase) const = 0;

  /// Perform the real computation for the phase using the received
  /// messages (keyed by sender). Returns the *virtual* compute cost in
  /// seconds charged to the clock. Must be deterministic.
  virtual double compute_phase(std::uint64_t iter, int phase,
                               const std::map<int, std::vector<double>>& msgs) = 0;

  virtual int num_phases() const { return 1; }

  /// Serialize the application state (everything init() set up and
  /// compute_phase mutates).
  virtual void pup_state(pup::Puper& p) = 0;

  /// Send helper for subclasses (wraps PhaseMsg + ctx->send).
  void send_phase_msg(rt::TaskAddr dst, std::uint64_t iter, int phase,
                      int sender_key, std::vector<double> data);

 private:
  void begin_phase();
  void try_compute();
  void finish_phase();

  std::uint64_t total_iters_;
  std::uint64_t iter_ = 0;  ///< completed iterations
  std::int32_t phase_ = 0;  ///< current sub-phase of iteration iter_+1
  /// Highest (iter, phase) whose sends already went out (survives pup so a
  /// restore knows it must resend, and a plain unpause knows it must not).
  std::uint64_t sent_iter_ = 0;
  std::int32_t sent_phase_ = -1;
  bool initialized_ = false;
  bool computing_ = false;  ///< transient; always false at iteration ends

  /// Early-arrival buffer: (iter, phase) -> sender -> payload. Part of the
  /// checkpoint (empty at consistent cuts for lock-step apps, but the
  /// framework does not rely on that).
  std::map<std::pair<std::uint64_t, std::int32_t>,
           std::map<std::int32_t, std::vector<double>>>
      buffer_;
};

}  // namespace acr::apps
