// LeanMD mini-app: short-range molecular dynamics with cell-based spatial
// decomposition and atom migration (§6.1). Each task owns one slab of the
// 1D-decomposed simulation box. Every step:
//   phase 0 — send positions of atoms within the cutoff of a slab boundary
//             to that neighbor; compute Lennard-Jones-style forces among
//             local atoms and against ghost atoms; integrate.
//   phase 1 — migrate atoms that crossed a slab boundary (variable-size
//             messages: the checkpoint size of a task changes over time,
//             unlike the fixed-block apps).
// Atoms are kept sorted by id so both replicas serialize identical state.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/iterative.h"
#include "rt/cluster.h"

namespace acr::apps {

struct LeanMdConfig {
  /// Atoms initially placed per task (paper: 4000 per core).
  int atoms_per_task = 64;
  int num_tasks = 4;
  int slots_per_node = 2;  ///< Charm++-style: a few cells per node
  std::uint64_t iterations = 10;
  double cutoff = 2.5;
  double slab_width = 10.0;  ///< box extent per task along Z
  double box_xy = 8.0;
  double dt = 2e-3;
  double seconds_per_pair = 2e-9;  ///< virtual cost per interaction pair

  int nodes_needed() const {
    return (num_tasks + slots_per_node - 1) / slots_per_node;
  }
  rt::Cluster::TaskFactory factory() const;
};

class LeanMdTask final : public IterativeTask {
 public:
  LeanMdTask(const LeanMdConfig& config, int task_id);

  std::size_t atom_count() const { return ids_.size(); }
  double kinetic_energy() const;

 protected:
  void init() override;
  void send_phase(std::uint64_t iter, int phase) override;
  int expected_in_phase(std::uint64_t iter, int phase) const override;
  double compute_phase(std::uint64_t iter, int phase,
                       const std::map<int, std::vector<double>>& msgs) override;
  int num_phases() const override { return 2; }
  void pup_state(pup::Puper& p) override;

 private:
  rt::TaskAddr addr_of(int task) const {
    return rt::TaskAddr{task / cfg_.slots_per_node,
                        task % cfg_.slots_per_node};
  }
  double z_lo() const { return task_id_ * cfg_.slab_width; }
  double z_hi() const { return (task_id_ + 1) * cfg_.slab_width; }

  /// Force/integration step; returns the number of pairs evaluated.
  double force_and_integrate(const std::map<int, std::vector<double>>& ghosts);
  void sort_atoms_by_id();

  LeanMdConfig cfg_;
  int task_id_;

  // Atom state, SoA, sorted by id (all checkpointed).
  std::vector<std::int64_t> ids_;
  std::vector<double> x_, y_, z_;
  std::vector<double> vx_, vy_, vz_;

  // Scratch between phase 0 and phase 1 of one step: indices of atoms that
  // crossed a boundary (rebuilt every step, but pupped for safety since it
  // is live between phases... it is empty at iteration boundaries).
  std::vector<double> emigrants_lo_, emigrants_hi_;
};

}  // namespace acr::apps
