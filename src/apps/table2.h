// Table 2 of the paper: per-core mini-application configurations and the
// resulting checkpoint footprints. The large-scale benches (Figs. 8-11)
// need only the checkpoint bytes per node; the runtime-scale tests and
// Fig. 12 use scaled-down instances of the real task classes.
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace acr::apps {

struct MiniAppSpec {
  const char* name;
  const char* model;        ///< "charm" or "ampi"
  const char* config;       ///< Table 2 configuration string
  bool high_memory_pressure;
  /// Checkpoint bytes per core on BG/P implied by the configuration
  /// (user data serialized by PUP).
  double checkpoint_bytes_per_core;
  /// Serialization slowdown factor relative to a flat memcpy: 1 = one
  /// contiguous block; higher = scattered / complex structures (the paper
  /// notes LULESH's costlier serialization and the MD apps' scattered
  /// memory).
  double serialization_complexity;
};

/// The six evaluated variants of Fig. 8/10 in paper order.
inline constexpr std::array<MiniAppSpec, 6> kTable2 = {{
    // Jacobi3D: 64*64*128 doubles/core = 4 MiB/core.
    {"Jacobi3D-Charm", "charm", "64*64*128 grid points", true,
     64.0 * 64 * 128 * 8, 1.0},
    {"Jacobi3D-AMPI", "ampi", "64*64*128 grid points", true,
     64.0 * 64 * 128 * 8, 1.1},
    // HPCCG: 40^3 rows/core, CG keeps ~4 row-length vectors + operator data.
    {"HPCCG", "ampi", "40*40*40 grid points", true,
     40.0 * 40 * 40 * 8 * 9, 1.2},
    // LULESH: 32*32*64 elements/core, ~16 element fields + ~6 nodal fields.
    {"LULESH", "ampi", "32*32*64 mesh elements", true,
     32.0 * 32 * 64 * 8 * 14, 1.8},
    // LeanMD: 4000 atoms/core * (pos+vel+id) ~ 56 B/atom.
    {"LeanMD", "charm", "4000 atoms", false, 4000.0 * 56, 2.5},
    // miniMD: 1000 atoms/core + neighbor lists.
    {"miniMD", "ampi", "1000 atoms", false, 1000.0 * 56 * 3, 2.5},
}};

/// BG/P ran 4 cores per node in the paper's SMP ("shared-memory") mode.
inline constexpr int kCoresPerNode = 4;

inline double checkpoint_bytes_per_node(const MiniAppSpec& spec) {
  return spec.checkpoint_bytes_per_core * kCoresPerNode;
}

}  // namespace acr::apps
