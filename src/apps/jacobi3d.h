// Jacobi3D mini-app: 7-point stencil relaxation on a 3D structured mesh
// (§6.1). The global domain is block-decomposed over a 3D grid of tasks;
// each iteration exchanges six face halos and applies the stencil.
//
// Two flavours mirror the paper's Charm++ vs AMPI versions: the Charm++
// style overdecomposes (several tasks per node), the AMPI style runs one
// rank-task per node. Both share this implementation; only
// `slots_per_node` differs.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "apps/iterative.h"
#include "rt/cluster.h"

namespace acr::apps {

struct Jacobi3DConfig {
  int tasks_x = 2;
  int tasks_y = 2;
  int tasks_z = 2;
  /// Interior points per task per dimension (paper: 64x64x128 per core).
  int block_x = 8;
  int block_y = 8;
  int block_z = 8;
  std::uint64_t iterations = 20;
  /// Tasks hosted per node: >1 = Charm++-style overdecomposition,
  /// 1 = AMPI-style one rank per node.
  int slots_per_node = 4;
  /// Virtual compute cost per grid point per iteration (seconds).
  double seconds_per_point = 4e-9;
  /// Fraction of the global Z extent seeded with the sinusoidal initial
  /// condition; the rest starts exactly zero. 1.0 (default) seeds every
  /// point — bit-identical to the historical behaviour. Values < 1
  /// localize the impulse so distant blocks stay bitwise unchanged until
  /// the update front reaches them (the dirty-chunk codec's regime).
  double init_fill_fraction = 1.0;

  int total_tasks() const { return tasks_x * tasks_y * tasks_z; }
  int nodes_needed() const {
    return (total_tasks() + slots_per_node - 1) / slots_per_node;
  }
  /// Checkpointable doubles per task (the solution block).
  std::size_t doubles_per_task() const;

  /// Task factory for rt::Cluster.
  rt::Cluster::TaskFactory factory() const;
};

class Jacobi3DTask final : public IterativeTask {
 public:
  Jacobi3DTask(const Jacobi3DConfig& config, int task_id);

  /// Residual-style digest of the current solution (tests).
  double solution_norm() const;

  /// Direct access to an interior grid value (i,j,k in local block
  /// coordinates). Used by tests and examples to plant deterministic
  /// silent corruption in data that is guaranteed to be checkpointed and
  /// to propagate.
  double& value_at(int i, int j, int k) { return u_[idx(i, j, k)]; }

 protected:
  void init() override;
  void send_phase(std::uint64_t iter, int phase) override;
  int expected_in_phase(std::uint64_t iter, int phase) const override;
  double compute_phase(std::uint64_t iter, int phase,
                       const std::map<int, std::vector<double>>& msgs) override;
  void pup_state(pup::Puper& p) override;

 private:
  // Face directions; the sender key a message carries is the direction the
  // *receiver* sees the data arriving from.
  enum Face : int { XLo = 0, XHi, YLo, YHi, ZLo, ZHi };
  static int opposite(int f) { return f ^ 1; }

  int neighbor_task(int face) const;  ///< -1 at the domain boundary
  void zero_ghost_planes();
  std::vector<double> extract_face(int face) const;
  void apply_halo(int face, const std::vector<double>& data);

  std::size_t idx(int i, int j, int k) const {
    // Ghost layer of one point on each side.
    return static_cast<std::size_t>(
        (k + 1) * (cfg_.block_x + 2) * (cfg_.block_y + 2) +
        (j + 1) * (cfg_.block_x + 2) + (i + 1));
  }

  Jacobi3DConfig cfg_;
  int task_id_;
  int tx_, ty_, tz_;  ///< position in the task grid
  std::vector<double> u_;      ///< solution with ghosts (checkpointed)
  std::vector<double> u_new_;  ///< scratch (not checkpointed)
};

}  // namespace acr::apps
