#include "apps/minimd.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"
#include "common/rng.h"

namespace acr::apps {

namespace {
constexpr std::size_t kGhostRecord = 3;  ///< [x, y, z]
}

rt::Cluster::TaskFactory MiniMdConfig::factory() const {
  MiniMdConfig cfg = *this;
  return [cfg](int replica, int node_index) {
    (void)replica;
    std::vector<std::unique_ptr<rt::Task>> tasks;
    int first = node_index * cfg.slots_per_node;
    int last = std::min(first + cfg.slots_per_node, cfg.num_tasks);
    for (int t = first; t < last; ++t)
      tasks.push_back(std::make_unique<MiniMdTask>(cfg, t));
    return tasks;
  };
}

MiniMdTask::MiniMdTask(const MiniMdConfig& config, int task_id)
    : IterativeTask(config.iterations), cfg_(config), task_id_(task_id) {}

void MiniMdTask::init() {
  Pcg32 rng(0x5EEDBEEFULL ^ static_cast<std::uint64_t>(task_id_), 24);
  double zlo = task_id_ * cfg_.box;
  int n = cfg_.atoms_per_task;
  int per_side =
      std::max(1, static_cast<int>(std::cbrt(static_cast<double>(n))) + 1);
  int placed = 0;
  for (int k = 0; k < per_side && placed < n; ++k) {
    for (int j = 0; j < per_side && placed < n; ++j) {
      for (int i = 0; i < per_side && placed < n; ++i, ++placed) {
        double h = cfg_.box / per_side;
        x_.push_back((i + 0.5) * h + 0.03 * rng.uniform(-1.0, 1.0));
        y_.push_back((j + 0.5) * h + 0.03 * rng.uniform(-1.0, 1.0));
        z_.push_back(zlo + (k + 0.5) * h + 0.03 * rng.uniform(-1.0, 1.0));
        vx_.push_back(0.2 * rng.uniform(-1.0, 1.0));
        vy_.push_back(0.2 * rng.uniform(-1.0, 1.0));
        vz_.push_back(0.2 * rng.uniform(-1.0, 1.0));
      }
    }
  }
  rebuild_neighbor_list();
}

void MiniMdTask::rebuild_neighbor_list() {
  list_a_.clear();
  list_b_.clear();
  double r = cfg_.cutoff + cfg_.skin;
  double r2 = r * r;
  std::size_t n = x_.size();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      double dx = x_[a] - x_[b], dy = y_[a] - y_[b], dz = z_[a] - z_[b];
      if (dx * dx + dy * dy + dz * dz < r2) {
        list_a_.push_back(static_cast<std::int32_t>(a));
        list_b_.push_back(static_cast<std::int32_t>(b));
      }
    }
  }
}

void MiniMdTask::send_phase(std::uint64_t iter, int phase) {
  for (int dir = -1; dir <= 1; dir += 2) {
    int nbr = task_id_ + dir;
    if (nbr < 0 || nbr >= cfg_.num_tasks) continue;
    double zlo = task_id_ * cfg_.box;
    double zhi = zlo + cfg_.box;
    std::vector<double> data;
    for (std::size_t a = 0; a < x_.size(); ++a) {
      bool near = dir < 0 ? (z_[a] - zlo < cfg_.cutoff)
                          : (zhi - z_[a] < cfg_.cutoff);
      if (near) data.insert(data.end(), {x_[a], y_[a], z_[a]});
    }
    send_phase_msg(addr_of(nbr), iter, phase, /*sender=*/-dir,
                   std::move(data));
  }
}

int MiniMdTask::expected_in_phase(std::uint64_t, int) const {
  int n = 0;
  if (task_id_ > 0) ++n;
  if (task_id_ < cfg_.num_tasks - 1) ++n;
  return n;
}

double MiniMdTask::compute_phase(
    std::uint64_t iter, int, const std::map<int, std::vector<double>>& msgs) {
  if (rebuild_step(iter)) {
    rebuild_neighbor_list();
    last_rebuild_iter_ = iter;
  }
  std::size_t n = x_.size();
  std::vector<double> fx(n, 0.0), fy(n, 0.0), fz(n, 0.0);
  double cutoff2 = cfg_.cutoff * cfg_.cutoff;
  double pairs = 0.0;

  auto pair_force = [&](double dx, double dy, double dz, double& mag) {
    double r2 = dx * dx + dy * dy + dz * dz;
    if (r2 >= cutoff2 || r2 < 1e-12) return false;
    double inv2 = 1.0 / r2;
    double inv6 = inv2 * inv2 * inv2;
    mag = std::clamp(24.0 * inv2 * inv6 * (2.0 * inv6 - 1.0), -1e3, 1e3);
    return true;
  };

  // Owned pairs through the stored list (scattered access on purpose).
  for (std::size_t p = 0; p < list_a_.size(); ++p) {
    std::size_t a = static_cast<std::size_t>(list_a_[p]);
    std::size_t b = static_cast<std::size_t>(list_b_[p]);
    double dx = x_[a] - x_[b], dy = y_[a] - y_[b], dz = z_[a] - z_[b];
    double mag = 0.0;
    if (!pair_force(dx, dy, dz, mag)) continue;
    pairs += 1.0;
    fx[a] += mag * dx;
    fy[a] += mag * dy;
    fz[a] += mag * dz;
    fx[b] -= mag * dx;
    fy[b] -= mag * dy;
    fz[b] -= mag * dz;
  }
  // Ghost interactions (all pairs against the imported boundary atoms).
  for (const auto& [sender, data] : msgs) {
    (void)sender;
    for (std::size_t off = 0; off + kGhostRecord <= data.size();
         off += kGhostRecord) {
      for (std::size_t a = 0; a < n; ++a) {
        double dx = x_[a] - data[off], dy = y_[a] - data[off + 1],
               dz = z_[a] - data[off + 2];
        double mag = 0.0;
        if (!pair_force(dx, dy, dz, mag)) continue;
        pairs += 1.0;
        fx[a] += mag * dx;
        fy[a] += mag * dy;
        fz[a] += mag * dz;
      }
    }
  }

  // Integrate with reflective walls (fixed ownership).
  double zlo = task_id_ * cfg_.box;
  double zhi = zlo + cfg_.box;
  for (std::size_t a = 0; a < n; ++a) {
    vx_[a] += cfg_.dt * fx[a];
    vy_[a] += cfg_.dt * fy[a];
    vz_[a] += cfg_.dt * fz[a];
    x_[a] += cfg_.dt * vx_[a];
    y_[a] += cfg_.dt * vy_[a];
    z_[a] += cfg_.dt * vz_[a];
    if (x_[a] < 0.0 || x_[a] > cfg_.box) vx_[a] = -vx_[a];
    if (y_[a] < 0.0 || y_[a] > cfg_.box) vy_[a] = -vy_[a];
    if (z_[a] < zlo || z_[a] > zhi) vz_[a] = -vz_[a];
    x_[a] = std::clamp(x_[a], 0.0, cfg_.box);
    y_[a] = std::clamp(y_[a], 0.0, cfg_.box);
    z_[a] = std::clamp(z_[a], zlo, zhi);
  }
  return (pairs + static_cast<double>(n)) * cfg_.seconds_per_pair;
}

void MiniMdTask::pup_state(pup::Puper& p) {
  p | x_;
  p | y_;
  p | z_;
  p | vx_;
  p | vy_;
  p | vz_;
  p | list_a_;
  p | list_b_;
  p | last_rebuild_iter_;
}

double MiniMdTask::kinetic_energy() const {
  double ke = 0.0;
  for (std::size_t a = 0; a < x_.size(); ++a)
    ke += 0.5 * (vx_[a] * vx_[a] + vy_[a] * vy_[a] + vz_[a] * vz_[a]);
  return ke;
}

}  // namespace acr::apps
