#include "apps/hpccg.h"

#include <bit>
#include <cmath>

#include "common/require.h"

namespace acr::apps {

rt::Cluster::TaskFactory HpccgConfig::factory() const {
  HpccgConfig cfg = *this;
  return [cfg](int replica, int node_index) {
    (void)replica;
    std::vector<std::unique_ptr<rt::Task>> tasks;
    int first = node_index * cfg.slots_per_node;
    int last = std::min(first + cfg.slots_per_node, cfg.num_tasks);
    for (int t = first; t < last; ++t)
      tasks.push_back(std::make_unique<HpccgTask>(cfg, t));
    return tasks;
  };
}

HpccgTask::HpccgTask(const HpccgConfig& config, int task_id)
    : IterativeTask(config.iterations), cfg_(config), task_id_(task_id) {
  ACR_REQUIRE(std::has_single_bit(static_cast<unsigned>(cfg_.num_tasks)),
              "HPCCG butterfly allreduce requires a power-of-two task count");
  stages_ = std::countr_zero(static_cast<unsigned>(cfg_.num_tasks));
}

void HpccgTask::init() {
  x_.assign(rows(), 0.0);
  ap_.assign(rows(), 0.0);
  p_.assign(rows() + 2 * plane(), 0.0);
  r_.assign(rows(), 0.0);
  // b = A * ones; with x0 = 0, r0 = b and p0 = r0. For the 27-point
  // operator with diagonal 27 and off-diagonals -1, b_i = 27 - #neighbors.
  bool at_zlo = task_id_ == 0;
  bool at_zhi = task_id_ == cfg_.num_tasks - 1;
  for (int k = 0; k < cfg_.nz; ++k) {
    for (int j = 0; j < cfg_.ny; ++j) {
      for (int i = 0; i < cfg_.nx; ++i) {
        int neighbors = 0;
        for (int dk = -1; dk <= 1; ++dk) {
          int gk_missing = (k + dk < 0 && at_zlo) ||
                           (k + dk >= cfg_.nz && at_zhi);
          if (gk_missing) continue;
          for (int dj = -1; dj <= 1; ++dj) {
            if (j + dj < 0 || j + dj >= cfg_.ny) continue;
            for (int di = -1; di <= 1; ++di) {
              if (i + di < 0 || i + di >= cfg_.nx) continue;
              if (di == 0 && dj == 0 && dk == 0) continue;
              ++neighbors;
            }
          }
        }
        std::size_t row = static_cast<std::size_t>(k) * plane() +
                          static_cast<std::size_t>(j) * cfg_.nx + i;
        r_[row] = 27.0 - neighbors;
        p_[plane() + row] = r_[row];  // p0 = r0 (interior offset by a plane)
      }
    }
  }
}

void HpccgTask::send_phase(std::uint64_t iter, int phase) {
  (void)iter;
  if (phase == 0) {
    // Boundary planes of p to the Z neighbors.
    for (int dir = -1; dir <= 1; dir += 2) {
      int nbr = task_id_ + dir;
      if (nbr < 0 || nbr >= cfg_.num_tasks) continue;
      std::vector<double> face(plane());
      std::size_t k = dir < 0 ? 0 : static_cast<std::size_t>(cfg_.nz - 1);
      for (std::size_t n = 0; n < plane(); ++n)
        face[n] = p_[plane() + k * plane() + n];
      // The receiver sees this plane arriving from the opposite direction.
      send_phase_msg(addr_of(nbr), iter, phase, /*sender=*/-dir,
                     std::move(face));
    }
    return;
  }
  // Butterfly stage: first ladder reduces [p·Ap, bootstrap r·r], second
  // ladder reduces the fresh r·r.
  int stage = (phase - 1) % stages_;
  int partner = task_id_ ^ (1 << stage);
  bool first_ladder = phase <= stages_;
  std::vector<double> payload =
      first_ladder ? std::vector<double>{red1_[0], red1_[1]}
                   : std::vector<double>{red2_};
  send_phase_msg(addr_of(partner), iter, phase, /*sender=*/partner,
                 std::move(payload));
}

int HpccgTask::expected_in_phase(std::uint64_t, int phase) const {
  if (phase == 0) {
    int n = 0;
    if (task_id_ > 0) ++n;
    if (task_id_ < cfg_.num_tasks - 1) ++n;
    return n;
  }
  return 1;  // butterfly partner
}

double HpccgTask::matvec() {
  const int nx = cfg_.nx, ny = cfg_.ny, nz = cfg_.nz;
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        std::size_t row = static_cast<std::size_t>(k) * plane() +
                          static_cast<std::size_t>(j) * nx + i;
        double sum = 27.0 * p_[plane() + row];
        for (int dk = -1; dk <= 1; ++dk) {
          for (int dj = -1; dj <= 1; ++dj) {
            if (j + dj < 0 || j + dj >= ny) continue;
            for (int di = -1; di <= 1; ++di) {
              if (i + di < 0 || i + di >= nx) continue;
              if (di == 0 && dj == 0 && dk == 0) continue;
              // Ghost planes cover k = -1 and k = nz; absent global
              // boundaries stay zero there.
              std::size_t col =
                  static_cast<std::size_t>(k + dk + 1) * plane() +
                  static_cast<std::size_t>(j + dj) * nx + (i + di);
              sum -= p_[col];
            }
          }
        }
        ap_[row] = sum;
      }
    }
  }
  return 2.0 * 27.0 * static_cast<double>(rows());
}

void HpccgTask::apply_alpha_update() {
  if (cg_steps_done_ == 0) rtrans_ = red1_[1];  // bootstrap r·r
  double alpha = red1_[0] != 0.0 ? rtrans_ / red1_[0] : 0.0;
  red2_ = 0.0;
  for (std::size_t n = 0; n < rows(); ++n) {
    x_[n] += alpha * p_[plane() + n];
    r_[n] -= alpha * ap_[n];
    red2_ += r_[n] * r_[n];
  }
}

void HpccgTask::apply_beta_update() {
  double rr_new = red2_;
  double beta = rtrans_ != 0.0 ? rr_new / rtrans_ : 0.0;
  rtrans_ = rr_new;
  for (std::size_t n = 0; n < rows(); ++n)
    p_[plane() + n] = r_[n] + beta * p_[plane() + n];
  ++cg_steps_done_;
}

double HpccgTask::compute_phase(
    std::uint64_t, int phase, const std::map<int, std::vector<double>>& msgs) {
  if (phase == 0) {
    // Install halos: sender -1 = data from the lower neighbor (our k=-1
    // ghost plane), +1 = upper neighbor (k=nz ghost plane).
    for (const auto& [sender, data] : msgs) {
      std::size_t base = sender < 0
                             ? 0
                             : (static_cast<std::size_t>(cfg_.nz) + 1) *
                                   plane();
      for (std::size_t n = 0; n < plane(); ++n) p_[base + n] = data[n];
    }
    double flops = matvec();
    red1_[0] = 0.0;
    red1_[1] = 0.0;
    for (std::size_t n = 0; n < rows(); ++n) {
      red1_[0] += p_[plane() + n] * ap_[n];
      if (cg_steps_done_ == 0) red1_[1] += r_[n] * r_[n];
    }
    flops += 4.0 * static_cast<double>(rows());
    if (stages_ == 0) {
      // Single task: the "allreduce" is local.
      apply_alpha_update();
      apply_beta_update();
      flops += 6.0 * static_cast<double>(rows());
    }
    return flops * cfg_.seconds_per_flop;
  }

  bool first_ladder = phase <= stages_;
  ACR_REQUIRE(msgs.size() == 1, "butterfly stage expects one partner message");
  const std::vector<double>& v = msgs.begin()->second;
  double flops = 4.0;
  if (first_ladder) {
    red1_[0] += v[0];
    red1_[1] += v[1];
    if (phase == stages_) {
      apply_alpha_update();
      flops += 6.0 * static_cast<double>(rows());
    }
  } else {
    red2_ += v[0];
    if (phase == 2 * stages_) {
      apply_beta_update();
      flops += 4.0 * static_cast<double>(rows());
    }
  }
  return flops * cfg_.seconds_per_flop;
}

void HpccgTask::pup_state(pup::Puper& p) {
  p | x_;
  p | r_;
  p | p_;
  p | rtrans_;
  p | cg_steps_done_;
  if (p.is_unpacking()) ap_.assign(rows(), 0.0);
}

}  // namespace acr::apps
