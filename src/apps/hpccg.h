// HPCCG mini-app: conjugate gradient on a 27-point stencil operator,
// mimicking the Mantevo benchmark (§6.1). One rank-task per node in the
// paper's MPI/AMPI configuration.
//
// The domain is slab-decomposed along Z. Every CG iteration is a
// multi-phase step: halo exchange + local matvec + partial dot products,
// then two butterfly allreduce ladders (p·Ap, then r·r) — the real
// communication skeleton of CG.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/iterative.h"
#include "rt/cluster.h"

namespace acr::apps {

struct HpccgConfig {
  /// Local grid per task (paper: 40x40x40 per core).
  int nx = 8;
  int ny = 8;
  int nz = 8;
  /// Number of tasks (power of two; slab decomposition along Z).
  int num_tasks = 4;
  int slots_per_node = 1;  ///< MPI style: one rank per node
  std::uint64_t iterations = 15;
  double seconds_per_flop = 2.5e-10;

  int nodes_needed() const {
    return (num_tasks + slots_per_node - 1) / slots_per_node;
  }
  std::size_t rows_per_task() const {
    return static_cast<std::size_t>(nx) * ny * nz;
  }
  rt::Cluster::TaskFactory factory() const;
};

class HpccgTask final : public IterativeTask {
 public:
  HpccgTask(const HpccgConfig& config, int task_id);

  double residual_norm() const { return rtrans_; }

 protected:
  void init() override;
  void send_phase(std::uint64_t iter, int phase) override;
  int expected_in_phase(std::uint64_t iter, int phase) const override;
  double compute_phase(std::uint64_t iter, int phase,
                       const std::map<int, std::vector<double>>& msgs) override;
  int num_phases() const override { return 1 + 2 * stages_; }
  void pup_state(pup::Puper& p) override;

 private:
  std::size_t plane() const {
    return static_cast<std::size_t>(cfg_.nx) * cfg_.ny;
  }
  std::size_t rows() const { return cfg_.rows_per_task(); }
  rt::TaskAddr addr_of(int task) const {
    return rt::TaskAddr{task / cfg_.slots_per_node,
                        task % cfg_.slots_per_node};
  }

  /// 27-point operator applied to p_ (with halo planes) into ap_; returns
  /// the flop count.
  double matvec();
  void apply_alpha_update();  ///< after the first allreduce
  void apply_beta_update();   ///< after the second allreduce

  HpccgConfig cfg_;
  int task_id_;
  int stages_;  ///< log2(num_tasks)

  // CG state (checkpointed). p_ carries one ghost plane on each side.
  std::vector<double> x_, r_, p_;
  double rtrans_ = 0.0;
  std::uint64_t cg_steps_done_ = 0;

  // Scratch (rebuilt every iteration; excluded from checkpoints).
  std::vector<double> ap_;
  double red1_[2] = {0.0, 0.0};  ///< [p·Ap, r·r (first iteration bootstrap)]
  double red2_ = 0.0;            ///< new r·r
};

}  // namespace acr::apps
