#include "buf/buffer.h"

#include <cstring>

#include "parallel/pool.h"

namespace acr::buf {

Buffer Buffer::copy_of(std::span<const std::byte> bytes) {
  if (bytes.empty()) return Buffer();
  // The one place checkpoint-sized images are byte-copied (buddy images,
  // CoW detach below): fan the copy across the kernel pool when enabled.
  auto storage = std::make_shared<Storage>(bytes.size());
  parallel::copy_bytes(storage->data(), bytes.data(), bytes.size());
  std::size_t len = storage->size();
  return Buffer(std::move(storage), 0, len);
}

Buffer Buffer::wrap(std::vector<std::byte> bytes) {
  if (bytes.empty()) return Buffer();
  auto storage = std::make_shared<Storage>(std::move(bytes));
  std::size_t len = storage->size();
  return Buffer(std::move(storage), 0, len);
}

bool Buffer::content_equals(const Buffer& other) const {
  if (len_ != other.len_) return false;
  if (len_ == 0) return true;
  if (storage_ == other.storage_ && offset_ == other.offset_) return true;
  return std::memcmp(data(), other.data(), len_) == 0;
}

Buffer Buffer::slice(std::size_t offset, std::size_t len) const {
  ACR_REQUIRE(offset <= len_ && len <= len_ - offset,
              "buffer slice out of range");
  if (len == 0) return Buffer();
  return Buffer(storage_, offset_ + offset, len);
}

std::span<std::byte> Buffer::mutable_bytes() {
  if (!storage_) return {};
  bool whole = offset_ == 0 && len_ == storage_->size();
  if (storage_.use_count() != 1 || !whole) {
    auto fresh = std::make_shared<Storage>(len_);
    parallel::copy_bytes(fresh->data(), data(), len_);
    storage_ = std::move(fresh);
    offset_ = 0;
  }
  return std::span<std::byte>(storage_->data(), len_);
}

void BufferBuilder::ensure_arena() {
  if (arena_) return;
  // Reclaim a retired arena whose Buffers have all been released: the pool
  // slot is then the storage's only owner.
  for (auto& slot : retired_) {
    if (slot && slot.use_count() == 1) {
      arena_ = std::move(slot);
      arena_->clear();  // keeps capacity
      ++stats_.arena_reuses;
      return;
    }
  }
  arena_ = std::make_shared<Buffer::Storage>();
  ++stats_.arena_allocations;
}

void BufferBuilder::append(const void* data, std::size_t n) {
  if (n == 0) return;
  ensure_arena();
  const std::byte* p = static_cast<const std::byte*>(data);
  arena_->insert(arena_->end(), p, p + n);
  stats_.bytes_written += n;
}

void BufferBuilder::reserve(std::size_t n) {
  ensure_arena();
  arena_->reserve(n);
}

Buffer BufferBuilder::take() {
  ++stats_.buffers_taken;
  if (!arena_ || arena_->empty()) return Buffer();
  std::size_t len = arena_->size();
  Buffer out(arena_, 0, len);
  // Park the arena for recycling. Prefer an empty slot, then a slot whose
  // buffers are gone; otherwise drop the builder's claim on the oldest slot
  // (the storage stays alive for as long as its Buffers need it).
  for (auto& slot : retired_) {
    if (!slot) {
      slot = std::move(arena_);
      return out;
    }
  }
  for (auto& slot : retired_) {
    if (slot.use_count() == 1) {
      slot = std::move(arena_);
      return out;
    }
  }
  retired_.front() = std::move(arena_);
  return out;
}

}  // namespace acr::buf
