// Shared immutable byte buffers for the checkpoint / message data path.
//
// The checkpoint story of the paper (§2.1) only works if moving checkpoint
// bytes around is cheap: a node packs its state once per epoch, ships the
// image (or its digest) to its buddy, keeps two epochs in memory, and may
// re-ship a verified image during recovery. All of those are *reads* of the
// same bytes. `Buffer` makes every hop a reference-count bump instead of a
// copy:
//
//   * Buffer        — immutable view into ref-counted storage; copying a
//                     Buffer or taking a slice() shares the storage.
//   * BufferBuilder — the single place bytes are produced. Growable arena;
//                     take() seals the arena into a Buffer. Retired arenas
//                     are recycled once every Buffer viewing them is gone,
//                     so a steady-state checkpoint epoch allocates nothing.
//   * Sink          — minimal byte-stream consumer. The PUP Packer writes
//                     through it, which lets a checksum sink fold the buddy
//                     digest while the serializer produces the stream (one
//                     traversal instead of pack-then-checksum, §4.2).
//
// Ownership rules: storage is immutable once a Buffer exists over it. The
// only mutation door is Buffer::mutable_bytes(), which detaches into a
// private copy when the storage is shared (copy-on-write) — used by the
// fault injector to flip bits without corrupting other views.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/require.h"

namespace acr::buf {

/// Minimal byte-stream consumer. Implementations: BufferBuilder (collects
/// bytes), checksum sinks (fold a digest), tees (both at once).
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void write(std::span<const std::byte> bytes) = 0;
};

class BufferBuilder;

/// Immutable, cheaply copyable, cheaply sliceable view of shared bytes.
class Buffer {
 public:
  Buffer() = default;

  /// Allocate fresh storage holding a copy of `bytes`.
  static Buffer copy_of(std::span<const std::byte> bytes);

  /// Adopt an existing vector without copying its contents.
  static Buffer wrap(std::vector<std::byte> bytes);

  std::span<const std::byte> bytes() const {
    return storage_ ? std::span<const std::byte>(storage_->data() + offset_,
                                                 len_)
                    : std::span<const std::byte>();
  }
  const std::byte* data() const {
    return storage_ ? storage_->data() + offset_ : nullptr;
  }
  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }

  /// Sub-view sharing the same storage. O(1), no copy.
  Buffer slice(std::size_t offset, std::size_t len) const;

  /// True when both buffers view the same underlying storage (regardless of
  /// the window each one sees).
  bool aliases(const Buffer& other) const {
    return storage_ != nullptr && storage_ == other.storage_;
  }

  /// Bytewise equality of the viewed windows. O(1) when both views cover
  /// the same window of the same storage (the codec's zero-copy full
  /// frames), O(n) otherwise.
  bool content_equals(const Buffer& other) const;

  /// Number of shared_ptr owners of the storage: live Buffers plus at most
  /// one BufferBuilder retired-arena slot. 0 for an empty buffer. Exposed
  /// for tests and allocation accounting ("was this broadcast zero-copy?").
  long owners() const { return storage_ ? storage_.use_count() : 0; }

  /// Copy-on-write escape hatch: a mutable span over this buffer's bytes.
  /// If the storage is shared (or this view is a slice of a larger arena),
  /// the buffer first detaches into a private full-size copy, so writes
  /// never reach other views. Used by the SDC fault injector.
  std::span<std::byte> mutable_bytes();

 private:
  friend class BufferBuilder;
  using Storage = std::vector<std::byte>;

  Buffer(std::shared_ptr<Storage> storage, std::size_t offset,
         std::size_t len)
      : storage_(std::move(storage)), offset_(offset), len_(len) {}

  std::shared_ptr<Storage> storage_;
  std::size_t offset_ = 0;
  std::size_t len_ = 0;
};

/// Growable byte arena that seals into Buffers and recycles retired arenas.
///
/// Lifecycle: write()/append() grow the current arena; take() seals it into
/// a Buffer and parks the storage in a small retired pool. The next build
/// reclaims a retired arena whose Buffers have all been dropped (capacity
/// and all — no allocation), or allocates a fresh one. With ACR's double
/// in-memory checkpoint store (verified + candidate), a pool of a few slots
/// makes steady-state epochs allocation-free.
class BufferBuilder final : public Sink {
 public:
  struct Stats {
    std::uint64_t arena_allocations = 0;  ///< fresh arenas allocated
    std::uint64_t arena_reuses = 0;       ///< retired arenas recycled
    std::uint64_t buffers_taken = 0;      ///< take() calls
    std::uint64_t bytes_written = 0;      ///< total bytes appended
  };

  BufferBuilder() = default;

  // The retired pool must not be shared by accident; builders are cheap to
  // create where needed.
  BufferBuilder(const BufferBuilder&) = delete;
  BufferBuilder& operator=(const BufferBuilder&) = delete;

  // --- Sink ------------------------------------------------------------------
  void write(std::span<const std::byte> bytes) override {
    append(bytes.data(), bytes.size());
  }

  void append(const void* data, std::size_t n);
  void reserve(std::size_t n);

  /// Bytes written into the arena currently being built.
  std::size_t size() const { return arena_ ? arena_->size() : 0; }

  /// Seal the current arena into an immutable Buffer and retire it. The
  /// builder is then empty and ready for the next build.
  Buffer take();

  /// Discard the bytes of the current build but keep its arena (capacity).
  void clear() {
    if (arena_) arena_->clear();
  }

  const Stats& stats() const { return stats_; }

 private:
  void ensure_arena();

  static constexpr std::size_t kRetiredSlots = 4;

  std::shared_ptr<Buffer::Storage> arena_;
  std::array<std::shared_ptr<Buffer::Storage>, kRetiredSlots> retired_;
  Stats stats_;
};

/// Sink fan-out: forwards every write to two downstream sinks. Lets the
/// Packer fill a BufferBuilder and fold a checksum in the same traversal.
class TeeSink final : public Sink {
 public:
  TeeSink(Sink& a, Sink& b) : a_(a), b_(b) {}
  void write(std::span<const std::byte> bytes) override {
    a_.write(bytes);
    b_.write(bytes);
  }

 private:
  Sink& a_;
  Sink& b_;
};

}  // namespace acr::buf
