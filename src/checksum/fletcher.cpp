#include "checksum/fletcher.h"

#include <cstring>

namespace acr::checksum {

namespace {

constexpr std::uint64_t kMod32 = 0xFFFFFFFFULL;  // 2^32 - 1

// Fold a 4-byte-aligned run of words into (sum1, sum2) with periodic
// modular reduction. 92679 iterations is the largest block for which
// sum2 cannot overflow 64 bits when sums start below 2^32.
void fold_words(const std::uint8_t* p, std::size_t words, std::uint64_t& sum1,
                std::uint64_t& sum2) {
  while (words > 0) {
    std::size_t block = words < 92679 ? words : 92679;
    words -= block;
    for (std::size_t i = 0; i < block; ++i) {
      std::uint32_t w;
      std::memcpy(&w, p, 4);
      p += 4;
      sum1 += w;
      sum2 += sum1;
    }
    sum1 %= kMod32;
    sum2 %= kMod32;
  }
}

}  // namespace

std::uint32_t fletcher32(std::span<const std::byte> data) {
  const std::uint8_t* p = reinterpret_cast<const std::uint8_t*>(data.data());
  std::size_t len = data.size();
  std::uint32_t sum1 = 0xFFFF, sum2 = 0xFFFF;
  while (len > 1) {
    std::size_t words = len / 2;
    std::size_t block = words < 359 ? words : 359;
    len -= block * 2;
    for (std::size_t i = 0; i < block; ++i) {
      std::uint16_t w;
      std::memcpy(&w, p, 2);
      p += 2;
      sum1 += w;
      sum2 += sum1;
    }
    sum1 = (sum1 & 0xFFFF) + (sum1 >> 16);
    sum2 = (sum2 & 0xFFFF) + (sum2 >> 16);
  }
  if (len == 1) {
    sum1 += *p;  // zero-padded odd byte
    sum2 += sum1;
  }
  sum1 = (sum1 & 0xFFFF) + (sum1 >> 16);
  sum2 = (sum2 & 0xFFFF) + (sum2 >> 16);
  // One more fold in case the previous additions carried.
  sum1 = (sum1 & 0xFFFF) + (sum1 >> 16);
  sum2 = (sum2 & 0xFFFF) + (sum2 >> 16);
  return (sum2 << 16) | sum1;
}

std::uint64_t fletcher64(std::span<const std::byte> data) {
  Fletcher64 f;
  f.append(data);
  return f.digest();
}

void Fletcher64::append(std::span<const std::byte> block) {
  const std::uint8_t* p = reinterpret_cast<const std::uint8_t*>(block.data());
  std::size_t len = block.size();
  size_ += len;

  // Fill the pending tail first.
  while (pending_len_ > 0 && pending_len_ < 4 && len > 0) {
    pending_[pending_len_++] = *p++;
    --len;
  }
  if (pending_len_ == 4) {
    fold_words(pending_, 1, sum1_, sum2_);
    pending_len_ = 0;
  }

  std::size_t words = len / 4;
  fold_words(p, words, sum1_, sum2_);
  p += words * 4;
  len -= words * 4;

  for (std::size_t i = 0; i < len; ++i) pending_[pending_len_++] = p[i];
}

std::uint64_t Fletcher64::digest() const {
  std::uint64_t s1 = sum1_, s2 = sum2_;
  if (pending_len_ > 0) {
    std::uint8_t tail[4] = {0, 0, 0, 0};
    std::memcpy(tail, pending_, pending_len_);  // zero-padded final word
    std::uint32_t w;
    std::memcpy(&w, tail, 4);
    s1 = (s1 + w) % kMod32;
    s2 = (s2 + s1) % kMod32;
  } else {
    s1 %= kMod32;
    s2 %= kMod32;
  }
  return (s2 << 32) | s1;
}

void Fletcher64::reset() { *this = Fletcher64{}; }

std::uint64_t fletcher64_combine(std::uint64_t digest_a,
                                 std::uint64_t digest_b,
                                 std::uint64_t len_b) {
  std::uint64_t s1a = digest_a & 0xFFFFFFFFULL, s2a = digest_a >> 32;
  std::uint64_t s1b = digest_b & 0xFFFFFFFFULL, s2b = digest_b >> 32;
  std::uint64_t nb = ((len_b + 3) / 4) % kMod32;  // words in B, incl. padded tail
  std::uint64_t s1 = (s1a + s1b) % kMod32;
  // Every word of A also feeds B's nb prefix-sums: nb * s1a cross term.
  // Max value: (2^32-2)^2 + 2*(2^32-2) < 2^64, so plain uint64 arithmetic.
  std::uint64_t s2 = (nb * s1a + s2a + s2b) % kMod32;
  return (s2 << 32) | s1;
}

std::uint32_t fletcher32_combine(std::uint32_t digest_a,
                                 std::uint32_t digest_b,
                                 std::uint64_t len_b) {
  constexpr std::uint64_t kMod16 = 0xFFFFULL;
  std::uint64_t s1a = (digest_a & 0xFFFFu) % kMod16;
  std::uint64_t s2a = (digest_a >> 16) % kMod16;
  std::uint64_t s1b = (digest_b & 0xFFFFu) % kMod16;
  std::uint64_t s2b = (digest_b >> 16) % kMod16;
  std::uint64_t nb = ((len_b + 1) / 2) % kMod16;  // 16-bit words in B
  std::uint32_t s1 = static_cast<std::uint32_t>((s1a + s1b) % kMod16);
  std::uint32_t s2 =
      static_cast<std::uint32_t>((nb * s1a + s2a + s2b) % kMod16);
  // fletcher32() reduces by ones'-complement folding from sums that start
  // positive, so its zero residue is always represented as 0xFFFF; match
  // that canonical form for bit-identical digests.
  if (s1 == 0) s1 = 0xFFFFu;
  if (s2 == 0) s2 = 0xFFFFu;
  return (s2 << 16) | s1;
}

}  // namespace acr::checksum
