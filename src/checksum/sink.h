// Streaming checksum sinks over the buf::Sink interface.
//
// Plugged into the PUP Packer as a tee, these fold the buddy digest of
// §4.2's checksum mode *while* the checkpoint stream is produced, so a
// checksum-mode epoch costs exactly one traversal of the application state
// (pack and digest fused) instead of pack-then-rescan.
//
// Both sinks are instances of the shared FoldSink template (fold.h), which
// also backs the transport frame CRC and the ckpt-layer XOR parity fold.
#pragma once

#include "checksum/fold.h"

namespace acr::checksum {

/// Fletcher-64 folding sink; digest() matches the one-shot fletcher64()
/// over everything written, for any write granularity.
using Fletcher64Sink = FoldSink<Fletcher64>;

/// CRC32-C folding sink (the §4.2 ablation's alternative digest).
using Crc32cSink = FoldSink<Crc32c>;

}  // namespace acr::checksum
