// Streaming checksum sinks over the buf::Sink interface.
//
// Plugged into the PUP Packer as a tee, these fold the buddy digest of
// §4.2's checksum mode *while* the checkpoint stream is produced, so a
// checksum-mode epoch costs exactly one traversal of the application state
// (pack and digest fused) instead of pack-then-rescan.
#pragma once

#include "buf/buffer.h"
#include "checksum/crc32c.h"
#include "checksum/fletcher.h"

namespace acr::checksum {

/// Fletcher-64 folding sink; digest() matches the one-shot fletcher64()
/// over everything written, for any write granularity.
class Fletcher64Sink final : public buf::Sink {
 public:
  void write(std::span<const std::byte> bytes) override { f_.append(bytes); }
  std::uint64_t digest() const { return f_.digest(); }
  std::size_t bytes_consumed() const { return f_.size(); }
  void reset() { f_.reset(); }

 private:
  Fletcher64 f_;
};

/// CRC32-C folding sink (the §4.2 ablation's alternative digest).
class Crc32cSink final : public buf::Sink {
 public:
  void write(std::span<const std::byte> bytes) override { c_.append(bytes); }
  std::uint32_t digest() const { return c_.digest(); }
  void reset() { c_.reset(); }

 private:
  Crc32c c_;
};

}  // namespace acr::checksum
