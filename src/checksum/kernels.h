// Hardware-dispatched, chunk-parallel data-plane kernels.
//
// Every hot byte loop of the checkpoint/message path funnels through here:
// the CRC32C frame-integrity check, the Fletcher buddy digests, and the
// RAID-5 xor parity fold. Three mechanisms, all preserving bit-identical
// results:
//
//   1. Runtime CPU dispatch. CRC32C has an SSE4.2 instruction
//      (_mm_crc32_u64, ~1 cycle per 8 bytes) and a portable slicing-by-8
//      table fallback. The implementation is resolved once — cpuid, the
//      ACR_KERNEL_IMPL environment variable, or an explicit
//      set_kernel_impl() call (the driver's --kernel-impl flag) — and both
//      produce the same polynomial, so the choice is invisible to the
//      protocol.
//
//   2. Combine operators. crc32c_combine / fletcher64_combine /
//      fletcher32_combine compute digest(A ++ B) from digest(A), digest(B)
//      and |B|, so a large buffer can be digested as independent chunks and
//      the partials merged left-to-right. CRC combine is the GF(2)
//      shift-matrix trick (apply the "advance by |B| zero bytes" linear
//      operator to digest(A), xor digest(B)); Fletcher combine is modular
//      arithmetic on the two sums. Fletcher digests are word streams, so a
//      NON-final chunk must be word-aligned (4 bytes for Fletcher-64, 2 for
//      Fletcher-32); the chunked helpers below cut on fixed 256 KiB
//      boundaries, which satisfies both.
//
//   3. Chunk-parallel drivers. crc32c_chunked / fletcher64_chunked /
//      xor_fold_chunked fan fixed-size chunks across parallel::global()
//      and merge in index order. Chunk geometry depends only on the input
//      size — never on the worker count — so any thread count (including
//      serial) produces the same digest bit for bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace acr::checksum {

/// Which CRC32C inner loop to run. Auto resolves to Hw when the CPU has
/// SSE4.2, else Portable; the ACR_KERNEL_IMPL environment variable
/// ("portable" / "hw" / "auto") overrides Auto's default at startup, and
/// set_kernel_impl() (the driver's --kernel-impl flag) overrides both.
enum class KernelImpl { Auto, Portable, Hw };

/// Re-resolve the active kernels. Requesting Hw on a machine without
/// SSE4.2 is a fatal precondition error — callers (the driver) should
/// check hw_kernels_available() first and fail with a proper message.
void set_kernel_impl(KernelImpl impl);

/// The last requested policy (Auto until someone calls set_kernel_impl).
KernelImpl kernel_impl();

/// True when this build and CPU can run the SSE4.2 CRC32C kernel.
bool hw_kernels_available();

/// Name of the CRC32C inner loop actually running: "hw" or "portable".
const char* active_crc32c_kernel();

namespace kernels {

/// Raw CRC32C state update (reflected Castagnoli, no init/final xor)
/// through the dispatched implementation.
std::uint32_t crc32c_update(std::uint32_t state,
                            std::span<const std::byte> data);

/// Slicing-by-8 table kernel (always available).
std::uint32_t crc32c_update_portable(std::uint32_t state,
                                     std::span<const std::byte> data);

/// SSE4.2 kernel. Precondition: hw_kernels_available().
std::uint32_t crc32c_update_hw(std::uint32_t state,
                               std::span<const std::byte> data);

/// Word-wise xor accumulate: acc[i] ^= add[i] for i in [0, n). The inner
/// loop runs on uint64 words (memcpy-load, so alignment-safe) and
/// auto-vectorizes; the 1–7-byte tail is folded scalar.
inline void xor_fold_words(std::byte* acc, const std::byte* add,
                           std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, b;
    std::memcpy(&a, acc + i, 8);
    std::memcpy(&b, add + i, 8);
    a ^= b;
    std::memcpy(acc + i, &a, 8);
  }
  for (; i < n; ++i) acc[i] ^= add[i];
}

}  // namespace kernels

/// Chunk size of the chunk-parallel drivers. A multiple of 4 (Fletcher-64
/// word) and 2 (Fletcher-32 word), so every non-final chunk is word-aligned
/// for the combine operators. Exposed for the equivalence tests.
inline constexpr std::size_t kDigestChunk = std::size_t{1} << 18;  // 256 KiB

/// CRC32C of `data`, digested as kDigestChunk-sized chunks fanned across
/// parallel::global() and merged with crc32c_combine. Bit-identical to the
/// one-shot crc32c() at any thread count; falls back to one-shot when the
/// pool is serial or the input is small.
std::uint32_t crc32c_chunked(std::span<const std::byte> data);

/// Fletcher-64 of `data`, chunked and merged with fletcher64_combine.
/// Bit-identical to the one-shot fletcher64() at any thread count.
std::uint64_t fletcher64_chunked(std::span<const std::byte> data);

/// xor_fold with the byte range fanned across parallel::global(). XOR is
/// positional, so the split needs no combine step; any thread count folds
/// the same bytes into the same slots. Zero-extends acc like xor_fold.
void xor_fold_chunked(std::vector<std::byte>& acc,
                      std::span<const std::byte> add);

}  // namespace acr::checksum
