// Hardware-dispatched, chunk-parallel data-plane kernels.
//
// Every hot byte loop of the checkpoint/message path funnels through here:
// the CRC32C frame-integrity check, the Fletcher buddy digests, and the
// RAID-5 xor parity fold. Three mechanisms, all preserving bit-identical
// results:
//
//   1. Runtime CPU dispatch. CRC32C has an SSE4.2 instruction
//      (_mm_crc32_u64, ~1 cycle per 8 bytes) and a portable slicing-by-8
//      table fallback. The implementation is resolved once — cpuid, the
//      ACR_KERNEL_IMPL environment variable, or an explicit
//      set_kernel_impl() call (the driver's --kernel-impl flag) — and both
//      produce the same polynomial, so the choice is invisible to the
//      protocol.
//
//   2. Combine operators. crc32c_combine / fletcher64_combine /
//      fletcher32_combine compute digest(A ++ B) from digest(A), digest(B)
//      and |B|, so a large buffer can be digested as independent chunks and
//      the partials merged left-to-right. CRC combine is the GF(2)
//      shift-matrix trick (apply the "advance by |B| zero bytes" linear
//      operator to digest(A), xor digest(B)); Fletcher combine is modular
//      arithmetic on the two sums. Fletcher digests are word streams, so a
//      NON-final chunk must be word-aligned (4 bytes for Fletcher-64, 2 for
//      Fletcher-32); the chunked helpers below cut on fixed 256 KiB
//      boundaries, which satisfies both.
//
//   3. Chunk-parallel drivers. crc32c_chunked / fletcher64_chunked /
//      xor_fold_chunked fan fixed-size chunks across parallel::global()
//      and merge in index order. Chunk geometry depends only on the input
//      size — never on the worker count — so any thread count (including
//      serial) produces the same digest bit for bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "parallel/pool.h"

namespace acr::checksum {

/// Which CRC32C inner loop to run. Auto resolves to Hw when the CPU has
/// SSE4.2, else Portable; the ACR_KERNEL_IMPL environment variable
/// ("portable" / "hw" / "auto") overrides Auto's default at startup, and
/// set_kernel_impl() (the driver's --kernel-impl flag) overrides both.
enum class KernelImpl { Auto, Portable, Hw };

/// Re-resolve the active kernels. Requesting Hw on a machine without
/// SSE4.2 is a fatal precondition error — callers (the driver) should
/// check hw_kernels_available() first and fail with a proper message.
void set_kernel_impl(KernelImpl impl);

/// The last requested policy (Auto until someone calls set_kernel_impl).
KernelImpl kernel_impl();

/// True when this build and CPU can run the SSE4.2 CRC32C kernel.
bool hw_kernels_available();

/// Name of the CRC32C inner loop actually running: "hw" or "portable".
const char* active_crc32c_kernel();

namespace kernels {

/// Raw CRC32C state update (reflected Castagnoli, no init/final xor)
/// through the dispatched implementation.
std::uint32_t crc32c_update(std::uint32_t state,
                            std::span<const std::byte> data);

/// Slicing-by-8 table kernel (always available).
std::uint32_t crc32c_update_portable(std::uint32_t state,
                                     std::span<const std::byte> data);

/// SSE4.2 kernel. Precondition: hw_kernels_available().
std::uint32_t crc32c_update_hw(std::uint32_t state,
                               std::span<const std::byte> data);

/// Word-wise xor accumulate: acc[i] ^= add[i] for i in [0, n). The inner
/// loop runs on uint64 words (memcpy-load, so alignment-safe) and
/// auto-vectorizes; the 1–7-byte tail is folded scalar.
inline void xor_fold_words(std::byte* acc, const std::byte* add,
                           std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, b;
    std::memcpy(&a, acc + i, 8);
    std::memcpy(&b, add + i, 8);
    a ^= b;
    std::memcpy(acc + i, &a, 8);
  }
  for (; i < n; ++i) acc[i] ^= add[i];
}

}  // namespace kernels

/// Chunk size of the chunk-parallel drivers. A multiple of 4 (Fletcher-64
/// word) and 2 (Fletcher-32 word), so every non-final chunk is word-aligned
/// for the combine operators. Exposed for the equivalence tests, and the
/// grid the ckpt codec pipeline's dirty-chunk maps live on.
inline constexpr std::size_t kDigestChunk = std::size_t{1} << 18;  // 256 KiB

/// Chunks of the kDigestChunk grid covering `len` bytes (0 for empty input).
/// The grid depends only on the input SIZE — never on thread count or
/// kernel choice — which is what makes every chunked digest, and every
/// delta chunk map derived from one, bit-identical across configurations.
inline std::size_t digest_chunk_count(std::size_t len) {
  return (len + kDigestChunk - 1) / kDigestChunk;
}

/// Byte range [begin, end) of chunk `i` of a `len`-byte buffer.
inline std::pair<std::size_t, std::size_t> digest_chunk_range(std::size_t len,
                                                              std::size_t i) {
  std::size_t begin = i * kDigestChunk;
  std::size_t end = begin + kDigestChunk < len ? begin + kDigestChunk : len;
  return {begin, end};
}

namespace kernels {

/// Shared chunk fan-out driver: compute `per_chunk(bytes_of_chunk_i)` for
/// every kDigestChunk-grid chunk of `data`, in parallel across
/// parallel::global() (inline when the pool is serial), results in chunk
/// order. This is the one copy of the fan-out/merge skeleton that was
/// previously duplicated across the chunked digest drivers and the agents'
/// post-pack digest path.
template <class T, class Fn>
std::vector<T> map_chunks(std::span<const std::byte> data, Fn&& per_chunk) {
  std::size_t n = digest_chunk_count(data.size());
  std::vector<T> part(n);
  auto eval = [&](std::size_t i) {
    auto [begin, end] = digest_chunk_range(data.size(), i);
    part[i] = per_chunk(data.subspan(begin, end - begin));
  };
  parallel::Pool& pool = parallel::global();
  if (pool.threads() == 0 || data.size() < 2 * kDigestChunk) {
    for (std::size_t i = 0; i < n; ++i) eval(i);
  } else {
    pool.for_each_index(n, eval);
  }
  return part;
}

/// In-order merge of per-chunk digest partials over a combine operator
/// `combine(acc, part, part_len)` — digest(A ++ B) from the partials. The
/// merge runs left-to-right in chunk order regardless of how the partials
/// were produced, so the result is thread-count invariant.
template <class T, class Fn>
T reduce_chunks(std::span<const T> part, std::size_t total_len, Fn&& combine) {
  T acc = part[0];
  for (std::size_t i = 1; i < part.size(); ++i) {
    auto [begin, end] = digest_chunk_range(total_len, i);
    acc = combine(acc, part[i], end - begin);
  }
  return acc;
}

}  // namespace kernels

/// Per-chunk CRC32C digests of `data` on the kDigestChunk grid (one digest
/// per chunk, chunk order). This is the codec pipeline's dirty-chunk
/// detector: two packs of identical state yield identical vectors, and a
/// chunk whose digest matches the base epoch's is not shipped.
std::vector<std::uint32_t> crc32c_chunk_digests(std::span<const std::byte> data);

/// Fold a per-chunk digest vector (as produced by crc32c_chunk_digests for
/// a `total_len`-byte buffer) back into the whole-buffer CRC32C — the
/// sparse-chunk-set combine: a delta receiver can verify a reconstructed
/// image by merging retained base-chunk digests with refreshed dirty-chunk
/// digests, without re-reading the clean bytes.
std::uint32_t crc32c_merge_chunk_digests(std::span<const std::uint32_t> digests,
                                         std::size_t total_len);

/// CRC32C of `data`, digested as kDigestChunk-sized chunks fanned across
/// parallel::global() and merged with crc32c_combine. Bit-identical to the
/// one-shot crc32c() at any thread count; falls back to one-shot when the
/// pool is serial or the input is small.
std::uint32_t crc32c_chunked(std::span<const std::byte> data);

/// Fletcher-64 of `data`, chunked and merged with fletcher64_combine.
/// Bit-identical to the one-shot fletcher64() at any thread count.
std::uint64_t fletcher64_chunked(std::span<const std::byte> data);

/// xor_fold with the byte range fanned across parallel::global(). XOR is
/// positional, so the split needs no combine step; any thread count folds
/// the same bytes into the same slots. Zero-extends acc like xor_fold.
void xor_fold_chunked(std::vector<std::byte>& acc,
                      std::span<const std::byte> add);

}  // namespace acr::checksum
