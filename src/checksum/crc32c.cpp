#include "checksum/crc32c.h"

#include "checksum/kernels.h"

namespace acr::checksum {

void Crc32c::append(std::span<const std::byte> block) {
  state_ = kernels::crc32c_update(state_, block);
}

std::uint32_t crc32c(std::span<const std::byte> data) {
  Crc32c c;
  c.append(data);
  return c.digest();
}

// ---------------------------------------------------------------------------
// GF(2) shift-matrix combine (the zlib crc32_combine construction).
//
// Appending one zero BYTE to a message multiplies its CRC register by x^8
// in GF(2)[x]/poly — a linear map over the 32 register bits, i.e. a 32x32
// bit matrix. Appending |B| zero bytes is that matrix raised to the |B|th
// power, computed in O(log |B|) squarings. Then
//   crc(A ++ B) = M^|B| * crc(A)  ^  crc(B)
// because CRC of the concatenation is the CRC of A zero-extended by |B|
// bytes xored with the CRC of B (linearity), and the pre/final xor
// conditioning cancels exactly as in zlib.
// ---------------------------------------------------------------------------

namespace {

// mat is a 32x32 GF(2) matrix, one uint32 column-vector per input bit.
std::uint32_t gf2_matrix_times(const std::uint32_t* mat, std::uint32_t vec) {
  std::uint32_t sum = 0;
  while (vec != 0) {
    if (vec & 1u) sum ^= *mat;
    vec >>= 1;
    ++mat;
  }
  return sum;
}

void gf2_matrix_square(std::uint32_t* square, const std::uint32_t* mat) {
  for (int n = 0; n < 32; ++n) square[n] = gf2_matrix_times(mat, mat[n]);
}

}  // namespace

std::uint32_t crc32c_combine(std::uint32_t crc_a, std::uint32_t crc_b,
                             std::uint64_t len_b) {
  if (len_b == 0) return crc_a;

  std::uint32_t even[32];  // operator for 2^(2k+1) zero bits
  std::uint32_t odd[32];   // operator for 2^(2k) zero bits

  // Operator for one zero bit: shift right, feeding the polynomial back in
  // (reflected representation).
  odd[0] = 0x82F63B78u;
  std::uint32_t row = 1;
  for (int n = 1; n < 32; ++n) {
    odd[n] = row;
    row <<= 1;
  }
  gf2_matrix_square(even, odd);  // two zero bits
  gf2_matrix_square(odd, even);  // four zero bits

  // Walk the bits of len_b (in bytes → start from 8 zero-bit operator by
  // squaring once more per level), applying the operator for each set bit.
  std::uint64_t len = len_b;
  do {
    gf2_matrix_square(even, odd);
    if (len & 1u) crc_a = gf2_matrix_times(even, crc_a);
    len >>= 1;
    if (len == 0) break;
    gf2_matrix_square(odd, even);
    if (len & 1u) crc_a = gf2_matrix_times(odd, crc_a);
    len >>= 1;
  } while (len != 0);

  return crc_a ^ crc_b;
}

std::uint32_t crc32c_flip_delta(std::uint64_t len, std::uint64_t byte_index,
                                int bit_index) {
  // Raw (zero-init) CRC register after the delta byte, then advanced past
  // the message tail. crc32c_combine(x, 0, z) is exactly the "advance x by
  // z zero bytes" linear operator — the conditioning constants cancel in
  // the xor against the clean digest.
  const std::byte delta{static_cast<unsigned char>(1u << bit_index)};
  std::uint32_t reg =
      kernels::crc32c_update(0u, std::span<const std::byte>(&delta, 1));
  return crc32c_combine(reg, 0u, len - 1 - byte_index);
}

}  // namespace acr::checksum
