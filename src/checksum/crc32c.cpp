#include "checksum/crc32c.h"

#include <array>

namespace acr::checksum {

namespace {

// Table for the Castagnoli polynomial 0x1EDC6F41 (reflected: 0x82F63B78).
constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

void Crc32c::append(std::span<const std::byte> block) {
  std::uint32_t crc = state_;
  for (std::byte b : block)
    crc = (crc >> 8) ^
          kTable[(crc ^ static_cast<std::uint32_t>(b)) & 0xFFu];
  state_ = crc;
}

std::uint32_t crc32c(std::span<const std::byte> data) {
  Crc32c c;
  c.append(data);
  return c.digest();
}

}  // namespace acr::checksum
