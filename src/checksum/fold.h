// Shared digest-fold helpers.
//
// One home for the three folding patterns that used to be repeated across
// the tree: the streaming checksum sinks (pack-time digest tee, sink.h),
// the frame-integrity CRC of the reliable transport glue (rt/cluster.cpp),
// and the RAID-5-style XOR parity fold of the ckpt redundancy layer.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "buf/buffer.h"
#include "checksum/crc32c.h"
#include "checksum/fletcher.h"
#include "checksum/kernels.h"

namespace acr::checksum {

/// Streaming digest over the buf::Sink interface. Plugged into the PUP
/// Packer as a tee, it folds a digest *while* the byte stream is produced,
/// so a digested pack costs exactly one traversal of the application state.
/// `Digest` needs append(span)/digest()/reset(); bytes are counted here so
/// digests without their own size() (CRC32C) still report consumption.
template <typename Digest>
class FoldSink final : public buf::Sink {
 public:
  void write(std::span<const std::byte> bytes) override {
    d_.append(bytes);
    consumed_ += bytes.size();
  }
  auto digest() const { return d_.digest(); }
  std::size_t bytes_consumed() const { return consumed_; }
  void reset() {
    d_.reset();
    consumed_ = 0;
  }

 private:
  Digest d_;
  std::size_t consumed_ = 0;
};

/// One-call frame digest: the send-time / arrival-time integrity check of
/// the reliable transport, and anything else digesting a whole Buffer.
/// Chunk-parallel and hardware-dispatched via the kernel layer.
inline std::uint32_t buffer_crc32c(const buf::Buffer& b) {
  return crc32c_chunked(b.bytes());
}

/// XOR `add` into `acc`, zero-extending `acc` if `add` is longer. This is
/// the RAID-5 parity fold: XOR is associative/commutative and self-inverse,
/// so folding the same chunk set in any order yields the same parity, and
/// re-folding a survivor's chunk into its group parity recovers the missing
/// member's chunk. The inner loop is the word-wise (auto-vectorizing)
/// kernel; for pool-parallel folding of large images use
/// xor_fold_chunked (kernels.h), which produces identical bytes.
inline void xor_fold(std::vector<std::byte>& acc,
                     std::span<const std::byte> add) {
  if (add.size() > acc.size()) acc.resize(add.size(), std::byte{0});
  kernels::xor_fold_words(acc.data(), add.data(), add.size());
}

}  // namespace acr::checksum
