// Position-dependent Fletcher checksums (§4.2 "Checksum" optimization).
//
// ACR optionally compares 8-byte Fletcher-64 digests of the checkpoints
// instead of shipping full checkpoints across the replica bisection. The
// sum-of-sums term makes the digest position dependent: swapping two blocks
// of the checkpoint changes it, unlike a plain additive checksum.
//
// The incremental interface exists so the runtime can fold blocks into the
// digest while the serializer is still producing them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace acr::checksum {

/// Classic Fletcher-32 over 16-bit words (odd trailing byte zero-padded).
std::uint32_t fletcher32(std::span<const std::byte> data);

/// Fletcher-64 over 32-bit words using modulus 2^32-1.
/// This is the digest ACR transmits (paper: "checksum data size is only
/// 32 bytes" for the whole node; we use one 8-byte digest per checkpoint
/// stream plus per-segment digests when requested).
std::uint64_t fletcher64(std::span<const std::byte> data);

/// digest(A ++ B) from digest(A), digest(B) and |B| in bytes. Fletcher is a
/// pair of modular sums, so combining is arithmetic: with nB words in B,
///   sum1' = sum1A + sum1B          (mod 2^32-1)
///   sum2' = sum2A + nB*sum1A + sum2B
/// PRECONDITION: |A| must be a multiple of the 4-byte word — a digest of a
/// non-word-aligned chunk zero-pads its tail, which only the FINAL chunk of
/// a concatenation may do. |B| may be any length (nB = ceil(|B|/4)); a
/// padded tail in B stays the overall tail. The chunked drivers (kernels.h)
/// cut on 256 KiB boundaries, which satisfies this by construction.
std::uint64_t fletcher64_combine(std::uint64_t digest_a,
                                 std::uint64_t digest_b,
                                 std::uint64_t len_b);

/// Fletcher-32 combine; words are 2 bytes, so |A| must be even and
/// nB = ceil(|B|/2). Matches fletcher32()'s ones'-complement reduction
/// (the zero residue is represented as 0xFFFF, never 0x0000).
std::uint32_t fletcher32_combine(std::uint32_t digest_a,
                                 std::uint32_t digest_b,
                                 std::uint64_t len_b);

/// Incremental Fletcher-64. Feed blocks in order; digest() equals the
/// one-shot fletcher64 over the concatenation for ANY block granularity —
/// sub-word tails are carried across append() calls in a pending buffer.
/// (The streaming pack sink relies on this: PUP records are 9-byte headers
/// plus arbitrary payloads, so writes are rarely word-aligned.)
class Fletcher64 {
 public:
  void append(std::span<const std::byte> block);
  std::uint64_t digest() const;
  void reset();

  /// Bytes folded in so far.
  std::size_t size() const { return size_; }

 private:
  std::uint64_t sum1_ = 0;
  std::uint64_t sum2_ = 0;
  std::size_t size_ = 0;
  // Up to 3 pending tail bytes while the input is not 4-byte aligned.
  std::uint8_t pending_[4] = {0, 0, 0, 0};
  std::size_t pending_len_ = 0;
};

}  // namespace acr::checksum
