// GF(256) arithmetic for the Reed–Solomon redundancy scheme.
//
// The field is GF(2^8) with the primitive polynomial 0x11D
// (x^8 + x^4 + x^3 + x^2 + 1) and generator 2 — the classic Reed–Solomon
// field. Scalar mul/div/inv run on constexpr log/exp tables; the bulk
// kernel gf256_muladd_row (dst[i] ^= coeff * src[i]) is the erasure-code
// analogue of xor_fold_words and is runtime-dispatched exactly like the
// CRC32C kernels: a portable nibble-table loop and an SSSE3 pshufb kernel
// (two 16-entry shuffles per 16 bytes), selected by set_kernel_impl /
// ACR_KERNEL_IMPL / cpuid. Both implementations compute the same field
// algebra, so the choice is invisible to the protocol.
//
// gf256_muladd_chunked fans the row kernel across parallel::global() on
// the fixed kDigestChunk grid — the fold is positional, so any thread
// count (including serial) produces identical bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "checksum/kernels.h"

namespace acr::checksum {

namespace gf256 {

/// g^e for e in [0, 510) (the doubled exp table; g = 2, poly 0x11D).
std::uint8_t exp(unsigned e);

/// log_g(a). Precondition: a != 0.
std::uint8_t log(std::uint8_t a);

/// Field product a * b.
std::uint8_t mul(std::uint8_t a, std::uint8_t b);

/// Field quotient a / b. Precondition: b != 0.
std::uint8_t div(std::uint8_t a, std::uint8_t b);

/// Multiplicative inverse. Precondition: a != 0.
std::uint8_t inv(std::uint8_t a);

}  // namespace gf256

/// True when this build and CPU can run the SSSE3 pshufb row kernel.
bool gf256_hw_available();

/// Name of the GF(256) row kernel actually running: "hw" or "portable".
const char* active_gf256_kernel();

namespace kernels {

/// dst[i] ^= coeff * src[i] for i in [0, n), through the dispatched
/// implementation. coeff == 0 is a no-op; coeff == 1 degenerates to
/// xor_fold_words. dst and src must not overlap (except dst == src is
/// allowed for coeff where it degenerates, but callers never rely on it).
void gf256_muladd_row(std::byte* dst, const std::byte* src,
                      std::uint8_t coeff, std::size_t n);

/// Portable kernel: two 16-entry low/high nibble product tables, two
/// lookups + xor per byte (always available).
void gf256_muladd_row_portable(std::byte* dst, const std::byte* src,
                               std::uint8_t coeff, std::size_t n);

/// SSSE3 kernel: the same nibble tables applied 16 bytes at a time with
/// _mm_shuffle_epi8. Precondition: gf256_hw_available().
void gf256_muladd_row_hw(std::byte* dst, const std::byte* src,
                         std::uint8_t coeff, std::size_t n);

namespace detail {
/// Called from set_kernel_impl to (re-)resolve the row kernel alongside
/// the CRC32C kernel. Not for direct use.
void gf256_set_row_impl(KernelImpl impl);
}  // namespace detail

}  // namespace kernels

/// acc[i] ^= coeff * add[i] with the byte range fanned across
/// parallel::global() on the kDigestChunk grid. Zero-extends acc to
/// add.size() like xor_fold_chunked; positional, so bit-identical at any
/// thread count.
void gf256_muladd_chunked(std::vector<std::byte>& acc,
                          std::span<const std::byte> add, std::uint8_t coeff);

}  // namespace acr::checksum
