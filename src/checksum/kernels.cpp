#include "checksum/kernels.h"

#include <atomic>
#include <array>
#include <bit>
#include <cstdlib>

#include "checksum/crc32c.h"
#include "checksum/fletcher.h"
#include "checksum/gf256.h"
#include "common/require.h"
#include "parallel/pool.h"

#if defined(__x86_64__)
#include <nmmintrin.h>
#define ACR_HAVE_SSE42_KERNEL 1
#else
#define ACR_HAVE_SSE42_KERNEL 0
#endif

namespace acr::checksum {

namespace {

// ---------------------------------------------------------------------------
// Portable kernel: slicing-by-8.
//
// The classic one-table loop retires one byte per table lookup with a
// serial dependency on `crc` between bytes. Slicing-by-8 processes eight
// input bytes per iteration through eight precomputed tables whose lookups
// are independent (the xor tree reassociates), which breaks the dependency
// chain and runs ~4-5x faster on the same hardware.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kPoly = 0x82F63B78u;  // Castagnoli, reflected

struct SliceTables {
  std::uint32_t t[8][256];
};

constexpr SliceTables make_slice_tables() {
  SliceTables tb{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    tb.t[0][i] = crc;
  }
  // t[k][i] = crc of byte i followed by k zero bytes.
  for (int k = 1; k < 8; ++k)
    for (std::uint32_t i = 0; i < 256; ++i)
      tb.t[k][i] = (tb.t[k - 1][i] >> 8) ^ tb.t[0][tb.t[k - 1][i] & 0xFFu];
  return tb;
}

constexpr SliceTables kSlice = make_slice_tables();

}  // namespace

namespace kernels {

std::uint32_t crc32c_update_portable(std::uint32_t crc,
                                     std::span<const std::byte> data) {
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  std::size_t len = data.size();
  // The 8-byte inner loop reads the input as two little-endian uint32
  // words; on a big-endian target fall back to the byte loop below.
  if constexpr (std::endian::native == std::endian::little) {
    while (len >= 8) {
      std::uint32_t lo, hi;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      lo ^= crc;
      crc = kSlice.t[7][lo & 0xFFu] ^ kSlice.t[6][(lo >> 8) & 0xFFu] ^
            kSlice.t[5][(lo >> 16) & 0xFFu] ^ kSlice.t[4][lo >> 24] ^
            kSlice.t[3][hi & 0xFFu] ^ kSlice.t[2][(hi >> 8) & 0xFFu] ^
            kSlice.t[1][(hi >> 16) & 0xFFu] ^ kSlice.t[0][hi >> 24];
      p += 8;
      len -= 8;
    }
  }
  while (len-- > 0)
    crc = (crc >> 8) ^ kSlice.t[0][(crc ^ *p++) & 0xFFu];
  return crc;
}

#if ACR_HAVE_SSE42_KERNEL
__attribute__((target("sse4.2"))) std::uint32_t crc32c_update_hw(
    std::uint32_t crc, std::span<const std::byte> data) {
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  std::size_t len = data.size();
  // Head bytes up to 8-byte alignment, then one crc32q per 8 bytes.
  while (len > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --len;
  }
  std::uint64_t c = crc;
  while (len >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    c = _mm_crc32_u64(c, w);
    p += 8;
    len -= 8;
  }
  crc = static_cast<std::uint32_t>(c);
  while (len-- > 0) crc = _mm_crc32_u8(crc, *p++);
  return crc;
}
#else
std::uint32_t crc32c_update_hw(std::uint32_t, std::span<const std::byte>) {
  ACR_REQUIRE(false, "SSE4.2 CRC32C kernel not available in this build");
}
#endif

}  // namespace kernels

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

namespace {

using UpdateFn = std::uint32_t (*)(std::uint32_t, std::span<const std::byte>);

std::atomic<KernelImpl> g_requested{KernelImpl::Auto};
std::atomic<UpdateFn> g_update{nullptr};

KernelImpl env_impl() {
  const char* e = std::getenv("ACR_KERNEL_IMPL");
  if (e == nullptr) return KernelImpl::Auto;
  if (std::strcmp(e, "portable") == 0) return KernelImpl::Portable;
  if (std::strcmp(e, "hw") == 0) return KernelImpl::Hw;
  return KernelImpl::Auto;
}

UpdateFn resolve(KernelImpl impl) {
  switch (impl) {
    case KernelImpl::Portable:
      return &kernels::crc32c_update_portable;
    case KernelImpl::Hw:
      ACR_REQUIRE(hw_kernels_available(),
                  "hw kernels requested but SSE4.2 is not available");
      return &kernels::crc32c_update_hw;
    case KernelImpl::Auto:
      return hw_kernels_available() ? &kernels::crc32c_update_hw
                                    : &kernels::crc32c_update_portable;
  }
  return &kernels::crc32c_update_portable;
}

UpdateFn update_fn() {
  UpdateFn f = g_update.load(std::memory_order_acquire);
  if (f == nullptr) {
    // First use: honor the environment override, else auto-detect.
    set_kernel_impl(env_impl());
    f = g_update.load(std::memory_order_acquire);
  }
  return f;
}

}  // namespace

bool hw_kernels_available() {
#if ACR_HAVE_SSE42_KERNEL
  return __builtin_cpu_supports("sse4.2") != 0;
#else
  return false;
#endif
}

void set_kernel_impl(KernelImpl impl) {
  g_requested.store(impl, std::memory_order_relaxed);
  g_update.store(resolve(impl), std::memory_order_release);
  // The GF(256) erasure-code row kernel follows the same policy.
  kernels::detail::gf256_set_row_impl(impl);
}

KernelImpl kernel_impl() {
  return g_requested.load(std::memory_order_relaxed);
}

const char* active_crc32c_kernel() {
  return update_fn() == &kernels::crc32c_update_hw ? "hw" : "portable";
}

namespace kernels {

std::uint32_t crc32c_update(std::uint32_t state,
                            std::span<const std::byte> data) {
  return update_fn()(state, data);
}

}  // namespace kernels

// ---------------------------------------------------------------------------
// Chunk-parallel drivers.
// ---------------------------------------------------------------------------

std::uint32_t crc32c_chunked(std::span<const std::byte> data) {
  parallel::Pool& pool = parallel::global();
  if (pool.threads() == 0 || data.size() < 2 * kDigestChunk)
    return crc32c(data);
  std::vector<std::uint32_t> part = kernels::map_chunks<std::uint32_t>(
      data, [](std::span<const std::byte> c) { return crc32c(c); });
  return kernels::reduce_chunks<std::uint32_t>(
      part, data.size(),
      [](std::uint32_t a, std::uint32_t b, std::size_t len_b) {
        return crc32c_combine(a, b, len_b);
      });
}

std::uint64_t fletcher64_chunked(std::span<const std::byte> data) {
  parallel::Pool& pool = parallel::global();
  if (pool.threads() == 0 || data.size() < 2 * kDigestChunk)
    return fletcher64(data);
  std::vector<std::uint64_t> part = kernels::map_chunks<std::uint64_t>(
      data, [](std::span<const std::byte> c) { return fletcher64(c); });
  return kernels::reduce_chunks<std::uint64_t>(
      part, data.size(),
      [](std::uint64_t a, std::uint64_t b, std::size_t len_b) {
        return fletcher64_combine(a, b, len_b);
      });
}

std::vector<std::uint32_t> crc32c_chunk_digests(
    std::span<const std::byte> data) {
  return kernels::map_chunks<std::uint32_t>(
      data, [](std::span<const std::byte> c) { return crc32c(c); });
}

std::uint32_t crc32c_merge_chunk_digests(std::span<const std::uint32_t> digests,
                                         std::size_t total_len) {
  ACR_REQUIRE(digests.size() == digest_chunk_count(total_len),
              "chunk-digest merge: vector does not match the chunk grid");
  if (digests.empty()) return crc32c({});
  return kernels::reduce_chunks<std::uint32_t>(
      digests, total_len,
      [](std::uint32_t a, std::uint32_t b, std::size_t len_b) {
        return crc32c_combine(a, b, len_b);
      });
}

void xor_fold_chunked(std::vector<std::byte>& acc,
                      std::span<const std::byte> add) {
  if (add.size() > acc.size()) acc.resize(add.size(), std::byte{0});
  parallel::Pool& pool = parallel::global();
  if (pool.threads() == 0 || add.size() < 2 * kDigestChunk) {
    kernels::xor_fold_words(acc.data(), add.data(), add.size());
    return;
  }
  std::size_t n = digest_chunk_count(add.size());
  pool.for_each_index(n, [&](std::size_t i) {
    auto [begin, end] = digest_chunk_range(add.size(), i);
    kernels::xor_fold_words(acc.data() + begin, add.data() + begin,
                            end - begin);
  });
}

}  // namespace acr::checksum
