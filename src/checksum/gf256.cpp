#include "checksum/gf256.h"

#include <atomic>

#include "common/require.h"
#include "parallel/pool.h"

#if defined(__x86_64__)
#include <tmmintrin.h>
#define ACR_HAVE_SSSE3_KERNEL 1
#else
#define ACR_HAVE_SSSE3_KERNEL 0
#endif

namespace acr::checksum {

namespace {

// ---------------------------------------------------------------------------
// Field tables. Generator 2 over the primitive polynomial 0x11D; the exp
// table is doubled so mul can skip the mod-255 reduction of log sums
// (log a + log b <= 508 < 510).
// ---------------------------------------------------------------------------

constexpr std::uint8_t kGfPolyLow = 0x1D;  // 0x11D with the x^8 bit folded

struct GfTables {
  std::uint8_t exp[510];
  std::uint8_t log[256];
};

constexpr GfTables make_gf_tables() {
  GfTables t{};
  std::uint8_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[i] = x;
    t.log[x] = static_cast<std::uint8_t>(i);
    // x *= 2 in the field: shift, fold the carry through the polynomial.
    std::uint8_t carry = static_cast<std::uint8_t>(x & 0x80u);
    x = static_cast<std::uint8_t>(x << 1);
    if (carry != 0) x ^= kGfPolyLow;
  }
  for (int i = 255; i < 510; ++i) t.exp[i] = t.exp[i - 255];
  t.log[0] = 0;  // never read; mul/div special-case zero operands
  return t;
}

constexpr GfTables kGf = make_gf_tables();

// Low/high nibble product tables for a fixed coefficient:
// mul(c, b) == lo[b & 0xF] ^ hi[b >> 4], because multiplication by c is
// linear over GF(2) and b = (b & 0xF) ^ (b & 0xF0).
struct NibbleTables {
  std::uint8_t lo[16];
  std::uint8_t hi[16];
};

NibbleTables make_nibble_tables(std::uint8_t c) {
  NibbleTables t;
  for (int i = 0; i < 16; ++i) {
    t.lo[i] = gf256::mul(c, static_cast<std::uint8_t>(i));
    t.hi[i] = gf256::mul(c, static_cast<std::uint8_t>(i << 4));
  }
  return t;
}

}  // namespace

namespace gf256 {

std::uint8_t exp(unsigned e) {
  ACR_REQUIRE(e < 510, "gf256::exp exponent out of table range");
  return kGf.exp[e];
}

std::uint8_t log(std::uint8_t a) {
  ACR_REQUIRE(a != 0, "gf256::log of zero");
  return kGf.log[a];
}

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return kGf.exp[unsigned{kGf.log[a]} + unsigned{kGf.log[b]}];
}

std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  ACR_REQUIRE(b != 0, "gf256 division by zero");
  if (a == 0) return 0;
  return kGf.exp[unsigned{kGf.log[a]} + 255u - unsigned{kGf.log[b]}];
}

std::uint8_t inv(std::uint8_t a) {
  ACR_REQUIRE(a != 0, "gf256 inverse of zero");
  return kGf.exp[255u - unsigned{kGf.log[a]}];
}

}  // namespace gf256

namespace kernels {

void gf256_muladd_row_portable(std::byte* dst, const std::byte* src,
                               std::uint8_t coeff, std::size_t n) {
  NibbleTables t = make_nibble_tables(coeff);
  for (std::size_t i = 0; i < n; ++i) {
    auto s = static_cast<std::uint8_t>(src[i]);
    dst[i] ^= static_cast<std::byte>(t.lo[s & 0xFu] ^ t.hi[s >> 4]);
  }
}

#if ACR_HAVE_SSSE3_KERNEL
__attribute__((target("ssse3"))) void gf256_muladd_row_hw(std::byte* dst,
                                                          const std::byte* src,
                                                          std::uint8_t coeff,
                                                          std::size_t n) {
  NibbleTables t = make_nibble_tables(coeff);
  const __m128i vlo =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i vhi =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m128i lo = _mm_shuffle_epi8(vlo, _mm_and_si128(s, mask));
    __m128i hi =
        _mm_shuffle_epi8(vhi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
    __m128i d = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, _mm_xor_si128(lo, hi)));
  }
  for (; i < n; ++i) {
    auto s = static_cast<std::uint8_t>(src[i]);
    dst[i] ^= static_cast<std::byte>(t.lo[s & 0xFu] ^ t.hi[s >> 4]);
  }
}
#else
void gf256_muladd_row_hw(std::byte*, const std::byte*, std::uint8_t,
                         std::size_t) {
  ACR_REQUIRE(false, "SSSE3 GF(256) kernel not available in this build");
}
#endif

}  // namespace kernels

// ---------------------------------------------------------------------------
// Dispatch — resolved together with the CRC32C kernel by set_kernel_impl.
// ---------------------------------------------------------------------------

namespace {

using RowFn = void (*)(std::byte*, const std::byte*, std::uint8_t,
                       std::size_t);

std::atomic<RowFn> g_row{nullptr};

RowFn row_fn() {
  RowFn f = g_row.load(std::memory_order_acquire);
  if (f == nullptr) {
    // First use before any explicit set_kernel_impl: trigger the shared
    // lazy resolution (environment override, else auto-detect), which
    // stores the row kernel as a side effect.
    active_crc32c_kernel();
    f = g_row.load(std::memory_order_acquire);
  }
  return f;
}

}  // namespace

bool gf256_hw_available() {
#if ACR_HAVE_SSSE3_KERNEL
  return __builtin_cpu_supports("ssse3") != 0;
#else
  return false;
#endif
}

const char* active_gf256_kernel() {
  return row_fn() == &kernels::gf256_muladd_row_hw ? "hw" : "portable";
}

namespace kernels {

namespace detail {

void gf256_set_row_impl(KernelImpl impl) {
  RowFn f = nullptr;
  switch (impl) {
    case KernelImpl::Portable:
      f = &gf256_muladd_row_portable;
      break;
    case KernelImpl::Hw:
      ACR_REQUIRE(gf256_hw_available(),
                  "hw kernels requested but SSSE3 is not available");
      f = &gf256_muladd_row_hw;
      break;
    case KernelImpl::Auto:
      f = gf256_hw_available() ? &gf256_muladd_row_hw
                               : &gf256_muladd_row_portable;
      break;
  }
  g_row.store(f, std::memory_order_release);
}

}  // namespace detail

void gf256_muladd_row(std::byte* dst, const std::byte* src, std::uint8_t coeff,
                      std::size_t n) {
  if (coeff == 0 || n == 0) return;
  if (coeff == 1) {
    xor_fold_words(dst, src, n);
    return;
  }
  row_fn()(dst, src, coeff, n);
}

}  // namespace kernels

void gf256_muladd_chunked(std::vector<std::byte>& acc,
                          std::span<const std::byte> add, std::uint8_t coeff) {
  if (coeff == 0 || add.empty()) return;
  if (add.size() > acc.size()) acc.resize(add.size(), std::byte{0});
  parallel::Pool& pool = parallel::global();
  if (pool.threads() == 0 || add.size() < 2 * kDigestChunk) {
    kernels::gf256_muladd_row(acc.data(), add.data(), coeff, add.size());
    return;
  }
  std::size_t n = digest_chunk_count(add.size());
  pool.for_each_index(n, [&](std::size_t i) {
    auto [begin, end] = digest_chunk_range(add.size(), i);
    kernels::gf256_muladd_row(acc.data() + begin, add.data() + begin, coeff,
                              end - begin);
  });
}

}  // namespace acr::checksum
