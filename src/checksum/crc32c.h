// CRC32-C (Castagnoli) — the comparison point for Fletcher-64 in the §4.2
// checksum trade-off ablation, and the frame-integrity check of the
// reliable transport. CRC detects all burst errors up to 32 bits and has
// better mixing than Fletcher.
//
// The inner loop is hardware-dispatched (kernels.h): SSE4.2 crc32q where
// the CPU has it, a slicing-by-8 table loop otherwise. Both compute the
// same polynomial, so every digest is bit-identical across machines and
// --kernel-impl choices.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace acr::checksum {

/// One-shot CRC32-C of a buffer.
std::uint32_t crc32c(std::span<const std::byte> data);

/// digest(A ++ B) from digest(A), digest(B) and |B| — the GF(2)
/// shift-matrix combine (zlib's crc32_combine, Castagnoli polynomial).
/// Lets a buffer be digested as independent chunks and merged; O(log len_b)
/// 32x32 bit-matrix products, no data access.
std::uint32_t crc32c_combine(std::uint32_t crc_a, std::uint32_t crc_b,
                             std::uint64_t len_b);

/// XOR-difference between the CRC32C of an len-byte message and that of the
/// same message with one bit flipped at (byte_index, bit_index). The
/// conditioned CRC is affine in the message bits, so
///   crc32c(m ^ e) == crc32c(m) ^ crc32c_flip_delta(len, byte, bit)
/// — no access to the message bytes, O(log tail) matrix products. Always
/// nonzero: a CRC detects every single-bit error.
std::uint32_t crc32c_flip_delta(std::uint64_t len, std::uint64_t byte_index,
                                int bit_index);

/// Incremental interface (byte-granular; any block sizes compose).
class Crc32c {
 public:
  void append(std::span<const std::byte> block);
  std::uint32_t digest() const { return state_ ^ 0xFFFFFFFFu; }
  void reset() { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace acr::checksum
