// CRC32-C (Castagnoli) — the comparison point for Fletcher-64 in the §4.2
// checksum trade-off ablation. CRC detects all burst errors up to 32 bits
// and has better mixing than Fletcher, at a higher per-byte cost in a
// portable (table-driven, no SSE4.2) implementation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace acr::checksum {

/// One-shot CRC32-C of a buffer.
std::uint32_t crc32c(std::span<const std::byte> data);

/// Incremental interface (byte-granular; any block sizes compose).
class Crc32c {
 public:
  void append(std::span<const std::byte> block);
  std::uint32_t digest() const { return state_ ^ 0xFFFFFFFFu; }
  void reset() { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace acr::checksum
