// Message type of the tasklet runtime.
//
// Addressing is *logical*: (replica, node_index, slot). The cluster
// resolves a logical node index to whatever physical node currently plays
// that role, so a spare node that replaced a crashed one transparently
// receives its traffic — exactly the fail-over model of §2.1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/require.h"
#include "pup/pup.h"

namespace acr::rt {

/// Slot value addressing the per-node ACR service agent instead of a task.
constexpr int kServiceSlot = -1;

struct TaskAddr {
  int node_index = 0;  ///< logical node within the replica
  int slot = 0;        ///< task slot on that node, or kServiceSlot

  friend bool operator==(const TaskAddr&, const TaskAddr&) = default;
};

struct Message {
  int tag = 0;
  int src_replica = 0;
  int dst_replica = 0;
  TaskAddr src{};
  TaskAddr dst{};
  /// Sender replica's app epoch at send time (task messages only); stale
  /// epochs are dropped at delivery after a rollback.
  std::uint64_t app_epoch = 0;
  std::vector<std::byte> payload;

  std::size_t size_bytes() const { return payload.size() + 64; }
};

/// Encode a pup-able value as a message payload.
template <typename T>
std::vector<std::byte> pack_payload(T& value) {
  pup::Packer p;
  p | value;
  pup::Checkpoint c = p.take();
  return std::vector<std::byte>(c.bytes().begin(), c.bytes().end());
}

/// Decode a payload produced by pack_payload.
template <typename T>
T unpack_payload(std::span<const std::byte> payload) {
  T value{};
  pup::Unpacker u(payload);
  u | value;
  ACR_REQUIRE(u.exhausted(), "payload has trailing bytes");
  return value;
}

template <typename T>
T unpack_payload(const Message& m) {
  return unpack_payload<T>(std::span<const std::byte>(m.payload));
}

}  // namespace acr::rt
