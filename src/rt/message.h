// Message type of the tasklet runtime.
//
// Addressing is *logical*: (replica, node_index, slot). The cluster
// resolves a logical node index to whatever physical node currently plays
// that role, so a spare node that replaced a crashed one transparently
// receives its traffic — exactly the fail-over model of §2.1.
//
// Payloads are shared immutable Buffers: a broadcast fans one allocation
// out to every recipient, and a buddy checkpoint travels as an attachment
// that aliases the sender's stored image (zero-copy transfer).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "buf/buffer.h"
#include "common/require.h"
#include "pup/pup.h"

namespace acr::rt {

/// Slot value addressing the per-node ACR service agent instead of a task.
constexpr int kServiceSlot = -1;

/// Modelled per-message envelope overhead (headers, matching metadata)
/// charged by the latency model on top of the payload bytes.
constexpr std::size_t kMessageHeaderBytes = 64;

struct TaskAddr {
  int node_index = 0;  ///< logical node within the replica
  int slot = 0;        ///< task slot on that node, or kServiceSlot

  friend bool operator==(const TaskAddr&, const TaskAddr&) = default;
};

struct Message {
  int tag = 0;
  int src_replica = 0;
  int dst_replica = 0;
  TaskAddr src{};
  TaskAddr dst{};
  /// Sender replica's app epoch at send time (task messages only); stale
  /// epochs are dropped at delivery after a rollback.
  std::uint64_t app_epoch = 0;
  /// Control payload (a packed wire struct). Shared, not copied, across
  /// broadcast recipients.
  buf::Buffer payload;
  /// Bulk side-channel: checkpoint image bytes riding along with the
  /// payload header. Aliases the sender's buffer — the simulated transfer
  /// costs latency (see bytes_on_wire), not memory.
  buf::Buffer attachment;

  std::size_t size_bytes() const {
    return payload.size() + attachment.size() + kMessageHeaderBytes;
  }
};

/// Builder used by pack_payload. Thread-local so consecutive payload packs
/// recycle arenas once the in-flight messages holding them are delivered.
inline buf::BufferBuilder& payload_builder() {
  thread_local buf::BufferBuilder builder;
  return builder;
}

/// Encode a pup-able value as a message payload.
template <typename T>
buf::Buffer pack_payload(T& value) {
  pup::Packer p(payload_builder());
  p | value;
  return p.take_buffer();
}

/// Decode a payload produced by pack_payload.
template <typename T>
T unpack_payload(std::span<const std::byte> payload) {
  T value{};
  pup::Unpacker u(payload);
  u | value;
  ACR_REQUIRE(u.exhausted(), "payload has trailing bytes");
  return value;
}

template <typename T>
T unpack_payload(const Message& m) {
  return unpack_payload<T>(m.payload.bytes());
}

}  // namespace acr::rt
