// Virtual node: hosts tasks, a pause ledger, and the per-node ACR service
// agent. Provides the checkpoint pack/restore entry points the agent uses.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "pup/pup.h"
#include "rt/message.h"
#include "rt/task.h"

namespace acr::rt {

class Cluster;

/// Per-node protocol hook implemented by the ACR node agent.
class NodeService {
 public:
  virtual ~NodeService() = default;
  /// A message addressed to kServiceSlot on this node.
  virtual void on_service_message(const Message& m) = 0;
  /// A local task reported progress. Decide whether it pauses (Fig. 3).
  virtual ProgressDecision on_progress(int slot,
                                       std::uint64_t completed_iterations) = 0;
  /// A local task declared itself finished.
  virtual void on_task_done(int slot) = 0;
};

class Node {
 public:
  Node(Cluster& cluster, int physical_id);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // --- identity / role -----------------------------------------------------
  int physical_id() const { return physical_id_; }
  bool assigned() const { return replica_ >= 0; }
  int replica() const { return replica_; }
  int node_index() const { return node_index_; }
  /// Give this node a (replica, index) role. Used at job start and when a
  /// spare is promoted to replace a crashed node.
  void assign(int replica, int node_index);

  // --- liveness ------------------------------------------------------------
  bool alive() const { return alive_; }
  /// Fail-stop: the node drops all traffic and fires no more events.
  void kill();
  /// Return a repaired node to service: alive and ungated again, with a
  /// fresh incarnation (events scheduled by the dead incarnation stay
  /// inert). The caller decides what to do with it — typically re-pool it
  /// as a spare; tasks and role are re-established at the next promotion.
  void revive();
  std::uint64_t incarnation() const { return incarnation_; }

  /// Restart barrier gate: while gated, task-level messages are dropped
  /// (they belong to the timeline abandoned by the restore and will be
  /// re-sent after the resume barrier); service messages still flow.
  bool gated() const { return gated_; }
  void set_gated(bool gated) { gated_ = gated; }

  // --- tasks ---------------------------------------------------------------
  /// (Re)create the task set from the cluster's task factory. Any previous
  /// tasks are destroyed. Does not start them.
  void create_tasks();
  int num_tasks() const { return static_cast<int>(tasks_.size()); }
  Task& task(int slot) { return *tasks_.at(static_cast<std::size_t>(slot)); }

  /// Fire on_start() for every task (via engine events at the current time).
  void start_tasks();

  // --- pause control (checkpoint consensus) ---------------------------------
  bool task_paused(int slot) const {
    return paused_.at(static_cast<std::size_t>(slot));
  }
  void pause_task(int slot) { paused_.at(static_cast<std::size_t>(slot)) = true; }
  /// Clear the pause flag and schedule on_resume().
  void unpause_task(int slot);
  void unpause_all();
  /// Highest progress reported by any local task so far.
  std::uint64_t max_local_progress() const { return max_progress_; }
  std::uint64_t task_progress(int slot) const {
    return progress_.at(static_cast<std::size_t>(slot));
  }

  // --- checkpointing -------------------------------------------------------
  /// Serialize every task into one stream (task count header + streams).
  /// Packs into the node's persistent arena (steady-state epochs reuse the
  /// capacity retired by dropped checkpoints). When `digest_sink` is given,
  /// every packed byte is also streamed into it — the checksum-mode buddy
  /// digest comes out of the same traversal that produced the image.
  pup::Checkpoint pack_state(buf::Sink* digest_sink = nullptr);
  /// Arena-reuse / allocation counters of the pack builder (bench + tests).
  const buf::BufferBuilder::Stats& pack_stats() const {
    return pack_builder_.stats();
  }
  /// Restore every task from `c`. Bumps the incarnation so stale compute
  /// continuations and timers die. Does NOT resume the tasks.
  void restore_state(const pup::Checkpoint& c);
  /// Schedule on_resume() for every task (post-restore restart).
  void resume_all_tasks();

  // --- service agent ---------------------------------------------------------
  void set_service(std::unique_ptr<NodeService> service);
  NodeService* service() { return service_.get(); }

  // --- runtime internals (used by Cluster) -----------------------------------
  void deliver(const Message& m);
  Cluster& cluster() { return cluster_; }
  const Cluster& cluster() const { return cluster_; }

 private:
  friend class NodeTaskContext;

  void note_progress(int slot, std::uint64_t iters);

  Cluster& cluster_;
  int physical_id_;
  int replica_ = -1;
  int node_index_ = -1;
  bool alive_ = true;
  bool gated_ = false;
  std::uint64_t incarnation_ = 0;

  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<std::unique_ptr<TaskContext>> contexts_;
  std::vector<bool> paused_;
  std::vector<std::uint64_t> progress_;
  std::uint64_t max_progress_ = 0;
  std::unique_ptr<NodeService> service_;
  /// Checkpoint pack arena, reused across epochs (see pack_state).
  buf::BufferBuilder pack_builder_;
};

}  // namespace acr::rt
