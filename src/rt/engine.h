// Deterministic virtual-time event engine.
//
// The tasklet runtime executes *real* application code (real arrays, real
// serialization, real bit flips) but advances a virtual clock through
// discrete events, so a "30-minute, 512-core" experiment (Fig. 12) runs in
// seconds of wall time and is bit-for-bit reproducible. Ties in event time
// are broken by insertion order: EventIds increase strictly and are never
// recycled (cancellation included), so equal-deadline events — notably the
// reliable transport's retransmit timers, which all land on identical
// deadlines when several frames are sent from one event — fire in the exact
// order they were scheduled, on every platform, on every run.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/require.h"

namespace acr::rt {

class Engine {
 public:
  using Handler = std::function<void()>;
  using EventId = std::uint64_t;

  double now() const { return now_; }

  /// Schedule `fn` at absolute virtual time `time` (>= now).
  EventId schedule_at(double time, Handler fn);

  /// Schedule `fn` after a non-negative delay.
  EventId schedule_after(double delay, Handler fn) {
    ACR_REQUIRE(delay >= 0.0, "negative delay");
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. Cancelling an already-fired or unknown id is a
  /// no-op (timers race with the events that obsolete them).
  void cancel(EventId id);

  /// Execute the next event. Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains.
  void run();

  /// Run events with time <= t, then set now() = t. Returns events fired.
  std::size_t run_until(double t);

  std::size_t events_processed() const { return processed_; }
  std::size_t pending() const { return heap_.size(); }
  /// Cancelled ids still being tracked (bounded; see prune_cancelled).
  std::size_t cancelled_backlog() const { return cancelled_.size(); }

 private:
  struct Event {
    double time;
    EventId id;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among ties
    }
  };

  /// Pop the earliest event off the heap, MOVING it out (std::pop_heap
  /// rotates it to the back, where it is not const like priority_queue's
  /// top()). Handlers — and any checkpoint Buffers their closures hold —
  /// are never copied on the hot dispatch path.
  Event pop_event();

  /// Drop tracked cancellations that no pending event matches: their event
  /// already fired (or never existed), so they can never be observed again.
  /// Keeps cancelled_ bounded by the pending-event count even when callers
  /// cancel() already-fired timer ids forever.
  void prune_cancelled();

  // Binary min-heap over Event (std::push_heap/pop_heap with Later).
  std::vector<Event> heap_;
  std::unordered_set<EventId> cancelled_;
  double now_ = 0.0;
  EventId next_id_ = 1;
  std::size_t processed_ = 0;
};

}  // namespace acr::rt
