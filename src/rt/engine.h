// Deterministic virtual-time event engine, sharded into lanes.
//
// The tasklet runtime executes *real* application code (real arrays, real
// serialization, real bit flips) but advances a virtual clock through
// discrete events, so a "30-minute, 512-core" experiment (Fig. 12) runs in
// seconds of wall time and is bit-for-bit reproducible. Ties in event time
// are broken by insertion order: EventIds increase strictly and are never
// recycled (cancellation included), so equal-deadline events — notably the
// reliable transport's retransmit timers, which all land on identical
// deadlines when several frames are sent from one event — fire in the exact
// order they were scheduled, on every platform, on every run.
//
// Sharding (§16 of DESIGN.md). A single binary heap over every pending
// event is the scaling ceiling for 100k+-node sweeps: every push and pop
// sifts through a multi-million-entry, cache-hostile array. The engine can
// instead shard the queue into L lanes (per-node affinity via LaneKey),
// each with its own min-heap and an O(1)-append mailbox, and advance in
// *conservative-lookahead rounds*:
//
//   1. every lane drains its mailbox into its heap        (parallel)
//   2. horizon = min(lane heads) + lookahead              (serial, O(L))
//   3. every lane extracts its events <= horizon, in
//      (time, id) order, into a sorted run                (parallel)
//   4. the runs are merged and DISPATCHED strictly in the
//      global (time, id) order                            (serial)
//
// Handlers always run one at a time on the dispatching thread, in exactly
// the order the serial engine would fire them — handlers mutate shared
// protocol state (trace log, in-flight counters, the jitter RNG stream),
// so serialized dispatch *is* the determinism contract. What the lanes
// parallelize is the queue machinery itself: heap pushes, pops, and the
// per-round extraction sort, which dominate at large node counts. Events
// scheduled *inside* the current round with time <= horizon go to a small
// in-window overflow heap consulted at every dispatch, so an event can
// never jump the global order; events beyond the horizon are O(1) mailbox
// appends, batched into their lane's heap at the next round. Output is
// therefore bit-identical at any lane count, and lanes == 1 runs the
// original single-heap code path unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/require.h"

namespace acr::parallel {
class LaneRunner;
}  // namespace acr::parallel

namespace acr::rt {

class Engine {
 public:
  using Handler = std::function<void()>;
  using EventId = std::uint64_t;
  /// Lane-affinity key: lane = key % lanes(). Purely a locality hint (all
  /// of one node's events land in one lane's heap); placement never affects
  /// dispatch order, which is globally (time, id)-merged.
  using LaneKey = std::uint64_t;

  /// cancel() sweeps the tracked-cancellation set once it exceeds
  /// kCancelPruneMinBacklog ids AND kCancelPruneSlackFactor times the
  /// pending-event count — below that, the set is provably bounded by the
  /// ids a prune could not discard anyway.
  static constexpr std::size_t kCancelPruneMinBacklog = 64;
  static constexpr std::size_t kCancelPruneSlackFactor = 2;

  /// Lane count from the ACR_ENGINE_LANES environment variable (unset,
  /// empty, or < 2 means the serial single-heap path).
  Engine();
  /// Explicit lane count (clamped to >= 1); overrides the environment.
  explicit Engine(int lanes);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  int lanes() const { return static_cast<int>(lanes_.size()); }
  /// Reshard into `lanes` lanes. Only legal while no events are pending —
  /// resharding a live queue would have to re-key every event.
  void set_lanes(int lanes);

  /// Conservative-lookahead window width, in virtual seconds: each round
  /// extracts every event within `seconds` of the earliest pending one.
  /// Derived by rt::Cluster from its latency model (min link/app/L2 delay);
  /// any value >= 0 is safe — the window only sets the batch granularity,
  /// never the dispatch order. 0 batches equal-deadline ties only.
  void set_lookahead(double seconds);
  double lookahead() const { return lookahead_; }

  double now() const { return now_; }

  /// Schedule `fn` at absolute virtual time `time` (>= now, finite).
  EventId schedule_at(double time, Handler fn) {
    return schedule_at(time, std::move(fn), next_id_);
  }
  /// Same, with a lane-affinity key (typically the destination node).
  EventId schedule_at(double time, Handler fn, LaneKey lane_key);

  /// Schedule `fn` after a non-negative delay.
  EventId schedule_after(double delay, Handler fn) {
    ACR_REQUIRE(delay >= 0.0, "negative delay");
    return schedule_at(now_ + delay, std::move(fn));
  }
  EventId schedule_after(double delay, Handler fn, LaneKey lane_key) {
    ACR_REQUIRE(delay >= 0.0, "negative delay");
    return schedule_at(now_ + delay, std::move(fn), lane_key);
  }

  /// Cancel a pending event. Cancelling an already-fired or unknown id is a
  /// no-op (timers race with the events that obsolete them).
  void cancel(EventId id);

  /// Execute the next event. Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains.
  void run();

  /// Run events with time <= t, then set now() = t. Returns events fired.
  std::size_t run_until(double t);

  std::size_t events_processed() const { return processed_; }
  std::size_t pending() const;
  /// Cancelled ids still being tracked (bounded; see prune_cancelled).
  std::size_t cancelled_backlog() const { return cancelled_.size(); }
  /// Lookahead rounds extracted so far (always 0 on the serial path).
  std::uint64_t rounds() const { return rounds_; }

 private:
  struct Event {
    double time;
    EventId id;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among ties
    }
  };
  /// One shard of the queue. Aligned so that concurrent extraction rounds
  /// never false-share a cache line between lane workers.
  struct alignas(64) Lane {
    // Binary min-heap over Event (std::push_heap/pop_heap with Later).
    std::vector<Event> heap;
    /// Events parked by schedule_at until the next round drains them into
    /// the heap (O(1) append on the dispatch thread, batched heap insert
    /// on this lane's worker).
    std::vector<Event> mailbox;
    /// This round's extracted events, ascending (time, id); run_pos is the
    /// dispatch cursor.
    std::vector<Event> run;
    std::size_t run_pos = 0;
  };

  bool serial() const { return lanes_.size() == 1; }
  Lane& lane_for(LaneKey key) {
    return lanes_[static_cast<std::size_t>(key % lanes_.size())];
  }

  /// Pop the earliest event off a heap, MOVING it out (std::pop_heap
  /// rotates it to the back, where it is not const like priority_queue's
  /// top()). Handlers — and any checkpoint Buffers their closures hold —
  /// are never copied on the hot dispatch path.
  static Event pop_event(std::vector<Event>& heap);

  /// Drop tracked cancellations that no pending event matches: their event
  /// already fired (or never existed), so they can never be observed again.
  /// Keeps cancelled_ bounded by the pending-event count even when callers
  /// cancel() already-fired timer ids forever. O(pending), reserve-exact.
  void prune_cancelled();

  // --- laned machinery (unused while serial()) -------------------------------
  /// Start the next lookahead round: drain mailboxes, pick the horizon,
  /// extract each lane's run, rebuild the merge cursor heap. Returns false
  /// when every lane is empty (nothing pending anywhere).
  bool extract_round();
  /// Erase cancelled events sitting at the merge/overflow heads so the
  /// next dispatch candidate is live.
  void skip_cancelled_heads();
  /// Next live event of the current round, or nullptr when the round is
  /// exhausted. *from_overflow reports which structure holds it.
  const Event* peek_round(bool* from_overflow);
  /// Fire the event peek_round() returned.
  void fire_round(bool from_overflow);
  void merge_sift_down(std::size_t i);

  bool step_serial();
  bool step_laned();

  std::vector<Lane> lanes_;
  /// Merge cursor heap over the lanes with a non-exhausted run: holds lane
  /// indices, ordered by each lane's run head (time, id).
  std::vector<std::uint32_t> merge_;
  /// In-window events: scheduled while a round is active with time <=
  /// horizon_, dispatched in merged order with the runs. Short-lived
  /// events (zero-delay continuations, sub-window messages) live and die
  /// here without ever touching a lane heap.
  std::vector<Event> overflow_;
  double horizon_ = -std::numeric_limits<double>::infinity();
  bool round_active_ = false;
  double lookahead_ = 0.0;
  std::uint64_t rounds_ = 0;
  std::unique_ptr<parallel::LaneRunner> runner_;

  std::unordered_set<EventId> cancelled_;
  double now_ = 0.0;
  EventId next_id_ = 1;
  std::size_t processed_ = 0;
};

}  // namespace acr::rt
