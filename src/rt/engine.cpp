#include "rt/engine.h"

namespace acr::rt {

Engine::EventId Engine::schedule_at(double time, Handler fn) {
  ACR_REQUIRE(time >= now_, "cannot schedule in the past");
  EventId id = next_id_++;
  queue_.push(Event{time, id, std::move(fn)});
  return id;
}

bool Engine::step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; copy the handler out before popping.
    Event ev = queue_.top();
    queue_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.time;
    ++processed_;
    ev.fn();
    return true;
  }
  return false;
}

void Engine::run() {
  while (step()) {
  }
}

std::size_t Engine::run_until(double t) {
  ACR_REQUIRE(t >= now_, "cannot run backwards");
  std::size_t fired = 0;
  while (!queue_.empty()) {
    // Drop cancelled events first so queue_.top() is a live event and step()
    // cannot skip past `t` to a later one.
    auto it = cancelled_.find(queue_.top().id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    if (queue_.top().time > t) break;
    if (step()) ++fired;
  }
  now_ = t;
  return fired;
}

}  // namespace acr::rt
