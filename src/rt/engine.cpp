#include "rt/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "parallel/pool.h"

namespace acr::rt {

namespace {

int env_lanes() {
  const char* e = std::getenv("ACR_ENGINE_LANES");
  if (e == nullptr || *e == '\0') return 1;
  int n = std::atoi(e);
  if (n < 2) return 1;
  return n > 1024 ? 1024 : n;
}

}  // namespace

Engine::Engine() : Engine(env_lanes()) {}

Engine::Engine(int lanes) {
  lanes_.resize(static_cast<std::size_t>(lanes < 1 ? 1 : lanes));
}

Engine::~Engine() = default;

void Engine::set_lanes(int lanes) {
  std::size_t n = static_cast<std::size_t>(lanes < 1 ? 1 : lanes);
  if (n == lanes_.size()) return;
  ACR_REQUIRE(pending() == 0,
              "cannot reshard the event queue while events are pending");
  lanes_.clear();
  lanes_.resize(n);
  merge_.clear();
  overflow_.clear();
  round_active_ = false;
  horizon_ = -std::numeric_limits<double>::infinity();
  runner_.reset();
}

void Engine::set_lookahead(double seconds) {
  ACR_REQUIRE(std::isfinite(seconds) && seconds >= 0.0,
              "lookahead must be finite and non-negative");
  lookahead_ = seconds;
}

Engine::EventId Engine::schedule_at(double time, Handler fn, LaneKey lane_key) {
  // A NaN deadline would silently corrupt every heap comparison below it
  // (NaN is unordered, so sift paths disagree); infinities are equally
  // meaningless as virtual times. Reject both loudly.
  ACR_REQUIRE(std::isfinite(time), "event time must be finite");
  ACR_REQUIRE(time >= now_, "cannot schedule in the past");
  EventId id = next_id_++;
  if (serial()) {
    std::vector<Event>& heap = lanes_[0].heap;
    heap.push_back(Event{time, id, std::move(fn)});
    std::push_heap(heap.begin(), heap.end(), Later{});
    return id;
  }
  if (round_active_ && time <= horizon_) {
    // In-window: must be dispatchable before the current round's extracted
    // runs are exhausted, so it cannot wait in a mailbox. The overflow
    // heap is small (only this window's late arrivals), so short-lived
    // events bypass the big lane heaps entirely.
    overflow_.push_back(Event{time, id, std::move(fn)});
    std::push_heap(overflow_.begin(), overflow_.end(), Later{});
  } else {
    lane_for(lane_key).mailbox.push_back(Event{time, id, std::move(fn)});
  }
  return id;
}

Engine::Event Engine::pop_event(std::vector<Event>& heap) {
  std::pop_heap(heap.begin(), heap.end(), Later{});
  Event ev = std::move(heap.back());
  heap.pop_back();
  return ev;
}

void Engine::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return;  // never issued
  cancelled_.insert(id);
  // Ids of already-fired events accumulate here (watchdogs cancel stale
  // timers long after they fired). Sweep once the backlog clearly exceeds
  // what the pending set could account for.
  if (cancelled_.size() > kCancelPruneMinBacklog &&
      cancelled_.size() > kCancelPruneSlackFactor * pending())
    prune_cancelled();
}

void Engine::prune_cancelled() {
  std::unordered_set<EventId> live;
  // Reserve-exact: a survivor must be both tracked and pending, so the
  // smaller of the two counts bounds the result (cancelled_.size() alone
  // over-reserved by the whole fired-id backlog being pruned away).
  live.reserve(std::min(cancelled_.size(), pending()));
  auto keep = [&](const Event& ev) {
    if (cancelled_.count(ev.id) > 0) live.insert(ev.id);
  };
  for (const Lane& lane : lanes_) {
    for (const Event& ev : lane.heap) keep(ev);
    for (const Event& ev : lane.mailbox) keep(ev);
    for (std::size_t i = lane.run_pos; i < lane.run.size(); ++i)
      keep(lane.run[i]);
  }
  for (const Event& ev : overflow_) keep(ev);
  cancelled_ = std::move(live);
}

std::size_t Engine::pending() const {
  if (serial()) return lanes_[0].heap.size();
  std::size_t n = overflow_.size();
  for (const Lane& lane : lanes_)
    n += lane.heap.size() + lane.mailbox.size() +
         (lane.run.size() - lane.run_pos);
  return n;
}

// ---------------------------------------------------------------------------
// Serial path: the original single-heap engine, byte-identical behaviour.
// ---------------------------------------------------------------------------

bool Engine::step_serial() {
  std::vector<Event>& heap = lanes_[0].heap;
  while (!heap.empty()) {
    Event ev = pop_event(heap);
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.time;
    ++processed_;
    ev.fn();
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Laned path: conservative-lookahead rounds, deterministic (time, id) merge.
// ---------------------------------------------------------------------------

bool Engine::extract_round() {
  bool any = false;
  for (Lane& lane : lanes_) {
    lane.run.clear();
    lane.run_pos = 0;
    if (!lane.heap.empty() || !lane.mailbox.empty()) any = true;
  }
  merge_.clear();
  if (!any) {
    round_active_ = false;
    return false;
  }
  if (!runner_)
    runner_ = std::make_unique<parallel::LaneRunner>(
        static_cast<int>(lanes_.size()));

  // Phase 1 (parallel): drain each lane's mailbox into its heap. Large
  // batches re-heapify in O(n) instead of n sifts.
  runner_->run([this](int i) {
    Lane& lane = lanes_[static_cast<std::size_t>(i)];
    if (lane.mailbox.empty()) return;
    if (lane.mailbox.size() * 4 >= lane.heap.size()) {
      for (Event& ev : lane.mailbox) lane.heap.push_back(std::move(ev));
      std::make_heap(lane.heap.begin(), lane.heap.end(), Later{});
    } else {
      for (Event& ev : lane.mailbox) {
        lane.heap.push_back(std::move(ev));
        std::push_heap(lane.heap.begin(), lane.heap.end(), Later{});
      }
    }
    lane.mailbox.clear();
  });

  // Horizon: everything within `lookahead_` of the earliest pending event
  // is extracted this round. Any wider window would still dispatch in the
  // same order (late arrivals inside the window go to the overflow heap);
  // the lookahead only amortizes the round setup over more events.
  double min_head = std::numeric_limits<double>::infinity();
  for (const Lane& lane : lanes_)
    if (!lane.heap.empty() && lane.heap.front().time < min_head)
      min_head = lane.heap.front().time;
  double cut = min_head + lookahead_;

  // Phase 2 (parallel): each lane pops its events <= cut into a sorted run.
  runner_->run([this, cut](int i) {
    Lane& lane = lanes_[static_cast<std::size_t>(i)];
    while (!lane.heap.empty() && lane.heap.front().time <= cut)
      lane.run.push_back(pop_event(lane.heap));
  });

  horizon_ = cut;
  round_active_ = true;
  ++rounds_;
  for (std::uint32_t i = 0; i < lanes_.size(); ++i)
    if (!lanes_[i].run.empty()) merge_.push_back(i);
  // Heapify the merge cursors bottom-up over each lane's run head.
  for (std::size_t i = merge_.size(); i-- > 0;) merge_sift_down(i);
  return true;
}

void Engine::merge_sift_down(std::size_t i) {
  auto head = [this](std::uint32_t lane) -> const Event& {
    const Lane& l = lanes_[lane];
    return l.run[l.run_pos];
  };
  auto earlier = [&](std::uint32_t a, std::uint32_t b) {
    const Event& ea = head(a);
    const Event& eb = head(b);
    if (ea.time != eb.time) return ea.time < eb.time;
    return ea.id < eb.id;
  };
  std::size_t n = merge_.size();
  for (;;) {
    std::size_t l = 2 * i + 1;
    if (l >= n) return;
    std::size_t m = l;
    if (l + 1 < n && earlier(merge_[l + 1], merge_[l])) m = l + 1;
    if (!earlier(merge_[m], merge_[i])) return;
    std::swap(merge_[i], merge_[m]);
    i = m;
  }
}

void Engine::skip_cancelled_heads() {
  for (;;) {
    if (!merge_.empty()) {
      Lane& lane = lanes_[merge_[0]];
      auto it = cancelled_.find(lane.run[lane.run_pos].id);
      if (it != cancelled_.end()) {
        cancelled_.erase(it);
        lane.run[lane.run_pos].fn = nullptr;  // release the closure early
        if (++lane.run_pos == lane.run.size()) {
          merge_[0] = merge_.back();
          merge_.pop_back();
        }
        if (!merge_.empty()) merge_sift_down(0);
        continue;
      }
    }
    if (!overflow_.empty()) {
      auto it = cancelled_.find(overflow_.front().id);
      if (it != cancelled_.end()) {
        cancelled_.erase(it);
        pop_event(overflow_);
        continue;
      }
    }
    return;
  }
}

const Engine::Event* Engine::peek_round(bool* from_overflow) {
  const Event* cand = nullptr;
  *from_overflow = false;
  if (!merge_.empty()) {
    const Lane& lane = lanes_[merge_[0]];
    cand = &lane.run[lane.run_pos];
  }
  if (!overflow_.empty()) {
    const Event& o = overflow_.front();
    if (cand == nullptr || o.time < cand->time ||
        (o.time == cand->time && o.id < cand->id)) {
      cand = &o;
      *from_overflow = true;
    }
  }
  return cand;
}

void Engine::fire_round(bool from_overflow) {
  Event ev;
  if (from_overflow) {
    ev = pop_event(overflow_);
  } else {
    Lane& lane = lanes_[merge_[0]];
    ev = std::move(lane.run[lane.run_pos]);
    if (++lane.run_pos == lane.run.size()) {
      merge_[0] = merge_.back();
      merge_.pop_back();
    }
    if (!merge_.empty()) merge_sift_down(0);
  }
  now_ = ev.time;
  ++processed_;
  ev.fn();
}

bool Engine::step_laned() {
  for (;;) {
    skip_cancelled_heads();
    bool from_overflow;
    if (peek_round(&from_overflow) != nullptr) {
      fire_round(from_overflow);
      return true;
    }
    if (!extract_round()) return false;
  }
}

// ---------------------------------------------------------------------------
// Public dispatch API.
// ---------------------------------------------------------------------------

bool Engine::step() { return serial() ? step_serial() : step_laned(); }

void Engine::run() {
  while (step()) {
  }
}

std::size_t Engine::run_until(double t) {
  ACR_REQUIRE(t >= now_, "cannot run backwards");
  std::size_t fired = 0;
  if (serial()) {
    std::vector<Event>& heap = lanes_[0].heap;
    while (!heap.empty()) {
      // Drop cancelled events first so the heap front is a live event and
      // step() cannot skip past `t` to a later one.
      auto it = cancelled_.find(heap.front().id);
      if (it != cancelled_.end()) {
        cancelled_.erase(it);
        pop_event(heap);
        continue;
      }
      if (heap.front().time > t) break;
      if (step_serial()) ++fired;
    }
    now_ = t;
    return fired;
  }
  for (;;) {
    skip_cancelled_heads();
    bool from_overflow;
    const Event* head = peek_round(&from_overflow);
    if (head != nullptr) {
      if (head->time > t) break;
      fire_round(from_overflow);
      ++fired;
      continue;
    }
    if (!extract_round()) break;
  }
  now_ = t;
  return fired;
}

}  // namespace acr::rt
