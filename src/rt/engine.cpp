#include "rt/engine.h"

#include <algorithm>

namespace acr::rt {

Engine::EventId Engine::schedule_at(double time, Handler fn) {
  ACR_REQUIRE(time >= now_, "cannot schedule in the past");
  EventId id = next_id_++;
  heap_.push_back(Event{time, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return id;
}

Engine::Event Engine::pop_event() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return ev;
}

void Engine::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return;  // never issued
  cancelled_.insert(id);
  // Ids of already-fired events accumulate here (watchdogs cancel stale
  // timers long after they fired). Sweep once the backlog clearly exceeds
  // what the pending set could account for.
  if (cancelled_.size() > 64 && cancelled_.size() > 2 * heap_.size())
    prune_cancelled();
}

void Engine::prune_cancelled() {
  std::unordered_set<EventId> live;
  live.reserve(cancelled_.size());
  for (const Event& ev : heap_)
    if (cancelled_.count(ev.id) > 0) live.insert(ev.id);
  cancelled_ = std::move(live);
}

bool Engine::step() {
  while (!heap_.empty()) {
    Event ev = pop_event();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.time;
    ++processed_;
    ev.fn();
    return true;
  }
  return false;
}

void Engine::run() {
  while (step()) {
  }
}

std::size_t Engine::run_until(double t) {
  ACR_REQUIRE(t >= now_, "cannot run backwards");
  std::size_t fired = 0;
  while (!heap_.empty()) {
    // Drop cancelled events first so the heap front is a live event and
    // step() cannot skip past `t` to a later one.
    auto it = cancelled_.find(heap_.front().id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      pop_event();
      continue;
    }
    if (heap_.front().time > t) break;
    if (step()) ++fired;
  }
  now_ = t;
  return fired;
}

}  // namespace acr::rt
