#include "rt/cluster.h"

#include <algorithm>

#include "common/logging.h"

namespace acr::rt {

const char* trace_kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::JobStart: return "job-start";
    case TraceKind::CheckpointRequested: return "checkpoint-requested";
    case TraceKind::CheckpointIterationDecided: return "checkpoint-iteration";
    case TraceKind::CheckpointPacked: return "checkpoint-packed";
    case TraceKind::CheckpointCommitted: return "checkpoint-committed";
    case TraceKind::SdcInjected: return "sdc-injected";
    case TraceKind::SdcDetected: return "sdc-detected";
    case TraceKind::HardFailureInjected: return "hard-failure-injected";
    case TraceKind::HardFailureDetected: return "hard-failure-detected";
    case TraceKind::RecoveryStarted: return "recovery-started";
    case TraceKind::RecoveryCompleted: return "recovery-completed";
    case TraceKind::Rollback: return "rollback";
    case TraceKind::JobComplete: return "job-complete";
  }
  return "?";
}

void TraceLog::record(double time, TraceKind kind, int replica, int node_index,
                      std::string detail) {
  events_.push_back(TraceEvent{time, kind, replica, node_index,
                               std::move(detail)});
}

std::size_t TraceLog::count(TraceKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [&](const TraceEvent& e) { return e.kind == kind; }));
}

const TraceEvent* TraceLog::find_first(TraceKind kind, double t) const {
  for (const auto& e : events_)
    if (e.kind == kind && e.time >= t) return &e;
  return nullptr;
}

Cluster::Cluster(Engine& engine, const ClusterConfig& config)
    : engine_(engine), config_(config), jitter_rng_(config.seed, 77) {
  ACR_REQUIRE(config.nodes_per_replica > 0, "need at least one node");
  ACR_REQUIRE(config.spare_nodes >= 0, "spare count must be non-negative");
}

void Cluster::map_onto_torus(const topo::Torus3D& torus,
                             topo::MappingScheme scheme, int mixed_chunk) {
  topo::ReplicaMapping mapping(torus, scheme, mixed_chunk);
  int max_dist = 0;
  for (int i = 0; i < mapping.nodes_per_replica(); ++i)
    max_dist = std::max(max_dist, mapping.buddy_distance(i));
  config_.buddy_hops = max_dist;
}

void Cluster::populate() {
  ACR_REQUIRE(nodes_.empty(), "populate() must be called once");
  ACR_REQUIRE(factory_ != nullptr, "task factory must be set before populate");
  int total = 2 * config_.nodes_per_replica + config_.spare_nodes;
  nodes_.reserve(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i)
    nodes_.push_back(std::make_unique<Node>(*this, i));

  role_table_.assign(2, std::vector<int>(
                            static_cast<std::size_t>(config_.nodes_per_replica),
                            -1));
  int next = 0;
  for (int r = 0; r < 2; ++r) {
    for (int i = 0; i < config_.nodes_per_replica; ++i) {
      Node& n = *nodes_[static_cast<std::size_t>(next)];
      n.assign(r, i);
      n.create_tasks();
      role_table_[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)] =
          next;
      ++next;
    }
  }
  for (int s = 0; s < config_.spare_nodes; ++s) spare_pool_.push_back(next++);
}

void Cluster::start_application() {
  trace_.record(engine_.now(), TraceKind::JobStart);
  for (int r = 0; r < 2; ++r)
    for (int i = 0; i < config_.nodes_per_replica; ++i)
      node_at(r, i).start_tasks();
}

Node& Cluster::node_at(int replica, int node_index) {
  int pid = role_table_.at(static_cast<std::size_t>(replica))
                .at(static_cast<std::size_t>(node_index));
  ACR_REQUIRE(pid >= 0, "role is unmanned");
  return *nodes_[static_cast<std::size_t>(pid)];
}

bool Cluster::role_alive(int replica, int node_index) {
  int pid = role_table_.at(static_cast<std::size_t>(replica))
                .at(static_cast<std::size_t>(node_index));
  return pid >= 0 && nodes_[static_cast<std::size_t>(pid)]->alive();
}

int Cluster::spares_remaining() const {
  return static_cast<int>(spare_pool_.size());
}

double Cluster::app_latency(std::size_t bytes, Pcg32& jitter_rng) {
  double base = config_.app_alpha +
                static_cast<double>(bytes) * config_.app_byte_time;
  return base * (1.0 + config_.app_jitter * jitter_rng.uniform());
}

double Cluster::service_latency(bool inter_replica, double bytes) {
  int hops = inter_replica ? config_.buddy_hops : 2;
  return config_.net.alpha * hops + bytes * config_.net.beta();
}

void Cluster::send_task(int replica, TaskAddr src, TaskAddr dst, int tag,
                        buf::Buffer payload) {
  Message m;
  m.tag = tag;
  m.src_replica = m.dst_replica = replica;
  m.src = src;
  m.dst = dst;
  m.app_epoch = app_epoch_.at(static_cast<std::size_t>(replica));
  m.payload = std::move(payload);
  double lat = app_latency(m.size_bytes(), jitter_rng_);
  ++in_flight_.at(static_cast<std::size_t>(replica));
  engine_.schedule_after(lat, [this, m = std::move(m)]() mutable {
    --in_flight_.at(static_cast<std::size_t>(m.dst_replica));
    // Traffic from an abandoned timeline (pre-rollback) is dropped.
    if (m.app_epoch != app_epoch_.at(static_cast<std::size_t>(m.dst_replica)))
      return;
    int pid = role_table_[static_cast<std::size_t>(m.dst_replica)]
                         [static_cast<std::size_t>(m.dst.node_index)];
    if (pid < 0) return;  // role unmanned: message disappears
    nodes_[static_cast<std::size_t>(pid)]->deliver(m);
  });
}

void Cluster::send_service(int src_replica, int src_node, int dst_replica,
                           int dst_node, int tag, buf::Buffer payload,
                           double bytes_on_wire, buf::Buffer attachment) {
  Message m;
  m.tag = tag;
  m.src_replica = src_replica;
  m.dst_replica = dst_replica;
  m.src = TaskAddr{src_node, kServiceSlot};
  m.dst = TaskAddr{dst_node, kServiceSlot};
  m.payload = std::move(payload);
  m.attachment = std::move(attachment);
  double wire = bytes_on_wire >= 0.0 ? bytes_on_wire
                                     : static_cast<double>(m.size_bytes());
  double lat = service_latency(src_replica != dst_replica, wire);
  engine_.schedule_after(lat, [this, m = std::move(m)]() mutable {
    int pid = role_table_[static_cast<std::size_t>(m.dst_replica)]
                         [static_cast<std::size_t>(m.dst.node_index)];
    if (pid < 0) return;
    nodes_[static_cast<std::size_t>(pid)]->deliver(m);
  });
}

void Cluster::send_to_manager(int src_replica, int src_node, int tag,
                              buf::Buffer payload) {
  ACR_REQUIRE(manager_hook_ != nullptr, "no manager installed");
  Message m;
  m.tag = tag;
  m.src_replica = src_replica;
  m.dst_replica = -1;
  m.src = TaskAddr{src_node, kServiceSlot};
  m.dst = TaskAddr{-1, kServiceSlot};
  m.payload = std::move(payload);
  double lat = service_latency(false, static_cast<double>(m.size_bytes()));
  engine_.schedule_after(lat,
                         [this, m = std::move(m)]() { manager_hook_(m); });
}

void Cluster::send_from_manager(int dst_replica, int dst_node, int tag,
                                buf::Buffer payload, double bytes_on_wire) {
  send_service(-1, -1, dst_replica, dst_node, tag, std::move(payload),
               bytes_on_wire);
}

void Cluster::kill_role(int replica, int node_index) {
  int pid = role_table_.at(static_cast<std::size_t>(replica))
                .at(static_cast<std::size_t>(node_index));
  if (pid < 0) return;
  nodes_[static_cast<std::size_t>(pid)]->kill();
}

Node* Cluster::promote_spare(int replica, int node_index) {
  if (spare_pool_.empty()) return nullptr;
  int pid = spare_pool_.back();
  spare_pool_.pop_back();
  int old = role_table_.at(static_cast<std::size_t>(replica))
                .at(static_cast<std::size_t>(node_index));
  if (old >= 0) nodes_[static_cast<std::size_t>(old)]->assign(-1, -1);
  Node& n = *nodes_[static_cast<std::size_t>(pid)];
  n.assign(replica, node_index);
  role_table_[static_cast<std::size_t>(replica)]
             [static_cast<std::size_t>(node_index)] = pid;
  n.create_tasks();  // fresh tasks; state arrives from the buddy checkpoint
  return &n;
}

Pcg32 Cluster::make_rng(std::uint64_t salt) const {
  return Pcg32(config_.seed ^ salt, salt | 1);
}

}  // namespace acr::rt
