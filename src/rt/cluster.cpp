#include "rt/cluster.h"

#include <algorithm>

#include "checksum/fold.h"
#include "common/logging.h"

namespace acr::rt {

const char* trace_kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::JobStart: return "job-start";
    case TraceKind::CheckpointRequested: return "checkpoint-requested";
    case TraceKind::CheckpointIterationDecided: return "checkpoint-iteration";
    case TraceKind::CheckpointPacked: return "checkpoint-packed";
    case TraceKind::CheckpointCommitted: return "checkpoint-committed";
    case TraceKind::SdcInjected: return "sdc-injected";
    case TraceKind::SdcDetected: return "sdc-detected";
    case TraceKind::HardFailureInjected: return "hard-failure-injected";
    case TraceKind::HardFailureDetected: return "hard-failure-detected";
    case TraceKind::RecoveryStarted: return "recovery-started";
    case TraceKind::RecoveryCompleted: return "recovery-completed";
    case TraceKind::Rollback: return "rollback";
    case TraceKind::JobComplete: return "job-complete";
    case TraceKind::StaleMessageDropped: return "stale-message-dropped";
    case TraceKind::LinkFailure: return "link-failure";
    case TraceKind::SpareFailed: return "spare-failed";
    case TraceKind::NodeRepaired: return "node-repaired";
    case TraceKind::SparePoolLow: return "spare-pool-low";
    case TraceKind::RoleDoubled: return "role-doubled";
    case TraceKind::RoleUndoubled: return "role-undoubled";
    case TraceKind::FlushStarted: return "flush-started";
    case TraceKind::FlushCompleted: return "flush-completed";
    case TraceKind::FlushSuperseded: return "flush-superseded";
    case TraceKind::EpochDurable: return "epoch-durable";
    case TraceKind::FetchStarted: return "fetch-started";
    case TraceKind::FetchCompleted: return "fetch-completed";
    case TraceKind::DrainRequested: return "drain-requested";
    case TraceKind::DrainCompleted: return "drain-completed";
    case TraceKind::DeltaShipped: return "delta-shipped";
    case TraceKind::DeltaFallback: return "delta-fallback";
  }
  return "?";
}

void TraceLog::record(double time, TraceKind kind, int replica, int node_index,
                      std::string detail) {
  events_.push_back(TraceEvent{time, kind, replica, node_index,
                               std::move(detail)});
}

std::size_t TraceLog::count(TraceKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [&](const TraceEvent& e) { return e.kind == kind; }));
}

const TraceEvent* TraceLog::find_first(TraceKind kind, double t) const {
  for (const auto& e : events_)
    if (e.kind == kind && e.time >= t) return &e;
  return nullptr;
}

Cluster::Cluster(Engine& engine, const ClusterConfig& config)
    : engine_(engine),
      config_(config),
      ckpt_groups_(config.nodes_per_replica, config.ckpt_group_size),
      l2_channel_(config.l2),
      jitter_rng_(config.seed, 77),
      net_injector_(config.net_faults, config.seed ^ 0x9E7FA017C0FFEE11ULL),
      transport_(config.reliable, make_transport_hooks()) {
  ACR_REQUIRE(config.nodes_per_replica > 0, "need at least one node");
  ACR_REQUIRE(config.spare_nodes >= 0, "spare count must be non-negative");
  if (config.engine_lanes > 0) engine_.set_lanes(config.engine_lanes);
  if (engine_.lanes() > 1) {
    // Conservative lookahead = the smallest non-zero delay the latency
    // model can produce: an intra-replica service hop pair (2 * alpha), an
    // app message (alpha_app floor), or an L2 round-trip when the durable
    // tier is enabled. Zero-delay continuations are in-window by
    // construction (time == now <= horizon), so they never constrain the
    // window; a wider window only batches more, it cannot reorder.
    double w = std::min(2.0 * config.net.alpha, config.app_alpha);
    if (config.l2.bandwidth > 0.0) w = std::min(w, config.l2.latency);
    engine_.set_lookahead(w);
  }
}

std::vector<int> Cluster::live_group_peers(int replica, int node_index) {
  std::vector<int> peers;
  if (!ckpt_groups_.enabled()) return peers;
  for (int m : ckpt_groups_.group_members(node_index)) {
    if (m == node_index) continue;
    if (role_alive(replica, m)) peers.push_back(m);
  }
  return peers;
}

void Cluster::map_onto_torus(const topo::Torus3D& torus,
                             topo::MappingScheme scheme, int mixed_chunk) {
  topo::ReplicaMapping mapping(torus, scheme, mixed_chunk);
  int max_dist = 0;
  for (int i = 0; i < mapping.nodes_per_replica(); ++i)
    max_dist = std::max(max_dist, mapping.buddy_distance(i));
  config_.buddy_hops = max_dist;
}

void Cluster::populate() {
  ACR_REQUIRE(nodes_.empty(), "populate() must be called once");
  ACR_REQUIRE(factory_ != nullptr, "task factory must be set before populate");
  int total = 2 * config_.nodes_per_replica + config_.spare_nodes;
  nodes_.reserve(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i)
    nodes_.push_back(std::make_unique<Node>(*this, i));

  role_table_.assign(2, std::vector<int>(
                            static_cast<std::size_t>(config_.nodes_per_replica),
                            -1));
  int next = 0;
  for (int r = 0; r < 2; ++r) {
    for (int i = 0; i < config_.nodes_per_replica; ++i) {
      Node& n = *nodes_[static_cast<std::size_t>(next)];
      n.assign(r, i);
      n.create_tasks();
      role_table_[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)] =
          next;
      ++next;
    }
  }
  for (int s = 0; s < config_.spare_nodes; ++s) spare_pool_.push_back(next++);
  num_hardware_ = total;
  spare_counters_.low_water = config_.spare_nodes;
}

void Cluster::start_application() {
  trace_.record(engine_.now(), TraceKind::JobStart);
  for (int r = 0; r < 2; ++r)
    for (int i = 0; i < config_.nodes_per_replica; ++i)
      node_at(r, i).start_tasks();
}

Node& Cluster::node_at(int replica, int node_index) {
  int pid = role_table_.at(static_cast<std::size_t>(replica))
                .at(static_cast<std::size_t>(node_index));
  ACR_REQUIRE(pid >= 0, "role is unmanned");
  return *nodes_[static_cast<std::size_t>(pid)];
}

bool Cluster::role_alive(int replica, int node_index) {
  int pid = role_table_.at(static_cast<std::size_t>(replica))
                .at(static_cast<std::size_t>(node_index));
  return pid >= 0 && nodes_[static_cast<std::size_t>(pid)]->alive();
}

int Cluster::spares_remaining() const {
  return static_cast<int>(spare_pool_.size());
}

std::vector<int> Cluster::alive_hardware() const {
  std::vector<int> out;
  for (int pid = 0; pid < num_hardware_; ++pid)
    if (nodes_[static_cast<std::size_t>(pid)]->alive()) out.push_back(pid);
  return out;
}

Node* Cluster::role_node(int replica, int node_index) {
  int pid = role_table_.at(static_cast<std::size_t>(replica))
                .at(static_cast<std::size_t>(node_index));
  return pid >= 0 ? nodes_[static_cast<std::size_t>(pid)].get() : nullptr;
}

bool Cluster::is_pooled_spare(int pid) const {
  return std::find(spare_pool_.begin(), spare_pool_.end(), pid) !=
         spare_pool_.end();
}

std::vector<std::pair<int, int>> Cluster::doubled_roles() {
  std::vector<std::pair<int, int>> out;
  for (int r = 0; r < 2; ++r) {
    for (int i = 0; i < config_.nodes_per_replica; ++i) {
      int pid = role_table_[static_cast<std::size_t>(r)]
                           [static_cast<std::size_t>(i)];
      if (pid >= 0 && is_lodger(pid) &&
          nodes_[static_cast<std::size_t>(pid)]->alive())
        out.emplace_back(r, i);
    }
  }
  return out;
}

void Cluster::note_pool_level() {
  int level = static_cast<int>(spare_pool_.size());
  if (level >= spare_counters_.low_water) return;
  spare_counters_.low_water = level;
  if (trace_enabled(kTraceSpareLifecycle))
    trace_.record(engine_.now(), TraceKind::SparePoolLow, -1, -1,
                  "remaining=" + std::to_string(level));
}

double Cluster::l2_write(int pid, double bytes) {
  return l2_channel_.write(pid, engine_.now(), bytes);
}

double Cluster::l2_read(int pid, double bytes) {
  return l2_channel_.read(pid, engine_.now(), bytes);
}

double Cluster::app_latency(std::size_t bytes, Pcg32& jitter_rng) {
  double base = config_.app_alpha +
                static_cast<double>(bytes) * config_.app_byte_time;
  return base * (1.0 + config_.app_jitter * jitter_rng.uniform());
}

double Cluster::service_latency(bool inter_replica, double bytes) {
  int hops = inter_replica ? config_.buddy_hops : 2;
  return config_.net.alpha * hops + bytes * config_.net.beta();
}

void Cluster::send_task(int replica, TaskAddr src, TaskAddr dst, int tag,
                        buf::Buffer payload) {
  Message m;
  m.tag = tag;
  m.src_replica = m.dst_replica = replica;
  m.src = src;
  m.dst = dst;
  m.app_epoch = app_epoch_.at(static_cast<std::size_t>(replica));
  m.payload = std::move(payload);
  double lat = app_latency(m.size_bytes(), jitter_rng_);
  ++in_flight_.at(static_cast<std::size_t>(replica));
  Engine::LaneKey lane =
      static_cast<Engine::LaneKey>(role_endpoint(replica, dst.node_index));
  engine_.schedule_after(lat, [this, m = std::move(m)]() mutable {
    --in_flight_.at(static_cast<std::size_t>(m.dst_replica));
    // Traffic from an abandoned timeline (pre-rollback) is dropped.
    if (m.app_epoch !=
        app_epoch_.at(static_cast<std::size_t>(m.dst_replica))) {
      ++net_counters_.stale_epoch_drops;
      trace_.record(engine_.now(), TraceKind::StaleMessageDropped,
                    m.dst_replica, m.dst.node_index);
      return;
    }
    int pid = role_table_[static_cast<std::size_t>(m.dst_replica)]
                         [static_cast<std::size_t>(m.dst.node_index)];
    if (pid < 0) {  // role unmanned: message disappears
      ++net_counters_.unmanned_drops;
      return;
    }
    nodes_[static_cast<std::size_t>(pid)]->deliver(m);
  }, lane);
}

void Cluster::send_service(int src_replica, int src_node, int dst_replica,
                           int dst_node, int tag, buf::Buffer payload,
                           double bytes_on_wire, buf::Buffer attachment) {
  Message m;
  m.tag = tag;
  m.src_replica = src_replica;
  m.dst_replica = dst_replica;
  m.src = TaskAddr{src_node, kServiceSlot};
  m.dst = TaskAddr{dst_node, kServiceSlot};
  m.payload = std::move(payload);
  m.attachment = std::move(attachment);
  double wire = bytes_on_wire >= 0.0 ? bytes_on_wire
                                     : static_cast<double>(m.size_bytes());
  if (net_injector_.enabled()) {
    int src_ep = src_replica < 0 ? kManagerEndpoint
                                 : role_endpoint(src_replica, src_node);
    route_reliable(src_ep, role_endpoint(dst_replica, dst_node), std::move(m),
                   wire);
    return;
  }
  // Perfect-wire fast path: identical event schedule to the pre-transport
  // cluster (the reliable layer's per-link FIFO would hold small frames
  // behind bulk ones, perturbing timing even with zero faults).
  double lat = service_latency(src_replica != dst_replica, wire);
  engine_.schedule_after(
      lat,
      [this, m = std::move(m)]() mutable {
        int pid = role_table_[static_cast<std::size_t>(m.dst_replica)]
                             [static_cast<std::size_t>(m.dst.node_index)];
        if (pid < 0) return;
        nodes_[static_cast<std::size_t>(pid)]->deliver(m);
      },
      static_cast<Engine::LaneKey>(role_endpoint(dst_replica, dst_node)));
}

void Cluster::send_to_manager(int src_replica, int src_node, int tag,
                              buf::Buffer payload) {
  ACR_REQUIRE(manager_hook_ != nullptr, "no manager installed");
  Message m;
  m.tag = tag;
  m.src_replica = src_replica;
  m.dst_replica = -1;
  m.src = TaskAddr{src_node, kServiceSlot};
  m.dst = TaskAddr{-1, kServiceSlot};
  m.payload = std::move(payload);
  double wire = static_cast<double>(m.size_bytes());
  if (net_injector_.enabled()) {
    route_reliable(role_endpoint(src_replica, src_node), kManagerEndpoint,
                   std::move(m), wire);
    return;
  }
  double lat = service_latency(false, wire);
  // Manager events share lane 0 (key 0): there is one manager, so all of
  // its traffic keeping to one lane maximizes heap locality.
  engine_.schedule_after(
      lat, [this, m = std::move(m)]() { manager_hook_(m); },
      Engine::LaneKey{0});
}

void Cluster::send_from_manager(int dst_replica, int dst_node, int tag,
                                buf::Buffer payload, double bytes_on_wire) {
  send_service(-1, -1, dst_replica, dst_node, tag, std::move(payload),
               bytes_on_wire);
}

void Cluster::kill_pid(int pid) {
  Node& n = *nodes_.at(static_cast<std::size_t>(pid));
  if (!n.alive()) return;
  n.kill();
  // The NIC dies with the node: abandon its reliable conversations (their
  // payloads are released without give-up escalation — the death itself is
  // detected by heartbeats/RAS, not by retry exhaustion) and bump link
  // generations so in-flight frames from the dead incarnation are inert.
  if (n.assigned() &&
      role_table_[static_cast<std::size_t>(n.replica())]
                 [static_cast<std::size_t>(n.node_index())] == pid) {
    transport_.reset_endpoint(role_endpoint(n.replica(), n.node_index()));
    purge_rx(role_endpoint(n.replica(), n.node_index()));
  }
  // Lodgers share their host's hardware: its death is theirs too.
  for (const auto& [lodger, host] : lodger_host_)
    if (host == pid) kill_pid(lodger);
}

void Cluster::kill_role(int replica, int node_index) {
  int pid = role_table_.at(static_cast<std::size_t>(replica))
                .at(static_cast<std::size_t>(node_index));
  if (pid < 0) return;
  kill_pid(pid);
}

void Cluster::kill_physical(int pid, const std::string& why) {
  ACR_REQUIRE(pid >= 0 && pid < num_hardware_,
              "kill_physical targets hardware nodes only");
  Node& n = *nodes_[static_cast<std::size_t>(pid)];
  if (!n.alive()) return;
  auto pooled = std::find(spare_pool_.begin(), spare_pool_.end(), pid);
  if (pooled != spare_pool_.end()) {
    // An idle spare died in the burst: it silently leaves the pool (no
    // heartbeat observers watch a bare spare; the RAS-level injector is the
    // source of truth here).
    spare_pool_.erase(pooled);
    n.kill();
    ++spare_counters_.spare_failures;
    trace_.record(engine_.now(), TraceKind::SpareFailed, -1, -1,
                  why + " pid=" + std::to_string(pid));
    note_pool_level();
    return;
  }
  if (n.assigned() &&
      role_table_[static_cast<std::size_t>(n.replica())]
                 [static_cast<std::size_t>(n.node_index())] == pid) {
    trace_.record(engine_.now(), TraceKind::HardFailureInjected, n.replica(),
                  n.node_index(), why);
    kill_pid(pid);
    return;
  }
  // Unassigned, unpooled hardware (a vacated corpse already revived and
  // re-killed before repair): just mark it dead.
  n.kill();
}

bool Cluster::repair_node(int pid) {
  if (pid < 0 || pid >= num_hardware_) return false;  // lodgers: no hardware
  Node& n = *nodes_[static_cast<std::size_t>(pid)];
  if (n.alive()) return false;
  // If the role table still names this corpse, vacate the slot: the role
  // stays unmanned (a revived node must not silently resurrect a role the
  // manager believes dead — recovery re-mans it via promotion).
  if (n.assigned()) {
    auto& slot = role_table_.at(static_cast<std::size_t>(n.replica()))
                     .at(static_cast<std::size_t>(n.node_index()));
    if (slot == pid) slot = -1;
    n.assign(-1, -1);
  }
  ACR_REQUIRE(!is_pooled_spare(pid),
              "repair of a node already pooled (double-count)");
  n.revive();
  spare_pool_.push_back(pid);
  ++spare_counters_.repairs;
  trace_.record(engine_.now(), TraceKind::NodeRepaired, -1, -1,
                "pid=" + std::to_string(pid) + " pool=" +
                    std::to_string(spare_pool_.size()));
  return true;
}

Node* Cluster::promote_spare(int replica, int node_index) {
  if (spare_pool_.empty()) return nullptr;
  // Fresh incarnation of the role: its links must not inherit sequence
  // state or in-flight traffic addressed to the predecessor.
  transport_.reset_endpoint(role_endpoint(replica, node_index));
  purge_rx(role_endpoint(replica, node_index));
  int pid = spare_pool_.back();
  spare_pool_.pop_back();
  int old = role_table_.at(static_cast<std::size_t>(replica))
                .at(static_cast<std::size_t>(node_index));
  if (old >= 0) nodes_[static_cast<std::size_t>(old)]->assign(-1, -1);
  Node& n = *nodes_[static_cast<std::size_t>(pid)];
  n.assign(replica, node_index);
  role_table_[static_cast<std::size_t>(replica)]
             [static_cast<std::size_t>(node_index)] = pid;
  n.create_tasks();  // fresh tasks; state arrives from the buddy checkpoint
  ++spare_counters_.promotions;
  note_pool_level();
  return &n;
}

int Cluster::resolve_host(int pid) const {
  auto it = lodger_host_.find(pid);
  while (it != lodger_host_.end()) {
    pid = it->second;
    it = lodger_host_.find(pid);
  }
  return pid;
}

int Cluster::lodger_load(int pid) const {
  int load = 0;
  for (const auto& [lodger, host] : lodger_host_)
    if (host == pid && nodes_[static_cast<std::size_t>(lodger)]->alive())
      ++load;
  return load;
}

Node* Cluster::double_up(int replica, int node_index) {
  // Host choice is deterministic: the live same-replica role whose hardware
  // carries the fewest lodgers, lowest node index breaking ties — doubled
  // roles spread evenly instead of piling onto one survivor.
  int host = -1;
  int best_load = 0;
  for (int i = 0; i < config_.nodes_per_replica; ++i) {
    if (i == node_index || !role_alive(replica, i)) continue;
    int hw = resolve_host(role_table_[static_cast<std::size_t>(replica)]
                                     [static_cast<std::size_t>(i)]);
    int load = lodger_load(hw);
    if (host < 0 || load < best_load) {
      host = hw;
      best_load = load;
    }
  }
  if (host < 0) return nullptr;  // the whole replica is gone
  // Fresh incarnation of the role, same link hygiene as a spare promotion.
  transport_.reset_endpoint(role_endpoint(replica, node_index));
  purge_rx(role_endpoint(replica, node_index));
  int pid = static_cast<int>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(*this, pid));
  lodger_host_[pid] = host;
  int old = role_table_.at(static_cast<std::size_t>(replica))
                .at(static_cast<std::size_t>(node_index));
  if (old >= 0) nodes_[static_cast<std::size_t>(old)]->assign(-1, -1);
  Node& n = *nodes_[static_cast<std::size_t>(pid)];
  n.assign(replica, node_index);
  role_table_[static_cast<std::size_t>(replica)]
             [static_cast<std::size_t>(node_index)] = pid;
  n.create_tasks();
  ++spare_counters_.roles_doubled;
  trace_.record(engine_.now(), TraceKind::RoleDoubled, replica, node_index,
                "host-pid=" + std::to_string(host));
  return &n;
}

bool Cluster::retire_lodger(int replica, int node_index) {
  int pid = role_table_.at(static_cast<std::size_t>(replica))
                .at(static_cast<std::size_t>(node_index));
  if (pid < 0 || !is_lodger(pid)) return false;
  Node& n = *nodes_[static_cast<std::size_t>(pid)];
  if (n.alive()) n.kill();
  n.assign(-1, -1);
  role_table_[static_cast<std::size_t>(replica)]
             [static_cast<std::size_t>(node_index)] = -1;
  transport_.reset_endpoint(role_endpoint(replica, node_index));
  purge_rx(role_endpoint(replica, node_index));
  ++spare_counters_.roles_undoubled;
  trace_.record(engine_.now(), TraceKind::RoleUndoubled, replica, node_index,
                "host-pid=" +
                    std::to_string(lodger_host_.at(pid)));
  return true;
}

// ---------------------------------------------------------------------------
// Reliable transport glue: the cluster owns the payload store, the lossy
// wire (fault injector + engine events), and the hand-up to nodes/manager;
// the transport owns sequences, acks, timers, and the receive window.
// ---------------------------------------------------------------------------

namespace {
/// Modelled size of an ack frame on the wire (a bare header).
constexpr double kAckWireBytes = static_cast<double>(kMessageHeaderBytes);
}  // namespace

bool Cluster::endpoint_alive(int endpoint) {
  if (endpoint == kManagerEndpoint) return true;
  int replica = endpoint / config_.nodes_per_replica;
  int node = endpoint % config_.nodes_per_replica;
  return role_alive(replica, node);
}

net::ReliableTransport::Hooks Cluster::make_transport_hooks() {
  net::ReliableTransport::Hooks h;
  h.schedule = [this](double delay, std::function<void()> fn) {
    return engine_.schedule_after(delay, std::move(fn));
  };
  h.cancel = [this](net::ReliableTransport::TimerId id) { engine_.cancel(id); };
  h.transmit = [this](net::LinkKey link, net::ReliableTransport::Seq seq,
                      int attempt) {
    if (outbox_) {
      wire_store_.emplace(std::make_pair(link, seq), std::move(*outbox_));
      outbox_.reset();
    }
    transmit_frame(link, seq, attempt);
  };
  h.send_ack = [this](net::LinkKey link, net::ReliableTransport::Seq seq) {
    // Acks ride the reverse wire: small frames, subject to loss and delay
    // (duplication/corruption of a bare ack is folded into the loss rate).
    auto d = net_injector_.decide(link.dst, link.src, 0);
    if (d.drop) return;
    double lat = service_latency(link.src >= 0 && link.dst >= 0 &&
                                     link.src / config_.nodes_per_replica !=
                                         link.dst / config_.nodes_per_replica,
                                 kAckWireBytes);
    std::uint64_t gen = transport_.generation(link);
    // Lane affinity by receiving endpoint (+1 folds the manager's -1 in).
    engine_.schedule_after(
        lat + d.extra_delay,
        [this, link, seq, gen] { transport_.on_ack_frame(link, seq, gen); },
        static_cast<Engine::LaneKey>(link.src + 1));
  };
  h.deliver = [this](net::LinkKey link, net::ReliableTransport::Seq seq) {
    dispatch_frame(link, seq);
  };
  h.give_up = [this](net::LinkKey link, net::ReliableTransport::Seq seq) {
    link_gave_up(link, seq);
  };
  h.release = [this](net::LinkKey link, net::ReliableTransport::Seq seq) {
    wire_store_.erase(std::make_pair(link, seq));
  };
  return h;
}

void Cluster::route_reliable(int src_endpoint, int dst_endpoint, Message m,
                             double wire_bytes) {
  net::LinkKey link{src_endpoint, dst_endpoint};
  bool inter = m.src_replica >= 0 && m.dst_replica >= 0 &&
               m.src_replica != m.dst_replica;
  WireMsg w;
  w.latency = service_latency(inter, wire_bytes);
  w.crc = checksum::buffer_crc32c(m.payload);
  w.m = std::move(m);
  outbox_ = std::move(w);
  transport_.send(link, outbox_->latency);
  ACR_REQUIRE(!outbox_, "transmit hook must consume the outbox");
}

void Cluster::transmit_frame(net::LinkKey link,
                             net::ReliableTransport::Seq seq, int attempt) {
  (void)attempt;
  auto it = wire_store_.find(std::make_pair(link, seq));
  if (it == wire_store_.end()) return;  // released while a retransmit raced
  const WireMsg& w = it->second;
  auto d = net_injector_.decide(link.src, link.dst, w.m.payload.size());
  std::uint64_t gen = transport_.generation(link);
  net::ReliableTransport::Seq base = transport_.window_base(link);
  if (!d.drop) {
    engine_.schedule_after(
        w.latency + d.extra_delay,
        [this, link, seq, base, gen, d] {
          frame_arrived(link, seq, base, gen, d.corrupt, d.corrupt_byte,
                        d.corrupt_bit);
        },
        static_cast<Engine::LaneKey>(link.dst + 1));
  }
  if (d.duplicate) {
    engine_.schedule_after(
        w.latency + d.dup_extra_delay,
        [this, link, seq, base, gen] {
          frame_arrived(link, seq, base, gen, false, 0, 0);
        },
        static_cast<Engine::LaneKey>(link.dst + 1));
  }
}

void Cluster::frame_arrived(net::LinkKey link,
                            net::ReliableTransport::Seq seq,
                            net::ReliableTransport::Seq sender_base,
                            std::uint64_t generation, bool corrupt,
                            std::size_t corrupt_byte, int corrupt_bit) {
  auto it = wire_store_.find(std::make_pair(link, seq));
  // Already released: the sender got its ack (or reset); this copy is a
  // straggler nobody is waiting for.
  if (it == wire_store_.end()) return;
  const WireMsg& w = it->second;
  // Integrity check against the send-time CRC32C. The conditioned CRC is
  // affine in the message bits, so the damaged frame's CRC is the clean CRC
  // xor the flipped bit's contribution — no payload copy, no rescan (the
  // old path detached a full copy-on-write duplicate and re-digested it
  // per corrupted frame). The delta of a single-bit flip is never zero
  // (CRC32C detects all 1-bit errors), so this reaches the same verdict.
  if (corrupt) {
    if (w.m.payload.empty()) {
      // Nothing but header to corrupt: the frame fails framing outright.
      ++net_counters_.crc_drops;
      return;
    }
    std::uint32_t damaged_crc =
        w.crc ^ checksum::crc32c_flip_delta(w.m.payload.size(), corrupt_byte,
                                            corrupt_bit);
    if (damaged_crc != w.crc) {
      ++net_counters_.crc_drops;
      return;  // dropped at the NIC: no ack, retransmit covers it
    }
  }
  // A dead or vacated destination has no NIC to ack from.
  if (!endpoint_alive(link.dst)) {
    ++net_counters_.dead_endpoint_drops;
    return;
  }
  // Stash the payload receiver-side before the transport decides its fate:
  // the sender may release its copy (on ack) while this frame is still
  // buffered behind a hole. Only current-generation frames are stashed.
  if (generation == transport_.generation(link))
    rx_store_.insert_or_assign(std::make_pair(link, seq), w.m);
  transport_.on_data_frame(link, seq, sender_base, generation);
}

void Cluster::dispatch_frame(net::LinkKey link,
                             net::ReliableTransport::Seq seq) {
  auto it = rx_store_.find(std::make_pair(link, seq));
  ACR_REQUIRE(it != rx_store_.end(), "delivered frame has no stored payload");
  Message m = std::move(it->second);
  rx_store_.erase(it);
  if (link.dst == kManagerEndpoint) {
    manager_hook_(m);
    return;
  }
  int pid = role_table_[static_cast<std::size_t>(m.dst_replica)]
                       [static_cast<std::size_t>(m.dst.node_index)];
  if (pid < 0) return;
  nodes_[static_cast<std::size_t>(pid)]->deliver(m);
}

void Cluster::purge_rx(int endpoint) {
  for (auto it = rx_store_.begin(); it != rx_store_.end();) {
    if (it->first.first.src == endpoint || it->first.first.dst == endpoint)
      it = rx_store_.erase(it);
    else
      ++it;
  }
}

void Cluster::link_gave_up(net::LinkKey link,
                           net::ReliableTransport::Seq seq) {
  (void)seq;
  ++net_counters_.link_failures;
  auto decode = [this](int ep, int& replica, int& node) {
    if (ep == kManagerEndpoint) {
      replica = -1;
      node = -1;
    } else {
      replica = ep / config_.nodes_per_replica;
      node = ep % config_.nodes_per_replica;
    }
  };
  int sr, sn, dr, dn;
  decode(link.src, sr, sn);
  decode(link.dst, dr, dn);
  trace_.record(engine_.now(), TraceKind::LinkFailure, dr, dn);
  // If either end is dead, the retry exhaustion is just a symptom of the
  // node failure, which heartbeats/RAS detect and recover on their own.
  // Between two live endpoints it is a genuine link failure: report it
  // out-of-band (the RAS channel) so the manager can degrade gracefully.
  if (!endpoint_alive(link.src) || !endpoint_alive(link.dst)) return;
  if (link_failure_hook_) link_failure_hook_(sr, sn, dr, dn);
}

Pcg32 Cluster::make_rng(std::uint64_t salt) const {
  return Pcg32(config_.seed ^ salt, salt | 1);
}

}  // namespace acr::rt
