#include "rt/node.h"

#include "common/logging.h"
#include "rt/cluster.h"

namespace acr::rt {

/// TaskContext implementation bound to one (node, slot).
class NodeTaskContext final : public TaskContext {
 public:
  NodeTaskContext(Node& node, int slot) : node_(node), slot_(slot) {}

  void send(TaskAddr dst, int tag, buf::Buffer payload) override {
    if (!node_.alive()) return;  // fail-stop: a dead node sends nothing
    node_.cluster().send_task(node_.replica(), self(), dst, tag,
                              std::move(payload));
  }

  void after_compute(double seconds, std::function<void()> fn) override {
    if (!node_.alive()) return;
    std::uint64_t inc = node_.incarnation();
    Node* node = &node_;
    node_.cluster().engine().schedule_after(
        seconds,
        [node, inc, fn = std::move(fn)]() {
          // A kill or rollback in the meantime invalidates the continuation.
          if (node->alive() && node->incarnation() == inc) fn();
        },
        static_cast<Engine::LaneKey>(node_.physical_id()));
  }

  void notify_done() override {
    if (node_.service() != nullptr) node_.service()->on_task_done(slot_);
  }

  ProgressDecision report_progress(std::uint64_t iters) override {
    node_.note_progress(slot_, iters);
    ProgressDecision d = ProgressDecision::Continue;
    if (node_.service() != nullptr)
      d = node_.service()->on_progress(slot_, iters);
    if (d == ProgressDecision::Pause) node_.pause_task(slot_);
    return d;
  }

  double now() const override { return node_.cluster().engine().now(); }
  TaskAddr self() const override { return TaskAddr{node_.node_index(), slot_}; }
  int replica() const override { return node_.replica(); }
  int num_nodes() const override { return node_.cluster().nodes_per_replica(); }
  bool paused() const override { return node_.task_paused(slot_); }

  Pcg32 make_app_rng(std::uint64_t salt) const override {
    // Seeded by logical position only: buddy tasks in the two replicas draw
    // identical streams, a prerequisite for bit-identical checkpoints.
    std::uint64_t seed = node_.cluster().master_seed();
    seed ^= 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(
               node_.node_index()) + 1);
    seed ^= 0xC2B2AE3D27D4EB4FULL * (static_cast<std::uint64_t>(slot_) + 1);
    seed ^= salt;
    return Pcg32(seed, 0x5bd1e995);
  }

 private:
  Node& node_;
  int slot_;
};

Node::Node(Cluster& cluster, int physical_id)
    : cluster_(cluster), physical_id_(physical_id) {}

Node::~Node() = default;

void Node::assign(int replica, int node_index) {
  replica_ = replica;
  node_index_ = node_index;
}

void Node::kill() {
  alive_ = false;
  ++incarnation_;
}

void Node::revive() {
  ACR_REQUIRE(!alive_, "revive() is only meaningful on a dead node");
  alive_ = true;
  gated_ = false;
  ++incarnation_;
}

void Node::create_tasks() {
  ACR_REQUIRE(assigned(), "cannot create tasks on an unassigned node");
  ACR_REQUIRE(cluster_.task_factory() != nullptr, "no task factory set");
  ++incarnation_;
  tasks_ = cluster_.task_factory()(replica_, node_index_);
  contexts_.clear();
  paused_.assign(tasks_.size(), false);
  progress_.assign(tasks_.size(), 0);
  max_progress_ = 0;
  for (std::size_t slot = 0; slot < tasks_.size(); ++slot) {
    contexts_.push_back(
        std::make_unique<NodeTaskContext>(*this, static_cast<int>(slot)));
    tasks_[slot]->ctx = contexts_[slot].get();
  }
}

void Node::start_tasks() {
  std::uint64_t inc = incarnation_;
  for (std::size_t slot = 0; slot < tasks_.size(); ++slot) {
    Task* t = tasks_[slot].get();
    cluster_.engine().schedule_after(
        0.0,
        [this, t, inc]() {
          if (alive_ && incarnation_ == inc) t->on_start();
        },
        static_cast<Engine::LaneKey>(physical_id_));
  }
}

void Node::unpause_task(int slot) {
  auto s = static_cast<std::size_t>(slot);
  if (!paused_.at(s)) return;
  paused_[s] = false;
  Task* t = tasks_.at(s).get();
  std::uint64_t inc = incarnation_;
  cluster_.engine().schedule_after(
      0.0,
      [this, t, inc]() {
        if (alive_ && incarnation_ == inc) t->on_resume();
      },
      static_cast<Engine::LaneKey>(physical_id_));
}

void Node::unpause_all() {
  for (int slot = 0; slot < num_tasks(); ++slot) unpause_task(slot);
}

void Node::note_progress(int slot, std::uint64_t iters) {
  auto s = static_cast<std::size_t>(slot);
  progress_.at(s) = iters;
  if (iters > max_progress_) max_progress_ = iters;
}

pup::Checkpoint Node::pack_state(buf::Sink* digest_sink) {
  pup::Packer p(pack_builder_);
  p.tee(digest_sink);
  std::uint32_t count = static_cast<std::uint32_t>(tasks_.size());
  p | count;
  for (const auto& t : tasks_) t->pup(p);
  return p.take();
}

void Node::restore_state(const pup::Checkpoint& c) {
  pup::Unpacker u(c);
  std::uint32_t count = 0;
  u | count;
  ACR_REQUIRE(count == tasks_.size(),
              "checkpoint task count does not match node task set");
  for (auto& t : tasks_) t->pup(u);
  ACR_REQUIRE(u.exhausted(), "node checkpoint has trailing bytes");
  ++incarnation_;  // stale continuations must not fire into restored state
  // Rebuild the progress ledger from the restored task states: the old
  // values describe a future that was rolled back.
  max_progress_ = 0;
  for (std::size_t slot = 0; slot < tasks_.size(); ++slot) {
    progress_[slot] = tasks_[slot]->progress();
    if (progress_[slot] > max_progress_) max_progress_ = progress_[slot];
  }
}

void Node::resume_all_tasks() {
  std::uint64_t inc = incarnation_;
  for (std::size_t slot = 0; slot < tasks_.size(); ++slot) {
    paused_[slot] = false;
    Task* t = tasks_[slot].get();
    cluster_.engine().schedule_after(
        0.0,
        [this, t, inc]() {
          if (alive_ && incarnation_ == inc) t->on_resume();
        },
        static_cast<Engine::LaneKey>(physical_id_));
  }
}

void Node::set_service(std::unique_ptr<NodeService> service) {
  service_ = std::move(service);
}

void Node::deliver(const Message& m) {
  if (!alive_) return;  // fail-stop: no responses, traffic disappears
  if (m.dst.slot == kServiceSlot) {
    if (service_) service_->on_service_message(m);
    return;
  }
  if (gated_) return;  // restart barrier: pre-resume app traffic is stale
  auto slot = static_cast<std::size_t>(m.dst.slot);
  if (slot >= tasks_.size()) {
    log_warn("rt") << "dropping message for missing slot " << m.dst.slot
                   << " on node " << node_index_;
    return;
  }
  tasks_[slot]->on_message(m);
}

}  // namespace acr::rt
