// Virtual cluster: two replicas of logical nodes plus a spare pool, a
// latency model, and delivery/fail-over machinery, all over one virtual
// clock. This is the stand-in for the Charm++-on-BG/P substrate of the
// paper: protocols and application code are real, the wires are simulated.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/group.h"
#include "common/rng.h"
#include "failure/net_faults.h"
#include "net/link_load.h"
#include "net/reliable.h"
#include "rt/engine.h"
#include "rt/message.h"
#include "rt/node.h"
#include "topology/mapping.h"

namespace acr::rt {

// ---------------------------------------------------------------------------
// Trace of protocol-level events (drives Fig. 12 and the integration tests).
// ---------------------------------------------------------------------------

enum class TraceKind {
  JobStart,
  CheckpointRequested,
  CheckpointIterationDecided,
  CheckpointPacked,
  CheckpointCommitted,
  SdcInjected,
  SdcDetected,
  HardFailureInjected,
  HardFailureDetected,
  RecoveryStarted,
  RecoveryCompleted,
  Rollback,
  JobComplete,
  StaleMessageDropped,  ///< app message from an abandoned epoch discarded
  LinkFailure,          ///< reliable link exhausted its retry budget
  SpareFailed,          ///< a pooled (idle) spare died
  NodeRepaired,         ///< dead hardware returned to the spare pool
  SparePoolLow,         ///< pool reached a new minimum (lifecycle tracing)
  RoleDoubled,          ///< shrink-to-survive: role remapped onto a survivor
  RoleUndoubled,        ///< a repaired spare relieved a doubled role
  FlushStarted,         ///< L2 tier: a node began draining a verified epoch
  FlushCompleted,       ///< L2 tier: a node's image became durable
  FlushSuperseded,      ///< L2 tier: a newer commit cancelled an active flush
  EpochDurable,         ///< L2 tier: every role of an epoch is durable
  FetchStarted,         ///< L2 tier: fetch wave targeting a durable epoch
  FetchCompleted,       ///< L2 tier: a node restored from its durable image
  DrainRequested,       ///< halt control: flush-newest-and-stop requested
  DrainCompleted,       ///< halt control: newest epoch durable, job halted
  DeltaShipped,         ///< codec: dirty-chunk frame sent instead of a full
  DeltaFallback,        ///< codec: delta base unusable; full image requested
};

const char* trace_kind_name(TraceKind k);

/// Bitset selecting which OPTIONAL trace families are recorded. Core
/// protocol events (checkpoints, failures, recoveries) are always traced;
/// these bits gate the chatty per-feature kinds so that runs without a
/// feature keep a byte-identical trace (the PR 3/5 discipline). This
/// replaces the per-feature enable_*_trace booleans — new features take a
/// bit, not another setter.
enum TraceMask : std::uint32_t {
  kTraceSpareLifecycle = 1u << 0,  ///< SparePoolLow pool-minimum events
  kTraceTier = 1u << 1,            ///< L2 flush/fetch/drain events
  kTraceCodec = 1u << 2,           ///< codec delta-shipped/fallback events
};

struct TraceEvent {
  double time = 0.0;
  TraceKind kind{};
  int replica = -1;
  int node_index = -1;
  std::string detail;
};

class TraceLog {
 public:
  void record(double time, TraceKind kind, int replica = -1,
              int node_index = -1, std::string detail = "");
  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t count(TraceKind kind) const;
  /// First event of `kind` at or after `t`, or nullptr.
  const TraceEvent* find_first(TraceKind kind, double t = 0.0) const;

 private:
  std::vector<TraceEvent> events_;
};

// ---------------------------------------------------------------------------
// Cluster configuration.
// ---------------------------------------------------------------------------

struct ClusterConfig {
  int nodes_per_replica = 4;
  int spare_nodes = 1;

  /// Intra-replica app message latency: alpha + bytes * beta, plus a
  /// uniform jitter fraction that desynchronizes task progress (exercising
  /// the checkpoint consensus).
  double app_alpha = 20e-6;
  double app_byte_time = 1.0 / 1.0e9;
  double app_jitter = 0.10;

  /// Inter-replica (buddy) hop count; derived from the mapping scheme when
  /// a torus shape is supplied to map_onto_torus(), otherwise this default.
  int buddy_hops = 4;

  /// Machine cost parameters for checkpoint pack/compare/transfer.
  net::NetworkParams net;

  /// Wire fault model for protocol (service/manager) traffic. All rates
  /// default to zero; when any is non-zero the cluster routes protocol
  /// traffic through the reliable ack/retransmit transport.
  failure::NetFaultConfig net_faults;
  /// Reliable-delivery tuning (retry budget, timeouts, window).
  net::ReliableConfig reliable;

  /// Checkpoint parity-group width (ckpt layer, XOR scheme): consecutive
  /// node indices of each replica form groups of this size for parity
  /// exchange and rebuild routing. <= 0 disables grouping (local/partner
  /// schemes need none).
  int ckpt_group_size = 0;

  /// Simulated L2 durable-tier channel (per-node burst-buffer pipe).
  /// bandwidth == 0 leaves the tier's cost model unused.
  net::L2Params l2;

  /// Shard the event engine into this many lanes (Engine::set_lanes) and
  /// derive its conservative-lookahead window from the latency model. 0
  /// leaves the engine as constructed (serial unless ACR_ENGINE_LANES set);
  /// output is bit-identical at every value.
  int engine_lanes = 0;

  std::uint64_t seed = 0xAC0FF00DULL;
};

class Cluster {
 public:
  using TaskFactory = std::function<std::vector<std::unique_ptr<Task>>(
      int replica, int node_index)>;

  Cluster(Engine& engine, const ClusterConfig& config);

  Engine& engine() { return engine_; }
  const ClusterConfig& config() const { return config_; }
  TraceLog& trace() { return trace_; }

  /// Derive buddy_hops from a torus shape + mapping scheme (§4.2): the
  /// maximum buddy distance of the mapping becomes the inter-replica hop
  /// count used in the latency model.
  void map_onto_torus(const topo::Torus3D& torus, topo::MappingScheme scheme,
                      int mixed_chunk = 2);

  // --- setup -----------------------------------------------------------------
  void set_task_factory(TaskFactory factory) { factory_ = std::move(factory); }
  const TaskFactory& task_factory() const { return factory_; }
  /// Create all nodes and their tasks (both replicas + spares).
  void populate();
  /// Fire on_start for every task at the current virtual time.
  void start_application();

  // --- topology / lookup ------------------------------------------------------
  int nodes_per_replica() const { return config_.nodes_per_replica; }
  /// Physical node currently playing (replica, node_index).
  Node& node_at(int replica, int node_index);
  bool role_alive(int replica, int node_index);
  Node& physical_node(int physical_id) {
    return *nodes_.at(static_cast<std::size_t>(physical_id));
  }
  int num_physical_nodes() const { return static_cast<int>(nodes_.size()); }
  /// Hardware nodes only: the 2n + spares machines populate() racked.
  /// Lodger nodes created by double_up() are virtual hosts beyond this
  /// range — they share a survivor's hardware and cannot fail or be
  /// repaired independently of it.
  int num_hardware_nodes() const { return num_hardware_; }
  int spares_remaining() const;
  /// Physical ids of currently-alive hardware, ascending (burst victim
  /// selection).
  std::vector<int> alive_hardware() const;
  /// Node playing (replica, node_index), or nullptr when the role is
  /// unmanned (node_at REQUIREs instead — use this where vacancy is legal).
  Node* role_node(int replica, int node_index);

  /// Checkpoint parity-group membership (per replica; groups never span
  /// replicas). Empty/disabled unless ckpt_group_size was configured.
  const ckpt::GroupMap& ckpt_groups() const { return ckpt_groups_; }
  /// Members of (replica, node_index)'s parity group that are currently
  /// alive, excluding node_index itself.
  std::vector<int> live_group_peers(int replica, int node_index);

  // --- messaging ---------------------------------------------------------------
  /// Task-to-task within a replica. The payload Buffer is shared, not
  /// copied, into the in-flight message.
  void send_task(int replica, TaskAddr src, TaskAddr dst, int tag,
                 buf::Buffer payload);
  /// Node-service message (possibly across replicas). `bytes_on_wire`
  /// overrides the payload size for latency purposes — used when a
  /// checkpoint "transfer" is modelled without copying the actual bytes
  /// (checksum mode still pays only digest bytes, full mode pays the full
  /// checkpoint size). `attachment` carries bulk bytes (a checkpoint image)
  /// that alias the sender's buffer instead of being re-serialized.
  void send_service(int src_replica, int src_node, int dst_replica,
                    int dst_node, int tag, buf::Buffer payload,
                    double bytes_on_wire = -1.0, buf::Buffer attachment = {});

  /// Outstanding app (task-level) messages for a replica — the drain
  /// condition of checkpoint Phase 4.
  int in_flight_app_messages(int replica) const {
    return in_flight_.at(static_cast<std::size_t>(replica));
  }

  /// App-message epoch of a replica. Every task message is stamped with the
  /// sender replica's epoch; delivery drops messages from a previous epoch.
  /// ACR bumps the epoch whenever the replica's state jumps (rollback or
  /// recovery restore), so in-flight traffic from the abandoned timeline
  /// cannot leak into the restored one. (This is the runtime-level analogue
  /// of Charm++/FTC's checkpoint phase numbers.)
  std::uint64_t app_epoch(int replica) const {
    return app_epoch_.at(static_cast<std::size_t>(replica));
  }
  void bump_app_epoch(int replica) {
    ++app_epoch_.at(static_cast<std::size_t>(replica));
  }

  // --- failure / recovery ------------------------------------------------------
  /// Fail-stop the node currently playing (replica, node_index). Lodgers
  /// hosted on the dead hardware die with it.
  void kill_role(int replica, int node_index);
  /// Fail-stop a hardware node by physical id, whatever it is doing: a
  /// pooled spare dies idle (SpareFailed), a role-player takes its role
  /// down (HardFailureInjected, plus any lodgers it hosts). `why` lands in
  /// the trace detail. No-op on already-dead hardware.
  void kill_physical(int pid, const std::string& why);
  /// Return dead hardware to service as a pooled spare. Vacates its old
  /// role-table slot if still pointing at it (the role stays unmanned until
  /// the manager recovers it) and guards against double-pooling, so a
  /// promoted-then-repaired node is never counted twice. False if the node
  /// is alive or not repairable hardware.
  bool repair_node(int pid);
  /// Promote a spare to (replica, node_index). Creates fresh (empty) tasks.
  /// Returns the new physical node, or nullptr if the pool is exhausted.
  Node* promote_spare(int replica, int node_index);

  // --- shrink-to-survive (degraded mode) --------------------------------------
  /// Remap (replica, node_index) onto a surviving node of the same replica:
  /// a fresh *lodger* node is created for the role (preserving its logical
  /// index, so buddy/group/tree routing is untouched) and pinned to the
  /// least-loaded live host. Returns the lodger, or nullptr when no host
  /// survives in the replica. The lodger dies if its host dies.
  Node* double_up(int replica, int node_index);
  /// Undo a double_up: retire the lodger playing (replica, node_index),
  /// leaving the role unmanned for a standard spare recovery. False if the
  /// role is not currently played by a lodger.
  bool retire_lodger(int replica, int node_index);
  bool is_lodger(int pid) const { return lodger_host_.count(pid) != 0; }
  bool is_pooled_spare(int pid) const;
  /// Roles currently played by a live lodger, ascending.
  std::vector<std::pair<int, int>> doubled_roles();

  // --- spare-pool accounting ----------------------------------------------------
  struct SpareCounters {
    std::uint64_t promotions = 0;      ///< spares promoted into roles
    std::uint64_t spare_failures = 0;  ///< pooled spares that died idle
    std::uint64_t repairs = 0;         ///< dead hardware returned to pool
    int low_water = 0;                 ///< minimum pool size observed
    std::uint64_t roles_doubled = 0;   ///< shrink-to-survive transitions
    std::uint64_t roles_undoubled = 0; ///< doubled roles relieved by spares
  };
  const SpareCounters& spare_counters() const { return spare_counters_; }

  // --- optional trace families --------------------------------------------------
  /// Turn on the trace families selected by `mask` (TraceMask bits OR-ed).
  /// All are off by default so runs without a feature keep a byte-identical
  /// trace.
  void enable_trace(std::uint32_t mask) { trace_mask_ |= mask; }
  bool trace_enabled(TraceMask bit) const { return (trace_mask_ & bit) != 0; }
  /// Legacy alias for enable_trace(kTraceSpareLifecycle).
  void enable_spare_lifecycle_trace() { enable_trace(kTraceSpareLifecycle); }

  // --- L2 durable channel -------------------------------------------------------
  /// Charge an L2 write/read issued by physical node `pid` at the current
  /// virtual time; returns the delay until the operation completes (per-node
  /// busy-until queueing + latency + bytes/bandwidth). Pure arithmetic over
  /// virtual time — callers schedule the completion as a DES event, so L2
  /// traffic is deterministic at any kernel-thread count.
  double l2_write(int pid, double bytes);
  double l2_read(int pid, double bytes);
  /// Record the raw (pre-codec) size behind a flush; no time is charged.
  void l2_note_raw(double bytes) { l2_channel_.note_raw_write(bytes); }
  const net::L2ChannelModel::Stats& l2_stats() const {
    return l2_channel_.stats();
  }

  // --- manager channel -----------------------------------------------------------
  // The job-level ACR manager (failure handling, checkpoint timing) is a
  // logically centralized service (think: the replica-root node plus the
  // scheduler's RAS daemon). It exchanges messages with node agents through
  // the same latency model; src_replica = -1 marks manager-originated mail.
  using ManagerHook = std::function<void(const Message&)>;
  void set_manager_hook(ManagerHook hook) { manager_hook_ = std::move(hook); }
  /// Node agent -> manager.
  void send_to_manager(int src_replica, int src_node, int tag,
                       buf::Buffer payload);
  /// Manager -> node agent.
  void send_from_manager(int dst_replica, int dst_node, int tag,
                         buf::Buffer payload, double bytes_on_wire = -1.0);

  // --- network fault / delivery instrumentation --------------------------------
  /// Drops and escalations counted at the cluster layer (the transport and
  /// injector keep their own tallies, exposed below).
  struct NetCounters {
    std::uint64_t stale_epoch_drops = 0;  ///< app msgs from abandoned epochs
    std::uint64_t unmanned_drops = 0;     ///< app msgs to vacated roles
    std::uint64_t crc_drops = 0;          ///< frames failing CRC32C on arrival
    std::uint64_t dead_endpoint_drops = 0;  ///< frames arriving at a dead NIC
    std::uint64_t link_failures = 0;      ///< retry budgets exhausted
  };
  const NetCounters& net_counters() const { return net_counters_; }
  const net::LinkStats& link_stats() const { return transport_.stats(); }
  const failure::NetFaultCounters& net_fault_counters() const {
    return net_injector_.counters();
  }
  bool net_faults_enabled() const { return net_injector_.enabled(); }

  /// Called when a reliable link exhausts its retry budget between two live
  /// endpoints (out-of-band RAS report; the manager escalates to a scratch
  /// restart). Arguments: src_replica, src_node, dst_replica, dst_node,
  /// where replica -1 / node -1 denotes the manager endpoint.
  using LinkFailureHook = std::function<void(int, int, int, int)>;
  void set_link_failure_hook(LinkFailureHook hook) {
    link_failure_hook_ = std::move(hook);
  }

  // --- misc ---------------------------------------------------------------------
  Pcg32 make_rng(std::uint64_t salt) const;
  double app_latency(std::size_t bytes, Pcg32& jitter_rng);
  double service_latency(bool inter_replica, double bytes);
  std::uint64_t master_seed() const { return config_.seed; }

 private:
  friend class Node;
  friend class NodeTaskContext;

  /// A message riding the reliable transport, parked until acked/abandoned
  /// (the retransmit source). Keyed by (link, seq) in wire_store_.
  struct WireMsg {
    Message m;
    double latency = 0.0;     ///< nominal one-way flight time
    std::uint32_t crc = 0;    ///< CRC32C of the payload at send time
  };

  // Endpoint ids for the reliable transport: -1 is the manager, roles map
  // densely to replica * nodes_per_replica + node_index.
  int role_endpoint(int replica, int node_index) const {
    return replica * config_.nodes_per_replica + node_index;
  }
  static constexpr int kManagerEndpoint = -1;

  net::ReliableTransport::Hooks make_transport_hooks();
  /// Enqueue `m` on the reliable transport for link (src -> dst endpoints).
  void route_reliable(int src_endpoint, int dst_endpoint, Message m,
                      double wire_bytes);
  /// Put one copy of frame (link, seq) on the lossy wire.
  void transmit_frame(net::LinkKey link, net::ReliableTransport::Seq seq,
                      int attempt);
  /// A data-frame copy reached the destination NIC.
  void frame_arrived(net::LinkKey link, net::ReliableTransport::Seq seq,
                     net::ReliableTransport::Seq sender_base,
                     std::uint64_t generation, bool corrupt,
                     std::size_t corrupt_byte, int corrupt_bit);
  /// The transport delivered frame (link, seq) in order: hand it up.
  void dispatch_frame(net::LinkKey link, net::ReliableTransport::Seq seq);
  /// The transport gave up on frame (link, seq): escalate if both ends live.
  void link_gave_up(net::LinkKey link, net::ReliableTransport::Seq seq);
  bool endpoint_alive(int endpoint);
  /// Drop receiver-side stashed frames on links touching a reset endpoint.
  void purge_rx(int endpoint);

  /// Kill one physical node (resetting its role endpoint if it plays one)
  /// and cascade to any lodgers riding its hardware.
  void kill_pid(int pid);
  /// Follow lodger->host links down to real hardware.
  int resolve_host(int pid) const;
  /// Live lodgers currently hosted on hardware `pid`.
  int lodger_load(int pid) const;
  /// Track pool minima (low-water counter + optional trace).
  void note_pool_level();

  Engine& engine_;
  ClusterConfig config_;
  TraceLog trace_;
  TaskFactory factory_;
  ckpt::GroupMap ckpt_groups_;

  std::vector<std::unique_ptr<Node>> nodes_;
  /// role_table_[replica][node_index] -> physical id (-1 when unmanned).
  std::vector<std::vector<int>> role_table_;
  std::vector<int> spare_pool_;  ///< physical ids of unused spares
  int num_hardware_ = 0;  ///< nodes_ prefix that is real hardware
  /// Lodger pid -> hardware pid hosting it (shrink-to-survive doubling).
  /// Entries persist after a lodger dies; liveness decides relevance.
  std::map<int, int> lodger_host_;
  SpareCounters spare_counters_;
  std::uint32_t trace_mask_ = 0;
  net::L2ChannelModel l2_channel_;
  std::vector<int> in_flight_{0, 0};
  std::vector<std::uint64_t> app_epoch_{0, 0};
  Pcg32 jitter_rng_;
  ManagerHook manager_hook_;

  failure::NetFaultInjector net_injector_;
  net::ReliableTransport transport_;
  /// Staging slot for the message being handed to transport_.send(); the
  /// transmit hook files it into wire_store_ once the sequence is known.
  std::optional<WireMsg> outbox_;
  /// std::map: references stay valid across inserts (delivery re-enters
  /// send paths), and iteration order is deterministic.
  std::map<std::pair<net::LinkKey, net::ReliableTransport::Seq>, WireMsg>
      wire_store_;
  /// Receiver-side copy of frames that reached the NIC, held until the
  /// transport delivers them in order. Separate from wire_store_ because
  /// the sender may release its copy (ack received) while the receiver is
  /// still buffering the frame behind a hole.
  std::map<std::pair<net::LinkKey, net::ReliableTransport::Seq>, Message>
      rx_store_;
  NetCounters net_counters_;
  LinkFailureHook link_failure_hook_;
};

}  // namespace acr::rt
