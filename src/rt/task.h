// Task (chare) abstraction and its runtime context.
//
// Tasks are message-driven and run-to-completion: a handler never blocks.
// Long computation is modelled by `after_compute`, which performs the real
// arithmetic immediately but charges its cost to the virtual clock before
// the continuation fires.
//
// The contract required by ACR's coordinated checkpointing (§2.2):
//  * a task reports progress via report_progress(i) after completing its
//    i-th iteration and STOPS driving itself when told to pause — the
//    runtime will call on_resume() when execution may continue;
//  * on_message() while paused may only buffer data (the buffers must be
//    part of pup() so a checkpoint captures them);
//  * pup() must capture every bit of state needed to re-enter the loop at
//    the current iteration via on_resume() — including early-arrival
//    buffers and the iteration counter;
//  * handlers must be deterministic: buddy tasks in the two replicas must
//    produce bit-identical checkpoints in a fault-free run.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.h"
#include "pup/pup.h"
#include "rt/message.h"

namespace acr::rt {

enum class ProgressDecision { Continue, Pause };

class TaskContext {
 public:
  virtual ~TaskContext() = default;

  /// Send to another task in the same replica. The payload Buffer is
  /// shared into the in-flight message, never copied.
  virtual void send(TaskAddr dst, int tag, buf::Buffer payload) = 0;

  /// Charge `seconds` of virtual compute time, then run `fn` (unless the
  /// node dies or rolls back in between).
  virtual void after_compute(double seconds, std::function<void()> fn) = 0;

  /// §2.2 progress call: report that `completed_iterations` iterations are
  /// done. Returns Pause when a checkpoint consensus needs the task to stop
  /// at this iteration; on_resume() will be invoked to continue.
  virtual ProgressDecision report_progress(
      std::uint64_t completed_iterations) = 0;

  /// Tell the runtime this task has finished its final iteration. Must be
  /// re-issued from on_resume() if a restore lands the task in an
  /// already-final state.
  virtual void notify_done() = 0;

  virtual double now() const = 0;
  virtual TaskAddr self() const = 0;
  virtual int replica() const = 0;
  virtual int num_nodes() const = 0;
  virtual bool paused() const = 0;

  /// Deterministic generator seeded identically in both replicas (by
  /// logical position, not replica), for application initialisation.
  virtual Pcg32 make_app_rng(std::uint64_t salt) const = 0;
};

class Task {
 public:
  virtual ~Task() = default;

  /// First activation of a fresh task (job start or spare promotion happens
  /// through restore + on_resume instead).
  virtual void on_start() = 0;

  /// Re-enter the iteration loop at the current (pupped) state: after a
  /// pause ends, after a rollback, or after a spare-node restore.
  virtual void on_resume() = 0;

  virtual void on_message(const Message& m) = 0;

  /// Serialize the checkpointable state (see class contract above).
  virtual void pup(pup::Puper& p) = 0;

  /// Completed iterations — must equal the last value passed to
  /// report_progress (and survive pup round-trips). The runtime uses it to
  /// rebuild its progress ledger after a rollback or spare-node restore.
  virtual std::uint64_t progress() const = 0;

  TaskContext* ctx = nullptr;  ///< installed by the hosting node
};

}  // namespace acr::rt
