// Fork/join worker pool for the data-plane kernels — parallelism strictly
// BELOW the deterministic discrete-event simulation.
//
// The DES itself is single-threaded and must stay that way: event order is
// the reproducibility contract. What CAN fan out is the byte crunching done
// synchronously inside one event — chunked checkpoint digests, RAID-5
// parity folds, buddy-image copies. Those are pure functions of the bytes:
// the pool partitions the work by a rule that depends only on the input
// size (never on thread count or timing) and the caller merges the partial
// results in a fixed order via the digest combine operators (kernels.h),
// so the simulation output is bitwise identical with 0 workers or 16.
//
// for_each_index() is a blocking parallel-for: the calling (DES) thread
// participates in the work and does not return until every index ran. No
// work escapes the current event.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace acr::parallel {

class Pool {
 public:
  /// `threads` is the number of EXTRA workers; 0 means every for_each runs
  /// inline on the caller (no threads are spawned at all).
  explicit Pool(int threads);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  int threads() const { return static_cast<int>(workers_.size()); }

  /// Invoke fn(i) for every i in [0, n), fanned across the workers plus the
  /// calling thread; returns when all n calls have completed. fn must not
  /// throw and must not call back into the same Pool (not reentrant).
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  void run_slice();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t next_ = 0;     // next unclaimed index
  std::size_t pending_ = 0;  // claimed-or-unclaimed indices not yet finished
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Persistent worker group for the sharded event engine's lanes — distinct
/// from the global kernel Pool on purpose: lane workers are sized by the
/// engine's lane count and owned by the engine, so resharding the event
/// queue never resizes (or contends with) the data-plane kernel pool, and
/// the workers persist across every extraction round of a run instead of
/// being re-rendezvoused through the global pool's job slot.
///
/// run(fn) invokes fn(lane) for every lane in [0, lanes) and returns when
/// all have completed; the calling thread works too. Workers claim lanes
/// dynamically, so correctness never depends on which thread serves which
/// lane — the engine's lane containers are disjoint, and the round barrier
/// (mutex handoff) orders every lane mutation against the caller.
class LaneRunner {
 public:
  /// `lanes` parallel slots served by min(lanes - 1, max_threads) persistent
  /// workers plus the caller. max_threads < 0 derives the cap from the
  /// hardware concurrency (extra workers on a single-core host only add
  /// context switches) unless the ACR_ENGINE_THREADS environment variable
  /// overrides it — CI uses that to force real threads under TSan.
  explicit LaneRunner(int lanes, int max_threads = -1);
  ~LaneRunner();

  LaneRunner(const LaneRunner&) = delete;
  LaneRunner& operator=(const LaneRunner&) = delete;

  int lanes() const { return lanes_; }
  int threads() const { return static_cast<int>(workers_.size()); }

  /// Invoke fn(lane) for every lane in [0, lanes), fanned across the
  /// workers plus the calling thread; returns when every lane ran. fn must
  /// not throw and must not call back into the same LaneRunner.
  void run(const std::function<void(int)>& fn);

 private:
  void worker_loop();
  void run_lanes();

  const int lanes_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;
  int next_lane_ = 0;     // next unclaimed lane of the current round
  int pending_lanes_ = 0; // claimed-or-unclaimed lanes not yet finished
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// The process-wide kernel pool. Defaults to serial (0 workers) unless the
/// ACR_KERNEL_THREADS environment variable says otherwise; the driver's
/// --kernel-threads flag overrides both via set_global_threads().
Pool& global();

/// Replace the global pool with one of `n` workers (n <= 0 → serial).
void set_global_threads(int n);

/// Worker count of the global pool without forcing its construction.
int global_threads();

/// memcpy with the range fanned across the global pool. Exact same bytes
/// land in dst as a plain memcpy — the split is positional — so this is
/// safe anywhere a copy is needed. dst/src must not overlap.
void copy_bytes(std::byte* dst, const std::byte* src, std::size_t n);

}  // namespace acr::parallel
