#include "parallel/pool.h"

#include <cstdlib>
#include <cstring>
#include <memory>

namespace acr::parallel {

Pool::Pool(int threads) {
  if (threads < 0) threads = 0;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

Pool::~Pool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void Pool::for_each_index(std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard lk(mu_);
    job_ = &fn;
    job_n_ = n;
    next_ = 0;
    pending_ = n;
    ++generation_;
  }
  work_cv_.notify_all();
  run_slice();  // the caller is a worker too
  std::unique_lock lk(mu_);
  done_cv_.wait(lk, [&] { return pending_ == 0; });
  job_ = nullptr;
}

void Pool::run_slice() {
  for (;;) {
    std::size_t i;
    {
      std::lock_guard lk(mu_);
      if (job_ == nullptr || next_ >= job_n_) return;
      i = next_++;
    }
    (*job_)(i);
    {
      std::lock_guard lk(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void Pool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lk(mu_);
      work_cv_.wait(lk, [&] {
        return stop_ ||
               (job_ != nullptr && generation_ != seen && next_ < job_n_);
      });
      if (stop_) return;
      seen = generation_;
    }
    run_slice();
  }
}

namespace {

/// Worker cap for LaneRunner: ACR_ENGINE_THREADS when set (>= 0), else
/// hardware_concurrency() - 1 — on a single-core host every lane runs
/// inline on the caller and no threads are spawned at all.
int lane_worker_cap() {
  if (const char* e = std::getenv("ACR_ENGINE_THREADS");
      e != nullptr && *e != '\0') {
    int n = std::atoi(e);
    return n > 0 ? n : 0;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? static_cast<int>(hw) - 1 : 0;
}

}  // namespace

LaneRunner::LaneRunner(int lanes, int max_threads)
    : lanes_(lanes < 1 ? 1 : lanes) {
  if (max_threads < 0) max_threads = lane_worker_cap();
  int n = lanes_ - 1 < max_threads ? lanes_ - 1 : max_threads;
  workers_.reserve(static_cast<std::size_t>(n < 0 ? 0 : n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

LaneRunner::~LaneRunner() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void LaneRunner::run(const std::function<void(int)>& fn) {
  if (workers_.empty()) {
    for (int lane = 0; lane < lanes_; ++lane) fn(lane);
    return;
  }
  {
    std::lock_guard lk(mu_);
    job_ = &fn;
    next_lane_ = 0;
    pending_lanes_ = lanes_;
    ++generation_;
  }
  work_cv_.notify_all();
  run_lanes();  // the caller serves lanes too
  std::unique_lock lk(mu_);
  done_cv_.wait(lk, [&] { return pending_lanes_ == 0; });
  job_ = nullptr;
}

void LaneRunner::run_lanes() {
  for (;;) {
    int lane;
    {
      std::lock_guard lk(mu_);
      if (job_ == nullptr || next_lane_ >= lanes_) return;
      lane = next_lane_++;
    }
    (*job_)(lane);
    {
      std::lock_guard lk(mu_);
      if (--pending_lanes_ == 0) done_cv_.notify_all();
    }
  }
}

void LaneRunner::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lk(mu_);
      work_cv_.wait(lk, [&] {
        return stop_ ||
               (job_ != nullptr && generation_ != seen && next_lane_ < lanes_);
      });
      if (stop_) return;
      seen = generation_;
    }
    run_lanes();
  }
}

namespace {

int env_threads() {
  const char* e = std::getenv("ACR_KERNEL_THREADS");
  if (e == nullptr || *e == '\0') return 0;
  int n = std::atoi(e);
  return n > 0 ? n : 0;
}

// Leaky on purpose: replaced under set_global_threads(), joined in the old
// pool's destructor. A unique_ptr static would join at exit too, but the
// explicit pointer keeps replacement simple and exception-free.
std::unique_ptr<Pool>& global_slot() {
  static std::unique_ptr<Pool> pool;
  return pool;
}

}  // namespace

Pool& global() {
  auto& slot = global_slot();
  if (!slot) slot = std::make_unique<Pool>(env_threads());
  return *slot;
}

void set_global_threads(int n) {
  auto& slot = global_slot();
  slot.reset();  // join the old workers before spawning the new ones
  slot = std::make_unique<Pool>(n);
}

int global_threads() {
  auto& slot = global_slot();
  return slot ? slot->threads() : env_threads();
}

void copy_bytes(std::byte* dst, const std::byte* src, std::size_t n) {
  constexpr std::size_t kSlice = std::size_t{1} << 20;  // 1 MiB per worker
  Pool& pool = global();
  if (pool.threads() == 0 || n < 2 * kSlice) {
    if (n != 0) std::memcpy(dst, src, n);
    return;
  }
  std::size_t slices = (n + kSlice - 1) / kSlice;
  pool.for_each_index(slices, [&](std::size_t i) {
    std::size_t begin = i * kSlice;
    std::size_t len = n - begin < kSlice ? n - begin : kSlice;
    std::memcpy(dst + begin, src + begin, len);
  });
}

}  // namespace acr::parallel
