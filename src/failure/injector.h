// Fault injectors (§6.1).
//
// * SDC: "flips a randomly selected bit in the user data that will be
//   checkpointed". We realize exactly that — serialize the victim object
//   with PUP, flip one random bit inside a *payload* region (record headers
//   excluded, so the flip lands in user data rather than framing), and
//   deserialize back into the live object.
// * Hard errors are modelled by the runtime as no-response nodes (see
//   acr::rt); this header only provides the shared arrival machinery.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

#include "common/rng.h"
#include "pup/pup.h"

namespace acr::failure {

struct BitFlip {
  std::size_t byte_offset = 0;
  unsigned bit = 0;
};

/// Which stream records a flip may land in.
enum class FlipPolicy {
  /// Only floating point payloads (F32/F64) — the bulk "user data" of HPC
  /// applications and what the paper's injector effectively corrupts.
  /// Flips here silently distort results without deranging control flow.
  FloatingPointOnly,
  /// Any payload byte, including integer counters and indices. Such flips
  /// can send the victim's control flow arbitrarily off the rails — a
  /// stress mode beyond the paper's experiments.
  AnyPayload,
};

/// Flip one uniformly random bit among the eligible payload bytes of a PUP
/// stream. Returns the flip location. Requires at least one eligible byte.
BitFlip flip_random_payload_bit(std::span<std::byte> stream, Pcg32& rng,
                                FlipPolicy policy = FlipPolicy::AnyPayload);

/// Byte count eligible for flips under `policy` (exposed for tests and for
/// exhaustive flip sweeps in property tests).
std::size_t payload_bytes(std::span<const std::byte> stream,
                          FlipPolicy policy = FlipPolicy::AnyPayload);

/// Convenience: run the serialize–flip–deserialize cycle on a pup-able
/// object, corrupting its live state exactly as checkpointing would see it.
/// Requires at least one eligible byte (throws RequireError otherwise);
/// use try_inject_sdc when the victim's eligibility is unknown.
template <typename T>
BitFlip inject_sdc(T& victim, Pcg32& rng,
                   FlipPolicy policy = FlipPolicy::AnyPayload) {
  pup::Checkpoint image = pup::make_checkpoint(victim);
  BitFlip flip = flip_random_payload_bit(image.mutable_bytes(), rng, policy);
  pup::restore_checkpoint(victim, image);
  return flip;
}

/// Like inject_sdc, but returns nullopt when the victim has no eligible
/// payload (e.g. a freshly created, still-empty task on a spare node — a
/// flip into unallocated state is physically a no-op anyway).
template <typename T>
std::optional<BitFlip> try_inject_sdc(T& victim, Pcg32& rng,
                                      FlipPolicy policy) {
  pup::Checkpoint image = pup::make_checkpoint(victim);
  if (payload_bytes(image.bytes(), policy) == 0) return std::nullopt;
  BitFlip flip = flip_random_payload_bit(image.mutable_bytes(), rng, policy);
  pup::restore_checkpoint(victim, image);
  return flip;
}

}  // namespace acr::failure
