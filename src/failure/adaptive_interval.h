// Adaptive checkpoint-interval controller (§2.2).
//
// Combines the online MTBF estimate with the Young/Daly optimum period:
// after every failure (and periodically in between) the controller
// re-derives the interval from the current failure-rate trend, clamped to
// a sane range. This is the policy behind Fig. 12: checkpoint every ~6 s
// while failures are frequent, stretching to ~17 s as the Weibull hazard
// decays.
#pragma once

#include <optional>

#include "failure/estimator.h"

namespace acr::failure {

/// Young's first-order optimum checkpoint period: sqrt(2 * delta * mtbf).
double young_interval(double checkpoint_cost, double mtbf);

/// Daly's higher-order estimate. Falls back to the MTBF-limited form when
/// delta >= 2*M (checkpointing cannot keep up with the failure rate).
double daly_interval(double checkpoint_cost, double mtbf);

struct AdaptiveIntervalConfig {
  double checkpoint_cost = 1.0;   ///< delta, seconds
  double min_interval = 1.0;      ///< clamp floor, seconds
  double max_interval = 3600.0;   ///< clamp ceiling, seconds
  double prior_mtbf = 0.0;        ///< assumed MTBF before any failure (0 = none)
  std::size_t window = 8;         ///< estimator sliding window
  bool use_daly = true;           ///< Daly vs Young formula
};

class AdaptiveIntervalController {
 public:
  explicit AdaptiveIntervalController(const AdaptiveIntervalConfig& config);

  /// Feed an observed failure at absolute time `t`.
  void on_failure(double t);

  /// Amortized durable-tier flush cost per checkpoint period (seconds).
  /// Added to the configured checkpoint cost when deriving the Young/Daly
  /// delta, so a flush-heavy tier stretches the optimal interval. 0 (the
  /// default) reproduces the single-tier controller exactly.
  void set_flush_overhead(double seconds);
  double flush_overhead() const { return flush_overhead_; }

  /// Interval to use for the next checkpoint, given the current time.
  /// Before any failure (and with no prior) returns max_interval.
  double next_interval(double now) const;

  /// Current MTBF estimate (diagnostic).
  std::optional<double> current_mtbf(double now) const {
    return estimator_.mtbf(now);
  }

  std::size_t failures_observed() const {
    return estimator_.failures_observed();
  }

  const AdaptiveIntervalConfig& config() const { return config_; }

 private:
  AdaptiveIntervalConfig config_;
  MtbfEstimator estimator_;
  double flush_overhead_ = 0.0;
};

}  // namespace acr::failure
