// Failure-time distributions and arrival processes (§2.2, §6).
//
// The paper injects failures following both Poisson (exponential
// inter-arrival) and Weibull processes; HPC failure logs are better fitted
// by Weibull with a decreasing hazard (shape < 1), which is what makes an
// adaptive checkpoint interval pay off (Fig. 12 uses shape 0.6).
#pragma once

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace acr::failure {

/// A positive continuous distribution of times.
class Distribution {
 public:
  virtual ~Distribution() = default;
  virtual double sample(Pcg32& rng) const = 0;
  virtual double mean() const = 0;
  virtual std::string name() const = 0;
};

class Exponential final : public Distribution {
 public:
  explicit Exponential(double mean);
  double sample(Pcg32& rng) const override;
  double mean() const override { return mean_; }
  std::string name() const override { return "exponential"; }

 private:
  double mean_;
};

class Weibull final : public Distribution {
 public:
  /// shape k, scale lambda. Mean = lambda * Gamma(1 + 1/k).
  Weibull(double shape, double scale);
  /// Construct with a target mean instead of a scale.
  static Weibull with_mean(double shape, double mean);

  double sample(Pcg32& rng) const override;
  double mean() const override;
  std::string name() const override { return "weibull"; }

  double shape() const { return shape_; }
  double scale() const { return scale_; }

 private:
  double shape_;
  double scale_;
};

class LogNormal final : public Distribution {
 public:
  /// Parameters of the underlying normal (mu, sigma).
  LogNormal(double mu, double sigma);
  double sample(Pcg32& rng) const override;
  double mean() const override;
  std::string name() const override { return "lognormal"; }

 private:
  double mu_;
  double sigma_;
};

// ---------------------------------------------------------------------------
// Arrival processes: streams of absolute failure times.
// ---------------------------------------------------------------------------

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  /// Absolute time of the next failure strictly after `now`.
  virtual double next_after(double now, Pcg32& rng) = 0;
  virtual std::string name() const = 0;
};

/// Renewal process: iid inter-arrival times from a distribution. With an
/// Exponential distribution this is the Poisson process.
class RenewalProcess final : public ArrivalProcess {
 public:
  explicit RenewalProcess(std::shared_ptr<const Distribution> dist)
      : dist_(std::move(dist)) {}
  double next_after(double now, Pcg32& rng) override {
    return now + dist_->sample(rng);
  }
  std::string name() const override {
    return "renewal(" + dist_->name() + ")";
  }

 private:
  std::shared_ptr<const Distribution> dist_;
};

/// Non-homogeneous Poisson process with Weibull intensity
///   lambda(t) = (k/s) * (t/s)^(k-1).
/// Sampled exactly by time rescaling: Lambda(t) = (t/s)^k, and
/// t_next = Lambda^{-1}(Lambda(now) + Exp(1)). With k < 1 the failure rate
/// decreases over the run — the regime Fig. 12 demonstrates adaptivity in.
class WeibullProcess final : public ArrivalProcess {
 public:
  WeibullProcess(double shape, double scale);
  double next_after(double now, Pcg32& rng) override;
  std::string name() const override { return "weibull-process"; }

  /// Expected number of events in [0, t].
  double cumulative_intensity(double t) const;

 private:
  double shape_;
  double scale_;
};

/// Pre-draws a full failure trace over [0, horizon]; convenient for the
/// Monte-Carlo lifetime simulator and for reproducible fault injection.
std::vector<double> draw_failure_trace(ArrivalProcess& process, double horizon,
                                       Pcg32& rng);

}  // namespace acr::failure
