// Network fault injection: a lossy-wire model for in-flight frames.
//
// The simulated cluster historically delivered every message perfectly, so
// the ACR consensus and buddy-exchange protocols were never stressed the way
// a real interconnect stresses them. `NetFaultInjector` sits on the wire
// between the transport layer and the delivery event: for every frame it
// draws, from a per-directed-link seeded PCG32 stream, whether the frame is
//
//   - dropped       (never arrives; the sender's retransmit timer must cover),
//   - bit-corrupted (arrives with one flipped payload bit; CRC32C must catch),
//   - duplicated    (a second copy arrives, possibly later; the receive
//                    window must suppress it),
//   - delayed       (extra latency, which reorders it against frames on
//                    *other* links — per-link FIFO order is preserved, as on
//                    a real switched fabric).
//
// Decisions are a pure function of (seed, src, dst, draw index), so a fuzz
// failure reproduces exactly from its seed regardless of how other links
// interleave.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>

#include "common/rng.h"

namespace acr::failure {

/// Per-link fault rates. All rates default to zero: the wire is perfect and
/// the transport layer must be bit-for-bit invisible.
struct NetFaultConfig {
  double drop_rate = 0.0;     ///< P(frame silently lost)
  double dup_rate = 0.0;      ///< P(frame delivered twice)
  double reorder_rate = 0.0;  ///< P(frame gets extra latency)
  double corrupt_rate = 0.0;  ///< P(one payload bit flips in flight)
  /// Max extra latency (seconds) applied to delayed / duplicate copies.
  double reorder_max_extra = 1e-3;

  bool enabled() const {
    return drop_rate > 0.0 || dup_rate > 0.0 || reorder_rate > 0.0 ||
           corrupt_rate > 0.0;
  }
};

/// What happens to one frame on the wire.
struct NetFaultDecision {
  bool drop = false;
  bool duplicate = false;
  bool corrupt = false;
  std::size_t corrupt_byte = 0;  ///< byte index of the flipped bit
  int corrupt_bit = 0;           ///< bit index within that byte
  double extra_delay = 0.0;      ///< added to the primary copy's latency
  double dup_extra_delay = 0.0;  ///< added to the duplicate copy's latency
};

/// Running totals across all links.
struct NetFaultCounters {
  std::uint64_t frames = 0;
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t delays = 0;
  std::uint64_t corruptions = 0;
};

class NetFaultInjector {
 public:
  NetFaultInjector(const NetFaultConfig& cfg, std::uint64_t seed)
      : cfg_(cfg), seed_(seed) {}

  bool enabled() const { return cfg_.enabled(); }
  const NetFaultConfig& config() const { return cfg_; }
  const NetFaultCounters& counters() const { return counters_; }

  /// Draw the fate of one frame travelling src -> dst. `payload_bytes` bounds
  /// the corruption site; empty payloads are treated as header corruption by
  /// the caller (the frame fails its integrity check outright).
  NetFaultDecision decide(int src, int dst, std::size_t payload_bytes);

 private:
  Pcg32& link_rng(int src, int dst);

  NetFaultConfig cfg_;
  std::uint64_t seed_;
  NetFaultCounters counters_;
  // Ordered map: deterministic iteration and reference stability are both
  // load-bearing (streams are created lazily mid-run).
  std::map<std::pair<int, int>, Pcg32> streams_;
};

}  // namespace acr::failure
