#include "failure/correlated.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"

namespace acr::failure {

namespace {

/// Torus dims for N nodes with X = domain size: pack the remaining
/// domains into a near-square Y*Z face so hop distances stay meaningful.
topo::Torus3D derive_torus(int num_nodes, int domain_size) {
  int dx = std::clamp(domain_size, 1, std::max(1, num_nodes));
  int lines = (num_nodes + dx - 1) / dx;
  int dy = std::max(1, static_cast<int>(std::ceil(std::sqrt(
                           static_cast<double>(lines)))));
  int dz = (lines + dy - 1) / dy;
  return topo::Torus3D(dx, dy, std::max(1, dz));
}

}  // namespace

FailureDomains::FailureDomains(int num_nodes, int domain_size)
    : num_nodes_(num_nodes),
      domain_size_(std::clamp(domain_size, 1, std::max(1, num_nodes))),
      torus_(derive_torus(num_nodes, domain_size)) {
  ACR_REQUIRE(num_nodes > 0, "failure domains need at least one node");
}

int FailureDomains::num_domains() const {
  return (num_nodes_ + domain_size_ - 1) / domain_size_;
}

int FailureDomains::domain_of(int node) const {
  ACR_REQUIRE(node >= 0 && node < num_nodes_, "node outside domain map");
  // TXYZ rank order: x fastest, so rank / dim_x identifies the X-line.
  return node / domain_size_;
}

std::vector<int> FailureDomains::members(int domain) const {
  ACR_REQUIRE(domain >= 0 && domain < num_domains(), "no such domain");
  std::vector<int> out;
  int first = domain * domain_size_;
  int last = std::min(first + domain_size_, num_nodes_);
  out.reserve(static_cast<std::size_t>(last - first));
  for (int n = first; n < last; ++n) out.push_back(n);
  return out;
}

CorrelatedInjector::CorrelatedInjector(const BurstConfig& config,
                                       int num_nodes, std::uint64_t seed)
    : config_(config),
      domains_(num_nodes, config.domain_size),
      rng_(seed ^ 0xB125700DC0DEULL, 0xB1157) {
  ACR_REQUIRE(config_.enabled(), "injector requires seed_mtbf > 0");
  ACR_REQUIRE(config_.follow_prob >= 0.0 && config_.follow_prob <= 1.0,
              "follow probability must be in [0, 1]");
  ACR_REQUIRE(config_.window >= 0.0, "burst window must be non-negative");
  std::shared_ptr<const Distribution> gaps;
  if (config_.weibull_shape > 0.0)
    gaps = std::make_shared<Weibull>(
        Weibull::with_mean(config_.weibull_shape, config_.seed_mtbf));
  else
    gaps = std::make_shared<Exponential>(config_.seed_mtbf);
  seeds_ = std::make_unique<RenewalProcess>(std::move(gaps));
  if (config_.repair_mean > 0.0) {
    if (config_.repair_sigma > 0.0) {
      // Lognormal with the requested mean: mean = exp(mu + sigma^2 / 2).
      double sigma = config_.repair_sigma;
      double mu = std::log(config_.repair_mean) - 0.5 * sigma * sigma;
      repair_ = std::make_unique<LogNormal>(mu, sigma);
    } else {
      repair_ = std::make_unique<Exponential>(config_.repair_mean);
    }
  }
}

double CorrelatedInjector::next_seed_after(double now) {
  return seeds_->next_after(now, rng_);
}

int CorrelatedInjector::pick_victim(const std::vector<int>& alive_nodes) {
  ACR_REQUIRE(!alive_nodes.empty(), "no live hardware to strike");
  return alive_nodes[rng_.bounded(
      static_cast<std::uint32_t>(alive_nodes.size()))];
}

std::vector<FollowerEvent> CorrelatedInjector::plan_followers(
    int victim, const std::vector<int>& alive_nodes) {
  std::vector<FollowerEvent> out;
  for (int peer : domains_.members(domains_.domain_of(victim))) {
    if (peer == victim) continue;
    if (!std::binary_search(alive_nodes.begin(), alive_nodes.end(), peer))
      continue;
    if (rng_.uniform() >= config_.follow_prob) continue;
    out.push_back(FollowerEvent{peer, config_.window * rng_.uniform()});
  }
  return out;
}

double CorrelatedInjector::sample_repair_time() {
  ACR_REQUIRE(repair_ != nullptr, "repair process disabled (repair_mean 0)");
  return repair_->sample(rng_);
}

}  // namespace acr::failure
