#include "failure/injector.h"

#include <cstring>
#include <vector>

#include "common/require.h"
#include "pup/checker.h"

namespace acr::failure {

namespace {

constexpr std::size_t kHeaderSize = sizeof(std::uint8_t) + sizeof(std::uint64_t);

std::size_t elem_size_of(pup::Tag tag) {
  using pup::Tag;
  switch (tag) {
    case Tag::Bytes:
    case Tag::I8:
    case Tag::U8:
      return 1;
    case Tag::I16:
    case Tag::U16:
      return 2;
    case Tag::I32:
    case Tag::U32:
    case Tag::F32:
      return 4;
    case Tag::I64:
    case Tag::U64:
    case Tag::F64:
    case Tag::Size:
      return 8;
    case Tag::OptionsPush:
      return sizeof(pup::CompareOptions);
    case Tag::OptionsPop:
      return 0;
  }
  throw pup::StreamError("unknown tag in injector");
}

bool eligible(pup::Tag tag, FlipPolicy policy) {
  if (tag == pup::Tag::OptionsPush || tag == pup::Tag::OptionsPop ||
      tag == pup::Tag::Size)
    return false;  // framework metadata, never user data
  if (policy == FlipPolicy::FloatingPointOnly)
    return tag == pup::Tag::F32 || tag == pup::Tag::F64;
  return true;
}

/// Collect [offset, length) spans of flippable payload under `policy`.
std::vector<std::pair<std::size_t, std::size_t>> payload_spans(
    std::span<const std::byte> stream, FlipPolicy policy) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  std::size_t pos = 0;
  while (pos < stream.size()) {
    ACR_REQUIRE(pos + kHeaderSize <= stream.size(),
                "malformed stream in injector");
    std::uint8_t t;
    std::uint64_t n;
    std::memcpy(&t, stream.data() + pos, sizeof t);
    std::memcpy(&n, stream.data() + pos + sizeof t, sizeof n);
    pos += kHeaderSize;
    auto tag = static_cast<pup::Tag>(t);
    std::size_t payload = static_cast<std::size_t>(n) * elem_size_of(tag);
    ACR_REQUIRE(pos + payload <= stream.size(),
                "malformed stream payload in injector");
    if (eligible(tag, policy) && payload > 0) spans.emplace_back(pos, payload);
    pos += payload;
  }
  return spans;
}

}  // namespace

std::size_t payload_bytes(std::span<const std::byte> stream,
                          FlipPolicy policy) {
  std::size_t total = 0;
  for (const auto& [off, len] : payload_spans(stream, policy)) total += len;
  return total;
}

BitFlip flip_random_payload_bit(std::span<std::byte> stream, Pcg32& rng,
                                FlipPolicy policy) {
  auto spans = payload_spans(stream, policy);
  std::size_t total = 0;
  for (const auto& [off, len] : spans) total += len;
  ACR_REQUIRE(total > 0, "stream has no payload bytes to corrupt");

  std::uint64_t pick = rng.next64() % total;
  for (const auto& [off, len] : spans) {
    if (pick < len) {
      BitFlip flip;
      flip.byte_offset = off + static_cast<std::size_t>(pick);
      flip.bit = rng.bounded(8);
      stream[flip.byte_offset] ^=
          static_cast<std::byte>(1u << flip.bit);
      return flip;
    }
    pick -= len;
  }
  ACR_REQUIRE(false, "unreachable: payload selection fell through");
  return {};
}

}  // namespace acr::failure
