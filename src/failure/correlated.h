// Correlated failure bursts and node repair.
//
// Real HPC failure logs (the LANL data behind the paper's §5 Weibull fits)
// show spatially and temporally correlated failures: a power or cooling
// event takes out a blade or rack, not one independent node. This module
// models that: physical nodes are grouped into failure domains derived from
// the torus topology (one domain = one X-line, the blade of a BG/P-style
// machine), a seeded arrival process produces *seed* failures, and each
// seed raises the hazard of its domain peers within a short window —
// producing rack-style multi-node bursts that can kill buddy pairs or
// drain the spare pool. A repair process returns dead hardware to service
// after a configurable repair-time distribution.
//
// The class is pure decision logic over seeded RNG — it owns no cluster
// and schedules no events. The runtime glue (acr::AcrRuntime) asks it
// when/who/how-long and performs the kills/repairs, which keeps every
// choice unit-testable and the whole schedule deterministic per seed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "failure/distributions.h"
#include "topology/torus.h"

namespace acr::failure {

struct BurstConfig {
  /// Mean time between burst seed failures (renewal process). 0 disables
  /// correlated injection entirely.
  double seed_mtbf = 0.0;
  /// Weibull shape of the seed inter-arrival distribution; <= 0 uses
  /// exponential inter-arrivals (a Poisson seed process). Shape < 1 gives
  /// the decreasing hazard observed in HPC logs (§5).
  double weibull_shape = 0.0;
  /// Probability that each live domain peer of the seed also fails.
  double follow_prob = 0.5;
  /// Follower deaths land uniformly within [seed_time, seed_time + window).
  /// A zero window makes followers strictly simultaneous with the seed.
  double window = 0.002;
  /// Hardware nodes per failure domain (the X extent of the derived torus).
  int domain_size = 4;
  /// Mean node repair time; 0 means dead hardware stays dead.
  double repair_mean = 0.0;
  /// Lognormal sigma of the repair-time distribution (<= 0: exponential).
  double repair_sigma = 0.5;

  bool enabled() const { return seed_mtbf > 0.0; }
};

/// Partition of hardware nodes 0..N-1 into failure domains via a derived
/// 3D torus: nodes are laid out in TXYZ rank order on a torus whose X
/// extent is the domain size, so a domain is one X-line — the set of nodes
/// sharing a (y, z) coordinate, the blade/mezzanine of the modelled
/// machine. The last domain may be short when N is not a multiple.
class FailureDomains {
 public:
  FailureDomains(int num_nodes, int domain_size);

  int num_nodes() const { return num_nodes_; }
  int domain_size() const { return domain_size_; }
  int num_domains() const;
  int domain_of(int node) const;
  /// Members of `domain`, ascending.
  std::vector<int> members(int domain) const;
  /// The derived torus (covers >= num_nodes ranks; trailing ranks unused).
  const topo::Torus3D& torus() const { return torus_; }

 private:
  int num_nodes_;
  int domain_size_;
  topo::Torus3D torus_;
};

/// A planned follower death relative to its burst's seed time.
struct FollowerEvent {
  int node = -1;
  double delay = 0.0;  ///< seconds after the seed failure
};

class CorrelatedInjector {
 public:
  CorrelatedInjector(const BurstConfig& config, int num_nodes,
                     std::uint64_t seed);

  const BurstConfig& config() const { return config_; }
  const FailureDomains& domains() const { return domains_; }

  /// Absolute time of the next burst seed strictly after `now`.
  double next_seed_after(double now);

  /// Uniform choice of the seed victim among currently-alive hardware.
  int pick_victim(const std::vector<int>& alive_nodes);

  /// Decide which live domain peers of `victim` follow it down, and when.
  /// `alive_nodes` must be ascending (the cluster's live-hardware scan).
  std::vector<FollowerEvent> plan_followers(
      int victim, const std::vector<int>& alive_nodes);

  /// Duration of one node repair (valid only when repair_mean > 0).
  double sample_repair_time();

 private:
  BurstConfig config_;
  FailureDomains domains_;
  Pcg32 rng_;
  std::unique_ptr<ArrivalProcess> seeds_;
  std::unique_ptr<Distribution> repair_;
};

}  // namespace acr::failure
