#include "failure/estimator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/require.h"

namespace acr::failure {

void MtbfEstimator::record_failure(double t) {
  if (last_failure_) {
    ACR_REQUIRE(t >= *last_failure_, "failure times must be non-decreasing");
    gaps_.push_back(t - *last_failure_);
    if (gaps_.size() > window_) gaps_.pop_front();
  }
  last_failure_ = t;
  ++total_;
}

std::optional<double> MtbfEstimator::mtbf(double now) const {
  if (!last_failure_) {
    if (prior_mtbf_ > 0.0) return prior_mtbf_;
    return std::nullopt;
  }
  double open_gap = std::max(0.0, now - *last_failure_);
  if (gaps_.empty()) {
    // Single failure so far: blend the prior with the open gap if we have
    // a prior; otherwise the open gap is the only evidence.
    if (prior_mtbf_ > 0.0) return std::max(prior_mtbf_, open_gap);
    return std::max(open_gap, 1e-9);
  }
  double closed = std::accumulate(gaps_.begin(), gaps_.end(), 0.0);
  double n = static_cast<double>(gaps_.size());
  return (closed + open_gap) / n;
}

double WeibullFit::mean() const {
  return scale * std::tgamma(1.0 + 1.0 / shape);
}

WeibullFit fit_weibull_mle(const std::vector<double>& samples,
                           int max_iterations, double tolerance) {
  WeibullFit fit;
  if (samples.size() < 2) return fit;
  for (double s : samples) ACR_REQUIRE(s > 0.0, "weibull samples must be > 0");

  const double n = static_cast<double>(samples.size());
  std::vector<double> logs(samples.size());
  std::transform(samples.begin(), samples.end(), logs.begin(),
                 [](double v) { return std::log(v); });
  double mean_log = std::accumulate(logs.begin(), logs.end(), 0.0) / n;

  // Profile likelihood: g(k) = sum(x^k log x)/sum(x^k) - 1/k - mean_log = 0.
  auto g_and_dg = [&](double k, double& g, double& dg) {
    double sum_xk = 0.0, sum_xk_lx = 0.0, sum_xk_lx2 = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      double xk = std::pow(samples[i], k);
      sum_xk += xk;
      sum_xk_lx += xk * logs[i];
      sum_xk_lx2 += xk * logs[i] * logs[i];
    }
    double ratio = sum_xk_lx / sum_xk;
    g = ratio - 1.0 / k - mean_log;
    dg = (sum_xk_lx2 / sum_xk) - ratio * ratio + 1.0 / (k * k);
  };

  // Start from the common moment-based guess.
  double var_log = 0.0;
  for (double l : logs) var_log += (l - mean_log) * (l - mean_log);
  var_log /= n;
  double k = var_log > 0.0 ? 1.2 / std::sqrt(var_log) : 1.0;
  k = std::clamp(k, 0.05, 50.0);

  for (int it = 0; it < max_iterations; ++it) {
    double g, dg;
    g_and_dg(k, g, dg);
    double step = g / dg;
    double k_next = k - step;
    if (k_next <= 0.0) k_next = k / 2.0;  // keep the iterate positive
    if (std::fabs(k_next - k) < tolerance * std::max(1.0, k)) {
      k = k_next;
      fit.converged = true;
      break;
    }
    k = k_next;
  }

  double sum_xk = 0.0;
  for (double s : samples) sum_xk += std::pow(s, k);
  fit.shape = k;
  fit.scale = std::pow(sum_xk / n, 1.0 / k);
  return fit;
}

}  // namespace acr::failure
