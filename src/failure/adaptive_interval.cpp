#include "failure/adaptive_interval.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"

namespace acr::failure {

double young_interval(double checkpoint_cost, double mtbf) {
  ACR_REQUIRE(checkpoint_cost > 0.0 && mtbf > 0.0,
              "young interval needs positive cost and MTBF");
  return std::sqrt(2.0 * checkpoint_cost * mtbf);
}

double daly_interval(double checkpoint_cost, double mtbf) {
  ACR_REQUIRE(checkpoint_cost > 0.0 && mtbf > 0.0,
              "daly interval needs positive cost and MTBF");
  const double d = checkpoint_cost, m = mtbf;
  if (d >= 2.0 * m) return m;  // Daly's boundary case
  double root = std::sqrt(2.0 * d * m);
  // tau_opt = sqrt(2 d M) * [1 + (1/3)sqrt(d/(2M)) + (1/9)(d/(2M))] - d
  double r = std::sqrt(d / (2.0 * m));
  return root * (1.0 + r / 3.0 + (d / (2.0 * m)) / 9.0) - d;
}

AdaptiveIntervalController::AdaptiveIntervalController(
    const AdaptiveIntervalConfig& config)
    : config_(config), estimator_(config.window, config.prior_mtbf) {
  ACR_REQUIRE(config.min_interval > 0.0 &&
                  config.max_interval >= config.min_interval,
              "interval clamp range invalid");
  ACR_REQUIRE(config.checkpoint_cost > 0.0, "checkpoint cost must be > 0");
}

void AdaptiveIntervalController::on_failure(double t) {
  estimator_.record_failure(t);
}

void AdaptiveIntervalController::set_flush_overhead(double seconds) {
  ACR_REQUIRE(seconds >= 0.0, "flush overhead must be >= 0");
  flush_overhead_ = seconds;
}

double AdaptiveIntervalController::next_interval(double now) const {
  std::optional<double> m = estimator_.mtbf(now);
  if (!m) return config_.max_interval;
  double delta = config_.checkpoint_cost + flush_overhead_;
  double tau = config_.use_daly ? daly_interval(delta, *m)
                                : young_interval(delta, *m);
  return std::clamp(tau, config_.min_interval, config_.max_interval);
}

}  // namespace acr::failure
