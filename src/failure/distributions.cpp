#include "failure/distributions.h"

#include "common/require.h"

namespace acr::failure {

namespace {

/// Standard normal via Box–Muller (one value per call; simple and fine for
/// the rates we need).
double standard_normal(Pcg32& rng) {
  double u1 = 0.0;
  do {
    u1 = rng.uniform();
  } while (u1 <= 0.0);
  double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

/// Uniform in (0, 1] to feed -log() safely.
double uniform_pos(Pcg32& rng) { return 1.0 - rng.uniform(); }

}  // namespace

Exponential::Exponential(double mean) : mean_(mean) {
  ACR_REQUIRE(mean > 0.0, "exponential mean must be positive");
}

double Exponential::sample(Pcg32& rng) const {
  return -mean_ * std::log(uniform_pos(rng));
}

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  ACR_REQUIRE(shape > 0.0 && scale > 0.0,
              "weibull shape and scale must be positive");
}

Weibull Weibull::with_mean(double shape, double mean) {
  ACR_REQUIRE(mean > 0.0, "weibull mean must be positive");
  double scale = mean / std::tgamma(1.0 + 1.0 / shape);
  return Weibull(shape, scale);
}

double Weibull::sample(Pcg32& rng) const {
  return scale_ * std::pow(-std::log(uniform_pos(rng)), 1.0 / shape_);
}

double Weibull::mean() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  ACR_REQUIRE(sigma > 0.0, "lognormal sigma must be positive");
}

double LogNormal::sample(Pcg32& rng) const {
  return std::exp(mu_ + sigma_ * standard_normal(rng));
}

double LogNormal::mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

WeibullProcess::WeibullProcess(double shape, double scale)
    : shape_(shape), scale_(scale) {
  ACR_REQUIRE(shape > 0.0 && scale > 0.0,
              "weibull process shape and scale must be positive");
}

double WeibullProcess::cumulative_intensity(double t) const {
  return std::pow(t / scale_, shape_);
}

double WeibullProcess::next_after(double now, Pcg32& rng) {
  ACR_REQUIRE(now >= 0.0, "process time must be non-negative");
  double target = cumulative_intensity(now) - std::log(uniform_pos(rng));
  return scale_ * std::pow(target, 1.0 / shape_);
}

std::vector<double> draw_failure_trace(ArrivalProcess& process, double horizon,
                                       Pcg32& rng) {
  std::vector<double> trace;
  double t = 0.0;
  while (true) {
    t = process.next_after(t, rng);
    if (t > horizon) break;
    trace.push_back(t);
  }
  return trace;
}

}  // namespace acr::failure
