// Online failure-rate estimation and Weibull fitting (§2.2 "Adapting to
// Failures").
//
// ACR fits the stream of observed failures during execution and re-derives
// the checkpoint interval from the *current* trend, so a decreasing-hazard
// workload checkpoints densely early and sparsely late (Fig. 12).
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

namespace acr::failure {

/// Sliding-window MTBF estimator over observed failure times.
///
/// Keeps the last `window` inter-failure gaps. Because a long quiet period
/// is itself evidence that the rate has dropped, the estimate also folds in
/// the censored (still open) gap since the last failure: with n closed gaps
/// summing to S and an open gap a, the maximum-likelihood exponential rate
/// given the censored observation is n / (S + a).
class MtbfEstimator {
 public:
  explicit MtbfEstimator(std::size_t window = 8, double prior_mtbf = 0.0)
      : window_(window), prior_mtbf_(prior_mtbf) {}

  /// Record a failure at absolute time `t` (must be non-decreasing).
  void record_failure(double t);

  /// Current MTBF estimate at time `now`. Falls back to the prior before
  /// the first failure; returns nullopt if no prior and no failures.
  std::optional<double> mtbf(double now) const;

  std::size_t failures_observed() const { return total_; }
  const std::deque<double>& recent_gaps() const { return gaps_; }

 private:
  std::size_t window_;
  double prior_mtbf_;
  std::deque<double> gaps_;
  std::optional<double> last_failure_;
  std::size_t total_ = 0;
};

/// Maximum-likelihood Weibull fit of a sample of inter-failure times.
///
/// Solves the profile-likelihood equation for the shape k by Newton
/// iteration, then recovers the scale in closed form. Used both as a
/// diagnostic (is the hazard decreasing? k < 1) and to extrapolate the
/// near-future failure rate.
struct WeibullFit {
  double shape = 1.0;
  double scale = 1.0;
  bool converged = false;
  double mean() const;
};

WeibullFit fit_weibull_mle(const std::vector<double>& samples,
                           int max_iterations = 100, double tolerance = 1e-10);

}  // namespace acr::failure
