#include "failure/net_faults.h"

namespace acr::failure {

Pcg32& NetFaultInjector::link_rng(int src, int dst) {
  auto key = std::make_pair(src, dst);
  auto it = streams_.find(key);
  if (it != streams_.end()) return it->second;
  // Mix (seed, src, dst) through SplitMix64 so every directed link gets an
  // independent stream, stable across runs and insertion orders.
  SplitMix64 mix(seed_ ^
                 (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                  << 32) ^
                 static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)));
  std::uint64_t s = mix.next();
  std::uint64_t stream = mix.next();
  return streams_.emplace(key, Pcg32(s, stream)).first->second;
}

NetFaultDecision NetFaultInjector::decide(int src, int dst,
                                          std::size_t payload_bytes) {
  NetFaultDecision d;
  ++counters_.frames;
  if (!cfg_.enabled()) return d;
  Pcg32& rng = link_rng(src, dst);
  // Fixed draw order keeps the stream consumption identical no matter which
  // faults are enabled at what rates.
  double u_drop = rng.uniform();
  double u_corrupt = rng.uniform();
  double u_dup = rng.uniform();
  double u_delay = rng.uniform();
  if (u_drop < cfg_.drop_rate) {
    d.drop = true;
    ++counters_.drops;
    return d;  // a dropped frame has no further fate
  }
  if (u_corrupt < cfg_.corrupt_rate) {
    d.corrupt = true;
    if (payload_bytes > 0) {
      d.corrupt_byte = rng.bounded(
          static_cast<std::uint32_t>(payload_bytes > 0xFFFFFFFFu
                                         ? 0xFFFFFFFFu
                                         : payload_bytes));
      d.corrupt_bit = static_cast<int>(rng.bounded(8));
    }
    ++counters_.corruptions;
  }
  if (u_dup < cfg_.dup_rate) {
    d.duplicate = true;
    d.dup_extra_delay = rng.uniform(0.0, cfg_.reorder_max_extra);
    ++counters_.duplicates;
  }
  if (u_delay < cfg_.reorder_rate) {
    d.extra_delay = rng.uniform(0.0, cfg_.reorder_max_extra);
    ++counters_.delays;
  }
  return d;
}

}  // namespace acr::failure
