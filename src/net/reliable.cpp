#include "net/reliable.h"

#include <algorithm>

#include "common/require.h"

namespace acr::net {

std::uint64_t ReliableTransport::generation(LinkKey link) const {
  auto it = generations_.find(link);
  return it == generations_.end() ? 0 : it->second;
}

ReliableTransport::Seq ReliableTransport::window_base(LinkKey link) const {
  auto it = senders_.find(link);
  if (it == senders_.end()) return 1;
  if (it->second.pending.empty()) return it->second.next_seq;
  return it->second.pending.begin()->first;
}

ReliableTransport::Seq ReliableTransport::send(LinkKey link,
                                               double one_way_latency) {
  SenderState& s = senders_[link];
  Seq seq = s.next_seq++;
  Pending& p = s.pending[seq];
  p.latency = one_way_latency;
  p.timeout = std::max(cfg_.base_timeout,
                       cfg_.min_timeout_rtt_factor * one_way_latency);
  ++stats_.data_frames;
  hooks_.transmit(link, seq, /*attempt=*/0);
  arm_timer(link, seq);
  return seq;
}

void ReliableTransport::arm_timer(LinkKey link, Seq seq) {
  auto sit = senders_.find(link);
  ACR_REQUIRE(sit != senders_.end(), "arm_timer on unknown link");
  auto pit = sit->second.pending.find(seq);
  ACR_REQUIRE(pit != sit->second.pending.end(), "arm_timer on unknown seq");
  pit->second.timer =
      hooks_.schedule(pit->second.timeout, [this, link, seq] {
        on_timeout(link, seq);
      });
}

void ReliableTransport::on_timeout(LinkKey link, Seq seq) {
  auto sit = senders_.find(link);
  if (sit == senders_.end()) return;  // endpoint reset raced the timer
  auto pit = sit->second.pending.find(seq);
  if (pit == sit->second.pending.end()) return;  // acked meanwhile
  Pending& p = pit->second;
  ++p.attempts;
  if (p.attempts > cfg_.retry_budget) {
    ++stats_.gave_up;
    sit->second.pending.erase(pit);
    // give_up may synthesize a link-failure escalation; release afterwards
    // so the payload is still inspectable from the give_up hook if needed.
    hooks_.give_up(link, seq);
    hooks_.release(link, seq);
    return;
  }
  ++stats_.retransmits;
  // Exponential backoff, capped — but never below the frame's flight-time
  // floor (bulk frames legitimately take several base_timeouts to arrive).
  double floor =
      std::max(cfg_.base_timeout, cfg_.min_timeout_rtt_factor * p.latency);
  p.timeout = std::min(std::max(cfg_.max_timeout, floor),
                       p.timeout * cfg_.backoff);
  hooks_.transmit(link, seq, p.attempts);
  arm_timer(link, seq);
}

void ReliableTransport::on_data_frame(LinkKey link, Seq seq, Seq sender_base,
                                      std::uint64_t gen) {
  if (gen != generation(link)) {
    ++stats_.stale_generation;
    return;  // frame from a dead incarnation of this link: no ack
  }
  ReceiverState& r = receivers_[link];
  // Heal abandoned holes: the sender's base has moved past sequences it gave
  // up on; anything below it will never arrive, so skip forward, delivering
  // any frames we had buffered along the way.
  while (r.base < sender_base || r.buffered.count(r.base)) {
    if (r.buffered.count(r.base)) {
      r.buffered.erase(r.base);
      ++stats_.delivered;
      hooks_.deliver(link, r.base);
    }
    ++r.base;
  }
  if (seq >= r.base + cfg_.window) return;  // beyond window: drop, no ack
  // Ack every acceptable data frame, duplicates included — the original ack
  // may have been lost, and the sender needs one to stop retransmitting.
  hooks_.send_ack(link, seq);
  if (seq < r.base || r.buffered.count(seq)) {
    ++stats_.dup_frames;
    return;
  }
  r.buffered.insert(seq);
  // Deliver the in-order run starting at base.
  while (r.buffered.count(r.base)) {
    r.buffered.erase(r.base);
    ++stats_.delivered;
    hooks_.deliver(link, r.base);
    ++r.base;
  }
}

void ReliableTransport::on_ack_frame(LinkKey link, Seq seq,
                                     std::uint64_t gen) {
  if (gen != generation(link)) {
    ++stats_.stale_generation;
    return;
  }
  auto sit = senders_.find(link);
  if (sit == senders_.end()) return;
  auto pit = sit->second.pending.find(seq);
  if (pit == sit->second.pending.end()) return;  // duplicate ack
  hooks_.cancel(pit->second.timer);
  sit->second.pending.erase(pit);
  ++stats_.acks_delivered;
  hooks_.release(link, seq);
}

void ReliableTransport::reset_endpoint(int endpoint) {
  for (auto& [link, s] : senders_) {
    if (link.src != endpoint && link.dst != endpoint) continue;
    for (auto& [seq, p] : s.pending) {
      hooks_.cancel(p.timer);
      hooks_.release(link, seq);
    }
    s.pending.clear();
    s.next_seq = 1;
    ++generations_[link];
  }
  for (auto& [link, r] : receivers_) {
    if (link.src != endpoint && link.dst != endpoint) continue;
    r.base = 1;
    r.buffered.clear();
    ++generations_[link];
  }
}

std::size_t ReliableTransport::in_flight() const {
  std::size_t n = 0;
  for (const auto& [link, s] : senders_) n += s.pending.size();
  return n;
}

}  // namespace acr::net
