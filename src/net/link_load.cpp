#include "net/link_load.h"

#include <algorithm>

namespace acr::net {

LinkLoadModel::LinkLoadModel(const topo::Torus3D& torus)
    : torus_(torus),
      bytes_(static_cast<std::size_t>(torus.num_links()), 0.0),
      msgs_(static_cast<std::size_t>(torus.num_links()), 0) {}

void LinkLoadModel::add_message(int src_rank, int dst_rank, double bytes) {
  if (src_rank == dst_rank) return;  // local delivery, no links crossed
  std::vector<int> path =
      torus_.route(torus_.coord_of(src_rank), torus_.coord_of(dst_rank));
  for (int link : path) {
    bytes_[static_cast<std::size_t>(link)] += bytes;
    msgs_[static_cast<std::size_t>(link)] += 1;
  }
  total_byte_hops_ += bytes * static_cast<double>(path.size());
  total_messages_ += 1;
  max_hops_ = std::max(max_hops_, static_cast<int>(path.size()));
}

void LinkLoadModel::add_traffic(const std::vector<std::pair<int, int>>& pairs,
                                double bytes_each) {
  for (const auto& [src, dst] : pairs) add_message(src, dst, bytes_each);
}

void LinkLoadModel::clear() {
  std::fill(bytes_.begin(), bytes_.end(), 0.0);
  std::fill(msgs_.begin(), msgs_.end(), 0);
  total_byte_hops_ = 0.0;
  total_messages_ = 0;
  max_hops_ = 0;
}

double LinkLoadModel::max_link_bytes() const {
  return bytes_.empty() ? 0.0 : *std::max_element(bytes_.begin(), bytes_.end());
}

std::uint64_t LinkLoadModel::max_link_messages() const {
  return msgs_.empty() ? 0 : *std::max_element(msgs_.begin(), msgs_.end());
}

double LinkLoadModel::phase_time(const NetworkParams& p) const {
  if (total_messages_ == 0) return 0.0;
  return p.alpha * static_cast<double>(max_hops_) +
         p.beta() * max_link_bytes();
}

double L2ChannelModel::charge(int node, double now, double bytes) {
  if (busy_until_.size() <= static_cast<std::size_t>(node))
    busy_until_.resize(static_cast<std::size_t>(node) + 1, 0.0);
  double& busy = busy_until_[static_cast<std::size_t>(node)];
  double start = std::max(now, busy);
  stats_.queue_wait += start - now;
  double service =
      params_.latency + (params_.bandwidth > 0.0 ? bytes / params_.bandwidth
                                                 : 0.0);
  busy = start + service;
  return busy - now;
}

double L2ChannelModel::write(int node, double now, double bytes) {
  stats_.writes += 1;
  stats_.bytes_written += bytes;
  return charge(node, now, bytes);
}

double L2ChannelModel::read(int node, double now, double bytes) {
  stats_.reads += 1;
  stats_.bytes_read += bytes;
  return charge(node, now, bytes);
}

}  // namespace acr::net
