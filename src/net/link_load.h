// Link-level traffic model over a 3D torus.
//
// The checkpoint-transfer and restart-transfer costs in the paper (Figs. 6,
// 8, 10) are dominated by contention on the links between the two replicas:
// every node of replica 1 sends its checkpoint to its buddy at the same
// time. This model routes every message with dimension-ordered minimal
// routing, accumulates bytes and message counts per directed link, and
// estimates the completion time of the bulk-synchronous phase as the time
// for the most loaded link to drain plus the longest path latency.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "topology/torus.h"

namespace acr::net {

/// alpha-beta-gamma machine parameters (Blue Gene/P-flavoured defaults).
struct NetworkParams {
  /// Per-message one-way latency, seconds.
  double alpha = 5e-6;
  /// Per-link bandwidth, bytes/second (BG/P torus link: 425 MB/s).
  double link_bandwidth = 425.0e6;
  /// Compute cost per byte-instruction, seconds. The checksum optimization
  /// costs ~4 instructions per byte (§4.2) => 4*gamma per byte. Calibrated
  /// to a BG/P PowerPC 450-class core without SIMD.
  double gamma = 3.0e-9;
  /// Local serialization (PUP pack) rate, bytes/second. Far below memcpy:
  /// the PUP traversal walks object graphs (calibrated so a 16 MiB Jacobi3D
  /// node checkpoint costs ~0.25 s, as in Fig. 8a).
  double pack_bandwidth = 70.0e6;
  /// Checkpoint comparison rate, bytes/second (streaming compare of two
  /// self-describing streams).
  double compare_bandwidth = 250.0e6;
  /// State reconstruction (PUP unpack + object rebuild) rate, bytes/second.
  double unpack_bandwidth = 60.0e6;

  double beta() const { return 1.0 / link_bandwidth; }
};

/// Cost parameters of the simulated L2 durable channel (burst buffer /
/// parallel FS ingest pipe). Each node drains through its own pipe, so the
/// model queues per node rather than per torus link.
struct L2Params {
  /// Per-node L2 bandwidth, bytes/second. 0 disables the durable tier.
  double bandwidth = 0.0;
  /// Per-operation setup latency, seconds.
  double latency = 1e-4;
};

/// Per-node busy-until queue for L2 I/O: an operation issued at `now`
/// completes at max(now, busy_until[node]) + latency + bytes/bandwidth.
/// Purely arithmetic — the caller (rt::Cluster) turns the returned delay
/// into a DES event, which keeps flush scheduling deterministic at any
/// kernel-thread count.
class L2ChannelModel {
 public:
  struct Stats {
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;
    double bytes_written = 0.0;
    double bytes_read = 0.0;
    /// Pre-codec image bytes the writes stood for. With the checkpoint
    /// codec off this tracks the raw size of every image offered to the
    /// pipe; with delta/compression on, bytes_written falls below it and
    /// the gap is the codec's saving at the durable tier.
    double bytes_raw_written = 0.0;
    /// Aggregate time operations spent waiting behind earlier I/O on the
    /// same node's pipe (queueing delay, not service time).
    double queue_wait = 0.0;
  };

  explicit L2ChannelModel(L2Params params) : params_(params) {}

  /// Seconds from `now` until a write of `bytes` issued by `node` finishes.
  double write(int node, double now, double bytes);
  /// Same for a read (fetch path). Reads share the node's pipe with writes.
  double read(int node, double now, double bytes);

  /// Account (without charging time for) the raw image bytes behind a
  /// write sequence — called once per flush with the decoded size.
  void note_raw_write(double bytes) { stats_.bytes_raw_written += bytes; }

  const Stats& stats() const { return stats_; }
  const L2Params& params() const { return params_; }

 private:
  double charge(int node, double now, double bytes);

  L2Params params_;
  std::vector<double> busy_until_;
  Stats stats_;
};

class LinkLoadModel {
 public:
  explicit LinkLoadModel(const topo::Torus3D& torus);

  /// Route one message and accumulate its bytes on every link it crosses.
  void add_message(int src_rank, int dst_rank, double bytes);

  /// One message of `bytes_each` for every (src, dst) pair.
  void add_traffic(const std::vector<std::pair<int, int>>& pairs,
                   double bytes_each);

  void clear();

  double link_bytes(int link_id) const { return bytes_.at(link_id); }
  std::uint64_t link_messages(int link_id) const { return msgs_.at(link_id); }

  double max_link_bytes() const;
  std::uint64_t max_link_messages() const;
  /// Longest routed path (hops) among the messages added.
  int max_hops() const { return max_hops_; }
  /// Total bytes*hops (aggregate network work).
  double total_byte_hops() const { return total_byte_hops_; }
  std::uint64_t total_messages() const { return total_messages_; }

  /// Completion time of the phase assuming all messages are injected
  /// simultaneously and the bottleneck link serializes its load:
  ///   T = alpha * max_hops + beta * max_link_bytes.
  double phase_time(const NetworkParams& p) const;

  const topo::Torus3D& torus() const { return torus_; }

 private:
  topo::Torus3D torus_;
  std::vector<double> bytes_;
  std::vector<std::uint64_t> msgs_;
  double total_byte_hops_ = 0.0;
  std::uint64_t total_messages_ = 0;
  int max_hops_ = 0;
};

}  // namespace acr::net
