// Link-level traffic model over a 3D torus.
//
// The checkpoint-transfer and restart-transfer costs in the paper (Figs. 6,
// 8, 10) are dominated by contention on the links between the two replicas:
// every node of replica 1 sends its checkpoint to its buddy at the same
// time. This model routes every message with dimension-ordered minimal
// routing, accumulates bytes and message counts per directed link, and
// estimates the completion time of the bulk-synchronous phase as the time
// for the most loaded link to drain plus the longest path latency.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "topology/torus.h"

namespace acr::net {

/// alpha-beta-gamma machine parameters (Blue Gene/P-flavoured defaults).
struct NetworkParams {
  /// Per-message one-way latency, seconds.
  double alpha = 5e-6;
  /// Per-link bandwidth, bytes/second (BG/P torus link: 425 MB/s).
  double link_bandwidth = 425.0e6;
  /// Compute cost per byte-instruction, seconds. The checksum optimization
  /// costs ~4 instructions per byte (§4.2) => 4*gamma per byte. Calibrated
  /// to a BG/P PowerPC 450-class core without SIMD.
  double gamma = 3.0e-9;
  /// Local serialization (PUP pack) rate, bytes/second. Far below memcpy:
  /// the PUP traversal walks object graphs (calibrated so a 16 MiB Jacobi3D
  /// node checkpoint costs ~0.25 s, as in Fig. 8a).
  double pack_bandwidth = 70.0e6;
  /// Checkpoint comparison rate, bytes/second (streaming compare of two
  /// self-describing streams).
  double compare_bandwidth = 250.0e6;
  /// State reconstruction (PUP unpack + object rebuild) rate, bytes/second.
  double unpack_bandwidth = 60.0e6;

  double beta() const { return 1.0 / link_bandwidth; }
};

class LinkLoadModel {
 public:
  explicit LinkLoadModel(const topo::Torus3D& torus);

  /// Route one message and accumulate its bytes on every link it crosses.
  void add_message(int src_rank, int dst_rank, double bytes);

  /// One message of `bytes_each` for every (src, dst) pair.
  void add_traffic(const std::vector<std::pair<int, int>>& pairs,
                   double bytes_each);

  void clear();

  double link_bytes(int link_id) const { return bytes_.at(link_id); }
  std::uint64_t link_messages(int link_id) const { return msgs_.at(link_id); }

  double max_link_bytes() const;
  std::uint64_t max_link_messages() const;
  /// Longest routed path (hops) among the messages added.
  int max_hops() const { return max_hops_; }
  /// Total bytes*hops (aggregate network work).
  double total_byte_hops() const { return total_byte_hops_; }
  std::uint64_t total_messages() const { return total_messages_; }

  /// Completion time of the phase assuming all messages are injected
  /// simultaneously and the bottleneck link serializes its load:
  ///   T = alpha * max_hops + beta * max_link_bytes.
  double phase_time(const NetworkParams& p) const;

  const topo::Torus3D& torus() const { return torus_; }

 private:
  topo::Torus3D torus_;
  std::vector<double> bytes_;
  std::vector<std::uint64_t> msgs_;
  double total_byte_hops_ = 0.0;
  std::uint64_t total_messages_ = 0;
  int max_hops_ = 0;
};

}  // namespace acr::net
