// Per-link reliable delivery: acks, timeouts, retransmits, dedup.
//
// The ACR control protocols (consensus phases, buddy checksum exchange,
// spare promotion) assume the transport loses nothing, duplicates nothing,
// and preserves per-link order. `ReliableTransport` provides exactly that
// over a lossy wire, TCP-style:
//
//   sender                                   receiver
//   ------                                   --------
//   seq = next_seq++                         on data(seq):
//   transmit(seq); arm timer                   ack(seq) always
//   on timeout: attempts++                     if seq below window base or
//     attempts > budget -> give_up                already buffered: dup, done
//     else retransmit, backoff*=2 (capped)     else buffer; deliver the
//   on ack(seq): cancel timer, release           in-order run from base
//
// The class is message-agnostic: it tracks sequence numbers and timers and
// calls back through `Hooks` for everything environment-specific (actual
// transmission, timer scheduling, delivery, payload storage). That keeps
// `net` free of a dependency on `rt` — the cluster owns the payload store
// and the event engine and wires them in.
//
// Two robustness details shaped the design:
//   - Link generations. When an endpoint dies and a spare is promoted, the
//     promoted node must not be confused by in-flight frames or acks from
//     its predecessor's conversations. `reset_endpoint` bumps a per-link
//     generation; stale-generation frames are discarded on arrival.
//   - Window-base healing. A sender that gives up on frame N abandons it,
//     but the receiver is still waiting at base N. Every data frame carries
//     the sender's current window base so the receiver can skip abandoned
//     holes instead of wedging.
//
// All state lives in ordered containers: iteration order (and therefore the
// virtual-time event schedule) is identical across platforms and runs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>

namespace acr::net {

/// A directed link between two endpoints. Endpoint ids are assigned by the
/// owner (the cluster uses -1 for the manager and a dense role index for
/// compute nodes).
struct LinkKey {
  int src = 0;
  int dst = 0;
  friend auto operator<=>(const LinkKey&, const LinkKey&) = default;
};

struct ReliableConfig {
  /// Retransmit attempts before declaring the link failed. The first
  /// transmission does not count: budget 10 means up to 10 retransmits.
  int retry_budget = 10;
  /// Initial retransmit timeout floor (seconds).
  double base_timeout = 5e-4;
  /// Timeout multiplier per retransmit.
  double backoff = 2.0;
  /// Backoff cap (seconds); the per-frame floor below can raise it.
  double max_timeout = 8e-3;
  /// The timeout is floored at this multiple of the frame's one-way latency
  /// so that bulk frames (checkpoint images) in flight for several
  /// milliseconds are not spuriously retransmitted.
  double min_timeout_rtt_factor = 3.0;
  /// Receive window: frames more than this far ahead of the window base are
  /// dropped unacked (sender retransmits them once the base catches up).
  std::uint64_t window = 1024;
};

/// Aggregate delivery statistics across all links.
struct LinkStats {
  std::uint64_t data_frames = 0;     ///< first transmissions
  std::uint64_t retransmits = 0;     ///< timer-driven re-sends
  std::uint64_t acks_delivered = 0;  ///< acks that reached the sender
  std::uint64_t dup_frames = 0;      ///< duplicates suppressed at receiver
  std::uint64_t stale_generation = 0;  ///< frames/acks from a dead incarnation
  std::uint64_t delivered = 0;       ///< frames handed up in order
  std::uint64_t gave_up = 0;         ///< frames abandoned after retry budget
};

class ReliableTransport {
 public:
  using TimerId = std::uint64_t;
  using Seq = std::uint64_t;

  /// Environment callbacks. All are required.
  struct Hooks {
    /// Schedule `fn` after `delay` seconds; returns a cancellable id.
    std::function<TimerId(double delay, std::function<void()> fn)> schedule;
    /// Cancel a previously scheduled timer (no-op if already fired).
    std::function<void(TimerId)> cancel;
    /// Put frame `seq` on the wire (attempt 0 = first transmission).
    std::function<void(LinkKey, Seq, int attempt)> transmit;
    /// Put an ack for `seq` on the (reverse) wire.
    std::function<void(LinkKey, Seq)> send_ack;
    /// Frame `seq` is next in order: hand it up to the application.
    std::function<void(LinkKey, Seq)> deliver;
    /// The retry budget for `seq` is exhausted; the link is declared failed.
    std::function<void(LinkKey, Seq)> give_up;
    /// The payload for `seq` is no longer needed (acked, given up, or the
    /// endpoint was reset); the owner may free its stored copy.
    std::function<void(LinkKey, Seq)> release;
  };

  ReliableTransport(const ReliableConfig& cfg, Hooks hooks)
      : cfg_(cfg), hooks_(std::move(hooks)) {}

  const ReliableConfig& config() const { return cfg_; }
  const LinkStats& stats() const { return stats_; }

  /// Current link generation (stamped into frames by the owner and checked
  /// on arrival against the receiving end's view).
  std::uint64_t generation(LinkKey link) const;

  /// The sender's lowest unacked sequence (frames below it were delivered or
  /// abandoned). Stamped into data frames so the receiver can heal holes.
  Seq window_base(LinkKey link) const;

  /// Begin reliable transmission of a new frame; returns its sequence
  /// number. `one_way_latency` is the frame's nominal flight time and floors
  /// the retransmit timeout.
  Seq send(LinkKey link, double one_way_latency);

  /// A data frame arrived at `link.dst`. `sender_base` is the window base it
  /// carried; `generation` the link generation it was stamped with.
  void on_data_frame(LinkKey link, Seq seq, Seq sender_base,
                     std::uint64_t generation);

  /// An ack arrived back at `link.src`.
  void on_ack_frame(LinkKey link, Seq seq, std::uint64_t generation);

  /// The endpoint died (or a spare took over its role): abandon all
  /// conversations touching it, release their payloads without escalation,
  /// and bump generations so stragglers from the old incarnation are inert.
  void reset_endpoint(int endpoint);

  /// Outstanding unacked frames across all links (test/debug aid).
  std::size_t in_flight() const;

 private:
  struct Pending {
    int attempts = 0;       ///< retransmits performed so far
    double timeout = 0.0;   ///< current retransmit timeout
    double latency = 0.0;   ///< nominal one-way flight time
    TimerId timer = 0;
  };
  struct SenderState {
    Seq next_seq = 1;
    std::map<Seq, Pending> pending;
  };
  struct ReceiverState {
    Seq base = 1;             ///< next in-order sequence expected
    std::set<Seq> buffered;   ///< received out of order, not yet delivered
  };

  void arm_timer(LinkKey link, Seq seq);
  void on_timeout(LinkKey link, Seq seq);

  ReliableConfig cfg_;
  Hooks hooks_;
  LinkStats stats_;
  std::map<LinkKey, SenderState> senders_;
  std::map<LinkKey, ReceiverState> receivers_;
  std::map<LinkKey, std::uint64_t> generations_;
};

}  // namespace acr::net
