// Job-level ACR manager.
//
// Logically centralized orchestration: checkpoint timing (fixed or
// adaptive, §2.2), the cross-replica half of the consensus (collecting the
// two replica roots' reductions and broadcasting the decided iteration),
// commit/rollback decisions from the SDC verdict, and the three recovery
// schemes of §2.3. In the paper this role is played by designated runtime
// nodes; here it is one object whose messages to/from node agents travel
// through the same modelled network.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "acr/config.h"
#include "acr/node_agent.h"
#include "failure/adaptive_interval.h"
#include "rt/cluster.h"

namespace acr {

class Manager {
 public:
  /// Called when a spare node is promoted so the runtime can install a
  /// fresh NodeAgent on it; returns the agent (already start()ed).
  using AgentInstaller = std::function<NodeAgent*(rt::Node&)>;

  Manager(AcrEnv env, AgentInstaller installer);

  /// Register as the cluster's manager hook and arm the periodic timer.
  void start();

  /// Kick off an unscheduled checkpoint right now (failure-prediction hook,
  /// §2.2: "checkpointing right before a potential failure occurs").
  void request_immediate_checkpoint();

  /// An out-of-band failure observation (an idle spare died in a burst —
  /// nothing heartbeats a pooled spare, so the RAS injector reports it
  /// directly). Feeds the adaptive-interval estimator: correlated arrivals
  /// tighten the checkpoint period just like detected role failures.
  void note_out_of_band_failure();

  /// A repaired node re-entered the spare pool. If periodic checkpointing
  /// is off, doubled roles are relieved here; otherwise the next commit
  /// picks them up (un-doubling right after a commit loses the least
  /// progress to its rollback).
  void note_spare_available();

  /// Halt-control surface (--halt-after): stop starting new checkpoints,
  /// drain the newest verified epoch to the durable tier, then mark the job
  /// drained. With the tier disabled (or nothing verified) the drain
  /// completes as soon as no protocol is in flight.
  void request_drain();

  bool job_complete() const { return complete_; }
  bool job_failed() const { return failed_; }
  bool job_drained() const { return drained_; }

  // --- counters (cross-checked against the TraceLog in tests) ---------------
  std::uint64_t checkpoints_committed() const { return committed_; }
  std::uint64_t sdc_rollbacks() const { return sdc_rollbacks_; }
  std::uint64_t hard_failures_detected() const { return hard_failures_; }
  std::uint64_t recoveries_completed() const { return recoveries_; }
  std::uint64_t scratch_restarts() const { return scratch_restarts_; }
  double current_interval() const;
  std::uint64_t verified_epoch() const { return verified_epoch_; }
  /// Newest epoch every role of every replica has published to L2.
  std::uint64_t l2_newest_durable() const { return l2_durable_epoch_; }
  /// Fetch waves started (recoveries served from L2 instead of scratch).
  std::uint64_t l2_fetch_waves() const { return l2_fetch_waves_; }
  /// Urgent (drain/scavenge) flushes that actually published an image.
  std::uint64_t l2_scavenges() const { return l2_scavenges_; }

 private:
  enum class CkptPurpose { Periodic, Recovery };

  struct ActiveCheckpoint {
    std::uint64_t epoch = 0;
    std::uint8_t participants = 3;
    CkptPurpose purpose = CkptPurpose::Periodic;
    // Contributions are tracked by sender identity, not by countdown: a
    // duplicated or replayed report can never double-decrement a counter
    // and fire a phase transition early.
    int quiesced_target = 0;
    std::set<int> quiesced_replicas;
    int ready_target = 0;
    std::set<int> ready_replicas;
    int packdone_target = 0;  ///< recovery checkpoints only
    std::set<int> packdone_nodes;
    std::uint64_t max_progress = 0;
  };

  struct ActiveRecovery {
    ResilienceScheme scheme = ResilienceScheme::Strong;
    int crashed_replica = 0;
    int restore_target = 0;
    std::set<std::pair<int, int>> restored_nodes;
    /// Restore wave this recovery waits on; stale kRestoreDone from an
    /// abandoned wave (re-escalation) must not count.
    std::uint64_t barrier = 0;
    /// Bitmask of replicas whose nodes restored (their app epoch is bumped
    /// again when the resume barrier opens).
    std::uint8_t restored_replicas = 0;
    /// False for plain rollbacks (SDC) that reuse the restore barrier but
    /// are not hard-error recoveries.
    bool counts_as_recovery = true;
    /// Non-zero when this wave restores from the durable tier: the L2 epoch
    /// being fetched. A failure mid-wave retries the fetch (fresh barrier)
    /// rather than escalating to a rollback of state that no longer exists.
    std::uint64_t fetch_epoch = 0;
  };

  void on_message(const rt::Message& m);

  // Checkpoint path. Reports carry the sender's identity so contributions
  // are idempotent under a duplicating/reordering network.
  void request_checkpoint(std::uint8_t participants, CkptPurpose purpose);
  void handle_replica_quiesced(const wire::ProgressMsg& msg, int src_replica);
  void handle_replica_ready(const wire::ReadyMsg& msg, int src_replica);
  void try_start_pack();
  void handle_verdict(const wire::VerdictMsg& msg);
  void handle_pack_done(const wire::EpochMsg& msg, int src_node);
  void commit_checkpoint();
  void rollback_sdc();

  // Failure path.
  void handle_suspect(const wire::SuspectMsg& msg);
  void handle_suspect_role(int replica, int node_index);
  void start_recovery(int replica, int node_index);
  /// Strong-scheme recovery under xor/rs redundancy: the promoted spare is
  /// rebuilt intra-replica from its group's surviving images + parity
  /// instead of the Fig. 4a buddy transfer.
  void start_group_recovery(int replica, int node_index);
  /// Order the live group peers of (replica, node_index) to feed it rebuild
  /// pieces under `barrier`. False when the group cannot rebuild (another
  /// member dead): caller must fall back to scratch.
  bool route_xor_rebuild(int replica, int node_index, std::uint64_t barrier);
  /// RS variant: one RsRebuildCmd per survivor names the group's WHOLE dead
  /// set (node_index plus any dead_roles_ group-mates), so one wave covers
  /// a multi-loss burst. False when the losses exceed the parity budget or
  /// a needed survivor is itself dead: caller falls down the ladder.
  bool route_rs_rebuild(int replica, int node_index, std::uint64_t barrier);
  /// Dispatch to the xor/rs router for the configured scheme.
  bool route_group_rebuild(int replica, int node_index,
                           std::uint64_t barrier);
  ckpt::Scheme redundancy() const { return env_.config->redundancy; }
  void begin_recovery_checkpoint(int crashed_replica);
  void handle_restore_done(const wire::BarrierMsg& msg, int src_replica,
                           int src_node);
  void finish_recovery();
  /// Degradation path: a reliable link between two live endpoints exhausted
  /// its retry budget. Per-link protocol state is unrecoverable, so the job
  /// falls back to a scratch restart (reported out-of-band by the RAS).
  void handle_link_failure(int src_replica, int src_node, int dst_replica,
                           int dst_node);
  void escalate_rollback_all();
  /// Last rung of the recovery ladder. When `allow_fetch`, first tries the
  /// L2-fetch rung (try_fetch_from_durable); only a tier with no complete
  /// epoch (or a failed fetch wave retrying) actually restarts at zero.
  void restart_from_scratch(bool allow_fetch = true);
  bool promote_and_install(int replica, int node_index);

  // Durable tier (all no-ops unless env_.tier attached AND config tier
  // enabled — the gate keeping no-L2 runs byte-identical).
  bool tier_enabled() const;
  /// After the `epoch` commit: order the committing replicas to drain their
  /// new verified images to L2 (every flush_interval-th commit).
  void maybe_request_flush(std::uint64_t epoch, std::uint8_t participants);
  void handle_flush_done(const wire::FlushDoneMsg& msg, int src_replica,
                         int src_node);
  /// Promote spares for all dead roles and start a fetch wave targeting the
  /// newest fully-flushed L2 epoch. False when the tier is disabled or
  /// holds no complete epoch (caller falls through to scratch).
  bool try_fetch_from_durable();
  /// Drain progress: flush what is missing, else declare the job drained.
  void maybe_finish_drain();
  /// Shrink-to-survive epilogue: when idle with a spare in the pool and a
  /// doubled role outstanding, retire the lodger and run a (non-counting)
  /// recovery to move the role onto real hardware. One role per call.
  void maybe_undouble();

  // Completion.
  void handle_node_done(const rt::Message& m);
  bool final_verification_enabled() const;
  /// Launch the final verification checkpoint (or declare completion) once
  /// the preconditions hold; safe to call from any state change.
  void maybe_finalize();
  void declare_complete(int replica);

  // Timer.
  void schedule_tick();
  void tick();

  // RAS sweep: the external system component of the paper's failure model.
  // Periodically reconciles the manager's view with actual node liveness,
  // catching deaths whose heartbeat watchers are themselves dead.
  void guard_tick();

  // Plumbing.
  // Broadcast payloads are Buffers: every recipient's message shares the
  // one packed allocation (refcount bump per fan-out, no per-node copy).
  // `bytes_on_wire` overrides the modelled wire size (default: computed
  // from the payload).
  void broadcast(int replica, int tag, buf::Buffer payload,
                 double bytes_on_wire = -1.0);
  void broadcast_participants(std::uint8_t participants, int tag,
                              buf::Buffer payload,
                              double bytes_on_wire = -1.0);
  double now() const;
  rt::TraceLog& trace();

  AcrEnv env_;
  AgentInstaller installer_;
  failure::AdaptiveIntervalController adaptive_;

  std::optional<ActiveCheckpoint> ckpt_;
  std::optional<ActiveRecovery> recovery_;
  bool weak_recovery_pending_ = false;
  int weak_crashed_replica_ = 0;
  bool escalated_ = false;

  std::set<std::pair<int, int>> dead_roles_;
  std::array<std::set<int>, 2> done_nodes_;
  bool complete_ = false;
  bool failed_ = false;

  std::uint64_t next_epoch_ = 1;
  std::uint64_t next_barrier_ = 1;
  std::uint64_t verified_epoch_ = 0;
  /// Epoch of the in-flight final verification checkpoint (0 = none).
  std::uint64_t final_verify_epoch_ = 0;

  std::uint64_t committed_ = 0;
  std::uint64_t sdc_rollbacks_ = 0;
  std::uint64_t hard_failures_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t scratch_restarts_ = 0;

  // Durable-tier state (inert while the tier is disabled).
  bool drain_requested_ = false;
  bool drained_ = false;
  std::uint64_t l2_durable_epoch_ = 0;   ///< newest complete epoch seen
  std::uint64_t drain_flush_epoch_ = 0;  ///< epoch the drain last pushed
  std::uint64_t l2_fetch_waves_ = 0;
  std::uint64_t l2_scavenges_ = 0;

  rt::Engine::EventId tick_id_ = 0;
  bool tick_armed_ = false;
};

}  // namespace acr
