// Trace analytics: turns the runtime's TraceLog into the quantities the
// paper reports — per-checkpoint protocol latencies, recovery durations,
// failure counts, and the forward-path overhead estimate.
#pragma once

#include <vector>

#include "common/stats.h"
#include "rt/cluster.h"

namespace acr {

struct CheckpointTiming {
  double requested = 0.0;
  double iteration_decided = 0.0;  ///< 0 when the checkpoint was aborted
  double packed = 0.0;
  double committed = 0.0;          ///< 0 when aborted / rolled back
  bool committed_ok = false;

  double consensus_latency() const {
    return (packed > 0.0 ? packed : 0.0) - requested;
  }
  double total_latency() const {
    return committed_ok ? committed - requested : 0.0;
  }
};

struct RecoveryTiming {
  double started = 0.0;
  double completed = 0.0;
  double duration() const { return completed - started; }
};

struct TraceSummary {
  std::vector<CheckpointTiming> checkpoints;
  std::vector<RecoveryTiming> recoveries;
  std::size_t failures_injected = 0;
  std::size_t failures_detected = 0;
  std::size_t sdc_injected = 0;
  std::size_t sdc_detected = 0;
  std::size_t rollbacks = 0;
  double job_start = 0.0;
  double job_complete = 0.0;  ///< 0 when the job did not complete

  /// Mean heartbeat-to-detection latency over the failures that were both
  /// injected and detected (paired in order).
  double mean_detection_latency = 0.0;

  RunningStats consensus_latency_stats() const;
  RunningStats commit_latency_stats() const;
  RunningStats recovery_duration_stats() const;

  /// Fraction of wall time spent between checkpoint request and commit —
  /// the forward-path protocol overhead visible in the trace.
  double checkpoint_time_fraction() const;
};

/// Build the summary from a trace. Robust to aborted checkpoints and
/// incomplete runs (open intervals are dropped).
TraceSummary summarize_trace(const rt::TraceLog& trace);

}  // namespace acr
