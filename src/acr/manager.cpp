#include "acr/manager.h"

#include <bit>

#include "common/logging.h"

namespace acr {

namespace {
constexpr double kDrainRetry = 1e-4;  ///< in-flight drain poll interval (s)
}

Manager::Manager(AcrEnv env, AgentInstaller installer)
    : env_(env),
      installer_(std::move(installer)),
      adaptive_(env.config->adaptive_config) {
  ACR_REQUIRE(env_.cluster != nullptr && env_.config != nullptr,
              "manager needs a cluster and a config");
  if (env_.config->scheme == ResilienceScheme::Weak)
    ACR_REQUIRE(env_.config->periodic_checkpoints,
                "weak resilience recovers at the next periodic checkpoint; "
                "periodic checkpointing must be enabled");
  if (const char* err = validate_redundancy_config(
          *env_.config, env_.cluster->nodes_per_replica()))
    ACR_REQUIRE(false, err);
  if (const char* err = validate_tier_config(*env_.config))
    ACR_REQUIRE(false, err);
  if (env_.config->tier.enabled())
    ACR_REQUIRE(env_.tier != nullptr,
                "tier enabled but no DurableTier attached to the env");
}

bool Manager::tier_enabled() const {
  return env_.tier != nullptr && env_.config->tier.enabled();
}

double Manager::now() const { return env_.cluster->engine().now(); }
rt::TraceLog& Manager::trace() { return env_.cluster->trace(); }

double Manager::current_interval() const {
  if (env_.config->adaptive) return adaptive_.next_interval(now());
  return env_.config->checkpoint_interval;
}

void Manager::start() {
  env_.cluster->set_manager_hook(
      [this](const rt::Message& m) { on_message(m); });
  env_.cluster->set_link_failure_hook(
      [this](int sr, int sn, int dr, int dn) {
        handle_link_failure(sr, sn, dr, dn);
      });
  if (env_.config->periodic_checkpoints &&
      env_.config->scheme != ResilienceScheme::HardOnly)
    schedule_tick();
  guard_tick();
}

void Manager::guard_tick() {
  if (complete_ || failed_) return;
  // A node whose buddy, tree parent, and tree children are all dead has no
  // heartbeat observer left. The machine's RAS view (the scheduler knows
  // which nodes answer) closes that gap.
  for (int r = 0; r < 2; ++r) {
    for (int i = 0; i < env_.cluster->nodes_per_replica(); ++i) {
      if (env_.cluster->role_alive(r, i)) continue;
      if (dead_roles_.count({r, i})) continue;
      trace().record(now(), rt::TraceKind::HardFailureDetected, r, i,
                     "(RAS sweep)");
      handle_suspect_role(r, i);
      if (complete_ || failed_) return;
    }
  }
  env_.cluster->engine().schedule_after(
      10.0 * env_.config->heartbeat_timeout, [this]() { guard_tick(); });
}

void Manager::schedule_tick() {
  if (complete_ || failed_ || drain_requested_) return;
  if (!env_.config->periodic_checkpoints ||
      env_.config->scheme == ResilienceScheme::HardOnly)
    return;
  if (tick_armed_) env_.cluster->engine().cancel(tick_id_);
  tick_id_ = env_.cluster->engine().schedule_after(current_interval(),
                                                   [this]() { tick(); });
  tick_armed_ = true;
}

void Manager::tick() {
  tick_armed_ = false;
  if (complete_ || failed_ || drain_requested_) return;
  if (ckpt_ || recovery_) {
    // Busy with another protocol; retry shortly.
    tick_id_ = env_.cluster->engine().schedule_after(
        std::max(0.01, current_interval() * 0.1), [this]() { tick(); });
    tick_armed_ = true;
    return;
  }
  if (weak_recovery_pending_) {
    // Weak scheme: the crashed replica has been waiting for this periodic
    // checkpoint (Fig. 4c); run it on the healthy replica and ship it over.
    weak_recovery_pending_ = false;
    begin_recovery_checkpoint(weak_crashed_replica_);
    return;
  }
  request_checkpoint(/*participants=*/3, CkptPurpose::Periodic);
}

void Manager::request_immediate_checkpoint() {
  if (complete_ || failed_ || ckpt_ || recovery_) return;
  request_checkpoint(3, CkptPurpose::Periodic);
}

void Manager::note_out_of_band_failure() {
  if (complete_ || failed_) return;
  if (env_.config->adaptive) adaptive_.on_failure(now());
}

void Manager::note_spare_available() {
  if (env_.config->periodic_checkpoints &&
      env_.config->scheme != ResilienceScheme::HardOnly)
    return;  // the next commit relieves doubled roles at minimal cost
  maybe_undouble();
}

void Manager::broadcast(int replica, int tag, buf::Buffer payload,
                        double bytes_on_wire) {
  for (int i = 0; i < env_.cluster->nodes_per_replica(); ++i)
    env_.cluster->send_from_manager(replica, i, tag, payload, bytes_on_wire);
}

void Manager::broadcast_participants(std::uint8_t participants, int tag,
                                     buf::Buffer payload,
                                     double bytes_on_wire) {
  for (int r = 0; r < 2; ++r)
    if (participants & (1u << r)) broadcast(r, tag, payload, bytes_on_wire);
}

// ---------------------------------------------------------------------------
// Checkpoint path.
// ---------------------------------------------------------------------------

void Manager::request_checkpoint(std::uint8_t participants,
                                 CkptPurpose purpose) {
  ACR_REQUIRE(!ckpt_, "checkpoint already in progress");
  ActiveCheckpoint c;
  c.epoch = next_epoch_++;
  c.participants = participants;
  c.purpose = purpose;
  c.quiesced_target = std::popcount(participants);
  c.ready_target = c.quiesced_target;
  c.packdone_target = purpose == CkptPurpose::Recovery
                          ? env_.cluster->nodes_per_replica()
                          : 0;
  ckpt_ = c;
  trace().record(now(), rt::TraceKind::CheckpointRequested, -1, -1,
                 "epoch=" + std::to_string(c.epoch) +
                     (purpose == CkptPurpose::Recovery ? " (recovery)" : ""));
  wire::CkptRequestMsg msg{c.epoch, participants};
  broadcast_participants(participants, wire::kCheckpointRequest,
                         rt::pack_payload(msg));
}

void Manager::handle_replica_quiesced(const wire::ProgressMsg& msg,
                                      int src_replica) {
  if (!ckpt_ || msg.epoch != ckpt_->epoch) return;
  if (!(ckpt_->participants & (1u << src_replica))) return;
  if (!ckpt_->quiesced_replicas.insert(src_replica).second) return;  // dup
  ckpt_->max_progress = std::max(ckpt_->max_progress, msg.max_progress);
  if (static_cast<int>(ckpt_->quiesced_replicas.size()) <
      ckpt_->quiesced_target)
    return;
  trace().record(now(), rt::TraceKind::CheckpointIterationDecided, -1, -1,
                 "iteration=" + std::to_string(ckpt_->max_progress));
  wire::IterationMsg decided{ckpt_->epoch, ckpt_->max_progress};
  broadcast_participants(ckpt_->participants, wire::kIterationDecided,
                         rt::pack_payload(decided));
}

void Manager::handle_replica_ready(const wire::ReadyMsg& msg,
                                   int src_replica) {
  if (!ckpt_ || msg.epoch != ckpt_->epoch) return;
  if (!(ckpt_->participants & (1u << src_replica))) return;
  if (!ckpt_->ready_replicas.insert(src_replica).second) return;  // dup
  if (static_cast<int>(ckpt_->ready_replicas.size()) < ckpt_->ready_target)
    return;
  try_start_pack();
}

void Manager::try_start_pack() {
  if (!ckpt_) return;
  // Completion detection: every task is paused at the decided iteration; the
  // checkpoint may be cut only once the wires are silent too.
  for (int r = 0; r < 2; ++r) {
    if (!(ckpt_->participants & (1u << r))) continue;
    if (env_.cluster->in_flight_app_messages(r) > 0) {
      env_.cluster->engine().schedule_after(kDrainRetry,
                                            [this]() { try_start_pack(); });
      return;
    }
  }
  trace().record(now(), rt::TraceKind::CheckpointPacked, -1, -1,
                 "epoch=" + std::to_string(ckpt_->epoch));
  wire::EpochMsg msg{ckpt_->epoch};
  broadcast_participants(ckpt_->participants, wire::kPackCommand,
                         rt::pack_payload(msg));
}

void Manager::handle_verdict(const wire::VerdictMsg& msg) {
  if (!ckpt_ || msg.epoch != ckpt_->epoch) return;
  if (msg.match) {
    commit_checkpoint();
  } else {
    trace().record(now(), rt::TraceKind::SdcDetected, -1, -1,
                   "mismatched_nodes=" + std::to_string(msg.mismatched_nodes));
    rollback_sdc();
  }
}

void Manager::commit_checkpoint() {
  verified_epoch_ = ckpt_->epoch;
  ++committed_;
  trace().record(now(), rt::TraceKind::CheckpointCommitted, -1, -1,
                 "epoch=" + std::to_string(ckpt_->epoch));
  wire::EpochMsg msg{ckpt_->epoch};
  broadcast_participants(3, wire::kCommit, rt::pack_payload(msg));
  bool was_final = final_verify_epoch_ != 0 && ckpt_->epoch == final_verify_epoch_;
  std::uint64_t epoch = ckpt_->epoch;
  ckpt_.reset();
  if (was_final) {
    final_verify_epoch_ = 0;
    declare_complete(-1);
    return;
  }
  // The durable tier drains asynchronously AFTER the commit: the flush
  // never delays the next checkpoint barrier (separate command, separate
  // per-node L2 pipe).
  maybe_request_flush(epoch, 3);
  schedule_tick();
  maybe_finalize();
  // Right after a commit is the cheapest moment to relieve a doubled role:
  // the rollback in its recovery wave loses almost nothing.
  maybe_undouble();
  maybe_finish_drain();
}

void Manager::rollback_sdc() {
  ++sdc_rollbacks_;
  final_verify_epoch_ = 0;
  // A detected SDC is a failure observation for the adaptive controller.
  if (env_.config->adaptive) adaptive_.on_failure(now());
  if (verified_epoch_ == 0) {
    // Nothing verified to fall back to: the corruption predates the first
    // checkpoint, so the run restarts from scratch.
    ckpt_.reset();
    restart_from_scratch();
    return;
  }
  trace().record(now(), rt::TraceKind::Rollback, -1, -1,
                 "to epoch=" + std::to_string(verified_epoch_));
  env_.cluster->bump_app_epoch(0);
  env_.cluster->bump_app_epoch(1);
  for (int r = 0; r < 2; ++r) done_nodes_[static_cast<std::size_t>(r)].clear();
  std::uint64_t barrier_id = next_barrier_++;
  wire::RestoreCmdMsg msg{verified_epoch_, barrier_id};
  broadcast_participants(3, wire::kRollbackSdc, rt::pack_payload(msg));
  ckpt_.reset();
  // Both replicas restore; the resume barrier (finish_recovery) reopens
  // the world once every node reports in.
  ActiveRecovery barrier;
  barrier.crashed_replica = -1;
  barrier.restore_target = 2 * env_.cluster->nodes_per_replica();
  barrier.restored_replicas = 3;
  barrier.counts_as_recovery = false;
  barrier.barrier = barrier_id;
  recovery_ = barrier;
}

void Manager::handle_pack_done(const wire::EpochMsg& msg, int src_node) {
  if (!ckpt_ || msg.epoch != ckpt_->epoch ||
      ckpt_->purpose != CkptPurpose::Recovery)
    return;
  if (!ckpt_->packdone_nodes.insert(src_node).second) return;  // dup
  if (static_cast<int>(ckpt_->packdone_nodes.size()) < ckpt_->packdone_target)
    return;
  // Healthy replica fully packed. Ship every node's fresh checkpoint to its
  // buddy in the crashed replica, commit it on the healthy side, and wait
  // for the crashed side to restore.
  ACR_REQUIRE(recovery_, "recovery checkpoint without active recovery");
  int crashed = recovery_->crashed_replica;
  int healthy = 1 - crashed;
  env_.cluster->bump_app_epoch(crashed);
  done_nodes_[static_cast<std::size_t>(crashed)].clear();
  wire::BarrierMsg bar{recovery_->barrier};
  broadcast(healthy, wire::kSendCandidateToBuddy, rt::pack_payload(bar));
  verified_epoch_ = ckpt_->epoch;
  ++committed_;
  wire::EpochMsg commit{ckpt_->epoch};
  broadcast(healthy, wire::kCommit, rt::pack_payload(commit));
  trace().record(now(), rt::TraceKind::CheckpointCommitted, healthy, -1,
                 "recovery epoch=" + std::to_string(ckpt_->epoch));
  // Only the healthy replica holds the new epoch; the crashed side's roles
  // re-flush after their restores land (maybe_reflush_after_restore).
  maybe_request_flush(ckpt_->epoch,
                      static_cast<std::uint8_t>(1u << healthy));
  ckpt_.reset();
}

// ---------------------------------------------------------------------------
// Failure path.
// ---------------------------------------------------------------------------

void Manager::handle_suspect(const wire::SuspectMsg& msg) {
  if (env_.cluster->role_alive(msg.replica, msg.node_index)) return;  // stale
  trace().record(now(), rt::TraceKind::HardFailureDetected, msg.replica,
                 msg.node_index);
  handle_suspect_role(msg.replica, msg.node_index);
}

void Manager::handle_suspect_role(int replica, int node_index) {
  if (complete_ || failed_) return;
  auto role = std::make_pair(replica, node_index);
  if (dead_roles_.count(role)) return;
  dead_roles_.insert(role);
  ++hard_failures_;
  if (env_.config->adaptive) adaptive_.on_failure(now());

  if (ckpt_) {
    // A death mid-checkpoint wedges the reductions; abort and resume. The
    // abort names its epoch so stragglers cannot cancel a later round. The
    // epoch tag rides in the frame header on a real wire, so the abort is
    // charged at header-only cost.
    wire::EpochMsg abort{ckpt_->epoch};
    broadcast_participants(ckpt_->participants, wire::kAbortConsensus,
                           rt::pack_payload(abort),
                           static_cast<double>(rt::kMessageHeaderBytes));
    bool was_recovery = ckpt_->purpose == CkptPurpose::Recovery;
    if (final_verify_epoch_ == ckpt_->epoch) final_verify_epoch_ = 0;
    ckpt_.reset();
    if (was_recovery) {
      // The healthy replica broke while saving the crashed one: fall back
      // to a verified-epoch rollback of everything.
      escalate_rollback_all();
      return;
    }
  }
  if (recovery_ && recovery_->fetch_epoch != 0) {
    // A node died while its wave was reading from L2. The tier still holds
    // the epoch (publishes are durable), so retry the fetch under a fresh
    // barrier instead of escalating to an L1 rollback of state that no
    // longer exists anywhere in memory.
    recovery_.reset();
    restart_from_scratch();
    return;
  }
  if (recovery_ || weak_recovery_pending_) {
    // Overlapping failures: the paper's answer is a rollback to the
    // previous checkpoint (or scratch); see §2.3 weak/medium caveats.
    // The current recovery's restore wave is abandoned (its barrier id
    // becomes stale) and a wider one starts.
    recovery_.reset();
    escalate_rollback_all();
    return;
  }
  trace().record(now(), rt::TraceKind::RecoveryStarted, role.first,
                 role.second, resilience_scheme_name(env_.config->scheme));
  start_recovery(role.first, role.second);
}

bool Manager::promote_and_install(int replica, int node_index) {
  rt::Node* fresh = env_.cluster->promote_spare(replica, node_index);
  if (fresh == nullptr && env_.config->degrade == DegradeMode::Shrink) {
    // Shrink-to-survive: the pool is empty, but the job need not die —
    // remap the role onto a surviving node of the same replica (doubling
    // up) and continue with degraded redundancy until a repair refills the
    // pool. Logical indices are preserved, so buddy/group/tree routing is
    // untouched; the role-table repoint IS the routing rewrite.
    fresh = env_.cluster->double_up(replica, node_index);
  }
  if (fresh == nullptr) {
    failed_ = true;
    trace().record(now(), rt::TraceKind::JobComplete, -1, -1,
                   env_.config->degrade == DegradeMode::Shrink
                       ? "FAILED: spare pool exhausted and no surviving host"
                       : "FAILED: spare pool exhausted");
    return false;
  }
  // Gate until the restore lands: traffic addressed to the role belongs to
  // the timeline being recovered.
  fresh->set_gated(true);
  installer_(*fresh);
  return true;
}

void Manager::maybe_undouble() {
  if (complete_ || failed_ || ckpt_ || recovery_ || weak_recovery_pending_)
    return;
  // Un-doubling rides the standard recovery machinery; only the Strong
  // scheme's buddy/xor restore re-mans a role without a single-replica
  // recovery checkpoint, so other schemes keep their doubled roles.
  if (env_.config->scheme != ResilienceScheme::Strong) return;
  if (redundancy() == ckpt::Scheme::Local) return;  // would cost a scratch
  if (verified_epoch_ == 0) return;
  if (env_.cluster->spares_remaining() == 0) return;
  auto doubled = env_.cluster->doubled_roles();
  if (doubled.empty()) return;
  auto [r, i] = doubled.front();
  // Retire the lodger (the role goes unmanned; the cluster traces
  // RoleUndoubled) and promote a real spare through the usual wave. Not a
  // failure: the wave neither traces RecoveryStarted nor bumps counters.
  env_.cluster->retire_lodger(r, i);
  dead_roles_.insert({r, i});
  start_recovery(r, i);
  if (recovery_) recovery_->counts_as_recovery = false;
}

void Manager::start_recovery(int replica, int node_index) {
  if (!promote_and_install(replica, node_index)) return;

  if (redundancy() == ckpt::Scheme::Local) {
    // No remote copy exists anywhere: the dead node's image is simply gone.
    restart_from_scratch();
    return;
  }
  if (redundancy() == ckpt::Scheme::Xor || redundancy() == ckpt::Scheme::Rs) {
    // Validation pins xor/rs to the strong scheme; the group rebuild
    // replaces the Fig. 4a buddy transfer.
    start_group_recovery(replica, node_index);
    return;
  }

  switch (env_.config->scheme) {
    case ResilienceScheme::Strong: {
      if (verified_epoch_ == 0) {
        restart_from_scratch();
        return;
      }
      int buddy_replica = 1 - replica;
      if (!env_.cluster->role_alive(buddy_replica, node_index)) {
        // Both members of the pair are gone: the checkpoint is lost.
        restart_from_scratch();
        return;
      }
      env_.cluster->bump_app_epoch(replica);
      done_nodes_[static_cast<std::size_t>(replica)].clear();
      std::uint64_t barrier = next_barrier_++;
      // Buddy ships its verified checkpoint to the fresh node; everyone
      // else in the crashed replica rolls back locally (Fig. 4a).
      wire::BarrierMsg bar{barrier};
      env_.cluster->send_from_manager(buddy_replica, node_index,
                                      wire::kSendVerifiedToBuddy,
                                      rt::pack_payload(bar));
      wire::RestoreCmdMsg roll{verified_epoch_, barrier};
      for (int j = 0; j < env_.cluster->nodes_per_replica(); ++j) {
        if (j == node_index) continue;
        env_.cluster->send_from_manager(replica, j, wire::kRollbackHard,
                                        rt::pack_payload(roll));
      }
      ActiveRecovery rec;
      rec.scheme = ResilienceScheme::Strong;
      rec.crashed_replica = replica;
      rec.restore_target = env_.cluster->nodes_per_replica();
      rec.restored_replicas = static_cast<std::uint8_t>(1u << replica);
      rec.barrier = barrier;
      recovery_ = rec;
      break;
    }
    case ResilienceScheme::Medium:
    case ResilienceScheme::HardOnly:
      begin_recovery_checkpoint(replica);
      break;
    case ResilienceScheme::Weak:
      // Fig. 4c: crashed replica waits for the next periodic checkpoint.
      weak_recovery_pending_ = true;
      weak_crashed_replica_ = replica;
      broadcast(replica, wire::kHalt, {});
      break;
  }
}

bool Manager::route_xor_rebuild(int replica, int node_index,
                                std::uint64_t barrier) {
  const ckpt::GroupMap& groups = env_.cluster->ckpt_groups();
  std::vector<int> peers = env_.cluster->live_group_peers(replica, node_index);
  if (static_cast<int>(peers.size()) < groups.group_size_of(node_index) - 1)
    return false;  // another group member is dead: parity cannot cover both
  wire::XorRebuildCmd cmd{node_index, barrier};
  for (int p : peers)
    env_.cluster->send_from_manager(replica, p, wire::kXorRebuildSend,
                                    rt::pack_payload(cmd));
  return true;
}

bool Manager::route_rs_rebuild(int replica, int node_index,
                               std::uint64_t barrier) {
  const ckpt::GroupMap& groups = env_.cluster->ckpt_groups();
  wire::RsRebuildCmd cmd;
  cmd.barrier = barrier;
  std::vector<int> survivors;
  for (int i : groups.group_members(node_index)) {
    if (i == node_index || dead_roles_.count({replica, i}))
      cmd.dead_indices.push_back(i);
    else
      survivors.push_back(i);
  }
  if (static_cast<int>(cmd.dead_indices.size()) > env_.config->rs_parity)
    return false;  // more losses than parity blocks: undecodable
  // A survivor that is dead-but-unreported cannot feed a piece; bail to the
  // ladder now rather than strand the wave (its report escalates anyway).
  for (int i : survivors)
    if (!env_.cluster->role_alive(replica, i)) return false;
  for (int i : survivors)
    env_.cluster->send_from_manager(replica, i, wire::kRsRebuildSend,
                                    rt::pack_payload(cmd));
  return true;
}

bool Manager::route_group_rebuild(int replica, int node_index,
                                  std::uint64_t barrier) {
  return redundancy() == ckpt::Scheme::Rs
             ? route_rs_rebuild(replica, node_index, barrier)
             : route_xor_rebuild(replica, node_index, barrier);
}

void Manager::start_group_recovery(int replica, int node_index) {
  if (verified_epoch_ == 0) {
    restart_from_scratch();
    return;
  }
  // Under rs a group absorbs up to rs_parity losses in ONE wave: a burst
  // can drop a second member before its suspect report lands, and routing
  // around it as if it were a survivor would strand the rebuild. Sweep the
  // group for dead-but-unreported members and fold them into this wave —
  // inserting them into dead_roles_ both widens route_rs_rebuild's dead
  // set and makes handle_suspect_role drop their late reports. Xor keeps
  // its single-loss budget: a second dead member fails the peer-count
  // check in route_xor_rebuild and falls down the ladder.
  std::vector<int> dead{node_index};
  if (redundancy() == ckpt::Scheme::Rs) {
    for (int i : env_.cluster->ckpt_groups().group_members(node_index)) {
      auto role = std::make_pair(replica, i);
      if (i == node_index || env_.cluster->role_alive(replica, i) ||
          dead_roles_.count(role))
        continue;
      trace().record(now(), rt::TraceKind::HardFailureDetected, replica, i);
      dead_roles_.insert(role);
      ++hard_failures_;
      if (env_.config->adaptive) adaptive_.on_failure(now());
      if (!promote_and_install(replica, i)) return;
      dead.push_back(i);
    }
  }
  env_.cluster->bump_app_epoch(replica);
  done_nodes_[static_cast<std::size_t>(replica)].clear();
  std::uint64_t barrier = next_barrier_++;
  // The group's survivors feed the fresh node image+parity pieces; everyone
  // else in the crashed replica rolls back locally, exactly as in the
  // partner flow. The rebuild never crosses replicas, so the buddy's
  // liveness is irrelevant here.
  if (!route_group_rebuild(replica, node_index, barrier)) {
    restart_from_scratch();
    return;
  }
  wire::RestoreCmdMsg roll{verified_epoch_, barrier};
  for (int j = 0; j < env_.cluster->nodes_per_replica(); ++j) {
    if (std::find(dead.begin(), dead.end(), j) != dead.end()) continue;
    env_.cluster->send_from_manager(replica, j, wire::kRollbackHard,
                                    rt::pack_payload(roll));
  }
  ActiveRecovery rec;
  rec.scheme = ResilienceScheme::Strong;
  rec.crashed_replica = replica;
  rec.restore_target = env_.cluster->nodes_per_replica();
  rec.restored_replicas = static_cast<std::uint8_t>(1u << replica);
  rec.barrier = barrier;
  recovery_ = rec;
}

void Manager::begin_recovery_checkpoint(int crashed_replica) {
  ActiveRecovery rec;
  rec.scheme = env_.config->scheme;
  rec.crashed_replica = crashed_replica;
  rec.restore_target = env_.cluster->nodes_per_replica();
  rec.restored_replicas = static_cast<std::uint8_t>(1u << crashed_replica);
  rec.barrier = next_barrier_++;
  recovery_ = rec;
  std::uint8_t healthy_mask =
      static_cast<std::uint8_t>(1u << (1 - crashed_replica));
  request_checkpoint(healthy_mask, CkptPurpose::Recovery);
}

void Manager::handle_restore_done(const wire::BarrierMsg& msg,
                                  int src_replica, int src_node) {
  if (!recovery_ || msg.barrier != recovery_->barrier) return;
  if (!recovery_->restored_nodes.insert({src_replica, src_node}).second)
    return;  // duplicate report
  if (static_cast<int>(recovery_->restored_nodes.size()) <
      recovery_->restore_target)
    return;
  finish_recovery();
}

void Manager::handle_link_failure(int src_replica, int src_node,
                                  int dst_replica, int dst_node) {
  if (complete_ || failed_) return;
  // The cluster reports this only for live-live links, but liveness may
  // have changed while the report was in flight; a dead endpoint means the
  // ordinary failure path (heartbeats / RAS sweep) owns the recovery.
  auto alive = [this](int r, int i) {
    return r < 0 || env_.cluster->role_alive(r, i);
  };
  if (!alive(src_replica, src_node) || !alive(dst_replica, dst_node)) return;
  log_warn("acr.manager") << "link (" << src_replica << "," << src_node
                          << ") -> (" << dst_replica << "," << dst_node
                          << ") exhausted its retry budget; degrading to "
                             "scratch restart";
  if (env_.config->adaptive) adaptive_.on_failure(now());
  recovery_.reset();
  ckpt_.reset();
  restart_from_scratch();
}

void Manager::finish_recovery() {
  ACR_REQUIRE(recovery_, "finish_recovery without active recovery");
  if (recovery_->counts_as_recovery) {
    trace().record(now(), rt::TraceKind::RecoveryCompleted,
                   recovery_->crashed_replica);
    ++recoveries_;
  }
  // Second epoch bump at the barrier: anything sent between the restores
  // and this go is from the abandoned timeline and must not be delivered.
  for (int r = 0; r < 2; ++r)
    if (recovery_->restored_replicas & (1u << r))
      env_.cluster->bump_app_epoch(r);
  recovery_.reset();
  dead_roles_.clear();
  escalated_ = false;
  broadcast_participants(3, wire::kResume, {});
  schedule_tick();
  maybe_finalize();
  maybe_finish_drain();
}

void Manager::escalate_rollback_all() {
  // Re-entrant: overlapping failures during an escalation abandon the
  // current restore wave (its barrier id) and start a fresh one that
  // covers the newly dead roles as well.
  if (verified_epoch_ == 0 || redundancy() == ckpt::Scheme::Local) {
    restart_from_scratch();
    return;
  }
  // Roles needing an assisted restore: currently dead ones, plus any
  // role already under recovery — its occupant may be a freshly promoted
  // spare that holds no checkpoint yet.
  for (int r = 0; r < 2; ++r)
    for (int i = 0; i < env_.cluster->nodes_per_replica(); ++i)
      if (!env_.cluster->role_alive(r, i)) dead_roles_.insert({r, i});
  std::vector<std::pair<int, int>> dead(dead_roles_.begin(),
                                        dead_roles_.end());
  if (redundancy() == ckpt::Scheme::Xor || redundancy() == ckpt::Scheme::Rs) {
    // The rebuild is intra-replica: a buddy-pair loss is survivable, but a
    // group can only lose as many members as it has parity blocks — one
    // under xor (single-parity RAID-5), rs_parity under rs.
    const ckpt::GroupMap& groups = env_.cluster->ckpt_groups();
    int budget = redundancy() == ckpt::Scheme::Rs ? env_.config->rs_parity : 1;
    std::map<std::pair<int, int>, int> dead_per_group;
    for (const auto& [r, i] : dead) ++dead_per_group[{r, groups.group_of(i)}];
    for (const auto& [group, count] : dead_per_group) {
      if (count > budget) {
        restart_from_scratch();
        return;
      }
    }
  } else {
    // Partner: if any buddy pair is fully gone, the verified checkpoint
    // cannot be reassembled.
    for (const auto& [r, i] : dead) {
      if (std::find(dead.begin(), dead.end(), std::make_pair(1 - r, i)) !=
          dead.end()) {
        restart_from_scratch();
        return;
      }
    }
  }
  for (const auto& [r, i] : dead) {
    if (env_.cluster->role_alive(r, i)) continue;  // spare already in place
    if (!promote_and_install(r, i)) return;
  }
  escalated_ = true;
  weak_recovery_pending_ = false;
  std::uint64_t barrier_id = next_barrier_++;
  // A second failure mid-recovery lands here with the abandoned wave's
  // rollback/rebuild commands possibly still in flight. Raise every live
  // agent's restore floor past those waves so a stale command cannot
  // re-apply old state after this wave's restores land — waves are
  // serialized, never interleaved.
  for (int r = 0; r < 2; ++r) {
    for (int i = 0; i < env_.cluster->nodes_per_replica(); ++i) {
      rt::Node* n = env_.cluster->role_node(r, i);
      if (n == nullptr || n->service() == nullptr) continue;
      static_cast<NodeAgent*>(n->service())->quash_restores_through(
          barrier_id - 1);
    }
  }
  trace().record(now(), rt::TraceKind::Rollback, -1, -1,
                 "escalated rollback to epoch=" +
                     std::to_string(verified_epoch_) + " barrier=" +
                     std::to_string(barrier_id));
  env_.cluster->bump_app_epoch(0);
  env_.cluster->bump_app_epoch(1);
  done_nodes_[0].clear();
  done_nodes_[1].clear();
  wire::RestoreCmdMsg roll{verified_epoch_, barrier_id};
  wire::BarrierMsg bar{barrier_id};
  int restores = 0;
  // RS routes ONE command per group covering its whole dead set; don't
  // re-route for the group's second dead member.
  std::set<std::pair<int, int>> rs_routed_groups;
  for (int r = 0; r < 2; ++r) {
    for (int i = 0; i < env_.cluster->nodes_per_replica(); ++i) {
      bool was_dead =
          std::find(dead.begin(), dead.end(), std::make_pair(r, i)) !=
          dead.end();
      if (was_dead) {
        if (redundancy() == ckpt::Scheme::Xor) {
          // Group survivors feed the spare; the per-group dead count check
          // above guarantees they are all genuinely alive.
          bool routed = route_xor_rebuild(r, i, barrier_id);
          ACR_REQUIRE(routed, "xor escalation with an unrebuildable group");
        } else if (redundancy() == ckpt::Scheme::Rs) {
          const ckpt::GroupMap& groups = env_.cluster->ckpt_groups();
          if (rs_routed_groups.insert({r, groups.group_of(i)}).second) {
            bool routed = route_rs_rebuild(r, i, barrier_id);
            ACR_REQUIRE(routed, "rs escalation with an unrebuildable group");
          }
        } else {
          env_.cluster->send_from_manager(1 - r, i,
                                          wire::kSendVerifiedToBuddy,
                                          rt::pack_payload(bar));
        }
      } else {
        env_.cluster->send_from_manager(r, i, wire::kRollbackHard,
                                        rt::pack_payload(roll));
      }
      ++restores;
    }
  }
  ActiveRecovery rec;
  rec.scheme = env_.config->scheme;
  rec.crashed_replica = -1;
  rec.restore_target = restores;
  rec.restored_replicas = 3;
  rec.barrier = barrier_id;
  recovery_ = rec;
}

void Manager::restart_from_scratch(bool allow_fetch) {
  // Recovery-ladder rung 2: before throwing all progress away, restore the
  // whole job from the newest fully-flushed L2 epoch. Every pre-tier call
  // site of the scratch path goes through here, so enabling the tier
  // upgrades them all; a failed/impossible fetch re-enters with
  // allow_fetch=false and genuinely restarts at iteration zero.
  if (allow_fetch && try_fetch_from_durable()) return;
  ++scratch_restarts_;
  trace().record(now(), rt::TraceKind::Rollback, -1, -1,
                 "restart from scratch");
  // Modelled as a job relaunch by the scheduler: promote spares for every
  // dead role — including failures that have not been *reported* yet (a
  // simultaneous buddy-pair loss reaches here on the first report).
  for (int r = 0; r < 2; ++r) {
    for (int i = 0; i < env_.cluster->nodes_per_replica(); ++i) {
      if (!env_.cluster->role_alive(r, i)) {
        if (!promote_and_install(r, i)) return;
      }
    }
  }
  dead_roles_.clear();
  weak_recovery_pending_ = false;
  escalated_ = false;
  recovery_.reset();
  ckpt_.reset();
  verified_epoch_ = 0;
  final_verify_epoch_ = 0;
  env_.cluster->bump_app_epoch(0);
  env_.cluster->bump_app_epoch(1);
  done_nodes_[0].clear();
  done_nodes_[1].clear();
  // The scratch restart is itself a restore wave: give it a barrier id and
  // raise every agent's restore floor past the abandoned waves. Rollback or
  // rebuild commands of those waves may still be in flight; replaying one
  // after the reset would restore pre-restart state on part of the cluster
  // and wedge the application.
  std::uint64_t barrier = next_barrier_++;
  env_.cluster->engine().schedule_after(0.0, [this, barrier]() {
    for (int r = 0; r < 2; ++r) {
      for (int i = 0; i < env_.cluster->nodes_per_replica(); ++i) {
        rt::Node& n = env_.cluster->node_at(r, i);
        n.create_tasks();
        installer_(n)->quash_restores_through(barrier);
        n.start_tasks();
      }
    }
  });
  broadcast_participants(3, wire::kResume, {});
  schedule_tick();
  maybe_finish_drain();
}

// ---------------------------------------------------------------------------
// Durable tier: flush orchestration, fetch waves, drain.
// ---------------------------------------------------------------------------

void Manager::maybe_request_flush(std::uint64_t epoch,
                                  std::uint8_t participants) {
  if (!tier_enabled()) return;
  if (committed_ % env_.config->tier.flush_interval != 0) return;
  wire::FlushCmdMsg msg{epoch, 0};
  broadcast_participants(participants, wire::kFlushCommand,
                         rt::pack_payload(msg));
}

void Manager::handle_flush_done(const wire::FlushDoneMsg& msg,
                                int src_replica, int src_node) {
  if (!tier_enabled()) return;
  if (msg.scavenged) ++l2_scavenges_;
  std::uint64_t complete = env_.tier->newest_complete_epoch();
  if (complete > l2_durable_epoch_) {
    l2_durable_epoch_ = complete;
    if (env_.cluster->trace_enabled(rt::kTraceTier))
      trace().record(now(), rt::TraceKind::EpochDurable, -1, -1,
                     "epoch=" + std::to_string(complete));
    // Older L2 epochs are strictly dominated; keep the boundary only.
    env_.tier->prune(complete);
    if (env_.config->adaptive) {
      // Feed the adaptive controller the amortized flush cost per
      // checkpoint period so its Young/Daly delta reflects both tiers.
      const ckpt::TierConfig& t = env_.config->tier;
      double bytes = static_cast<double>(
          env_.tier->blob_bytes(src_replica, src_node, complete));
      double per_flush = t.latency + bytes / t.bandwidth;
      adaptive_.set_flush_overhead(
          per_flush / static_cast<double>(t.flush_interval));
    }
  }
  maybe_finish_drain();
}

bool Manager::try_fetch_from_durable() {
  if (!tier_enabled()) return false;
  std::uint64_t epoch = env_.tier->newest_complete_epoch();
  if (epoch == 0) return false;
  // A fetch wave is a full-job relaunch served from L2: every dead role
  // gets a spare (or doubles up), every live role abandons its timeline.
  for (int r = 0; r < 2; ++r) {
    for (int i = 0; i < env_.cluster->nodes_per_replica(); ++i) {
      if (!env_.cluster->role_alive(r, i)) {
        if (!promote_and_install(r, i)) return true;  // pool exhausted: over
      }
    }
  }
  dead_roles_.clear();
  weak_recovery_pending_ = false;
  escalated_ = false;
  recovery_.reset();
  ckpt_.reset();
  final_verify_epoch_ = 0;
  verified_epoch_ = epoch;
  env_.cluster->bump_app_epoch(0);
  env_.cluster->bump_app_epoch(1);
  done_nodes_[0].clear();
  done_nodes_[1].clear();
  std::uint64_t barrier = next_barrier_++;
  // Abandoned waves' rollback/rebuild commands may still be in flight;
  // raise every agent's restore floor so only THIS wave's restores apply.
  for (int r = 0; r < 2; ++r) {
    for (int i = 0; i < env_.cluster->nodes_per_replica(); ++i) {
      rt::Node* n = env_.cluster->role_node(r, i);
      if (n == nullptr || n->service() == nullptr) continue;
      static_cast<NodeAgent*>(n->service())->quash_restores_through(barrier -
                                                                    1);
    }
  }
  ++l2_fetch_waves_;
  if (env_.cluster->trace_enabled(rt::kTraceTier))
    trace().record(now(), rt::TraceKind::FetchStarted, -1, -1,
                   "wave epoch=" + std::to_string(epoch) +
                       " barrier=" + std::to_string(barrier));
  wire::RestoreCmdMsg cmd{epoch, barrier};
  for (int r = 0; r < 2; ++r)
    broadcast(r, wire::kFetchFromDurable, rt::pack_payload(cmd));
  ActiveRecovery rec;
  rec.scheme = env_.config->scheme;
  rec.crashed_replica = -1;
  rec.restore_target = 2 * env_.cluster->nodes_per_replica();
  rec.restored_replicas = 3;
  rec.counts_as_recovery = false;
  rec.barrier = barrier;
  rec.fetch_epoch = epoch;
  recovery_ = rec;
  return true;
}

void Manager::request_drain() {
  if (complete_ || failed_ || drain_requested_) return;
  drain_requested_ = true;
  if (env_.cluster->trace_enabled(rt::kTraceTier))
    trace().record(now(), rt::TraceKind::DrainRequested, -1, -1,
                   "verified epoch=" + std::to_string(verified_epoch_));
  if (tick_armed_) {
    env_.cluster->engine().cancel(tick_id_);
    tick_armed_ = false;
  }
  maybe_finish_drain();
}

void Manager::maybe_finish_drain() {
  if (!drain_requested_ || drained_ || complete_ || failed_) return;
  if (ckpt_ || recovery_ || weak_recovery_pending_) return;
  if (tier_enabled() && verified_epoch_ != 0 &&
      l2_durable_epoch_ < verified_epoch_) {
    // The newest verified epoch is not fully durable yet: push urgent
    // (scavenge-class) flushes to exactly the roles whose blobs are
    // missing, once per target epoch.
    if (drain_flush_epoch_ < verified_epoch_) {
      drain_flush_epoch_ = verified_epoch_;
      wire::FlushCmdMsg msg{verified_epoch_, 1};
      for (int r = 0; r < 2; ++r) {
        for (int i = 0; i < env_.cluster->nodes_per_replica(); ++i) {
          if (env_.tier->has(r, i, verified_epoch_)) continue;
          env_.cluster->send_from_manager(r, i, wire::kFlushCommand,
                                          rt::pack_payload(msg));
        }
      }
    }
    return;  // handle_flush_done re-enters when the drain makes progress
  }
  drained_ = true;
  if (env_.cluster->trace_enabled(rt::kTraceTier))
    trace().record(now(), rt::TraceKind::DrainCompleted, -1, -1,
                   "durable epoch=" + std::to_string(l2_durable_epoch_));
}

// ---------------------------------------------------------------------------
// Completion.
// ---------------------------------------------------------------------------

bool Manager::final_verification_enabled() const {
  return env_.config->verify_at_completion &&
         env_.config->scheme != ResilienceScheme::HardOnly;
}

void Manager::declare_complete(int replica) {
  if (complete_) return;
  complete_ = true;
  trace().record(now(), rt::TraceKind::JobComplete, replica, -1,
                 final_verification_enabled() ? "verified result"
                                              : "replica finished");
  if (tick_armed_) env_.cluster->engine().cancel(tick_id_);
  tick_armed_ = false;
}

void Manager::maybe_finalize() {
  if (complete_ || failed_ || !final_verification_enabled()) return;
  int n = env_.cluster->nodes_per_replica();
  if (static_cast<int>(done_nodes_[0].size()) != n ||
      static_cast<int>(done_nodes_[1].size()) != n)
    return;
  if (ckpt_ || recovery_ || weak_recovery_pending_) return;
  if (final_verify_epoch_ != 0) return;  // already running
  // Final comparison checkpoint: every task sits at its last iteration, so
  // this cut compares the complete answers of the two replicas.
  request_checkpoint(3, CkptPurpose::Periodic);
  final_verify_epoch_ = ckpt_->epoch;
}

void Manager::handle_node_done(const rt::Message& m) {
  if (m.src_replica < 0 || m.src_replica > 1) return;
  auto& set = done_nodes_[static_cast<std::size_t>(m.src_replica)];
  set.insert(m.src.node_index);
  if (static_cast<int>(set.size()) != env_.cluster->nodes_per_replica())
    return;
  if (!final_verification_enabled()) {
    declare_complete(m.src_replica);
    return;
  }
  maybe_finalize();
}

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

void Manager::on_message(const rt::Message& m) {
  switch (m.tag) {
    case wire::kReplicaQuiesced:
      return handle_replica_quiesced(rt::unpack_payload<wire::ProgressMsg>(m),
                                     m.src_replica);
    case wire::kReplicaReady:
      return handle_replica_ready(rt::unpack_payload<wire::ReadyMsg>(m),
                                  m.src_replica);
    case wire::kReplicaVerdict:
      return handle_verdict(rt::unpack_payload<wire::VerdictMsg>(m));
    case wire::kPackDone:
      return handle_pack_done(rt::unpack_payload<wire::EpochMsg>(m),
                              m.src.node_index);
    case wire::kSuspectDead:
      return handle_suspect(rt::unpack_payload<wire::SuspectMsg>(m));
    case wire::kRestoreDone:
      return handle_restore_done(rt::unpack_payload<wire::BarrierMsg>(m),
                                 m.src_replica, m.src.node_index);
    case wire::kNeedBuddyRestore: {
      // A checkpoint-less node was told to roll back: route a recovery
      // image to it under the same barrier — the buddy's verified copy
      // under partner, a group rebuild under xor. Local has no remote copy
      // to route, so the wave degrades to a scratch restart.
      auto need = rt::unpack_payload<wire::BarrierMsg>(m);
      if (!recovery_ || need.barrier != recovery_->barrier) return;
      switch (redundancy()) {
        case ckpt::Scheme::Partner:
          if (env_.cluster->role_alive(1 - m.src_replica, m.src.node_index)) {
            env_.cluster->send_from_manager(
                1 - m.src_replica, m.src.node_index,
                wire::kSendVerifiedToBuddy, rt::pack_payload(need));
          }
          return;
        case ckpt::Scheme::Xor:
        case ckpt::Scheme::Rs:
          if (!route_group_rebuild(m.src_replica, m.src.node_index,
                                   need.barrier)) {
            recovery_.reset();
            restart_from_scratch();
          }
          return;
        case ckpt::Scheme::Local:
          recovery_.reset();
          restart_from_scratch();
          return;
      }
      return;
    }
    case wire::kXorRebuildImpossible:
    case wire::kRsRebuildImpossible: {
      // A survivor (or the spare itself) found the rebuild unservable —
      // parity exchange raced the failure, or pieces were inconsistent, or
      // a reconstructed image failed its CRC check. Only the active wave
      // may trigger the fallback; stragglers from an abandoned barrier are
      // moot. restart_from_scratch tries the L2 fetch rung first.
      auto bar = rt::unpack_payload<wire::BarrierMsg>(m);
      if (recovery_ && bar.barrier == recovery_->barrier) {
        log_warn("acr.manager")
            << "group rebuild impossible (barrier " << bar.barrier
            << ", reported by (" << m.src_replica << "," << m.src.node_index
            << ")); falling down the recovery ladder";
        recovery_.reset();
        restart_from_scratch();
      }
      return;
    }
    case wire::kFlushDone:
      return handle_flush_done(rt::unpack_payload<wire::FlushDoneMsg>(m),
                               m.src_replica, m.src.node_index);
    case wire::kFetchFailed: {
      // A node's L2 blob vanished under an active fetch wave. Abandon the
      // wave and restart genuinely from scratch — re-fetching would target
      // the same incomplete epoch.
      auto bar = rt::unpack_payload<wire::BarrierMsg>(m);
      if (!recovery_ || recovery_->fetch_epoch == 0 ||
          bar.barrier != recovery_->barrier)
        return;
      log_warn("acr.manager")
          << "l2 fetch failed on (" << m.src_replica << ","
          << m.src.node_index << ") barrier " << bar.barrier
          << "; degrading to scratch restart";
      recovery_.reset();
      restart_from_scratch(/*allow_fetch=*/false);
      return;
    }
    case wire::kNodeDone:
      return handle_node_done(m);
    default:
      log_warn("acr.manager") << "unknown tag " << m.tag;
  }
}

}  // namespace acr
