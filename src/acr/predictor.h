// Online failure prediction hook (§2.2).
//
// The paper: "as online failure prediction [19] becomes more accurate,
// checkpointing right before a potential failure occurs can help increase
// the mean time between failures visible to applications. ACR is capable of
// scheduling dynamic checkpoints in both the scenarios described."
//
// This module models such a predictor (Lan et al.-style meta-learning is
// out of scope; what matters to ACR is the prediction *interface*): a
// stream of warnings characterized by
//   * recall    — the fraction of real failures that are predicted,
//   * precision — the fraction of warnings that are followed by a failure,
//   * lead time — how far ahead of the failure the warning fires.
// On a warning, the manager schedules an immediate checkpoint, so the work
// lost to a correctly predicted failure shrinks from ~tau/2 to ~0.
//
// The companion analytic model quantifies the expected rework reduction,
// and bench/ablation_predictor sweeps recall to regenerate the trade-off.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.h"

namespace acr {

struct PredictorConfig {
  /// P(warning | failure): fraction of failures announced in advance.
  double recall = 0.7;
  /// P(failure | warning): complement governs false alarms. A false-alarm
  /// rate is derived so that precision holds given the failure rate.
  double precision = 0.8;
  /// Warning fires this long before the failure (seconds).
  double lead_time = 0.5;
};

/// Analytic value of prediction for a checkpoint/restart system running at
/// period tau: expected rework per failure drops from tau/2 to
/// (1-recall)*tau/2, while each false alarm costs one extra checkpoint.
/// Returns the expected overhead *change* per unit time (negative = win).
///
///   d_overhead = - recall * (tau/2) / mtbf                (rework saved)
///                + false_alarm_rate * checkpoint_cost     (alarm cost)
/// with false_alarm_rate = recall/mtbf * (1-precision)/precision.
double prediction_overhead_delta(const PredictorConfig& cfg, double tau,
                                 double mtbf, double checkpoint_cost);

/// Break-even recall at fixed precision: below this, prediction loses.
double prediction_breakeven_recall(const PredictorConfig& cfg, double tau,
                                   double mtbf, double checkpoint_cost);

}  // namespace acr
