#include "acr/config.h"

namespace acr {

const char* resilience_scheme_name(ResilienceScheme s) {
  switch (s) {
    case ResilienceScheme::HardOnly: return "hard-only";
    case ResilienceScheme::Strong: return "strong";
    case ResilienceScheme::Medium: return "medium";
    case ResilienceScheme::Weak: return "weak";
  }
  return "?";
}

const char* sdc_detection_name(SdcDetection d) {
  switch (d) {
    case SdcDetection::FullCompare: return "full-compare";
    case SdcDetection::Checksum: return "checksum";
  }
  return "?";
}

}  // namespace acr
