#include "acr/config.h"

namespace acr {

const char* resilience_scheme_name(ResilienceScheme s) {
  switch (s) {
    case ResilienceScheme::HardOnly: return "hard-only";
    case ResilienceScheme::Strong: return "strong";
    case ResilienceScheme::Medium: return "medium";
    case ResilienceScheme::Weak: return "weak";
  }
  return "?";
}

const char* sdc_detection_name(SdcDetection d) {
  switch (d) {
    case SdcDetection::FullCompare: return "full-compare";
    case SdcDetection::Checksum: return "checksum";
  }
  return "?";
}

const char* degrade_mode_name(DegradeMode m) {
  switch (m) {
    case DegradeMode::Abort: return "abort";
    case DegradeMode::Shrink: return "shrink";
  }
  return "?";
}

const char* validate_redundancy_config(const AcrConfig& config,
                                       int nodes_per_replica) {
  switch (config.redundancy) {
    case ckpt::Scheme::Partner:
      return nullptr;
    case ckpt::Scheme::Local:
      // Medium/weak recovery IS the cross-replica candidate shipment; a
      // scheme that never ships cannot implement them.
      if (config.scheme == ResilienceScheme::Medium ||
          config.scheme == ResilienceScheme::Weak)
        return "local redundancy cannot serve the medium/weak resilience "
               "schemes (their recovery ships checkpoints cross-replica)";
      return nullptr;
    case ckpt::Scheme::Xor:
      if (config.scheme != ResilienceScheme::Strong)
        return "xor redundancy requires the strong resilience scheme (its "
               "group rebuild replaces the Fig. 4a buddy transfer)";
      if (config.xor_group_size < 2)
        return "xor group size must be at least 2 (a one-node group has no "
               "parity peers)";
      if (nodes_per_replica < 2)
        return "xor redundancy needs at least 2 nodes per replica";
      return nullptr;
    case ckpt::Scheme::Rs:
      if (config.scheme != ResilienceScheme::Strong)
        return "rs redundancy requires the strong resilience scheme (its "
               "group rebuild replaces the Fig. 4a buddy transfer)";
      if (config.xor_group_size < 2)
        return "rs group size must be at least 2 (a one-node group has no "
               "parity peers)";
      if (config.rs_parity < 1)
        return "rs parity must be at least 1";
      if (nodes_per_replica < 2)
        return "rs redundancy needs at least 2 nodes per replica";
      {
        // Every member needs at least one DATA chunk, in every group — and
        // GroupMap lets a trailing remainder of >= 2 nodes stand alone as a
        // smaller group, which is then the binding constraint.
        int rem = nodes_per_replica % config.xor_group_size;
        int min_group = rem >= 2 ? rem : config.xor_group_size;
        if (nodes_per_replica < min_group) min_group = nodes_per_replica;
        if (config.rs_parity >= min_group)
          return "rs parity must be smaller than every parity group's size "
                 "(note the trailing remainder group can be smaller than "
                 "--xor-group-size)";
      }
      // GroupMap merges a remainder group of one into its predecessor, so
      // a group can be one node wider than configured.
      if (config.xor_group_size + 1 + config.rs_parity > 256)
        return "rs group size + parity must fit the GF(256) label space";
      return nullptr;
  }
  return "unknown redundancy scheme";
}

const char* validate_tier_config(const AcrConfig& config) {
  const ckpt::TierConfig& t = config.tier;
  if (t.bandwidth < 0.0) return "l2 bandwidth must be >= 0 (0 disables)";
  if (!t.enabled()) {
    if (config.halt_after > 0.0)
      return "halt-after drains to the durable tier; it requires l2 "
             "bandwidth > 0";
    return nullptr;
  }
  if (t.latency < 0.0) return "l2 latency must be >= 0";
  if (t.chunk_bytes == 0) return "l2 flush chunk size must be >= 1 byte";
  if (t.flush_interval == 0)
    return "flush interval must be >= 1 (flush every k-th committed epoch)";
  if (config.halt_after < 0.0) return "halt-after must be >= 0 (0 = never)";
  return nullptr;
}

}  // namespace acr
