#include "acr/config.h"

namespace acr {

const char* resilience_scheme_name(ResilienceScheme s) {
  switch (s) {
    case ResilienceScheme::HardOnly: return "hard-only";
    case ResilienceScheme::Strong: return "strong";
    case ResilienceScheme::Medium: return "medium";
    case ResilienceScheme::Weak: return "weak";
  }
  return "?";
}

const char* sdc_detection_name(SdcDetection d) {
  switch (d) {
    case SdcDetection::FullCompare: return "full-compare";
    case SdcDetection::Checksum: return "checksum";
  }
  return "?";
}

const char* degrade_mode_name(DegradeMode m) {
  switch (m) {
    case DegradeMode::Abort: return "abort";
    case DegradeMode::Shrink: return "shrink";
  }
  return "?";
}

const char* validate_redundancy_config(const AcrConfig& config,
                                       int nodes_per_replica) {
  switch (config.redundancy) {
    case ckpt::Scheme::Partner:
      return nullptr;
    case ckpt::Scheme::Local:
      // Medium/weak recovery IS the cross-replica candidate shipment; a
      // scheme that never ships cannot implement them.
      if (config.scheme == ResilienceScheme::Medium ||
          config.scheme == ResilienceScheme::Weak)
        return "local redundancy cannot serve the medium/weak resilience "
               "schemes (their recovery ships checkpoints cross-replica)";
      return nullptr;
    case ckpt::Scheme::Xor:
      if (config.scheme != ResilienceScheme::Strong)
        return "xor redundancy requires the strong resilience scheme (its "
               "group rebuild replaces the Fig. 4a buddy transfer)";
      if (config.xor_group_size < 2)
        return "xor group size must be at least 2 (a one-node group has no "
               "parity peers)";
      if (nodes_per_replica < 2)
        return "xor redundancy needs at least 2 nodes per replica";
      return nullptr;
  }
  return "unknown redundancy scheme";
}

const char* validate_tier_config(const AcrConfig& config) {
  const ckpt::TierConfig& t = config.tier;
  if (t.bandwidth < 0.0) return "l2 bandwidth must be >= 0 (0 disables)";
  if (!t.enabled()) {
    if (config.halt_after > 0.0)
      return "halt-after drains to the durable tier; it requires l2 "
             "bandwidth > 0";
    return nullptr;
  }
  if (t.latency < 0.0) return "l2 latency must be >= 0";
  if (t.chunk_bytes == 0) return "l2 flush chunk size must be >= 1 byte";
  if (t.flush_interval == 0)
    return "flush interval must be >= 1 (flush every k-th committed epoch)";
  if (config.halt_after < 0.0) return "halt-after must be >= 0 (0 = never)";
  return nullptr;
}

}  // namespace acr
