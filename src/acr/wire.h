// Wire protocol between ACR node agents and the job manager.
#pragma once

#include <cstdint>
#include <vector>

#include "pup/pup.h"
#include "pup/stl.h"

namespace acr::wire {

/// Message tags on the service channel.
enum Tag : int {
  // Manager -> agents (broadcast down the per-replica tree).
  kCheckpointRequest = 100,  ///< begin quiesce (Fig. 3 phase 2)
  kIterationDecided,         ///< checkpoint iteration C (phase 3)
  kPackCommand,              ///< all ready: serialize state (phase 4)
  kCommit,                   ///< comparison passed: promote + resume
  kRollbackSdc,              ///< mismatch: restore verified epoch + resume
  kRollbackHard,             ///< crashed-replica rollback to verified epoch
  kHalt,                     ///< weak scheme: crashed replica waits
  kAbortConsensus,           ///< failure interrupted a checkpoint
  kSendVerifiedToBuddy,      ///< strong recovery: ship verified ckpt to buddy
  kSendCandidateToBuddy,     ///< medium/weak recovery: ship fresh ckpt
  kResume,                   ///< plain resume (after recovery bookkeeping)
  kXorRebuildSend,           ///< xor recovery: survivor, feed the spare
  kFlushCommand,             ///< durable tier: drain your verified image to L2
  kFetchFromDurable,         ///< durable tier: restore from the L2 epoch
  kRsRebuildSend,            ///< rs recovery: survivor, feed every spare

  // Agent -> agent.
  kTreeProgress = 200,  ///< max-progress reduction up the tree
  kTreeReady,           ///< readiness reduction up the tree
  kTreeVerdict,         ///< comparison verdict reduction (replica 1)
  kBuddyCheckpoint,     ///< full checkpoint bytes (compare or restore)
  kBuddyChecksum,       ///< Fletcher-64 digest of the checkpoint
  kHeartbeat,
  kXorParityChunk,      ///< parity chunk of a group member's verified image
  kXorRebuildPiece,     ///< survivor's image + parity for a spare's rebuild
  kBuddyDeltaCheckpoint,  ///< codec frame: dirty chunks of the buddy image
  kBuddyNeedFull,         ///< receiver lost the delta base; re-send full
  kXorParityDeltaChunk,   ///< codec: XOR diff of the dirty slice ranges
  kRsParityChunk,         ///< rs: data chunk for one of the receiver's stripes
  kRsParityDeltaChunk,    ///< rs codec: diff of a chunk's dirty ranges
  kRsRebuildPiece,        ///< rs: survivor's image + parity blocks for a spare

  // Agent -> manager.
  kReplicaQuiesced = 300,  ///< root: subtree fully paused, max progress known
  kReplicaReady,           ///< root: all tasks at C
  kReplicaVerdict,         ///< replica-1 root: aggregated compare verdict
  kSuspectDead,            ///< buddy heartbeat timed out
  kNodeDone,               ///< all tasks on this node finished the app
  kPackDone,               ///< local checkpoint serialized (for recovery flows)
  kRestoreDone,            ///< node restored + resumed
  kNeedBuddyRestore,       ///< rollback ordered but no local checkpoint held
  kXorRebuildImpossible,   ///< xor rebuild cannot complete; scratch needed
  kFlushDone,              ///< node's verified image is published on L2
  kFetchFailed,            ///< L2 blob missing/corrupt; fetch wave must fall back
  kRsRebuildImpossible,    ///< rs rebuild cannot complete; fall down the ladder
};

/// Reduction / broadcast payloads. All pup-able.
struct CkptRequestMsg {
  std::uint64_t epoch = 0;
  std::uint8_t participants = 3;  ///< bit 0: replica 0, bit 1: replica 1
  void pup(pup::Puper& p) {
    p | epoch;
    p | participants;
  }
};

struct ProgressMsg {
  std::uint64_t epoch = 0;
  std::uint64_t max_progress = 0;
  void pup(pup::Puper& p) {
    p | epoch;
    p | max_progress;
  }
};

struct IterationMsg {
  std::uint64_t epoch = 0;
  std::uint64_t iteration = 0;
  void pup(pup::Puper& p) {
    p | epoch;
    p | iteration;
  }
};

struct ReadyMsg {
  std::uint64_t epoch = 0;
  void pup(pup::Puper& p) { p | epoch; }
};

struct VerdictMsg {
  std::uint64_t epoch = 0;
  std::uint8_t match = 1;
  std::uint64_t mismatched_nodes = 0;
  void pup(pup::Puper& p) {
    p | epoch;
    p | match;
    p | mismatched_nodes;
  }
};

struct EpochMsg {
  std::uint64_t epoch = 0;
  void pup(pup::Puper& p) { p | epoch; }
};

/// Restore command: which checkpoint epoch to restore and which restore
/// barrier (wave) the resulting kRestoreDone belongs to. Barrier ids let
/// the manager re-issue a rollback wave (after overlapping failures)
/// without stale acknowledgements from the abandoned wave corrupting the
/// new barrier's count.
struct RestoreCmdMsg {
  std::uint64_t epoch = 0;
  std::uint64_t barrier = 0;
  void pup(pup::Puper& p) {
    p | epoch;
    p | barrier;
  }
};

struct BarrierMsg {
  std::uint64_t barrier = 0;
  void pup(pup::Puper& p) { p | barrier; }
};

struct ChecksumMsg {
  std::uint64_t epoch = 0;
  std::uint64_t digest = 0;
  std::uint64_t full_bytes = 0;  ///< size of the checkpoint the digest covers
  void pup(pup::Puper& p) {
    p | epoch;
    p | digest;
    p | full_bytes;
  }
};

/// Buddy checkpoint header. The image itself does NOT travel inside the
/// packed payload: it rides as the message's Buffer attachment, aliasing
/// the sender's stored checkpoint (zero-copy; the wire cost is charged via
/// bytes_on_wire).
struct CheckpointMsg {
  std::uint64_t epoch = 0;
  std::uint64_t iteration = 0;
  std::uint8_t purpose = 0;   ///< 0: compare, 1: restore
  std::uint64_t barrier = 0;  ///< restore barrier id (purpose=1 only)
  void pup(pup::Puper& p) {
    p | epoch;
    p | iteration;
    p | purpose;
    p | barrier;
  }
};

/// Order to a surviving XOR-group member: ship your rebuild piece (image +
/// parity) to the promoted spare now playing `dead_index`, under the given
/// restore barrier. The piece itself travels agent-to-agent as a
/// ckpt::XorPieceMsg with the image attached zero-copy.
struct XorRebuildCmd {
  std::int32_t dead_index = 0;
  std::uint64_t barrier = 0;
  void pup(pup::Puper& p) {
    p | dead_index;
    p | barrier;
  }
};

/// Order to a surviving RS-group member: ship one rebuild piece (image +
/// ALL parity blocks) to EACH promoted spare in `dead_indices`, under the
/// given restore barrier. One command covers the group's whole dead set —
/// the multi-loss solve happens at each spare independently.
struct RsRebuildCmd {
  std::vector<std::int32_t> dead_indices;
  std::uint64_t barrier = 0;
  void pup(pup::Puper& p) {
    p | dead_indices;
    p | barrier;
  }
};

/// Order to drain the verified image of `epoch` to the durable tier.
/// `urgent` marks drain/scavenge flushes (--halt-after, burst scavenge):
/// the completion is counted as a scavenge rather than a background flush.
struct FlushCmdMsg {
  std::uint64_t epoch = 0;
  std::uint8_t urgent = 0;
  void pup(pup::Puper& p) {
    p | epoch;
    p | urgent;
  }
};

/// Flush completion report. `scavenged` echoes the command's urgency when
/// the final chunk actually published an image (vs. an already-present
/// blob answered from the tier's index).
struct FlushDoneMsg {
  std::uint64_t epoch = 0;
  std::uint8_t scavenged = 0;
  void pup(pup::Puper& p) {
    p | epoch;
    p | scavenged;
  }
};

/// Buddy DELTA checkpoint header (codec pipeline, --ckpt-delta=on). Only
/// the dirty chunks of the sender's image travel, as the attachment; the
/// chunk map says which. The receiver overlays them on its cached copy of
/// the sender's base-epoch image to reconstruct the full image EXACTLY, so
/// the downstream compare/restore paths are untouched. `encoding` mirrors
/// ckpt::CodecFrame::encoding (0 = raw concat, 1 = per-chunk records).
struct DeltaCheckpointMsg {
  std::uint64_t epoch = 0;
  std::uint64_t iteration = 0;
  std::uint64_t base_epoch = 0;  ///< receiver must hold this cached image
  std::uint64_t full_bytes = 0;  ///< reconstructed image size
  std::uint8_t purpose = 0;      ///< 0: compare (restore always ships full)
  std::uint8_t encoding = 0;
  std::vector<std::uint8_t> present;  ///< chunk map, 1 = chunk in payload
  void pup(pup::Puper& p) {
    p | epoch;
    p | iteration;
    p | base_epoch;
    p | full_bytes;
    p | purpose;
    p | encoding;
    p | present;
  }
};

/// Receiver -> sender: the delta base you assumed is gone (restart, size
/// change, decode failure). Re-ship epochs > `epoch` as full images.
struct NeedFullMsg {
  std::uint64_t epoch = 0;  ///< last epoch the receiver holds (0 = none)
  void pup(pup::Puper& p) { p | epoch; }
};

struct SuspectMsg {
  std::int32_t replica = 0;
  std::int32_t node_index = 0;
  void pup(pup::Puper& p) {
    p | replica;
    p | node_index;
  }
};

}  // namespace acr::wire
