// AcrRuntime — the public facade of the framework.
//
// Usage (see examples/quickstart.cpp):
//
//   acr::AcrConfig acr_cfg;                   // scheme, detection, interval
//   acr::rt::ClusterConfig cluster_cfg;       // nodes, spares, latencies
//   acr::AcrRuntime runtime(acr_cfg, cluster_cfg);
//   runtime.set_task_factory(my_factory);     // builds each node's tasks
//   runtime.setup();
//   runtime.run(/*max_virtual_time=*/3600.0);
//
// The runtime owns the virtual cluster, installs an ACR agent on every
// node, runs the job manager, and (optionally) drives fault injection.
#pragma once

#include <memory>
#include <vector>

#include "acr/config.h"
#include "acr/manager.h"
#include "acr/node_agent.h"
#include "acr/predictor.h"
#include "failure/correlated.h"
#include "failure/distributions.h"
#include "failure/injector.h"
#include "rt/cluster.h"
#include "rt/engine.h"

namespace acr {

/// Fault-injection plan (§6.1): an arrival process plus the SDC/hard mix.
struct FaultPlan {
  std::shared_ptr<failure::ArrivalProcess> arrivals;
  /// Probability that an injected fault is an SDC bit flip (vs fail-stop).
  double sdc_fraction = 0.5;
  /// Stop injecting after this time (0 = no limit).
  double horizon = 0.0;
  /// Where flips may land. Default mirrors the paper: the floating point
  /// user data that dominates checkpoints. AnyPayload additionally strikes
  /// counters/indices — corruption the framework detects at the next
  /// comparison, but which can also derail the victim's control flow in
  /// ways no checkpoint-based scheme can mask.
  failure::FlipPolicy flip_policy = failure::FlipPolicy::FloatingPointOnly;
};

struct RunSummary {
  bool complete = false;
  bool failed = false;
  double finish_time = 0.0;          ///< virtual time of completion (or stop)
  std::uint64_t checkpoints = 0;
  std::uint64_t hard_failures = 0;
  std::uint64_t sdc_injected = 0;
  std::uint64_t sdc_detected = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t scratch_restarts = 0;
  // Network delivery counters (all zero unless network fault injection is
  // enabled — the reliable transport is bypassed on a clean network).
  std::uint64_t net_frames = 0;        ///< data frames put on the wire
  std::uint64_t net_drops = 0;         ///< frames lost by the injector
  std::uint64_t net_duplicates = 0;    ///< frames duplicated in flight
  std::uint64_t net_corruptions = 0;   ///< frames bit-flipped in flight
  std::uint64_t net_retransmits = 0;   ///< timer-driven re-sends
  std::uint64_t net_crc_drops = 0;     ///< frames failing CRC32C on arrival
  std::uint64_t net_stale_epoch_drops = 0;  ///< app msgs from stale epochs
  std::uint64_t net_link_failures = 0;      ///< retry budgets exhausted
  // Checkpoint redundancy (ckpt::RedundancyScheme). The parity counters
  // stay zero except under the xor/rs schemes; they aggregate over the
  // agents alive at completion. Encode-side (steady-state parity exchange)
  // and rebuild-side (recovery waves) wire traffic are kept separate so
  // sweeps can report each scheme's cost structure accurately.
  const char* ckpt_scheme = "partner";
  std::uint64_t parity_chunks_sent = 0;  ///< encode: group parity chunks
  std::uint64_t parity_bytes_sent = 0;   ///< encode: bytes of those chunks
  std::uint64_t xor_rebuilds = 0;        ///< images rebuilt from parity
  std::uint64_t parity_rebuild_pieces = 0;  ///< rebuild: pieces shipped
  std::uint64_t parity_rebuild_bytes = 0;   ///< rebuild: image+parity bytes
  std::uint64_t parity_rebuilds_rejected = 0;  ///< rebuilds failing the CRC
  // Correlated-burst injection and the spare-pool lifecycle (all zero, and
  // spare_low_water = configured spares, unless a burst plan is set).
  std::uint64_t burst_seeds = 0;       ///< burst seed failures fired
  std::uint64_t burst_node_kills = 0;  ///< nodes killed (seeds + followers)
  std::uint64_t spare_promotions = 0;  ///< spares promoted into roles
  std::uint64_t spare_failures = 0;    ///< pooled spares that died idle
  std::uint64_t spare_repairs = 0;     ///< dead hardware repaired into pool
  int spare_low_water = 0;             ///< minimum pool size observed
  std::uint64_t roles_doubled = 0;     ///< shrink-to-survive doublings
  std::uint64_t roles_undoubled = 0;   ///< doubled roles later relieved
  // Durable tier (all zero/false unless config.tier is enabled).
  bool drained = false;                ///< --halt-after drain completed
  std::uint64_t l2_flushes = 0;        ///< images published to L2
  std::uint64_t l2_flush_bytes = 0;    ///< encoded bytes of those images
  std::uint64_t l2_fetches = 0;        ///< images read back from L2
  std::uint64_t l2_fetch_waves = 0;    ///< whole-job restores served from L2
  std::uint64_t l2_scavenges = 0;      ///< urgent drain flushes published
  std::uint64_t l2_newest_durable = 0; ///< newest fully-flushed epoch
  // Codec pipeline (all zero unless --ckpt-delta/--ckpt-compress is on).
  // The frame counters cover the buddy transfer; the parity-delta ones the
  // XOR exchange; l2_delta_blobs the durable tier.
  std::uint64_t codec_frames = 0;        ///< codec frames shipped to buddies
  std::uint64_t codec_full_frames = 0;   ///< frames carrying every chunk
  std::uint64_t codec_chunks_total = 0;  ///< chunks covered by those frames
  std::uint64_t codec_chunks_shipped = 0;  ///< chunks actually in payloads
  std::uint64_t codec_raw_bytes = 0;     ///< image bytes the frames stand for
  std::uint64_t codec_wire_bytes = 0;    ///< map+payload bytes on the wire
  std::uint64_t codec_need_full = 0;     ///< receiver-forced full fallbacks
  std::uint64_t parity_delta_chunks = 0;   ///< xor delta contributions sent
  std::uint64_t parity_delta_bytes = 0;    ///< xor diff payload bytes
  std::uint64_t parity_rounds_poisoned = 0;  ///< xor delta rounds abandoned
  std::uint64_t l2_delta_blobs = 0;      ///< v2 delta blobs published to L2
};

class AcrRuntime {
 public:
  AcrRuntime(const AcrConfig& acr_config, const rt::ClusterConfig& cluster_config);
  ~AcrRuntime();

  AcrRuntime(const AcrRuntime&) = delete;
  AcrRuntime& operator=(const AcrRuntime&) = delete;

  rt::Cluster& cluster() { return *cluster_; }
  rt::Engine& engine() { return engine_; }
  Manager& manager() { return *manager_; }
  rt::TraceLog& trace() { return cluster_->trace(); }
  const AcrConfig& config() const { return acr_config_; }

  void set_task_factory(rt::Cluster::TaskFactory factory);

  /// Optional fault injection; call any time before run().
  void set_fault_plan(FaultPlan plan);

  /// Optional correlated-burst injection (failure/correlated.h): seed
  /// failures strike any alive hardware node — pooled spares included —
  /// and recruit followers from the victim's failure domain; dead hardware
  /// re-enters the spare pool after a sampled repair time. Independent of
  /// (and composable with) set_fault_plan. Call any time before run().
  void set_burst_plan(const failure::BurstConfig& config);

  /// Enable the online failure predictor (§2.2): hard failures are
  /// announced `lead_time` in advance with the configured recall, and the
  /// manager schedules an immediate checkpoint on each warning (plus false
  /// alarms per the precision). Warnings are decided when each fault is
  /// scheduled, so this must be called before set_fault_plan().
  void set_predictor(const PredictorConfig& config);

  /// Populate the cluster, install agents, start the manager and the app.
  void setup();

  /// Run until the job completes, fails, the event queue drains, or the
  /// virtual clock passes `max_virtual_time`.
  RunSummary run(double max_virtual_time);

  /// Agent living on (replica, node_index) — for tests and stats.
  NodeAgent& agent_at(int replica, int node_index);

  /// The simulated durable tier, or nullptr when disabled — for tests.
  ckpt::DurableTier* tier() { return tier_.get(); }

  std::uint64_t sdc_injected() const { return sdc_injected_; }
  std::uint64_t warnings_issued() const { return warnings_issued_; }

 private:
  void schedule_next_fault(double from_time);
  void inject_fault();
  void arm_burst_injection();
  void schedule_next_burst(double from_time);
  void fire_burst();
  void burst_kill(int pid, const char* why);
  void schedule_repair(int pid);
  NodeAgent* install_agent(rt::Node& node);

  AcrConfig acr_config_;
  rt::Engine engine_;
  std::unique_ptr<rt::Cluster> cluster_;
  std::unique_ptr<ckpt::DurableTier> tier_;
  std::unique_ptr<Manager> manager_;
  FaultPlan fault_plan_;
  PredictorConfig predictor_;
  bool predictor_enabled_ = false;
  bool fault_scheduled_ = false;
  bool next_fault_is_sdc_ = false;
  Pcg32 fault_rng_;
  std::uint64_t sdc_injected_ = 0;
  std::uint64_t warnings_issued_ = 0;
  failure::BurstConfig burst_config_;
  std::unique_ptr<failure::CorrelatedInjector> burst_;
  std::uint64_t burst_seeds_ = 0;
  std::uint64_t burst_kills_ = 0;
  bool setup_done_ = false;
};

}  // namespace acr
