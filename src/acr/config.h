// ACR framework configuration.
#pragma once

#include "ckpt/redundancy.h"
#include "ckpt/tier.h"
#include "failure/adaptive_interval.h"
#include "pup/checker.h"

namespace acr {

/// Recovery schemes of §2.3 / Fig. 5. HardOnly is the Fig. 5(a) mode: no
/// periodic checkpoints, recovery via an immediate checkpoint of the
/// healthy replica (no SDC protection at all).
enum class ResilienceScheme { HardOnly, Strong, Medium, Weak };

const char* resilience_scheme_name(ResilienceScheme s);

/// How checkpoints are compared across replicas (§4.2).
enum class SdcDetection {
  FullCompare,  ///< ship the full checkpoint to the buddy, compare streams
  Checksum,     ///< ship an 8-byte position-dependent Fletcher-64 digest
};

const char* sdc_detection_name(SdcDetection d);

/// What to do when a hard failure finds the spare pool empty.
enum class DegradeMode {
  Abort,   ///< historical behavior: the job fails on pool exhaustion
  Shrink,  ///< shrink-to-survive: double the dead role up onto a survivor
};

const char* degrade_mode_name(DegradeMode m);

struct AcrConfig {
  ResilienceScheme scheme = ResilienceScheme::Strong;
  SdcDetection detection = SdcDetection::FullCompare;

  /// Checkpoint-redundancy scheme (ckpt layer). Partner is the paper's
  /// buddy copy; Local keeps no remote copy (hard failures degrade to a
  /// scratch restart); Xor folds RAID-5-style parity across groups of
  /// `xor_group_size` nodes within each replica. Xor requires the Strong
  /// resilience scheme (its rebuild path replaces the buddy transfer of
  /// Fig. 4a); Local is incompatible with Medium/Weak, whose recovery is
  /// DEFINED by cross-replica checkpoint shipping. See
  /// validate_redundancy_config().
  ckpt::Scheme redundancy = ckpt::Scheme::Partner;
  /// Parity group width under Xor and Rs: >= 2, groups never span
  /// replicas. A remainder group of one node is merged into the preceding
  /// group (ckpt::GroupMap).
  int xor_group_size = 4;
  /// Parity blocks per stripe under Rs: any `rs_parity` dead members of a
  /// group are rebuilt bitwise from the survivors (Reed–Solomon over
  /// GF(256), ckpt/rs.h). Must be in [1, group size); group size + parity
  /// must fit the 256-element field label space.
  int rs_parity = 2;

  /// Periodic checkpointing (disabled in HardOnly mode regardless).
  bool periodic_checkpoints = true;
  /// Fixed checkpoint period, seconds (used when !adaptive).
  double checkpoint_interval = 10.0;

  /// Adapt the period to the observed failure rate (§2.2, Fig. 12).
  bool adaptive = false;
  failure::AdaptiveIntervalConfig adaptive_config;

  /// Buddy heartbeat period and the silence threshold after which the
  /// buddy is declared dead (§6.1's no-response fail-stop detection).
  double heartbeat_period = 0.05;
  double heartbeat_timeout = 0.25;

  /// Semi-blocking checkpointing (§4.2's "asynchronous checkpointing"
  /// future work, after Ni et al., Cluster'12): tasks resume as soon as
  /// their local checkpoint is serialized, overlapping the inter-replica
  /// transfer and comparison with application execution. Detection is
  /// unchanged — a mismatch still rolls both replicas back to the last
  /// verified checkpoint — but the forward path no longer stalls for the
  /// transfer/compare phases.
  bool semi_blocking = false;

  /// Run one final cross-replica comparison checkpoint after both replicas
  /// finish, before declaring the job successful. Without it, corruption
  /// striking in the tail (after the last periodic checkpoint) would go
  /// out the door unverified. Ignored in HardOnly mode.
  bool verify_at_completion = true;

  /// Spare-pool exhaustion policy. Abort preserves the pre-burst behavior
  /// bit-for-bit; Shrink doubles the dead role up onto a surviving node of
  /// the same replica (degraded redundancy) and un-doubles when a repaired
  /// spare returns. Un-doubling is automatic only under the Strong scheme,
  /// whose buddy/xor recovery restores the relieved role without a
  /// single-replica recovery checkpoint.
  DegradeMode degrade = DegradeMode::Abort;

  /// Stream comparison tolerances (FullCompare mode).
  pup::CheckerConfig checker;

  /// Durable L2 tier behind the in-memory redundancy schemes (tier.h).
  /// Disabled (bandwidth == 0) by default; when enabled, committed epochs
  /// trickle to the simulated burst buffer asynchronously and the recovery
  /// ladder gains an L2-fetch rung between L1 rebuild and scratch restart.
  ckpt::TierConfig tier;

  /// Halt-control surface: at this virtual time the manager stops starting
  /// new checkpoints, drains the newest verified epoch to L2, and the run
  /// ends with RunSummary::drained set. 0 = never. Requires the tier.
  double halt_after = 0.0;

  /// Checkpoint codec pipeline (ckpt/codec.h): incremental (dirty-chunk)
  /// delta shipping and/or per-chunk LZ compression of the buddy transfer,
  /// XOR parity exchange, and L2 flushes. Both stages default OFF, which
  /// keeps every data-plane byte identical to the pre-codec protocol.
  ckpt::CodecConfig codec;
};

/// Check redundancy-scheme coherence: returns nullptr when valid, else a
/// human-readable reason (shared by the driver's CLI validation and the
/// Manager's construction-time ACR_REQUIREs).
const char* validate_redundancy_config(const AcrConfig& config,
                                       int nodes_per_replica);

/// Check durable-tier coherence: returns nullptr when valid, else a
/// human-readable reason (shared by the driver's CLI validation and the
/// Manager's construction-time ACR_REQUIREs).
const char* validate_tier_config(const AcrConfig& config);

}  // namespace acr
