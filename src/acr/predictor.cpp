#include "acr/predictor.h"

#include <algorithm>

#include "common/require.h"

namespace acr {

double prediction_overhead_delta(const PredictorConfig& cfg, double tau,
                                 double mtbf, double checkpoint_cost) {
  ACR_REQUIRE(tau > 0.0 && mtbf > 0.0 && checkpoint_cost >= 0.0,
              "invalid prediction model inputs");
  ACR_REQUIRE(cfg.recall >= 0.0 && cfg.recall <= 1.0, "recall out of [0,1]");
  ACR_REQUIRE(cfg.precision > 0.0 && cfg.precision <= 1.0,
              "precision out of (0,1]");
  double failure_rate = 1.0 / mtbf;
  double rework_saved = cfg.recall * (tau / 2.0) * failure_rate;
  double warning_rate = cfg.recall * failure_rate / cfg.precision;
  double alarm_cost = warning_rate * checkpoint_cost;
  return alarm_cost - rework_saved;
}

double prediction_breakeven_recall(const PredictorConfig& cfg, double tau,
                                   double mtbf, double checkpoint_cost) {
  // delta(recall) = recall * [ checkpoint_cost/(precision*mtbf)
  //                            - tau/(2*mtbf) ] — linear in recall: the
  // sign of the bracket decides; break-even is all-or-nothing.
  (void)mtbf;
  double bracket = checkpoint_cost / cfg.precision - tau / 2.0;
  return bracket < 0.0 ? 0.0 : 1.0;  // any recall helps iff bracket < 0
}

}  // namespace acr
