#include "acr/node_agent.h"

#include <algorithm>
#include <utility>

#include "checksum/kernels.h"
#include "checksum/sink.h"
#include "common/logging.h"
#include "parallel/pool.h"
#include "pup/checker.h"

namespace acr {

namespace {
constexpr std::uint8_t kPurposeCompare = 0;
constexpr std::uint8_t kPurposeRestore = 1;
}  // namespace

NodeAgent::NodeAgent(AcrEnv env, rt::Node& node)
    : env_(env),
      node_(node),
      replica_(node.replica()),
      index_(node.node_index()),
      num_nodes_(env.cluster->nodes_per_replica()) {
  ACR_REQUIRE(node.assigned(), "agent requires an assigned node");
  done_.assign(static_cast<std::size_t>(node.num_tasks()), false);
  make_scheme();
}

namespace {

// Wire-size discount for the verify-on-rebuild integrity tags: on a real
// wire the CRC32C digests ride the frame header (the same charging rule
// as the consensus-abort epoch tag), so their pup records — a tag+count
// header per record plus the element bytes — are not charged as payload.
// This keeps the xor wire model, and the saved driver baselines,
// byte-identical to the pre-digest protocol; rs follows the same rule.
constexpr std::size_t kPupRecordHeader =
    sizeof(std::uint8_t) + sizeof(std::uint64_t);
constexpr std::size_t kDigestScalarWireBytes =
    kPupRecordHeader + sizeof(std::uint32_t);
std::size_t digest_vector_wire_bytes(std::size_t n) {
  std::size_t size_record = kPupRecordHeader + sizeof(std::uint64_t);
  std::size_t array_record =
      n > 0 ? kPupRecordHeader + n * sizeof(std::uint32_t) : 0;
  return size_record + array_record;
}

}  // namespace

void NodeAgent::make_scheme() {
  switch (env_.config->redundancy) {
    case ckpt::Scheme::Local:
      scheme_ = std::make_unique<ckpt::LocalScheme>();
      return;
    case ckpt::Scheme::Partner:
      scheme_ = std::make_unique<ckpt::PartnerScheme>();
      return;
    case ckpt::Scheme::Xor: {
      const ckpt::GroupMap& groups = env_.cluster->ckpt_groups();
      ACR_REQUIRE(groups.enabled(),
                  "xor redundancy requires cluster checkpoint groups");
      ckpt::XorScheme::Hooks hooks;
      // The verify-on-rebuild CRC32C tags ride the frame header on a real
      // wire (the same charging rule as the consensus-abort epoch tag), so
      // they are discounted from the modelled payload — the xor wire
      // timing stays identical to the pre-digest protocol, and rs charges
      // its digests by the same rule.
      hooks.send_chunk = [this](int dst, const ckpt::XorChunkMsg& msg,
                                buf::Buffer chunk) {
        ckpt::XorChunkMsg m = msg;
        buf::Buffer pk = rt::pack_payload(m);
        double wire = static_cast<double>(rt::kMessageHeaderBytes +
                                          pk.size() + chunk.size() -
                                          kDigestScalarWireBytes);
        send_to_agent(replica_, dst, wire::kXorParityChunk, std::move(pk),
                      wire, std::move(chunk));
      };
      hooks.send_delta_chunk = [this](int dst,
                                      const ckpt::XorDeltaChunkMsg& msg,
                                      buf::Buffer payload) {
        ckpt::XorDeltaChunkMsg m = msg;
        buf::Buffer pk = rt::pack_payload(m);
        double wire = static_cast<double>(rt::kMessageHeaderBytes +
                                          pk.size() + payload.size() -
                                          kDigestScalarWireBytes);
        send_to_agent(replica_, dst, wire::kXorParityDeltaChunk,
                      std::move(pk), wire, std::move(payload));
      };
      hooks.send_piece = [this](int dst, const ckpt::XorPieceMsg& msg,
                                buf::Buffer image) {
        ckpt::XorPieceMsg m = msg;
        buf::Buffer pk = rt::pack_payload(m);
        double wire = static_cast<double>(
            rt::kMessageHeaderBytes + pk.size() + image.size() -
            digest_vector_wire_bytes(m.member_digests.size()));
        send_to_agent(replica_, dst, wire::kXorRebuildPiece, std::move(pk),
                      wire, std::move(image));
      };
      hooks.report_impossible = [this](std::uint64_t barrier) {
        wire::BarrierMsg msg{barrier};
        send_to_manager(wire::kXorRebuildImpossible, rt::pack_payload(msg));
      };
      hooks.restore_rebuilt = [this](ckpt::Image img, std::uint64_t barrier) {
        if (barrier <= last_restore_barrier_) return;  // wave already taken
        restore_from(img, "xor rebuild", barrier);
      };
      scheme_ = std::make_unique<ckpt::XorScheme>(groups, index_,
                                                  std::move(hooks));
      return;
    }
    case ckpt::Scheme::Rs: {
      const ckpt::GroupMap& groups = env_.cluster->ckpt_groups();
      ACR_REQUIRE(groups.enabled(),
                  "rs redundancy requires cluster checkpoint groups");
      ckpt::RsScheme::Hooks hooks;
      // Same header-riding rule for the integrity tags as the xor hooks
      // above: digests are discounted from the modelled payload.
      hooks.send_chunk = [this](int dst, const ckpt::RsChunkMsg& msg,
                                buf::Buffer chunk) {
        ckpt::RsChunkMsg m = msg;
        buf::Buffer pk = rt::pack_payload(m);
        double wire = static_cast<double>(rt::kMessageHeaderBytes +
                                          pk.size() + chunk.size() -
                                          kDigestScalarWireBytes);
        send_to_agent(replica_, dst, wire::kRsParityChunk, std::move(pk),
                      wire, std::move(chunk));
      };
      hooks.send_delta_chunk = [this](int dst,
                                      const ckpt::RsDeltaChunkMsg& msg,
                                      buf::Buffer payload) {
        ckpt::RsDeltaChunkMsg m = msg;
        buf::Buffer pk = rt::pack_payload(m);
        double wire = static_cast<double>(rt::kMessageHeaderBytes +
                                          pk.size() + payload.size() -
                                          kDigestScalarWireBytes);
        send_to_agent(replica_, dst, wire::kRsParityDeltaChunk,
                      std::move(pk), wire, std::move(payload));
      };
      hooks.send_piece = [this](int dst, const ckpt::RsPieceMsg& msg,
                                buf::Buffer image) {
        ckpt::RsPieceMsg m = msg;
        buf::Buffer pk = rt::pack_payload(m);
        double wire = static_cast<double>(
            rt::kMessageHeaderBytes + pk.size() + image.size() -
            digest_vector_wire_bytes(m.member_digests.size()));
        send_to_agent(replica_, dst, wire::kRsRebuildPiece, std::move(pk),
                      wire, std::move(image));
      };
      hooks.report_impossible = [this](std::uint64_t barrier) {
        wire::BarrierMsg msg{barrier};
        send_to_manager(wire::kRsRebuildImpossible, rt::pack_payload(msg));
      };
      hooks.restore_rebuilt = [this](ckpt::Image img, std::uint64_t barrier) {
        if (barrier <= last_restore_barrier_) return;  // wave already taken
        restore_from(img, "rs rebuild", barrier);
      };
      scheme_ = std::make_unique<ckpt::RsScheme>(groups, index_,
                                                 env_.config->rs_parity,
                                                 std::move(hooks));
      return;
    }
  }
  ACR_REQUIRE(false, "unknown redundancy scheme");
}

ckpt::XorScheme* NodeAgent::xor_scheme() {
  if (scheme_->kind() != ckpt::Scheme::Xor) return nullptr;
  return static_cast<ckpt::XorScheme*>(scheme_.get());
}

ckpt::RsScheme* NodeAgent::rs_scheme() {
  if (scheme_->kind() != ckpt::Scheme::Rs) return nullptr;
  return static_cast<ckpt::RsScheme*>(scheme_.get());
}

std::vector<int> NodeAgent::child_indices() const {
  std::vector<int> kids;
  for (int c : {2 * index_ + 1, 2 * index_ + 2})
    if (c < num_nodes_) kids.push_back(c);
  return kids;
}

double NodeAgent::now() const { return env_.cluster->engine().now(); }

void NodeAgent::send_to_manager(int tag, buf::Buffer payload) {
  env_.cluster->send_to_manager(replica_, index_, tag, std::move(payload));
}

void NodeAgent::send_to_agent(int replica, int node_index, int tag,
                              buf::Buffer payload, double bytes_on_wire,
                              buf::Buffer attachment) {
  env_.cluster->send_service(replica_, index_, replica, node_index, tag,
                             std::move(payload), bytes_on_wire,
                             std::move(attachment));
}

void NodeAgent::start() {
  peers_.clear();
  peers_.push_back(Peer{1 - replica_, index_, now(), false});  // buddy
  if (!is_root()) peers_.push_back(Peer{replica_, parent_index(), now(), false});
  for (int c : child_indices()) peers_.push_back(Peer{replica_, c, now(), false});
  double period = env_.config->heartbeat_period;
  std::uint64_t inc = ++heartbeat_incarnation_;
  env_.cluster->engine().schedule_after(period, [this, inc]() {
    if (heartbeat_incarnation_ == inc) heartbeat_tick();
  });
  env_.cluster->engine().schedule_after(period * 1.5, [this, inc]() {
    if (heartbeat_incarnation_ == inc) watchdog_tick();
  });
}

void NodeAgent::rebind_role() {
  if (replica_ == node_.replica() && index_ == node_.node_index()) return;
  replica_ = node_.replica();
  index_ = node_.node_index();
  num_children_ = static_cast<int>(child_indices().size());
  make_scheme();  // the xor/rs layouts key chunk routing off the node index
  invalidate_codec_bases();  // bases belong to the role, not the hardware
}

void NodeAgent::reset_for_restart() {
  supersede_flush(/*trace=*/false);  // the store is about to be wiped
  phase_ = Phase::Idle;
  epoch_ = 0;
  progress_stash_.clear();
  last_restore_barrier_ = 0;
  awaiting_go_ = false;
  node_.set_gated(false);
  store_.reset();
  scheme_->reset();
  invalidate_codec_bases();
  pack_complete_ = false;
  have_remote_ = false;
  local_verdict_done_ = false;
  refresh_done_from_tasks();
  start();  // rebuilds the peer table, bumps heartbeat incarnation
}

void NodeAgent::quash_restores_through(std::uint64_t barrier) {
  last_restore_barrier_ = std::max(last_restore_barrier_, barrier);
}

void NodeAgent::heartbeat_tick() {
  if (!node_.alive()) return;
  wire::EpochMsg beat{epoch_};
  for (const Peer& p : peers_)
    send_to_agent(p.replica, p.node_index, wire::kHeartbeat,
                  rt::pack_payload(beat));
  std::uint64_t inc = heartbeat_incarnation_;
  env_.cluster->engine().schedule_after(
      env_.config->heartbeat_period, [this, inc]() {
        if (heartbeat_incarnation_ == inc) heartbeat_tick();
      });
}

void NodeAgent::watchdog_tick() {
  if (!node_.alive()) return;
  for (Peer& p : peers_) {
    if (!p.suspected && now() - p.last_heard > env_.config->heartbeat_timeout) {
      p.suspected = true;
      wire::SuspectMsg suspect{p.replica, p.node_index};
      send_to_manager(wire::kSuspectDead, rt::pack_payload(suspect));
    }
  }
  std::uint64_t inc = heartbeat_incarnation_;
  env_.cluster->engine().schedule_after(
      env_.config->heartbeat_period, [this, inc]() {
        if (heartbeat_incarnation_ == inc) watchdog_tick();
      });
}

// ---------------------------------------------------------------------------
// Progress & completion hooks (Fig. 3 phases 1-3).
// ---------------------------------------------------------------------------

rt::ProgressDecision NodeAgent::on_progress(int slot, std::uint64_t iters) {
  (void)slot;
  switch (phase_) {
    case Phase::Idle:
      return rt::ProgressDecision::Continue;
    case Phase::Quiesce:
      // Every task pauses at its first report after the request — i.e. at
      // the end of the iteration it was already inside. The reduction
      // contribution was computed from those in-flight iterations when the
      // request arrived, so no task can pause beyond it.
      return rt::ProgressDecision::Pause;
    case Phase::RunToIteration:
      if (iters >= decided_iteration_) {
        env_.cluster->engine().schedule_after(0.0, [this, e = epoch_]() {
          if (phase_ == Phase::RunToIteration && epoch_ == e) check_ready();
        });
        return rt::ProgressDecision::Pause;
      }
      return rt::ProgressDecision::Continue;
    case Phase::AwaitVerdict:
      // Semi-blocking mode: the snapshot is sealed; the application runs on
      // under the in-flight comparison.
      if (env_.config->semi_blocking && !single_replica_ckpt_)
        return rt::ProgressDecision::Continue;
      return rt::ProgressDecision::Pause;
    case Phase::Halted:
    case Phase::Packing:
      // No task should be running here; pause defensively.
      return rt::ProgressDecision::Pause;
  }
  return rt::ProgressDecision::Continue;
}

void NodeAgent::on_task_done(int slot) {
  done_.at(static_cast<std::size_t>(slot)) = true;
  report_node_done_if_complete();
  // A done task never reports progress again; re-evaluate any readiness
  // wait that counts it.
  if (phase_ == Phase::RunToIteration) check_ready();
}

void NodeAgent::report_node_done_if_complete() {
  if (node_done_reported_) return;
  if (std::all_of(done_.begin(), done_.end(), [](bool b) { return b; })) {
    node_done_reported_ = true;
    wire::EpochMsg msg{epoch_};
    send_to_manager(wire::kNodeDone, rt::pack_payload(msg));
  }
}

void NodeAgent::refresh_done_from_tasks() {
  done_.assign(static_cast<std::size_t>(node_.num_tasks()), false);
  node_done_reported_ = false;
}

// ---------------------------------------------------------------------------
// Message dispatch.
// ---------------------------------------------------------------------------

void NodeAgent::on_service_message(const rt::Message& m) {
  // Any traffic from a watched peer proves it alive — and clears a standing
  // suspicion (under network loss, a delayed heartbeat burst must not leave
  // a live peer permanently suspected).
  for (Peer& p : peers_) {
    if (m.src_replica == p.replica && m.src.node_index == p.node_index) {
      p.last_heard = now();
      p.suspected = false;
      break;
    }
  }

  switch (m.tag) {
    case wire::kHeartbeat:
      return;  // freshness recorded above
    case wire::kCheckpointRequest:
      return handle_checkpoint_request(
          rt::unpack_payload<wire::CkptRequestMsg>(m));
    case wire::kIterationDecided:
      return handle_iteration_decided(
          rt::unpack_payload<wire::IterationMsg>(m));
    case wire::kPackCommand:
      return handle_pack_command(rt::unpack_payload<wire::EpochMsg>(m));
    case wire::kCommit:
      return handle_commit(rt::unpack_payload<wire::EpochMsg>(m));
    case wire::kRollbackSdc:
      return handle_rollback(rt::unpack_payload<wire::RestoreCmdMsg>(m), true);
    case wire::kRollbackHard:
      return handle_rollback(rt::unpack_payload<wire::RestoreCmdMsg>(m),
                             false);
    case wire::kHalt:
      return handle_halt();
    case wire::kAbortConsensus:
      return handle_abort(rt::unpack_payload<wire::EpochMsg>(m));
    case wire::kResume:
      return handle_resume();
    case wire::kSendVerifiedToBuddy:
      return handle_send_to_buddy(m, /*candidate=*/false);
    case wire::kSendCandidateToBuddy:
      return handle_send_to_buddy(m, /*candidate=*/true);
    case wire::kFlushCommand:
      return handle_flush_command(rt::unpack_payload<wire::FlushCmdMsg>(m));
    case wire::kFetchFromDurable:
      return handle_fetch_from_durable(
          rt::unpack_payload<wire::RestoreCmdMsg>(m));
    case wire::kXorRebuildSend: {
      auto cmd = rt::unpack_payload<wire::XorRebuildCmd>(m);
      if (ckpt::XorScheme* x = xor_scheme())
        x->on_rebuild_request(cmd.dead_index, cmd.barrier, store_.verified());
      return;
    }
    case wire::kRsRebuildSend: {
      auto cmd = rt::unpack_payload<wire::RsRebuildCmd>(m);
      if (ckpt::RsScheme* r = rs_scheme()) {
        std::vector<int> dead(cmd.dead_indices.begin(),
                              cmd.dead_indices.end());
        r->on_rebuild_request(dead, cmd.barrier, store_.verified());
      }
      return;
    }
    case wire::kTreeProgress:
      return handle_tree_progress(rt::unpack_payload<wire::ProgressMsg>(m),
                                  m.src.node_index);
    case wire::kTreeReady:
      return handle_tree_ready(rt::unpack_payload<wire::ReadyMsg>(m),
                               m.src.node_index);
    case wire::kTreeVerdict:
      return handle_tree_verdict(rt::unpack_payload<wire::VerdictMsg>(m),
                                 m.src.node_index);
    case wire::kBuddyCheckpoint:
      return handle_buddy_checkpoint(m);
    case wire::kBuddyChecksum:
      return handle_buddy_checksum(m);
    case wire::kBuddyDeltaCheckpoint:
      return handle_buddy_delta_checkpoint(m);
    case wire::kBuddyNeedFull:
      return handle_buddy_need_full(rt::unpack_payload<wire::NeedFullMsg>(m));
    case wire::kXorParityDeltaChunk: {
      auto msg = rt::unpack_payload<ckpt::XorDeltaChunkMsg>(m);
      if (ckpt::XorScheme* x = xor_scheme())
        x->on_delta_chunk(m.src.node_index, msg, m.attachment);
      return;
    }
    case wire::kXorParityChunk: {
      auto msg = rt::unpack_payload<ckpt::XorChunkMsg>(m);
      if (ckpt::XorScheme* x = xor_scheme())
        x->on_chunk(m.src.node_index, msg, m.attachment);
      return;
    }
    case wire::kXorRebuildPiece: {
      auto msg = rt::unpack_payload<ckpt::XorPieceMsg>(m);
      if (msg.barrier <= last_restore_barrier_) return;  // wave already taken
      if (ckpt::XorScheme* x = xor_scheme())
        x->on_piece(m.src.node_index, msg, m.attachment);
      return;
    }
    case wire::kRsParityChunk: {
      auto msg = rt::unpack_payload<ckpt::RsChunkMsg>(m);
      if (ckpt::RsScheme* r = rs_scheme())
        r->on_chunk(m.src.node_index, msg, m.attachment);
      return;
    }
    case wire::kRsParityDeltaChunk: {
      auto msg = rt::unpack_payload<ckpt::RsDeltaChunkMsg>(m);
      if (ckpt::RsScheme* r = rs_scheme())
        r->on_delta_chunk(m.src.node_index, msg, m.attachment);
      return;
    }
    case wire::kRsRebuildPiece: {
      auto msg = rt::unpack_payload<ckpt::RsPieceMsg>(m);
      if (msg.barrier <= last_restore_barrier_) return;  // wave already taken
      if (ckpt::RsScheme* r = rs_scheme())
        r->on_piece(m.src.node_index, msg, m.attachment);
      return;
    }
    default:
      log_warn("acr.agent") << "unknown service tag " << m.tag;
  }
}

// ---------------------------------------------------------------------------
// Checkpoint consensus (Fig. 3).
// ---------------------------------------------------------------------------

void NodeAgent::handle_checkpoint_request(const wire::CkptRequestMsg& msg) {
  // Epochs only move forward: a request at or below the current epoch is a
  // duplicate or a straggler from an aborted round, never a new consensus.
  if (msg.epoch <= epoch_) return;
  epoch_ = msg.epoch;
  participants_ = msg.participants;
  single_replica_ckpt_ = participants_ != 3;
  phase_ = Phase::Quiesce;
  local_quiesced_ = false;
  local_ready_ = false;
  pack_complete_ = false;
  have_remote_ = false;
  local_verdict_done_ = false;
  subtree_match_ = true;
  subtree_mismatches_ = 0;
  num_children_ = static_cast<int>(child_indices().size());
  progress_children_.clear();
  ready_children_.clear();
  verdict_children_.clear();

  // Fig. 3 phase 2: the node's contribution to the max-progress reduction.
  // A running task is somewhere inside iteration progress+1 — it may
  // already have sent that iteration's messages, so the checkpoint
  // iteration must not fall below it (a lower cut would strand those
  // messages and deadlock the sender on paused neighbors). Done tasks
  // contribute their final progress. This value is available immediately:
  // the reduction does not wait for anyone to pause.
  std::uint64_t floor = 0;
  for (int slot = 0; slot < node_.num_tasks(); ++slot) {
    std::uint64_t p = node_.task_progress(slot);
    if (!done_.at(static_cast<std::size_t>(slot)) &&
        !node_.task_paused(slot))
      p += 1;
    floor = std::max(floor, p);
  }
  subtree_max_progress_ = floor;
  local_quiesced_ = true;
  // Replay any child contributions that overtook this request (a child's
  // own request arrived earlier and its report beat ours here).
  if (auto it = progress_stash_.find(epoch_); it != progress_stash_.end()) {
    for (const auto& [child, progress] : it->second) {
      subtree_max_progress_ = std::max(subtree_max_progress_, progress);
      progress_children_.insert(child);
    }
  }
  // Stashes at or below this epoch can never be consumed again.
  progress_stash_.erase(progress_stash_.begin(),
                        progress_stash_.upper_bound(epoch_));
  maybe_send_progress_up();
}

void NodeAgent::maybe_send_progress_up() {
  if (!local_quiesced_ ||
      static_cast<int>(progress_children_.size()) < num_children_)
    return;
  wire::ProgressMsg msg{epoch_, subtree_max_progress_};
  if (is_root()) {
    send_to_manager(wire::kReplicaQuiesced, rt::pack_payload(msg));
  } else {
    send_to_agent(replica_, parent_index(), wire::kTreeProgress,
                  rt::pack_payload(msg));
  }
}

void NodeAgent::handle_tree_progress(const wire::ProgressMsg& msg, int child) {
  if (msg.epoch > epoch_) {
    // The child heard about epoch msg.epoch before we did: park its
    // contribution until our own kCheckpointRequest lands.
    auto& slot = progress_stash_[msg.epoch][child];
    slot = std::max(slot, msg.max_progress);
    return;
  }
  if (msg.epoch != epoch_ || phase_ != Phase::Quiesce) return;
  if (!progress_children_.insert(child).second) return;  // duplicate
  subtree_max_progress_ = std::max(subtree_max_progress_, msg.max_progress);
  maybe_send_progress_up();
}

void NodeAgent::handle_iteration_decided(const wire::IterationMsg& msg) {
  if (msg.epoch != epoch_ || phase_ != Phase::Quiesce) return;
  decided_iteration_ = msg.iteration;
  phase_ = Phase::RunToIteration;
  // Tasks short of the target resume; the pause rule in on_progress stops
  // them exactly at the decided iteration.
  for (int slot = 0; slot < node_.num_tasks(); ++slot) {
    if (done_.at(static_cast<std::size_t>(slot))) continue;
    if (node_.task_progress(slot) < decided_iteration_)
      node_.unpause_task(slot);
  }
  check_ready();
}

void NodeAgent::check_ready() {
  if (phase_ != Phase::RunToIteration || local_ready_) return;
  for (int slot = 0; slot < node_.num_tasks(); ++slot) {
    if (done_.at(static_cast<std::size_t>(slot))) continue;
    if (!(node_.task_paused(slot) &&
          node_.task_progress(slot) >= decided_iteration_))
      return;
  }
  local_ready_ = true;
  maybe_send_ready_up();
}

void NodeAgent::maybe_send_ready_up() {
  if (!local_ready_ ||
      static_cast<int>(ready_children_.size()) < num_children_)
    return;
  wire::ReadyMsg msg{epoch_};
  if (is_root()) {
    send_to_manager(wire::kReplicaReady, rt::pack_payload(msg));
  } else {
    send_to_agent(replica_, parent_index(), wire::kTreeReady,
                  rt::pack_payload(msg));
  }
}

void NodeAgent::handle_tree_ready(const wire::ReadyMsg& msg, int child) {
  // Unlike progress, readiness cannot arrive early: a child only reports
  // after kIterationDecided, which the manager sends once every root has
  // contributed — requiring this node's own request to have been handled.
  if (msg.epoch != epoch_) return;
  if (!ready_children_.insert(child).second) return;  // duplicate
  maybe_send_ready_up();
}

// ---------------------------------------------------------------------------
// Pack + SDC detection (Fig. 3 phase 4, §2.1).
// ---------------------------------------------------------------------------

void NodeAgent::handle_pack_command(const wire::EpochMsg& msg) {
  if (msg.epoch != epoch_ || phase_ != Phase::RunToIteration) return;
  phase_ = Phase::Packing;
  pack_candidate();
}

void NodeAgent::pack_candidate() {
  // Checksum mode needs the buddy digest of the packed image (§4.2). With
  // a serial kernel pool, fold it in the SAME traversal that packs the
  // image: the Fletcher sink tees off the packer's byte stream, so there is
  // no second pass over the checkpoint. With kernel workers enabled, pack
  // plain (the tee would serialize the digest behind the single-threaded
  // packer) and digest the finished, cache-warm image chunk-parallel
  // instead. Both paths produce the identical Fletcher-64 value — the
  // chunked driver merges with the exact combine operator — so the choice
  // never shows in the protocol.
  bool want_digest = env_.config->detection == SdcDetection::Checksum &&
                     !single_replica_ckpt_;
  bool stream_digest = want_digest && parallel::global_threads() == 0;
  checksum::Fletcher64Sink digest;
  pup::Checkpoint image = node_.pack_state(stream_digest ? &digest : nullptr);
  if (want_digest)
    local_digest_ = stream_digest ? digest.digest()
                                  : checksum::fletcher64_chunked(image.bytes());
  double bytes = static_cast<double>(image.size());
  // Codec delta stage: the candidate's per-chunk digests, compared against
  // the base epoch's to find dirty chunks. Computed chunk-parallel on the
  // cache-warm image; the grid depends only on the image size, so the
  // digests (and everything downstream) are thread-count invariant.
  if (codec_on() && env_.config->codec.delta_on())
    cand_digests_ = ckpt::CodecPipeline::digests(image.bytes());
  store_.stage_candidate(epoch_, decided_iteration_, std::move(image));
  ++checkpoints_packed_;

  // Charge the serialization cost, plus the digest cost in checksum mode
  // (~4 instructions per byte, §4.2).
  double pack_time = bytes / env_.cluster->config().net.pack_bandwidth;
  if (env_.config->detection == SdcDetection::Checksum &&
      !single_replica_ckpt_) {
    pack_time += bytes * 4.0 * env_.cluster->config().net.gamma;
  }
  std::uint64_t inc = node_.incarnation();
  env_.cluster->engine().schedule_after(pack_time, [this, inc]() {
    if (node_.alive() && node_.incarnation() == inc) after_pack();
  });
}

void NodeAgent::after_pack() {
  pack_complete_ = true;
  // Semi-blocking mode: the snapshot is taken; the application continues
  // while the copy travels and is compared. (Recovery checkpoints stay
  // blocking: the healthy replica is about to ship state the crashed side
  // must restore from verbatim.)
  if (env_.config->semi_blocking && !single_replica_ckpt_)
    node_.unpause_all();
  if (single_replica_ckpt_) {
    // Recovery checkpoint: no cross-replica comparison possible.
    phase_ = Phase::AwaitVerdict;
    wire::EpochMsg msg{epoch_};
    send_to_manager(wire::kPackDone, rt::pack_payload(msg));
    return;
  }
  if (env_.config->detection == SdcDetection::Checksum) {
    // local_digest_ was folded during pack_candidate's single traversal.
    if (replica_ == 0) {
      wire::ChecksumMsg msg{epoch_, local_digest_,
                            static_cast<std::uint64_t>(
                                store_.candidate().image.size())};
      send_to_agent(1, index_, wire::kBuddyChecksum, rt::pack_payload(msg));
      phase_ = Phase::AwaitVerdict;
      return;
    }
  } else {
    if (replica_ == 0) {
      if (codec_on())
        send_codec_frame_to_buddy();
      else
        send_checkpoint_to_buddy(store_.candidate(), kPurposeCompare);
      phase_ = Phase::AwaitVerdict;
      return;
    }
  }
  // Replica 1: wait for the remote image/digest, then compare.
  phase_ = Phase::AwaitVerdict;
  maybe_compare();
}

void NodeAgent::send_checkpoint_to_buddy(const ckpt::Image& ckpt,
                                         std::uint8_t purpose,
                                         std::uint64_t barrier) {
  wire::CheckpointMsg msg;
  msg.epoch = ckpt.epoch;
  msg.iteration = ckpt.iteration;
  msg.purpose = purpose;
  msg.barrier = barrier;
  // The image rides as an attachment aliasing the stored checkpoint: the
  // transfer is charged on the wire but never copied in memory.
  double wire_bytes = static_cast<double>(ckpt.image.size());
  send_to_agent(1 - replica_, index_, wire::kBuddyCheckpoint,
                rt::pack_payload(msg), wire_bytes, ckpt.image.buffer());
}

void NodeAgent::handle_buddy_checksum(const rt::Message& m) {
  auto msg = rt::unpack_payload<wire::ChecksumMsg>(m);
  if (msg.epoch != epoch_) return;
  remote_checksum_ = msg;
  have_remote_ = true;
  maybe_compare();
}

void NodeAgent::handle_buddy_checkpoint(const rt::Message& m) {
  auto msg = rt::unpack_payload<wire::CheckpointMsg>(m);
  if (msg.purpose == kPurposeRestore) {
    if (msg.barrier <= last_restore_barrier_) return;  // wave already taken
    // Buddy-assisted restore (spare promotion, medium/weak forward jump).
    // The image shares the sender's buffer; no copy is made here either.
    ckpt::Image incoming;
    incoming.valid = true;
    incoming.epoch = msg.epoch;
    incoming.iteration = msg.iteration;
    incoming.image = pup::Checkpoint(m.attachment);
    restore_from(incoming, "buddy checkpoint", msg.barrier);
    return;
  }
  if (msg.epoch != epoch_) return;
  remote_image_ = m.attachment;
  have_remote_ = true;
  maybe_compare();
}

// ---------------------------------------------------------------------------
// Codec pipeline: delta/compressed buddy transfer (--ckpt-delta/--ckpt-compress).
// ---------------------------------------------------------------------------

void NodeAgent::send_codec_frame_to_buddy() {
  const ckpt::CodecConfig& codec = env_.config->codec;
  const ckpt::Image& cand = store_.candidate();
  std::span<const std::byte> image = cand.image.bytes();
  // A delta is legal only when the buddy provably holds the base image this
  // node would diff against: the last epoch it received in full.
  bool base_ok = codec.delta_on() && codec_base_.epoch != 0 &&
                 sent_base_epoch_ == codec_base_.epoch &&
                 codec_base_.image.size() == image.size() &&
                 !cand_digests_.empty();
  if (!base_ok && !codec.compress_on()) {
    // A raw full frame would be the legacy bytes plus a chunk map: the
    // legacy transfer is strictly better. (First epoch, post-fallback.)
    send_checkpoint_to_buddy(cand, kPurposeCompare);
    return;
  }
  ckpt::CodecPipeline pipe(codec);
  ckpt::CodecFrame frame =
      base_ok ? pipe.encode(cand.image.buffer(), cand_digests_,
                            &codec_base_.digests, codec_base_.image.size())
              : pipe.encode_full(cand.image.buffer());
  wire::DeltaCheckpointMsg msg;
  msg.epoch = cand.epoch;
  msg.iteration = cand.iteration;
  msg.base_epoch = base_ok ? codec_base_.epoch : 0;
  msg.full_bytes = frame.map.full_bytes;
  msg.purpose = kPurposeCompare;
  msg.encoding = frame.encoding;
  msg.present = frame.map.present;
  ++codec_stats_.frames;
  if (frame.map.all_present()) ++codec_stats_.full_frames;
  codec_stats_.chunks_total += frame.map.chunks();
  codec_stats_.chunks_shipped += frame.map.present_chunks();
  codec_stats_.raw_bytes += image.size();
  codec_stats_.wire_bytes += frame.map.map_bytes() + frame.payload.size();
  if (env_.cluster->trace_enabled(rt::kTraceCodec))
    env_.cluster->trace().record(
        now(), rt::TraceKind::DeltaShipped, replica_, index_,
        "epoch=" + std::to_string(cand.epoch) + " chunks=" +
            std::to_string(frame.map.present_chunks()) + "/" +
            std::to_string(frame.map.chunks()) +
            " bytes=" + std::to_string(frame.payload.size()));
  // The chunk map travels in the pup'd payload and the encoded chunks as
  // the attachment, so bytes_on_wire=-1 charges exactly map + payload —
  // the whole point of the pipeline.
  send_to_agent(1 - replica_, index_, wire::kBuddyDeltaCheckpoint,
                rt::pack_payload(msg), /*bytes_on_wire=*/-1.0,
                frame.payload);
}

void NodeAgent::handle_buddy_delta_checkpoint(const rt::Message& m) {
  auto msg = rt::unpack_payload<wire::DeltaCheckpointMsg>(m);
  if (msg.epoch != epoch_ || have_remote_) return;
  ckpt::CodecFrame frame;
  frame.map.full_bytes = msg.full_bytes;
  frame.map.present = msg.present;
  frame.encoding = msg.encoding;
  frame.payload = m.attachment;
  bool partial = !frame.map.all_present();
  bool base_ok = !partial || (msg.base_epoch != 0 &&
                              buddy_base_.epoch == msg.base_epoch &&
                              buddy_base_.image.size() == msg.full_bytes);
  if (base_ok) {
    try {
      // Reconstruction is EXACT (raw dirty chunks over the cached base),
      // so the compare below sees the same bytes a full transfer carries:
      // SDC detection semantics are untouched by the codec.
      remote_image_ = ckpt::CodecPipeline::decode(
          frame, partial ? buddy_base_.image.bytes()
                         : std::span<const std::byte>{});
      have_remote_ = true;
      maybe_compare();
      return;
    } catch (const pup::StreamError&) {
      // Corrupt frame: treat exactly like a lost base and ask for a full.
    }
  }
  buddy_base_ = CodecBase{};  // whatever base we held is not trustworthy
  if (env_.cluster->trace_enabled(rt::kTraceCodec))
    env_.cluster->trace().record(
        now(), rt::TraceKind::DeltaFallback, replica_, index_,
        "epoch=" + std::to_string(msg.epoch) +
            " base=" + std::to_string(msg.base_epoch));
  wire::NeedFullMsg need{0};
  send_to_agent(1 - replica_, index_, wire::kBuddyNeedFull,
                rt::pack_payload(need));
}

void NodeAgent::handle_buddy_need_full(const wire::NeedFullMsg& msg) {
  (void)msg;
  sent_base_epoch_ = 0;  // every later epoch ships full until re-established
  ++codec_stats_.need_full;
  // The compare round is stalled on the rejected frame: re-ship the same
  // candidate as a legacy full image (idempotent on the receiver).
  if (replica_ == 0 && phase_ == Phase::AwaitVerdict &&
      !single_replica_ckpt_ &&
      env_.config->detection == SdcDetection::FullCompare &&
      store_.has_candidate() && store_.candidate().epoch == epoch_)
    send_checkpoint_to_buddy(store_.candidate(), kPurposeCompare);
}

void NodeAgent::invalidate_codec_bases() {
  codec_base_ = CodecBase{};
  buddy_base_ = CodecBase{};
  sent_base_epoch_ = 0;
  cand_digests_.clear();
  l2_base_epoch_ = 0;
  l2_base_digests_.clear();
  l2_base_bytes_ = 0;
  xor_force_full_ = true;
}

void NodeAgent::maybe_compare() {
  if (replica_ != 1 || !pack_complete_ || !have_remote_ ||
      local_verdict_done_)
    return;
  if (env_.config->detection == SdcDetection::Checksum) {
    bool match = remote_checksum_.digest == local_digest_ &&
                 remote_checksum_.full_bytes == store_.candidate().image.size();
    finish_local_verdict(match);
    return;
  }
  // Full comparison: charge the streaming compare cost, then judge.
  double bytes = static_cast<double>(store_.candidate().image.size());
  double cost = bytes / env_.cluster->config().net.compare_bandwidth;
  std::uint64_t inc = node_.incarnation();
  env_.cluster->engine().schedule_after(cost, [this, inc]() {
    if (!node_.alive() || node_.incarnation() != inc) return;
    pup::CompareResult r = pup::compare_streams(
        store_.candidate().image.bytes(), remote_image_.bytes(),
        env_.config->checker);
    finish_local_verdict(r.match);
  });
}

void NodeAgent::finish_local_verdict(bool match) {
  local_verdict_done_ = true;
  subtree_match_ = subtree_match_ && match;
  if (!match) ++subtree_mismatches_;
  maybe_send_verdict_up();
}

void NodeAgent::maybe_send_verdict_up() {
  if (!local_verdict_done_ ||
      static_cast<int>(verdict_children_.size()) < num_children_)
    return;
  wire::VerdictMsg msg{epoch_, static_cast<std::uint8_t>(subtree_match_),
                       subtree_mismatches_};
  if (is_root()) {
    send_to_manager(wire::kReplicaVerdict, rt::pack_payload(msg));
  } else {
    send_to_agent(replica_, parent_index(), wire::kTreeVerdict,
                  rt::pack_payload(msg));
  }
}

void NodeAgent::handle_tree_verdict(const wire::VerdictMsg& msg, int child) {
  if (msg.epoch != epoch_) return;
  if (!verdict_children_.insert(child).second) return;  // duplicate
  subtree_match_ = subtree_match_ && (msg.match != 0);
  subtree_mismatches_ += msg.mismatched_nodes;
  maybe_send_verdict_up();
}

// ---------------------------------------------------------------------------
// Commit / rollback / recovery actions.
// ---------------------------------------------------------------------------

void NodeAgent::handle_commit(const wire::EpochMsg& msg) {
  // Only the consensus round this agent is actually in may be committed: a
  // freshly promoted spare (epoch 0) or a node mid-restore must not be
  // unpaused by a commit addressed to its predecessor's round.
  if (msg.epoch != epoch_ || awaiting_go_) return;
  if (store_.promote(msg.epoch) == ckpt::PromoteResult::Promoted) {
    // A new verified image exists: let the redundancy scheme protect it
    // (no-op under local/partner — the buddy already holds its copy).
    if (!codec_on()) {
      scheme_->on_verified(store_.verified());
    } else {
      const ckpt::CodecConfig& codec = env_.config->codec;
      // The hints point at the PREVIOUS committed image — the delta base —
      // so they must be built before codec_base_ advances to this epoch.
      ckpt::DeltaHints hints;
      hints.codec = &codec;
      hints.base_image = &codec_base_.image;
      hints.base_digests = &codec_base_.digests;
      hints.digests = &cand_digests_;
      hints.base_epoch = codec_base_.epoch;
      hints.force_full = xor_force_full_;
      scheme_->on_verified(store_.verified(), &hints);
      xor_force_full_ = false;
      if (codec.delta_on()) {
        // The committed image becomes every channel's next delta base.
        codec_base_.epoch = msg.epoch;
        codec_base_.image = store_.verified().image.buffer();
        codec_base_.digests = std::move(cand_digests_);
        cand_digests_.clear();
        if (env_.config->detection == SdcDetection::FullCompare &&
            !single_replica_ckpt_) {
          if (replica_ == 0) {
            // The buddy compared (and therefore holds) this full image.
            sent_base_epoch_ = msg.epoch;
          } else if (have_remote_ && remote_image_.size() > 0) {
            // Cache the buddy's committed image: incoming delta frames are
            // overlaid on it. Aliases the reconstructed/shipped buffer.
            buddy_base_.epoch = msg.epoch;
            buddy_base_.image = remote_image_;
            buddy_base_.digests =
                ckpt::CodecPipeline::digests(remote_image_.bytes());
          }
        }
      }
    }
    // An in-flight flush of the previous epoch is now pointless: the next
    // kFlushCommand targets the new verified image.
    if (tier_enabled() && flush_.active && flush_.epoch < msg.epoch)
      supersede_flush(/*trace=*/true);
  }
  phase_ = Phase::Idle;
  node_.unpause_all();
}

void NodeAgent::handle_rollback(const wire::RestoreCmdMsg& msg, bool sdc) {
  if (msg.barrier <= last_restore_barrier_) return;  // wave already taken
  const char* why = sdc ? "sdc rollback" : "hard rollback";
  if (!store_.has_verified()) {
    // Local/xor schemes may still hold a candidate for exactly the rollback
    // epoch (the commit raced this failure): a candidate at that epoch
    // necessarily passed the comparison, so restoring it needs no traffic.
    // The partner scheme keeps the original protocol to the byte: ask the
    // manager to route the buddy's verified image here.
    if (scheme_->kind() != ckpt::Scheme::Partner) {
      if (const ckpt::Image* img = store_.restorable(msg.epoch)) {
        ckpt::Image local = *img;
        restore_from(local, why, msg.barrier);
        return;
      }
    }
    // A freshly promoted spare caught in a wider rollback before its first
    // restore landed: it holds no checkpoint of its own. Stay gated and ask
    // the manager to route a recovery image here instead.
    node_.set_gated(true);
    wire::BarrierMsg need{msg.barrier};
    send_to_manager(wire::kNeedBuddyRestore, rt::pack_payload(need));
    return;
  }
  store_.discard_candidate();
  restore_from(store_.verified(), why, msg.barrier);
}

void NodeAgent::restore_from(const ckpt::Image& ckpt, const char* why,
                             std::uint64_t barrier) {
  ACR_REQUIRE(ckpt.valid, "restore from invalid checkpoint");
  // Record the wave at initiation so a duplicated restore command (or a
  // double-routed buddy image) for the same barrier is a no-op.
  last_restore_barrier_ = std::max(last_restore_barrier_, barrier);
  double bytes = static_cast<double>(ckpt.image.size());
  double cost = bytes / env_.cluster->config().net.unpack_bandwidth;
  // Stage the checkpoint for the deferred restore; the image Buffer is
  // shared, so this costs a refcount bump even for message-borne images.
  ckpt::Image local = ckpt;
  node_.set_gated(true);  // drop app traffic until the resume barrier opens
  env_.cluster->engine().schedule_after(cost, [this, local = std::move(local),
                                               why, barrier]() {
    if (!node_.alive()) return;
    // A newer wave (or a scratch restart's floor) superseded this restore
    // while its unpack was in flight: applying it now would revive
    // abandoned-timeline state on part of the cluster.
    if (last_restore_barrier_ != barrier) return;
    node_.restore_state(local.image);
    store_.adopt_verified(local);
    phase_ = Phase::Idle;
    refresh_done_from_tasks();
    // Every delta base is now stale: the adopted image broke the committed
    // chain this node's channels were diffing along, and the peers' caches
    // of THIS node's image may be gone with their hardware. Ship full
    // everywhere until new bases are established.
    invalidate_codec_bases();
    // The restored image is the node's (possibly new) verified state: the
    // redundancy scheme re-protects it. Under xor this is what re-feeds a
    // promoted spare's group parity — every member re-sends its chunks
    // after the rollback wave; holders that already completed this epoch
    // ignore them.
    scheme_->on_verified(store_.verified());
    // If L2 lacks the adopted epoch for this role (a promoted spare whose
    // predecessor died mid-flush), re-drain it so the epoch converges back
    // to fully-flushed. No-op when the tier is disabled.
    maybe_reflush_after_restore();
    // Two-phase restart (the paper's restart barriers): report done, stay
    // gated, and resume only on the manager's collective go (kResume).
    awaiting_go_ = true;
    log_debug("acr.agent") << "node (" << replica_ << "," << index_
                           << ") restored from " << why << " epoch "
                           << local.epoch << " barrier " << barrier;
    wire::BarrierMsg done{barrier};
    send_to_manager(wire::kRestoreDone, rt::pack_payload(done));
  });
}

void NodeAgent::handle_halt() {
  phase_ = Phase::Halted;
  // Tasks pause at their next progress report; nothing else to do — the
  // recovery checkpoint will arrive as a purpose=restore buddy checkpoint.
}

void NodeAgent::handle_abort(const wire::EpochMsg& msg) {
  // Abort only the round it names: a straggling abort from an earlier
  // consensus must not cancel a later one.
  if (msg.epoch != epoch_) return;
  if (phase_ == Phase::Idle || phase_ == Phase::Halted) return;
  store_.discard_candidate();
  phase_ = Phase::Idle;
  node_.unpause_all();
}

void NodeAgent::handle_resume() {
  for (Peer& p : peers_) {
    p.last_heard = now();
    p.suspected = false;
  }
  if (phase_ == Phase::Halted) phase_ = Phase::Idle;
  if (awaiting_go_) {
    awaiting_go_ = false;
    node_.set_gated(false);
    node_.resume_all_tasks();
  }
}

// ---------------------------------------------------------------------------
// Durable tier: async flush (L1 -> L2 drain) and fetch (L2 -> L1 restore).
// ---------------------------------------------------------------------------

bool NodeAgent::tier_enabled() const {
  return env_.tier != nullptr && env_.config->tier.enabled();
}

void NodeAgent::handle_flush_command(const wire::FlushCmdMsg& msg) {
  if (!tier_enabled()) return;
  start_flush(msg.epoch, msg.urgent != 0);
}

void NodeAgent::start_flush(std::uint64_t epoch, bool urgent) {
  if (!tier_enabled() || !node_.alive()) return;
  // Only the CURRENT verified image may drain: a stale command for an epoch
  // this node no longer holds (or never promoted) is unservable.
  if (!store_.has_verified() || store_.verified().epoch != epoch) return;
  if (flush_.active && flush_.epoch == epoch) {
    // A drain command caught a background flush of the same epoch mid-air:
    // upgrade its urgency, keep its chunks.
    flush_.urgent = flush_.urgent || urgent;
    return;
  }
  if (flush_.active) supersede_flush(/*trace=*/true);
  if (env_.tier->has(replica_, index_, epoch)) {
    // Already durable (a fetch round-tripped the image, or a drain re-asks):
    // answer from the index without touching the channel.
    wire::FlushDoneMsg done{epoch, 0};
    send_to_manager(wire::kFlushDone, rt::pack_payload(done));
    return;
  }
  flush_.active = true;
  flush_.epoch = epoch;
  flush_.urgent = urgent;
  flush_.blob.clear();
  flush_.base_epoch = 0;
  flush_.digests.clear();
  if (codec_on()) {
    // Codec path: encode the v2 blob NOW so the chunked drain below
    // charges the (smaller) encoded size against the L2 channel. The blob
    // is published verbatim after the last chunk; for the same epoch the
    // verified image cannot change meanwhile, so pre-encoding is safe.
    const ckpt::Image& img = store_.verified();
    const ckpt::CodecConfig& codec = env_.config->codec;
    std::vector<std::uint32_t> digests =
        codec.delta_on() ? ckpt::CodecPipeline::digests(img.image.bytes())
                         : std::vector<std::uint32_t>{};
    // Delta against the newest blob this node published, while that chain
    // stays fetchable and short (a bounded chain bounds both fetch cost
    // and the blast radius of a lost ancestor).
    bool base_ok = codec.delta_on() && l2_base_epoch_ != 0 &&
                   l2_base_epoch_ < epoch &&
                   l2_base_bytes_ == img.image.size() &&
                   env_.tier->has(replica_, index_, l2_base_epoch_) &&
                   env_.tier->chain_length(replica_, index_, l2_base_epoch_) <
                       ckpt::kTierMaxChain;
    if (base_ok || codec.compress_on()) {
      ckpt::CodecPipeline pipe(codec);
      ckpt::DeltaBlob blob;
      blob.epoch = epoch;
      blob.iteration = img.iteration;
      blob.base_epoch = base_ok ? l2_base_epoch_ : 0;
      blob.frame = base_ok ? pipe.encode(img.image.buffer(), digests,
                                         &l2_base_digests_, l2_base_bytes_)
                           : pipe.encode_full(img.image.buffer());
      flush_.blob = ckpt::encode_delta_image(blob);
      flush_.base_epoch = blob.base_epoch;
    }
    // Without a base and without compression the legacy v1 blob is
    // strictly smaller than a raw v2 frame; flush_.blob stays empty.
    flush_.digests = std::move(digests);
  }
  flush_.remaining =
      flush_.blob.empty()
          ? ckpt::encoded_image_bytes(store_.verified().image.size())
          : flush_.blob.size();
  // Raw-vs-encoded accounting for the pipe (codec off: raw == the image).
  env_.cluster->l2_note_raw(static_cast<double>(store_.verified().image.size()));
  std::uint64_t seq = ++flush_seq_;
  if (env_.cluster->trace_enabled(rt::kTraceTier))
    env_.cluster->trace().record(
        now(), rt::TraceKind::FlushStarted, replica_, index_,
        "epoch=" + std::to_string(epoch) +
            " bytes=" + std::to_string(flush_.remaining));
  flush_next_chunk(seq);
}

void NodeAgent::flush_next_chunk(std::uint64_t seq) {
  if (seq != flush_seq_ || !flush_.active) return;
  if (!node_.alive()) {
    // Death mid-flush: nothing was published — the tier never sees a
    // half-written image (the in-memory analogue of temp-file + rename).
    flush_.active = false;
    return;
  }
  std::uint64_t chunk =
      std::min<std::uint64_t>(flush_.remaining, env_.config->tier.chunk_bytes);
  double delay = env_.cluster->l2_write(replica_ * num_nodes_ + index_,
                                        static_cast<double>(chunk));
  env_.cluster->engine().schedule_after(delay, [this, seq, chunk]() {
    if (seq != flush_seq_ || !flush_.active) return;
    if (!node_.alive()) {
      flush_.active = false;
      return;
    }
    flush_.remaining -= chunk;
    if (flush_.remaining > 0) {
      flush_next_chunk(seq);
      return;
    }
    // Final chunk landed. Publish only if the store STILL holds this epoch
    // as verified — an in-place restore may have replaced it meanwhile.
    bool publish =
        store_.has_verified() && store_.verified().epoch == flush_.epoch;
    if (publish) {
      if (!flush_.blob.empty()) {
        env_.tier->publish_blob(replica_, index_, flush_.epoch,
                                std::move(flush_.blob), flush_.base_epoch);
      } else {
        ckpt::StoredImage img;
        img.epoch = store_.verified().epoch;
        img.iteration = store_.verified().iteration;
        img.image = store_.verified().image;
        env_.tier->publish(replica_, index_, img);
      }
      if (codec_on() && env_.config->codec.delta_on()) {
        // This blob (v1 or v2 alike) anchors the next flush's delta.
        l2_base_epoch_ = flush_.epoch;
        l2_base_digests_ = std::move(flush_.digests);
        l2_base_bytes_ = store_.verified().image.size();
      }
    }
    finish_flush(publish);
  });
}

void NodeAgent::finish_flush(bool published) {
  if (env_.cluster->trace_enabled(rt::kTraceTier))
    env_.cluster->trace().record(
        now(), rt::TraceKind::FlushCompleted, replica_, index_,
        "epoch=" + std::to_string(flush_.epoch) +
            (published ? "" : " (stale, not published)"));
  wire::FlushDoneMsg done{
      flush_.epoch,
      static_cast<std::uint8_t>(published && flush_.urgent ? 1 : 0)};
  flush_.active = false;
  send_to_manager(wire::kFlushDone, rt::pack_payload(done));
}

void NodeAgent::supersede_flush(bool trace) {
  if (!flush_.active) return;
  ++flush_seq_;  // in-flight chunk completions fall dead
  flush_.active = false;
  if (trace && env_.cluster->trace_enabled(rt::kTraceTier))
    env_.cluster->trace().record(now(), rt::TraceKind::FlushSuperseded,
                                 replica_, index_,
                                 "epoch=" + std::to_string(flush_.epoch));
}

void NodeAgent::maybe_reflush_after_restore() {
  if (!tier_enabled()) return;
  std::uint64_t epoch = store_.verified().epoch;
  if (epoch == 0 || env_.tier->has(replica_, index_, epoch)) return;
  start_flush(epoch, /*urgent=*/false);
}

void NodeAgent::handle_fetch_from_durable(const wire::RestoreCmdMsg& msg) {
  if (msg.barrier <= last_restore_barrier_) return;  // wave already taken
  if (!tier_enabled()) return;
  // The wave's epoch is authoritative now; any background flush is moot.
  supersede_flush(/*trace=*/true);
  // chain_bytes == blob_bytes for a full image; for a delta blob it adds
  // the base chain the reconstruction must also read.
  std::uint64_t bytes = env_.tier->chain_bytes(replica_, index_, msg.epoch);
  if (bytes == 0) {
    // The manager targets newest_complete_epoch(), so this is only
    // reachable if the tier's contents changed under the wave; report back
    // so it can fall to the next rung instead of hanging the barrier.
    wire::BarrierMsg fail{msg.barrier};
    send_to_manager(wire::kFetchFailed, rt::pack_payload(fail));
    return;
  }
  node_.set_gated(true);  // the restore owns this node now
  if (env_.cluster->trace_enabled(rt::kTraceTier))
    env_.cluster->trace().record(
        now(), rt::TraceKind::FetchStarted, replica_, index_,
        "epoch=" + std::to_string(msg.epoch) +
            " bytes=" + std::to_string(bytes));
  double delay = env_.cluster->l2_read(replica_ * num_nodes_ + index_,
                                       static_cast<double>(bytes));
  env_.cluster->engine().schedule_after(
      delay, [this, epoch = msg.epoch, barrier = msg.barrier]() {
        if (!node_.alive()) return;
        if (barrier <= last_restore_barrier_) return;  // superseded in flight
        std::optional<ckpt::StoredImage> img =
            env_.tier->fetch(replica_, index_, epoch);
        if (!img) {
          wire::BarrierMsg fail{barrier};
          send_to_manager(wire::kFetchFailed, rt::pack_payload(fail));
          return;
        }
        if (env_.cluster->trace_enabled(rt::kTraceTier))
          env_.cluster->trace().record(now(), rt::TraceKind::FetchCompleted,
                                       replica_, index_,
                                       "epoch=" + std::to_string(epoch));
        ckpt::Image local;
        local.valid = true;
        local.epoch = img->epoch;
        local.iteration = img->iteration;
        local.image = std::move(img->image);
        restore_from(local, "l2 fetch", barrier);
      });
}

void NodeAgent::handle_send_to_buddy(const rt::Message& m, bool candidate) {
  auto barrier = rt::unpack_payload<wire::BarrierMsg>(m);
  const ckpt::Image& src = candidate && store_.has_candidate()
                               ? store_.candidate()
                               : store_.verified();
  if (!src.valid) {
    // Reachable only through pathological reordering of recovery waves
    // (e.g. a routed restore request from an abandoned barrier landing on a
    // node that lost its own checkpoints since). The manager's barrier
    // accounting ignores the wave; dropping is safe, crashing is not.
    log_warn("acr.agent") << "node (" << replica_ << "," << index_
                          << ") asked to ship a checkpoint it does not hold"
                          << " (barrier " << barrier.barrier << ")";
    return;
  }
  send_checkpoint_to_buddy(src, kPurposeRestore, barrier.barrier);
}

}  // namespace acr
