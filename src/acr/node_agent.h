// Per-node ACR agent (§2, §4).
//
// One agent lives on every application node. It implements the node-local
// side of every ACR protocol:
//  * Fig. 3 checkpoint consensus — pausing tasks at progress reports,
//    asynchronous max-progress and readiness reductions along a binary tree
//    of the replica's logical node indices;
//  * the double in-memory checkpoint store (ckpt::Store: verified +
//    candidate epochs) and the pluggable redundancy scheme protecting it
//    (ckpt::RedundancyScheme: local / partner / xor group parity);
//  * SDC detection — shipping the checkpoint (or its Fletcher-64 digest) to
//    the buddy node in the other replica and comparing (§2.1, §4.1–4.2);
//  * buddy heartbeating and no-response failure detection (§6.1);
//  * restore paths for rollback, buddy-assisted spare recovery, XOR group
//    rebuild, and the forward-jump restores of the medium/weak schemes.
//
// Reductions travel agent-to-agent with modelled latency; control
// broadcasts come directly from the job manager (see manager.h).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "acr/config.h"
#include "acr/wire.h"
#include "ckpt/redundancy.h"
#include "ckpt/rs.h"
#include "ckpt/store.h"
#include "ckpt/tier.h"
#include "pup/pup.h"
#include "rt/cluster.h"
#include "rt/node.h"

namespace acr {

/// Everything an agent needs from its surroundings.
struct AcrEnv {
  rt::Cluster* cluster = nullptr;
  const AcrConfig* config = nullptr;
  /// Simulated L2 durable tier; null (or config->tier disabled) = the
  /// single-tier protocol, byte-identical to builds without the tier.
  ckpt::DurableTier* tier = nullptr;
};

class NodeAgent final : public rt::NodeService {
 public:
  NodeAgent(AcrEnv env, rt::Node& node);

  /// Begin heartbeating and watchdog duty.
  void start();

  /// Re-arm the agent after a restart-from-scratch relaunch: forgets all
  /// checkpoints and protocol state, restarts heartbeat loops. Agents are
  /// never destroyed while their node lives (scheduled events hold `this`),
  /// so relaunches reuse them.
  void reset_for_restart();

  /// Adopt the node's current (replica, index) role. A repaired node
  /// re-enters the spare pool and may be promoted into a *different* role
  /// than the one it died in; the reused agent must re-derive its tree
  /// position and redundancy-scheme layout before reset_for_restart().
  /// No-op when the role is unchanged.
  void rebind_role();

  /// Raise the restore-wave floor: restore commands and in-flight restore
  /// applications whose barrier id is at or below `barrier` are ignored
  /// from now on. The manager calls this when a scratch restart abandons a
  /// recovery wave whose rollback/rebuild commands may still be in flight —
  /// without it, a stale kRollbackHard landing after the reset would revive
  /// pre-restart state on part of the cluster and deadlock the app.
  void quash_restores_through(std::uint64_t barrier);

  // --- rt::NodeService -------------------------------------------------------
  void on_service_message(const rt::Message& m) override;
  rt::ProgressDecision on_progress(int slot, std::uint64_t iters) override;
  void on_task_done(int slot) override;

  // --- introspection (tests / stats) ------------------------------------------
  enum class Phase {
    Idle,
    Quiesce,         ///< Fig. 3 phase 2: pausing at next report
    RunToIteration,  ///< Fig. 3 phase 3: running until the decided iteration
    Packing,         ///< Fig. 3 phase 4: serializing
    AwaitVerdict,    ///< checkpoint shipped / verdict pending
    Halted,          ///< weak scheme: waiting for the recovery checkpoint
  };
  Phase phase() const { return phase_; }
  bool has_verified() const { return store_.has_verified(); }
  std::uint64_t verified_epoch() const { return store_.verified().epoch; }
  std::uint64_t verified_iteration() const {
    return store_.verified().iteration;
  }
  std::size_t verified_bytes() const { return store_.verified().image.size(); }
  /// Bytes of the verified checkpoint image — the node's authoritative
  /// (cross-replica-compared) answer.
  std::span<const std::byte> verified_image() const {
    return store_.verified().image.bytes();
  }
  std::size_t checkpoints_packed() const { return checkpoints_packed_; }
  /// An L2 flush of the verified image is in flight on this node.
  bool flush_active() const { return flush_.active; }
  /// The double checkpoint store (verified/candidate epochs).
  const ckpt::Store& store() const { return store_; }
  /// The redundancy scheme protecting the verified image.
  const ckpt::RedundancyScheme& redundancy() const { return *scheme_; }

  /// Codec-pipeline traffic counters (all zero when the codec is off).
  struct CodecStats {
    std::uint64_t frames = 0;        ///< codec frames shipped to the buddy
    std::uint64_t full_frames = 0;   ///< frames that carried every chunk
    std::uint64_t chunks_total = 0;  ///< chunks covered by shipped frames
    std::uint64_t chunks_shipped = 0;  ///< chunks actually in the payloads
    std::uint64_t raw_bytes = 0;     ///< image bytes the frames represent
    std::uint64_t wire_bytes = 0;    ///< map + payload bytes on the wire
    std::uint64_t need_full = 0;     ///< receiver-initiated full fallbacks
  };
  const CodecStats& codec_stats() const { return codec_stats_; }

 private:
  // Tree helpers over logical node indices of this replica.
  int parent_index() const { return (index_ - 1) / 2; }
  bool is_root() const { return index_ == 0; }
  std::vector<int> child_indices() const;

  // Message handlers.
  void handle_checkpoint_request(const wire::CkptRequestMsg& msg);
  void handle_iteration_decided(const wire::IterationMsg& msg);
  void handle_pack_command(const wire::EpochMsg& msg);
  void handle_commit(const wire::EpochMsg& msg);
  void handle_rollback(const wire::RestoreCmdMsg& msg, bool sdc);
  void handle_halt();
  void handle_abort(const wire::EpochMsg& msg);
  void handle_resume();
  // Tree reductions carry the contributing child's index: contributions are
  // tracked as identity sets, so a duplicated control message can never
  // double-count (idempotency under an at-least-once transport).
  void handle_tree_progress(const wire::ProgressMsg& msg, int child);
  void handle_tree_ready(const wire::ReadyMsg& msg, int child);
  void handle_tree_verdict(const wire::VerdictMsg& msg, int child);
  void handle_buddy_checkpoint(const rt::Message& m);
  void handle_buddy_checksum(const rt::Message& m);
  void handle_send_to_buddy(const rt::Message& m, bool candidate);

  // Codec pipeline (ckpt/codec.h) plumbing. All of it is inert when
  // --ckpt-delta=off --ckpt-compress=none: codec_on() gates every call
  // site, which is what keeps codec-off runs byte-identical.
  bool codec_on() const { return env_.config->codec.enabled(); }
  /// Ship the candidate to the buddy as a codec frame (dirty chunks and/or
  /// compressed), or fall back to the legacy full transfer when no frame
  /// is possible.
  void send_codec_frame_to_buddy();
  void handle_buddy_delta_checkpoint(const rt::Message& m);
  void handle_buddy_need_full(const wire::NeedFullMsg& msg);
  /// Drop every delta base (own, buddy's, L2 chain): the next transfer of
  /// each kind ships a full image. Called on restart, role change, and
  /// restore — the moments the ISSUE's invalidation rules name.
  void invalidate_codec_bases();

  // Durable-tier plumbing (all no-ops unless env_.tier is attached AND
  // config->tier.enabled() — the gate that keeps no-L2 runs byte-identical).
  bool tier_enabled() const;
  void handle_flush_command(const wire::FlushCmdMsg& msg);
  /// Begin (or short-circuit) the chunked drain of the verified image of
  /// `epoch` to L2. Publication happens only after the LAST chunk's I/O.
  void start_flush(std::uint64_t epoch, bool urgent);
  void flush_next_chunk(std::uint64_t seq);
  void finish_flush(bool published);
  /// Cancel an in-flight flush (a newer commit superseded its epoch, or a
  /// restart wiped the store). Traces FlushSuperseded when `trace` is set.
  void supersede_flush(bool trace);
  /// A restore just adopted a verified image: re-drain it if L2 lacks it
  /// (converges post-recovery epochs back to fully-flushed).
  void maybe_reflush_after_restore();
  void handle_fetch_from_durable(const wire::RestoreCmdMsg& msg);

  // Consensus steps.
  void maybe_send_progress_up();
  void check_ready();
  void maybe_send_ready_up();
  void maybe_compare();
  void maybe_send_verdict_up();
  void finish_local_verdict(bool match);

  // Checkpoint plumbing.
  void pack_candidate();
  void after_pack();
  void restore_from(const ckpt::Image& ckpt, const char* why,
                    std::uint64_t barrier);
  void send_checkpoint_to_buddy(const ckpt::Image& ckpt, std::uint8_t purpose,
                                std::uint64_t barrier = 0);
  void refresh_done_from_tasks();
  void report_node_done_if_complete();

  // Redundancy scheme plumbing.
  void make_scheme();
  /// The scheme as XorScheme, or nullptr under any other scheme.
  ckpt::XorScheme* xor_scheme();
  /// The scheme as RsScheme, or nullptr under any other scheme.
  ckpt::RsScheme* rs_scheme();

  // Heartbeats.
  void heartbeat_tick();
  void watchdog_tick();

  void send_to_manager(int tag, buf::Buffer payload);
  void send_to_agent(int replica, int node_index, int tag, buf::Buffer payload,
                     double bytes_on_wire = -1.0, buf::Buffer attachment = {});
  double now() const;

  AcrEnv env_;
  rt::Node& node_;
  int replica_;
  int index_;
  int num_nodes_;

  // Consensus state.
  Phase phase_ = Phase::Idle;
  std::uint64_t epoch_ = 0;
  std::uint8_t participants_ = 3;
  bool single_replica_ckpt_ = false;
  std::uint64_t decided_iteration_ = 0;
  int num_children_ = 0;
  /// Children whose contribution to each reduction has been counted.
  /// Sets, not counters: a duplicated tree message must not double-count.
  std::set<int> progress_children_;
  std::set<int> ready_children_;
  std::set<int> verdict_children_;
  std::uint64_t subtree_max_progress_ = 0;
  bool local_quiesced_ = false;
  bool local_ready_ = false;
  bool subtree_match_ = true;
  std::uint64_t subtree_mismatches_ = 0;
  bool local_verdict_done_ = false;
  /// A child's kTreeProgress can legitimately overtake this node's own
  /// kCheckpointRequest (they travel different links). Early contributions
  /// are stashed by epoch and replayed when the request arrives.
  std::map<std::uint64_t, std::map<int, std::uint64_t>> progress_stash_;
  /// Highest restore barrier acted on; duplicated or re-routed restore
  /// commands for a wave already taken are ignored.
  std::uint64_t last_restore_barrier_ = 0;

  // Comparison state. The remote image aliases the buddy's stored
  // checkpoint buffer (zero-copy transfer); the digest is folded while
  // packing, so checksum mode never re-reads the image.
  bool pack_complete_ = false;
  bool have_remote_ = false;
  buf::Buffer remote_image_;
  wire::ChecksumMsg remote_checksum_;
  std::uint64_t local_digest_ = 0;

  // Task bookkeeping.
  std::vector<bool> done_;
  bool node_done_reported_ = false;

  // Checkpoint store + redundancy scheme.
  ckpt::Store store_;
  std::unique_ptr<ckpt::RedundancyScheme> scheme_;
  std::size_t checkpoints_packed_ = 0;

  // Two-phase restart barrier: restored, waiting for the collective go.
  bool awaiting_go_ = false;

  // Async L2 flush state machine. Guarded by a sequence number, not the
  // node incarnation: a flush of the SAME verified epoch legitimately
  // survives an in-place restore, but any supersede/reset bumps the seq so
  // stale chunk completions fall dead.
  struct FlushState {
    bool active = false;
    std::uint64_t epoch = 0;
    std::uint64_t remaining = 0;  ///< encoded bytes still to drain
    bool urgent = false;          ///< drain/scavenge flush (counts as such)
    /// Codec path: the pre-encoded v2 blob to publish after the last chunk
    /// (empty = legacy v1 encode at publish time) and its delta base.
    std::vector<std::byte> blob;
    std::uint64_t base_epoch = 0;
    /// Chunk digests of the flushed image — the next flush's delta base.
    std::vector<std::uint32_t> digests;
  };
  FlushState flush_;
  std::uint64_t flush_seq_ = 0;

  // Codec (delta/compress) state. A "base" is a committed image both ends
  // of a channel agree on; deltas are only ever taken against one.
  struct CodecBase {
    std::uint64_t epoch = 0;  ///< 0 = no base held
    buf::Buffer image;
    std::vector<std::uint32_t> digests;  ///< kDigestChunk-grid CRC32Cs
  };
  /// This node's last committed image (delta base for buddy/xor sends).
  CodecBase codec_base_;
  /// Cached copy of the BUDDY's committed image (replica-1 compare side):
  /// what incoming delta frames are overlaid on.
  CodecBase buddy_base_;
  /// Epoch of this node's image the buddy last held in full — deltas are
  /// legal only while it equals codec_base_.epoch. 0 after any fallback.
  std::uint64_t sent_base_epoch_ = 0;
  /// Digests of the candidate packed this round (reused as codec_base_'s
  /// digests when the round commits).
  std::vector<std::uint32_t> cand_digests_;
  /// Epoch/digests/size of this node's newest L2 blob: the flush chain's
  /// delta base. The image itself lives in the tier.
  std::uint64_t l2_base_epoch_ = 0;
  std::vector<std::uint32_t> l2_base_digests_;
  std::uint64_t l2_base_bytes_ = 0;
  /// The next XOR parity exchange must ship full chunks (post-restore).
  bool xor_force_full_ = false;
  CodecStats codec_stats_;

  // Heartbeat state. Each node watches its buddy (cross-replica, §2.1) and
  // its reduction-tree parent and children (intra-replica), so every node
  // has a live observer even when a whole buddy pair dies at once.
  struct Peer {
    int replica;
    int node_index;
    double last_heard = 0.0;
    bool suspected = false;
  };
  std::vector<Peer> peers_;
  std::uint64_t heartbeat_incarnation_ = 0;
};

}  // namespace acr
