#include "acr/runtime.h"

#include <algorithm>

#include "common/logging.h"
#include "failure/injector.h"

namespace acr {

namespace {
/// The cluster's checkpoint-group map exists exactly when a group-parity
/// scheme (xor/rs) needs it; other schemes leave grouping disabled.
rt::ClusterConfig with_ckpt_groups(rt::ClusterConfig c,
                                   const AcrConfig& acr) {
  c.ckpt_group_size = acr.redundancy == ckpt::Scheme::Xor ||
                              acr.redundancy == ckpt::Scheme::Rs
                          ? acr.xor_group_size
                          : 0;
  // The durable tier's cost model lives in the cluster (per-node busy-until
  // pipes turned into DES events); mirror the ACR-level knobs into it.
  if (acr.tier.enabled()) {
    c.l2.bandwidth = acr.tier.bandwidth;
    c.l2.latency = acr.tier.latency;
  }
  return c;
}
}  // namespace

AcrRuntime::AcrRuntime(const AcrConfig& acr_config,
                       const rt::ClusterConfig& cluster_config)
    : acr_config_(acr_config),
      cluster_(std::make_unique<rt::Cluster>(
          engine_, with_ckpt_groups(cluster_config, acr_config))),
      fault_rng_(cluster_config.seed ^ 0xFA17ULL, 0xD15EA5E) {
  if (acr_config_.tier.enabled())
    tier_ = std::make_unique<ckpt::DurableTier>(
        2, cluster_config.nodes_per_replica);
}

AcrRuntime::~AcrRuntime() = default;

void AcrRuntime::set_task_factory(rt::Cluster::TaskFactory factory) {
  cluster_->set_task_factory(std::move(factory));
}

void AcrRuntime::set_predictor(const PredictorConfig& config) {
  ACR_REQUIRE(!fault_scheduled_,
              "set_predictor must precede set_fault_plan: warnings are "
              "decided when faults are scheduled");
  predictor_ = config;
  predictor_enabled_ = true;
}

void AcrRuntime::set_fault_plan(FaultPlan plan) {
  fault_plan_ = std::move(plan);
  if (setup_done_ && fault_plan_.arrivals)
    schedule_next_fault(engine_.now());
}

void AcrRuntime::set_burst_plan(const failure::BurstConfig& config) {
  burst_config_ = config;
  if (setup_done_ && burst_config_.enabled()) arm_burst_injection();
}

void AcrRuntime::arm_burst_injection() {
  if (burst_ != nullptr || !burst_config_.enabled()) return;
  burst_ = std::make_unique<failure::CorrelatedInjector>(
      burst_config_, cluster_->num_hardware_nodes(),
      cluster_->config().seed ^ 0xB0057ULL);
  // Lifecycle events (spare deaths, repairs, pool minima) only exist under
  // burst injection; enabling their trace here keeps burst-free runs
  // byte-identical to the pre-lifecycle framework.
  cluster_->enable_spare_lifecycle_trace();
  schedule_next_burst(engine_.now());
}

NodeAgent* AcrRuntime::install_agent(rt::Node& node) {
  // Agents are never replaced while their node lives — scheduled events
  // capture the agent pointer. Relaunches reset the existing agent.
  if (node.service() != nullptr) {
    auto* agent = static_cast<NodeAgent*>(node.service());
    // A repaired node may be promoted into a different role than the one
    // it died holding; the reused agent re-derives its tree position and
    // redundancy layout before the state reset.
    agent->rebind_role();
    agent->reset_for_restart();
    return agent;
  }
  AcrEnv env{cluster_.get(), &acr_config_, tier_.get()};
  auto agent = std::make_unique<NodeAgent>(env, node);
  NodeAgent* raw = agent.get();
  node.set_service(std::move(agent));
  raw->start();
  return raw;
}

void AcrRuntime::setup() {
  ACR_REQUIRE(!setup_done_, "setup() must be called once");
  cluster_->populate();
  for (int r = 0; r < 2; ++r)
    for (int i = 0; i < cluster_->nodes_per_replica(); ++i)
      install_agent(cluster_->node_at(r, i));
  manager_ = std::make_unique<Manager>(
      AcrEnv{cluster_.get(), &acr_config_, tier_.get()},
      [this](rt::Node& n) { return install_agent(n); });
  manager_->start();
  if (acr_config_.tier.enabled()) {
    // Tier protocol events only exist with the tier on; gating the trace
    // here keeps no-L2 traces byte-identical to the single-tier build.
    cluster_->enable_trace(rt::kTraceTier);
    if (acr_config_.halt_after > 0.0)
      engine_.schedule_at(acr_config_.halt_after,
                          [this]() { manager_->request_drain(); });
  }
  // Same discipline for the codec: its trace kinds only fire when a codec
  // stage is on, so codec-off traces stay byte-identical.
  if (acr_config_.codec.enabled()) cluster_->enable_trace(rt::kTraceCodec);
  cluster_->start_application();
  if (fault_plan_.arrivals) schedule_next_fault(0.0);
  if (burst_config_.enabled()) arm_burst_injection();
  setup_done_ = true;
}

void AcrRuntime::schedule_next_fault(double from_time) {
  fault_scheduled_ = true;
  double t = fault_plan_.arrivals->next_after(from_time, fault_rng_);
  if (fault_plan_.horizon > 0.0 && t > fault_plan_.horizon) return;
  // The fault's nature is decided at scheduling time so the failure
  // predictor can announce (only) hard failures ahead of their arrival.
  next_fault_is_sdc_ = fault_rng_.uniform() < fault_plan_.sdc_fraction;
  if (predictor_enabled_ && !next_fault_is_sdc_) {
    if (fault_rng_.uniform() < predictor_.recall) {
      double warn_at = std::max(engine_.now(), t - predictor_.lead_time);
      engine_.schedule_at(warn_at, [this]() {
        ++warnings_issued_;
        manager_->request_immediate_checkpoint();
      });
      // False alarms: (1-precision)/precision extra warnings per true one
      // (Bernoulli approximation; exact for precision >= 0.5).
      double false_ratio = (1.0 - predictor_.precision) / predictor_.precision;
      if (fault_rng_.uniform() < std::min(1.0, false_ratio)) {
        double bogus_at = engine_.now() + (t - engine_.now()) *
                                              fault_rng_.uniform();
        engine_.schedule_at(bogus_at, [this]() {
          ++warnings_issued_;
          manager_->request_immediate_checkpoint();
        });
      }
    }
  }
  engine_.schedule_at(t, [this]() { inject_fault(); });
}

void AcrRuntime::inject_fault() {
  if (manager_->job_complete() || manager_->job_failed()) return;
  // This firing's nature was fixed when it was scheduled; scheduling the
  // next fault overwrites next_fault_is_sdc_ with the *next* one's.
  bool sdc_now = next_fault_is_sdc_;
  schedule_next_fault(engine_.now());

  int replica = static_cast<int>(fault_rng_.bounded(2));
  int index = static_cast<int>(
      fault_rng_.bounded(static_cast<std::uint32_t>(
          cluster_->nodes_per_replica())));
  if (!cluster_->role_alive(replica, index)) return;  // already down

  bool sdc = sdc_now;
  rt::Node& node = cluster_->node_at(replica, index);
  if (sdc) {
    if (node.num_tasks() == 0) return;
    int slot = static_cast<int>(fault_rng_.bounded(
        static_cast<std::uint32_t>(node.num_tasks())));
    std::optional<failure::BitFlip> flip = failure::try_inject_sdc(
        node.task(slot), fault_rng_, fault_plan_.flip_policy);
    if (!flip) return;  // victim holds no eligible state (e.g. bare spare)
    ++sdc_injected_;
    cluster_->trace().record(engine_.now(), rt::TraceKind::SdcInjected,
                             replica, index,
                             "slot=" + std::to_string(slot) + " byte=" +
                                 std::to_string(flip->byte_offset) + " bit=" +
                                 std::to_string(flip->bit));
  } else {
    cluster_->trace().record(engine_.now(),
                             rt::TraceKind::HardFailureInjected, replica,
                             index);
    cluster_->kill_role(replica, index);
  }
}

void AcrRuntime::schedule_next_burst(double from_time) {
  double t = burst_->next_seed_after(from_time);
  engine_.schedule_at(t, [this]() { fire_burst(); });
}

void AcrRuntime::fire_burst() {
  if (manager_->job_complete() || manager_->job_failed()) return;
  schedule_next_burst(engine_.now());
  std::vector<int> alive = cluster_->alive_hardware();
  if (alive.empty()) return;
  ++burst_seeds_;
  int victim = burst_->pick_victim(alive);
  // Plan followers against the pre-seed membership: the seed's own death
  // must not affect who its domain peers are.
  std::vector<failure::FollowerEvent> followers =
      burst_->plan_followers(victim, alive);
  burst_kill(victim, "burst-seed");
  for (const failure::FollowerEvent& f : followers) {
    engine_.schedule_after(f.delay, [this, node = f.node]() {
      if (manager_->job_complete() || manager_->job_failed()) return;
      burst_kill(node, "burst-follower");
    });
  }
}

void AcrRuntime::burst_kill(int pid, const char* why) {
  if (!cluster_->physical_node(pid).alive()) return;  // already down
  bool was_spare = cluster_->is_pooled_spare(pid);
  ++burst_kills_;
  cluster_->kill_physical(pid, why);
  // Nothing heartbeats a pooled spare, so its death is reported to the
  // manager out of band (the RAS log) — the adaptive interval must see
  // correlated arrivals whether or not the victim held a role.
  if (was_spare) manager_->note_out_of_band_failure();
  schedule_repair(pid);
}

void AcrRuntime::schedule_repair(int pid) {
  if (burst_config_.repair_mean <= 0.0) return;
  double dt = burst_->sample_repair_time();
  engine_.schedule_after(dt, [this, pid]() {
    if (manager_->job_complete() || manager_->job_failed()) return;
    if (cluster_->repair_node(pid)) manager_->note_spare_available();
  });
}

RunSummary AcrRuntime::run(double max_virtual_time) {
  ACR_REQUIRE(setup_done_, "call setup() before run()");
  while (engine_.now() < max_virtual_time && !manager_->job_complete() &&
         !manager_->job_failed() && !manager_->job_drained()) {
    if (!engine_.step()) break;
  }
  RunSummary s;
  s.complete = manager_->job_complete();
  s.failed = manager_->job_failed();
  s.finish_time = engine_.now();
  s.checkpoints = manager_->checkpoints_committed();
  s.hard_failures = manager_->hard_failures_detected();
  s.sdc_injected = sdc_injected_;
  s.sdc_detected = manager_->sdc_rollbacks();
  s.recoveries = manager_->recoveries_completed();
  s.scratch_restarts = manager_->scratch_restarts();
  const failure::NetFaultCounters& nf = cluster_->net_fault_counters();
  const net::LinkStats& ls = cluster_->link_stats();
  const rt::Cluster::NetCounters& nc = cluster_->net_counters();
  s.net_frames = nf.frames;
  s.net_drops = nf.drops;
  s.net_duplicates = nf.duplicates;
  s.net_corruptions = nf.corruptions;
  s.net_retransmits = ls.retransmits;
  s.net_crc_drops = nc.crc_drops;
  s.net_stale_epoch_drops = nc.stale_epoch_drops;
  s.net_link_failures = nc.link_failures;
  s.ckpt_scheme = ckpt::scheme_name(acr_config_.redundancy);
  const rt::Cluster::SpareCounters& sc = cluster_->spare_counters();
  s.burst_seeds = burst_seeds_;
  s.burst_node_kills = burst_kills_;
  s.spare_promotions = sc.promotions;
  s.spare_failures = sc.spare_failures;
  s.spare_repairs = sc.repairs;
  s.spare_low_water = sc.low_water;
  s.roles_doubled = sc.roles_doubled;
  s.roles_undoubled = sc.roles_undoubled;
  s.drained = manager_->job_drained();
  if (tier_) {
    s.l2_flushes = tier_->publishes();
    s.l2_flush_bytes = tier_->bytes_published();
    s.l2_fetches = tier_->fetches();
    s.l2_fetch_waves = manager_->l2_fetch_waves();
    s.l2_scavenges = manager_->l2_scavenges();
    s.l2_newest_durable = manager_->l2_newest_durable();
  }
  for (int r = 0; r < 2; ++r) {
    for (int i = 0; i < cluster_->nodes_per_replica(); ++i) {
      // role_node, not node_at: on a failed run the repair path may have
      // left a role unmanned (its dead player was pooled again).
      rt::Node* n = cluster_->role_node(r, i);
      if (n == nullptr) continue;
      auto* svc = n->service();
      if (svc == nullptr) continue;
      const ckpt::RedundancyStats& rs =
          static_cast<NodeAgent*>(svc)->redundancy().stats();
      s.parity_chunks_sent += rs.parity_chunks_sent;
      s.parity_bytes_sent += rs.parity_bytes_sent;
      s.xor_rebuilds += rs.rebuilds_completed;
      s.parity_rebuild_pieces += rs.rebuild_pieces_sent;
      s.parity_rebuild_bytes += rs.rebuild_bytes_sent;
      s.parity_rebuilds_rejected += rs.rebuilds_rejected;
      s.parity_delta_chunks += rs.parity_delta_chunks_sent;
      s.parity_delta_bytes += rs.parity_delta_bytes_sent;
      s.parity_rounds_poisoned += rs.parity_rounds_poisoned;
      const NodeAgent::CodecStats& cs =
          static_cast<NodeAgent*>(svc)->codec_stats();
      s.codec_frames += cs.frames;
      s.codec_full_frames += cs.full_frames;
      s.codec_chunks_total += cs.chunks_total;
      s.codec_chunks_shipped += cs.chunks_shipped;
      s.codec_raw_bytes += cs.raw_bytes;
      s.codec_wire_bytes += cs.wire_bytes;
      s.codec_need_full += cs.need_full;
    }
  }
  if (tier_) s.l2_delta_blobs = tier_->delta_publishes();
  return s;
}

NodeAgent& AcrRuntime::agent_at(int replica, int node_index) {
  auto* svc = cluster_->node_at(replica, node_index).service();
  ACR_REQUIRE(svc != nullptr, "no agent installed");
  return *static_cast<NodeAgent*>(svc);
}

}  // namespace acr
