#include "acr/stats.h"

#include <algorithm>

namespace acr {

RunningStats TraceSummary::consensus_latency_stats() const {
  RunningStats s;
  for (const auto& c : checkpoints)
    if (c.packed > 0.0) s.add(c.consensus_latency());
  return s;
}

RunningStats TraceSummary::commit_latency_stats() const {
  RunningStats s;
  for (const auto& c : checkpoints)
    if (c.committed_ok) s.add(c.total_latency());
  return s;
}

RunningStats TraceSummary::recovery_duration_stats() const {
  RunningStats s;
  for (const auto& r : recoveries) s.add(r.duration());
  return s;
}

double TraceSummary::checkpoint_time_fraction() const {
  double span = (job_complete > 0.0 ? job_complete : 0.0) - job_start;
  if (span <= 0.0) return 0.0;
  double busy = 0.0;
  for (const auto& c : checkpoints)
    if (c.committed_ok) busy += c.total_latency();
  return busy / span;
}

TraceSummary summarize_trace(const rt::TraceLog& trace) {
  TraceSummary out;
  CheckpointTiming current{};
  bool open = false;
  std::vector<double> inject_times;
  std::vector<double> detect_times;
  std::vector<double> recovery_starts;

  for (const auto& e : trace.events()) {
    switch (e.kind) {
      case rt::TraceKind::JobStart:
        out.job_start = e.time;
        break;
      case rt::TraceKind::JobComplete:
        if (out.job_complete == 0.0) out.job_complete = e.time;
        break;
      case rt::TraceKind::CheckpointRequested:
        if (open) out.checkpoints.push_back(current);  // aborted predecessor
        current = CheckpointTiming{};
        current.requested = e.time;
        open = true;
        break;
      case rt::TraceKind::CheckpointIterationDecided:
        if (open) current.iteration_decided = e.time;
        break;
      case rt::TraceKind::CheckpointPacked:
        if (open) current.packed = e.time;
        break;
      case rt::TraceKind::CheckpointCommitted:
        if (open) {
          current.committed = e.time;
          current.committed_ok = true;
          out.checkpoints.push_back(current);
          open = false;
        }
        break;
      case rt::TraceKind::HardFailureInjected:
        ++out.failures_injected;
        inject_times.push_back(e.time);
        break;
      case rt::TraceKind::HardFailureDetected:
        ++out.failures_detected;
        detect_times.push_back(e.time);
        break;
      case rt::TraceKind::SdcInjected:
        ++out.sdc_injected;
        break;
      case rt::TraceKind::SdcDetected:
        ++out.sdc_detected;
        break;
      case rt::TraceKind::Rollback:
        ++out.rollbacks;
        break;
      case rt::TraceKind::RecoveryStarted:
        recovery_starts.push_back(e.time);
        break;
      case rt::TraceKind::RecoveryCompleted:
        if (!recovery_starts.empty()) {
          out.recoveries.push_back(
              RecoveryTiming{recovery_starts.back(), e.time});
          recovery_starts.pop_back();
        }
        break;
      default:
        break;
    }
  }
  if (open) out.checkpoints.push_back(current);

  // Pair injections with the first detection at or after them.
  RunningStats det;
  std::size_t d = 0;
  for (double t : inject_times) {
    while (d < detect_times.size() && detect_times[d] < t) ++d;
    if (d == detect_times.size()) break;
    det.add(detect_times[d] - t);
    ++d;
  }
  out.mean_detection_latency = det.count() ? det.mean() : 0.0;
  return out;
}

}  // namespace acr
