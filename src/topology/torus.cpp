#include "topology/torus.h"

#include <cmath>
#include <cstdlib>

namespace acr::topo {

const char* dir_name(Dir d) {
  switch (d) {
    case Dir::XPlus: return "X+";
    case Dir::XMinus: return "X-";
    case Dir::YPlus: return "Y+";
    case Dir::YMinus: return "Y-";
    case Dir::ZPlus: return "Z+";
    case Dir::ZMinus: return "Z-";
  }
  return "?";
}

Torus3D::Torus3D(int dim_x, int dim_y, int dim_z)
    : dx_(dim_x), dy_(dim_y), dz_(dim_z) {
  ACR_REQUIRE(dim_x > 0 && dim_y > 0 && dim_z > 0,
              "torus dimensions must be positive");
}

int Torus3D::rank_of(const Coord& c) const {
  ACR_REQUIRE(contains(c), "coordinate outside torus");
  return c.x + dx_ * (c.y + dy_ * c.z);
}

Coord Torus3D::coord_of(int rank) const {
  ACR_REQUIRE(rank >= 0 && rank < num_nodes(), "rank outside torus");
  Coord c;
  c.x = rank % dx_;
  c.y = (rank / dx_) % dy_;
  c.z = rank / (dx_ * dy_);
  return c;
}

bool Torus3D::contains(const Coord& c) const {
  return c.x >= 0 && c.x < dx_ && c.y >= 0 && c.y < dy_ && c.z >= 0 &&
         c.z < dz_;
}

int Torus3D::torus_delta(int from, int to, int dim) {
  int d = (to - from) % dim;
  if (d < 0) d += dim;          // forward distance in [0, dim)
  if (2 * d > dim) d -= dim;    // wrap backwards when shorter
  return d;                     // ties (2d == dim) stay positive
}

int Torus3D::hop_distance(const Coord& a, const Coord& b) const {
  return std::abs(torus_delta(a.x, b.x, dx_)) +
         std::abs(torus_delta(a.y, b.y, dy_)) +
         std::abs(torus_delta(a.z, b.z, dz_));
}

int Torus3D::link_id(const Coord& node, Dir d) const {
  return rank_of(node) * kNumDirs + static_cast<int>(d);
}

std::pair<Coord, Dir> Torus3D::link_of(int link_id) const {
  ACR_REQUIRE(link_id >= 0 && link_id < num_links(), "link id out of range");
  return {coord_of(link_id / kNumDirs), static_cast<Dir>(link_id % kNumDirs)};
}

Coord Torus3D::neighbor(const Coord& node, Dir d) const {
  Coord c = node;
  auto wrap = [](int v, int dim) { return (v % dim + dim) % dim; };
  switch (d) {
    case Dir::XPlus: c.x = wrap(c.x + 1, dx_); break;
    case Dir::XMinus: c.x = wrap(c.x - 1, dx_); break;
    case Dir::YPlus: c.y = wrap(c.y + 1, dy_); break;
    case Dir::YMinus: c.y = wrap(c.y - 1, dy_); break;
    case Dir::ZPlus: c.z = wrap(c.z + 1, dz_); break;
    case Dir::ZMinus: c.z = wrap(c.z - 1, dz_); break;
  }
  return c;
}

std::vector<int> Torus3D::route(const Coord& src, const Coord& dst) const {
  ACR_REQUIRE(contains(src) && contains(dst), "route endpoints outside torus");
  std::vector<int> links;
  links.reserve(static_cast<std::size_t>(hop_distance(src, dst)));
  Coord cur = src;
  auto walk = [&](int delta, Dir plus, Dir minus) {
    Dir d = delta > 0 ? plus : minus;
    for (int i = 0; i < std::abs(delta); ++i) {
      links.push_back(link_id(cur, d));
      cur = neighbor(cur, d);
    }
  };
  walk(torus_delta(src.x, dst.x, dx_), Dir::XPlus, Dir::XMinus);
  walk(torus_delta(cur.y, dst.y, dy_), Dir::YPlus, Dir::YMinus);
  walk(torus_delta(cur.z, dst.z, dz_), Dir::ZPlus, Dir::ZMinus);
  ACR_ASSERT(cur == dst);
  return links;
}

Torus3D bgp_partition(int num_nodes) {
  // Shapes follow ANL Intrepid partition geometry: Z grows first from 8 to
  // 32, then X and Y grow. This reproduces the Fig. 8 observation that the
  // default mapping's bisection load rises from 512 to 2048 nodes and is
  // flat beyond.
  switch (num_nodes) {
    case 512: return Torus3D(8, 8, 8);
    case 1024: return Torus3D(8, 8, 16);
    case 2048: return Torus3D(8, 8, 32);
    case 4096: return Torus3D(8, 16, 32);
    case 8192: return Torus3D(16, 16, 32);
    case 16384: return Torus3D(16, 32, 32);
    case 32768: return Torus3D(32, 32, 32);
    case 65536: return Torus3D(32, 32, 64);
    case 131072: return Torus3D(32, 64, 64);
    default: break;
  }
  // Fallback for non-standard sizes: near-cubic factorization with the
  // constraint that every dimension is a power of two when num_nodes is.
  ACR_REQUIRE(num_nodes > 0, "partition must be non-empty");
  int dims[3] = {1, 1, 1};
  int rem = num_nodes;
  int axis = 2;  // grow Z first, matching BG/P
  for (int f = 2; rem > 1;) {
    if (rem % f == 0) {
      dims[axis] *= f;
      rem /= f;
      axis = (axis + 2) % 3;  // z -> y -> x -> z
    } else {
      ++f;
    }
  }
  return Torus3D(dims[0], dims[1], dims[2]);
}

}  // namespace acr::topo
