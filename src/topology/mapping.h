// Replica-to-torus mapping schemes (§4.2, Fig. 6).
//
// The machine torus is split into two equal replicas; node i of replica 0
// and node i of replica 1 are buddies. The mapping decides which physical
// node each (replica, index) pair lands on, and therefore how much the
// buddy checkpoint traffic contends:
//   * Default — TXYZ rank halves. Ranks grow slowest along Z, so the split
//     is along Z and all buddy messages cross the Z bisection.
//   * Column  — alternate Z planes. Every buddy pair is one hop apart;
//     buddy traffic is contention-free.
//   * Mixed   — alternate chunks of Z planes. Compromise: short buddy
//     paths, but buddies are not physically adjacent, which reduces the
//     chance that a spatially correlated failure takes out both.
#pragma once

#include <string>
#include <vector>

#include "topology/torus.h"

namespace acr::topo {

enum class MappingScheme { Default, Column, Mixed };

const char* scheme_name(MappingScheme s);

class ReplicaMapping {
 public:
  /// `mixed_chunk` is the number of consecutive Z planes per replica chunk
  /// in the Mixed scheme (ignored otherwise).
  ReplicaMapping(const Torus3D& torus, MappingScheme scheme,
                 int mixed_chunk = 2);

  const Torus3D& torus() const { return torus_; }
  MappingScheme scheme() const { return scheme_; }
  int nodes_per_replica() const { return torus_.num_nodes() / 2; }

  /// Physical coordinate of node `index` of `replica` (0 or 1).
  Coord node_coord(int replica, int index) const;
  int node_rank(int replica, int index) const {
    return torus_.rank_of(node_coord(replica, index));
  }

  /// Inverse: which (replica, index) lives on physical rank `rank`.
  struct Placement {
    int replica;
    int index;
  };
  Placement placement_of(int rank) const;

  /// All buddy pairs as physical ranks (replica0 node, replica1 node).
  std::vector<std::pair<int, int>> buddy_pairs() const;

  /// Hop distance between the members of buddy pair `index`.
  int buddy_distance(int index) const;

 private:
  Torus3D torus_;
  MappingScheme scheme_;
  int chunk_;
};

}  // namespace acr::topo
