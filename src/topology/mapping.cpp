#include "topology/mapping.h"

namespace acr::topo {

const char* scheme_name(MappingScheme s) {
  switch (s) {
    case MappingScheme::Default: return "default";
    case MappingScheme::Column: return "column";
    case MappingScheme::Mixed: return "mixed";
  }
  return "?";
}

ReplicaMapping::ReplicaMapping(const Torus3D& torus, MappingScheme scheme,
                               int mixed_chunk)
    : torus_(torus), scheme_(scheme), chunk_(mixed_chunk) {
  ACR_REQUIRE(torus_.num_nodes() % 2 == 0, "torus must split into two halves");
  switch (scheme_) {
    case MappingScheme::Default:
      ACR_REQUIRE(torus_.dim_z() % 2 == 0,
                  "default mapping needs an even Z so the rank split falls on "
                  "a plane boundary");
      break;
    case MappingScheme::Column:
      ACR_REQUIRE(torus_.dim_z() % 2 == 0,
                  "column mapping alternates Z planes; Z must be even");
      break;
    case MappingScheme::Mixed:
      ACR_REQUIRE(chunk_ > 0, "mixed chunk must be positive");
      ACR_REQUIRE(torus_.dim_z() % (2 * chunk_) == 0,
                  "mixed mapping needs Z divisible by 2*chunk");
      break;
  }
}

Coord ReplicaMapping::node_coord(int replica, int index) const {
  ACR_REQUIRE(replica == 0 || replica == 1, "replica must be 0 or 1");
  ACR_REQUIRE(index >= 0 && index < nodes_per_replica(),
              "replica node index out of range");
  const int dx = torus_.dim_x(), dy = torus_.dim_y();
  const int plane = dx * dy;  // nodes per Z plane
  int local_plane = index / plane;
  int within = index % plane;
  Coord c;
  c.x = within % dx;
  c.y = within / dx;
  switch (scheme_) {
    case MappingScheme::Default:
      // Replica 0 owns planes [0, Z/2), replica 1 owns [Z/2, Z).
      c.z = local_plane + replica * (torus_.dim_z() / 2);
      break;
    case MappingScheme::Column:
      // Plane 2k -> replica 0, plane 2k+1 -> replica 1.
      c.z = 2 * local_plane + replica;
      break;
    case MappingScheme::Mixed: {
      // Chunks of `chunk_` planes alternate between replicas.
      int chunk_index = local_plane / chunk_;
      int in_chunk = local_plane % chunk_;
      c.z = chunk_index * 2 * chunk_ + replica * chunk_ + in_chunk;
      break;
    }
  }
  return c;
}

ReplicaMapping::Placement ReplicaMapping::placement_of(int rank) const {
  Coord c = torus_.coord_of(rank);
  const int dx = torus_.dim_x(), dy = torus_.dim_y();
  const int plane = dx * dy;
  int replica = 0;
  int local_plane = 0;
  switch (scheme_) {
    case MappingScheme::Default: {
      int half = torus_.dim_z() / 2;
      replica = c.z >= half ? 1 : 0;
      local_plane = c.z - replica * half;
      break;
    }
    case MappingScheme::Column:
      replica = c.z % 2;
      local_plane = c.z / 2;
      break;
    case MappingScheme::Mixed: {
      int pair = c.z / (2 * chunk_);
      int in_pair = c.z % (2 * chunk_);
      replica = in_pair >= chunk_ ? 1 : 0;
      local_plane = pair * chunk_ + (in_pair % chunk_);
      break;
    }
  }
  return {replica, local_plane * plane + c.y * dx + c.x};
}

std::vector<std::pair<int, int>> ReplicaMapping::buddy_pairs() const {
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(static_cast<std::size_t>(nodes_per_replica()));
  for (int i = 0; i < nodes_per_replica(); ++i)
    pairs.emplace_back(node_rank(0, i), node_rank(1, i));
  return pairs;
}

int ReplicaMapping::buddy_distance(int index) const {
  return torus_.hop_distance(node_coord(0, index), node_coord(1, index));
}

}  // namespace acr::topo
