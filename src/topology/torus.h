// 3D torus topology: coordinates, TXYZ rank order, dimension-ordered
// routing, and directed-link identifiers for the link-load model.
//
// Mirrors the Blue Gene/P interconnect the paper evaluates on (§4.2, §6):
// ranks increase slowest along Z under the default TXYZ mapping, which is
// why the default replica split divides the machine along Z.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "common/require.h"

namespace acr::topo {

struct Coord {
  int x = 0;
  int y = 0;
  int z = 0;

  friend bool operator==(const Coord&, const Coord&) = default;
};

/// Directions of the six torus links per node.
enum class Dir : int { XPlus = 0, XMinus, YPlus, YMinus, ZPlus, ZMinus };

constexpr int kNumDirs = 6;

const char* dir_name(Dir d);

class Torus3D {
 public:
  Torus3D(int dim_x, int dim_y, int dim_z);

  int dim_x() const { return dx_; }
  int dim_y() const { return dy_; }
  int dim_z() const { return dz_; }
  int num_nodes() const { return dx_ * dy_ * dz_; }

  /// TXYZ order: x fastest, z slowest.
  int rank_of(const Coord& c) const;
  Coord coord_of(int rank) const;

  bool contains(const Coord& c) const;

  /// Shortest signed displacement from a to b along one dimension with
  /// torus wraparound; ties (exactly half the ring) resolve positive.
  static int torus_delta(int from, int to, int dim);

  /// Minimal hop count between two nodes.
  int hop_distance(const Coord& a, const Coord& b) const;

  /// Directed link leaving `node` in direction `d`. Dense in
  /// [0, num_nodes()*6).
  int link_id(const Coord& node, Dir d) const;
  int num_links() const { return num_nodes() * kNumDirs; }

  /// Source node and direction of a link id (inverse of link_id).
  std::pair<Coord, Dir> link_of(int link_id) const;

  /// Dimension-ordered (X, then Y, then Z) minimal route. Returns the
  /// directed link ids traversed, in order. Empty when src == dst.
  std::vector<int> route(const Coord& src, const Coord& dst) const;

  /// Neighbor of `node` in direction `d` (with wraparound).
  Coord neighbor(const Coord& node, Dir d) const;

 private:
  int dx_, dy_, dz_;
};

/// BG/P-style partition shape for a given node count: the torus dimensions
/// ANL Intrepid hands out for power-of-two partitions from 512 nodes up.
/// These shapes drive the Z-dimension growth pattern the paper observes
/// (Z: 8 -> 32 as the partition grows from 512 to 2048 nodes, then X and Y
/// grow while Z saturates at 32).
Torus3D bgp_partition(int num_nodes);

}  // namespace acr::topo
