// Deterministic, splittable random number generation.
//
// All stochastic components of ACR (failure injection, bit-flip placement,
// workload generation) draw from SplitMix64-seeded PCG32 streams so that a
// run is exactly reproducible from a single master seed, and independent
// components can be given independent streams without coordination.
#pragma once

#include <cstdint>
#include <limits>

namespace acr {

/// SplitMix64: used to expand one user seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// PCG32 (XSH-RR variant). Small state, excellent statistical quality,
/// independent streams selected by the `stream` constructor argument.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  Pcg32() : Pcg32(0x853C49E6748FEA9BULL, 0xDA3E39CB94B95BDBULL) {}

  Pcg32(std::uint64_t seed, std::uint64_t stream = 1) {
    inc_ = (stream << 1u) | 1u;
    state_ = 0;
    next();
    state_ += seed;
    next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  result_type next() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    std::uint32_t xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Unbiased integer in [0, bound) via Lemire rejection.
  std::uint32_t bounded(std::uint32_t bound) {
    if (bound <= 1) return 0;
    std::uint64_t m = static_cast<std::uint64_t>(next()) * bound;
    std::uint32_t lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
      std::uint32_t threshold = (0u - bound) % bound;
      while (lo < threshold) {
        m = static_cast<std::uint64_t>(next()) * bound;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  std::uint64_t next64() {
    return (static_cast<std::uint64_t>(next()) << 32) | next();
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Factory handing out independent PCG32 streams from one master seed.
class RngFactory {
 public:
  explicit RngFactory(std::uint64_t master_seed) : mix_(master_seed) {}

  /// Each call returns a new statistically independent generator.
  Pcg32 make() {
    std::uint64_t seed = mix_.next();
    std::uint64_t stream = mix_.next();
    return Pcg32(seed, stream);
  }

 private:
  SplitMix64 mix_;
};

}  // namespace acr
