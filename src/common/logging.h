// Minimal leveled logger.
//
// ACR components log protocol events (checkpoint scheduled, failure
// detected, recovery complete) at Info; per-message chatter at Debug.
// The level is process-global and tests silence it by default.
#pragma once

#include <sstream>
#include <string>

namespace acr {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-global log level control.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line at `level` with the component tag. Thread-safe.
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

namespace detail {

class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream() { log_line(level_, component_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogStream log_debug(std::string component) {
  return detail::LogStream(LogLevel::Debug, std::move(component));
}
inline detail::LogStream log_info(std::string component) {
  return detail::LogStream(LogLevel::Info, std::move(component));
}
inline detail::LogStream log_warn(std::string component) {
  return detail::LogStream(LogLevel::Warn, std::move(component));
}
inline detail::LogStream log_error(std::string component) {
  return detail::LogStream(LogLevel::Error, std::move(component));
}

}  // namespace acr
