// Runtime precondition / invariant checking.
//
// ACR_REQUIRE is always on (it guards API misuse that would otherwise
// corrupt protocol state); ACR_ASSERT compiles out in NDEBUG builds and is
// meant for internal invariants on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace acr {

/// Thrown when an ACR_REQUIRE precondition fails.
class RequireError : public std::logic_error {
 public:
  explicit RequireError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void require_fail(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::string full = std::string("requirement failed: ") + cond + " at " +
                     file + ":" + std::to_string(line);
  if (!msg.empty()) full += " — " + msg;
  throw RequireError(full);
}

}  // namespace acr

#define ACR_REQUIRE(cond, msg)                                 \
  do {                                                         \
    if (!(cond)) ::acr::require_fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define ACR_ASSERT(cond) ((void)0)
#else
#define ACR_ASSERT(cond)                                      \
  do {                                                        \
    if (!(cond)) ::acr::require_fail(#cond, __FILE__, __LINE__, ""); \
  } while (0)
#endif
