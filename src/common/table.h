// Plain-text table printer for the benchmark harness: every bench binary
// prints the rows/series of the paper figure it regenerates through this so
// the output format is uniform and diffable.
#pragma once

#include <string>
#include <vector>

namespace acr {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` significant digits.
  static std::string fmt(double v, int precision = 4);

  /// Render with column alignment to a string (ends with newline).
  std::string render() const;

  /// Render directly to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace acr
