#include "common/cli.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/require.h"

namespace acr {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_flag(const std::string& name, bool* target,
                         const std::string& help) {
  Option opt;
  opt.help = help;
  opt.default_repr = *target ? "true" : "false";
  opt.is_bool = true;
  opt.apply = [target](const std::string& v) {
    if (v == "" || v == "true" || v == "1") {
      *target = true;
      return true;
    }
    if (v == "false" || v == "0") {
      *target = false;
      return true;
    }
    return false;
  };
  options_[name] = std::move(opt);
}

void CliParser::add_int(const std::string& name, int* target,
                        const std::string& help) {
  Option opt;
  opt.help = help;
  opt.default_repr = std::to_string(*target);
  opt.apply = [target](const std::string& v) {
    try {
      std::size_t pos = 0;
      int parsed = std::stoi(v, &pos);
      if (pos != v.size()) return false;
      *target = parsed;
      return true;
    } catch (const std::exception&) {
      return false;
    }
  };
  options_[name] = std::move(opt);
}

void CliParser::add_uint64(const std::string& name, std::uint64_t* target,
                           const std::string& help) {
  Option opt;
  opt.help = help;
  opt.default_repr = std::to_string(*target);
  opt.apply = [target](const std::string& v) {
    try {
      std::size_t pos = 0;
      std::uint64_t parsed = std::stoull(v, &pos);
      if (pos != v.size()) return false;
      *target = parsed;
      return true;
    } catch (const std::exception&) {
      return false;
    }
  };
  options_[name] = std::move(opt);
}

void CliParser::add_double(const std::string& name, double* target,
                           const std::string& help) {
  Option opt;
  opt.help = help;
  std::ostringstream repr;
  repr << *target;
  opt.default_repr = repr.str();
  opt.apply = [target](const std::string& v) {
    try {
      std::size_t pos = 0;
      double parsed = std::stod(v, &pos);
      if (pos != v.size()) return false;
      *target = parsed;
      return true;
    } catch (const std::exception&) {
      return false;
    }
  };
  options_[name] = std::move(opt);
}

void CliParser::add_string(const std::string& name, std::string* target,
                           const std::string& help) {
  Option opt;
  opt.help = help;
  opt.default_repr = *target;
  opt.apply = [target](const std::string& v) {
    *target = v;
    return true;
  };
  options_[name] = std::move(opt);
}

void CliParser::add_choice(const std::string& name, std::string* target,
                           std::vector<std::string> choices,
                           const std::string& help) {
  ACR_REQUIRE(!choices.empty(), "choice option needs at least one choice");
  Option opt;
  opt.help = help;
  opt.default_repr = *target;
  opt.choices = choices;
  opt.apply = [target, choices](const std::string& v) {
    if (std::find(choices.begin(), choices.end(), v) == choices.end())
      return false;
    *target = v;
    return true;
  };
  options_[name] = std::move(opt);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr, "%s", usage().c_str());
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument '%s'\n%s",
                   arg.c_str(), usage().c_str());
      return false;
    }
    std::string body = arg.substr(2);
    std::string name = body;
    std::optional<std::string> value;
    std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    }
    // --no-<flag> negation for bools.
    bool negated = false;
    auto it = options_.find(name);
    if (it == options_.end() && name.rfind("no-", 0) == 0) {
      it = options_.find(name.substr(3));
      if (it != options_.end() && it->second.is_bool) {
        negated = true;
      } else {
        it = options_.end();
      }
    }
    if (it == options_.end()) {
      std::fprintf(stderr, "unknown flag '--%s'\n%s", name.c_str(),
                   usage().c_str());
      return false;
    }
    Option& opt = it->second;
    if (negated) {
      opt.apply("false");
      continue;
    }
    if (!value) {
      if (opt.is_bool) {
        value = "";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "flag '--%s' needs a value\n%s", name.c_str(),
                     usage().c_str());
        return false;
      }
    }
    if (!opt.apply(*value)) {
      std::fprintf(stderr, "invalid value '%s' for flag '--%s'\n%s",
                   value->c_str(), name.c_str(), usage().c_str());
      return false;
    }
  }
  return true;
}

std::string CliParser::usage() const {
  std::ostringstream out;
  out << description_ << "\n\noptions:\n";
  for (const auto& [name, opt] : options_) {
    out << "  --" << name;
    if (!opt.choices.empty()) {
      out << " {";
      for (std::size_t i = 0; i < opt.choices.size(); ++i)
        out << (i ? "," : "") << opt.choices[i];
      out << "}";
    } else if (!opt.is_bool) {
      out << " <value>";
    }
    out << "\n      " << opt.help << " (default: " << opt.default_repr
        << ")\n";
  }
  return out.str();
}

}  // namespace acr
