// Minimal command-line flag parser for the bench/example drivers.
//
// Supports --name=value and --name value forms, bool flags (--adaptive,
// --no-adaptive), and prints a generated usage text. Unknown flags are
// errors: a typo silently running the wrong experiment is worse than a
// failure.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace acr {

class CliParser {
 public:
  explicit CliParser(std::string program_description);

  void add_flag(const std::string& name, bool* target,
                const std::string& help);
  void add_int(const std::string& name, int* target, const std::string& help);
  void add_uint64(const std::string& name, std::uint64_t* target,
                  const std::string& help);
  void add_double(const std::string& name, double* target,
                  const std::string& help);
  void add_string(const std::string& name, std::string* target,
                  const std::string& help);
  /// Enumerated string option: value must be one of `choices`.
  void add_choice(const std::string& name, std::string* target,
                  std::vector<std::string> choices, const std::string& help);

  /// Parse argv. Returns true on success; on failure (or --help) prints
  /// usage to stderr and returns false.
  bool parse(int argc, const char* const* argv);

  std::string usage() const;

 private:
  struct Option {
    std::string help;
    std::string default_repr;
    bool is_bool = false;
    std::vector<std::string> choices;
    std::function<bool(const std::string&)> apply;
  };

  std::string description_;
  std::map<std::string, Option> options_;
};

}  // namespace acr
