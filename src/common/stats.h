// Streaming statistics used by the adaptive checkpoint controller and the
// benchmark harness.
#pragma once

#include <cstddef>
#include <vector>

namespace acr {

/// Welford online mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  void clear() { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample (linear interpolation between order statistics).
/// `q` in [0,1]. The input is copied and sorted.
double percentile(std::vector<double> samples, double q);

/// Fixed-width histogram over [lo, hi); samples outside are clamped into the
/// first/last bin. Used for inter-failure-time diagnostics.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace acr
