#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/require.h"

namespace acr {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ACR_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> row) {
  ACR_REQUIRE(row.size() == headers_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string TablePrinter::fmt(double v, int precision) {
  std::ostringstream out;
  out.precision(precision);
  out << v;
  return out.str();
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size())
        out << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::print() const {
  std::string s = render();
  std::fwrite(s.data(), 1, s.size(), stdout);
}

}  // namespace acr
