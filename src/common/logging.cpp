#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace acr {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?????";
  }
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %-12s %s\n", level_name(level), component.c_str(),
               message.c_str());
}

}  // namespace acr
