#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"

namespace acr {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double q) {
  ACR_REQUIRE(!samples.empty(), "percentile of empty sample");
  ACR_REQUIRE(q >= 0.0 && q <= 1.0, "quantile out of [0,1]");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  double pos = q * static_cast<double>(samples.size() - 1);
  std::size_t lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, samples.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  ACR_REQUIRE(hi > lo, "histogram range must be non-empty");
  ACR_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  double span = hi_ - lo_;
  double t = (x - lo_) / span * static_cast<double>(counts_.size());
  long idx = static_cast<long>(t);
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

}  // namespace acr
