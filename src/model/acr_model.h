// Closed-form model of ACR's three resilience schemes (§5).
//
// Total execution time decomposes as
//   T = T_solve + T_checkpoint + T_restart + T_rework
// with per-scheme rework terms:
//   strong: hard errors roll the crashed replica back (tau+delta)/2 on
//           average; every detected SDC rolls both replicas back a full
//           period.
//   medium: a hard error costs only the immediate extra checkpoint delta;
//           SDC terms as strong; the window [last checkpoint, crash] is
//           unprotected.
//   weak:   hard errors cost (on average) nothing unless a second failure
//           lands within the same period (probability P, the paper's loose
//           upper bound); a whole period is unprotected per failure.
//
// The equations are linear in T once tau is fixed; the optimum tau is found
// numerically per scheme.
#pragma once

#include <string>

#include "model/params.h"

namespace acr::model {

enum class Scheme { Strong, Medium, Weak };

const char* scheme_name(Scheme s);

struct SchemeEvaluation {
  Scheme scheme = Scheme::Strong;
  double tau = 0.0;               ///< checkpoint period used, seconds
  double total_time = 0.0;        ///< T, seconds
  double utilization = 0.0;       ///< W / (2 T): replication loss included
  double prob_undetected_sdc = 0.0;
  // Decomposition (seconds):
  double checkpoint_time = 0.0;   ///< Delta
  double restart_time = 0.0;      ///< R
  double rework_hard = 0.0;
  double rework_sdc = 0.0;
};

// ---------------------------------------------------------------------------
// Durable-tier (L2) extension: L1 handles ordinary failures exactly as the
// single-tier model; *catastrophic* failures (buddy-pair loss, parity-group
// double loss, spare-pool exhaustion) defeat L1 and either restart the job
// from scratch or — with the tier — fetch the newest fully-flushed epoch.
// ---------------------------------------------------------------------------

struct TierParams {
  /// Every Nth committed epoch is flushed to L2, so the newest durable
  /// epoch trails the newest verified one by up to N periods.
  std::uint64_t flush_interval = 1;
  /// Seconds to restore the whole job from L2 (read + redistribute).
  double fetch_cost = 0.0;
  /// MTBF of L1-defeating (catastrophic) failures, seconds. 0 = none, and
  /// the tiered evaluation degenerates to the single-tier one.
  double catastrophic_mtbf = 0.0;
};

struct TieredEvaluation {
  SchemeEvaluation base;             ///< single-tier evaluation at same tau
  double flush_lag = 0.0;            ///< durable-epoch staleness bound, s
  double rework_catastrophic = 0.0;  ///< total catastrophic rework, seconds
  double total_time = 0.0;           ///< T with the tier, seconds
  double total_time_scratch = 0.0;   ///< T if catastrophes restart from zero
  double speedup = 0.0;              ///< total_time_scratch / total_time
};

// ---------------------------------------------------------------------------
// Checkpoint-codec extension: the staged pipeline ships only dirty chunks
// (delta) and compresses what ships. Both scale the *transfer* share of the
// checkpoint cost delta — pack and compare still walk the full image — so
// the effective cost is
//   d' = d * [(1 - f_t) + f_t * (m + (1 - h) * c)]
// with f_t the transfer fraction, h the chunk hit rate, c the compression
// ratio of shipped chunks and m the digest/map overhead. A cheaper delta
// moves the optimal period earlier, which is where the win compounds: more
// frequent checkpoints shrink every rework term too.
// ---------------------------------------------------------------------------

struct DeltaParams {
  /// Fraction of chunks bit-identical to the base epoch (dropped from the
  /// wire). Jacobi-like stencils trend high once the lattice settles;
  /// MD-style codes with fully mixing state sit near 0.
  double hit_rate = 0.0;
  /// Encoded/raw size ratio of the chunks that do ship (1 = incompressible).
  double compress_ratio = 1.0;
  /// Digest pass + chunk map cost, as a fraction of the transfer share.
  double map_overhead = 0.01;
  /// Share of checkpoint_cost that is wire transfer (the part the codec
  /// scales); the rest is pack + compare and stays fixed.
  double transfer_fraction = 0.6;
};

struct DeltaEvaluation {
  SchemeEvaluation full;    ///< codec off, at its own optimal period
  SchemeEvaluation delta;   ///< scaled checkpoint cost, re-optimized period
  double cost_scale = 1.0;  ///< d'/d
  double speedup = 1.0;     ///< full.total_time / delta.total_time
};

/// d'/d for the given codec parameters (clamped to stay positive: even a
/// 100% hit rate pays the digest pass and the map).
double delta_cost_scale(const DeltaParams& d);

class AcrModel {
 public:
  explicit AcrModel(const SystemParams& params);

  const SystemParams& params() const { return params_; }

  /// T for the given scheme at checkpoint period tau. Returns +inf when the
  /// failure rate is too high for the scheme to make forward progress.
  double total_time(Scheme scheme, double tau) const;

  /// Paper's P: probability of more than one hard failure within one
  /// checkpoint period (loose upper bound on the weak-scheme rollback
  /// probability).
  double multi_failure_probability(double tau) const;

  /// Probability that an SDC strikes the healthy replica inside an
  /// unprotected window somewhere during the job (0 for strong).
  double prob_undetected_sdc(Scheme scheme, double tau) const;

  /// Numerically optimal checkpoint period for the scheme.
  double optimal_tau(Scheme scheme) const;

  /// Full evaluation at the optimal period.
  SchemeEvaluation evaluate(Scheme scheme) const;
  /// Full evaluation at a caller-chosen period.
  SchemeEvaluation evaluate_at(Scheme scheme, double tau) const;

  /// T with catastrophic failures served by L2 fetches: each event costs
  /// fetch_cost plus half the flush window of lost progress, linear in T.
  double total_time_tiered(Scheme scheme, double tau,
                           const TierParams& tier) const;

  /// T with the same catastrophic failures served by scratch restarts:
  /// the classic memoryless restart-from-zero expectation
  /// E[T] = M (e^{T1/M} - 1) applied on top of the single-tier time.
  double total_time_scratch(Scheme scheme, double tau,
                            const TierParams& tier) const;

  /// Tiered evaluation at a caller-chosen period (see TieredEvaluation).
  TieredEvaluation evaluate_tiered(Scheme scheme, const TierParams& tier,
                                   double tau) const;
  /// Tiered evaluation at the single-tier optimal period.
  TieredEvaluation evaluate_tiered(Scheme scheme,
                                   const TierParams& tier) const;

  /// Codec-on vs codec-off comparison: both sides at their own numerically
  /// optimal period, the codec side with checkpoint_cost scaled by
  /// delta_cost_scale(d).
  DeltaEvaluation evaluate_delta(Scheme scheme, const DeltaParams& d) const;

 private:
  SystemParams params_;
};

// ---------------------------------------------------------------------------
// Fig. 1 baselines: utilization and vulnerability surfaces.
// ---------------------------------------------------------------------------

struct BaselinePoint {
  double utilization = 0.0;
  double vulnerability = 0.0;  ///< P(job finishes with silent corruption)
};

/// No fault tolerance: a hard failure restarts the job from scratch;
/// nothing detects SDC. `total_sockets` all do useful work.
BaselinePoint model_no_ft(double work, int total_sockets,
                          double socket_mtbf_hard, double sdc_fit_per_socket);

/// Classic checkpoint/restart (hard errors only): Daly-optimal period,
/// still blind to SDC.
BaselinePoint model_checkpoint_only(double work, int total_sockets,
                                    double socket_mtbf_hard,
                                    double sdc_fit_per_socket,
                                    double checkpoint_cost,
                                    double restart_hard);

/// ACR with the strong scheme: half the sockets per replica, zero
/// vulnerability.
BaselinePoint model_acr(double work, int total_sockets,
                        double socket_mtbf_hard, double sdc_fit_per_socket,
                        double checkpoint_cost, double restart_hard,
                        double restart_sdc);

// ---------------------------------------------------------------------------
// Triple modular redundancy variant (§3 design-choice 4 ablation): three
// replicas vote, SDC is corrected by majority without rollback; utilization
// pays a 3x replication factor.
// ---------------------------------------------------------------------------
BaselinePoint model_tmr(double work, int total_sockets,
                        double socket_mtbf_hard, double sdc_fit_per_socket,
                        double checkpoint_cost, double restart_hard);

}  // namespace acr::model
