#include "model/acr_model.h"

#include <cmath>
#include <limits>

#include "common/require.h"
#include "failure/adaptive_interval.h"

namespace acr::model {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Golden-section minimization of a unimodal-ish f over [lo, hi]. The model
/// curves are smooth with one interior minimum; we seed with a coarse scan
/// to be robust to the +inf plateau where the scheme is infeasible.
template <typename F>
double minimize(F f, double lo, double hi) {
  ACR_REQUIRE(hi > lo, "minimize needs a non-empty interval");
  // Coarse log-spaced scan for a bracket.
  constexpr int kScan = 64;
  double best_x = lo, best_f = f(lo);
  for (int i = 1; i <= kScan; ++i) {
    double x = lo * std::pow(hi / lo, static_cast<double>(i) / kScan);
    double v = f(x);
    if (v < best_f) {
      best_f = v;
      best_x = x;
    }
  }
  // Refine around best_x.
  double a = best_x / std::pow(hi / lo, 1.5 / kScan);
  double b = best_x * std::pow(hi / lo, 1.5 / kScan);
  a = std::max(a, lo);
  b = std::min(b, hi);
  constexpr double kPhi = 0.6180339887498949;
  double x1 = b - kPhi * (b - a);
  double x2 = a + kPhi * (b - a);
  double f1 = f(x1), f2 = f(x2);
  for (int it = 0; it < 80 && (b - a) > 1e-9 * std::max(1.0, b); ++it) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kPhi * (b - a);
      f2 = f(x2);
    }
  }
  double mid = 0.5 * (a + b);
  return f(mid) <= best_f ? mid : best_x;
}

}  // namespace

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::Strong: return "strong";
    case Scheme::Medium: return "medium";
    case Scheme::Weak: return "weak";
  }
  return "?";
}

AcrModel::AcrModel(const SystemParams& params) : params_(params) {
  ACR_REQUIRE(params.work > 0.0, "work must be positive");
  ACR_REQUIRE(params.checkpoint_cost > 0.0, "checkpoint cost must be positive");
  ACR_REQUIRE(params.sockets_per_replica > 0, "need at least one socket");
}

double AcrModel::multi_failure_probability(double tau) const {
  double period = (tau + params_.checkpoint_cost) / params_.system_hard_mtbf();
  // P(N >= 2) for Poisson arrivals over one checkpoint period.
  return 1.0 - std::exp(-period) * (1.0 + period);
}

double AcrModel::total_time(Scheme scheme, double tau) const {
  const double W = params_.work;
  const double d = params_.checkpoint_cost;
  const double MH = params_.system_hard_mtbf();
  const double MS = params_.system_sdc_mtbf();
  const double RH = params_.restart_hard;
  const double RS = params_.restart_sdc;
  ACR_REQUIRE(tau > 0.0, "tau must be positive");

  // Delta: (W / tau - 1) checkpoints of cost d (never negative).
  double n_ckpt = std::max(0.0, W / tau - 1.0);
  double delta_total = n_ckpt * d;

  // Per-unit-T overhead fractions; T (W + Delta) / (1 - fractions).
  double restart_frac = RH / MH + RS / MS;
  double sdc_rework_frac = (tau + d) / MS;

  double hard_rework_frac = 0.0;
  double extra_const = 0.0;  // additive terms not proportional to this T
  switch (scheme) {
    case Scheme::Strong:
      hard_rework_frac = (tau + d) / (2.0 * MH);
      break;
    case Scheme::Medium:
      hard_rework_frac = d / MH;
      break;
    case Scheme::Weak: {
      // Paper's equation references T_S in the hard-rework term: the weak
      // scheme only reworks when >1 failure lands in a period (prob. P).
      double ts = total_time(Scheme::Strong, tau);
      if (std::isinf(ts)) return kInf;
      double p = multi_failure_probability(tau);
      extra_const = ts / MH * ((tau + d) / 2.0) * p;
      break;
    }
  }

  double denom = 1.0 - restart_frac - sdc_rework_frac - hard_rework_frac;
  if (denom <= 0.0) return kInf;
  return (W + delta_total + extra_const) / denom;
}

double AcrModel::prob_undetected_sdc(Scheme scheme, double tau) const {
  if (scheme == Scheme::Strong) return 0.0;
  double t = total_time(scheme, tau);
  if (std::isinf(t)) return 1.0;
  // Expected number of hard failures over the run, each opening an
  // unprotected window in the healthy replica.
  double n_hard = t / params_.system_hard_mtbf();
  double window = scheme == Scheme::Medium
                      ? (tau + params_.checkpoint_cost) / 2.0
                      : (tau + params_.checkpoint_cost);
  double exposure = n_hard * window / params_.replica_sdc_mtbf();
  return 1.0 - std::exp(-exposure);
}

double AcrModel::optimal_tau(Scheme scheme) const {
  const double lo = std::max(1e-3, params_.checkpoint_cost * 1e-2);
  const double hi = params_.work;
  return minimize([&](double tau) { return total_time(scheme, tau); }, lo, hi);
}

SchemeEvaluation AcrModel::evaluate(Scheme scheme) const {
  return evaluate_at(scheme, optimal_tau(scheme));
}

SchemeEvaluation AcrModel::evaluate_at(Scheme scheme, double tau) const {
  SchemeEvaluation e;
  e.scheme = scheme;
  e.tau = tau;
  e.total_time = total_time(scheme, tau);
  e.utilization = std::isinf(e.total_time)
                      ? 0.0
                      : params_.work / (2.0 * e.total_time);
  e.prob_undetected_sdc = prob_undetected_sdc(scheme, tau);

  const double d = params_.checkpoint_cost;
  const double MH = params_.system_hard_mtbf();
  const double MS = params_.system_sdc_mtbf();
  e.checkpoint_time = std::max(0.0, params_.work / tau - 1.0) * d;
  if (!std::isinf(e.total_time)) {
    e.restart_time = e.total_time / MH * params_.restart_hard +
                     e.total_time / MS * params_.restart_sdc;
    e.rework_sdc = e.total_time / MS * (tau + d);
    switch (scheme) {
      case Scheme::Strong:
        e.rework_hard = e.total_time / MH * (tau + d) / 2.0;
        break;
      case Scheme::Medium:
        e.rework_hard = e.total_time / MH * d;
        break;
      case Scheme::Weak: {
        double ts = total_time(Scheme::Strong, tau);
        e.rework_hard =
            ts / MH * ((tau + d) / 2.0) * multi_failure_probability(tau);
        break;
      }
    }
  }
  return e;
}

// ---------------------------------------------------------------------------
// Checkpoint-codec extension.
// ---------------------------------------------------------------------------

double delta_cost_scale(const DeltaParams& d) {
  ACR_REQUIRE(d.hit_rate >= 0.0 && d.hit_rate <= 1.0,
              "hit_rate must be in [0, 1]");
  ACR_REQUIRE(d.compress_ratio > 0.0, "compress_ratio must be positive");
  ACR_REQUIRE(d.transfer_fraction >= 0.0 && d.transfer_fraction <= 1.0,
              "transfer_fraction must be in [0, 1]");
  double wire = d.map_overhead + (1.0 - d.hit_rate) * d.compress_ratio;
  double scale = (1.0 - d.transfer_fraction) + d.transfer_fraction * wire;
  // Even a perfect hit rate pays the digest pass; keep the scaled cost a
  // valid model input.
  return std::max(scale, 1e-6);
}

DeltaEvaluation AcrModel::evaluate_delta(Scheme scheme,
                                         const DeltaParams& d) const {
  DeltaEvaluation e;
  e.cost_scale = delta_cost_scale(d);
  e.full = evaluate(scheme);
  SystemParams scaled = params_;
  scaled.checkpoint_cost = params_.checkpoint_cost * e.cost_scale;
  AcrModel with_codec(scaled);
  e.delta = with_codec.evaluate(scheme);
  if (!std::isinf(e.full.total_time) && !std::isinf(e.delta.total_time) &&
      e.delta.total_time > 0.0)
    e.speedup = e.full.total_time / e.delta.total_time;
  return e;
}

// ---------------------------------------------------------------------------
// Durable-tier extension.
// ---------------------------------------------------------------------------

double AcrModel::total_time_tiered(Scheme scheme, double tau,
                                   const TierParams& tier) const {
  double t1 = total_time(scheme, tau);
  if (std::isinf(t1) || tier.catastrophic_mtbf <= 0.0) return t1;
  ACR_REQUIRE(tier.flush_interval >= 1, "flush interval must be >= 1");
  // Catastrophic events arrive Poisson at rate 1/MC. Each one rolls the
  // job back to the newest fully-flushed epoch: that epoch trails the
  // verified one by up to flush_interval periods, so on average half that
  // window of progress is redone, plus the fetch itself. Both costs scale
  // with T (more runtime, more events), giving the usual linear form.
  double lag = static_cast<double>(tier.flush_interval) *
               (tau + params_.checkpoint_cost);
  double per_event = tier.fetch_cost + lag / 2.0;
  double frac = per_event / tier.catastrophic_mtbf;
  if (frac >= 1.0) return kInf;
  return t1 / (1.0 - frac);
}

double AcrModel::total_time_scratch(Scheme scheme, double tau,
                                    const TierParams& tier) const {
  double t1 = total_time(scheme, tau);
  if (std::isinf(t1) || tier.catastrophic_mtbf <= 0.0) return t1;
  // Restart-from-zero under memoryless catastrophes: all progress since
  // job start is lost each time, E[T] = M (e^{T1/M} - 1).
  double mc = tier.catastrophic_mtbf;
  double ratio = t1 / mc;
  if (ratio > 700.0) return kInf;  // exp overflow: effectively never ends
  return mc * std::expm1(ratio);
}

TieredEvaluation AcrModel::evaluate_tiered(Scheme scheme,
                                           const TierParams& tier,
                                           double tau) const {
  TieredEvaluation e;
  e.base = evaluate_at(scheme, tau);
  e.flush_lag = static_cast<double>(tier.flush_interval) *
                (tau + params_.checkpoint_cost);
  e.total_time = total_time_tiered(scheme, tau, tier);
  e.total_time_scratch = total_time_scratch(scheme, tau, tier);
  if (!std::isinf(e.total_time))
    e.rework_catastrophic = e.total_time - e.base.total_time;
  if (!std::isinf(e.total_time) && e.total_time > 0.0 &&
      !std::isinf(e.total_time_scratch))
    e.speedup = e.total_time_scratch / e.total_time;
  return e;
}

TieredEvaluation AcrModel::evaluate_tiered(Scheme scheme,
                                           const TierParams& tier) const {
  return evaluate_tiered(scheme, tier, optimal_tau(scheme));
}

// ---------------------------------------------------------------------------
// Fig. 1 baselines.
// ---------------------------------------------------------------------------

BaselinePoint model_no_ft(double work, int total_sockets,
                          double socket_mtbf_hard, double sdc_fit_per_socket) {
  BaselinePoint p;
  double mh = socket_mtbf_hard / total_sockets;
  double ms = fit_to_mtbf_seconds(sdc_fit_per_socket) / total_sockets;
  // Restart-from-scratch under Poisson failures: E[T] = M (e^{W/M} - 1).
  double expected_t = mh * std::expm1(work / mh);
  p.utilization = work / expected_t;
  // Corruption anywhere during the (useful) execution goes unnoticed.
  p.vulnerability = 1.0 - std::exp(-expected_t / ms);
  return p;
}

BaselinePoint model_checkpoint_only(double work, int total_sockets,
                                    double socket_mtbf_hard,
                                    double sdc_fit_per_socket,
                                    double checkpoint_cost,
                                    double restart_hard) {
  BaselinePoint p;
  double mh = socket_mtbf_hard / total_sockets;
  double ms = fit_to_mtbf_seconds(sdc_fit_per_socket) / total_sockets;
  double tau = failure::daly_interval(checkpoint_cost, mh);
  tau = std::min(tau, work);
  double n_ckpt = std::max(0.0, work / tau - 1.0);
  double frac = (restart_hard + (tau + checkpoint_cost) / 2.0) / mh;
  if (frac >= 1.0) {
    p.utilization = 0.0;
    p.vulnerability = 1.0;
    return p;
  }
  double t = (work + n_ckpt * checkpoint_cost) / (1.0 - frac);
  p.utilization = work / t;
  p.vulnerability = 1.0 - std::exp(-t / ms);
  return p;
}

BaselinePoint model_acr(double work, int total_sockets,
                        double socket_mtbf_hard, double sdc_fit_per_socket,
                        double checkpoint_cost, double restart_hard,
                        double restart_sdc) {
  SystemParams sp;
  sp.work = work;
  sp.checkpoint_cost = checkpoint_cost;
  sp.restart_hard = restart_hard;
  sp.restart_sdc = restart_sdc;
  sp.socket_mtbf_hard = socket_mtbf_hard;
  sp.sdc_fit_per_socket = sdc_fit_per_socket;
  sp.sockets_per_replica = total_sockets / 2;
  AcrModel model(sp);
  SchemeEvaluation e = model.evaluate(Scheme::Strong);
  BaselinePoint p;
  p.utilization = e.utilization;
  p.vulnerability = 0.0;  // strong scheme cross-checks every period
  return p;
}

BaselinePoint model_tmr(double work, int total_sockets,
                        double socket_mtbf_hard, double sdc_fit_per_socket,
                        double checkpoint_cost, double restart_hard) {
  BaselinePoint p;
  int per_replica = total_sockets / 3;
  if (per_replica < 1) return p;
  double mh = socket_mtbf_hard / total_sockets;
  // SDC is out-voted without rollback; only hard errors force recovery.
  double tau = failure::daly_interval(checkpoint_cost, mh);
  tau = std::min(tau, work);
  double n_ckpt = std::max(0.0, work / tau - 1.0);
  // With triplicated state a crashed node restores from either twin:
  // rework is limited to the restart cost.
  double frac = restart_hard / mh;
  if (frac >= 1.0) return p;
  double t = (work + n_ckpt * checkpoint_cost) / (1.0 - frac);
  p.utilization = work / (3.0 * t);
  p.vulnerability = 0.0;
  (void)sdc_fit_per_socket;
  return p;
}

}  // namespace acr::model
