// Parameters of the §5 performance/reliability model (Table 1 of the
// paper), plus unit helpers.
//
//   W    total computation time            tau  optimum checkpoint period
//   delta checkpoint time                  S    total number of sockets
//   R_H  hard error restart time           T    total execution time
//   R_S  restart time on SDC               T_S  T under strong resilience
//   M_H  hard error MTBF                   T_M  T under medium resilience
//   M_S  SDC MTBF                          T_W  T under weak resilience
#pragma once

namespace acr::model {

constexpr double kSecondsPerHour = 3600.0;
constexpr double kSecondsPerYear = 365.25 * 24.0 * kSecondsPerHour;

/// FIT = failures per 10^9 device-hours. Returns the per-device MTBF in
/// seconds.
double fit_to_mtbf_seconds(double fit);

/// Inverse of fit_to_mtbf_seconds.
double mtbf_seconds_to_fit(double mtbf_seconds);

/// Application- and system-dependent inputs (Table 1).
struct SystemParams {
  /// W: total useful computation time, seconds.
  double work = 24.0 * kSecondsPerHour;
  /// delta: time for one coordinated checkpoint, seconds.
  double checkpoint_cost = 15.0;
  /// R_H: restart time after a hard error, seconds.
  double restart_hard = 30.0;
  /// R_S: restart time after a detected SDC, seconds.
  double restart_sdc = 30.0;
  /// Per-socket hard-error MTBF, seconds (paper: 50 years, Jaguar-like).
  double socket_mtbf_hard = 50.0 * kSecondsPerYear;
  /// Per-socket silent-data-corruption rate, FIT.
  double sdc_fit_per_socket = 100.0;
  /// S: sockets per replica.
  int sockets_per_replica = 1024;

  /// Hard-error MTBF of the whole machine (both replicas = 2S sockets).
  double system_hard_mtbf() const;
  /// MTBF of *detectable* SDC events (corruption in either replica trips
  /// the checkpoint comparison): 2S sockets.
  double system_sdc_mtbf() const;
  /// MTBF of SDC striking one replica (S sockets): the rate that matters
  /// for corruption sneaking through an unprotected window.
  double replica_sdc_mtbf() const;
};

}  // namespace acr::model
