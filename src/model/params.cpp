#include "model/params.h"

#include "common/require.h"

namespace acr::model {

double fit_to_mtbf_seconds(double fit) {
  ACR_REQUIRE(fit > 0.0, "FIT rate must be positive");
  return 1.0e9 * kSecondsPerHour / fit;
}

double mtbf_seconds_to_fit(double mtbf_seconds) {
  ACR_REQUIRE(mtbf_seconds > 0.0, "MTBF must be positive");
  return 1.0e9 * kSecondsPerHour / mtbf_seconds;
}

double SystemParams::system_hard_mtbf() const {
  return socket_mtbf_hard / (2.0 * sockets_per_replica);
}

double SystemParams::system_sdc_mtbf() const {
  return fit_to_mtbf_seconds(sdc_fit_per_socket) /
         (2.0 * sockets_per_replica);
}

double SystemParams::replica_sdc_mtbf() const {
  return fit_to_mtbf_seconds(sdc_fit_per_socket) / sockets_per_replica;
}

}  // namespace acr::model
