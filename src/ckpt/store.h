// Double in-memory checkpoint store (§2.1), extracted from NodeAgent.
//
// One Store lives on every node and owns the two epochs of the paper's
// double checkpointing: the *verified* image (passed cross-replica
// comparison; the authoritative rollback target) and the *candidate* image
// (packed this consensus round, awaiting its verdict). The redundancy
// scheme (redundancy.h) decides what ELSE protects the verified image —
// nothing (Local), a buddy copy (Partner), or group parity (Xor) — but the
// promotion state machine here is scheme-independent.
//
// An optional CheckpointVault (vault.h) gives the store a durable tier:
// when attached, every promotion is written through to disk.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "ckpt/vault.h"
#include "pup/pup.h"

namespace acr::ckpt {

/// A checkpoint image plus its protocol coordinates. `valid` is false for
/// an empty slot (no epoch held).
struct Image {
  bool valid = false;
  std::uint64_t epoch = 0;
  std::uint64_t iteration = 0;
  pup::Checkpoint image;
};

/// Outcome of a promotion attempt, for callers that care why nothing moved.
enum class PromoteResult {
  Promoted,       ///< candidate became the verified image
  NoCandidate,    ///< no candidate staged (duplicate commit, or a fresh spare)
  EpochMismatch,  ///< candidate belongs to a different consensus round
};

class Store {
 public:
  Store() = default;

  /// Stage a freshly packed image as the candidate of `epoch`.
  void stage_candidate(std::uint64_t epoch, std::uint64_t iteration,
                       pup::Checkpoint image);
  /// Drop the candidate (consensus aborted, rollback, or restore).
  void discard_candidate() { candidate_ = Image{}; }

  /// Commit verdict for `epoch`: promote the candidate to verified iff it
  /// is valid and belongs to that epoch. A duplicated commit is harmless
  /// (NoCandidate — the slot emptied on the first promotion); a commit for
  /// a round this node never packed, or raced past (in-flight verdict of a
  /// different epoch), leaves both slots untouched.
  PromoteResult promote(std::uint64_t epoch);

  /// Install `img` as the verified image directly (restore paths: rollback
  /// re-adoption, buddy-shipped image, XOR rebuild). Discards the candidate
  /// — it predates the state jump.
  void adopt_verified(Image img);

  /// Image to restore for a rollback to `epoch`: the verified image when it
  /// matches, else the candidate when IT matches (the commit raced the
  /// rollback: a candidate for the rollback epoch necessarily passed the
  /// comparison). Null when neither slot can serve the epoch.
  const Image* restorable(std::uint64_t epoch) const;

  /// Forget everything (restart from scratch).
  void reset();

  const Image& verified() const { return verified_; }
  const Image& candidate() const { return candidate_; }
  bool has_verified() const { return verified_.valid; }
  bool has_candidate() const { return candidate_.valid; }

  /// Attach a durable tier: promotions write through; reset() prunes.
  void attach_vault(std::shared_ptr<CheckpointVault> vault) {
    vault_ = std::move(vault);
  }
  const CheckpointVault* vault() const { return vault_.get(); }

 private:
  Image verified_;
  Image candidate_;
  std::shared_ptr<CheckpointVault> vault_;
};

}  // namespace acr::ckpt
