// Durable checkpoint storage (the ckpt layer's FILE tier).
//
// The paper's ACR keeps checkpoints in memory (its in-memory double
// checkpointing is what makes recovery fast; §1 contrasts this with
// disk-based checkpoint/restart whose cost "may be prohibitive"). A
// production framework still wants an optional durable tier — the analogue
// of SCR's FILE level — for restarts that survive whole-machine loss.
//
// CheckpointVault writes each checkpoint as a self-validating file:
//
//   [magic u32][version u32][epoch u64][iteration u64]
//   [payload length u64][payload bytes][fletcher64 of header+payload]
//
// Loads verify the trailer digest, so on-disk corruption (the SDC story,
// continued at the storage layer) is detected rather than restored.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ckpt/codec.h"
#include "pup/pup.h"

namespace acr::ckpt {

/// A checkpoint image annotated with its protocol coordinates.
struct StoredImage {
  std::uint64_t epoch = 0;
  std::uint64_t iteration = 0;
  pup::Checkpoint image;
};

/// Serialize a checkpoint into the vault's self-validating byte format
/// (header + payload + Fletcher-64 trailer). The same encoding is used for
/// on-disk files (CheckpointVault) and for the simulated durable tier's
/// in-memory blobs (tier.h), so a tier blob IS a vault file image.
std::vector<std::byte> encode_stored_image(const StoredImage& ckpt);

/// Inverse of encode_stored_image. Throws pup::StreamError on a bad magic,
/// truncation, or trailer-digest mismatch.
StoredImage decode_stored_image(std::span<const std::byte> blob);

/// Bytes encode_stored_image would produce for an image of `payload_bytes`.
std::size_t encoded_image_bytes(std::size_t payload_bytes);

/// A vault blob holding a codec DELTA frame instead of a full image: the
/// format-v2 extension grown for the staged codec pipeline. The payload
/// section is replaced by a chunk-map section (full size + per-chunk
/// present flags) followed by the frame's encoded payload; decoding back
/// to a StoredImage additionally needs the base epoch's full image.
/// `base_epoch == 0` marks a v2 blob that is self-contained (a full-map
/// frame — e.g. a compressed full image) and decodes without a base.
struct DeltaBlob {
  std::uint64_t epoch = 0;
  std::uint64_t iteration = 0;
  std::uint64_t base_epoch = 0;
  CodecFrame frame;
};

/// Serialize a delta blob: v2 header + chunk map + payload + Fletcher-64
/// trailer. Self-validating like the v1 format.
std::vector<std::byte> encode_delta_image(const DeltaBlob& blob);

/// Bytes encode_delta_image produces for a given frame.
std::size_t encoded_delta_bytes(const CodecFrame& frame);

/// Version-dispatching decode: a v1 blob yields a full StoredImage, a v2
/// blob yields the delta. Throws pup::StreamError on corruption.
struct DecodedBlob {
  bool is_delta = false;
  StoredImage full;  ///< valid when !is_delta
  DeltaBlob delta;   ///< valid when is_delta
};
DecodedBlob decode_any_image(std::span<const std::byte> blob);

class CheckpointVault {
 public:
  /// Files are placed under `directory` (created if absent) as
  /// "<prefix>.e<epoch>.ckpt". Stale "*.tmp" leftovers of interrupted
  /// writes under this prefix are removed — they can never be completed.
  CheckpointVault(std::filesystem::path directory, std::string prefix);

  /// Write (atomically: temp file + rename). Returns the final path.
  std::filesystem::path store(const StoredImage& ckpt) const;

  /// Load a specific epoch. Returns nullopt if the file is missing;
  /// throws StreamError if it exists but is corrupt (bad magic, truncated,
  /// or digest mismatch).
  std::optional<StoredImage> load(std::uint64_t epoch) const;

  /// Newest epoch with a loadable (valid) file, or nullopt. Corrupt files
  /// are skipped — an interrupted write must not block restart from an
  /// older checkpoint.
  std::optional<StoredImage> load_latest() const;

  /// Epochs present on disk (valid or not), ascending.
  std::vector<std::uint64_t> epochs_on_disk() const;

  /// Delete everything older than `keep_from_epoch`.
  void prune(std::uint64_t keep_from_epoch) const;

  const std::filesystem::path& directory() const { return directory_; }

 private:
  std::filesystem::path path_for(std::uint64_t epoch) const;

  std::filesystem::path directory_;
  std::string prefix_;
};

}  // namespace acr::ckpt
