// Parity-group membership for the XOR redundancy scheme.
//
// Node indices of a replica are partitioned into consecutive groups of
// `group_size`. A trailing remainder group is kept as its own (smaller)
// group, except that a remainder of ONE would leave a node with no parity
// peers — XOR over a single member protects nothing — so a size-1 tail is
// merged into the preceding group (its last group is group_size + 1 wide).
// Groups never span replicas: parity exchange stays on the cheap
// intra-replica links, and each replica can lose one node per group.
#pragma once

#include <vector>

namespace acr::ckpt {

class GroupMap {
 public:
  /// `group_size` <= 0 disables grouping (empty map).
  GroupMap() = default;
  GroupMap(int nodes_per_replica, int group_size);

  bool enabled() const { return !starts_.empty(); }
  int num_groups() const { return static_cast<int>(starts_.size()); }

  /// Group id of a node index.
  int group_of(int node_index) const;
  /// Members (node indices, ascending) of the group containing node_index.
  std::vector<int> group_members(int node_index) const;
  /// Position of node_index within its group (0-based "rank").
  int rank_in_group(int node_index) const;
  int group_size_of(int node_index) const;

 private:
  std::vector<int> starts_;  ///< first node index of each group
  int nodes_ = 0;
};

}  // namespace acr::ckpt
