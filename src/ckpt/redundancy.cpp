#include "ckpt/redundancy.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "checksum/fold.h"
#include "checksum/kernels.h"
#include "common/logging.h"
#include "common/require.h"

namespace acr::ckpt {

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::Local:
      return "local";
    case Scheme::Partner:
      return "partner";
    case Scheme::Xor:
      return "xor";
    case Scheme::Rs:
      return "rs";
  }
  return "?";
}

namespace {

std::span<const std::byte> as_bytes(const std::vector<std::uint8_t>& v) {
  return {reinterpret_cast<const std::byte*>(v.data()), v.size()};
}

}  // namespace

XorScheme::XorScheme(const GroupMap& groups, int node_index, Hooks hooks)
    : members_(groups.group_members(node_index)),
      n_(static_cast<int>(members_.size())),
      my_rank_(groups.rank_in_group(node_index)),
      hooks_(std::move(hooks)) {
  ACR_REQUIRE(n_ >= 2, "XOR parity needs a group of at least two nodes");
}

int XorScheme::rank_of(int node_index) const {
  auto it = std::find(members_.begin(), members_.end(), node_index);
  ACR_REQUIRE(it != members_.end(), "node index outside this parity group");
  return static_cast<int>(it - members_.begin());
}

std::size_t XorScheme::chunk_len(std::uint64_t size) const {
  auto parts = static_cast<std::uint64_t>(n_ - 1);
  return static_cast<std::size_t>((size + parts - 1) / parts);
}

std::pair<std::size_t, std::size_t> XorScheme::chunk_range(std::uint64_t size,
                                                           int t) const {
  std::size_t cl = chunk_len(size);
  std::size_t begin =
      std::min(static_cast<std::size_t>(t) * cl, static_cast<std::size_t>(size));
  std::size_t end =
      std::min(begin + cl, static_cast<std::size_t>(size));
  return {begin, end};
}

void XorScheme::on_verified(const Image& img) {
  on_verified(img, nullptr);
}

void XorScheme::on_verified(const Image& img, const DeltaHints* hints) {
  ACR_REQUIRE(img.valid, "parity exchange needs a valid image");
  // Delta exchange is possible only when every precondition holds; any
  // miss falls back to the legacy full exchange (never a correctness
  // dependency). Cadence: epochs 1, 1+k, 1+2k... always go full, so a
  // holder that lost its parity history (promoted spare, shrink remap)
  // re-converges within k commits instead of poisoning rounds forever.
  bool delta = hints != nullptr && hints->codec != nullptr &&
               hints->codec->delta_on() && !hints->force_full &&
               hints->base_epoch != 0 && hints->base_epoch < img.epoch &&
               hints->base_image != nullptr &&
               hints->base_image->size() == img.image.size() &&
               hints->digests != nullptr && hints->base_digests != nullptr &&
               hints->digests->size() == hints->base_digests->size() &&
               img.epoch % kXorDeltaFullCadence != 1;
  // Recorded alongside every chunk so a future rebuild of THIS image can be
  // CRC-verified before promotion (verify-on-rebuild).
  std::uint32_t digest = checksum::crc32c_chunked(img.image.bytes());
  if (!delta) {
    // One chunk per other group member: holder i receives chunk (i-me-1)
    // mod n of this node's image, as a zero-copy slice of the stored
    // checkpoint.
    for (int i = 0; i < n_; ++i) {
      if (i == my_rank_) continue;
      int t = (i - my_rank_ - 1 + n_) % n_;
      auto [begin, end] = chunk_range(img.image.size(), t);
      XorChunkMsg msg;
      msg.epoch = img.epoch;
      msg.iteration = img.iteration;
      msg.image_size = img.image.size();
      msg.image_digest = digest;
      buf::Buffer chunk = img.image.buffer().slice(begin, end - begin);
      ++stats_.parity_chunks_sent;
      stats_.parity_bytes_sent += chunk.size();
      hooks_.send_chunk(members_[static_cast<std::size_t>(i)], msg,
                        std::move(chunk));
    }
    return;
  }

  std::span<const std::byte> now = img.image.bytes();
  std::span<const std::byte> base = hints->base_image->bytes();
  const std::vector<std::uint32_t>& dg = *hints->digests;
  const std::vector<std::uint32_t>& bdg = *hints->base_digests;
  for (int i = 0; i < n_; ++i) {
    if (i == my_rank_) continue;
    int t = (i - my_rank_ - 1 + n_) % n_;
    auto [begin, end] = chunk_range(img.image.size(), t);
    XorDeltaChunkMsg msg;
    msg.epoch = img.epoch;
    msg.iteration = img.iteration;
    msg.base_epoch = hints->base_epoch;
    msg.image_size = img.image.size();
    msg.image_digest = digest;
    // Dirty sub-ranges of this holder's slice: the digest grid's dirty
    // chunks intersected with [begin, end), adjacent runs merged. Offsets
    // are slice-relative — exactly the parity positions the holder folds.
    std::vector<std::byte> diff;
    std::size_t g0 = begin / checksum::kDigestChunk;
    for (std::size_t g = g0; g * checksum::kDigestChunk < end && g < dg.size();
         ++g) {
      if (dg[g] == bdg[g]) continue;
      auto [cb, ce] = checksum::digest_chunk_range(img.image.size(), g);
      std::size_t lo = cb > begin ? cb : begin;
      std::size_t hi = ce < end ? ce : end;
      if (lo >= hi) continue;
      std::uint64_t rel = lo - begin;
      if (!msg.offsets.empty() &&
          msg.offsets.back() + msg.lens.back() == rel) {
        msg.lens.back() += hi - lo;  // merge adjacent dirty runs
      } else {
        msg.offsets.push_back(rel);
        msg.lens.push_back(hi - lo);
      }
      std::size_t at = diff.size();
      diff.resize(at + (hi - lo));
      std::memcpy(diff.data() + at, now.data() + lo, hi - lo);
      checksum::kernels::xor_fold_words(diff.data() + at, base.data() + lo,
                                        hi - lo);
    }
    buf::Buffer payload;
    if (hints->codec->compress_on() && !diff.empty()) {
      std::vector<std::byte> lz = lz_compress_block(diff);
      if (lz.size() < diff.size()) {
        msg.encoding = 1;
        payload = buf::Buffer::wrap(std::move(lz));
      }
    }
    if (msg.encoding == 0 && !diff.empty())
      payload = buf::Buffer::wrap(std::move(diff));
    ++stats_.parity_delta_chunks_sent;
    stats_.parity_delta_bytes_sent += payload.size();
    hooks_.send_delta_chunk(members_[static_cast<std::size_t>(i)], msg,
                            std::move(payload));
  }
}

void XorScheme::on_chunk(int src_index, const XorChunkMsg& msg,
                         buf::Buffer chunk) {
  // Epochs commit monotonically (a rollback targets the LAST committed
  // epoch, never older), so anything at or below the complete parity's
  // epoch is a duplicate or a post-rollback re-exchange of what we hold.
  if (complete_ && msg.epoch <= complete_->epoch) return;
  int rank = rank_of(src_index);
  PendingParity& b = building_[msg.epoch];
  if (b.sizes.empty()) b.sizes.assign(static_cast<std::size_t>(n_), 0);
  if (b.digests.empty()) b.digests.assign(static_cast<std::size_t>(n_), 0);
  if (!b.contributed.insert(rank).second) return;  // duplicate chunk
  if (b.mode == PendingParity::Mode::Undecided)
    b.mode = PendingParity::Mode::Full;
  else if (b.mode != PendingParity::Mode::Full)
    b.poisoned = true;  // mixed full/delta round: the algebra is meaningless
  // Building the group parity is the hottest xor in the tree (one fold per
  // arriving chunk per epoch); fan it across the kernel pool. XOR is
  // positional, so the parity bytes are identical at any thread count.
  if (!b.poisoned) checksum::xor_fold_chunked(b.parity, chunk.bytes());
  b.sizes[static_cast<std::size_t>(rank)] = msg.image_size;
  b.digests[static_cast<std::size_t>(rank)] = msg.image_digest;
  b.iteration = msg.iteration;
  finish_round_if_complete(msg.epoch, b);
}

void XorScheme::on_delta_chunk(int src_index, const XorDeltaChunkMsg& msg,
                               buf::Buffer payload) {
  if (complete_ && msg.epoch <= complete_->epoch) return;
  int rank = rank_of(src_index);
  PendingParity& b = building_[msg.epoch];
  if (b.sizes.empty()) b.sizes.assign(static_cast<std::size_t>(n_), 0);
  if (b.digests.empty()) b.digests.assign(static_cast<std::size_t>(n_), 0);
  if (!b.contributed.insert(rank).second) return;  // duplicate contribution
  if (b.mode == PendingParity::Mode::Undecided) {
    if (complete_ && complete_->epoch == msg.base_epoch) {
      // Seed this round's parity from the base epoch's complete parity;
      // each member's diff advances it in place.
      b.mode = PendingParity::Mode::Delta;
      b.base_epoch = msg.base_epoch;
      b.parity = complete_->parity;
      b.sizes = complete_->sizes;
      b.sizes[static_cast<std::size_t>(my_rank_)] = 0;
      b.digests = complete_->digests;
      b.digests[static_cast<std::size_t>(my_rank_)] = 0;
    } else {
      b.mode = PendingParity::Mode::Delta;
      b.poisoned = true;  // nothing to seed from: wait for a full round
    }
  } else if (b.mode != PendingParity::Mode::Delta ||
             b.base_epoch != msg.base_epoch) {
    b.poisoned = true;
  }
  // A member whose image size changed must have sent full (its own
  // precondition); a size mismatch against the seeded parity is corrupt.
  if (!b.poisoned && b.sizes[static_cast<std::size_t>(rank)] != msg.image_size)
    b.poisoned = true;
  if (!b.poisoned && msg.offsets.size() != msg.lens.size()) b.poisoned = true;
  if (!b.poisoned) {
    std::uint64_t total = 0;
    for (std::uint64_t l : msg.lens) total += l;
    std::vector<std::byte> raw;
    std::span<const std::byte> diff = payload.bytes();
    if (msg.encoding == 1) {
      try {
        raw = lz_decompress_block(payload.bytes(),
                                  static_cast<std::size_t>(total));
      } catch (const pup::StreamError&) {
        b.poisoned = true;
      }
      diff = raw;
    }
    if (!b.poisoned && diff.size() != total) b.poisoned = true;
    if (!b.poisoned) {
      std::size_t cursor = 0;
      for (std::size_t r = 0; r < msg.offsets.size(); ++r) {
        std::size_t off = static_cast<std::size_t>(msg.offsets[r]);
        std::size_t len = static_cast<std::size_t>(msg.lens[r]);
        if (off + len > b.parity.size()) {
          b.poisoned = true;
          break;
        }
        checksum::kernels::xor_fold_words(b.parity.data() + off,
                                          diff.data() + cursor, len);
        cursor += len;
      }
    }
  }
  b.sizes[static_cast<std::size_t>(rank)] = msg.image_size;
  b.digests[static_cast<std::size_t>(rank)] = msg.image_digest;
  b.iteration = msg.iteration;
  finish_round_if_complete(msg.epoch, b);
}

void XorScheme::finish_round_if_complete(std::uint64_t epoch,
                                         PendingParity& b) {
  if (static_cast<int>(b.contributed.size()) < n_ - 1) return;
  if (b.poisoned) {
    // The round never completes; complete_ keeps protecting its (older)
    // epoch until a full exchange re-converges the group.
    ++stats_.parity_rounds_poisoned;
    log_warn("ckpt.xor") << "parity round for epoch " << epoch
                         << " poisoned; keeping epoch "
                         << (complete_ ? complete_->epoch : 0);
    building_.erase(epoch);
    return;
  }
  CompleteParity done;
  done.epoch = epoch;
  done.iteration = b.iteration;
  done.parity = std::move(b.parity);
  done.sizes = std::move(b.sizes);
  done.digests = std::move(b.digests);
  complete_ = std::move(done);
  // Stale rounds below the completed epoch can never finish.
  building_.erase(building_.begin(),
                  building_.upper_bound(complete_->epoch));
}

std::size_t XorScheme::redundancy_bytes() const {
  std::size_t bytes = complete_ ? complete_->parity.size() : 0;
  for (const auto& [epoch, b] : building_) bytes += b.parity.size();
  return bytes;
}

void XorScheme::on_rebuild_request(int dead_index, std::uint64_t barrier,
                                   const Image& verified) {
  // A usable piece needs this node's verified image AND a complete parity
  // block for the SAME epoch. A commit whose parity exchange was still in
  // flight when the group member died fails this test; the manager then
  // falls back to scratch (deterministic — no waiting on lost chunks).
  if (!verified.valid || !complete_ || complete_->epoch != verified.epoch) {
    log_warn("ckpt.xor") << "rebuild piece unusable (verified epoch "
                         << (verified.valid ? verified.epoch : 0)
                         << ", parity epoch "
                         << (complete_ ? complete_->epoch : 0) << ")";
    hooks_.report_impossible(barrier);
    return;
  }
  XorPieceMsg msg;
  msg.epoch = verified.epoch;
  msg.iteration = verified.iteration;
  msg.barrier = barrier;
  msg.image_size = verified.image.size();
  msg.parity.resize(complete_->parity.size());
  std::transform(complete_->parity.begin(), complete_->parity.end(),
                 msg.parity.begin(),
                 [](std::byte b) { return static_cast<std::uint8_t>(b); });
  msg.member_sizes = complete_->sizes;
  msg.member_digests = complete_->digests;
  ++stats_.rebuild_pieces_sent;
  stats_.rebuild_bytes_sent += verified.image.size() + msg.parity.size();
  hooks_.send_piece(dead_index, msg, verified.image.buffer());
}

void XorScheme::on_piece(int src_index, const XorPieceMsg& msg,
                         buf::Buffer image) {
  // Pieces from an older (abandoned) restore wave are dropped by the agent
  // before reaching here; anything below the newest barrier seen is stale.
  rebuilds_.erase(rebuilds_.begin(), rebuilds_.lower_bound(msg.barrier));
  Piece piece;
  piece.epoch = msg.epoch;
  piece.iteration = msg.iteration;
  piece.image_size = msg.image_size;
  piece.image = std::move(image);
  piece.parity = msg.parity;
  piece.member_sizes = msg.member_sizes;
  piece.member_digests = msg.member_digests;
  rebuilds_[msg.barrier].insert({rank_of(src_index), std::move(piece)});
  try_reassemble(msg.barrier);
}

void XorScheme::try_reassemble(std::uint64_t barrier) {
  auto& pieces = rebuilds_[barrier];
  if (static_cast<int>(pieces.size()) < n_ - 1) return;
  // All survivors must agree on the epoch: a commit/rollback racing the
  // failure can leave the group split across epochs, in which case the
  // XOR algebra is meaningless and scratch is the only sound answer.
  const Piece& first = pieces.begin()->second;
  for (const auto& [rank, p] : pieces) {
    if (p.epoch != first.epoch ||
        p.member_sizes.size() != static_cast<std::size_t>(n_)) {
      log_warn("ckpt.xor") << "rebuild pieces span epochs; giving up";
      rebuilds_.erase(barrier);
      hooks_.report_impossible(barrier);
      return;
    }
  }
  std::uint64_t my_size =
      first.member_sizes[static_cast<std::size_t>(my_rank_)];
  std::vector<std::byte> rebuilt;
  rebuilt.reserve(static_cast<std::size_t>(my_size));
  for (int t = 0; t < n_ - 1; ++t) {
    int holder = (t + my_rank_ + 1) % n_;
    const Piece& hp = pieces.at(holder);
    std::vector<std::byte> acc(as_bytes(hp.parity).begin(),
                               as_bytes(hp.parity).end());
    for (const auto& [rank, p] : pieces) {
      if (rank == holder) continue;
      int tc = (holder - rank - 1 + n_) % n_;
      auto [begin, end] = chunk_range(p.image_size, tc);
      checksum::xor_fold_chunked(acc,
                                 p.image.bytes().subspan(begin, end - begin));
    }
    auto [mb, me] = chunk_range(my_size, t);
    std::size_t want = me - mb;
    if (acc.size() < want) acc.resize(want, std::byte{0});
    rebuilt.insert(rebuilt.end(), acc.begin(),
                   acc.begin() + static_cast<std::ptrdiff_t>(want));
  }
  ACR_REQUIRE(rebuilt.size() == my_size,
              "reassembled image has the wrong size");
  // Verify-on-rebuild: the survivors recorded this member's image CRC32C
  // during the parity exchange; a reconstruction that does not match it
  // (bit rot, a corrupted piece, inconsistent survivor state) must degrade
  // to the manager's fallback ladder instead of silently promoting.
  std::uint32_t want_digest = 0;
  for (const auto& [rank, p] : pieces) {
    if (p.member_digests.size() != static_cast<std::size_t>(n_)) continue;
    std::uint32_t d = p.member_digests[static_cast<std::size_t>(my_rank_)];
    if (want_digest == 0) want_digest = d;
    if (d != 0 && d != want_digest) {
      log_warn("ckpt.xor") << "rebuild pieces disagree on the image digest";
      rebuilds_.erase(barrier);
      ++stats_.rebuilds_rejected;
      hooks_.report_impossible(barrier);
      return;
    }
  }
  if (want_digest != 0 &&
      checksum::crc32c_chunked(rebuilt) != want_digest) {
    log_warn("ckpt.xor") << "rebuilt image fails its CRC; refusing to promote";
    rebuilds_.erase(barrier);
    ++stats_.rebuilds_rejected;
    hooks_.report_impossible(barrier);
    return;
  }
  Image img;
  img.valid = true;
  img.epoch = first.epoch;
  img.iteration = first.iteration;
  img.image = pup::Checkpoint(std::move(rebuilt));
  img.image.epoch = img.epoch;
  rebuilds_.erase(barrier);
  ++stats_.rebuilds_completed;
  hooks_.restore_rebuilt(std::move(img), barrier);
}

void XorScheme::reset() {
  building_.clear();
  complete_.reset();
  rebuilds_.clear();
}

}  // namespace acr::ckpt
