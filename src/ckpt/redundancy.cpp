#include "ckpt/redundancy.h"

#include <algorithm>
#include <utility>

#include "checksum/fold.h"
#include "checksum/kernels.h"
#include "common/logging.h"
#include "common/require.h"

namespace acr::ckpt {

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::Local:
      return "local";
    case Scheme::Partner:
      return "partner";
    case Scheme::Xor:
      return "xor";
  }
  return "?";
}

namespace {

std::span<const std::byte> as_bytes(const std::vector<std::uint8_t>& v) {
  return {reinterpret_cast<const std::byte*>(v.data()), v.size()};
}

}  // namespace

XorScheme::XorScheme(const GroupMap& groups, int node_index, Hooks hooks)
    : members_(groups.group_members(node_index)),
      n_(static_cast<int>(members_.size())),
      my_rank_(groups.rank_in_group(node_index)),
      hooks_(std::move(hooks)) {
  ACR_REQUIRE(n_ >= 2, "XOR parity needs a group of at least two nodes");
}

int XorScheme::rank_of(int node_index) const {
  auto it = std::find(members_.begin(), members_.end(), node_index);
  ACR_REQUIRE(it != members_.end(), "node index outside this parity group");
  return static_cast<int>(it - members_.begin());
}

std::size_t XorScheme::chunk_len(std::uint64_t size) const {
  auto parts = static_cast<std::uint64_t>(n_ - 1);
  return static_cast<std::size_t>((size + parts - 1) / parts);
}

std::pair<std::size_t, std::size_t> XorScheme::chunk_range(std::uint64_t size,
                                                           int t) const {
  std::size_t cl = chunk_len(size);
  std::size_t begin =
      std::min(static_cast<std::size_t>(t) * cl, static_cast<std::size_t>(size));
  std::size_t end =
      std::min(begin + cl, static_cast<std::size_t>(size));
  return {begin, end};
}

void XorScheme::on_verified(const Image& img) {
  ACR_REQUIRE(img.valid, "parity exchange needs a valid image");
  // One chunk per other group member: holder i receives chunk (i-me-1) mod
  // n of this node's image, as a zero-copy slice of the stored checkpoint.
  for (int i = 0; i < n_; ++i) {
    if (i == my_rank_) continue;
    int t = (i - my_rank_ - 1 + n_) % n_;
    auto [begin, end] = chunk_range(img.image.size(), t);
    XorChunkMsg msg;
    msg.epoch = img.epoch;
    msg.iteration = img.iteration;
    msg.image_size = img.image.size();
    buf::Buffer chunk = img.image.buffer().slice(begin, end - begin);
    ++stats_.parity_chunks_sent;
    stats_.parity_bytes_sent += chunk.size();
    hooks_.send_chunk(members_[static_cast<std::size_t>(i)], msg,
                      std::move(chunk));
  }
}

void XorScheme::on_chunk(int src_index, const XorChunkMsg& msg,
                         buf::Buffer chunk) {
  // Epochs commit monotonically (a rollback targets the LAST committed
  // epoch, never older), so anything at or below the complete parity's
  // epoch is a duplicate or a post-rollback re-exchange of what we hold.
  if (complete_ && msg.epoch <= complete_->epoch) return;
  int rank = rank_of(src_index);
  PendingParity& b = building_[msg.epoch];
  if (b.sizes.empty()) b.sizes.assign(static_cast<std::size_t>(n_), 0);
  if (!b.contributed.insert(rank).second) return;  // duplicate chunk
  // Building the group parity is the hottest xor in the tree (one fold per
  // arriving chunk per epoch); fan it across the kernel pool. XOR is
  // positional, so the parity bytes are identical at any thread count.
  checksum::xor_fold_chunked(b.parity, chunk.bytes());
  b.sizes[static_cast<std::size_t>(rank)] = msg.image_size;
  b.iteration = msg.iteration;
  if (static_cast<int>(b.contributed.size()) < n_ - 1) return;
  CompleteParity done;
  done.epoch = msg.epoch;
  done.iteration = b.iteration;
  done.parity = std::move(b.parity);
  done.sizes = std::move(b.sizes);
  complete_ = std::move(done);
  // Stale rounds below the completed epoch can never finish.
  building_.erase(building_.begin(),
                  building_.upper_bound(complete_->epoch));
}

std::size_t XorScheme::redundancy_bytes() const {
  std::size_t bytes = complete_ ? complete_->parity.size() : 0;
  for (const auto& [epoch, b] : building_) bytes += b.parity.size();
  return bytes;
}

void XorScheme::on_rebuild_request(int dead_index, std::uint64_t barrier,
                                   const Image& verified) {
  // A usable piece needs this node's verified image AND a complete parity
  // block for the SAME epoch. A commit whose parity exchange was still in
  // flight when the group member died fails this test; the manager then
  // falls back to scratch (deterministic — no waiting on lost chunks).
  if (!verified.valid || !complete_ || complete_->epoch != verified.epoch) {
    log_warn("ckpt.xor") << "rebuild piece unusable (verified epoch "
                         << (verified.valid ? verified.epoch : 0)
                         << ", parity epoch "
                         << (complete_ ? complete_->epoch : 0) << ")";
    hooks_.report_impossible(barrier);
    return;
  }
  XorPieceMsg msg;
  msg.epoch = verified.epoch;
  msg.iteration = verified.iteration;
  msg.barrier = barrier;
  msg.image_size = verified.image.size();
  msg.parity.resize(complete_->parity.size());
  std::transform(complete_->parity.begin(), complete_->parity.end(),
                 msg.parity.begin(),
                 [](std::byte b) { return static_cast<std::uint8_t>(b); });
  msg.member_sizes = complete_->sizes;
  ++stats_.rebuild_pieces_sent;
  hooks_.send_piece(dead_index, msg, verified.image.buffer());
}

void XorScheme::on_piece(int src_index, const XorPieceMsg& msg,
                         buf::Buffer image) {
  // Pieces from an older (abandoned) restore wave are dropped by the agent
  // before reaching here; anything below the newest barrier seen is stale.
  rebuilds_.erase(rebuilds_.begin(), rebuilds_.lower_bound(msg.barrier));
  Piece piece;
  piece.epoch = msg.epoch;
  piece.iteration = msg.iteration;
  piece.image_size = msg.image_size;
  piece.image = std::move(image);
  piece.parity = msg.parity;
  piece.member_sizes = msg.member_sizes;
  rebuilds_[msg.barrier].insert({rank_of(src_index), std::move(piece)});
  try_reassemble(msg.barrier);
}

void XorScheme::try_reassemble(std::uint64_t barrier) {
  auto& pieces = rebuilds_[barrier];
  if (static_cast<int>(pieces.size()) < n_ - 1) return;
  // All survivors must agree on the epoch: a commit/rollback racing the
  // failure can leave the group split across epochs, in which case the
  // XOR algebra is meaningless and scratch is the only sound answer.
  const Piece& first = pieces.begin()->second;
  for (const auto& [rank, p] : pieces) {
    if (p.epoch != first.epoch ||
        p.member_sizes.size() != static_cast<std::size_t>(n_)) {
      log_warn("ckpt.xor") << "rebuild pieces span epochs; giving up";
      rebuilds_.erase(barrier);
      hooks_.report_impossible(barrier);
      return;
    }
  }
  std::uint64_t my_size =
      first.member_sizes[static_cast<std::size_t>(my_rank_)];
  std::vector<std::byte> rebuilt;
  rebuilt.reserve(static_cast<std::size_t>(my_size));
  for (int t = 0; t < n_ - 1; ++t) {
    int holder = (t + my_rank_ + 1) % n_;
    const Piece& hp = pieces.at(holder);
    std::vector<std::byte> acc(as_bytes(hp.parity).begin(),
                               as_bytes(hp.parity).end());
    for (const auto& [rank, p] : pieces) {
      if (rank == holder) continue;
      int tc = (holder - rank - 1 + n_) % n_;
      auto [begin, end] = chunk_range(p.image_size, tc);
      checksum::xor_fold_chunked(acc,
                                 p.image.bytes().subspan(begin, end - begin));
    }
    auto [mb, me] = chunk_range(my_size, t);
    std::size_t want = me - mb;
    if (acc.size() < want) acc.resize(want, std::byte{0});
    rebuilt.insert(rebuilt.end(), acc.begin(),
                   acc.begin() + static_cast<std::ptrdiff_t>(want));
  }
  ACR_REQUIRE(rebuilt.size() == my_size,
              "reassembled image has the wrong size");
  Image img;
  img.valid = true;
  img.epoch = first.epoch;
  img.iteration = first.iteration;
  img.image = pup::Checkpoint(std::move(rebuilt));
  img.image.epoch = img.epoch;
  rebuilds_.erase(barrier);
  ++stats_.rebuilds_completed;
  hooks_.restore_rebuilt(std::move(img), barrier);
}

void XorScheme::reset() {
  building_.clear();
  complete_.reset();
  rebuilds_.clear();
}

}  // namespace acr::ckpt
