// Simulated L2 durable tier (burst buffer / parallel FS) behind the
// in-memory L1 redundancy schemes.
//
// The paper's ACR deliberately keeps checkpoints in replica memory (§1:
// disk cost "may be prohibitive"), but correlated bursts can destroy every
// in-memory copy of an epoch — buddy-pair loss, two nodes of an XOR group,
// an exhausted spare pool — and then the only options are restarting from
// scratch or restoring from a slower durable level (the SCR / CRAFT
// multi-level story). DurableTier models that level: a store of
// vault-format blobs (encode_stored_image — header + payload + Fletcher-64
// trailer, so an L2 blob IS a CheckpointVault file image) keyed by
// (replica, node index, epoch). The tier itself is passive and costless;
// the TIME of every write/read is charged separately through the cluster's
// net::L2ChannelModel, and the protocol around it (async flush chunking,
// fetch waves, scavenge on drain) lives in acr::Manager / acr::NodeAgent.
//
// Atomicity contract: a node's image appears here only via publish(),
// which the flush state machine calls once, after the LAST chunk's I/O
// completes. A node that dies mid-flush has published nothing — there is
// no half-written L2 image to fetch, matching the vault's temp-file+rename
// discipline on real disks. An *epoch* is fetchable only when every role
// published (newest_complete_epoch), the multi-file analogue.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "ckpt/vault.h"

namespace acr::ckpt {

/// Configuration for the durable tier. `bandwidth == 0` disables the tier
/// entirely — every tier code path in the protocol is gated on enabled(),
/// which is what keeps no-L2 runs byte-identical to the single-tier build.
struct TierConfig {
  /// Per-node drain bandwidth to L2 in bytes/second. 0 = tier disabled.
  double bandwidth = 0.0;
  /// Per-operation latency (seconds) charged before each chunk/fetch.
  double latency = 1e-4;
  /// Flush I/O is issued in chunks of this size so it trickles underneath
  /// protocol traffic instead of occupying the channel in one long burst.
  std::uint64_t chunk_bytes = 256 * 1024;
  /// Flush every k-th committed epoch (1 = every epoch). Larger values
  /// trade flush traffic for a longer rollback on L2 fetch.
  std::uint64_t flush_interval = 1;

  bool enabled() const { return bandwidth > 0.0; }
};

/// Longest delta chain an agent will grow in the tier: once the newest
/// blob's chain reaches this many links, the next flush ships a full (or
/// self-contained compressed) image. Bounds both the fetch read cost and
/// how many ancestors a single lost blob can orphan.
inline constexpr std::uint64_t kTierMaxChain = 8;

/// In-memory model of the durable store's contents plus lifetime counters.
class DurableTier {
 public:
  struct Key {
    int replica = 0;
    int index = 0;
    std::uint64_t epoch = 0;
    bool operator<(const Key& o) const {
      if (epoch != o.epoch) return epoch < o.epoch;
      if (replica != o.replica) return replica < o.replica;
      return index < o.index;
    }
  };

  /// `roles_per_replica * replicas` publishes make an epoch complete.
  DurableTier(int replicas, int roles_per_replica)
      : replicas_(replicas), roles_(roles_per_replica) {}

  /// Install a node's image for an epoch (called once per flush, after the
  /// final chunk's modeled I/O completes). Re-publishing the same key (a
  /// restored node re-flushing its adopted image) is idempotent.
  void publish(int replica, int index, const StoredImage& img);

  /// Install a pre-encoded blob (vault v1 or v2 bytes). The codec flush
  /// path encodes its delta/compressed blob up front — the same bytes that
  /// were charged chunk-by-chunk against the L2 channel — and publishes it
  /// verbatim here. `base_epoch != 0` declares a delta blob whose decode
  /// needs that ancestor; fetch() follows the chain and prune() keeps the
  /// ancestors of every kept delta alive.
  void publish_blob(int replica, int index, std::uint64_t epoch,
                    std::vector<std::byte> blob, std::uint64_t base_epoch);

  bool has(int replica, int index, std::uint64_t epoch) const;

  /// Decode (and integrity-check) a node's image for an epoch. A delta
  /// blob is reconstructed by recursively fetching its base chain and
  /// overlaying each frame; a broken chain (missing/corrupt ancestor)
  /// yields nullopt, pushing the fetch wave to an older epoch or scratch.
  std::optional<StoredImage> fetch(int replica, int index,
                                   std::uint64_t epoch);

  /// Encoded size of the blob at a key, or 0 if absent.
  std::uint64_t blob_bytes(int replica, int index, std::uint64_t epoch) const;

  /// Total bytes a fetch of this key must read: the blob plus every blob
  /// on its base chain (== blob_bytes for a full image). This is what the
  /// L2 read of a fetch wave charges.
  std::uint64_t chain_bytes(int replica, int index, std::uint64_t epoch) const;

  /// Number of blobs on the base chain of a key (1 for a full image, 0 if
  /// absent). Agents cap this by forcing a periodic full flush.
  std::uint64_t chain_length(int replica, int index,
                             std::uint64_t epoch) const;

  /// Newest epoch for which EVERY role of EVERY replica has published —
  /// the only epochs a fetch wave may target. 0 = none.
  std::uint64_t newest_complete_epoch() const;

  /// Epochs with at least one blob present, ascending.
  std::vector<std::uint64_t> epochs_present() const;

  /// Drop blobs of epochs older than `keep_from_epoch` (keeps the boundary
  /// epoch itself, mirroring CheckpointVault::prune) — EXCEPT ancestors
  /// that a kept delta blob's base chain still references, which must
  /// survive until their last dependant is pruned.
  void prune(std::uint64_t keep_from_epoch);

  // --- lifetime counters (RunSummary / tests) -------------------------------
  std::uint64_t publishes() const { return publishes_; }
  std::uint64_t fetches() const { return fetches_; }
  std::uint64_t bytes_published() const { return bytes_published_; }
  std::uint64_t delta_publishes() const { return delta_publishes_; }

 private:
  struct Blob {
    std::vector<std::byte> bytes;
    std::uint64_t base_epoch = 0;  ///< 0 = self-contained
  };

  std::optional<StoredImage> decode_chain(int replica, int index,
                                          std::uint64_t epoch, int depth);

  int replicas_;
  int roles_;
  std::map<Key, Blob> blobs_;
  std::uint64_t publishes_ = 0;
  std::uint64_t fetches_ = 0;
  std::uint64_t bytes_published_ = 0;
  std::uint64_t delta_publishes_ = 0;
};

}  // namespace acr::ckpt
