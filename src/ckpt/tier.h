// Simulated L2 durable tier (burst buffer / parallel FS) behind the
// in-memory L1 redundancy schemes.
//
// The paper's ACR deliberately keeps checkpoints in replica memory (§1:
// disk cost "may be prohibitive"), but correlated bursts can destroy every
// in-memory copy of an epoch — buddy-pair loss, two nodes of an XOR group,
// an exhausted spare pool — and then the only options are restarting from
// scratch or restoring from a slower durable level (the SCR / CRAFT
// multi-level story). DurableTier models that level: a store of
// vault-format blobs (encode_stored_image — header + payload + Fletcher-64
// trailer, so an L2 blob IS a CheckpointVault file image) keyed by
// (replica, node index, epoch). The tier itself is passive and costless;
// the TIME of every write/read is charged separately through the cluster's
// net::L2ChannelModel, and the protocol around it (async flush chunking,
// fetch waves, scavenge on drain) lives in acr::Manager / acr::NodeAgent.
//
// Atomicity contract: a node's image appears here only via publish(),
// which the flush state machine calls once, after the LAST chunk's I/O
// completes. A node that dies mid-flush has published nothing — there is
// no half-written L2 image to fetch, matching the vault's temp-file+rename
// discipline on real disks. An *epoch* is fetchable only when every role
// published (newest_complete_epoch), the multi-file analogue.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "ckpt/vault.h"

namespace acr::ckpt {

/// Configuration for the durable tier. `bandwidth == 0` disables the tier
/// entirely — every tier code path in the protocol is gated on enabled(),
/// which is what keeps no-L2 runs byte-identical to the single-tier build.
struct TierConfig {
  /// Per-node drain bandwidth to L2 in bytes/second. 0 = tier disabled.
  double bandwidth = 0.0;
  /// Per-operation latency (seconds) charged before each chunk/fetch.
  double latency = 1e-4;
  /// Flush I/O is issued in chunks of this size so it trickles underneath
  /// protocol traffic instead of occupying the channel in one long burst.
  std::uint64_t chunk_bytes = 256 * 1024;
  /// Flush every k-th committed epoch (1 = every epoch). Larger values
  /// trade flush traffic for a longer rollback on L2 fetch.
  std::uint64_t flush_interval = 1;

  bool enabled() const { return bandwidth > 0.0; }
};

/// In-memory model of the durable store's contents plus lifetime counters.
class DurableTier {
 public:
  struct Key {
    int replica = 0;
    int index = 0;
    std::uint64_t epoch = 0;
    bool operator<(const Key& o) const {
      if (epoch != o.epoch) return epoch < o.epoch;
      if (replica != o.replica) return replica < o.replica;
      return index < o.index;
    }
  };

  /// `roles_per_replica * replicas` publishes make an epoch complete.
  DurableTier(int replicas, int roles_per_replica)
      : replicas_(replicas), roles_(roles_per_replica) {}

  /// Install a node's image for an epoch (called once per flush, after the
  /// final chunk's modeled I/O completes). Re-publishing the same key (a
  /// restored node re-flushing its adopted image) is idempotent.
  void publish(int replica, int index, const StoredImage& img);

  bool has(int replica, int index, std::uint64_t epoch) const;

  /// Decode (and integrity-check) a node's image for an epoch.
  std::optional<StoredImage> fetch(int replica, int index,
                                   std::uint64_t epoch);

  /// Encoded size of the blob at a key, or 0 if absent.
  std::uint64_t blob_bytes(int replica, int index, std::uint64_t epoch) const;

  /// Newest epoch for which EVERY role of EVERY replica has published —
  /// the only epochs a fetch wave may target. 0 = none.
  std::uint64_t newest_complete_epoch() const;

  /// Epochs with at least one blob present, ascending.
  std::vector<std::uint64_t> epochs_present() const;

  /// Drop blobs of epochs older than `keep_from_epoch` (keeps the boundary
  /// epoch itself, mirroring CheckpointVault::prune).
  void prune(std::uint64_t keep_from_epoch);

  // --- lifetime counters (RunSummary / tests) -------------------------------
  std::uint64_t publishes() const { return publishes_; }
  std::uint64_t fetches() const { return fetches_; }
  std::uint64_t bytes_published() const { return bytes_published_; }

 private:
  int replicas_;
  int roles_;
  std::map<Key, std::vector<std::byte>> blobs_;
  std::uint64_t publishes_ = 0;
  std::uint64_t fetches_ = 0;
  std::uint64_t bytes_published_ = 0;
};

}  // namespace acr::ckpt
