#include "ckpt/vault.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <vector>

#include "checksum/fletcher.h"
#include "common/require.h"

namespace acr::ckpt {

namespace {

constexpr std::uint32_t kMagic = 0xAC0C4B9Du;
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kDeltaVersion = 2;

struct Header {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint64_t epoch;
  std::uint64_t iteration;
  std::uint64_t payload_bytes;
};

/// v2 extension fields between the Header and the payload: the chunk-map
/// section of the codec pipeline. `payload_bytes` in the shared Header is
/// the FRAME payload size (encoded chunks), not the decoded image size.
struct DeltaHeader {
  std::uint64_t base_epoch;
  std::uint64_t full_bytes;
  std::uint64_t n_chunks;
  std::uint8_t encoding;
};

void append_bytes(std::vector<std::byte>& out, const void* p, std::size_t n) {
  if (n == 0) return;
  std::size_t at = out.size();
  out.resize(at + n);
  std::memcpy(out.data() + at, p, n);
}

}  // namespace

std::size_t encoded_image_bytes(std::size_t payload_bytes) {
  return sizeof(Header) + payload_bytes + sizeof(std::uint64_t);
}

std::vector<std::byte> encode_stored_image(const StoredImage& ckpt) {
  Header h{kMagic, kVersion, ckpt.epoch, ckpt.iteration,
           static_cast<std::uint64_t>(ckpt.image.size())};

  checksum::Fletcher64 digest;
  digest.append(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(&h), sizeof h));
  digest.append(ckpt.image.bytes());
  std::uint64_t trailer = digest.digest();

  std::vector<std::byte> blob(encoded_image_bytes(ckpt.image.size()));
  std::byte* cursor = blob.data();
  std::memcpy(cursor, &h, sizeof h);
  cursor += sizeof h;
  std::memcpy(cursor, ckpt.image.bytes().data(), ckpt.image.size());
  cursor += ckpt.image.size();
  std::memcpy(cursor, &trailer, sizeof trailer);
  return blob;
}

StoredImage decode_stored_image(std::span<const std::byte> blob) {
  Header h{};
  if (blob.size() < sizeof h)
    throw pup::StreamError("stored checkpoint image is truncated");
  std::memcpy(&h, blob.data(), sizeof h);
  if (h.magic != kMagic)
    throw pup::StreamError("stored checkpoint image has a bad header");
  if (h.version != kVersion)
    throw pup::StreamError("stored checkpoint image has unsupported version " +
                           std::to_string(h.version));
  if (blob.size() <
      sizeof h + h.payload_bytes + sizeof(std::uint64_t))
    throw pup::StreamError("stored checkpoint image is truncated");

  std::vector<std::byte> payload(static_cast<std::size_t>(h.payload_bytes));
  std::memcpy(payload.data(), blob.data() + sizeof h, payload.size());
  std::uint64_t trailer = 0;
  std::memcpy(&trailer, blob.data() + sizeof h + payload.size(),
              sizeof trailer);

  checksum::Fletcher64 digest;
  digest.append(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(&h), sizeof h));
  digest.append(payload);
  if (digest.digest() != trailer)
    throw pup::StreamError(
        "stored checkpoint image failed its integrity check");

  StoredImage out;
  out.epoch = h.epoch;
  out.iteration = h.iteration;
  out.image = pup::Checkpoint(std::move(payload));
  out.image.epoch = h.epoch;
  return out;
}

std::size_t encoded_delta_bytes(const CodecFrame& frame) {
  return sizeof(Header) + sizeof(DeltaHeader) + frame.map.present.size() +
         frame.payload.size() + sizeof(std::uint64_t);
}

std::vector<std::byte> encode_delta_image(const DeltaBlob& blob) {
  const CodecFrame& f = blob.frame;
  Header h{kMagic, kDeltaVersion, blob.epoch, blob.iteration,
           static_cast<std::uint64_t>(f.payload.size())};
  // Zero-init first so the struct's trailing padding bytes are
  // deterministic — they are digested and written out.
  DeltaHeader dh{};
  dh.base_epoch = blob.base_epoch;
  dh.full_bytes = f.map.full_bytes;
  dh.n_chunks = static_cast<std::uint64_t>(f.map.present.size());
  dh.encoding = f.encoding;

  std::vector<std::byte> out;
  out.reserve(encoded_delta_bytes(f));
  append_bytes(out, &h, sizeof h);
  append_bytes(out, &dh, sizeof dh);
  append_bytes(out, f.map.present.data(), f.map.present.size());
  append_bytes(out, f.payload.bytes().data(), f.payload.size());

  checksum::Fletcher64 digest;
  digest.append(out);
  std::uint64_t trailer = digest.digest();
  append_bytes(out, &trailer, sizeof trailer);
  return out;
}

DecodedBlob decode_any_image(std::span<const std::byte> blob) {
  Header h{};
  if (blob.size() < sizeof h)
    throw pup::StreamError("stored checkpoint blob is truncated");
  std::memcpy(&h, blob.data(), sizeof h);
  if (h.magic != kMagic)
    throw pup::StreamError("stored checkpoint blob has a bad header");

  DecodedBlob out;
  if (h.version == kVersion) {
    out.is_delta = false;
    out.full = decode_stored_image(blob);
    return out;
  }
  if (h.version != kDeltaVersion)
    throw pup::StreamError("stored checkpoint blob has unsupported version " +
                           std::to_string(h.version));

  DeltaHeader dh{};
  std::size_t need = sizeof h + sizeof dh;
  if (blob.size() < need)
    throw pup::StreamError("delta checkpoint blob is truncated");
  std::memcpy(&dh, blob.data() + sizeof h, sizeof dh);
  need += dh.n_chunks + h.payload_bytes + sizeof(std::uint64_t);
  if (blob.size() < need)
    throw pup::StreamError("delta checkpoint blob is truncated");

  std::size_t body = need - sizeof(std::uint64_t);
  std::uint64_t trailer = 0;
  std::memcpy(&trailer, blob.data() + body, sizeof trailer);
  checksum::Fletcher64 digest;
  digest.append(blob.subspan(0, body));
  if (digest.digest() != trailer)
    throw pup::StreamError(
        "delta checkpoint blob failed its integrity check");

  out.is_delta = true;
  out.delta.epoch = h.epoch;
  out.delta.iteration = h.iteration;
  out.delta.base_epoch = dh.base_epoch;
  CodecFrame& f = out.delta.frame;
  f.map.full_bytes = dh.full_bytes;
  f.encoding = dh.encoding;
  const std::byte* map = blob.data() + sizeof h + sizeof dh;
  f.map.present.resize(static_cast<std::size_t>(dh.n_chunks));
  std::memcpy(f.map.present.data(), map, f.map.present.size());
  f.payload = buf::Buffer::copy_of(
      blob.subspan(sizeof h + sizeof dh + f.map.present.size(),
                   static_cast<std::size_t>(h.payload_bytes)));
  return out;
}

CheckpointVault::CheckpointVault(std::filesystem::path directory,
                                 std::string prefix)
    : directory_(std::move(directory)), prefix_(std::move(prefix)) {
  ACR_REQUIRE(!prefix_.empty(), "vault prefix must be non-empty");
  std::filesystem::create_directories(directory_);
  // An interrupted store() can strand a "<prefix>.*.tmp" next to the real
  // files; it can never be completed, so clear it now.
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    std::string name = entry.path().filename().string();
    if (name.rfind(prefix_ + ".", 0) == 0 && name.size() > 4 &&
        name.substr(name.size() - 4) == ".tmp")
      std::filesystem::remove(entry.path());
  }
}

std::filesystem::path CheckpointVault::path_for(std::uint64_t epoch) const {
  return directory_ / (prefix_ + ".e" + std::to_string(epoch) + ".ckpt");
}

std::filesystem::path CheckpointVault::store(const StoredImage& ckpt) const {
  std::vector<std::byte> blob = encode_stored_image(ckpt);

  std::filesystem::path final_path = path_for(ckpt.epoch);
  std::filesystem::path tmp_path = final_path;
  tmp_path += ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    ACR_REQUIRE(out.good(), "cannot open checkpoint file for writing");
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
    ACR_REQUIRE(out.good(), "checkpoint write failed");
  }
  std::filesystem::rename(tmp_path, final_path);
  return final_path;
}

std::optional<StoredImage> CheckpointVault::load(std::uint64_t epoch) const {
  std::filesystem::path path = path_for(epoch);
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;

  in.seekg(0, std::ios::end);
  std::vector<std::byte> blob(static_cast<std::size_t>(in.tellg()));
  in.seekg(0, std::ios::beg);
  in.read(reinterpret_cast<char*>(blob.data()),
          static_cast<std::streamsize>(blob.size()));
  if (!in.good() && !blob.empty())
    throw pup::StreamError("checkpoint file " + path.string() +
                           ": short read");
  try {
    return decode_stored_image(blob);
  } catch (const pup::StreamError& e) {
    throw pup::StreamError("checkpoint file " + path.string() + ": " +
                           e.what());
  }
}

std::vector<std::uint64_t> CheckpointVault::epochs_on_disk() const {
  std::vector<std::uint64_t> epochs;
  std::string head = prefix_ + ".e";
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    std::string name = entry.path().filename().string();
    if (name.rfind(head, 0) != 0) continue;
    if (name.size() < head.size() + 6) continue;
    if (name.substr(name.size() - 5) != ".ckpt") continue;
    std::string digits = name.substr(head.size(),
                                     name.size() - head.size() - 5);
    try {
      epochs.push_back(std::stoull(digits));
    } catch (const std::exception&) {
      continue;  // unrelated file
    }
  }
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

std::optional<StoredImage> CheckpointVault::load_latest() const {
  std::vector<std::uint64_t> epochs = epochs_on_disk();
  for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
    try {
      std::optional<StoredImage> img = load(*it);
      if (img) return img;
    } catch (const pup::StreamError&) {
      continue;  // corrupt file: fall back to the previous epoch
    }
  }
  return std::nullopt;
}

void CheckpointVault::prune(std::uint64_t keep_from_epoch) const {
  for (std::uint64_t epoch : epochs_on_disk())
    if (epoch < keep_from_epoch)
      std::filesystem::remove(path_for(epoch));
}

}  // namespace acr::ckpt
