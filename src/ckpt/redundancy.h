// Pluggable checkpoint-redundancy schemes (the SCR-style trade space).
//
// The paper's buddy scheme (§2.1) fully duplicates every verified image
// across replicas. That is one point on a redundancy-vs-memory curve:
//
//   Local    no remote copy at all. Zero extra memory and wire; any hard
//            failure loses the node's image, so recovery degrades to a
//            scratch restart. SDC rollback (which only needs the local
//            verified image) still works.
//   Partner  the existing buddy path: the cross-replica copy of §2.1,
//            1x extra memory (held by the buddy), image-sized recovery
//            transfer over the expensive inter-replica links.
//   Xor      RAID-5-style parity across a group of N nodes of the SAME
//            replica. Each member splits its verified image into N-1
//            chunks and sends chunk sigma(i,m) to holder i; each holder
//            folds the N-1 chunks it receives (one per other member) into
//            one parity block of ~L/(N-1) bytes. Any single node of the
//            group is rebuilt from the N-1 survivors' images + parity —
//            intra-replica, so a buddy-PAIR loss (fatal under Partner)
//            is survivable. Two dead in one group lose the image.
//
// Chunk layout (the classic RAID-5 rotation, so no node holds parity over
// its own bytes): member m's image is split into N-1 chunks of length
// ceil(size_m/(N-1)); holder i != m receives chunk sigma(i,m) = (i-m-1)
// mod N, which is a bijection in each argument. Holder i's parity is the
// XOR-fold (zero-extended) of the N-1 chunks it received. To rebuild dead
// member j's chunk t, the holder is i = (t+j+1) mod N (never j itself):
// chunk t = parity_i XOR all other members' chunks sigma(i,m).
//
// This layer is runtime-agnostic: schemes speak through Hooks callbacks
// and pup-able message structs; the NodeAgent owns tags and routing.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "buf/buffer.h"
#include "ckpt/codec.h"
#include "ckpt/group.h"
#include "ckpt/store.h"
#include "pup/pup.h"
#include "pup/stl.h"

namespace acr::ckpt {

enum class Scheme { Local, Partner, Xor, Rs };

const char* scheme_name(Scheme s);

/// Parity chunk header: one chunk of the sender's verified image, riding
/// as the message attachment (zero-copy slice of the stored checkpoint).
struct XorChunkMsg {
  std::uint64_t epoch = 0;
  std::uint64_t iteration = 0;
  std::uint64_t image_size = 0;    ///< sender's full verified image size
  std::uint32_t image_digest = 0;  ///< CRC32C of the sender's full image
  void pup(pup::Puper& p) {
    p | epoch;
    p | iteration;
    p | image_size;
    p | image_digest;
  }
};

/// Delta parity chunk (codec pipeline, --ckpt-delta=on): instead of the
/// full chunk, the member ships the XOR DIFFERENCE new^base of the dirty
/// sub-ranges of its slice. Because parity is linear,
///   parity_new = parity_base XOR fold(all members' diffs),
/// a holder seeds this epoch's parity from its complete base-epoch parity
/// and folds each diff in place. Valid only when EVERY member of the round
/// diffs against the holder's complete epoch — a mixed or unseedable round
/// is poisoned and simply does not complete (the group stays protected at
/// the base epoch until the next full exchange; see kXorDeltaFullCadence).
/// Offsets are relative to the member's slice, i.e. parity positions.
struct XorDeltaChunkMsg {
  std::uint64_t epoch = 0;
  std::uint64_t iteration = 0;
  std::uint64_t base_epoch = 0;   ///< epoch the diffs are taken against
  std::uint64_t image_size = 0;   ///< sender's full verified image size
  std::uint32_t image_digest = 0; ///< CRC32C of the sender's full NEW image
  std::uint8_t encoding = 0;      ///< 0 raw, 1 lz (attachment payload)
  std::vector<std::uint64_t> offsets;  ///< slice-relative dirty range starts
  std::vector<std::uint64_t> lens;     ///< dirty range lengths
  void pup(pup::Puper& p) {
    p | epoch;
    p | iteration;
    p | base_epoch;
    p | image_size;
    p | image_digest;
    p | encoding;
    p | offsets;
    p | lens;
  }
};

/// Every this-many epochs the XOR exchange ships full chunks even when
/// deltas are possible, so a holder whose parity history died with its
/// hardware (promoted spare, shrink remap) re-converges within a bounded
/// number of commits instead of poisoning delta rounds forever.
inline constexpr std::uint64_t kXorDeltaFullCadence = 4;

/// Codec context the agent hands the scheme alongside a verified image:
/// the previous verified epoch (the delta base) and this image's chunk
/// digests. Null pointer = no codec / no base — ship full. force_full
/// marks re-protection after a restore, whose receivers may have lost
/// their parity history.
struct DeltaHints {
  const CodecConfig* codec = nullptr;
  const buf::Buffer* base_image = nullptr;
  const std::vector<std::uint32_t>* base_digests = nullptr;
  const std::vector<std::uint32_t>* digests = nullptr;
  std::uint64_t base_epoch = 0;  ///< 0 = no base held
  bool force_full = false;
};

/// Rebuild contribution from one survivor to the promoted spare: the
/// survivor's full verified image (attachment, zero-copy) plus its group
/// parity block and the member sizes that parity covers.
struct XorPieceMsg {
  std::uint64_t epoch = 0;
  std::uint64_t iteration = 0;
  std::uint64_t barrier = 0;     ///< restore wave this rebuild belongs to
  std::uint64_t image_size = 0;  ///< sender's verified image size
  std::vector<std::uint8_t> parity;        ///< sender's parity block
  std::vector<std::uint64_t> member_sizes; ///< image size per group rank
  /// CRC32C per group rank, as recorded from the parity exchange; the
  /// spare verifies its reconstruction against its own slot before
  /// promoting (a bad rebuild degrades instead of silently installing).
  std::vector<std::uint32_t> member_digests;
  void pup(pup::Puper& p) {
    p | epoch;
    p | iteration;
    p | barrier;
    p | image_size;
    p | parity;
    p | member_sizes;
    p | member_digests;
  }
};

struct RedundancyStats {
  // Encode-side wire traffic (the steady-state parity exchange).
  std::uint64_t parity_chunks_sent = 0;
  std::uint64_t parity_bytes_sent = 0;    ///< chunk bytes put on the wire
  // Rebuild-side wire traffic (recovery waves only), kept separate so
  // sweeps can report steady-state encode cost vs recovery cost per scheme.
  std::uint64_t rebuild_pieces_sent = 0;
  std::uint64_t rebuild_bytes_sent = 0;   ///< piece payload bytes (image+parity)
  std::uint64_t rebuilds_completed = 0;   ///< images reassembled on this node
  std::uint64_t rebuilds_rejected = 0;    ///< reconstructions failing the CRC
  // Codec (delta) counters — zero unless --ckpt-delta=on.
  std::uint64_t parity_delta_chunks_sent = 0;
  std::uint64_t parity_delta_bytes_sent = 0;  ///< diff payload bytes shipped
  std::uint64_t parity_rounds_poisoned = 0;   ///< delta rounds that fell back
};

/// Strategy interface. One instance per node agent; the agent forwards
/// verified-image events and scheme-specific wire traffic here.
class RedundancyScheme {
 public:
  virtual ~RedundancyScheme() = default;
  virtual Scheme kind() const = 0;
  const char* name() const { return scheme_name(kind()); }

  /// A new verified image exists on this node (commit promotion or a
  /// completed restore — the latter matters: a promoted spare's parity
  /// died with its predecessor and must be re-fed by the group).
  virtual void on_verified(const Image& img) { (void)img; }

  /// Codec-aware variant: `hints` (may be null) carries the delta base and
  /// chunk digests. The default forwards to the legacy entry point, so
  /// schemes without a delta path are untouched.
  virtual void on_verified(const Image& img, const DeltaHints* hints) {
    (void)hints;
    on_verified(img);
  }

  /// Forget all redundancy state (restart from scratch / re-promotion).
  virtual void reset() {}

  /// Extra bytes this node holds purely for redundancy (parity blocks).
  virtual std::size_t redundancy_bytes() const { return 0; }

  const RedundancyStats& stats() const { return stats_; }

 protected:
  RedundancyStats stats_;
};

/// No remote copy: the verified image lives only in the node's Store.
class LocalScheme final : public RedundancyScheme {
 public:
  Scheme kind() const override { return Scheme::Local; }
};

/// The §2.1 buddy copy. The actual shipping/compare path stays in the
/// NodeAgent (it is fused with SDC detection and must remain bit-identical
/// to the pre-refactor protocol); this object only names the policy for
/// the manager's recovery routing.
class PartnerScheme final : public RedundancyScheme {
 public:
  Scheme kind() const override { return Scheme::Partner; }
};

class XorScheme final : public RedundancyScheme {
 public:
  struct Hooks {
    /// Ship a parity chunk to group member `dst_index` (same replica).
    std::function<void(int dst_index, const XorChunkMsg& msg,
                       buf::Buffer chunk)>
        send_chunk;
    /// Ship a DELTA parity chunk (diff payload as the attachment). Only
    /// wired when the codec's delta stage is on; never called otherwise.
    std::function<void(int dst_index, const XorDeltaChunkMsg& msg,
                       buf::Buffer payload)>
        send_delta_chunk;
    /// Ship a rebuild piece to the promoted spare at `dst_index`.
    std::function<void(int dst_index, const XorPieceMsg& msg,
                       buf::Buffer image)>
        send_piece;
    /// This node cannot contribute a usable piece (or received
    /// inconsistent pieces): the manager must fall back to scratch.
    std::function<void(std::uint64_t barrier)> report_impossible;
    /// All pieces arrived and the image was reassembled: restore from it.
    std::function<void(Image img, std::uint64_t barrier)> restore_rebuilt;
  };

  XorScheme(const GroupMap& groups, int node_index, Hooks hooks);

  Scheme kind() const override { return Scheme::Xor; }
  void on_verified(const Image& img) override;
  void on_verified(const Image& img, const DeltaHints* hints) override;
  void reset() override;
  std::size_t redundancy_bytes() const override;

  /// A group member's parity chunk arrived. Contributions are tracked as
  /// identity sets per epoch: a duplicated chunk (at-least-once transport)
  /// must not XOR-cancel itself out of the parity.
  void on_chunk(int src_index, const XorChunkMsg& msg, buf::Buffer chunk);

  /// A member's DELTA parity chunk arrived: seed from the base-epoch
  /// parity and fold the diff ranges. A round that cannot seed (no parity
  /// for the base epoch), mixes full and delta contributions, or diffs
  /// against mismatched bases is poisoned: it never completes and the
  /// holder keeps protecting the base epoch until the next full round.
  void on_delta_chunk(int src_index, const XorDeltaChunkMsg& msg,
                      buf::Buffer payload);

  /// Manager ordered this survivor to feed the spare rebuilding
  /// `dead_index`. `verified` is the node's current verified image.
  void on_rebuild_request(int dead_index, std::uint64_t barrier,
                          const Image& verified);

  /// A survivor's rebuild piece arrived (this node is the spare).
  void on_piece(int src_index, const XorPieceMsg& msg, buf::Buffer image);

  /// True when a complete parity block for `epoch` is held (tests).
  bool parity_complete_for(std::uint64_t epoch) const {
    return complete_ && complete_->epoch == epoch;
  }
  int group_size() const { return n_; }

 private:
  struct PendingParity {
    std::set<int> contributed;  ///< ranks folded in (identity, not count)
    std::vector<std::byte> parity;
    std::uint64_t iteration = 0;
    std::vector<std::uint64_t> sizes;  ///< image size per rank (0 = self)
    std::vector<std::uint32_t> digests;  ///< image CRC32C per rank (0 = self)
    // Codec bookkeeping: a round is uniformly full chunks or uniformly
    // deltas against ONE base epoch; anything else poisons it.
    enum class Mode : std::uint8_t { Undecided, Full, Delta };
    Mode mode = Mode::Undecided;
    std::uint64_t base_epoch = 0;  ///< Delta mode: the seeded parity's epoch
    bool poisoned = false;
  };
  struct CompleteParity {
    std::uint64_t epoch = 0;
    std::uint64_t iteration = 0;
    std::vector<std::byte> parity;
    std::vector<std::uint64_t> sizes;
    std::vector<std::uint32_t> digests;
  };
  struct Piece {
    std::uint64_t epoch = 0;
    std::uint64_t iteration = 0;
    std::uint64_t image_size = 0;
    buf::Buffer image;
    std::vector<std::uint8_t> parity;
    std::vector<std::uint64_t> member_sizes;
    std::vector<std::uint32_t> member_digests;
  };

  int rank_of(int node_index) const;
  /// Chunk length for an image of `size` split across the group.
  std::size_t chunk_len(std::uint64_t size) const;
  /// Bytes [begin, end) of chunk `t` of an image of `size`.
  std::pair<std::size_t, std::size_t> chunk_range(std::uint64_t size,
                                                  int t) const;
  /// Shared tail of on_chunk / on_delta_chunk: promote (or, when poisoned,
  /// discard) the round once all n-1 contributions are in.
  void finish_round_if_complete(std::uint64_t epoch, PendingParity& b);
  void try_reassemble(std::uint64_t barrier);

  std::vector<int> members_;  ///< node indices of this group, ascending
  int n_ = 0;                 ///< group size
  int my_rank_ = 0;
  Hooks hooks_;

  std::map<std::uint64_t, PendingParity> building_;  ///< by epoch
  std::optional<CompleteParity> complete_;
  /// Rebuild pieces received while playing the spare, by restore barrier
  /// then sender rank (identity-keyed: duplicates overwrite, never add).
  std::map<std::uint64_t, std::map<int, Piece>> rebuilds_;
};

}  // namespace acr::ckpt
