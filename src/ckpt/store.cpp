#include "ckpt/store.h"

#include <utility>

namespace acr::ckpt {

void Store::stage_candidate(std::uint64_t epoch, std::uint64_t iteration,
                            pup::Checkpoint image) {
  candidate_.valid = true;
  candidate_.epoch = epoch;
  candidate_.iteration = iteration;
  candidate_.image = std::move(image);
}

PromoteResult Store::promote(std::uint64_t epoch) {
  if (!candidate_.valid) return PromoteResult::NoCandidate;
  if (candidate_.epoch != epoch) return PromoteResult::EpochMismatch;
  verified_ = std::move(candidate_);
  candidate_ = Image{};
  if (vault_) {
    vault_->store(StoredImage{verified_.epoch, verified_.iteration,
                              verified_.image});
    vault_->prune(verified_.epoch);
  }
  return PromoteResult::Promoted;
}

void Store::adopt_verified(Image img) {
  verified_ = std::move(img);
  candidate_ = Image{};
}

const Image* Store::restorable(std::uint64_t epoch) const {
  if (verified_.valid && verified_.epoch == epoch) return &verified_;
  if (candidate_.valid && candidate_.epoch == epoch) return &candidate_;
  return nullptr;
}

void Store::reset() {
  verified_ = Image{};
  candidate_ = Image{};
}

}  // namespace acr::ckpt
