#include "ckpt/group.h"

#include "common/require.h"

namespace acr::ckpt {

GroupMap::GroupMap(int nodes_per_replica, int group_size) {
  if (group_size <= 0) return;
  ACR_REQUIRE(nodes_per_replica >= 1, "group map needs at least one node");
  ACR_REQUIRE(group_size >= 2, "parity groups need at least two members");
  nodes_ = nodes_per_replica;
  for (int start = 0; start < nodes_per_replica; start += group_size) {
    if (nodes_per_replica - start == 1 && !starts_.empty()) break;  // merge
    starts_.push_back(start);
  }
}

int GroupMap::group_of(int node_index) const {
  ACR_REQUIRE(enabled() && node_index >= 0 && node_index < nodes_,
              "node index outside the group map");
  int g = 0;
  while (g + 1 < num_groups() && starts_[static_cast<std::size_t>(g + 1)] <=
                                     node_index)
    ++g;
  return g;
}

std::vector<int> GroupMap::group_members(int node_index) const {
  int g = group_of(node_index);
  int first = starts_[static_cast<std::size_t>(g)];
  int last = g + 1 < num_groups() ? starts_[static_cast<std::size_t>(g + 1)]
                                  : nodes_;
  std::vector<int> members;
  for (int i = first; i < last; ++i) members.push_back(i);
  return members;
}

int GroupMap::rank_in_group(int node_index) const {
  return node_index - starts_[static_cast<std::size_t>(group_of(node_index))];
}

int GroupMap::group_size_of(int node_index) const {
  int g = group_of(node_index);
  int first = starts_[static_cast<std::size_t>(g)];
  int last = g + 1 < num_groups() ? starts_[static_cast<std::size_t>(g + 1)]
                                  : nodes_;
  return last - first;
}

}  // namespace acr::ckpt
