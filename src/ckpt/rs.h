// Reed–Solomon erasure-coded checkpoint redundancy: survive any m losses
// per group.
//
// XOR parity (redundancy.h) tops out at one loss per group; correlated
// bursts routinely kill 2+ nodes in one blade and force the slow fallback
// ladder. Rs(k, m) generalises the same rotated-stripe idea to m parity
// blocks per stripe over GF(256) (gf256.h), so ANY f <= m dead members of
// an n-node group are rebuilt bitwise from the n - f survivors.
//
// Stripe layout (n = group size, m = parity count, k = n - m data chunks
// per member; all arithmetic mod n):
//
//   - There are n stripes, one "rotation position" per member. Stripe s
//     is held as parity by the m members p = s, s+1, ..., s+m-1; every
//     other member r contributes its data chunk t = (s - r - 1) mod n.
//   - Equivalently: member r's image splits into k chunks of length
//     ceil(size_r / k); chunk t goes to stripe s = (r + 1 + t) mod n.
//     For m = 1 this is exactly the XOR scheme's RAID-5 rotation.
//   - Parity slot q of stripe s (held by p = (s + q) mod n) stores
//         P_q(s) = XOR-sum over data members r of  C[q][r] * chunk_r(s)
//     with Cauchy coefficients C[q][r] = 1 / (q XOR (m + r)) in GF(256)
//     (row labels 0..m-1, column labels m..m+n-1: disjoint, so every
//     square submatrix of C is invertible). Needs n + m <= 256.
//
// Survivability (the multi-loss argument; proof sketch in DESIGN.md §17):
// with f <= m dead members, a stripe s has u dead DATA members and hence
// at most f - u dead parity holders, leaving >= m - (f - u) >= u parity
// equations — and any u x u Cauchy submatrix is invertible, so Gaussian
// elimination recovers all u missing chunks of every stripe.
//
// The rebuild wave mirrors XOR's, generalised to multi-loss: the manager
// sends ONE RsRebuildCmd per group naming the whole dead set; every
// survivor ships one piece (its verified image + its m parity blocks +
// the recorded member sizes/digests) to EACH promoted spare; each spare
// independently runs the per-stripe Gaussian solve over gf256_muladd_row
// and restores only its own image, CRC-verified before promotion.
//
// Like the XOR scheme this layer is runtime-agnostic: pup-able message
// structs + Hooks callbacks; the NodeAgent owns tags and routing.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "ckpt/redundancy.h"

namespace acr::ckpt {

/// Stripe-layout algebra, exposed for the decoder and the round-trip
/// tests. All functions are pure; n = group size, m = parity count.
namespace rs_layout {

/// Data chunks per member.
inline int chunk_count(int n, int m) { return n - m; }

/// Stripe receiving member r's data chunk t (t in [0, n-m)).
inline int data_stripe(int n, int r, int t) { return (r + 1 + t) % n; }

/// True when member r contributes a data chunk to stripe s.
inline bool is_data_member(int n, int m, int r, int s) {
  return (r - s + n) % n >= m;
}

/// Chunk index member r contributes to stripe s (requires is_data_member).
inline int chunk_index(int n, int r, int s) { return (s - r - 1 + n) % n; }

/// Parity slot q of member p in stripe s, or -1 when p is a data member.
inline int parity_slot(int n, int m, int p, int s) {
  int q = (p - s + n) % n;
  return q < m ? q : -1;
}

/// Parity holder of slot q of stripe s.
inline int parity_holder(int n, int s, int q) { return (s + q) % n; }

/// Cauchy coefficient applied to member rank r by parity slot q.
std::uint8_t coeff(int m, int q, int r);

}  // namespace rs_layout

/// One data chunk of the sender's verified image, bound for parity slot
/// `stripe` of the receiver. The chunk bytes ride as the attachment
/// (zero-copy slice of the stored checkpoint).
struct RsChunkMsg {
  std::uint64_t epoch = 0;
  std::uint64_t iteration = 0;
  std::int32_t stripe = 0;         ///< stripe this chunk feeds
  std::uint64_t image_size = 0;    ///< sender's full verified image size
  std::uint32_t image_digest = 0;  ///< CRC32C of the sender's full image
  void pup(pup::Puper& p) {
    p | epoch;
    p | iteration;
    p | stripe;
    p | image_size;
    p | image_digest;
  }
};

/// Delta variant (codec pipeline): the XOR difference new^base of the
/// dirty sub-ranges of the sender's chunk. GF(256) multiplication
/// distributes over XOR, so the holder advances its seeded parity with
/// parity ^= C * diff over exactly these ranges. Same poisoning rules as
/// the XOR delta path.
struct RsDeltaChunkMsg {
  std::uint64_t epoch = 0;
  std::uint64_t iteration = 0;
  std::uint64_t base_epoch = 0;
  std::int32_t stripe = 0;
  std::uint64_t image_size = 0;
  std::uint32_t image_digest = 0;  ///< CRC32C of the full NEW image
  std::uint8_t encoding = 0;       ///< 0 raw, 1 lz
  std::vector<std::uint64_t> offsets;  ///< chunk-relative dirty range starts
  std::vector<std::uint64_t> lens;
  void pup(pup::Puper& p) {
    p | epoch;
    p | iteration;
    p | base_epoch;
    p | stripe;
    p | image_size;
    p | image_digest;
    p | encoding;
    p | offsets;
    p | lens;
  }
};

/// Rebuild contribution from one survivor to a promoted spare: the
/// survivor's full verified image (attachment) plus ALL of its m parity
/// blocks (stripe ids + lengths + one concatenated blob — pup has no
/// nested-vector adapter) and the member sizes/digests its parity round
/// recorded.
struct RsPieceMsg {
  std::uint64_t epoch = 0;
  std::uint64_t iteration = 0;
  std::uint64_t barrier = 0;
  std::uint64_t image_size = 0;  ///< sender's verified image size
  std::vector<std::int32_t> dead;  ///< dead group ranks this wave rebuilds
  std::vector<std::int32_t> stripe_ids;    ///< sender's parity stripes
  std::vector<std::uint64_t> parity_lens;  ///< per stripe_ids entry
  std::vector<std::uint8_t> parity;        ///< concatenated parity blocks
  std::vector<std::uint64_t> member_sizes;    ///< per group rank
  std::vector<std::uint32_t> member_digests;  ///< per group rank
  void pup(pup::Puper& p) {
    p | epoch;
    p | iteration;
    p | barrier;
    p | image_size;
    p | dead;
    p | stripe_ids;
    p | parity_lens;
    p | parity;
    p | member_sizes;
    p | member_digests;
  }
};

class RsScheme final : public RedundancyScheme {
 public:
  struct Hooks {
    /// Ship a parity chunk to group member `dst_index` (same replica).
    std::function<void(int dst_index, const RsChunkMsg& msg,
                       buf::Buffer chunk)>
        send_chunk;
    /// Ship a DELTA parity chunk (diff payload as the attachment). Only
    /// wired when the codec's delta stage is on.
    std::function<void(int dst_index, const RsDeltaChunkMsg& msg,
                       buf::Buffer payload)>
        send_delta_chunk;
    /// Ship a rebuild piece to the promoted spare at `dst_index`.
    std::function<void(int dst_index, const RsPieceMsg& msg,
                       buf::Buffer image)>
        send_piece;
    /// This node cannot contribute a usable piece (or the reconstruction
    /// failed): the manager must fall back down the recovery ladder.
    std::function<void(std::uint64_t barrier)> report_impossible;
    /// The multi-loss solve finished and the image verified: restore it.
    std::function<void(Image img, std::uint64_t barrier)> restore_rebuilt;
  };

  RsScheme(const GroupMap& groups, int node_index, int parity, Hooks hooks);

  Scheme kind() const override { return Scheme::Rs; }
  void on_verified(const Image& img) override;
  void on_verified(const Image& img, const DeltaHints* hints) override;
  void reset() override;
  std::size_t redundancy_bytes() const override;

  /// A group member's parity chunk arrived for one of this node's parity
  /// stripes. Contributions are identity-tracked per (stripe, rank):
  /// at-least-once duplicates must not fold twice.
  void on_chunk(int src_index, const RsChunkMsg& msg, buf::Buffer chunk);

  /// A member's DELTA parity chunk arrived: seed the round from the
  /// base-epoch parity and advance the dirty ranges by C * diff.
  void on_delta_chunk(int src_index, const RsDeltaChunkMsg& msg,
                      buf::Buffer payload);

  /// Manager ordered this survivor to feed the spares rebuilding the dead
  /// node indices (one command covers the group's whole dead set).
  void on_rebuild_request(const std::vector<int>& dead_indices,
                          std::uint64_t barrier, const Image& verified);

  /// A survivor's rebuild piece arrived (this node is one of the spares).
  void on_piece(int src_index, const RsPieceMsg& msg, buf::Buffer image);

  bool parity_complete_for(std::uint64_t epoch) const {
    return complete_ && complete_->epoch == epoch;
  }
  int group_size() const { return n_; }
  int parity_count() const { return m_; }

 private:
  struct StripeParity {
    std::set<int> contributed;  ///< ranks folded in (identity, not count)
    std::vector<std::byte> parity;
  };
  struct PendingRound {
    std::map<int, StripeParity> stripes;  ///< by stripe id (my slots only)
    std::uint64_t iteration = 0;
    std::vector<std::uint64_t> sizes;    ///< image size per rank (0 = self)
    std::vector<std::uint32_t> digests;  ///< image CRC32C per rank
    enum class Mode : std::uint8_t { Undecided, Full, Delta };
    Mode mode = Mode::Undecided;
    std::uint64_t base_epoch = 0;
    bool poisoned = false;
  };
  struct CompleteRound {
    std::uint64_t epoch = 0;
    std::uint64_t iteration = 0;
    std::map<int, std::vector<std::byte>> stripes;
    std::vector<std::uint64_t> sizes;
    std::vector<std::uint32_t> digests;
  };
  struct Piece {
    RsPieceMsg msg;
    buf::Buffer image;
  };

  int rank_of(int node_index) const;
  /// Chunk length for an image of `size` split into k data chunks.
  std::size_t chunk_len(std::uint64_t size) const;
  /// Bytes [begin, end) of chunk `t` of an image of `size`.
  std::pair<std::size_t, std::size_t> chunk_range(std::uint64_t size,
                                                  int t) const;
  /// The m stripe ids this node holds parity for, ascending.
  std::vector<int> my_parity_stripes() const;
  PendingRound& round_for(const std::uint64_t epoch);
  void finish_round_if_complete(std::uint64_t epoch, PendingRound& b);
  void try_reassemble(std::uint64_t barrier);
  void fail_rebuild(std::uint64_t barrier, const char* why);

  std::vector<int> members_;  ///< node indices of this group, ascending
  int n_ = 0;                 ///< group size
  int m_ = 0;                 ///< parity blocks per stripe
  int k_ = 0;                 ///< data chunks per member (n - m)
  int my_rank_ = 0;
  Hooks hooks_;

  std::map<std::uint64_t, PendingRound> building_;  ///< by epoch
  std::optional<CompleteRound> complete_;
  /// Rebuild pieces while playing a spare, by barrier then sender rank.
  std::map<std::uint64_t, std::map<int, Piece>> rebuilds_;
};

}  // namespace acr::ckpt
