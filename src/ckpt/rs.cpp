#include "ckpt/rs.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "checksum/gf256.h"
#include "checksum/kernels.h"
#include "common/logging.h"
#include "common/require.h"

namespace acr::ckpt {

namespace rs_layout {

std::uint8_t coeff(int m, int q, int r) {
  // Cauchy element 1 / (x_q + y_r) with x_q = q (q < m) and y_r = m + r.
  // The label sets are disjoint, so the denominator is never zero and
  // every square submatrix of the coefficient matrix is invertible.
  auto x = static_cast<std::uint8_t>(q);
  auto y = static_cast<std::uint8_t>(m + r);
  return checksum::gf256::inv(static_cast<std::uint8_t>(x ^ y));
}

}  // namespace rs_layout

namespace {

std::span<const std::byte> as_bytes(const std::vector<std::uint8_t>& v) {
  return {reinterpret_cast<const std::byte*>(v.data()), v.size()};
}

}  // namespace

RsScheme::RsScheme(const GroupMap& groups, int node_index, int parity,
                   Hooks hooks)
    : members_(groups.group_members(node_index)),
      n_(static_cast<int>(members_.size())),
      m_(parity),
      k_(n_ - parity),
      my_rank_(groups.rank_in_group(node_index)),
      hooks_(std::move(hooks)) {
  ACR_REQUIRE(n_ >= 2, "RS parity needs a group of at least two nodes");
  ACR_REQUIRE(m_ >= 1 && m_ < n_,
              "RS parity count must be in [1, group size)");
  ACR_REQUIRE(n_ + m_ <= 256,
              "RS group size + parity must fit the GF(256) label space");
}

int RsScheme::rank_of(int node_index) const {
  auto it = std::find(members_.begin(), members_.end(), node_index);
  ACR_REQUIRE(it != members_.end(), "node index outside this RS group");
  return static_cast<int>(it - members_.begin());
}

std::size_t RsScheme::chunk_len(std::uint64_t size) const {
  auto parts = static_cast<std::uint64_t>(k_);
  return static_cast<std::size_t>((size + parts - 1) / parts);
}

std::pair<std::size_t, std::size_t> RsScheme::chunk_range(std::uint64_t size,
                                                          int t) const {
  std::size_t cl = chunk_len(size);
  std::size_t begin = std::min(static_cast<std::size_t>(t) * cl,
                               static_cast<std::size_t>(size));
  std::size_t end = std::min(begin + cl, static_cast<std::size_t>(size));
  return {begin, end};
}

std::vector<int> RsScheme::my_parity_stripes() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(m_));
  for (int q = 0; q < m_; ++q) out.push_back((my_rank_ - q + n_) % n_);
  std::sort(out.begin(), out.end());
  return out;
}

RsScheme::PendingRound& RsScheme::round_for(const std::uint64_t epoch) {
  PendingRound& b = building_[epoch];
  if (b.sizes.empty()) b.sizes.assign(static_cast<std::size_t>(n_), 0);
  if (b.digests.empty()) b.digests.assign(static_cast<std::size_t>(n_), 0);
  return b;
}

void RsScheme::on_verified(const Image& img) { on_verified(img, nullptr); }

void RsScheme::on_verified(const Image& img, const DeltaHints* hints) {
  ACR_REQUIRE(img.valid, "parity exchange needs a valid image");
  // Same delta preconditions and full-round cadence as the XOR scheme —
  // the codec pipeline feeds both identically.
  bool delta = hints != nullptr && hints->codec != nullptr &&
               hints->codec->delta_on() && !hints->force_full &&
               hints->base_epoch != 0 && hints->base_epoch < img.epoch &&
               hints->base_image != nullptr &&
               hints->base_image->size() == img.image.size() &&
               hints->digests != nullptr && hints->base_digests != nullptr &&
               hints->digests->size() == hints->base_digests->size() &&
               img.epoch % kXorDeltaFullCadence != 1;
  std::uint32_t digest = checksum::crc32c_chunked(img.image.bytes());
  if (!delta) {
    // Chunk t feeds stripe (me + 1 + t) mod n; each of that stripe's m
    // parity holders receives the same zero-copy slice.
    for (int t = 0; t < k_; ++t) {
      int s = rs_layout::data_stripe(n_, my_rank_, t);
      auto [begin, end] = chunk_range(img.image.size(), t);
      for (int q = 0; q < m_; ++q) {
        int p = rs_layout::parity_holder(n_, s, q);
        RsChunkMsg msg;
        msg.epoch = img.epoch;
        msg.iteration = img.iteration;
        msg.stripe = s;
        msg.image_size = img.image.size();
        msg.image_digest = digest;
        buf::Buffer chunk = img.image.buffer().slice(begin, end - begin);
        ++stats_.parity_chunks_sent;
        stats_.parity_bytes_sent += chunk.size();
        hooks_.send_chunk(members_[static_cast<std::size_t>(p)], msg,
                          std::move(chunk));
      }
    }
    return;
  }

  std::span<const std::byte> now = img.image.bytes();
  std::span<const std::byte> base = hints->base_image->bytes();
  const std::vector<std::uint32_t>& dg = *hints->digests;
  const std::vector<std::uint32_t>& bdg = *hints->base_digests;
  for (int t = 0; t < k_; ++t) {
    int s = rs_layout::data_stripe(n_, my_rank_, t);
    auto [begin, end] = chunk_range(img.image.size(), t);
    // Dirty sub-ranges of this chunk: digest-grid dirty chunks intersected
    // with [begin, end), adjacent runs merged; offsets are chunk-relative,
    // which is exactly the parity position every holder folds at.
    std::vector<std::uint64_t> offsets;
    std::vector<std::uint64_t> lens;
    std::vector<std::byte> diff;
    std::size_t g0 = begin / checksum::kDigestChunk;
    for (std::size_t g = g0; g * checksum::kDigestChunk < end && g < dg.size();
         ++g) {
      if (dg[g] == bdg[g]) continue;
      auto [cb, ce] = checksum::digest_chunk_range(img.image.size(), g);
      std::size_t lo = cb > begin ? cb : begin;
      std::size_t hi = ce < end ? ce : end;
      if (lo >= hi) continue;
      std::uint64_t rel = lo - begin;
      if (!offsets.empty() && offsets.back() + lens.back() == rel) {
        lens.back() += hi - lo;
      } else {
        offsets.push_back(rel);
        lens.push_back(hi - lo);
      }
      std::size_t at = diff.size();
      diff.resize(at + (hi - lo));
      std::memcpy(diff.data() + at, now.data() + lo, hi - lo);
      checksum::kernels::xor_fold_words(diff.data() + at, base.data() + lo,
                                        hi - lo);
    }
    std::uint8_t encoding = 0;
    buf::Buffer payload;
    if (hints->codec->compress_on() && !diff.empty()) {
      std::vector<std::byte> lz = lz_compress_block(diff);
      if (lz.size() < diff.size()) {
        encoding = 1;
        payload = buf::Buffer::wrap(std::move(lz));
      }
    }
    if (encoding == 0 && !diff.empty())
      payload = buf::Buffer::wrap(std::move(diff));
    // The same diff payload serves all m holders of this stripe (the
    // buffer is ref-counted; each send shares the bytes).
    for (int q = 0; q < m_; ++q) {
      int p = rs_layout::parity_holder(n_, s, q);
      RsDeltaChunkMsg msg;
      msg.epoch = img.epoch;
      msg.iteration = img.iteration;
      msg.base_epoch = hints->base_epoch;
      msg.stripe = s;
      msg.image_size = img.image.size();
      msg.image_digest = digest;
      msg.encoding = encoding;
      msg.offsets = offsets;
      msg.lens = lens;
      ++stats_.parity_delta_chunks_sent;
      stats_.parity_delta_bytes_sent += payload.size();
      hooks_.send_delta_chunk(members_[static_cast<std::size_t>(p)], msg,
                              payload);
    }
  }
}

void RsScheme::on_chunk(int src_index, const RsChunkMsg& msg,
                        buf::Buffer chunk) {
  if (complete_ && msg.epoch <= complete_->epoch) return;
  int rank = rank_of(src_index);
  int s = static_cast<int>(msg.stripe);
  int q = rs_layout::parity_slot(n_, m_, my_rank_, s);
  if (q < 0 || !rs_layout::is_data_member(n_, m_, rank, s)) {
    log_warn("ckpt.rs") << "misrouted parity chunk (stripe " << s
                        << " from rank " << rank << "); dropping";
    return;
  }
  PendingRound& b = round_for(msg.epoch);
  StripeParity& sp = b.stripes[s];
  if (!sp.contributed.insert(rank).second) return;  // duplicate chunk
  if (b.mode == PendingRound::Mode::Undecided)
    b.mode = PendingRound::Mode::Full;
  else if (b.mode != PendingRound::Mode::Full)
    b.poisoned = true;  // mixed full/delta round
  if (!b.poisoned)
    checksum::gf256_muladd_chunked(sp.parity, chunk.bytes(),
                                   rs_layout::coeff(m_, q, rank));
  b.sizes[static_cast<std::size_t>(rank)] = msg.image_size;
  b.digests[static_cast<std::size_t>(rank)] = msg.image_digest;
  b.iteration = msg.iteration;
  finish_round_if_complete(msg.epoch, b);
}

void RsScheme::on_delta_chunk(int src_index, const RsDeltaChunkMsg& msg,
                              buf::Buffer payload) {
  if (complete_ && msg.epoch <= complete_->epoch) return;
  int rank = rank_of(src_index);
  int s = static_cast<int>(msg.stripe);
  int q = rs_layout::parity_slot(n_, m_, my_rank_, s);
  if (q < 0 || !rs_layout::is_data_member(n_, m_, rank, s)) {
    log_warn("ckpt.rs") << "misrouted delta parity chunk (stripe " << s
                        << " from rank " << rank << "); dropping";
    return;
  }
  PendingRound& b = round_for(msg.epoch);
  StripeParity& sp = b.stripes[s];
  if (!sp.contributed.insert(rank).second) return;  // duplicate contribution
  if (b.mode == PendingRound::Mode::Undecided) {
    if (complete_ && complete_->epoch == msg.base_epoch) {
      // Seed ALL of this node's stripe parities from the base round; each
      // member's diff advances its stripe in place.
      b.mode = PendingRound::Mode::Delta;
      b.base_epoch = msg.base_epoch;
      for (const auto& [sid, bytes] : complete_->stripes)
        b.stripes[sid].parity = bytes;
      b.sizes = complete_->sizes;
      b.sizes[static_cast<std::size_t>(my_rank_)] = 0;
      b.digests = complete_->digests;
      b.digests[static_cast<std::size_t>(my_rank_)] = 0;
    } else {
      b.mode = PendingRound::Mode::Delta;
      b.poisoned = true;  // nothing to seed from: wait for a full round
    }
  } else if (b.mode != PendingRound::Mode::Delta ||
             b.base_epoch != msg.base_epoch) {
    b.poisoned = true;
  }
  if (!b.poisoned && b.sizes[static_cast<std::size_t>(rank)] != msg.image_size)
    b.poisoned = true;  // a size change requires a full exchange
  if (!b.poisoned && msg.offsets.size() != msg.lens.size()) b.poisoned = true;
  if (!b.poisoned) {
    StripeParity& seeded = b.stripes[s];
    std::uint64_t total = 0;
    for (std::uint64_t l : msg.lens) total += l;
    std::vector<std::byte> raw;
    std::span<const std::byte> diff = payload.bytes();
    if (msg.encoding == 1) {
      try {
        raw = lz_decompress_block(payload.bytes(),
                                  static_cast<std::size_t>(total));
      } catch (const pup::StreamError&) {
        b.poisoned = true;
      }
      diff = raw;
    }
    if (!b.poisoned && diff.size() != total) b.poisoned = true;
    if (!b.poisoned) {
      std::uint8_t c = rs_layout::coeff(m_, q, rank);
      std::size_t cursor = 0;
      for (std::size_t r = 0; r < msg.offsets.size(); ++r) {
        std::size_t off = static_cast<std::size_t>(msg.offsets[r]);
        std::size_t len = static_cast<std::size_t>(msg.lens[r]);
        if (off + len > seeded.parity.size()) {
          b.poisoned = true;
          break;
        }
        checksum::kernels::gf256_muladd_row(seeded.parity.data() + off,
                                            diff.data() + cursor, c, len);
        cursor += len;
      }
    }
  }
  b.sizes[static_cast<std::size_t>(rank)] = msg.image_size;
  b.digests[static_cast<std::size_t>(rank)] = msg.image_digest;
  b.iteration = msg.iteration;
  finish_round_if_complete(msg.epoch, b);
}

void RsScheme::finish_round_if_complete(std::uint64_t epoch, PendingRound& b) {
  // Complete when every one of this node's m parity stripes has all k data
  // contributions (m * k total, identity-tracked per stripe).
  std::size_t got = 0;
  for (const auto& [sid, sp] : b.stripes) got += sp.contributed.size();
  if (got < static_cast<std::size_t>(m_) * static_cast<std::size_t>(k_))
    return;
  if (b.poisoned) {
    ++stats_.parity_rounds_poisoned;
    log_warn("ckpt.rs") << "parity round for epoch " << epoch
                        << " poisoned; keeping epoch "
                        << (complete_ ? complete_->epoch : 0);
    building_.erase(epoch);
    return;
  }
  CompleteRound done;
  done.epoch = epoch;
  done.iteration = b.iteration;
  for (auto& [sid, sp] : b.stripes)
    done.stripes[sid] = std::move(sp.parity);
  done.sizes = std::move(b.sizes);
  done.digests = std::move(b.digests);
  complete_ = std::move(done);
  building_.erase(building_.begin(), building_.upper_bound(complete_->epoch));
}

std::size_t RsScheme::redundancy_bytes() const {
  std::size_t bytes = 0;
  if (complete_)
    for (const auto& [sid, p] : complete_->stripes) bytes += p.size();
  for (const auto& [epoch, b] : building_)
    for (const auto& [sid, sp] : b.stripes) bytes += sp.parity.size();
  return bytes;
}

void RsScheme::on_rebuild_request(const std::vector<int>& dead_indices,
                                  std::uint64_t barrier,
                                  const Image& verified) {
  if (!verified.valid || !complete_ || complete_->epoch != verified.epoch) {
    log_warn("ckpt.rs") << "rebuild piece unusable (verified epoch "
                        << (verified.valid ? verified.epoch : 0)
                        << ", parity epoch "
                        << (complete_ ? complete_->epoch : 0) << ")";
    hooks_.report_impossible(barrier);
    return;
  }
  RsPieceMsg msg;
  msg.epoch = verified.epoch;
  msg.iteration = verified.iteration;
  msg.barrier = barrier;
  msg.image_size = verified.image.size();
  for (int d : dead_indices)
    msg.dead.push_back(static_cast<std::int32_t>(rank_of(d)));
  std::sort(msg.dead.begin(), msg.dead.end());
  for (const auto& [sid, p] : complete_->stripes) {
    msg.stripe_ids.push_back(static_cast<std::int32_t>(sid));
    msg.parity_lens.push_back(p.size());
    std::size_t at = msg.parity.size();
    msg.parity.resize(at + p.size());
    std::transform(p.begin(), p.end(), msg.parity.begin() + at,
                   [](std::byte b) { return static_cast<std::uint8_t>(b); });
  }
  msg.member_sizes = complete_->sizes;
  msg.member_sizes[static_cast<std::size_t>(my_rank_)] =
      verified.image.size();
  msg.member_digests = complete_->digests;
  msg.member_digests[static_cast<std::size_t>(my_rank_)] =
      checksum::crc32c_chunked(verified.image.bytes());
  for (std::int32_t d : msg.dead) {
    ++stats_.rebuild_pieces_sent;
    stats_.rebuild_bytes_sent += verified.image.size() + msg.parity.size();
    hooks_.send_piece(members_[static_cast<std::size_t>(d)], msg,
                      verified.image.buffer());
  }
}

void RsScheme::on_piece(int src_index, const RsPieceMsg& msg,
                        buf::Buffer image) {
  rebuilds_.erase(rebuilds_.begin(), rebuilds_.lower_bound(msg.barrier));
  Piece piece;
  piece.msg = msg;
  piece.image = std::move(image);
  rebuilds_[msg.barrier].insert({rank_of(src_index), std::move(piece)});
  try_reassemble(msg.barrier);
}

void RsScheme::fail_rebuild(std::uint64_t barrier, const char* why) {
  log_warn("ckpt.rs") << "rebuild abandoned: " << why;
  rebuilds_.erase(barrier);
  hooks_.report_impossible(barrier);
}

void RsScheme::try_reassemble(std::uint64_t barrier) {
  auto& pieces = rebuilds_[barrier];
  if (pieces.empty()) return;
  const Piece& first = pieces.begin()->second;
  std::size_t f = first.msg.dead.size();
  if (f == 0 || f > static_cast<std::size_t>(m_))
    return fail_rebuild(barrier, "dead set outside [1, m]");
  if (pieces.size() < static_cast<std::size_t>(n_) - f) return;
  // Every survivor must agree on epoch and on the dead set, and carry a
  // structurally sound parity payload; the whole group either rebuilds
  // from one consistent snapshot or not at all.
  for (const auto& [rank, p] : pieces) {
    const RsPieceMsg& pm = p.msg;
    if (pm.epoch != first.msg.epoch || pm.dead != first.msg.dead)
      return fail_rebuild(barrier, "pieces span epochs or dead sets");
    if (pm.member_sizes.size() != static_cast<std::size_t>(n_) ||
        pm.member_digests.size() != static_cast<std::size_t>(n_) ||
        pm.stripe_ids.size() != pm.parity_lens.size())
      return fail_rebuild(barrier, "malformed piece");
    std::uint64_t total = 0;
    for (std::uint64_t l : pm.parity_lens) total += l;
    if (pm.parity.size() != total)
      return fail_rebuild(barrier, "parity blob does not match its lengths");
  }
  std::vector<int> dead(first.msg.dead.begin(), first.msg.dead.end());
  if (!std::binary_search(dead.begin(), dead.end(), my_rank_))
    return fail_rebuild(barrier, "this node is not in the wave's dead set");
  // Member sizes: survivors report their own image directly; dead members'
  // sizes/digests come from the survivors' parity-round records and must
  // agree across all pieces.
  std::vector<std::uint64_t> sizes(static_cast<std::size_t>(n_), 0);
  std::vector<std::uint32_t> digests(static_cast<std::size_t>(n_), 0);
  for (const auto& [rank, p] : pieces)
    sizes[static_cast<std::size_t>(rank)] = p.msg.image_size;
  for (int d : dead) {
    for (const auto& [rank, p] : pieces) {
      std::uint64_t sz = p.msg.member_sizes[static_cast<std::size_t>(d)];
      std::uint32_t dg = p.msg.member_digests[static_cast<std::size_t>(d)];
      if (sizes[static_cast<std::size_t>(d)] == 0)
        sizes[static_cast<std::size_t>(d)] = sz;
      else if (sz != 0 && sz != sizes[static_cast<std::size_t>(d)])
        return fail_rebuild(barrier, "survivors disagree on a dead size");
      if (digests[static_cast<std::size_t>(d)] == 0)
        digests[static_cast<std::size_t>(d)] = dg;
      else if (dg != 0 && dg != digests[static_cast<std::size_t>(d)])
        return fail_rebuild(barrier, "survivors disagree on a dead digest");
    }
    if (sizes[static_cast<std::size_t>(d)] == 0)
      return fail_rebuild(barrier, "no survivor knows a dead member's size");
  }
  std::uint64_t my_size = sizes[static_cast<std::size_t>(my_rank_)];

  // Per-stripe Gaussian solve for this node's k data chunks. Everything
  // iterates in canonical order (ranks ascending, parity slots ascending),
  // so every spare — and every thread/lane configuration — computes the
  // same bytes.
  std::vector<std::byte> rebuilt;
  rebuilt.reserve(static_cast<std::size_t>(my_size));
  for (int t = 0; t < k_; ++t) {
    int s = rs_layout::data_stripe(n_, my_rank_, t);
    // Unknowns: dead data members of this stripe (me included).
    std::vector<int> unknowns;
    for (int d : dead)
      if (rs_layout::is_data_member(n_, m_, d, s)) unknowns.push_back(d);
    std::size_t u = unknowns.size();
    // Surviving parity equations, first u in slot order. With f <= m dead
    // there are always enough: the stripe loses at most f - u holders.
    std::vector<int> slots;
    for (int q = 0; q < m_ && slots.size() < u; ++q) {
      int p = rs_layout::parity_holder(n_, s, q);
      if (pieces.find(p) != pieces.end()) slots.push_back(q);
    }
    if (slots.size() < u)
      return fail_rebuild(barrier, "not enough surviving parity equations");
    // Parity block length: the longest data chunk of this stripe.
    std::size_t plen = 0;
    for (int r = 0; r < n_; ++r) {
      if (!rs_layout::is_data_member(n_, m_, r, s)) continue;
      auto [cb, ce] = chunk_range(sizes[static_cast<std::size_t>(r)],
                                  rs_layout::chunk_index(n_, r, s));
      plen = std::max(plen, ce - cb);
    }
    // Right-hand sides: each surviving parity block minus (XOR) the known
    // survivors' contributions, leaving only the unknowns' terms.
    std::vector<std::vector<std::byte>> rhs(u);
    std::vector<std::vector<std::uint8_t>> mat(
        u, std::vector<std::uint8_t>(u, 0));
    for (std::size_t i = 0; i < u; ++i) {
      int q = slots[i];
      int holder = rs_layout::parity_holder(n_, s, q);
      const RsPieceMsg& hm = pieces.at(holder).msg;
      auto it = std::find(hm.stripe_ids.begin(), hm.stripe_ids.end(),
                          static_cast<std::int32_t>(s));
      if (it == hm.stripe_ids.end())
        return fail_rebuild(barrier, "holder piece is missing a stripe");
      std::size_t idx =
          static_cast<std::size_t>(it - hm.stripe_ids.begin());
      std::size_t off = 0;
      for (std::size_t j = 0; j < idx; ++j)
        off += static_cast<std::size_t>(hm.parity_lens[j]);
      std::size_t len = static_cast<std::size_t>(hm.parity_lens[idx]);
      std::span<const std::byte> block =
          as_bytes(hm.parity).subspan(off, len);
      rhs[i].assign(block.begin(), block.end());
      rhs[i].resize(plen, std::byte{0});
      for (int r = 0; r < n_; ++r) {
        if (!rs_layout::is_data_member(n_, m_, r, s)) continue;
        if (std::binary_search(dead.begin(), dead.end(), r)) continue;
        auto [cb, ce] = chunk_range(sizes[static_cast<std::size_t>(r)],
                                    rs_layout::chunk_index(n_, r, s));
        checksum::gf256_muladd_chunked(
            rhs[i], pieces.at(r).image.bytes().subspan(cb, ce - cb),
            rs_layout::coeff(m_, q, r));
      }
      for (std::size_t j = 0; j < u; ++j)
        mat[i][j] = rs_layout::coeff(m_, q, unknowns[j]);
    }
    // Gauss–Jordan elimination over GF(256); the byte-vector row ops run
    // through the dispatched muladd kernel.
    for (std::size_t col = 0; col < u; ++col) {
      std::size_t piv = col;
      while (piv < u && mat[piv][col] == 0) ++piv;
      if (piv == u)
        return fail_rebuild(barrier, "singular rebuild system");
      if (piv != col) {
        std::swap(mat[piv], mat[col]);
        std::swap(rhs[piv], rhs[col]);
      }
      for (std::size_t row = 0; row < u; ++row) {
        if (row == col || mat[row][col] == 0) continue;
        std::uint8_t factor =
            checksum::gf256::div(mat[row][col], mat[col][col]);
        for (std::size_t c2 = col; c2 < u; ++c2)
          mat[row][c2] = static_cast<std::uint8_t>(
              mat[row][c2] ^ checksum::gf256::mul(factor, mat[col][c2]));
        checksum::gf256_muladd_chunked(rhs[row], rhs[col], factor);
      }
    }
    std::size_t mine = static_cast<std::size_t>(
        std::find(unknowns.begin(), unknowns.end(), my_rank_) -
        unknowns.begin());
    ACR_REQUIRE(mine < u, "own rank missing from the stripe's unknowns");
    std::uint8_t scale = checksum::gf256::inv(mat[mine][mine]);
    if (scale != 1) {
      std::vector<std::byte> scaled(plen, std::byte{0});
      checksum::gf256_muladd_chunked(scaled, rhs[mine], scale);
      rhs[mine] = std::move(scaled);
    }
    auto [mb, me] = chunk_range(my_size, t);
    std::size_t want = me - mb;
    if (rhs[mine].size() < want) rhs[mine].resize(want, std::byte{0});
    rebuilt.insert(rebuilt.end(), rhs[mine].begin(),
                   rhs[mine].begin() + static_cast<std::ptrdiff_t>(want));
  }
  if (rebuilt.size() != my_size)
    return fail_rebuild(barrier, "reassembled image has the wrong size");
  // Verify-on-rebuild: refuse to promote a reconstruction whose CRC32C
  // does not match what the survivors recorded for this member.
  std::uint32_t want_digest = digests[static_cast<std::size_t>(my_rank_)];
  if (want_digest != 0 &&
      checksum::crc32c_chunked(rebuilt) != want_digest) {
    ++stats_.rebuilds_rejected;
    return fail_rebuild(barrier, "rebuilt image fails its CRC");
  }
  Image img;
  img.valid = true;
  img.epoch = first.msg.epoch;
  img.iteration = first.msg.iteration;
  img.image = pup::Checkpoint(std::move(rebuilt));
  img.image.epoch = img.epoch;
  rebuilds_.erase(barrier);
  ++stats_.rebuilds_completed;
  hooks_.restore_rebuilt(std::move(img), barrier);
}

void RsScheme::reset() {
  building_.clear();
  complete_.reset();
  rebuilds_.clear();
}

}  // namespace acr::ckpt
