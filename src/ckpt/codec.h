// Staged checkpoint codec pipeline (pack → chunk-digest → delta →
// compress → redundancy-encode).
//
// The pre-codec data plane shipped every checkpoint as one monolithic
// Buffer: Packer → image → scheme. For iterative mini-apps most 256 KiB
// chunks of that image are bit-identical between epochs (the AutoCheck
// observation: the state that actually changes is far smaller than the
// address space), so the codec refactors the path into explicit stages on
// the checksum::kDigestChunk grid:
//
//   pack          pup::Packer, unchanged — its byte stream is a pure
//                 function of application state (chunk-stable boundaries,
//                 see pup.h), which is the invariant everything below
//                 leans on.
//   chunk-digest  checksum::crc32c_chunk_digests — one CRC32C per 256 KiB
//                 chunk, fanned across parallel::global().
//   delta         compare this epoch's digests against a BASE epoch's;
//                 only chunks whose digest changed are carried, described
//                 by a ChunkMap (full_bytes + per-chunk present flags).
//   compress      a deterministic LZ-class stage (per chunk, so it rides
//                 the same parallel traversal); a chunk that does not
//                 shrink is stored raw, flagged per chunk.
//   redundancy-   the schemes: partner ships the CodecFrame instead of the
//   encode        image, xor folds diff ranges into parity, the L2 tier
//                 stores the frame as a vault v2 delta blob.
//
// Determinism: chunk geometry depends only on the image SIZE, the LZ stage
// is seed-free and greedy, and every parallel fan-out merges in chunk
// order — encode(image) is bit-identical at any --kernel-threads. A frame
// is self-describing enough to invert given the base bytes, and every
// consumer falls back to full images whenever its base is unavailable
// (post-restart, post-shrink, scheme change) — delta is an optimization,
// never a correctness dependency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "buf/buffer.h"
#include "checksum/kernels.h"
#include "pup/pup.h"
#include "pup/stl.h"

namespace acr::ckpt {

enum class DeltaMode { Off, On };
enum class CompressMode { None, Lz };

const char* delta_mode_name(DeltaMode m);
const char* compress_mode_name(CompressMode m);

/// Codec policy, carried in AcrConfig. Both knobs default off, which keeps
/// every frame on the legacy full-image path byte-for-byte.
struct CodecConfig {
  DeltaMode delta = DeltaMode::Off;
  CompressMode compress = CompressMode::None;

  bool delta_on() const { return delta == DeltaMode::On; }
  bool compress_on() const { return compress == CompressMode::Lz; }
  bool enabled() const { return delta_on() || compress_on(); }
};

/// Which chunks of the checksum::kDigestChunk grid a frame carries.
struct ChunkMap {
  std::uint64_t full_bytes = 0;       ///< decoded image size
  std::vector<std::uint8_t> present;  ///< per chunk: 1 = carried in payload

  std::size_t chunks() const { return present.size(); }
  std::size_t present_chunks() const;
  bool all_present() const;
  /// Bytes the map itself occupies on the wire / in a vault blob.
  std::size_t map_bytes() const { return 16 + present.size(); }

  void pup(pup::Puper& p) {
    p | full_bytes;
    p | present;
  }
};

/// Per-chunk payload encodings. A compressed chunk that fails to shrink is
/// stored raw — decided per chunk, deterministically, by output size.
enum class ChunkEncoding : std::uint8_t { Raw = 0, Lz = 1 };

/// One encoded checkpoint frame: the chunk map plus the payload of the
/// present chunks. With encoding Raw and all chunks present the payload
/// aliases the source image (zero-copy); otherwise it is a fresh buffer of
/// [u8 chunk-encoding][u32 encoded-len][bytes] records in chunk order.
struct CodecFrame {
  ChunkMap map;
  std::uint8_t encoding = 0;  ///< 0 = raw concatenation, 1 = per-chunk records
  buf::Buffer payload;
  std::uint64_t raw_payload_bytes = 0;  ///< present-chunk bytes pre-compression

  /// Bytes this frame charges on the wire / against the L2 channel.
  std::uint64_t encoded_bytes() const { return map.map_bytes() + payload.size(); }
};

/// The staged encoder/decoder. Stateless apart from its config; one
/// instance per agent (and one inside the durable tier for blob decode).
class CodecPipeline {
 public:
  CodecPipeline() = default;
  explicit CodecPipeline(CodecConfig cfg) : cfg_(cfg) {}

  const CodecConfig& config() const { return cfg_; }

  /// Stage 2: per-chunk CRC32C digests of an image (chunk-parallel,
  /// thread-count invariant).
  static std::vector<std::uint32_t> digests(std::span<const std::byte> image) {
    return checksum::crc32c_chunk_digests(image);
  }

  /// Stages 3–4. `digests` must be digests(image). A null `base_digests`
  /// (or a base of a different size, or delta off) produces a full-map
  /// frame; otherwise chunks whose digest matches the base are dropped.
  /// The compress stage then encodes the surviving chunks when enabled.
  CodecFrame encode(std::span<const std::byte> image,
                    std::span<const std::uint32_t> digests,
                    const std::vector<std::uint32_t>* base_digests,
                    std::uint64_t base_bytes) const;

  /// Convenience: full-map frame (no delta), compression per config.
  CodecFrame encode_full(std::span<const std::byte> image) const;

  /// Buffer-taking overloads. When the frame degenerates to "raw, every
  /// chunk present" the payload aliases `image` instead of copying it —
  /// this is what makes the codec-off and full-fallback paths zero-copy.
  CodecFrame encode(const buf::Buffer& image,
                    std::span<const std::uint32_t> digests,
                    const std::vector<std::uint32_t>* base_digests,
                    std::uint64_t base_bytes) const;
  CodecFrame encode_full(const buf::Buffer& image) const;

  /// Inverse of encode: reconstruct the full image. `base` supplies the
  /// bytes of absent chunks and must be exactly map.full_bytes long unless
  /// the frame is full-map (then it is ignored). Throws pup::StreamError
  /// on a malformed frame or base-size mismatch.
  static buf::Buffer decode(const CodecFrame& frame,
                            std::span<const std::byte> base);

 private:
  CodecConfig cfg_;
};

// ---------------------------------------------------------------------------
// Deterministic LZ block codec (the compress stage's inner loop).
//
// Greedy LZSS over a 64 KiB window: hash-chained 4-byte matches, tokens of
// literal runs and (offset, length) copies. Seed-free and position-ordered,
// so output depends only on input bytes — identical across thread counts,
// kernel impls and machines. Checkpoint images of iterative codes are full
// of zero runs and repeated lattice values; offset-1 matches turn those
// into ~3 bytes per 259.
// ---------------------------------------------------------------------------

/// Compress one block. The output is self-delimiting given `in.size()`.
std::vector<std::byte> lz_compress_block(std::span<const std::byte> in);

/// Decompress a block produced by lz_compress_block into exactly
/// `out_len` bytes. Throws pup::StreamError on malformed input.
std::vector<std::byte> lz_decompress_block(std::span<const std::byte> in,
                                           std::size_t out_len);

}  // namespace acr::ckpt
