#include "ckpt/codec.h"

#include <algorithm>
#include <cstring>

#include "common/require.h"
#include "parallel/pool.h"

namespace acr::ckpt {

const char* delta_mode_name(DeltaMode m) {
  return m == DeltaMode::On ? "on" : "off";
}

const char* compress_mode_name(CompressMode m) {
  return m == CompressMode::Lz ? "lz" : "none";
}

std::size_t ChunkMap::present_chunks() const {
  std::size_t n = 0;
  for (std::uint8_t f : present) n += f != 0;
  return n;
}

bool ChunkMap::all_present() const {
  return present_chunks() == present.size();
}

// ---------------------------------------------------------------------------
// LZ block codec.
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kLzWindow = 65535;  // 16-bit back-offsets
constexpr std::size_t kLzMinMatch = 4;
constexpr std::size_t kLzMaxMatch = 259;  // length-4 fits one byte
constexpr std::size_t kLzHashBits = 15;

inline std::uint32_t lz_hash(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kLzHashBits);
}

}  // namespace

std::vector<std::byte> lz_compress_block(std::span<const std::byte> in) {
  const std::size_t n = in.size();
  std::vector<std::byte> out;
  out.reserve(n / 2 + 16);
  // Single-entry hash table of 4-byte prefixes -> most recent position.
  std::vector<std::int64_t> head(std::size_t{1} << kLzHashBits, -1);

  std::size_t ctrl_pos = 0;  // index of the current control byte in `out`
  int ctrl_used = 8;         // forces a fresh control byte on first item

  auto begin_item = [&](bool is_match) {
    if (ctrl_used == 8) {
      ctrl_pos = out.size();
      out.push_back(std::byte{0});
      ctrl_used = 0;
    }
    if (is_match)
      out[ctrl_pos] |= std::byte{static_cast<unsigned char>(1u << ctrl_used)};
    ++ctrl_used;
  };

  std::size_t p = 0;
  while (p < n) {
    std::size_t best_len = 0;
    std::size_t best_off = 0;
    if (p + kLzMinMatch <= n) {
      std::uint32_t h = lz_hash(in.data() + p);
      std::int64_t cand = head[h];
      head[h] = static_cast<std::int64_t>(p);
      if (cand >= 0) {
        std::size_t off = p - static_cast<std::size_t>(cand);
        if (off >= 1 && off <= kLzWindow) {
          const std::byte* a = in.data() + p;
          const std::byte* b = in.data() + static_cast<std::size_t>(cand);
          std::size_t limit = std::min(kLzMaxMatch, n - p);
          std::size_t len = 0;
          while (len < limit && a[len] == b[len]) ++len;
          if (len >= kLzMinMatch) {
            best_len = len;
            best_off = off;
          }
        }
      }
    }
    if (best_len > 0) {
      begin_item(true);
      out.push_back(std::byte{static_cast<unsigned char>(best_off & 0xFF)});
      out.push_back(std::byte{static_cast<unsigned char>(best_off >> 8)});
      out.push_back(
          std::byte{static_cast<unsigned char>(best_len - kLzMinMatch)});
      // Index the covered positions so later zero/lattice runs keep finding
      // nearby matches; skipping them would still be correct, just weaker.
      std::size_t stop = std::min(p + best_len, n - kLzMinMatch + 1);
      for (std::size_t q = p + 1; q < stop; ++q)
        head[lz_hash(in.data() + q)] = static_cast<std::int64_t>(q);
      p += best_len;
    } else {
      begin_item(false);
      out.push_back(in[p]);
      ++p;
    }
  }
  return out;
}

std::vector<std::byte> lz_decompress_block(std::span<const std::byte> in,
                                           std::size_t out_len) {
  std::vector<std::byte> out;
  out.reserve(out_len);
  std::size_t p = 0;
  std::uint8_t ctrl = 0;
  int ctrl_left = 0;
  while (out.size() < out_len) {
    if (ctrl_left == 0) {
      if (p >= in.size()) throw pup::StreamError("lz block truncated");
      ctrl = static_cast<std::uint8_t>(in[p++]);
      ctrl_left = 8;
    }
    bool is_match = (ctrl & 1u) != 0;
    ctrl >>= 1;
    --ctrl_left;
    if (is_match) {
      if (p + 3 > in.size()) throw pup::StreamError("lz block truncated");
      std::size_t off = static_cast<std::size_t>(in[p]) |
                        (static_cast<std::size_t>(in[p + 1]) << 8);
      std::size_t len = static_cast<std::size_t>(in[p + 2]) + kLzMinMatch;
      p += 3;
      if (off == 0 || off > out.size() || out.size() + len > out_len)
        throw pup::StreamError("lz block has a bad match token");
      // Byte-by-byte: offset-1 runs legitimately overlap their own output.
      std::size_t src = out.size() - off;
      for (std::size_t i = 0; i < len; ++i) out.push_back(out[src + i]);
    } else {
      if (p >= in.size()) throw pup::StreamError("lz block truncated");
      out.push_back(in[p++]);
    }
  }
  if (p != in.size())
    throw pup::StreamError("lz block has trailing garbage");
  return out;
}

// ---------------------------------------------------------------------------
// Frame encode/decode.
// ---------------------------------------------------------------------------

namespace {

/// Per-chunk record header of encoding-1 payloads.
void append_record(buf::BufferBuilder& b, ChunkEncoding enc,
                   std::span<const std::byte> body) {
  std::uint8_t e = static_cast<std::uint8_t>(enc);
  std::uint32_t len = static_cast<std::uint32_t>(body.size());
  b.write(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(&e), 1));
  b.write(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(&len), sizeof len));
  b.write(body);
}

}  // namespace

/// Stages 1–3 sans payload: the chunk map and byte accounting.
static CodecFrame start_frame(const CodecConfig& cfg,
                              std::span<const std::byte> image,
                              std::span<const std::uint32_t> digests,
                              const std::vector<std::uint32_t>* base_digests,
                              std::uint64_t base_bytes) {
  const std::size_t n = checksum::digest_chunk_count(image.size());
  CodecFrame frame;
  frame.map.full_bytes = image.size();
  frame.map.present.assign(n, 1);

  bool delta = cfg.delta_on() && base_digests != nullptr &&
               base_bytes == image.size() && base_digests->size() == n &&
               digests.size() == n;
  if (delta)
    for (std::size_t i = 0; i < n; ++i)
      frame.map.present[i] = digests[i] != (*base_digests)[i] ? 1 : 0;

  for (std::size_t i = 0; i < n; ++i) {
    if (!frame.map.present[i]) continue;
    auto [begin, end] = checksum::digest_chunk_range(image.size(), i);
    frame.raw_payload_bytes += end - begin;
  }
  return frame;
}

CodecFrame CodecPipeline::encode(std::span<const std::byte> image,
                                 std::span<const std::uint32_t> digests,
                                 const std::vector<std::uint32_t>* base_digests,
                                 std::uint64_t base_bytes) const {
  CodecFrame frame =
      start_frame(cfg_, image, digests, base_digests, base_bytes);
  const std::size_t n = frame.map.present.size();
  std::vector<std::size_t> carried;
  carried.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    if (frame.map.present[i]) carried.push_back(i);

  if (!cfg_.compress_on()) {
    frame.encoding = 0;
    if (carried.size() == n) {
      frame.payload = buf::Buffer::copy_of(image);
    } else {
      buf::BufferBuilder b;
      b.reserve(frame.raw_payload_bytes);
      for (std::size_t i : carried) {
        auto [begin, end] = checksum::digest_chunk_range(image.size(), i);
        b.write(image.subspan(begin, end - begin));
      }
      frame.payload = b.take();
    }
    return frame;
  }

  // Compress stage: each carried chunk independently (the same traversal
  // shape as the digest stage), merged in chunk order.
  frame.encoding = 1;
  std::vector<std::vector<std::byte>> packed(carried.size());
  std::vector<std::uint8_t> enc(carried.size());
  auto pack_one = [&](std::size_t k) {
    auto [begin, end] = checksum::digest_chunk_range(image.size(), carried[k]);
    std::span<const std::byte> raw = image.subspan(begin, end - begin);
    std::vector<std::byte> lz = lz_compress_block(raw);
    if (lz.size() < raw.size()) {
      packed[k] = std::move(lz);
      enc[k] = static_cast<std::uint8_t>(ChunkEncoding::Lz);
    } else {
      packed[k].assign(raw.begin(), raw.end());
      enc[k] = static_cast<std::uint8_t>(ChunkEncoding::Raw);
    }
  };
  parallel::Pool& pool = parallel::global();
  if (pool.threads() == 0 || carried.size() < 2) {
    for (std::size_t k = 0; k < carried.size(); ++k) pack_one(k);
  } else {
    pool.for_each_index(carried.size(), pack_one);
  }
  buf::BufferBuilder b;
  for (std::size_t k = 0; k < carried.size(); ++k)
    append_record(b, static_cast<ChunkEncoding>(enc[k]), packed[k]);
  frame.payload = b.take();
  return frame;
}

CodecFrame CodecPipeline::encode_full(std::span<const std::byte> image) const {
  return encode(image, {}, nullptr, 0);
}

CodecFrame CodecPipeline::encode(const buf::Buffer& image,
                                 std::span<const std::uint32_t> digests,
                                 const std::vector<std::uint32_t>* base_digests,
                                 std::uint64_t base_bytes) const {
  if (!cfg_.compress_on()) {
    // The raw full-map degenerate case must not byte-copy the image; build
    // the map first and alias when every chunk is carried.
    CodecFrame frame =
        start_frame(cfg_, image.bytes(), digests, base_digests, base_bytes);
    if (frame.map.all_present()) {
      frame.encoding = 0;
      frame.payload = image;
      return frame;
    }
  }
  return encode(image.bytes(), digests, base_digests, base_bytes);
}

CodecFrame CodecPipeline::encode_full(const buf::Buffer& image) const {
  return encode(image, {}, nullptr, 0);
}

buf::Buffer CodecPipeline::decode(const CodecFrame& frame,
                                  std::span<const std::byte> base) {
  const std::uint64_t full = frame.map.full_bytes;
  const std::size_t n = checksum::digest_chunk_count(full);
  if (frame.map.present.size() != n)
    throw pup::StreamError("codec frame: chunk map does not match image size");
  if (!frame.map.all_present() && base.size() != full)
    throw pup::StreamError("codec frame: delta without a matching base image");

  std::span<const std::byte> payload = frame.payload.bytes();
  std::size_t cursor = 0;
  buf::BufferBuilder out;
  out.reserve(full);
  for (std::size_t i = 0; i < n; ++i) {
    auto [begin, end] = checksum::digest_chunk_range(full, i);
    std::size_t raw_len = end - begin;
    if (!frame.map.present[i]) {
      out.write(base.subspan(begin, raw_len));
      continue;
    }
    if (frame.encoding == 0) {
      if (cursor + raw_len > payload.size())
        throw pup::StreamError("codec frame: raw payload truncated");
      out.write(payload.subspan(cursor, raw_len));
      cursor += raw_len;
    } else {
      if (cursor + 5 > payload.size())
        throw pup::StreamError("codec frame: record header truncated");
      std::uint8_t e = static_cast<std::uint8_t>(payload[cursor]);
      std::uint32_t len = 0;
      std::memcpy(&len, payload.data() + cursor + 1, sizeof len);
      cursor += 5;
      if (cursor + len > payload.size())
        throw pup::StreamError("codec frame: record body truncated");
      std::span<const std::byte> body = payload.subspan(cursor, len);
      cursor += len;
      if (e == static_cast<std::uint8_t>(ChunkEncoding::Raw)) {
        if (body.size() != raw_len)
          throw pup::StreamError("codec frame: raw record length mismatch");
        out.write(body);
      } else if (e == static_cast<std::uint8_t>(ChunkEncoding::Lz)) {
        std::vector<std::byte> raw = lz_decompress_block(body, raw_len);
        out.write(raw);
      } else {
        throw pup::StreamError("codec frame: unknown chunk encoding");
      }
    }
  }
  if (cursor != payload.size())
    throw pup::StreamError("codec frame: payload has trailing bytes");
  return out.take();
}

}  // namespace acr::ckpt
