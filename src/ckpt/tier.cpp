#include "ckpt/tier.h"

#include <set>

#include "common/require.h"

namespace acr::ckpt {

void DurableTier::publish(int replica, int index, const StoredImage& img) {
  ACR_REQUIRE(replica >= 0 && replica < replicas_, "tier publish: bad replica");
  ACR_REQUIRE(index >= 0 && index < roles_, "tier publish: bad node index");
  std::vector<std::byte> blob = encode_stored_image(img);
  bytes_published_ += blob.size();
  ++publishes_;
  blobs_[Key{replica, index, img.epoch}] = std::move(blob);
}

bool DurableTier::has(int replica, int index, std::uint64_t epoch) const {
  return blobs_.count(Key{replica, index, epoch}) != 0;
}

std::optional<StoredImage> DurableTier::fetch(int replica, int index,
                                              std::uint64_t epoch) {
  auto it = blobs_.find(Key{replica, index, epoch});
  if (it == blobs_.end()) return std::nullopt;
  ++fetches_;
  return decode_stored_image(it->second);
}

std::uint64_t DurableTier::blob_bytes(int replica, int index,
                                      std::uint64_t epoch) const {
  auto it = blobs_.find(Key{replica, index, epoch});
  return it == blobs_.end() ? 0 : it->second.size();
}

std::uint64_t DurableTier::newest_complete_epoch() const {
  // Keys are ordered by epoch first, so walk runs of equal epoch and count.
  std::uint64_t best = 0;
  auto it = blobs_.begin();
  const std::size_t need =
      static_cast<std::size_t>(replicas_) * static_cast<std::size_t>(roles_);
  while (it != blobs_.end()) {
    std::uint64_t epoch = it->first.epoch;
    std::size_t count = 0;
    while (it != blobs_.end() && it->first.epoch == epoch) {
      ++count;
      ++it;
    }
    if (count >= need && epoch > best) best = epoch;
  }
  return best;
}

std::vector<std::uint64_t> DurableTier::epochs_present() const {
  std::vector<std::uint64_t> out;
  for (const auto& [key, blob] : blobs_)
    if (out.empty() || out.back() != key.epoch) out.push_back(key.epoch);
  return out;
}

void DurableTier::prune(std::uint64_t keep_from_epoch) {
  auto it = blobs_.begin();
  while (it != blobs_.end() && it->first.epoch < keep_from_epoch)
    it = blobs_.erase(it);
}

}  // namespace acr::ckpt
