#include "ckpt/tier.h"

#include <set>

#include "common/require.h"

namespace acr::ckpt {

void DurableTier::publish(int replica, int index, const StoredImage& img) {
  ACR_REQUIRE(replica >= 0 && replica < replicas_, "tier publish: bad replica");
  ACR_REQUIRE(index >= 0 && index < roles_, "tier publish: bad node index");
  std::vector<std::byte> blob = encode_stored_image(img);
  bytes_published_ += blob.size();
  ++publishes_;
  blobs_[Key{replica, index, img.epoch}] = Blob{std::move(blob), 0};
}

void DurableTier::publish_blob(int replica, int index, std::uint64_t epoch,
                               std::vector<std::byte> blob,
                               std::uint64_t base_epoch) {
  ACR_REQUIRE(replica >= 0 && replica < replicas_, "tier publish: bad replica");
  ACR_REQUIRE(index >= 0 && index < roles_, "tier publish: bad node index");
  ACR_REQUIRE(base_epoch < epoch || base_epoch == 0,
              "tier publish: delta base must be an older epoch");
  bytes_published_ += blob.size();
  ++publishes_;
  if (base_epoch != 0) ++delta_publishes_;
  blobs_[Key{replica, index, epoch}] = Blob{std::move(blob), base_epoch};
}

bool DurableTier::has(int replica, int index, std::uint64_t epoch) const {
  return blobs_.count(Key{replica, index, epoch}) != 0;
}

std::optional<StoredImage> DurableTier::decode_chain(int replica, int index,
                                                     std::uint64_t epoch,
                                                     int depth) {
  // A cycle cannot be published (base_epoch < epoch is enforced), but a
  // corrupt blob could claim one; the depth guard turns that into a failed
  // fetch instead of a hang.
  if (depth > 64) return std::nullopt;
  auto it = blobs_.find(Key{replica, index, epoch});
  if (it == blobs_.end()) return std::nullopt;
  try {
    DecodedBlob decoded = decode_any_image(it->second.bytes);
    if (!decoded.is_delta) return std::move(decoded.full);
    buf::Buffer image;
    if (decoded.delta.base_epoch == 0) {
      // Self-contained v2 blob (compressed full image).
      image = CodecPipeline::decode(decoded.delta.frame, {});
    } else {
      std::optional<StoredImage> base =
          decode_chain(replica, index, decoded.delta.base_epoch, depth + 1);
      if (!base) return std::nullopt;
      image = CodecPipeline::decode(decoded.delta.frame, base->image.bytes());
    }
    StoredImage out;
    out.epoch = decoded.delta.epoch;
    out.iteration = decoded.delta.iteration;
    out.image = pup::Checkpoint(image);
    out.image.epoch = out.epoch;
    return out;
  } catch (const pup::StreamError&) {
    return std::nullopt;
  }
}

std::optional<StoredImage> DurableTier::fetch(int replica, int index,
                                              std::uint64_t epoch) {
  std::optional<StoredImage> out = decode_chain(replica, index, epoch, 0);
  if (out) ++fetches_;
  return out;
}

std::uint64_t DurableTier::blob_bytes(int replica, int index,
                                      std::uint64_t epoch) const {
  auto it = blobs_.find(Key{replica, index, epoch});
  return it == blobs_.end() ? 0 : it->second.bytes.size();
}

std::uint64_t DurableTier::chain_bytes(int replica, int index,
                                       std::uint64_t epoch) const {
  std::uint64_t total = 0;
  std::uint64_t e = epoch;
  for (int depth = 0; depth <= 64; ++depth) {
    auto it = blobs_.find(Key{replica, index, e});
    if (it == blobs_.end()) return 0;  // broken chain: a fetch cannot succeed
    total += it->second.bytes.size();
    if (it->second.base_epoch == 0) return total;
    e = it->second.base_epoch;
  }
  return 0;  // chain deeper than any agent grows: treat as unfetchable
}

std::uint64_t DurableTier::chain_length(int replica, int index,
                                        std::uint64_t epoch) const {
  std::uint64_t count = 0;
  std::uint64_t e = epoch;
  for (int depth = 0; depth <= 64; ++depth) {
    auto it = blobs_.find(Key{replica, index, e});
    if (it == blobs_.end()) break;
    ++count;
    if (it->second.base_epoch == 0) break;
    e = it->second.base_epoch;
  }
  return count;
}

std::uint64_t DurableTier::newest_complete_epoch() const {
  // Keys are ordered by epoch first, so walk runs of equal epoch and count.
  std::uint64_t best = 0;
  auto it = blobs_.begin();
  const std::size_t need =
      static_cast<std::size_t>(replicas_) * static_cast<std::size_t>(roles_);
  while (it != blobs_.end()) {
    std::uint64_t epoch = it->first.epoch;
    std::size_t count = 0;
    while (it != blobs_.end() && it->first.epoch == epoch) {
      ++count;
      ++it;
    }
    if (count >= need && epoch > best) best = epoch;
  }
  return best;
}

std::vector<std::uint64_t> DurableTier::epochs_present() const {
  std::vector<std::uint64_t> out;
  for (const auto& [key, blob] : blobs_)
    if (out.empty() || out.back() != key.epoch) out.push_back(key.epoch);
  return out;
}

void DurableTier::prune(std::uint64_t keep_from_epoch) {
  // Mark the base-chain ancestors of every kept delta blob: pruning them
  // would orphan the deltas they anchor. Chains only point backwards, so a
  // per-kept-key backward walk finds every live ancestor.
  std::set<Key> keep;
  for (const auto& [key, blob] : blobs_) {
    if (key.epoch < keep_from_epoch) continue;
    std::uint64_t e = blob.base_epoch;
    for (int depth = 0; e != 0 && depth <= 64; ++depth) {
      Key ancestor{key.replica, key.index, e};
      auto it = blobs_.find(ancestor);
      if (it == blobs_.end() || !keep.insert(ancestor).second) break;
      e = it->second.base_epoch;
    }
  }
  auto it = blobs_.begin();
  while (it != blobs_.end() && it->first.epoch < keep_from_epoch) {
    if (keep.count(it->first))
      ++it;
    else
      it = blobs_.erase(it);
  }
}

}  // namespace acr::ckpt
