// Ablation (§2.2): value of online failure prediction.
//
// The paper cites Lan et al.'s meta-learning predictor and argues that
// "checkpointing right before a potential failure occurs can help increase
// the mean time between failures visible to applications". This bench
// quantifies that claim two ways:
//   1. the analytic model — expected overhead change per unit time as a
//      function of recall and precision;
//   2. a live end-to-end run on the virtual cluster, measuring total time
//      with the predictor off vs on.
#include <cstdio>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "common/table.h"
#include "failure/distributions.h"

using namespace acr;

namespace {

RunSummary live_run(bool with_predictor, double recall, std::uint64_t seed) {
  apps::Jacobi3DConfig j;
  j.tasks_x = j.tasks_y = 2;
  j.tasks_z = 4;
  j.block_x = j.block_y = j.block_z = 4;
  j.iterations = 120;
  j.slots_per_node = 2;
  j.seconds_per_point = 1e-5;
  AcrConfig ac;
  ac.scheme = ResilienceScheme::Strong;
  ac.checkpoint_interval = 0.02;  // sparse: rework dominates
  ac.heartbeat_period = 0.0005;
  ac.heartbeat_timeout = 0.002;
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 24;
  cc.seed = seed;
  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  if (with_predictor) {
    PredictorConfig pred;
    pred.recall = recall;
    pred.precision = 0.8;
    pred.lead_time = 0.001;
    runtime.set_predictor(pred);
  }
  FaultPlan plan;
  plan.arrivals = std::make_shared<failure::RenewalProcess>(
      std::make_shared<failure::Exponential>(0.02));
  plan.sdc_fraction = 0.0;
  runtime.set_fault_plan(plan);
  return runtime.run(60.0);
}

}  // namespace

int main() {
  std::printf("Failure-prediction ablation (§2.2)\n\n");

  std::printf("Analytic model: overhead delta per hour (negative = win), "
              "tau = 120 s, MTBF = 1200 s, delta_ckpt = 1 s\n");
  TablePrinter model({"recall", "precision 0.95", "precision 0.5",
                      "precision 0.1"});
  for (double recall : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    std::vector<std::string> row{TablePrinter::fmt(recall, 2)};
    for (double precision : {0.95, 0.5, 0.1}) {
      PredictorConfig cfg;
      cfg.recall = recall;
      cfg.precision = precision;
      double delta =
          prediction_overhead_delta(cfg, 120.0, 1200.0, 1.0) * 3600.0;
      row.push_back(TablePrinter::fmt(delta, 3));
    }
    model.add_row(row);
  }
  model.print();

  std::printf("\nLive runs (virtual cluster, Jacobi3D, mean over 5 seeds):\n");
  TablePrinter live({"configuration", "mean total time (s)",
                     "mean failures", "completed"});
  for (int mode = 0; mode < 3; ++mode) {
    double total = 0.0, failures = 0.0;
    int completed = 0;
    const int kSeeds = 5;
    for (int s = 0; s < kSeeds; ++s) {
      RunSummary r =
          live_run(mode > 0, mode == 1 ? 0.5 : 1.0, 900 + s * 13);
      if (r.complete) {
        ++completed;
        total += r.finish_time;
        failures += static_cast<double>(r.hard_failures);
      }
    }
    const char* name = mode == 0   ? "no predictor"
                       : mode == 1 ? "predictor recall=0.5"
                                   : "predictor recall=1.0";
    live.add_row({name,
                  completed ? TablePrinter::fmt(total / completed, 4) : "-",
                  completed ? TablePrinter::fmt(failures / completed, 3) : "-",
                  std::to_string(completed) + "/" + std::to_string(kSeeds)});
  }
  live.print();
  std::printf(
      "\nClaim check: with cheap checkpoints the win scales with recall; "
      "low precision erodes it through false-alarm checkpoints.\n");
  return 0;
}
