// Durable-tier sweep (fig8-style, simulator-backed): a deterministic
// buddy-pair loss — unrecoverable at L1 under partner redundancy — served
// either by a scratch restart (tier off) or by an L2 fetch, across L2
// bandwidths and flush intervals. Reports completion time, the recovery
// path taken, and flush traffic, and writes the table to BENCH_tiers.json
// for trajectory comparison across commits. The analytic tier model's
// prediction (model::evaluate_tiered) is printed alongside the simulated
// speedup.
#include <cstdio>
#include <string>
#include <vector>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "common/table.h"
#include "model/acr_model.h"

using namespace acr;

namespace {

struct SweepPoint {
  std::string label;
  double bandwidth = 0.0;
  std::uint64_t flush_interval = 1;
  RunSummary summary;
  double fault_free_time = 0.0;
};

apps::Jacobi3DConfig sweep_app() {
  apps::Jacobi3DConfig j;
  j.tasks_x = j.tasks_y = 2;
  j.tasks_z = 4;
  j.block_x = j.block_y = j.block_z = 8;
  j.iterations = 60;
  j.slots_per_node = 2;
  j.seconds_per_point = 1e-5;
  return j;
}

AcrConfig sweep_acr(double bandwidth, std::uint64_t flush_interval) {
  AcrConfig ac;
  ac.scheme = ResilienceScheme::Strong;
  ac.redundancy = ckpt::Scheme::Partner;
  ac.checkpoint_interval = 0.01;
  ac.heartbeat_period = 0.0004;
  ac.heartbeat_timeout = 0.0016;
  ac.tier.bandwidth = bandwidth;
  ac.tier.flush_interval = flush_interval;
  return ac;
}

RunSummary run_point(double bandwidth, std::uint64_t flush_interval,
                     bool kill_pair, double kill_at) {
  apps::Jacobi3DConfig j = sweep_app();
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 4;
  cc.seed = 42;
  AcrRuntime runtime(sweep_acr(bandwidth, flush_interval), cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  if (kill_pair) {
    runtime.engine().schedule_at(kill_at, [&runtime] {
      runtime.cluster().kill_role(0, 4);
      runtime.cluster().kill_role(1, 4);
    });
  }
  return runtime.run(120.0);
}

}  // namespace

int main() {
  std::printf(
      "Durable-tier sweep: buddy-pair loss mid-run (L1-unrecoverable "
      "under partner redundancy)\nscratch restart vs L2 fetch across "
      "bandwidth and flush interval\n\n");

  double fault_free = run_point(0.0, 1, false, 0.0).finish_time;
  double kill_at = fault_free * 0.5;

  std::vector<SweepPoint> points;
  {
    SweepPoint p;
    p.label = "scratch (no tier)";
    p.summary = run_point(0.0, 1, true, kill_at);
    p.fault_free_time = fault_free;
    points.push_back(p);
  }
  for (double bw : {1e8, 1e9}) {
    for (std::uint64_t fi : {std::uint64_t{1}, std::uint64_t{4}}) {
      SweepPoint p;
      char buf[64];
      std::snprintf(buf, sizeof buf, "bw=%.0e ival=%llu", bw,
                    static_cast<unsigned long long>(fi));
      p.label = buf;
      p.bandwidth = bw;
      p.flush_interval = fi;
      p.summary = run_point(bw, fi, true, kill_at);
      p.fault_free_time = fault_free;
      points.push_back(p);
    }
  }

  TablePrinter table({"config", "status", "time s", "overhead s", "waves",
                      "fetches", "scratch", "flush MB", "durable epoch"});
  for (const SweepPoint& p : points) {
    const RunSummary& s = p.summary;
    table.add_row(
        {p.label, s.complete ? "complete" : "DID NOT FINISH",
         TablePrinter::fmt(s.finish_time),
         TablePrinter::fmt(s.finish_time - fault_free),
         std::to_string(s.l2_fetch_waves), std::to_string(s.l2_fetches),
         std::to_string(s.scratch_restarts),
         TablePrinter::fmt(static_cast<double>(s.l2_flush_bytes) / 1e6, 3),
         std::to_string(s.l2_newest_durable)});
  }
  table.print();

  // Analytic cross-check: the tiered model's predicted speedup for one
  // catastrophic event per run at these settings.
  model::SystemParams mp;
  mp.work = fault_free;
  mp.checkpoint_cost = 0.01 / 20.0;
  mp.restart_hard = 0.001;
  mp.restart_sdc = 0.001;
  mp.sockets_per_replica = 8;
  model::AcrModel model(mp);
  model::TierParams tp;
  tp.flush_interval = 1;
  tp.fetch_cost = 0.001;
  tp.catastrophic_mtbf = fault_free;  // ~one event per run
  model::TieredEvaluation ev =
      model.evaluate_tiered(model::Scheme::Strong, tp, 0.01);
  std::printf(
      "\nmodel: flush lag %.4f s, per-event tier rework %.4f s, "
      "fetch-vs-scratch speedup %.2fx\n",
      ev.flush_lag, ev.rework_catastrophic, ev.speedup);

  std::FILE* out = std::fopen("BENCH_tiers.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n \"fault_free_time\": %.9f,\n \"points\": [\n",
                 fault_free);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      const RunSummary& s = p.summary;
      std::fprintf(
          out,
          "  {\"config\": \"%s\", \"bandwidth\": %.1f, "
          "\"flush_interval\": %llu, \"complete\": %s, "
          "\"finish_time\": %.9f, \"fetch_waves\": %llu, "
          "\"fetches\": %llu, \"scratch_restarts\": %llu, "
          "\"flush_bytes\": %llu, \"newest_durable\": %llu}%s\n",
          p.label.c_str(), p.bandwidth,
          static_cast<unsigned long long>(p.flush_interval),
          s.complete ? "true" : "false", s.finish_time,
          static_cast<unsigned long long>(s.l2_fetch_waves),
          static_cast<unsigned long long>(s.l2_fetches),
          static_cast<unsigned long long>(s.scratch_restarts),
          static_cast<unsigned long long>(s.l2_flush_bytes),
          static_cast<unsigned long long>(s.l2_newest_durable),
          i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out, " ],\n \"model_speedup\": %.6f\n}\n", ev.speedup);
    std::fclose(out);
    std::printf("wrote BENCH_tiers.json\n");
  }
  return 0;
}
