// Reed–Solomon survivability sweep (fig8-style, simulator-backed): a
// deterministic burst killing f members of one parity group mid-run,
// across redundancy scheme (xor vs rs at several parity counts), group
// size, and burst severity f. No durable tier anywhere: every loss the
// scheme cannot rebuild in place is a visible scratch restart. Reports
// completion time, the recovery path taken, and the encode/rebuild wire
// traffic split, and writes the table to BENCH_rs.json for trajectory
// comparison across commits.
#include <cstdio>
#include <string>
#include <vector>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "ckpt/group.h"
#include "common/table.h"

using namespace acr;

namespace {

struct SweepPoint {
  std::string scheme;  ///< "xor" or "rs(m)"
  int group_size = 0;
  int parity = 0;  ///< 0 for xor
  int kills = 0;   ///< burst severity: dead members of group 0
  RunSummary summary;
  double fault_free_time = 0.0;
};

apps::Jacobi3DConfig sweep_app() {
  apps::Jacobi3DConfig j;
  j.tasks_x = j.tasks_y = 2;
  j.tasks_z = 4;
  j.block_x = j.block_y = j.block_z = 8;
  j.iterations = 60;
  j.slots_per_node = 2;  // 8 nodes per replica
  j.seconds_per_point = 1e-5;
  return j;
}

AcrConfig sweep_acr(int group_size, int parity) {
  AcrConfig ac;
  ac.scheme = ResilienceScheme::Strong;
  ac.redundancy = parity > 0 ? ckpt::Scheme::Rs : ckpt::Scheme::Xor;
  ac.xor_group_size = group_size;
  if (parity > 0) ac.rs_parity = parity;
  ac.checkpoint_interval = 0.01;
  ac.heartbeat_period = 0.0004;
  ac.heartbeat_timeout = 0.0016;
  return ac;
}

RunSummary run_point(int group_size, int parity, int kills, double kill_at) {
  apps::Jacobi3DConfig j = sweep_app();
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 8;
  cc.seed = 42;
  AcrRuntime runtime(sweep_acr(group_size, parity), cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  if (kills > 0) {
    // Near-simultaneous deaths inside group 0 of replica 0: the second
    // and later victims fall while the first rebuild is still in flight.
    for (int i = 0; i < kills; ++i) {
      runtime.engine().schedule_at(kill_at + 1e-5 * i, [&runtime, i] {
        runtime.cluster().kill_role(0, i);
      });
    }
  }
  return runtime.run(120.0);
}

}  // namespace

int main() {
  std::printf(
      "Reed-Solomon survivability sweep: f near-simultaneous deaths in one "
      "parity group,\nno durable tier (every non-rebuildable loss is a "
      "scratch restart)\n\n");

  struct SchemeSpec {
    const char* name;
    int parity;  // 0 = xor
  };
  const SchemeSpec schemes[] = {{"xor", 0}, {"rs(1)", 1}, {"rs(2)", 2},
                                {"rs(3)", 3}};
  std::vector<SweepPoint> points;
  for (int group_size : {4, 8}) {
    for (const SchemeSpec& sp : schemes) {
      if (sp.parity >= group_size) continue;
      double fault_free =
          run_point(group_size, sp.parity, 0, 0.0).finish_time;
      for (int kills : {1, 2, 3}) {
        SweepPoint p;
        p.scheme = sp.name;
        p.group_size = group_size;
        p.parity = sp.parity;
        p.kills = kills;
        p.fault_free_time = fault_free;
        p.summary = run_point(group_size, sp.parity, kills,
                              fault_free * 0.5);
        points.push_back(p);
      }
    }
  }

  TablePrinter table({"scheme", "group", "f", "status", "time s",
                      "overhead s", "rebuilds", "scratch", "encode MB",
                      "rebuild MB", "rejected"});
  for (const SweepPoint& p : points) {
    const RunSummary& s = p.summary;
    table.add_row(
        {p.scheme, std::to_string(p.group_size), std::to_string(p.kills),
         s.complete ? "complete" : "DID NOT FINISH",
         TablePrinter::fmt(s.finish_time),
         TablePrinter::fmt(s.finish_time - p.fault_free_time),
         std::to_string(s.xor_rebuilds), std::to_string(s.scratch_restarts),
         TablePrinter::fmt(static_cast<double>(s.parity_bytes_sent) / 1e6, 3),
         TablePrinter::fmt(static_cast<double>(s.parity_rebuild_bytes) / 1e6,
                           3),
         std::to_string(s.parity_rebuilds_rejected)});
  }
  table.print();

  std::FILE* out = std::fopen("BENCH_rs.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      const RunSummary& s = p.summary;
      std::fprintf(
          out,
          "  {\"scheme\": \"%s\", \"group_size\": %d, \"parity\": %d, "
          "\"kills\": %d, \"complete\": %s, \"finish_time\": %.9f, "
          "\"fault_free_time\": %.9f, \"rebuilds\": %llu, "
          "\"scratch_restarts\": %llu, \"encode_bytes\": %llu, "
          "\"rebuild_pieces\": %llu, \"rebuild_bytes\": %llu, "
          "\"rebuilds_rejected\": %llu}%s\n",
          p.scheme.c_str(), p.group_size, p.parity, p.kills,
          s.complete ? "true" : "false", s.finish_time, p.fault_free_time,
          static_cast<unsigned long long>(s.xor_rebuilds),
          static_cast<unsigned long long>(s.scratch_restarts),
          static_cast<unsigned long long>(s.parity_bytes_sent),
          static_cast<unsigned long long>(s.parity_rebuild_pieces),
          static_cast<unsigned long long>(s.parity_rebuild_bytes),
          static_cast<unsigned long long>(s.parity_rebuilds_rejected),
          i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out, " ]\n}\n");
    std::fclose(out);
    std::printf("wrote BENCH_rs.json\n");
  }
  return 0;
}
