// Event-engine scaling sweep: a PHOLD-style synthetic workload (ring of
// logical nodes, each bouncing timestamped messages to itself and its
// neighbors, plus watchdog cancel/rearm churn) run at 1k/16k/131k nodes
// across engine lane counts. Two things are measured per point: wall time
// (the perf trajectory, written to BENCH_engine.json) and a running digest
// of every dispatch (node, sequence, time bits) — asserted bit-identical
// across lane counts, which is the engine's determinism contract at the
// scale the soak suites never reach.
//
// Speedup-vs-serial is honest wall clock on whatever host runs the bench:
// on a single-core machine the laned engine wins (or loses) only by its
// algorithmics (small in-window overflow heap, O(1) mailbox appends,
// per-lane heaps a fraction of the global size), not by threads. host_cores
// is recorded in the JSON so trajectories from different machines are not
// compared blindly.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "rt/engine.h"

using namespace acr;

namespace {

constexpr int kEventsPerNode = 16;
constexpr double kMinDelay = 5e-6;    // also the conservative lookahead
constexpr double kDelaySpread = 45e-6;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

struct PholdResult {
  std::uint64_t digest = 0;
  std::size_t events = 0;
  std::uint64_t rounds = 0;
  double wall_seconds = 0.0;
};

/// One PHOLD run: every node seeds one message; each dispatch folds
/// (node, seq, time) into the digest, rearms the node's watchdog (cancel +
/// reschedule, so the cancelled-set churns exactly as the cluster's
/// heartbeat timers do), and forwards the message to itself or a ring
/// neighbor with a node-local PCG delay. Event count, times, and digest
/// depend only on the per-node RNG streams — never on the lane count.
PholdResult run_phold(int nodes, int lanes) {
  rt::Engine engine(lanes);
  engine.set_lookahead(kMinDelay);

  struct NodeState {
    Pcg32 rng;
    int remaining = kEventsPerNode;
    std::uint64_t seq = 0;
    rt::Engine::EventId watchdog = 0;
  };
  std::vector<NodeState> state(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n)
    state[static_cast<std::size_t>(n)].rng =
        Pcg32(0xEC5CA1E0ULL + static_cast<std::uint64_t>(n),
              static_cast<std::uint64_t>(n) * 2 + 1);

  std::uint64_t digest = 0;
  std::function<void(int)> bounce = [&](int node) {
    NodeState& s = state[static_cast<std::size_t>(node)];
    std::uint64_t tbits;
    double now = engine.now();
    std::memcpy(&tbits, &now, sizeof tbits);
    digest = mix(digest, static_cast<std::uint64_t>(node));
    digest = mix(digest, ++s.seq);
    digest = mix(digest, tbits);
    // Watchdog churn: cancel the previous (pending or long-fired) timer and
    // arm a fresh one past the end of the run.
    engine.cancel(s.watchdog);
    s.watchdog = engine.schedule_after(
        10.0, [&digest, node] { digest = mix(digest, ~static_cast<std::uint64_t>(node)); },
        static_cast<rt::Engine::LaneKey>(node));
    if (--s.remaining <= 0) {
      engine.cancel(s.watchdog);
      s.watchdog = 0;
      return;
    }
    double delay = kMinDelay + kDelaySpread * (s.rng.next() * 0x1p-32);
    int dst = node;
    std::uint32_t pick = s.rng.bounded(10);
    if (pick < 2) dst = (node + 1) % nodes;                  // ring right
    else if (pick < 3) dst = (node + nodes - 1) % nodes;     // ring left
    engine.schedule_after(delay, [&bounce, dst] { bounce(dst); },
                          static_cast<rt::Engine::LaneKey>(dst));
  };

  auto t0 = std::chrono::steady_clock::now();
  for (int n = 0; n < nodes; ++n) {
    NodeState& s = state[static_cast<std::size_t>(n)];
    double start = kMinDelay + kDelaySpread * (s.rng.next() * 0x1p-32);
    engine.schedule_after(start, [&bounce, n] { bounce(n); },
                          static_cast<rt::Engine::LaneKey>(n));
  }
  engine.run();
  auto t1 = std::chrono::steady_clock::now();

  PholdResult r;
  r.digest = digest;
  r.events = engine.events_processed();
  r.rounds = engine.rounds();
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

}  // namespace

int main() {
  const int node_counts[] = {1024, 16384, 131072};
  const int lane_counts[] = {1, 2, 4, 8};
  unsigned cores = std::thread::hardware_concurrency();

  std::printf("engine scaling sweep — PHOLD ring, %d events/node, host cores=%u\n\n",
              kEventsPerNode, cores);
  std::printf("%8s %6s %12s %10s %12s %10s\n", "nodes", "lanes", "events",
              "rounds", "wall (s)", "speedup");

  struct Point {
    int nodes, lanes;
    std::size_t events;
    std::uint64_t rounds;
    double wall, speedup;
  };
  std::vector<Point> points;
  bool deterministic = true;

  for (int nodes : node_counts) {
    double serial_wall = 0.0;
    std::uint64_t serial_digest = 0;
    std::size_t serial_events = 0;
    for (int lanes : lane_counts) {
      PholdResult r = run_phold(nodes, lanes);
      if (lanes == 1) {
        serial_wall = r.wall_seconds;
        serial_digest = r.digest;
        serial_events = r.events;
      } else if (r.digest != serial_digest || r.events != serial_events) {
        deterministic = false;
        std::printf("DETERMINISM VIOLATION at nodes=%d lanes=%d\n", nodes,
                    lanes);
      }
      double speedup = r.wall_seconds > 0.0 ? serial_wall / r.wall_seconds : 0.0;
      std::printf("%8d %6d %12zu %10llu %12.4f %9.2fx\n", nodes, lanes,
                  r.events, static_cast<unsigned long long>(r.rounds),
                  r.wall_seconds, speedup);
      points.push_back(
          {nodes, lanes, r.events, r.rounds, r.wall_seconds, speedup});
    }
    std::printf("\n");
  }

  std::FILE* out = std::fopen("BENCH_engine.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n \"config\": \"phold-ring events_per_node=%d "
                 "min_delay=%g spread=%g\",\n \"host_cores\": %u,\n"
                 " \"deterministic\": %s,\n \"points\": [\n",
                 kEventsPerNode, kMinDelay, kDelaySpread, cores,
                 deterministic ? "true" : "false");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      std::fprintf(out,
                   "  {\"nodes\": %d, \"lanes\": %d, \"events_processed\": "
                   "%zu, \"rounds\": %llu, \"wall_seconds\": %.6f, "
                   "\"speedup_vs_serial\": %.4f}%s\n",
                   p.nodes, p.lanes, p.events,
                   static_cast<unsigned long long>(p.rounds), p.wall,
                   p.speedup, i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out, " ]\n}\n");
    std::fclose(out);
    std::printf("wrote BENCH_engine.json\n");
  }
  return deterministic ? 0 : 1;
}
