// Figure 6: inter-replica checkpoint messages per torus link under the
// default, column, and mixed mappings (512-node BG/P partition, 8x8x8).
// Prints the per-link load profile along a Z ring (the paper's front-plane
// annotation) and the bottleneck statistics for each scheme.
#include <cstdio>

#include "common/table.h"
#include "net/link_load.h"
#include "topology/mapping.h"

using namespace acr;
using topo::Dir;
using topo::MappingScheme;
using topo::ReplicaMapping;
using topo::Torus3D;

int main() {
  Torus3D torus = topo::bgp_partition(512);
  std::printf("Figure 6: buddy-traffic link loads, 512 nodes (%dx%dx%d)\n\n",
              torus.dim_x(), torus.dim_y(), torus.dim_z());

  net::NetworkParams params;
  TablePrinter summary({"mapping", "max msgs/link", "byte-hops (norm)",
                        "max buddy dist", "phase time (1 MiB/node)"});

  for (MappingScheme scheme :
       {MappingScheme::Default, MappingScheme::Column, MappingScheme::Mixed}) {
    ReplicaMapping mapping(torus, scheme, 2);
    net::LinkLoadModel loads(torus);
    loads.add_traffic(mapping.buddy_pairs(), 1 << 20);

    // Per-link profile along the Z+ ring at (x=0, y=0), paper style.
    std::printf("%-8s Z+ ring loads (x=0,y=0): ", scheme_name(scheme));
    for (int z = 0; z < torus.dim_z(); ++z)
      std::printf("%llu ", static_cast<unsigned long long>(loads.link_messages(
                        torus.link_id({0, 0, z}, Dir::ZPlus))));
    std::printf("\n");

    int max_dist = 0;
    for (int i = 0; i < mapping.nodes_per_replica(); ++i)
      max_dist = std::max(max_dist, mapping.buddy_distance(i));
    summary.add_row(
        {scheme_name(scheme),
         std::to_string(loads.max_link_messages()),
         TablePrinter::fmt(loads.total_byte_hops() / (1 << 20), 4),
         std::to_string(max_dist),
         TablePrinter::fmt(loads.phase_time(params) * 1e3, 4) + " ms"});
  }
  std::printf("\n");
  summary.print();
  std::printf(
      "\nPaper shape check: default peaks at Z/2 = 4 messages on the "
      "bisection (1,2,3,4,3,2,1 profile);\ncolumn is contention-free (max "
      "1); mixed chunk=2 peaks at 2.\n");
  return 0;
}
