// Ablation (§3, design choice 4): dual redundancy + rollback versus triple
// modular redundancy (TMR). Dual invests 50% of the machine and re-executes
// on each detected SDC; TMR invests 67% but outvotes corruption without
// rollback. Sweeps the SDC rate to locate the crossover.
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "model/acr_model.h"

using namespace acr;
using namespace acr::model;

int main() {
  const double work = 24.0 * kSecondsPerHour;
  const double socket_mtbf = 50.0 * kSecondsPerYear;
  const double delta = 60.0;
  const double restart = 30.0;
  const int total_sockets = 98304;  // divisible by both 2 and 3

  std::printf("Dual redundancy vs TMR (machine: %d sockets, 24 h job)\n\n",
              total_sockets);
  TablePrinter table({"SDC FIT/socket", "dual util", "TMR util", "winner"});
  for (double fit : {1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0, 1e6}) {
    BaselinePoint dual =
        model_acr(work, total_sockets, socket_mtbf, fit, delta, restart,
                  restart);
    BaselinePoint tmr =
        model_tmr(work, total_sockets, socket_mtbf, fit, delta, restart);
    table.add_row({TablePrinter::fmt(fit, 6),
                   TablePrinter::fmt(dual.utilization, 4),
                   TablePrinter::fmt(tmr.utilization, 4),
                   dual.utilization >= tmr.utilization ? "dual" : "TMR"});
  }
  table.print();
  std::printf(
      "\nClaim check (§3): at the SDC rates the paper assumes, dual "
      "redundancy's re-execution cost is far below the\nextra 17%% of the "
      "machine TMR consumes — the crossover only appears at extreme "
      "corruption rates.\n");
  return 0;
}
