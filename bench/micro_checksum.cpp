// Microbenchmark (google-benchmark): the §4.2 checksum trade-off on real
// hardware. Sending the full checkpoint costs one pass over the data
// (copy into the message buffer, beta per byte on the wire); the checksum
// costs ~4 instructions per byte of compute but ships 8 bytes. The paper's
// criterion: checksum wins iff gamma < beta / 4 — which is exactly why the
// per-byte digest cost matters: the kernel-layer benches below pin the
// portable vs SSE4.2 CRC32C rates, the streaming FoldSink rate at the
// pack-tee's real 4 KiB write granularity, and the xor parity fold rate.
//
// Also measures the PUP pack / compare rates that calibrate the phase
// model, so the calibration is reproducible on the build machine.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <span>
#include <vector>

#include "checksum/crc32c.h"
#include "checksum/fletcher.h"
#include "checksum/kernels.h"
#include "checksum/sink.h"
#include "common/rng.h"
#include "parallel/pool.h"
#include "pup/checker.h"
#include "pup/pup.h"

namespace {

std::vector<std::byte> make_buffer(std::size_t size) {
  std::vector<std::byte> buf(size);
  acr::Pcg32 rng(size, 3);
  for (auto& b : buf) b = static_cast<std::byte>(rng.bounded(256));
  return buf;
}

/// Pin the CRC32C kernel for the duration of one benchmark, then restore
/// auto-dispatch so the remaining benches measure the default config.
struct ScopedKernel {
  explicit ScopedKernel(acr::checksum::KernelImpl impl) {
    acr::checksum::set_kernel_impl(impl);
  }
  ~ScopedKernel() {
    acr::checksum::set_kernel_impl(acr::checksum::KernelImpl::Auto);
  }
};

void BM_Fletcher64(benchmark::State& state) {
  auto buf = make_buffer(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(acr::checksum::fletcher64(buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Fletcher64)->Range(1 << 10, 1 << 22);

void BM_MemcpyToMessageBuffer(benchmark::State& state) {
  auto buf = make_buffer(static_cast<std::size_t>(state.range(0)));
  std::vector<std::byte> out(buf.size());
  for (auto _ : state) {
    std::memcpy(out.data(), buf.data(), buf.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MemcpyToMessageBuffer)->Range(1 << 10, 1 << 22);

void BM_Crc32c(benchmark::State& state) {
  auto buf = make_buffer(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(acr::checksum::crc32c(buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32c)->Range(1 << 10, 1 << 22);

// --- kernel layer: dispatch, streaming sinks, parity fold -------------------

void BM_Crc32cPortable(benchmark::State& state) {
  ScopedKernel pin(acr::checksum::KernelImpl::Portable);
  auto buf = make_buffer(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(acr::checksum::crc32c(buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32cPortable)->Range(1 << 10, 1 << 22);

void BM_Crc32cHw(benchmark::State& state) {
  if (!acr::checksum::hw_kernels_available()) {
    state.SkipWithError("SSE4.2 not available on this CPU");
    return;
  }
  ScopedKernel pin(acr::checksum::KernelImpl::Hw);
  auto buf = make_buffer(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(acr::checksum::crc32c(buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32cHw)->Range(1 << 10, 1 << 22);

// Chunk-parallel digest of a large image; range(1) = kernel threads.
void BM_Crc32cChunked(benchmark::State& state) {
  auto buf = make_buffer(static_cast<std::size_t>(state.range(0)));
  acr::parallel::set_global_threads(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(acr::checksum::crc32c_chunked(buf));
  }
  acr::parallel::set_global_threads(0);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32cChunked)
    ->Args({1 << 22, 0})
    ->Args({1 << 22, 2})
    ->Args({1 << 22, 4});

// Streaming digest at the pack-tee's real access pattern: the PUP packer
// hands the FoldSink a run of small writes (records are 9-byte headers plus
// payload slabs), not one giant span. 4 KiB writes model the slab case;
// this is the rate the one-pass checksum epoch actually sees.
template <typename Sink>
void stream_fold(benchmark::State& state) {
  constexpr std::size_t kWrite = 4096;
  auto buf = make_buffer(static_cast<std::size_t>(state.range(0)));
  std::span<const std::byte> all(buf);
  for (auto _ : state) {
    Sink sink;
    for (std::size_t pos = 0; pos < all.size(); pos += kWrite)
      sink.write(all.subspan(pos, std::min(kWrite, all.size() - pos)));
    benchmark::DoNotOptimize(sink.digest());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_FoldSinkFletcher64_4KWrites(benchmark::State& state) {
  stream_fold<acr::checksum::Fletcher64Sink>(state);
}
BENCHMARK(BM_FoldSinkFletcher64_4KWrites)->Range(1 << 12, 1 << 22);

void BM_FoldSinkCrc32c_4KWrites(benchmark::State& state) {
  stream_fold<acr::checksum::Crc32cSink>(state);
}
BENCHMARK(BM_FoldSinkCrc32c_4KWrites)->Range(1 << 12, 1 << 22);

// The RAID-5 parity fold as the ckpt layer runs it: xor an arriving group
// chunk into the accumulating parity block, measured as used (same-length
// fold into an existing accumulator).
void BM_XorFold(benchmark::State& state) {
  auto add = make_buffer(static_cast<std::size_t>(state.range(0)));
  std::vector<std::byte> acc(add.size(), std::byte{0});
  for (auto _ : state) {
    acr::checksum::xor_fold(acc, add);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_XorFold)->Range(1 << 10, 1 << 22);

void BM_XorFoldChunked(benchmark::State& state) {
  auto add = make_buffer(static_cast<std::size_t>(state.range(0)));
  std::vector<std::byte> acc(add.size(), std::byte{0});
  acr::parallel::set_global_threads(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    acr::checksum::xor_fold_chunked(acc, add);
    benchmark::DoNotOptimize(acc.data());
  }
  acr::parallel::set_global_threads(0);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_XorFoldChunked)
    ->Args({1 << 22, 0})
    ->Args({1 << 22, 2})
    ->Args({1 << 22, 4});

struct BigState {
  std::vector<double> a, b, c;
  void pup(acr::pup::Puper& p) {
    p | a;
    p | b;
    p | c;
  }
};

BigState make_state(std::size_t doubles) {
  BigState s;
  acr::Pcg32 rng(doubles, 5);
  s.a.resize(doubles / 3);
  s.b.resize(doubles / 3);
  s.c.resize(doubles - 2 * (doubles / 3));
  for (auto* v : {&s.a, &s.b, &s.c})
    for (auto& x : *v) x = rng.uniform();
  return s;
}

void BM_PupPack(benchmark::State& state) {
  BigState s = make_state(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    acr::pup::Packer p;
    p | s;
    benchmark::DoNotOptimize(p.bytes_written());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 8);
}
BENCHMARK(BM_PupPack)->Range(1 << 10, 1 << 20);

void BM_CheckerCompare(benchmark::State& state) {
  BigState s = make_state(static_cast<std::size_t>(state.range(0)));
  acr::pup::Checkpoint a = acr::pup::make_checkpoint(s);
  acr::pup::Checkpoint b = acr::pup::make_checkpoint(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(acr::pup::compare_checkpoints(a, b).match);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 8);
}
BENCHMARK(BM_CheckerCompare)->Range(1 << 10, 1 << 20);

}  // namespace

BENCHMARK_MAIN();
