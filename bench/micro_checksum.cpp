// Microbenchmark (google-benchmark): the §4.2 checksum trade-off on real
// hardware. Sending the full checkpoint costs one pass over the data
// (copy into the message buffer, beta per byte on the wire); the checksum
// costs ~4 instructions per byte of compute but ships 8 bytes. The paper's
// criterion: checksum wins iff gamma < beta / 4.
//
// Also measures the PUP pack / compare rates that calibrate the phase
// model, so the calibration is reproducible on the build machine.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "checksum/crc32c.h"
#include "checksum/fletcher.h"
#include "common/rng.h"
#include "pup/checker.h"
#include "pup/pup.h"

namespace {

std::vector<std::byte> make_buffer(std::size_t size) {
  std::vector<std::byte> buf(size);
  acr::Pcg32 rng(size, 3);
  for (auto& b : buf) b = static_cast<std::byte>(rng.bounded(256));
  return buf;
}

void BM_Fletcher64(benchmark::State& state) {
  auto buf = make_buffer(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(acr::checksum::fletcher64(buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Fletcher64)->Range(1 << 10, 1 << 22);

void BM_MemcpyToMessageBuffer(benchmark::State& state) {
  auto buf = make_buffer(static_cast<std::size_t>(state.range(0)));
  std::vector<std::byte> out(buf.size());
  for (auto _ : state) {
    std::memcpy(out.data(), buf.data(), buf.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MemcpyToMessageBuffer)->Range(1 << 10, 1 << 22);

void BM_Crc32c(benchmark::State& state) {
  auto buf = make_buffer(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(acr::checksum::crc32c(buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32c)->Range(1 << 10, 1 << 22);

struct BigState {
  std::vector<double> a, b, c;
  void pup(acr::pup::Puper& p) {
    p | a;
    p | b;
    p | c;
  }
};

BigState make_state(std::size_t doubles) {
  BigState s;
  acr::Pcg32 rng(doubles, 5);
  s.a.resize(doubles / 3);
  s.b.resize(doubles / 3);
  s.c.resize(doubles - 2 * (doubles / 3));
  for (auto* v : {&s.a, &s.b, &s.c})
    for (auto& x : *v) x = rng.uniform();
  return s;
}

void BM_PupPack(benchmark::State& state) {
  BigState s = make_state(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    acr::pup::Packer p;
    p | s;
    benchmark::DoNotOptimize(p.bytes_written());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 8);
}
BENCHMARK(BM_PupPack)->Range(1 << 10, 1 << 20);

void BM_CheckerCompare(benchmark::State& state) {
  BigState s = make_state(static_cast<std::size_t>(state.range(0)));
  acr::pup::Checkpoint a = acr::pup::make_checkpoint(s);
  acr::pup::Checkpoint b = acr::pup::make_checkpoint(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(acr::pup::compare_checkpoints(a, b).match);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 8);
}
BENCHMARK(BM_CheckerCompare)->Range(1 << 10, 1 << 20);

}  // namespace

BENCHMARK_MAIN();
