// Figure 8: single-checkpoint overhead decomposition (local checkpoint /
// checkpoint transfer / comparison) for the six mini-app variants of
// Table 2, under default / mixed / column mappings and the checksum
// method, from 1K to 64K cores per replica (256 - 16384 BG/P nodes).
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "sim/phase_model.h"

using namespace acr;
using namespace acr::sim;

int main() {
  // 4 cores per BG/P node: 1k..64k cores per replica.
  const std::vector<int> nodes_per_replica = {256, 1024, 4096, 16384};
  const DetectionMode modes[] = {DetectionMode::FullDefault,
                                 DetectionMode::FullMixed,
                                 DetectionMode::FullColumn,
                                 DetectionMode::Checksum};

  for (const auto& app : apps::kTable2) {
    std::printf("Figure 8 — %s (%s, %s): single checkpoint overhead (s)\n",
                app.name, app.model, app.config);
    TablePrinter table({"cores/replica", "mode", "local ckpt", "transfer",
                        "comparison", "total"});
    for (int nodes : nodes_per_replica) {
      for (DetectionMode mode : modes) {
        PhaseModel pm(nodes, app);
        CheckpointPhases p = pm.checkpoint_phases(mode);
        table.add_row({std::to_string(nodes * apps::kCoresPerNode),
                       detection_mode_name(mode),
                       TablePrinter::fmt(p.local_checkpoint, 4),
                       TablePrinter::fmt(p.transfer, 4),
                       TablePrinter::fmt(p.comparison, 4),
                       TablePrinter::fmt(p.total(), 4)});
      }
    }
    table.print();
    std::printf("\n");
  }

  std::printf(
      "Paper shape check: default transfer grows ~4x from 1K to 4K cores "
      "per replica (Z: 8->32) then flattens;\ncolumn/mixed/checksum are "
      "scale-invariant; checksum wins for the small-checkpoint MD apps but "
      "loses to column\nfor the high-memory-pressure apps (extra ~4 "
      "instructions/byte of compute).\n");
  return 0;
}
