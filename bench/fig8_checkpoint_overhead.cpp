// Figure 8: single-checkpoint overhead decomposition (local checkpoint /
// checkpoint transfer / comparison) for the six mini-app variants of
// Table 2, under default / mixed / column mappings and the checksum
// method, from 1K to 64K cores per replica (256 - 16384 BG/P nodes).
//
// Extended with a simulator-backed sweep of the checkpoint redundancy
// schemes (src/ckpt): local / partner / xor, fault-free and under a hard
// failure storm, reporting run time, redundancy traffic, and how each run
// recovered (group rebuilds vs scratch restarts).
#include <cstdio>
#include <vector>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "common/table.h"
#include "failure/distributions.h"
#include "sim/phase_model.h"

using namespace acr;
using namespace acr::sim;

namespace {

void redundancy_scheme_sweep() {
  std::printf(
      "Redundancy scheme sweep (simulator, Jacobi3D 16 tasks / 8 nodes per "
      "replica):\nfault-free overhead and hard-failure recovery under "
      "--ckpt-scheme={local,partner,xor}\n");
  TablePrinter table({"scheme", "faults", "status", "time", "ckpts",
                      "failures", "recoveries", "parity MB", "rebuilds",
                      "scratch"});
  for (double mtbf : {0.0, 0.03}) {
    for (ckpt::Scheme scheme :
         {ckpt::Scheme::Local, ckpt::Scheme::Partner, ckpt::Scheme::Xor}) {
      apps::Jacobi3DConfig j;
      j.tasks_x = j.tasks_y = 2;
      j.tasks_z = 4;
      j.block_x = j.block_y = j.block_z = 8;
      j.iterations = 60;
      j.slots_per_node = 2;
      j.seconds_per_point = 1e-5;
      AcrConfig ac;
      ac.scheme = ResilienceScheme::Strong;
      ac.redundancy = scheme;
      ac.xor_group_size = 4;
      ac.checkpoint_interval = 0.01;
      ac.heartbeat_period = 0.0004;  // prompt detection, as in the fuzz suite
      ac.heartbeat_timeout = 0.0016;
      rt::ClusterConfig cc;
      cc.nodes_per_replica = j.nodes_needed();
      cc.spare_nodes = 16;
      cc.seed = 42;
      AcrRuntime runtime(ac, cc);
      runtime.set_task_factory(j.factory());
      runtime.setup();
      if (mtbf > 0.0) {
        FaultPlan plan;
        plan.arrivals = std::make_shared<failure::RenewalProcess>(
            std::make_shared<failure::Exponential>(mtbf));
        plan.sdc_fraction = 0.0;
        plan.horizon = 0.3;  // storm across most of the run, then let it finish
        runtime.set_fault_plan(plan);
      }
      RunSummary s = runtime.run(60.0);
      table.add_row(
          {ckpt::scheme_name(scheme), mtbf > 0.0 ? "hard" : "none",
           s.complete ? "complete" : (s.failed ? "failed" : "wedged"),
           TablePrinter::fmt(s.finish_time, 4), std::to_string(s.checkpoints),
           std::to_string(s.hard_failures), std::to_string(s.recoveries),
           TablePrinter::fmt(
               static_cast<double>(s.parity_bytes_sent) / 1.0e6, 2),
           std::to_string(s.xor_rebuilds),
           std::to_string(s.scratch_restarts)});
    }
  }
  table.print();
  std::printf(
      "\nlocal keeps no remote copy (zero redundancy traffic; every hard "
      "failure is a scratch restart);\npartner mirrors the full image to "
      "the buddy replica; xor ships 1/(k-1) of an image per group member\n"
      "and rebuilds a dead member from k-1 survivors + parity.\n\n");
}

}  // namespace

int main() {
  redundancy_scheme_sweep();
  // 4 cores per BG/P node: 1k..64k cores per replica.
  const std::vector<int> nodes_per_replica = {256, 1024, 4096, 16384};
  const DetectionMode modes[] = {DetectionMode::FullDefault,
                                 DetectionMode::FullMixed,
                                 DetectionMode::FullColumn,
                                 DetectionMode::Checksum};

  for (const auto& app : apps::kTable2) {
    std::printf("Figure 8 — %s (%s, %s): single checkpoint overhead (s)\n",
                app.name, app.model, app.config);
    TablePrinter table({"cores/replica", "mode", "local ckpt", "transfer",
                        "comparison", "total"});
    for (int nodes : nodes_per_replica) {
      for (DetectionMode mode : modes) {
        PhaseModel pm(nodes, app);
        CheckpointPhases p = pm.checkpoint_phases(mode);
        table.add_row({std::to_string(nodes * apps::kCoresPerNode),
                       detection_mode_name(mode),
                       TablePrinter::fmt(p.local_checkpoint, 4),
                       TablePrinter::fmt(p.transfer, 4),
                       TablePrinter::fmt(p.comparison, 4),
                       TablePrinter::fmt(p.total(), 4)});
      }
    }
    table.print();
    std::printf("\n");
  }

  std::printf(
      "Paper shape check: default transfer grows ~4x from 1K to 4K cores "
      "per replica (Z: 8->32) then flattens;\ncolumn/mixed/checksum are "
      "scale-invariant; checksum wins for the small-checkpoint MD apps but "
      "loses to column\nfor the high-memory-pressure apps (extra ~4 "
      "instructions/byte of compute).\n");
  return 0;
}
