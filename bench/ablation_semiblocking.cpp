// Ablation (§4.2 future work, implemented): semi-blocking checkpointing.
//
// "Another way to reduce network congestion is to use asynchronous
// checkpointing that overlaps the checkpoint transmission with application
// execution. We leave implementation and analysis of this aspect for
// future work." — this bench provides that analysis on the virtual
// cluster: identical jobs with blocking vs semi-blocking checkpoints,
// sweeping the modelled transfer/compare cost.
#include <cstdio>

#include "acr/runtime.h"
#include "acr/stats.h"
#include "apps/jacobi3d.h"
#include "common/table.h"

using namespace acr;

namespace {

struct Result {
  double total_time = 0.0;
  double ckpt_fraction = 0.0;
  std::uint64_t checkpoints = 0;
  bool ok = false;
};

Result run(bool semi_blocking, double compare_bw, double link_bw) {
  apps::Jacobi3DConfig j;
  j.tasks_x = j.tasks_y = j.tasks_z = 2;
  j.block_x = j.block_y = j.block_z = 8;
  j.iterations = 60;
  j.slots_per_node = 2;
  j.seconds_per_point = 2e-6;

  AcrConfig ac;
  ac.checkpoint_interval = 0.002;
  ac.heartbeat_period = 0.0005;
  ac.heartbeat_timeout = 0.002;
  ac.semi_blocking = semi_blocking;

  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 1;
  cc.net.compare_bandwidth = compare_bw;
  cc.net.link_bandwidth = link_bw;

  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  RunSummary s = runtime.run(100.0);
  Result r;
  r.ok = s.complete;
  r.total_time = s.finish_time;
  r.checkpoints = s.checkpoints;
  r.ckpt_fraction = summarize_trace(runtime.trace()).checkpoint_time_fraction();
  return r;
}

}  // namespace

int main() {
  std::printf("Semi-blocking checkpointing ablation (§4.2 future work)\n\n");
  // Note: "req->commit" measures the checkpoint pipeline duration; in
  // semi-blocking mode the application executes *under* most of it, so it
  // no longer represents a stall.
  TablePrinter table({"compare/link BW (MB/s)", "blocking (s)",
                      "semi-blocking (s)", "speedup", "req->commit (blk)",
                      "req->commit (semi)"});
  struct Case {
    double compare_bw, link_bw;
  };
  for (Case c : {Case{250e6, 425e6}, Case{25e6, 80e6}, Case{5e6, 20e6}}) {
    Result blocking = run(false, c.compare_bw, c.link_bw);
    Result semi = run(true, c.compare_bw, c.link_bw);
    if (!blocking.ok || !semi.ok) {
      std::printf("a configuration did not complete!\n");
      return 1;
    }
    table.add_row({TablePrinter::fmt(c.compare_bw / 1e6, 3) + "/" +
                       TablePrinter::fmt(c.link_bw / 1e6, 3),
                   TablePrinter::fmt(blocking.total_time, 4),
                   TablePrinter::fmt(semi.total_time, 4),
                   TablePrinter::fmt(blocking.total_time / semi.total_time, 3),
                   TablePrinter::fmt(blocking.ckpt_fraction * 100, 3) + "%",
                   TablePrinter::fmt(semi.ckpt_fraction * 100, 3) + "%"});
  }
  table.print();
  std::printf(
      "\nClaim check: the slower the transfer/compare path, the more the "
      "overlap buys; with BG/P-like rates the\ncheckpoint stall is already "
      "small, which is why the paper could defer this optimization.\n");
  return 0;
}
