// Figure 9: ACR forward-path overhead per replica (%) for Jacobi3D and
// LeanMD when checkpointing at the model-optimal interval (§5), for the
// strong/medium/weak schemes under default / default+checksum / column /
// column+checksum detection variants, 1K-16K sockets per replica.
// Failure parameters follow §6.2: 50 years/socket hard MTBF, 10,000
// FIT/socket SDC.
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "model/acr_model.h"
#include "sim/phase_model.h"

using namespace acr;
using namespace acr::sim;

namespace {

struct Variant {
  const char* name;
  DetectionMode mode;
};

constexpr Variant kVariants[] = {
    {"default", DetectionMode::FullDefault},
    {"default+checksum", DetectionMode::Checksum},
    {"column", DetectionMode::FullColumn},
    {"column+checksum", DetectionMode::Checksum},
};

}  // namespace

int main() {
  const std::vector<int> sockets = {1024, 4096, 16384};
  const apps::MiniAppSpec* specs[] = {&apps::kTable2[0], &apps::kTable2[4]};

  for (const auto* app : specs) {
    std::printf("Figure 9 — %s: forward-path overhead per replica (%%)\n",
                app->name);
    TablePrinter table({"sockets/replica", "variant", "delta (s)",
                        "tau* strong (s)", "strong %", "medium %", "weak %"});
    for (int s : sockets) {
      for (const Variant& v : kVariants) {
        PhaseModel pm(s, *app);
        double delta = pm.checkpoint_phases(v.mode).total();

        model::SystemParams p;
        p.work = 24.0 * model::kSecondsPerHour;
        p.checkpoint_cost = delta;
        p.restart_hard = pm.restart_strong().total();
        p.restart_sdc = pm.restart_sdc().total();
        p.socket_mtbf_hard = 50.0 * model::kSecondsPerYear;
        p.sdc_fit_per_socket = 10000.0;
        p.sockets_per_replica = s;
        model::AcrModel m(p);

        auto forward_pct = [&](model::Scheme scheme) {
          model::SchemeEvaluation e = m.evaluate(scheme);
          return e.checkpoint_time / p.work * 100.0;
        };
        table.add_row(
            {std::to_string(s), v.name, TablePrinter::fmt(delta, 3),
             TablePrinter::fmt(m.optimal_tau(model::Scheme::Strong), 4),
             TablePrinter::fmt(forward_pct(model::Scheme::Strong), 3),
             TablePrinter::fmt(forward_pct(model::Scheme::Medium), 3),
             TablePrinter::fmt(forward_pct(model::Scheme::Weak), 3)});
      }
    }
    table.print();
    std::printf("\n");
  }

  std::printf(
      "Paper shape check: overhead grows with socket count (failure rate); "
      "strong checkpoints more often so it pays\nslightly more; checksum or "
      "column mapping roughly halves the default-mapping overhead; LeanMD "
      "is an order of\nmagnitude cheaper than Jacobi3D (its optimal "
      "interval at 16K sockets is tens of seconds vs ~130 s).\n");
  return 0;
}
