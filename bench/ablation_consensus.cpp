// Ablation (§2.2 claim): the asynchronous checkpoint consensus causes
// minimal application interference. Measures, on live Jacobi3D runs with
// increasing network jitter (progress skew between tasks), the time from
// checkpoint request to pack command — the window during which some tasks
// are paused — and relates it to the application iteration time.
#include <cstdio>
#include <vector>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "common/stats.h"
#include "common/table.h"

using namespace acr;

int main() {
  std::printf("Consensus-interference ablation (Fig. 3 protocol)\n\n");
  TablePrinter table({"app jitter", "checkpoints", "mean consensus (ms)",
                      "max consensus (ms)", "iteration time (ms)",
                      "consensus / iteration"});

  for (double jitter : {0.0, 0.1, 0.3, 0.6}) {
    apps::Jacobi3DConfig j;
    j.tasks_x = j.tasks_y = 2;
    j.tasks_z = 4;
    j.block_x = j.block_y = j.block_z = 6;
    j.iterations = 120;
    j.slots_per_node = 2;
    j.seconds_per_point = 5e-6;  // ~1.1 ms per iteration

    rt::ClusterConfig cc;
    cc.nodes_per_replica = j.nodes_needed();
    cc.spare_nodes = 0;
    cc.app_jitter = jitter;

    AcrConfig ac;
    ac.checkpoint_interval = 0.012;
    ac.heartbeat_period = 0.002;
    ac.heartbeat_timeout = 0.01;

    AcrRuntime runtime(ac, cc);
    runtime.set_task_factory(j.factory());
    runtime.setup();
    RunSummary s = runtime.run(60.0);
    if (!s.complete) {
      std::printf("run with jitter %.2f did not complete!\n", jitter);
      return 1;
    }

    // Pair each CheckpointRequested with the following CheckpointPacked.
    RunningStats consensus;
    double request_time = -1.0;
    for (const auto& e : runtime.trace().events()) {
      if (e.kind == rt::TraceKind::CheckpointRequested) request_time = e.time;
      if (e.kind == rt::TraceKind::CheckpointPacked && request_time >= 0.0) {
        consensus.add(e.time - request_time);
        request_time = -1.0;
      }
    }
    double iter_time = s.finish_time / static_cast<double>(j.iterations);
    table.add_row({TablePrinter::fmt(jitter, 2),
                   std::to_string(consensus.count()),
                   TablePrinter::fmt(consensus.mean() * 1e3, 3),
                   TablePrinter::fmt(consensus.max() * 1e3, 3),
                   TablePrinter::fmt(iter_time * 1e3, 3),
                   TablePrinter::fmt(consensus.mean() / iter_time, 3)});
  }
  table.print();
  std::printf(
      "\nClaim check: the consensus window stays on the order of one "
      "application iteration even as progress skew grows —\ntasks only ever "
      "wait for the slowest task to reach the agreed iteration, not for a "
      "global barrier.\n");
  return 0;
}
