// Figure 7: (a) utilization of the weak/medium/strong schemes and (b) the
// probability of an undetected SDC for weak/medium, for checkpoint costs
// delta = 15 s and 180 s, from 1K to 256K sockets per replica.
// Parameters follow §5: 24 h job, 50 years/socket hard MTBF, 100 FIT/socket.
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "model/acr_model.h"

using namespace acr;
using namespace acr::model;

int main() {
  const std::vector<int> sockets = {1024,  2048,  4096,   8192,  16384,
                                    32768, 65536, 131072, 262144};

  for (double delta : {15.0, 180.0}) {
    std::printf("Figure 7a: utilization, delta = %.0f s\n", delta);
    TablePrinter util({"sockets/replica", "weak", "medium", "strong",
                       "tau* weak (s)", "tau* strong (s)"});
    std::printf("Figure 7b companion: P(undetected SDC), delta = %.0f s\n\n",
                delta);
    TablePrinter vuln({"sockets/replica", "weak", "medium"});
    for (int s : sockets) {
      SystemParams p;
      p.work = 24.0 * kSecondsPerHour;
      p.checkpoint_cost = delta;
      p.restart_hard = 30.0;
      p.restart_sdc = 30.0;
      p.socket_mtbf_hard = 50.0 * kSecondsPerYear;
      p.sdc_fit_per_socket = 100.0;
      p.sockets_per_replica = s;
      AcrModel m(p);
      SchemeEvaluation weak = m.evaluate(Scheme::Weak);
      SchemeEvaluation medium = m.evaluate(Scheme::Medium);
      SchemeEvaluation strong = m.evaluate(Scheme::Strong);
      util.add_row({std::to_string(s), TablePrinter::fmt(weak.utilization, 4),
                    TablePrinter::fmt(medium.utilization, 4),
                    TablePrinter::fmt(strong.utilization, 4),
                    TablePrinter::fmt(weak.tau, 4),
                    TablePrinter::fmt(strong.tau, 4)});
      vuln.add_row({std::to_string(s),
                    TablePrinter::fmt(weak.prob_undetected_sdc, 4),
                    TablePrinter::fmt(medium.prob_undetected_sdc, 4)});
    }
    util.print();
    std::printf("\n");
    vuln.print();
    std::printf("\n");
  }

  std::printf(
      "Paper shape check: all schemes ~0.5 at 1K sockets; strong falls "
      "fastest (to ~1/3 at 256K with delta=180);\nmedium roughly halves the "
      "undetected-SDC probability of weak at negligible utilization cost.\n");
  return 0;
}
