// Figure 12: adaptivity of ACR to a changing failure rate. A Jacobi3D run
// on the virtual cluster with hard failures injected by a Weibull process
// with decreasing hazard (shape 0.6, ~19 failures over the run, as in the
// paper's 30-minute 512-core experiment). ACR re-derives the checkpoint
// interval from the observed MTBF: dense checkpoints early, sparse late.
//
// Prints the paper's timeline as text — one row per failure (F) and
// checkpoint commit (C) — plus the interval evolution summary.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "common/table.h"
#include "failure/distributions.h"

using namespace acr;

int main() {
  // Compressed-time analogue of the paper's run: the adaptivity logic only
  // sees inter-failure times, so scaling all times preserves the shape.
  apps::Jacobi3DConfig j;
  j.tasks_x = j.tasks_y = 4;
  j.tasks_z = 2;
  j.block_x = j.block_y = j.block_z = 4;
  j.iterations = 1200;
  j.slots_per_node = 2;  // 16 nodes per replica
  j.seconds_per_point = 2.5e-4;  // ~16 ms per iteration

  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 48;
  cc.seed = 20130101;

  AcrConfig ac;
  ac.scheme = ResilienceScheme::Strong;
  ac.adaptive = true;
  ac.adaptive_config.checkpoint_cost = 0.08;
  ac.adaptive_config.min_interval = 0.15;
  ac.adaptive_config.max_interval = 1.0;
  ac.adaptive_config.window = 6;
  ac.checkpoint_interval = 0.3;
  ac.heartbeat_period = 0.004;
  ac.heartbeat_timeout = 0.016;

  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();

  // Weibull process, shape 0.6; scale chosen for ~19 failures over ~20 s
  // of virtual time: Lambda(T) = (T/s)^0.6 = 19 -> s = T / 19^(1/0.6).
  FaultPlan plan;
  plan.arrivals = std::make_shared<failure::WeibullProcess>(0.6, 0.145);
  plan.sdc_fraction = 0.0;
  plan.horizon = 20.0;  // the paper's run has ~19 failures, front-loaded
  runtime.set_fault_plan(plan);

  // Probe the controller's chosen interval through the run.
  std::vector<std::pair<double, double>> probes;
  std::function<void()> probe = [&] {
    probes.emplace_back(runtime.engine().now(),
                        runtime.manager().current_interval());
    if (!runtime.manager().job_complete())
      runtime.engine().schedule_after(2.0, probe);
  };
  runtime.engine().schedule_after(2.0, probe);

  RunSummary s = runtime.run(600.0);

  std::printf("Figure 12: adaptive checkpointing under a decreasing "
              "failure rate (Weibull shape 0.6)\n\n");
  std::printf("run: complete=%d  virtual time=%.2f s  failures "
              "injected/detected=%llu/%llu  checkpoints=%llu\n\n",
              s.complete, s.finish_time,
              static_cast<unsigned long long>(
                  runtime.trace().count(rt::TraceKind::HardFailureInjected)),
              static_cast<unsigned long long>(s.hard_failures),
              static_cast<unsigned long long>(s.checkpoints));

  // Timeline (paper's black = failure, white = checkpoint).
  std::printf("timeline (F = failure injected, C = checkpoint committed):\n");
  std::vector<double> commits;
  double last_commit = 0.0;
  for (const auto& e : runtime.trace().events()) {
    if (e.kind == rt::TraceKind::HardFailureInjected) {
      std::printf("  %7.3f  F  node (%d,%d)\n", e.time, e.replica,
                  e.node_index);
    } else if (e.kind == rt::TraceKind::CheckpointCommitted) {
      std::printf("  %7.3f  C  interval since last: %.3f s\n", e.time,
                  e.time - last_commit);
      commits.push_back(e.time);
      last_commit = e.time;
    }
  }

  std::printf("\ncontroller interval over the run (the Fig. 12 signal):\n");
  for (const auto& [t, interval] : probes)
    std::printf("  t=%6.2f s   interval=%.3f s\n", t, interval);
  if (probes.size() >= 2) {
    double early = probes.front().second;
    double late = probes.back().second;
    std::printf(
        "\ncheckpoint interval: %.3f s while failures are frequent -> "
        "%.3f s once the hazard decays (%.1fx stretch)\n",
        early, late, late / early);
    std::printf(
        "paper analogue: 6 s at the start of the run -> 17 s at the end "
        "(~2.8x) on 512 cores of BG/P.\n");
  }
  return 0;
}
