// Figure 11: overall ACR overhead per replica (%) — checkpointing plus
// recovery plus rework at the optimal interval — for Jacobi3D and LeanMD,
// cross-validated two ways: the §5 closed-form model and the Monte-Carlo
// lifetime simulator playing actual failure traces.
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "model/acr_model.h"
#include "sim/lifetime.h"
#include "sim/phase_model.h"

using namespace acr;
using namespace acr::sim;

namespace {

struct Variant {
  const char* name;
  DetectionMode mode;
};

constexpr Variant kVariants[] = {
    {"default", DetectionMode::FullDefault},
    {"default+checksum", DetectionMode::Checksum},
    {"column", DetectionMode::FullColumn},
};

}  // namespace

int main() {
  const std::vector<int> sockets = {1024, 4096, 16384};
  const apps::MiniAppSpec* specs[] = {&apps::kTable2[0], &apps::kTable2[4]};

  for (const auto* app : specs) {
    std::printf("Figure 11 — %s: overall overhead per replica (%%)\n",
                app->name);
    TablePrinter table({"sockets/replica", "variant", "scheme", "model %",
                        "montecarlo %", "P(undetected)"});
    for (int s : sockets) {
      for (const Variant& v : kVariants) {
        PhaseModel pm(s, *app);
        double delta = pm.checkpoint_phases(v.mode).total();

        model::SystemParams p;
        p.work = 24.0 * model::kSecondsPerHour;
        p.checkpoint_cost = delta;
        p.restart_hard = pm.restart_strong().total();
        p.restart_sdc = pm.restart_sdc().total();
        p.socket_mtbf_hard = 50.0 * model::kSecondsPerYear;
        p.sdc_fit_per_socket = 10000.0;
        p.sockets_per_replica = s;
        model::AcrModel m(p);

        for (model::Scheme scheme :
             {model::Scheme::Strong, model::Scheme::Medium,
              model::Scheme::Weak}) {
          double tau = m.optimal_tau(scheme);
          model::SchemeEvaluation e = m.evaluate_at(scheme, tau);
          double model_pct = (e.total_time - p.work) / p.work * 100.0;

          LifetimeConfig lc;
          lc.work = p.work;
          lc.tau = tau;
          lc.checkpoint_cost = delta;
          lc.restart_hard = p.restart_hard;
          lc.restart_sdc = p.restart_sdc;
          lc.scheme = scheme;
          lc.hard_mtbf = p.system_hard_mtbf();
          lc.sdc_mtbf = p.system_sdc_mtbf();
          lc.trials = 60;
          lc.seed = 1234 + s;
          LifetimeResult r = simulate_lifetime(lc);

          table.add_row({std::to_string(s), v.name,
                         model::scheme_name(scheme),
                         TablePrinter::fmt(model_pct, 3),
                         TablePrinter::fmt(r.mean_overhead_fraction * 100.0, 3),
                         TablePrinter::fmt(r.prob_undetected_sdc, 3)});
        }
      }
    }
    table.print();
    std::printf("\n");
  }

  std::printf(
      "Paper shape check: strong costs the most overall (rework on every "
      "hard error) despite its cheaper restart;\noptimizations (column "
      "mapping / checksum) cut Jacobi3D overhead roughly in half (paper: "
      "3%% -> 1.4%%); LeanMD\nstays under ~0.5%%.\n");
  return 0;
}
