// Figure 10: single-restart overhead decomposition (checkpoint transfer /
// reconstruction) for the six mini-app variants, comparing the strong
// scheme (one point-to-point checkpoint) with the medium/weak scheme
// (all-buddies transfer) under default / mixed / column mappings.
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "sim/phase_model.h"

using namespace acr;
using namespace acr::sim;

int main() {
  const std::vector<int> nodes_per_replica = {256, 1024, 4096, 16384};

  for (const auto& app : apps::kTable2) {
    std::printf("Figure 10 — %s: single restart overhead (s)\n", app.name);
    TablePrinter table({"cores/replica", "variant", "transfer",
                        "reconstruction", "total"});
    for (int nodes : nodes_per_replica) {
      PhaseModel pm(nodes, app);
      auto add = [&](const char* name, RestartPhases r) {
        table.add_row({std::to_string(nodes * apps::kCoresPerNode), name,
                       TablePrinter::fmt(r.transfer, 4),
                       TablePrinter::fmt(r.reconstruction, 4),
                       TablePrinter::fmt(r.total(), 4)});
      };
      add("strong", pm.restart_strong());
      add("medium (default)", pm.restart_medium(topo::MappingScheme::Default));
      add("medium (mixed)", pm.restart_medium(topo::MappingScheme::Mixed));
      add("medium (column)", pm.restart_medium(topo::MappingScheme::Column));
    }
    table.print();
    std::printf("\n");
  }

  std::printf(
      "Paper shape check: strong ships exactly one checkpoint and is "
      "mapping-independent; medium with the default mapping\nhits the same "
      "bisection congestion as checkpointing (Jacobi3D ~2 s -> ~0.4 s with "
      "column mapping); for LeanMD the\nrestart barriers dominate and grow "
      "slowly with core count.\n");
  return 0;
}
