// Staged-codec sweep: bytes on the wire with the checkpoint codec off vs
// delta-only vs compress-only vs delta+compress, fault-free, on two apps
// with opposite dirty-chunk behaviour:
//
//  - Jacobi3D with a localized initial impulse (init_fill_fraction):
//    blocks ahead of the update front stay exactly zero, so their 256 KiB
//    chunks are bit-identical across epochs — the delta stage skips them
//    entirely — and the zero runs that do ship compress away. This is the
//    headline ≥30% wire reduction.
//  - LeanMD: every atom moves every step, so every chunk of the packed
//    stream changes between epochs and the delta hit rate collapses to
//    ~0; only compression helps. The codec must degrade gracefully, not
//    pessimize.
//
// Reports buddy wire traffic (codec_wire_bytes vs codec_raw_bytes, hit
// rate = skipped/total chunks), XOR parity-delta traffic, and durable-tier
// flush bytes (encoded vs raw). Writes BENCH_delta.json for trajectory
// comparison across commits, and prints the analytic model's predicted
// checkpoint-cost scale (model::delta_cost_scale) fed with the measured
// hit rate and compression ratio.
#include <cstdio>
#include <string>
#include <vector>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "apps/leanmd.h"
#include "common/table.h"
#include "model/acr_model.h"

using namespace acr;

namespace {

struct SweepPoint {
  std::string app;
  std::string mode;    // off | delta | lz | delta+lz
  std::string scheme;  // partner | xor
  RunSummary summary;
  double l2_written = 0.0;
  double l2_raw = 0.0;
};

apps::Jacobi3DConfig jacobi_app() {
  apps::Jacobi3DConfig j;
  j.tasks_x = j.tasks_y = 1;
  j.tasks_z = 4;
  // One 64^3 task per node: ~2.3 MiB images spanning ~9 digest chunks.
  // A single task per node matters — every task's pup stream leads with
  // its iteration counter, which dirties the chunk it lands in, so tasks
  // must be large enough that one metadata chunk amortizes over many
  // clean lattice chunks.
  j.block_x = j.block_y = j.block_z = 64;
  j.iterations = 40;
  j.slots_per_node = 1;
  j.seconds_per_point = 2e-8;
  // Seed only the first task's layer: the impulse moves one plane per
  // iteration, so it is still 24 planes short of node 2 when the run
  // ends — nodes 2 and 3 stay bitwise clean throughout.
  j.init_fill_fraction = 0.25;
  return j;
}

apps::LeanMdConfig leanmd_app() {
  apps::LeanMdConfig m;
  m.atoms_per_task = 2500;  // ~140 KB/task, 2 tasks/node => multi-chunk
  m.num_tasks = 4;
  m.slots_per_node = 2;
  m.iterations = 6;
  m.seconds_per_pair = 2e-9;
  return m;
}

ckpt::CodecConfig codec_mode(const std::string& mode) {
  ckpt::CodecConfig c;
  if (mode == "delta" || mode == "delta+lz") c.delta = ckpt::DeltaMode::On;
  if (mode == "lz" || mode == "delta+lz") c.compress = ckpt::CompressMode::Lz;
  return c;
}

AcrConfig sweep_acr(const std::string& mode, const std::string& scheme,
                    double checkpoint_interval) {
  AcrConfig ac;
  ac.scheme = ResilienceScheme::Strong;
  ac.redundancy =
      scheme == "xor" ? ckpt::Scheme::Xor : ckpt::Scheme::Partner;
  ac.checkpoint_interval = checkpoint_interval;
  ac.heartbeat_period = 0.0004;
  ac.heartbeat_timeout = 0.0016;
  ac.tier.bandwidth = 1e9;  // L2 on so flush traffic shows codec savings
  ac.tier.flush_interval = 2;
  ac.codec = codec_mode(mode);
  return ac;
}

template <typename AppConfig>
SweepPoint run_point(const std::string& app_name, const AppConfig& app,
                     const std::string& mode, const std::string& scheme,
                     double checkpoint_interval) {
  rt::ClusterConfig cc;
  cc.nodes_per_replica = app.nodes_needed();
  cc.spare_nodes = 0;
  cc.seed = 42;
  AcrRuntime runtime(sweep_acr(mode, scheme, checkpoint_interval), cc);
  runtime.set_task_factory(app.factory());
  runtime.setup();
  SweepPoint p;
  p.app = app_name;
  p.mode = mode;
  p.scheme = scheme;
  p.summary = runtime.run(120.0);
  p.l2_written = runtime.cluster().l2_stats().bytes_written;
  p.l2_raw = runtime.cluster().l2_stats().bytes_raw_written;
  return p;
}

double hit_rate(const RunSummary& s) {
  if (s.codec_chunks_total == 0) return 0.0;
  return 1.0 - static_cast<double>(s.codec_chunks_shipped) /
                   static_cast<double>(s.codec_chunks_total);
}

double wire_reduction(const RunSummary& s) {
  if (s.codec_raw_bytes == 0) return 0.0;
  return 1.0 - static_cast<double>(s.codec_wire_bytes) /
                   static_cast<double>(s.codec_raw_bytes);
}

}  // namespace

int main() {
  std::printf(
      "Staged-codec sweep: fault-free wire traffic, codec off vs delta "
      "vs lz vs delta+lz\n(hit = fraction of chunks skipped as clean; "
      "red = 1 - wire/raw bytes on the buddy path)\n\n");

  std::vector<SweepPoint> points;
  const double jacobi_ival = 0.002;  // ~12 epochs: deltas amortize the
                                     // mandatory first full frame
  for (const char* mode : {"off", "delta", "lz", "delta+lz"})
    points.push_back(
        run_point("jacobi3d", jacobi_app(), mode, "partner", jacobi_ival));
  for (const char* mode : {"off", "delta+lz"})
    points.push_back(
        run_point("jacobi3d", jacobi_app(), mode, "xor", jacobi_ival));
  points.push_back(
      run_point("leanmd", leanmd_app(), "delta+lz", "partner", 0.002));

  TablePrinter table({"app", "scheme", "mode", "status", "frames", "full",
                      "hit %", "wire MB", "raw MB", "red %", "parity MB",
                      "l2 MB (raw)"});
  for (const SweepPoint& p : points) {
    const RunSummary& s = p.summary;
    char l2buf[64];
    std::snprintf(l2buf, sizeof l2buf, "%.2f (%.2f)", p.l2_written / 1e6,
                  p.l2_raw / 1e6);
    table.add_row(
        {p.app, p.scheme, p.mode, s.complete ? "complete" : "DID NOT FINISH",
         std::to_string(s.codec_frames), std::to_string(s.codec_full_frames),
         TablePrinter::fmt(100.0 * hit_rate(s), 1),
         TablePrinter::fmt(static_cast<double>(s.codec_wire_bytes) / 1e6, 3),
         TablePrinter::fmt(static_cast<double>(s.codec_raw_bytes) / 1e6, 3),
         TablePrinter::fmt(100.0 * wire_reduction(s), 1),
         TablePrinter::fmt(static_cast<double>(s.parity_delta_bytes) / 1e6,
                           3),
         l2buf});
  }
  table.print();

  // Analytic cross-check: feed the measured jacobi delta+lz hit rate and
  // compression ratio into the model's checkpoint-cost scale d' and the
  // re-optimized delta evaluation.
  const SweepPoint& head = points[3];  // jacobi partner delta+lz
  model::DeltaParams dp;
  dp.hit_rate = hit_rate(head.summary);
  dp.compress_ratio =
      head.summary.codec_raw_bytes == 0
          ? 1.0
          : static_cast<double>(head.summary.codec_wire_bytes) /
                static_cast<double>(head.summary.codec_raw_bytes) /
                std::max(1e-9, 1.0 - dp.hit_rate);
  model::SystemParams mp;
  mp.work = points[0].summary.finish_time;
  mp.checkpoint_cost = jacobi_ival / 20.0;
  mp.restart_hard = 0.001;
  mp.restart_sdc = 0.001;
  mp.sockets_per_replica = 8;
  model::AcrModel model(mp);
  model::DeltaEvaluation ev =
      model.evaluate_delta(model::Scheme::Strong, dp);
  std::printf(
      "\nmodel: measured hit %.1f%%, per-shipped-chunk compress ratio "
      "%.3f -> checkpoint-cost scale d'=%.3f, overhead speedup %.3fx\n",
      100.0 * dp.hit_rate, dp.compress_ratio, ev.cost_scale, ev.speedup);

  std::FILE* out = std::fopen("BENCH_delta.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      const RunSummary& s = p.summary;
      std::fprintf(
          out,
          "  {\"app\": \"%s\", \"scheme\": \"%s\", \"mode\": \"%s\", "
          "\"complete\": %s, \"finish_time\": %.9f, "
          "\"codec_frames\": %llu, \"full_frames\": %llu, "
          "\"chunks_total\": %llu, \"chunks_shipped\": %llu, "
          "\"hit_rate\": %.6f, \"wire_bytes\": %llu, \"raw_bytes\": %llu, "
          "\"wire_reduction\": %.6f, \"need_full\": %llu, "
          "\"parity_delta_bytes\": %llu, \"l2_delta_blobs\": %llu, "
          "\"l2_bytes_written\": %.1f, \"l2_bytes_raw\": %.1f}%s\n",
          p.app.c_str(), p.scheme.c_str(), p.mode.c_str(),
          s.complete ? "true" : "false", s.finish_time,
          static_cast<unsigned long long>(s.codec_frames),
          static_cast<unsigned long long>(s.codec_full_frames),
          static_cast<unsigned long long>(s.codec_chunks_total),
          static_cast<unsigned long long>(s.codec_chunks_shipped),
          hit_rate(s),
          static_cast<unsigned long long>(s.codec_wire_bytes),
          static_cast<unsigned long long>(s.codec_raw_bytes),
          wire_reduction(s),
          static_cast<unsigned long long>(s.codec_need_full),
          static_cast<unsigned long long>(s.parity_delta_bytes),
          static_cast<unsigned long long>(s.l2_delta_blobs), p.l2_written,
          p.l2_raw, i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out, " ],\n \"model_cost_scale\": %.6f\n}\n",
                 ev.cost_scale);
    std::fclose(out);
    std::printf("wrote BENCH_delta.json\n");
  }

  // The headline acceptance number: delta+lz must cut jacobi buddy wire
  // traffic by at least 30% vs the raw images those frames stand for.
  if (wire_reduction(head.summary) < 0.30) {
    std::printf("\nFAIL: jacobi delta+lz wire reduction %.1f%% < 30%%\n",
                100.0 * wire_reduction(head.summary));
    return 1;
  }
  return 0;
}
