// Figure 1: overall system utilization and vulnerability to SDC for a
// 120-hour job, as socket count (4K - 1M) and per-socket SDC rate
// (1 - 10000 FIT) vary, under three regimes:
//   (a) no fault tolerance,
//   (b) hard-error checkpoint/restart only,
//   (c) ACR (replication + checkpointing, strong scheme).
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "model/acr_model.h"

using namespace acr;
using namespace acr::model;

int main() {
  const double work = 120.0 * kSecondsPerHour;
  const double socket_mtbf = 50.0 * kSecondsPerYear;
  const double delta = 60.0;        // checkpoint cost at this scale
  const double restart = 30.0;
  const std::vector<int> sockets = {4096,   16384,  65536,
                                    262144, 1048576};
  const std::vector<double> fits = {1.0, 100.0, 10000.0};

  std::printf(
      "Figure 1: utilization / vulnerability surfaces (120 h job, "
      "50 y/socket hard MTBF)\n\n");

  TablePrinter table({"sockets", "SDC FIT", "noFT util", "noFT vuln",
                      "CR util", "CR vuln", "ACR util", "ACR vuln"});
  for (int s : sockets) {
    for (double fit : fits) {
      BaselinePoint noft = model_no_ft(work, s, socket_mtbf, fit);
      BaselinePoint cr =
          model_checkpoint_only(work, s, socket_mtbf, fit, delta, restart);
      BaselinePoint acr =
          model_acr(work, s, socket_mtbf, fit, delta, restart, restart);
      table.add_row({std::to_string(s), TablePrinter::fmt(fit, 5),
                     TablePrinter::fmt(noft.utilization, 3),
                     TablePrinter::fmt(noft.vulnerability, 3),
                     TablePrinter::fmt(cr.utilization, 3),
                     TablePrinter::fmt(cr.vulnerability, 3),
                     TablePrinter::fmt(acr.utilization, 3),
                     TablePrinter::fmt(acr.vulnerability, 3)});
    }
  }
  table.print();

  std::printf(
      "\nPaper shape check: (a) no-FT utilization collapses past 16K "
      "sockets and vulnerability saturates;\n(b) checkpoint/restart keeps "
      "utilization up but stays fully vulnerable;\n(c) ACR pins "
      "vulnerability to zero at a near-constant ~0.5x utilization cost.\n");
  return 0;
}
