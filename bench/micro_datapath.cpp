// Microbenchmark (google-benchmark): the zero-copy checkpoint data path.
//
// Quantifies the three wins of the shared-buffer layer:
//   1. arena reuse — packing into a persistent BufferBuilder vs a fresh
//      allocation every epoch (the old Packer behavior). Allocations per
//      epoch are reported as a counter, not inferred from timing.
//   2. one-pass checksum — folding the Fletcher-64 buddy digest through a
//      tee while packing vs packing and then rescanning the image (§4.2:
//      the digest costs compute either way, but the second traversal of a
//      cache-cold image is pure overhead).
//   3. broadcast fan-out — sharing one payload Buffer across N recipients
//      vs copying the payload per recipient.
#include <benchmark/benchmark.h>

#include <vector>

#include "buf/buffer.h"
#include "checksum/fletcher.h"
#include "checksum/sink.h"
#include "common/rng.h"
#include "pup/pup.h"

namespace {

struct BigState {
  std::vector<double> a, b, c;
  void pup(acr::pup::Puper& p) {
    p | a;
    p | b;
    p | c;
  }
};

BigState make_state(std::size_t doubles) {
  BigState s;
  acr::Pcg32 rng(doubles, 5);
  s.a.resize(doubles / 3);
  s.b.resize(doubles / 3);
  s.c.resize(doubles - 2 * (doubles / 3));
  for (auto* v : {&s.a, &s.b, &s.c})
    for (auto& x : *v) x = rng.uniform();
  return s;
}

// --- 1. pack epoch: fresh allocation vs arena reuse -------------------------

void BM_PackEpoch_FreshAlloc(benchmark::State& state) {
  BigState s = make_state(static_cast<std::size_t>(state.range(0)));
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    // A builder per epoch: every take() hits the allocator (old behavior).
    acr::buf::BufferBuilder builder;
    acr::pup::Packer p(builder);
    p | s;
    acr::buf::Buffer image = p.take_buffer();
    benchmark::DoNotOptimize(image.data());
    allocs += builder.stats().arena_allocations;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 8);
  state.counters["allocs_per_epoch"] =
      benchmark::Counter(static_cast<double>(allocs),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_PackEpoch_FreshAlloc)->Range(1 << 10, 1 << 20);

void BM_PackEpoch_ArenaReuse(benchmark::State& state) {
  BigState s = make_state(static_cast<std::size_t>(state.range(0)));
  // Double-buffered store, as NodeAgent keeps it: verified + candidate.
  acr::buf::BufferBuilder builder;
  acr::buf::Buffer verified, candidate;
  for (auto _ : state) {
    acr::pup::Packer p(builder);
    p | s;
    verified = std::move(candidate);
    candidate = p.take_buffer();
    benchmark::DoNotOptimize(candidate.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 8);
  state.counters["allocs_per_epoch"] = benchmark::Counter(
      static_cast<double>(builder.stats().arena_allocations),
      benchmark::Counter::kAvgIterations);
  state.counters["arena_reuses"] =
      benchmark::Counter(static_cast<double>(builder.stats().arena_reuses),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_PackEpoch_ArenaReuse)->Range(1 << 10, 1 << 20);

// --- 2. checksum epoch: pack-then-rescan vs one-pass tee --------------------

void BM_ChecksumEpoch_TwoPass(benchmark::State& state) {
  BigState s = make_state(static_cast<std::size_t>(state.range(0)));
  acr::buf::BufferBuilder builder;
  acr::buf::Buffer verified, candidate;
  for (auto _ : state) {
    acr::pup::Packer p(builder);
    p | s;
    verified = std::move(candidate);
    candidate = p.take_buffer();
    // Second traversal over the finished image (old NodeAgent::after_pack).
    benchmark::DoNotOptimize(acr::checksum::fletcher64(candidate.bytes()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 8);
}
BENCHMARK(BM_ChecksumEpoch_TwoPass)->Range(1 << 10, 1 << 20);

void BM_ChecksumEpoch_OnePass(benchmark::State& state) {
  BigState s = make_state(static_cast<std::size_t>(state.range(0)));
  acr::buf::BufferBuilder builder;
  acr::buf::Buffer verified, candidate;
  for (auto _ : state) {
    acr::checksum::Fletcher64Sink sink;
    acr::pup::Packer p(builder);
    p.tee(&sink);
    p | s;
    verified = std::move(candidate);
    candidate = p.take_buffer();
    benchmark::DoNotOptimize(sink.digest());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 8);
}
BENCHMARK(BM_ChecksumEpoch_OnePass)->Range(1 << 10, 1 << 20);

// --- 3. broadcast fan-out: copy per recipient vs shared Buffer --------------

constexpr int kRecipients = 64;

void BM_Broadcast_CopyPerRecipient(benchmark::State& state) {
  std::vector<std::byte> payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    for (int i = 0; i < kRecipients; ++i) {
      std::vector<std::byte> per_msg = payload;  // old per-message copy
      benchmark::DoNotOptimize(per_msg.data());
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * kRecipients);
}
BENCHMARK(BM_Broadcast_CopyPerRecipient)->Range(1 << 6, 1 << 16);

void BM_Broadcast_SharedBuffer(benchmark::State& state) {
  std::vector<std::byte> payload(static_cast<std::size_t>(state.range(0)));
  acr::buf::Buffer buffer = acr::buf::Buffer::copy_of(payload);
  for (auto _ : state) {
    for (int i = 0; i < kRecipients; ++i) {
      acr::buf::Buffer per_msg = buffer;  // refcount bump
      benchmark::DoNotOptimize(per_msg.data());
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * kRecipients);
}
BENCHMARK(BM_Broadcast_SharedBuffer)->Range(1 << 6, 1 << 16);

}  // namespace

BENCHMARK_MAIN();
