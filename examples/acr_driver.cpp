// acr_driver — configurable command-line front end for the framework.
//
// Runs any of the five mini-apps under any recovery scheme with optional
// fault injection, adaptivity, and prediction, then prints the run summary
// and the trace analytics. This is the "just try it" binary:
//
//   ./build/examples/acr_driver --app=jacobi --scheme=strong \
//       --nodes=8 --interval=0.004 --fault-mtbf=0.02 --sdc-fraction=0.3
//
//   ./build/examples/acr_driver --app=leanmd --adaptive --weibull-shape=0.6
//
//   ./build/examples/acr_driver --help
#include <cmath>
#include <cstdio>
#include <utility>

#include "acr/runtime.h"
#include "acr/stats.h"
#include "apps/hpccg.h"
#include "checksum/kernels.h"
#include "parallel/pool.h"
#include "apps/jacobi3d.h"
#include "apps/leanmd.h"
#include "apps/minilulesh.h"
#include "apps/minimd.h"
#include "common/cli.h"
#include "failure/distributions.h"

using namespace acr;

int main(int argc, char** argv) {
  std::string app = "jacobi";
  std::string scheme = "strong";
  std::string detection = "full";
  std::string ckpt_scheme = "partner";
  std::string ckpt_delta = "off";
  std::string ckpt_compress = "none";
  int xor_group_size = -1;  // sentinel: unset; defaults to 4 under xor/rs
  int rs_parity = -1;       // sentinel: unset; defaults to 2 under rs
  int nodes = 8;
  int spares = 4;
  int iterations = 60;
  double interval = 0.004;
  bool adaptive = false;
  double fault_mtbf = 0.0;
  double sdc_fraction = 0.3;
  double weibull_shape = 0.0;
  double burst_mtbf = 0.0;
  double burst_shape = 0.0;
  double burst_follow = 0.5;
  double burst_window = 0.002;
  int burst_domain = 4;
  double spare_repair_time = 0.0;
  std::string degrade = "abort";
  double predictor_recall = 0.0;
  double net_loss = 0.0;
  double net_dup = 0.0;
  double net_reorder = 0.0;
  double net_corrupt = 0.0;
  int net_retry_budget = 10;
  double l2_bandwidth = 0.0;
  double l2_latency = std::nan("");  // sentinel: unset, take TierConfig default
  int flush_interval = -1;   // sentinel: unset, take the TierConfig default
  double halt_after = 0.0;
  std::string kernel_impl = "auto";
  int kernel_threads = 0;
  int engine_lanes = -1;  // sentinel: unset, inherit ACR_ENGINE_LANES
  std::uint64_t seed = 1;
  bool trace = false;

  CliParser cli(
      "acr_driver — run a mini-app under ACR's replication-enhanced "
      "checkpoint/restart on the virtual cluster");
  cli.add_choice("app", &app, {"jacobi", "hpccg", "lulesh", "leanmd", "minimd"},
                 "mini-application to run");
  cli.add_choice("scheme", &scheme, {"strong", "medium", "weak", "hardonly"},
                 "recovery scheme (§2.3)");
  cli.add_choice("detection", &detection, {"full", "checksum"},
                 "SDC detection method (§4.2)");
  cli.add_choice("ckpt-scheme", &ckpt_scheme, {"local", "partner", "xor", "rs"},
                 "checkpoint redundancy: local (in-memory only), partner "
                 "(buddy copy, the paper's §2.1), xor (RAID-5 group parity), "
                 "rs (Reed-Solomon: any --rs-parity losses per group)");
  cli.add_choice("ckpt-delta", &ckpt_delta, {"off", "on"},
                 "incremental checkpoints: ship only 256 KiB chunks whose "
                 "CRC32C changed since the base epoch (buddy transfer, xor "
                 "parity exchange, L2 flushes); off = legacy full images");
  cli.add_choice("ckpt-compress", &ckpt_compress, {"none", "lz"},
                 "per-chunk deterministic LZ compression of checkpoint "
                 "traffic (composes with --ckpt-delta)");
  cli.add_int("xor-group-size", &xor_group_size,
              "nodes per xor/rs parity group (>= 2; a trailing remainder of "
              "1 is merged into the previous group; default 4)");
  cli.add_int("rs-parity", &rs_parity,
              "parity blocks per Reed-Solomon stripe: the group survives "
              "that many dead members (>= 1, < the smallest group's size; "
              "default 2; requires --ckpt-scheme=rs)");
  cli.add_int("nodes", &nodes, "nodes per replica");
  cli.add_int("spares", &spares, "spare node pool size");
  cli.add_int("iterations", &iterations, "application iterations");
  cli.add_double("interval", &interval, "checkpoint interval, seconds");
  cli.add_flag("adaptive", &adaptive, "adapt the interval to failures (§2.2)");
  cli.add_double("fault-mtbf", &fault_mtbf,
                 "mean time between injected faults (0 = no injection)");
  cli.add_double("sdc-fraction", &sdc_fraction,
                 "fraction of injected faults that are bit flips");
  cli.add_double("weibull-shape", &weibull_shape,
                 "use a Weibull failure process with this shape (0 = Poisson)");
  cli.add_double("burst-mtbf", &burst_mtbf,
                 "mean time between correlated burst seed failures; seeds "
                 "strike any alive hardware node, spares included (0 = off)");
  cli.add_double("burst-shape", &burst_shape,
                 "Weibull shape of the burst seed process (0 = Poisson)");
  cli.add_double("burst-follow", &burst_follow,
                 "probability each live failure-domain peer of a burst seed "
                 "also fails");
  cli.add_double("burst-window", &burst_window,
                 "follower deaths land within this many seconds of the seed");
  cli.add_int("burst-domain", &burst_domain,
              "hardware nodes per failure domain (one blade/X-line of the "
              "derived torus)");
  cli.add_double("spare-repair-time", &spare_repair_time,
                 "mean node repair time; repaired hardware re-enters the "
                 "spare pool (0 = dead stays dead)");
  cli.add_choice("degrade", &degrade, {"abort", "shrink"},
                 "on spare-pool exhaustion: abort the job, or shrink — "
                 "double the dead role up onto a surviving node and "
                 "un-double when a repair refills the pool");
  cli.add_double("predictor-recall", &predictor_recall,
                 "enable the failure predictor with this recall (0 = off)");
  cli.add_double("net-loss", &net_loss,
                 "per-frame network drop probability [0,1]");
  cli.add_double("net-dup", &net_dup,
                 "per-frame network duplication probability [0,1]");
  cli.add_double("net-reorder", &net_reorder,
                 "per-frame extra-latency (reordering) probability [0,1]");
  cli.add_double("net-corrupt", &net_corrupt,
                 "per-frame in-flight bit-flip probability [0,1]");
  cli.add_int("net-retry-budget", &net_retry_budget,
              "retransmits per frame before a link is declared failed");
  cli.add_double("l2-bandwidth", &l2_bandwidth,
                 "simulated durable-tier (burst buffer) write bandwidth in "
                 "bytes/second; 0 disables the tier entirely");
  cli.add_double("l2-latency", &l2_latency,
                 "per-chunk durable-tier access latency, seconds "
                 "(default 1e-4; requires --l2-bandwidth > 0)");
  cli.add_int("flush-interval", &flush_interval,
              "flush every Nth committed checkpoint epoch to the durable "
              "tier (default 1; requires --l2-bandwidth > 0)");
  cli.add_double("halt-after", &halt_after,
                 "at this virtual time, stop checkpointing, drain the newest "
                 "verified epoch to the durable tier, and exit cleanly "
                 "(0 = run to completion; requires --l2-bandwidth > 0)");
  cli.add_choice("kernel-impl", &kernel_impl, {"auto", "portable", "hw"},
                 "data-plane CRC32C kernel: auto (cpuid), portable "
                 "(slicing-by-8 tables), hw (SSE4.2 crc32q); digests are "
                 "bit-identical either way");
  cli.add_int("kernel-threads", &kernel_threads,
              "worker threads for chunked digests / parity folds / image "
              "copies below the DES (0 = serial; simulation output is "
              "bit-identical at any value)");
  cli.add_int("engine-lanes", &engine_lanes,
              "event-queue shards with conservative lookahead (1 = serial "
              "single-heap path; unset inherits ACR_ENGINE_LANES; simulation "
              "output is bit-identical at any value)");
  cli.add_uint64("seed", &seed, "master random seed");
  cli.add_flag("trace", &trace, "print the full protocol event trace");
  if (!cli.parse(argc, argv)) return 2;

  const std::pair<const char*, double> net_rates[] = {
      {"net-loss", net_loss},
      {"net-dup", net_dup},
      {"net-reorder", net_reorder},
      {"net-corrupt", net_corrupt}};
  for (const auto& [name, rate] : net_rates) {
    if (rate < 0.0 || rate > 1.0) {
      std::fprintf(stderr, "error: --%s=%g outside [0, 1]\n", name, rate);
      return 2;
    }
  }
  if (net_retry_budget < 1) {
    std::fprintf(stderr, "error: --net-retry-budget=%d must be >= 1\n",
                 net_retry_budget);
    return 2;
  }
  if (burst_follow < 0.0 || burst_follow > 1.0) {
    std::fprintf(stderr, "error: --burst-follow=%g outside [0, 1]\n",
                 burst_follow);
    return 2;
  }
  if (burst_window < 0.0) {
    std::fprintf(stderr, "error: --burst-window=%g must be >= 0\n",
                 burst_window);
    return 2;
  }
  if (burst_domain < 1) {
    std::fprintf(stderr, "error: --burst-domain=%d must be >= 1\n",
                 burst_domain);
    return 2;
  }
  if (spare_repair_time < 0.0) {
    std::fprintf(stderr, "error: --spare-repair-time=%g must be >= 0\n",
                 spare_repair_time);
    return 2;
  }
  if (kernel_impl == "hw" && !checksum::hw_kernels_available()) {
    std::fprintf(stderr,
                 "error: --kernel-impl=hw but this CPU has no SSE4.2; use "
                 "auto or portable\n");
    return 2;
  }
  if (kernel_threads < 0) {
    std::fprintf(stderr, "error: --kernel-threads=%d must be >= 0\n",
                 kernel_threads);
    return 2;
  }
  if (engine_lanes == 0 || engine_lanes < -1) {
    std::fprintf(stderr, "error: --engine-lanes=%d must be >= 1\n",
                 engine_lanes);
    return 2;
  }
  if (l2_bandwidth < 0.0) {
    std::fprintf(stderr, "error: --l2-bandwidth=%g must be >= 0 (0 disables)\n",
                 l2_bandwidth);
    return 2;
  }
  if (l2_bandwidth == 0.0) {
    // The tier is off; reject flags that silently depend on it.
    if (!std::isnan(l2_latency)) {
      std::fprintf(stderr,
                   "error: --l2-latency requires --l2-bandwidth > 0 (the "
                   "durable tier is disabled)\n");
      return 2;
    }
    if (flush_interval != -1) {
      std::fprintf(stderr,
                   "error: --flush-interval requires --l2-bandwidth > 0 (the "
                   "durable tier is disabled)\n");
      return 2;
    }
    if (halt_after > 0.0) {
      std::fprintf(stderr,
                   "error: --halt-after drains to the durable tier; it "
                   "requires --l2-bandwidth > 0\n");
      return 2;
    }
  } else {
    if (!std::isnan(l2_latency) && l2_latency < 0.0) {
      std::fprintf(stderr, "error: --l2-latency=%g must be >= 0\n", l2_latency);
      return 2;
    }
    if (flush_interval != -1 && flush_interval < 1) {
      // An explicit 0 used to be swallowed as "unset"; a flush interval of
      // zero epochs is meaningless, so reject it loudly.
      std::fprintf(stderr, "error: --flush-interval=%d must be >= 1\n",
                   flush_interval);
      return 2;
    }
    if (halt_after < 0.0) {
      std::fprintf(stderr, "error: --halt-after=%g must be >= 0\n",
                   halt_after);
      return 2;
    }
  }
  checksum::set_kernel_impl(kernel_impl == "portable"
                                ? checksum::KernelImpl::Portable
                            : kernel_impl == "hw" ? checksum::KernelImpl::Hw
                                                  : checksum::KernelImpl::Auto);
  parallel::set_global_threads(kernel_threads);
  if (xor_group_size != -1 && ckpt_scheme != "xor" && ckpt_scheme != "rs") {
    std::fprintf(stderr,
                 "error: --xor-group-size only applies to --ckpt-scheme=xor "
                 "or rs (got --ckpt-scheme=%s)\n",
                 ckpt_scheme.c_str());
    return 2;
  }
  if (rs_parity != -1 && ckpt_scheme != "rs") {
    std::fprintf(stderr,
                 "error: --rs-parity only applies to --ckpt-scheme=rs "
                 "(got --ckpt-scheme=%s)\n",
                 ckpt_scheme.c_str());
    return 2;
  }
  if (ckpt_scheme == "xor" || ckpt_scheme == "rs") {
    if (xor_group_size == -1) xor_group_size = 4;
    if (xor_group_size < 2) {
      // An explicit 0 used to be swallowed as "unset" and silently became
      // the default; it now fails like every other undersized group.
      std::fprintf(stderr,
                   "error: --xor-group-size=%d must be >= 2 (a one-node "
                   "group has no parity peers)\n",
                   xor_group_size);
      return 2;
    }
    if (xor_group_size > nodes) {
      std::fprintf(stderr,
                   "error: --xor-group-size=%d exceeds --nodes=%d (a group "
                   "cannot span more nodes than the replica has)\n",
                   xor_group_size, nodes);
      return 2;
    }
  }
  if (ckpt_scheme == "rs") {
    if (rs_parity == -1) rs_parity = 2;
    if (rs_parity < 1) {
      std::fprintf(stderr, "error: --rs-parity=%d must be >= 1\n", rs_parity);
      return 2;
    }
  }

  // --- assemble the configuration -------------------------------------------
  AcrConfig ac;
  ac.scheme = scheme == "strong"   ? ResilienceScheme::Strong
              : scheme == "medium" ? ResilienceScheme::Medium
              : scheme == "weak"   ? ResilienceScheme::Weak
                                   : ResilienceScheme::HardOnly;
  ac.detection = detection == "checksum" ? SdcDetection::Checksum
                                         : SdcDetection::FullCompare;
  ac.checkpoint_interval = interval;
  ac.adaptive = adaptive;
  ac.adaptive_config.checkpoint_cost = interval / 20.0;
  ac.adaptive_config.min_interval = interval / 4.0;
  ac.adaptive_config.max_interval = interval * 8.0;
  ac.heartbeat_period = 0.0005;
  ac.heartbeat_timeout = 0.002;
  ac.redundancy = ckpt_scheme == "local"   ? ckpt::Scheme::Local
                  : ckpt_scheme == "xor"   ? ckpt::Scheme::Xor
                  : ckpt_scheme == "rs"    ? ckpt::Scheme::Rs
                                           : ckpt::Scheme::Partner;
  ac.degrade = degrade == "shrink" ? DegradeMode::Shrink : DegradeMode::Abort;
  ac.codec.delta =
      ckpt_delta == "on" ? ckpt::DeltaMode::On : ckpt::DeltaMode::Off;
  ac.codec.compress =
      ckpt_compress == "lz" ? ckpt::CompressMode::Lz : ckpt::CompressMode::None;
  if (xor_group_size > 0) ac.xor_group_size = xor_group_size;
  if (rs_parity > 0) ac.rs_parity = rs_parity;
  ac.tier.bandwidth = l2_bandwidth;
  if (!std::isnan(l2_latency)) ac.tier.latency = l2_latency;
  if (flush_interval > 0)
    ac.tier.flush_interval = static_cast<std::uint64_t>(flush_interval);
  ac.halt_after = halt_after;
  if (const char* err = validate_tier_config(ac)) {
    std::fprintf(stderr, "error: %s\n", err);
    return 2;
  }
  // Scheme/flag combinations the manager would reject (e.g. xor under a
  // non-strong resilience scheme) become CLI errors instead of aborts.
  if (const char* err = validate_redundancy_config(ac, nodes)) {
    std::fprintf(stderr, "error: %s\n", err);
    return 2;
  }

  rt::ClusterConfig cc;
  cc.nodes_per_replica = nodes;
  cc.spare_nodes = spares;
  cc.seed = seed;
  cc.net_faults.drop_rate = net_loss;
  cc.net_faults.dup_rate = net_dup;
  cc.net_faults.reorder_rate = net_reorder;
  cc.net_faults.corrupt_rate = net_corrupt;
  cc.reliable.retry_budget = net_retry_budget;
  if (engine_lanes > 0) cc.engine_lanes = engine_lanes;

  AcrRuntime runtime(ac, cc);

  auto iters = static_cast<std::uint64_t>(iterations);
  if (app == "jacobi") {
    apps::Jacobi3DConfig cfg;
    cfg.tasks_x = cfg.tasks_y = 2;
    cfg.tasks_z = nodes;  // 2 tasks per node, slabs along z
    cfg.block_x = cfg.block_y = cfg.block_z = 4;
    cfg.slots_per_node = 4;
    cfg.iterations = iters;
    cfg.seconds_per_point = 1e-5;
    runtime.set_task_factory(cfg.factory());
  } else if (app == "hpccg") {
    apps::HpccgConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = 6;
    cfg.num_tasks = nodes;  // must be a power of two
    cfg.iterations = iters;
    cfg.seconds_per_flop = 1e-7;
    runtime.set_task_factory(cfg.factory());
  } else if (app == "lulesh") {
    apps::MiniLuleshConfig cfg;
    cfg.ex = cfg.ey = cfg.ez = 5;
    cfg.num_tasks = nodes;
    cfg.iterations = iters;
    cfg.seconds_per_element = 2e-5;
    runtime.set_task_factory(cfg.factory());
  } else if (app == "leanmd") {
    apps::LeanMdConfig cfg;
    cfg.atoms_per_task = 32;
    cfg.num_tasks = 2 * nodes;
    cfg.slots_per_node = 2;
    cfg.iterations = iters;
    cfg.seconds_per_pair = 1e-5;
    runtime.set_task_factory(cfg.factory());
  } else {
    apps::MiniMdConfig cfg;
    cfg.atoms_per_task = 32;
    cfg.num_tasks = nodes;
    cfg.iterations = iters;
    cfg.seconds_per_pair = 1e-5;
    runtime.set_task_factory(cfg.factory());
  }

  runtime.setup();

  if (predictor_recall > 0.0) {
    PredictorConfig pred;
    pred.recall = predictor_recall;
    pred.precision = 0.8;
    pred.lead_time = interval / 4.0;
    runtime.set_predictor(pred);
  }
  if (fault_mtbf > 0.0) {
    FaultPlan plan;
    if (weibull_shape > 0.0) {
      plan.arrivals = std::make_shared<failure::WeibullProcess>(
          weibull_shape, fault_mtbf);
    } else {
      plan.arrivals = std::make_shared<failure::RenewalProcess>(
          std::make_shared<failure::Exponential>(fault_mtbf));
    }
    plan.sdc_fraction = sdc_fraction;
    runtime.set_fault_plan(plan);
  }
  if (burst_mtbf > 0.0) {
    failure::BurstConfig bc;
    bc.seed_mtbf = burst_mtbf;
    bc.weibull_shape = burst_shape;
    bc.follow_prob = burst_follow;
    bc.window = burst_window;
    bc.domain_size = burst_domain;
    bc.repair_mean = spare_repair_time;
    runtime.set_burst_plan(bc);
  }

  RunSummary s = runtime.run(/*max_virtual_time=*/600.0);

  // --- report -----------------------------------------------------------------
  std::printf("app=%s scheme=%s detection=%s nodes/replica=%d\n", app.c_str(),
              scheme.c_str(), detection.c_str(), nodes);
  std::printf("outcome: %s at t=%.4f s (virtual)\n",
              s.complete ? "COMPLETE"
              : s.failed ? "FAILED"
              : s.drained ? "DRAINED"
                          : "TIMED OUT",
              s.finish_time);
  std::printf(
      "checkpoints=%llu  hard failures=%llu  recoveries=%llu  "
      "SDC injected/detected=%llu/%llu  scratch restarts=%llu\n",
      static_cast<unsigned long long>(s.checkpoints),
      static_cast<unsigned long long>(s.hard_failures),
      static_cast<unsigned long long>(s.recoveries),
      static_cast<unsigned long long>(s.sdc_injected),
      static_cast<unsigned long long>(s.sdc_detected),
      static_cast<unsigned long long>(s.scratch_restarts));
  // Only printed when network fault injection is on: keeps the clean-network
  // output byte-identical to builds that predate the reliable transport.
  if (runtime.cluster().net_faults_enabled())
    std::printf(
        "network: frames=%llu dropped=%llu duplicated=%llu corrupted=%llu  "
        "retransmits=%llu crc drops=%llu stale-epoch drops=%llu  "
        "link failures=%llu\n",
        static_cast<unsigned long long>(s.net_frames),
        static_cast<unsigned long long>(s.net_drops),
        static_cast<unsigned long long>(s.net_duplicates),
        static_cast<unsigned long long>(s.net_corruptions),
        static_cast<unsigned long long>(s.net_retransmits),
        static_cast<unsigned long long>(s.net_crc_drops),
        static_cast<unsigned long long>(s.net_stale_epoch_drops),
        static_cast<unsigned long long>(s.net_link_failures));
  // Only printed when the burst/spare lifecycle is exercised: keeps output
  // from runs without it byte-identical to builds that predate the feature.
  if (burst_mtbf > 0.0 || ac.degrade == DegradeMode::Shrink)
    std::printf(
        "spare pool: bursts=%llu killed=%llu  promotions=%llu failures=%llu "
        "repairs=%llu low-water=%d  doubled=%llu undoubled=%llu\n",
        static_cast<unsigned long long>(s.burst_seeds),
        static_cast<unsigned long long>(s.burst_node_kills),
        static_cast<unsigned long long>(s.spare_promotions),
        static_cast<unsigned long long>(s.spare_failures),
        static_cast<unsigned long long>(s.spare_repairs), s.spare_low_water,
        static_cast<unsigned long long>(s.roles_doubled),
        static_cast<unsigned long long>(s.roles_undoubled));
  // Only printed when the durable tier is enabled: keeps single-tier output
  // byte-identical to builds that predate the tier.
  if (ac.tier.enabled())
    std::printf(
        "durable tier: flushes=%llu bytes=%llu fetches=%llu waves=%llu "
        "scavenges=%llu newest-durable=%llu\n",
        static_cast<unsigned long long>(s.l2_flushes),
        static_cast<unsigned long long>(s.l2_flush_bytes),
        static_cast<unsigned long long>(s.l2_fetches),
        static_cast<unsigned long long>(s.l2_fetch_waves),
        static_cast<unsigned long long>(s.l2_scavenges),
        static_cast<unsigned long long>(s.l2_newest_durable));
  // Only printed for non-default redundancy: keeps partner output
  // byte-identical to builds that predate the pluggable ckpt layer.
  if (ac.redundancy != ckpt::Scheme::Partner) {
    std::printf("redundancy: scheme=%s", s.ckpt_scheme);
    if (ac.redundancy == ckpt::Scheme::Xor)
      std::printf(
          " group-size=%d  parity chunks=%llu bytes=%llu  rebuilds=%llu",
          ac.xor_group_size,
          static_cast<unsigned long long>(s.parity_chunks_sent),
          static_cast<unsigned long long>(s.parity_bytes_sent),
          static_cast<unsigned long long>(s.xor_rebuilds));
    if (ac.redundancy == ckpt::Scheme::Rs)
      std::printf(
          " group-size=%d parity=%d  encode chunks=%llu bytes=%llu  "
          "rebuild pieces=%llu bytes=%llu  rebuilds=%llu rejected=%llu",
          ac.xor_group_size, ac.rs_parity,
          static_cast<unsigned long long>(s.parity_chunks_sent),
          static_cast<unsigned long long>(s.parity_bytes_sent),
          static_cast<unsigned long long>(s.parity_rebuild_pieces),
          static_cast<unsigned long long>(s.parity_rebuild_bytes),
          static_cast<unsigned long long>(s.xor_rebuilds),
          static_cast<unsigned long long>(s.parity_rebuilds_rejected));
    std::printf("\n");
  }
  // Only printed when a codec stage is on: keeps codec-off output
  // byte-identical to builds that predate the staged pipeline.
  if (ac.codec.enabled()) {
    std::printf(
        "codec: delta=%s compress=%s  frames=%llu full=%llu  "
        "chunks=%llu/%llu  bytes wire/raw=%llu/%llu  need-full=%llu\n",
        ckpt::delta_mode_name(ac.codec.delta),
        ckpt::compress_mode_name(ac.codec.compress),
        static_cast<unsigned long long>(s.codec_frames),
        static_cast<unsigned long long>(s.codec_full_frames),
        static_cast<unsigned long long>(s.codec_chunks_shipped),
        static_cast<unsigned long long>(s.codec_chunks_total),
        static_cast<unsigned long long>(s.codec_wire_bytes),
        static_cast<unsigned long long>(s.codec_raw_bytes),
        static_cast<unsigned long long>(s.codec_need_full));
    if (ac.redundancy == ckpt::Scheme::Xor)
      std::printf("codec xor: delta chunks=%llu bytes=%llu poisoned=%llu\n",
                  static_cast<unsigned long long>(s.parity_delta_chunks),
                  static_cast<unsigned long long>(s.parity_delta_bytes),
                  static_cast<unsigned long long>(s.parity_rounds_poisoned));
    if (ac.redundancy == ckpt::Scheme::Rs)
      std::printf("codec rs: delta chunks=%llu bytes=%llu poisoned=%llu\n",
                  static_cast<unsigned long long>(s.parity_delta_chunks),
                  static_cast<unsigned long long>(s.parity_delta_bytes),
                  static_cast<unsigned long long>(s.parity_rounds_poisoned));
    if (ac.tier.enabled())
      std::printf("codec l2: delta blobs=%llu\n",
                  static_cast<unsigned long long>(s.l2_delta_blobs));
  }

  TraceSummary ts = summarize_trace(runtime.trace());
  RunningStats consensus = ts.consensus_latency_stats();
  RunningStats commit = ts.commit_latency_stats();
  RunningStats recovery = ts.recovery_duration_stats();
  if (consensus.count() > 0)
    std::printf("checkpoint consensus latency: mean %.4f ms, max %.4f ms\n",
                consensus.mean() * 1e3, consensus.max() * 1e3);
  if (commit.count() > 0)
    std::printf("checkpoint request->commit:   mean %.4f ms  (%.2f%% of run)\n",
                commit.mean() * 1e3, ts.checkpoint_time_fraction() * 100.0);
  if (recovery.count() > 0)
    std::printf("recovery duration:            mean %.4f ms, max %.4f ms\n",
                recovery.mean() * 1e3, recovery.max() * 1e3);
  if (ts.failures_detected > 0)
    std::printf("failure detection latency:    mean %.4f ms\n",
                ts.mean_detection_latency * 1e3);

  if (trace) {
    std::printf("\nprotocol trace:\n");
    for (const auto& e : runtime.trace().events())
      std::printf("  %9.4f  %-24s r=%d n=%d %s\n", e.time,
                  rt::trace_kind_name(e.kind), e.replica, e.node_index,
                  e.detail.c_str());
  }
  return (s.complete || s.drained) ? 0 : 1;
}
