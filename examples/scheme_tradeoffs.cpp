// The §2.3 resilience trade-off, live.
//
// Reproduces the paper's central design discussion with a single adversarial
// scenario: a silent bit flip lands in the healthy replica moments before
// the other replica loses a node. Each recovery scheme reacts differently:
//   strong — the crashed replica recomputes the interval cleanly; the next
//            comparison exposes the corruption; both roll back. 100% SDC
//            protection, slowest.
//   medium — the healthy replica's immediate recovery checkpoint copies the
//            corruption to both replicas; it is never detected again.
//   weak   — same exposure, one full checkpoint period wide.
//
// Build & run:  ./build/examples/scheme_tradeoffs
#include <cstdio>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "checksum/fletcher.h"

using namespace acr;

namespace {

apps::Jacobi3DConfig jacobi_config() {
  apps::Jacobi3DConfig cfg;
  cfg.tasks_x = cfg.tasks_y = cfg.tasks_z = 2;
  cfg.block_x = cfg.block_y = cfg.block_z = 5;
  cfg.iterations = 40;
  cfg.slots_per_node = 2;
  cfg.seconds_per_point = 8e-6;
  return cfg;
}

struct Outcome {
  bool complete = false;
  std::uint64_t digest = 0;
  std::uint64_t sdc_detected = 0;
  double finish = 0.0;
};

Outcome run_scheme(ResilienceScheme scheme, bool inject) {
  apps::Jacobi3DConfig j = jacobi_config();
  AcrConfig ac;
  ac.scheme = scheme;
  ac.checkpoint_interval = 0.004;
  ac.heartbeat_period = 0.0005;
  ac.heartbeat_timeout = 0.002;
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 2;
  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  if (inject) {
    runtime.engine().schedule_at(0.0052, [&runtime] {
      auto& task = static_cast<apps::Jacobi3DTask&>(
          runtime.cluster().node_at(0, 1).task(0));
      task.value_at(2, 2, 2) += 1.0;  // SDC in the (soon-to-be) healthy replica
    });
    runtime.engine().schedule_at(0.0054, [&runtime] {
      runtime.cluster().kill_role(1, 2);  // hard failure in the other one
    });
  }
  RunSummary s = runtime.run(100.0);
  Outcome o;
  o.complete = s.complete;
  o.sdc_detected = s.sdc_detected;
  o.finish = s.finish_time;
  runtime.engine().run_until(s.finish_time + 0.1);
  checksum::Fletcher64 f;
  for (int i = 0; i < runtime.cluster().nodes_per_replica(); ++i)
    f.append(runtime.cluster().node_at(0, i).pack_state().bytes());
  o.digest = f.digest();
  return o;
}

}  // namespace

int main() {
  Outcome reference = run_scheme(ResilienceScheme::Strong, /*inject=*/false);
  std::printf("reference (failure-free): digest=%016llx  t=%.3f s\n\n",
              static_cast<unsigned long long>(reference.digest),
              reference.finish);

  std::printf("scenario: SDC in replica 0 at t=5.2 ms, node crash in "
              "replica 1 at t=5.4 ms\n\n");
  std::printf("%-8s %-9s %-13s %-18s %-9s\n", "scheme", "complete",
              "SDC detected", "result vs reference", "time (s)");
  for (ResilienceScheme scheme :
       {ResilienceScheme::Strong, ResilienceScheme::Medium,
        ResilienceScheme::Weak}) {
    Outcome o = run_scheme(scheme, /*inject=*/true);
    std::printf("%-8s %-9s %-13llu %-18s %-9.3f\n",
                resilience_scheme_name(scheme), o.complete ? "yes" : "no",
                static_cast<unsigned long long>(o.sdc_detected),
                o.digest == reference.digest ? "IDENTICAL"
                                             : "SILENTLY CORRUPTED",
                o.finish);
  }
  std::printf(
      "\nThe trade-off of §2.3 in one table: strong detects and repairs the "
      "corruption (and pays for it in time);\nmedium and weak finish faster "
      "but commit the corrupted state — their replicas agree with each "
      "other,\nso no later comparison can ever notice.\n");
  return 0;
}
