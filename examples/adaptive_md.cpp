// Adaptive checkpointing for molecular dynamics (§2.2 / Fig. 12).
//
// Runs LeanMD under a decreasing-hazard (Weibull, shape 0.6) failure
// process with ACR's adaptive interval controller enabled, and prints how
// the checkpoint interval tracks the observed failure rate: tight while
// the machine is flaky, relaxed once it settles.
//
// Build & run:  ./build/examples/adaptive_md
#include <cstdio>

#include "acr/runtime.h"
#include "apps/leanmd.h"
#include "failure/distributions.h"

using namespace acr;

int main() {
  apps::LeanMdConfig md;
  md.atoms_per_task = 48;
  md.num_tasks = 8;
  md.slots_per_node = 2;
  md.iterations = 600;
  md.seconds_per_pair = 2e-6;

  rt::ClusterConfig cc;
  cc.nodes_per_replica = md.nodes_needed();
  cc.spare_nodes = 16;

  AcrConfig ac;
  ac.scheme = ResilienceScheme::Strong;
  ac.adaptive = true;
  ac.adaptive_config.checkpoint_cost = 2e-3;
  ac.adaptive_config.min_interval = 0.01;
  ac.adaptive_config.max_interval = 0.5;
  ac.adaptive_config.window = 6;
  ac.heartbeat_period = 0.001;
  ac.heartbeat_timeout = 0.004;

  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(md.factory());
  runtime.setup();

  FaultPlan plan;
  plan.arrivals = std::make_shared<failure::WeibullProcess>(0.6, 0.05);
  plan.sdc_fraction = 0.25;  // a quarter of the injected faults are flips
  plan.horizon = 0.6;        // the machine eventually settles
  runtime.set_fault_plan(plan);

  // Sample the controller's interval throughout the run.
  std::vector<std::pair<double, double>> samples;
  std::function<void()> probe = [&] {
    samples.emplace_back(runtime.engine().now(),
                         runtime.manager().current_interval());
    if (!runtime.manager().job_complete())
      runtime.engine().schedule_after(0.25, probe);
  };
  runtime.engine().schedule_after(0.25, probe);

  RunSummary s = runtime.run(600.0);

  std::printf("adaptive_md: complete=%d  virtual time=%.2f s\n", s.complete,
              s.finish_time);
  std::printf("hard failures=%llu  SDC injected=%llu detected=%llu  "
              "checkpoints=%llu  recoveries=%llu\n\n",
              static_cast<unsigned long long>(s.hard_failures),
              static_cast<unsigned long long>(s.sdc_injected),
              static_cast<unsigned long long>(s.sdc_detected),
              static_cast<unsigned long long>(s.checkpoints),
              static_cast<unsigned long long>(s.recoveries));

  std::printf("checkpoint interval over time (controller view):\n");
  for (const auto& [t, interval] : samples)
    std::printf("  t=%6.2f s   interval=%.4f s\n", t, interval);

  if (samples.size() >= 2) {
    double first = samples.front().second;
    double last = samples.back().second;
    std::printf("\ninterval stretched %.2fx as the failure rate decayed "
                "(Weibull shape 0.6, as in Fig. 12)\n",
                last / first);
  }
  return s.complete ? 0 : 1;
}
