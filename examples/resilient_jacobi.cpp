// Resilient Jacobi3D: the paper's flagship workload under fire.
//
// Runs the same Jacobi3D job three times:
//   1. failure-free, to obtain the reference answer;
//   2. with a silent-data-corruption bit flip planted in replica 0;
//   3. with a fail-stop node crash in replica 1.
// and shows that ACR detects the corruption, survives the crash, and both
// runs end bit-identical to the reference.
//
// Build & run:  ./build/examples/resilient_jacobi
#include <cstdio>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "checksum/fletcher.h"

using namespace acr;

namespace {

apps::Jacobi3DConfig jacobi_config() {
  apps::Jacobi3DConfig cfg;
  cfg.tasks_x = cfg.tasks_y = cfg.tasks_z = 2;
  cfg.block_x = cfg.block_y = cfg.block_z = 6;
  cfg.iterations = 60;
  cfg.slots_per_node = 2;
  cfg.seconds_per_point = 5e-6;
  return cfg;
}

AcrRuntime make_runtime(const apps::Jacobi3DConfig& j) {
  AcrConfig acr_cfg;
  acr_cfg.scheme = ResilienceScheme::Strong;
  acr_cfg.checkpoint_interval = 0.005;
  acr_cfg.heartbeat_period = 0.0005;
  acr_cfg.heartbeat_timeout = 0.002;
  rt::ClusterConfig cluster_cfg;
  cluster_cfg.nodes_per_replica = j.nodes_needed();
  cluster_cfg.spare_nodes = 2;
  return AcrRuntime(acr_cfg, cluster_cfg);
}

std::uint64_t final_digest(AcrRuntime& runtime, double finish_time) {
  runtime.engine().run_until(finish_time + 0.1);
  checksum::Fletcher64 f;
  for (int i = 0; i < runtime.cluster().nodes_per_replica(); ++i)
    f.append(runtime.cluster().node_at(0, i).pack_state().bytes());
  return f.digest();
}

}  // namespace

int main() {
  apps::Jacobi3DConfig j = jacobi_config();

  std::printf("=== run 1: failure-free reference ===\n");
  AcrRuntime clean = make_runtime(j);
  clean.set_task_factory(j.factory());
  clean.setup();
  RunSummary cs = clean.run(100.0);
  std::uint64_t reference = final_digest(clean, cs.finish_time);
  std::printf("complete=%d  checkpoints=%llu  digest=%016llx\n\n",
              cs.complete, static_cast<unsigned long long>(cs.checkpoints),
              static_cast<unsigned long long>(reference));

  std::printf("=== run 2: silent data corruption in replica 0 ===\n");
  AcrRuntime sdc = make_runtime(j);
  sdc.set_task_factory(j.factory());
  sdc.setup();
  sdc.engine().schedule_at(0.007, [&sdc] {
    auto& task =
        static_cast<apps::Jacobi3DTask&>(sdc.cluster().node_at(0, 2).task(1));
    task.value_at(3, 3, 3) *= -1.0;  // the flip nobody notices... except ACR
    std::printf("  [0.007] flipped an interior value on node (0,2)\n");
  });
  RunSummary ss = sdc.run(100.0);
  std::uint64_t sdc_digest = final_digest(sdc, ss.finish_time);
  std::printf("complete=%d  SDC detected=%llu  rollbacks taken, final "
              "digest=%016llx  -> %s\n\n",
              ss.complete, static_cast<unsigned long long>(ss.sdc_detected),
              static_cast<unsigned long long>(sdc_digest),
              sdc_digest == reference ? "MATCHES reference"
                                      : "DIVERGED (bug!)");

  std::printf("=== run 3: fail-stop crash in replica 1 ===\n");
  AcrRuntime hard = make_runtime(j);
  hard.set_task_factory(j.factory());
  hard.setup();
  hard.engine().schedule_at(0.011, [&hard] {
    std::printf("  [0.011] node (1,3) stops responding\n");
    hard.cluster().kill_role(1, 3);
  });
  RunSummary hs = hard.run(100.0);
  std::uint64_t hard_digest = final_digest(hard, hs.finish_time);
  std::printf("complete=%d  failures detected=%llu  recoveries=%llu  final "
              "digest=%016llx  -> %s\n",
              hs.complete, static_cast<unsigned long long>(hs.hard_failures),
              static_cast<unsigned long long>(hs.recoveries),
              static_cast<unsigned long long>(hard_digest),
              hard_digest == reference ? "MATCHES reference"
                                       : "DIVERGED (bug!)");

  bool ok = cs.complete && ss.complete && hs.complete &&
            ss.sdc_detected >= 1 && hs.recoveries == 1 &&
            sdc_digest == reference && hard_digest == reference;
  std::printf("\nresilient_jacobi: %s\n", ok ? "ALL CHECKS PASSED" : "FAILED");
  return ok ? 0 : 1;
}
