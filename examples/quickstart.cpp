// Quickstart: protect a custom application with ACR in ~60 lines.
//
// The application is a toy iterative heat rod: each task owns a 1D segment,
// exchanges edge values with its neighbors every iteration, and relaxes.
// To run under ACR a task only needs to
//   1. derive from apps::IterativeTask (or implement rt::Task directly),
//   2. describe its state in pup_state(), and
//   3. report progress — IterativeTask already does that per iteration.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "acr/runtime.h"
#include "apps/iterative.h"

namespace {

class HeatRodTask final : public acr::apps::IterativeTask {
 public:
  HeatRodTask(int task_id, int num_tasks, int tasks_per_node, int cells,
              std::uint64_t iters)
      : IterativeTask(iters),
        id_(task_id),
        num_tasks_(num_tasks),
        tasks_per_node_(tasks_per_node),
        cells_(cells) {}

 protected:
  void init() override {
    u_.assign(static_cast<std::size_t>(cells_), 0.0);
    if (id_ == 0) u_.front() = 100.0;  // hot boundary
  }

  acr::rt::TaskAddr addr_of(int task) const {
    return {task / tasks_per_node_, task % tasks_per_node_};
  }

  void send_phase(std::uint64_t iter, int phase) override {
    if (id_ > 0)
      send_phase_msg(addr_of(id_ - 1), iter, phase, +1, {u_.front()});
    if (id_ < num_tasks_ - 1)
      send_phase_msg(addr_of(id_ + 1), iter, phase, -1, {u_.back()});
  }

  int expected_in_phase(std::uint64_t, int) const override {
    return (id_ > 0 ? 1 : 0) + (id_ < num_tasks_ - 1 ? 1 : 0);
  }

  double compute_phase(std::uint64_t, int,
                       const std::map<int, std::vector<double>>& msgs)
      override {
    double left = id_ == 0 ? 100.0 : msgs.at(-1)[0];
    double right = id_ == num_tasks_ - 1 ? 0.0 : msgs.at(+1)[0];
    std::vector<double> next(u_.size());
    for (std::size_t i = 0; i < u_.size(); ++i) {
      double l = i == 0 ? left : u_[i - 1];
      double r = i + 1 == u_.size() ? right : u_[i + 1];
      next[i] = 0.5 * u_[i] + 0.25 * (l + r);
    }
    u_ = std::move(next);
    return 1e-4;  // virtual seconds of compute per iteration
  }

  void pup_state(acr::pup::Puper& p) override { p | u_; }

 private:
  int id_;
  int num_tasks_;
  int tasks_per_node_;
  int cells_;
  std::vector<double> u_;
};

}  // namespace

int main() {
  static constexpr int kTasks = 8;
  static constexpr int kTasksPerNode = 2;

  // 1. Configure the framework: strong resilience, periodic checkpoints.
  acr::AcrConfig acr_cfg;
  acr_cfg.scheme = acr::ResilienceScheme::Strong;
  acr_cfg.checkpoint_interval = 0.01;
  acr_cfg.heartbeat_period = 0.001;
  acr_cfg.heartbeat_timeout = 0.005;

  // 2. Configure the virtual cluster: nodes per replica + spares.
  acr::rt::ClusterConfig cluster_cfg;
  cluster_cfg.nodes_per_replica = kTasks / kTasksPerNode;
  cluster_cfg.spare_nodes = 1;

  // 3. Provide the task factory: how each node's tasks are built.
  acr::AcrRuntime runtime(acr_cfg, cluster_cfg);
  runtime.set_task_factory([](int /*replica*/, int node_index) {
    std::vector<std::unique_ptr<acr::rt::Task>> tasks;
    for (int s = 0; s < kTasksPerNode; ++s) {
      int id = node_index * kTasksPerNode + s;
      tasks.push_back(std::make_unique<HeatRodTask>(id, kTasks, kTasksPerNode, 32, 100));
    }
    return tasks;
  });

  // 4. Run. Both replicas execute; checkpoints are compared for SDC.
  runtime.setup();
  acr::RunSummary s = runtime.run(/*max_virtual_time=*/100.0);

  std::printf("quickstart: complete=%s  virtual_time=%.3f s\n",
              s.complete ? "yes" : "no", s.finish_time);
  std::printf("checkpoints committed: %llu (all replica-compared, zero "
              "mismatches: %s)\n",
              static_cast<unsigned long long>(s.checkpoints),
              s.sdc_detected == 0 ? "yes" : "no");
  std::printf("\nprotocol trace (first 10 events):\n");
  int shown = 0;
  for (const auto& e : runtime.trace().events()) {
    std::printf("  %8.4f  %s\n", e.time, acr::rt::trace_kind_name(e.kind));
    if (++shown == 10) break;
  }
  return s.complete ? 0 : 1;
}
