// Correlated failure bursts, the spare-pool lifecycle, and
// shrink-to-survive degraded mode.
//
// Covers the decision logic of failure/correlated.h (domains, injector
// determinism, follower planning), the rt::Cluster spare lifecycle
// (spares failing idle, repair re-pooling without double-counting,
// doubling/undoubling), and the acr::Manager degradation paths
// (shrink-to-survive on pool exhaustion, un-doubling after repair,
// simultaneous buddy-pair / parity-group losses degrading cleanly to a
// scratch restart, and second-failure-mid-recovery wave serialization).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "checksum/fletcher.h"
#include "failure/adaptive_interval.h"
#include "failure/correlated.h"

namespace acr {
namespace {

// ---------------------------------------------------------------------------
// Failure domains.
// ---------------------------------------------------------------------------

TEST(FailureDomains, PartitionsNodesIntoXLines) {
  failure::FailureDomains d(8, 4);
  EXPECT_EQ(d.num_domains(), 2);
  EXPECT_EQ(d.domain_of(0), 0);
  EXPECT_EQ(d.domain_of(3), 0);
  EXPECT_EQ(d.domain_of(4), 1);
  EXPECT_EQ(d.domain_of(7), 1);
  EXPECT_EQ(d.members(0), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(d.members(1), (std::vector<int>{4, 5, 6, 7}));
  // One domain = one X-line of the derived torus.
  EXPECT_EQ(d.torus().dim_x(), 4);
  EXPECT_GE(d.torus().num_nodes(), 8);
}

TEST(FailureDomains, LastDomainMayBeShort) {
  failure::FailureDomains d(10, 4);
  EXPECT_EQ(d.num_domains(), 3);
  EXPECT_EQ(d.members(2), (std::vector<int>{8, 9}));
  EXPECT_EQ(d.domain_of(9), 2);
}

TEST(FailureDomains, DomainLargerThanMachineClamps) {
  failure::FailureDomains d(3, 16);
  EXPECT_EQ(d.num_domains(), 1);
  EXPECT_EQ(d.members(0), (std::vector<int>{0, 1, 2}));
}

// ---------------------------------------------------------------------------
// Correlated injector.
// ---------------------------------------------------------------------------

failure::BurstConfig test_burst_config() {
  failure::BurstConfig bc;
  bc.seed_mtbf = 0.05;
  bc.weibull_shape = 0.7;
  bc.follow_prob = 0.5;
  bc.window = 0.002;
  bc.domain_size = 4;
  bc.repair_mean = 0.1;
  return bc;
}

TEST(CorrelatedInjector, DeterministicPerSeed) {
  std::vector<int> alive;
  for (int i = 0; i < 16; ++i) alive.push_back(i);
  failure::CorrelatedInjector a(test_burst_config(), 16, 42);
  failure::CorrelatedInjector b(test_burst_config(), 16, 42);
  double t = 0.0;
  for (int round = 0; round < 20; ++round) {
    double ta = a.next_seed_after(t);
    ASSERT_DOUBLE_EQ(ta, b.next_seed_after(t));
    ASSERT_GT(ta, t);
    t = ta;
    int va = a.pick_victim(alive);
    ASSERT_EQ(va, b.pick_victim(alive));
    auto fa = a.plan_followers(va, alive);
    auto fb = b.plan_followers(va, alive);
    ASSERT_EQ(fa.size(), fb.size());
    for (std::size_t i = 0; i < fa.size(); ++i) {
      EXPECT_EQ(fa[i].node, fb[i].node);
      EXPECT_DOUBLE_EQ(fa[i].delay, fb[i].delay);
    }
    ASSERT_DOUBLE_EQ(a.sample_repair_time(), b.sample_repair_time());
  }
  failure::CorrelatedInjector c(test_burst_config(), 16, 43);
  EXPECT_NE(a.next_seed_after(t), c.next_seed_after(t));
}

TEST(CorrelatedInjector, FollowersComeFromTheVictimsDomainOnly) {
  failure::BurstConfig bc = test_burst_config();
  bc.follow_prob = 1.0;  // every live peer follows
  failure::CorrelatedInjector inj(bc, 16, 7);
  std::vector<int> alive;
  for (int i = 0; i < 16; ++i) alive.push_back(i);
  auto followers = inj.plan_followers(5, alive);
  ASSERT_EQ(followers.size(), 3u);  // domain {4,5,6,7} minus the victim
  for (const auto& f : followers) {
    EXPECT_NE(f.node, 5);
    EXPECT_EQ(inj.domains().domain_of(f.node), 1);
    EXPECT_GE(f.delay, 0.0);
    EXPECT_LT(f.delay, bc.window);
  }
}

TEST(CorrelatedInjector, FollowersSkipAlreadyDeadPeers) {
  failure::BurstConfig bc = test_burst_config();
  bc.follow_prob = 1.0;
  failure::CorrelatedInjector inj(bc, 8, 7);
  std::vector<int> alive{0, 1, 3, 4, 5, 6, 7};  // node 2 already dead
  auto followers = inj.plan_followers(0, alive);
  ASSERT_EQ(followers.size(), 2u);
  EXPECT_EQ(followers[0].node, 1);
  EXPECT_EQ(followers[1].node, 3);
}

TEST(CorrelatedInjector, ZeroFollowProbMeansIsolatedFailures) {
  failure::BurstConfig bc = test_burst_config();
  bc.follow_prob = 0.0;
  failure::CorrelatedInjector inj(bc, 16, 7);
  std::vector<int> alive;
  for (int i = 0; i < 16; ++i) alive.push_back(i);
  EXPECT_TRUE(inj.plan_followers(5, alive).empty());
}

// ---------------------------------------------------------------------------
// Adaptive interval reacts to burst inter-arrival times (satellite a).
// ---------------------------------------------------------------------------

TEST(AdaptiveBurst, IntervalTightensAfterBurstArrivals) {
  failure::AdaptiveIntervalConfig cfg;
  cfg.checkpoint_cost = 1e-4;
  cfg.min_interval = 1e-3;
  cfg.max_interval = 10.0;
  failure::AdaptiveIntervalController ctl(cfg);
  double before = ctl.next_interval(1.0);
  EXPECT_DOUBLE_EQ(before, cfg.max_interval);  // no failures yet
  // A rack-style burst: four deaths within a couple of milliseconds.
  ctl.on_failure(1.0);
  ctl.on_failure(1.0005);
  ctl.on_failure(1.0011);
  ctl.on_failure(1.0019);
  double after = ctl.next_interval(1.002);
  EXPECT_LT(after, before);
  // Sub-millisecond MTBF drives Young/Daly to the clamp floor.
  EXPECT_DOUBLE_EQ(after, cfg.min_interval);
}

// ---------------------------------------------------------------------------
// Simulation fixtures (mirrors test_xor_soak.cpp's reference pattern).
// ---------------------------------------------------------------------------

apps::Jacobi3DConfig burst_app() {
  apps::Jacobi3DConfig cfg;
  cfg.tasks_x = cfg.tasks_y = 2;
  cfg.tasks_z = 4;
  cfg.block_x = cfg.block_y = cfg.block_z = 4;
  cfg.iterations = 40;
  cfg.slots_per_node = 2;  // 8 nodes per replica
  cfg.seconds_per_point = 1e-5;
  return cfg;
}

AcrConfig burst_acr_config() {
  AcrConfig ac;
  ac.scheme = ResilienceScheme::Strong;
  ac.redundancy = ckpt::Scheme::Partner;
  ac.checkpoint_interval = 0.003;
  ac.heartbeat_period = 0.0004;
  ac.heartbeat_timeout = 0.0016;
  return ac;
}

std::uint64_t verified_digest(AcrRuntime& runtime) {
  checksum::Fletcher64 f;
  for (int i = 0; i < runtime.cluster().nodes_per_replica(); ++i) {
    NodeAgent& a = runtime.agent_at(0, i);
    NodeAgent& b = runtime.agent_at(1, i);
    const NodeAgent& best = a.verified_epoch() >= b.verified_epoch() ? a : b;
    f.append(best.verified_image());
  }
  return f.digest();
}

struct Reference {
  std::uint64_t digest = 0;
  double finish_time = 0.0;
};

const Reference& reference() {
  static Reference cached = [] {
    apps::Jacobi3DConfig j = burst_app();
    rt::ClusterConfig cc;
    cc.nodes_per_replica = j.nodes_needed();
    cc.spare_nodes = 0;
    AcrRuntime runtime(burst_acr_config(), cc);
    runtime.set_task_factory(j.factory());
    runtime.setup();
    RunSummary s = runtime.run(1e3);
    ACR_REQUIRE(s.complete, "burst reference run must complete");
    Reference ref;
    ref.digest = verified_digest(runtime);
    ref.finish_time = s.finish_time;
    return ref;
  }();
  return cached;
}

struct Sim {
  apps::Jacobi3DConfig app;
  AcrRuntime runtime;
  Sim(const AcrConfig& ac, int spares, std::uint64_t seed)
      : app(burst_app()),
        runtime(ac, [&] {
          rt::ClusterConfig cc;
          cc.nodes_per_replica = burst_app().nodes_needed();
          cc.spare_nodes = spares;
          cc.seed = seed;
          return cc;
        }()) {
    runtime.set_task_factory(app.factory());
    runtime.setup();
  }
};

bool trace_contains(AcrRuntime& runtime, rt::TraceKind kind,
                    const std::string& detail_substr = "") {
  for (const auto& e : runtime.trace().events()) {
    if (e.kind != kind) continue;
    if (detail_substr.empty() ||
        e.detail.find(detail_substr) != std::string::npos)
      return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Spare-pool lifecycle (satellite b: no double-counting).
// ---------------------------------------------------------------------------

/// Spares are first-class nodes: an idle pooled spare can die (shrinking
/// the pool without any role failure) and the accounting must show it.
TEST(SpareLifecycle, PooledSpareCanFailIdle) {
  Sim sim(burst_acr_config(), 2, 11);
  rt::Cluster& cl = sim.runtime.cluster();
  cl.enable_spare_lifecycle_trace();
  int spare_pid = -1;
  for (int pid = 0; pid < cl.num_hardware_nodes(); ++pid)
    if (cl.is_pooled_spare(pid)) spare_pid = pid;
  ASSERT_GE(spare_pid, 0);
  EXPECT_EQ(cl.spares_remaining(), 2);
  sim.runtime.engine().schedule_at(0.001, [&cl, spare_pid] {
    cl.kill_physical(spare_pid, "burst-seed");
  });
  RunSummary s = sim.runtime.run(30.0);
  ASSERT_TRUE(s.complete);
  EXPECT_EQ(cl.spares_remaining(), 1);
  EXPECT_EQ(s.spare_failures, 1u);
  EXPECT_EQ(s.spare_low_water, 1);
  EXPECT_EQ(s.spare_promotions, 0u);
  EXPECT_EQ(s.hard_failures, 0u);  // no *role* ever failed
  EXPECT_TRUE(trace_contains(sim.runtime, rt::TraceKind::SpareFailed));
}

/// A node that is promoted, dies in its role, and is then repaired goes
/// back to the pool exactly once — the run summary must not double-count
/// it as both a promotion survivor and a fresh spare (satellite b).
TEST(SpareLifecycle, PromotedThenRepairedNodeIsNotDoubleCounted) {
  Sim sim(burst_acr_config(), 1, 12);
  rt::Cluster& cl = sim.runtime.cluster();
  cl.enable_spare_lifecycle_trace();
  double mid = reference().finish_time * 0.4;
  sim.runtime.engine().schedule_at(mid, [&sim] {
    sim.runtime.cluster().kill_role(0, 2);
  });
  // Repair whatever hardware is down a bit later; the role's original
  // player returns to the pool (its old slot now held by the spare).
  sim.runtime.engine().schedule_at(mid + 0.004, [&sim] {
    rt::Cluster& c = sim.runtime.cluster();
    for (int pid = 0; pid < c.num_hardware_nodes(); ++pid)
      if (!c.physical_node(pid).alive() && c.repair_node(pid))
        sim.runtime.manager().note_spare_available();
  });
  RunSummary s = sim.runtime.run(30.0);
  ASSERT_TRUE(s.complete);
  EXPECT_EQ(s.spare_promotions, 1u);
  EXPECT_EQ(s.spare_repairs, 1u);
  EXPECT_EQ(s.spare_low_water, 0);
  // One spare was consumed, one body was repaired into the pool: net 1.
  EXPECT_EQ(cl.spares_remaining(), 1);
  EXPECT_TRUE(trace_contains(sim.runtime, rt::TraceKind::NodeRepaired));
  sim.runtime.engine().run_until(s.finish_time + 0.05);
  EXPECT_EQ(verified_digest(sim.runtime), reference().digest);
}

TEST(SpareLifecycle, RepairGuardsRejectLiveOrPooledNodes) {
  Sim sim(burst_acr_config(), 1, 13);
  rt::Cluster& cl = sim.runtime.cluster();
  EXPECT_FALSE(cl.repair_node(0));  // alive
  cl.kill_physical(0, "burst-seed");
  EXPECT_TRUE(cl.repair_node(0));
  EXPECT_FALSE(cl.repair_node(0));  // alive again (pooled)
  EXPECT_TRUE(cl.is_pooled_spare(0));
  EXPECT_EQ(cl.spares_remaining(), 2);
  EXPECT_EQ(cl.spare_counters().repairs, 1u);
}

// ---------------------------------------------------------------------------
// Shrink-to-survive.
// ---------------------------------------------------------------------------

/// Pool exhausted under --degrade=abort: the legacy behavior, job fails.
TEST(Degradation, AbortModeFailsOnPoolExhaustion) {
  AcrConfig ac = burst_acr_config();
  ac.degrade = DegradeMode::Abort;
  Sim sim(ac, 0, 21);
  sim.runtime.engine().schedule_at(reference().finish_time * 0.4, [&sim] {
    sim.runtime.cluster().kill_role(0, 3);
  });
  RunSummary s = sim.runtime.run(30.0);
  EXPECT_FALSE(s.complete);
  EXPECT_TRUE(s.failed);
  EXPECT_EQ(s.roles_doubled, 0u);
  EXPECT_TRUE(trace_contains(sim.runtime, rt::TraceKind::JobComplete,
                             "FAILED: spare pool exhausted"));
}

/// The same exhaustion under --degrade=shrink doubles the dead role onto a
/// surviving same-replica node and completes with the bitwise-correct
/// answer (app RNG is seeded by logical position, not hardware).
TEST(Degradation, ShrinkModeDoublesUpAndCompletes) {
  AcrConfig ac = burst_acr_config();
  ac.degrade = DegradeMode::Shrink;
  Sim sim(ac, 0, 22);
  sim.runtime.engine().schedule_at(reference().finish_time * 0.4, [&sim] {
    sim.runtime.cluster().kill_role(0, 3);
  });
  RunSummary s = sim.runtime.run(30.0);
  ASSERT_TRUE(s.complete) << "shrink mode wedged at t=" << s.finish_time;
  EXPECT_EQ(s.roles_doubled, 1u);
  EXPECT_EQ(s.roles_undoubled, 0u);  // no repair ever arrived
  EXPECT_FALSE(sim.runtime.cluster().doubled_roles().empty());
  EXPECT_TRUE(trace_contains(sim.runtime, rt::TraceKind::RoleDoubled));
  sim.runtime.engine().run_until(s.finish_time + 0.05);
  EXPECT_EQ(verified_digest(sim.runtime), reference().digest);
}

/// When a repaired node refills the pool, the doubled role is relieved:
/// the lodger retires and a real spare takes the role over (un-doubling).
TEST(Degradation, RepairedSpareUndoublesTheRole) {
  AcrConfig ac = burst_acr_config();
  ac.degrade = DegradeMode::Shrink;
  Sim sim(ac, 0, 23);
  double mid = reference().finish_time * 0.3;
  sim.runtime.engine().schedule_at(mid, [&sim] {
    sim.runtime.cluster().kill_role(1, 5);
  });
  sim.runtime.engine().schedule_at(mid + 0.005, [&sim] {
    rt::Cluster& c = sim.runtime.cluster();
    for (int pid = 0; pid < c.num_hardware_nodes(); ++pid)
      if (!c.physical_node(pid).alive() && c.repair_node(pid))
        sim.runtime.manager().note_spare_available();
  });
  RunSummary s = sim.runtime.run(30.0);
  ASSERT_TRUE(s.complete);
  EXPECT_EQ(s.roles_doubled, 1u);
  EXPECT_EQ(s.roles_undoubled, 1u);
  EXPECT_TRUE(sim.runtime.cluster().doubled_roles().empty());
  EXPECT_TRUE(trace_contains(sim.runtime, rt::TraceKind::RoleUndoubled));
  sim.runtime.engine().run_until(s.finish_time + 0.05);
  EXPECT_EQ(verified_digest(sim.runtime), reference().digest);
}

// ---------------------------------------------------------------------------
// Unrecoverable patterns degrade to scratch restart (satellite c).
// ---------------------------------------------------------------------------

/// Both buddies of one node index die at the same instant under partner
/// redundancy: the verified image is gone from both replicas, so the job
/// must cleanly fall back to a scratch restart — and still finish right.
TEST(Degradation, SimultaneousBuddyPairLossFallsBackToScratch) {
  Sim sim(burst_acr_config(), 4, 31);
  double mid = reference().finish_time * 0.5;
  sim.runtime.engine().schedule_at(mid, [&sim] {
    sim.runtime.cluster().kill_role(0, 4);
    sim.runtime.cluster().kill_role(1, 4);
  });
  RunSummary s = sim.runtime.run(30.0);
  ASSERT_TRUE(s.complete) << "buddy-pair loss wedged the job";
  EXPECT_GE(s.scratch_restarts, 1u);
  sim.runtime.engine().run_until(s.finish_time + 0.05);
  EXPECT_EQ(verified_digest(sim.runtime), reference().digest);
}

/// Two members of one xor parity group die at the same instant: beyond
/// single-parity coverage, must degrade to scratch, not wedge.
TEST(Degradation, SimultaneousGroupDoubleLossFallsBackToScratch) {
  AcrConfig ac = burst_acr_config();
  ac.redundancy = ckpt::Scheme::Xor;
  ac.xor_group_size = 4;
  Sim sim(ac, 4, 32);
  double mid = reference().finish_time * 0.5;
  sim.runtime.engine().schedule_at(mid, [&sim] {
    sim.runtime.cluster().kill_role(0, 1);  // group {0,1,2,3}
    sim.runtime.cluster().kill_role(0, 2);
  });
  RunSummary s = sim.runtime.run(30.0);
  ASSERT_TRUE(s.complete) << "group double-loss wedged the job";
  EXPECT_GE(s.scratch_restarts, 1u);
  sim.runtime.engine().run_until(s.finish_time + 0.05);
  EXPECT_EQ(verified_digest(sim.runtime), reference().digest);
}

// ---------------------------------------------------------------------------
// Failure during recovery: waves are serialized, never interleaved.
// ---------------------------------------------------------------------------

/// A second failure landing mid-rollback abandons the first wave (its
/// restore floor rises past the stale barrier) and restarts recovery
/// against the new membership. The observable contract: completion with
/// the bitwise-correct answer, never a wedge or a stale-wave revival.
TEST(Degradation, SecondFailureMidRecoveryIsSerialized) {
  Sim sim(burst_acr_config(), 6, 33);
  double mid = reference().finish_time * 0.5;
  sim.runtime.engine().schedule_at(mid, [&sim] {
    sim.runtime.cluster().kill_role(0, 2);
  });
  // Inside the first recovery's detection+restore window: a different
  // role, different buddy column, dies while rollback commands fly.
  sim.runtime.engine().schedule_at(mid + 0.002, [&sim] {
    sim.runtime.cluster().kill_role(1, 6);
  });
  RunSummary s = sim.runtime.run(30.0);
  ASSERT_TRUE(s.complete) << "overlapping failures wedged the job";
  EXPECT_GE(s.hard_failures, 2u);
  sim.runtime.engine().run_until(s.finish_time + 0.05);
  EXPECT_EQ(verified_digest(sim.runtime), reference().digest);
}

/// Same, under xor redundancy with the second death mid-group-rebuild.
TEST(Degradation, SecondFailureMidXorRebuildIsSerialized) {
  AcrConfig ac = burst_acr_config();
  ac.redundancy = ckpt::Scheme::Xor;
  ac.xor_group_size = 4;
  Sim sim(ac, 6, 34);
  double mid = reference().finish_time * 0.5;
  sim.runtime.engine().schedule_at(mid, [&sim] {
    sim.runtime.cluster().kill_role(0, 1);
  });
  sim.runtime.engine().schedule_at(mid + 0.0015, [&sim] {
    sim.runtime.cluster().kill_role(0, 5);  // other group of replica 0
  });
  RunSummary s = sim.runtime.run(30.0);
  ASSERT_TRUE(s.complete) << "failure mid-rebuild wedged the job";
  sim.runtime.engine().run_until(s.finish_time + 0.05);
  EXPECT_EQ(verified_digest(sim.runtime), reference().digest);
}

// ---------------------------------------------------------------------------
// End-to-end burst injection through the runtime.
// ---------------------------------------------------------------------------

/// Full pipeline: burst plan set on the runtime, seeds strike hardware
/// (spares included), repairs re-pool, summary counters line up with the
/// cluster's, and the adaptive interval reacts to the burst arrivals.
TEST(BurstEndToEnd, BurstsRepairsAndAdaptiveIntervalReact) {
  AcrConfig ac = burst_acr_config();
  ac.degrade = DegradeMode::Shrink;
  ac.adaptive = true;
  ac.adaptive_config.checkpoint_cost = ac.checkpoint_interval / 20.0;
  ac.adaptive_config.min_interval = ac.checkpoint_interval / 4.0;
  ac.adaptive_config.max_interval = ac.checkpoint_interval * 8.0;
  Sim sim(ac, 2, 41);
  failure::BurstConfig bc;
  bc.seed_mtbf = 0.01;
  bc.follow_prob = 0.6;
  bc.window = 0.001;
  bc.domain_size = 4;
  bc.repair_mean = 0.02;
  sim.runtime.set_burst_plan(bc);
  RunSummary s = sim.runtime.run(30.0);
  ASSERT_TRUE(s.complete || s.failed);  // must decide, never wedge
  EXPECT_GE(s.burst_seeds, 1u);
  EXPECT_GE(s.burst_node_kills, s.burst_seeds);
  const rt::Cluster::SpareCounters& sc = sim.runtime.cluster().spare_counters();
  EXPECT_EQ(s.spare_promotions, sc.promotions);
  EXPECT_EQ(s.spare_repairs, sc.repairs);
  EXPECT_EQ(s.spare_failures, sc.spare_failures);
  EXPECT_EQ(s.spare_low_water, sc.low_water);
  if (s.burst_node_kills > 0) {
    // The estimator saw the burst arrivals: interval off its ceiling.
    EXPECT_LT(sim.runtime.manager().current_interval(),
              ac.adaptive_config.max_interval);
  }
}

/// Determinism: the whole burst/repair/shrink pipeline replays bit-equal
/// under the same master seed.
TEST(BurstEndToEnd, RunsAreDeterministicPerSeed) {
  auto one = [](std::uint64_t seed) {
    AcrConfig ac = burst_acr_config();
    ac.degrade = DegradeMode::Shrink;
    Sim sim(ac, 2, seed);
    failure::BurstConfig bc;
    bc.seed_mtbf = 0.012;
    bc.follow_prob = 0.5;
    bc.domain_size = 4;
    bc.repair_mean = 0.025;
    sim.runtime.set_burst_plan(bc);
    RunSummary s = sim.runtime.run(30.0);
    std::uint64_t digest = 0;
    if (s.complete) {
      sim.runtime.engine().run_until(s.finish_time + 0.05);
      digest = verified_digest(sim.runtime);
    }
    return std::make_tuple(s.complete, s.finish_time, s.burst_node_kills,
                           s.roles_doubled, s.spare_repairs, digest);
  };
  EXPECT_EQ(one(55), one(55));
  EXPECT_NE(one(55), one(56));
}

}  // namespace
}  // namespace acr
