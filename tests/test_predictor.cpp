// Failure-prediction hook (§2.2): analytic model and end-to-end effect.
#include <gtest/gtest.h>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "failure/distributions.h"

namespace acr {
namespace {

TEST(PredictorModel, PerfectPredictionAlwaysWinsWhenCheckpointsAreCheap) {
  PredictorConfig cfg;
  cfg.recall = 1.0;
  cfg.precision = 1.0;
  // tau/2 >> checkpoint cost: prediction strictly reduces overhead.
  double delta = prediction_overhead_delta(cfg, /*tau=*/100.0, /*mtbf=*/1000.0,
                                           /*checkpoint_cost=*/1.0);
  EXPECT_LT(delta, 0.0);
}

TEST(PredictorModel, LowPrecisionCanLose) {
  PredictorConfig cfg;
  cfg.recall = 1.0;
  cfg.precision = 0.01;  // 99 false alarms per true warning
  double delta = prediction_overhead_delta(cfg, /*tau=*/10.0, /*mtbf=*/1000.0,
                                           /*checkpoint_cost=*/30.0);
  EXPECT_GT(delta, 0.0);
}

TEST(PredictorModel, DeltaScalesLinearlyWithRecall) {
  PredictorConfig half;
  half.recall = 0.5;
  PredictorConfig full;
  full.recall = 1.0;
  double d_half =
      prediction_overhead_delta(half, 100.0, 1000.0, 1.0);
  double d_full =
      prediction_overhead_delta(full, 100.0, 1000.0, 1.0);
  EXPECT_NEAR(d_full, 2.0 * d_half, 1e-12);
}

TEST(PredictorModel, BreakevenMatchesBracketSign) {
  PredictorConfig cfg;
  cfg.precision = 0.5;
  // checkpoint_cost/precision < tau/2 -> helps at any recall.
  EXPECT_DOUBLE_EQ(prediction_breakeven_recall(cfg, 100.0, 1e4, 10.0), 0.0);
  // checkpoint_cost/precision > tau/2 -> never helps.
  EXPECT_DOUBLE_EQ(prediction_breakeven_recall(cfg, 10.0, 1e4, 10.0), 1.0);
}

TEST(PredictorRuntime, WarningTriggersCheckpointBeforeFailure) {
  apps::Jacobi3DConfig j;
  j.tasks_x = j.tasks_y = j.tasks_z = 2;
  j.block_x = j.block_y = j.block_z = 4;
  j.iterations = 40;
  j.slots_per_node = 2;
  j.seconds_per_point = 1e-5;

  AcrConfig ac;
  ac.scheme = ResilienceScheme::Strong;
  ac.checkpoint_interval = 0.01;  // long period: rework would be expensive
  ac.heartbeat_period = 0.0005;
  ac.heartbeat_timeout = 0.002;

  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 4;

  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  // One hard failure at a known-ish time via a renewal process with a huge
  // first gap ruled out: use a short-mean process bounded by the horizon.
  FaultPlan plan;
  plan.arrivals = std::make_shared<failure::RenewalProcess>(
      std::make_shared<failure::Exponential>(0.006));
  plan.sdc_fraction = 0.0;
  plan.horizon = 0.012;
  PredictorConfig pred;
  pred.recall = 1.0;
  pred.precision = 1.0;
  pred.lead_time = 0.002;
  runtime.set_predictor(pred);
  runtime.set_fault_plan(plan);

  RunSummary s = runtime.run(10.0);
  ASSERT_TRUE(s.complete);
  if (s.hard_failures == 0) GTEST_SKIP() << "no failure landed in horizon";
  EXPECT_GE(runtime.warnings_issued(), 1u);

  // Every injected hard failure must be preceded by a checkpoint request
  // within the lead window (the warning's immediate checkpoint).
  const auto& events = runtime.trace().events();
  for (const auto& e : events) {
    if (e.kind != rt::TraceKind::HardFailureInjected) continue;
    bool warned = false;
    for (const auto& w : events) {
      if (w.kind == rt::TraceKind::CheckpointRequested &&
          w.time <= e.time && w.time >= e.time - 3.0 * pred.lead_time)
        warned = true;
    }
    EXPECT_TRUE(warned) << "failure at " << e.time
                        << " had no preceding proactive checkpoint";
  }
}

TEST(PredictorRuntime, PredictionReducesTotalTimeUnderFrequentFailures) {
  auto run_once = [](bool with_predictor) {
    apps::Jacobi3DConfig j;
    j.tasks_x = j.tasks_y = j.tasks_z = 2;
    j.block_x = j.block_y = j.block_z = 4;
    j.iterations = 60;
    j.slots_per_node = 2;
    j.seconds_per_point = 1e-5;
    AcrConfig ac;
    ac.scheme = ResilienceScheme::Strong;
    ac.checkpoint_interval = 0.015;  // sparse periodic checkpoints
    ac.heartbeat_period = 0.0005;
    ac.heartbeat_timeout = 0.002;
    rt::ClusterConfig cc;
    cc.nodes_per_replica = j.nodes_needed();
    cc.spare_nodes = 12;
    cc.seed = 4242;
    AcrRuntime runtime(ac, cc);
    runtime.set_task_factory(j.factory());
    runtime.setup();
    FaultPlan plan;
    plan.arrivals = std::make_shared<failure::RenewalProcess>(
        std::make_shared<failure::Exponential>(0.012));
    plan.sdc_fraction = 0.0;
    if (with_predictor) {
      PredictorConfig pred;
      pred.recall = 1.0;
      pred.precision = 1.0;
      pred.lead_time = 0.001;
      runtime.set_predictor(pred);
    }
    runtime.set_fault_plan(plan);
    RunSummary s = runtime.run(30.0);
    EXPECT_TRUE(s.complete || s.failed);
    return s;
  };
  RunSummary without = run_once(false);
  RunSummary with = run_once(true);
  if (without.complete && with.complete && without.hard_failures >= 2) {
    // Identical fault draws are not guaranteed (the predictor consumes rng
    // values), so allow slack; the win must still be visible.
    EXPECT_LT(with.finish_time, without.finish_time * 1.02);
  }
}

}  // namespace
}  // namespace acr
