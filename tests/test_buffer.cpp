// Shared-buffer layer tests: slice aliasing, copy-on-write, arena reuse
// across checkpoint epochs, streaming checksum sinks, and zero-copy message
// payload fan-out through the cluster.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "buf/buffer.h"
#include "checksum/crc32c.h"
#include "checksum/sink.h"
#include "pup/pup.h"
#include "rt/cluster.h"
#include "rt/message.h"

namespace acr {
namespace {

std::vector<std::byte> pattern_bytes(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((seed * 37 + i * 13) & 0xFF);
  return v;
}

TEST(Buffer, DefaultIsEmpty) {
  buf::Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.data(), nullptr);
  EXPECT_EQ(b.owners(), 0);
}

TEST(Buffer, CopyOfAndWrapHoldTheBytes) {
  auto src = pattern_bytes(64);
  buf::Buffer a = buf::Buffer::copy_of(src);
  buf::Buffer b = buf::Buffer::wrap(std::vector<std::byte>(src));
  ASSERT_EQ(a.size(), src.size());
  ASSERT_EQ(b.size(), src.size());
  EXPECT_EQ(std::memcmp(a.data(), src.data(), src.size()), 0);
  EXPECT_EQ(std::memcmp(b.data(), src.data(), src.size()), 0);
  EXPECT_FALSE(a.aliases(b));
}

TEST(Buffer, CopiesShareStorage) {
  buf::Buffer a = buf::Buffer::copy_of(pattern_bytes(32));
  EXPECT_EQ(a.owners(), 1);
  buf::Buffer b = a;
  EXPECT_TRUE(a.aliases(b));
  EXPECT_EQ(a.owners(), 2);
  EXPECT_EQ(a.data(), b.data());  // literally the same bytes, no copy
}

TEST(Buffer, SliceAliasesParentStorage) {
  buf::Buffer whole = buf::Buffer::copy_of(pattern_bytes(100));
  buf::Buffer mid = whole.slice(10, 20);
  EXPECT_EQ(mid.size(), 20u);
  EXPECT_TRUE(mid.aliases(whole));
  EXPECT_EQ(mid.data(), whole.data() + 10);
  EXPECT_EQ(whole.owners(), 2);
  // Slices of slices still point into the one storage.
  buf::Buffer inner = mid.slice(5, 5);
  EXPECT_TRUE(inner.aliases(whole));
  EXPECT_EQ(inner.data(), whole.data() + 15);
  EXPECT_EQ(whole.owners(), 3);
}

TEST(Buffer, SliceBoundsAreChecked) {
  buf::Buffer b = buf::Buffer::copy_of(pattern_bytes(16));
  EXPECT_THROW(b.slice(10, 10), RequireError);
  EXPECT_THROW(b.slice(17, 0), RequireError);
  EXPECT_EQ(b.slice(16, 0).size(), 0u);  // empty tail slice is fine
}

TEST(Buffer, MutableBytesOnUniqueWholeBufferWritesInPlace) {
  buf::Buffer b = buf::Buffer::copy_of(pattern_bytes(16));
  const std::byte* before = b.data();
  auto span = b.mutable_bytes();
  span[0] = std::byte{0xAB};
  EXPECT_EQ(b.data(), before);  // unique + whole view: no detach
  EXPECT_EQ(b.bytes()[0], std::byte{0xAB});
}

TEST(Buffer, MutableBytesDetachesWhenShared) {
  buf::Buffer a = buf::Buffer::copy_of(pattern_bytes(16));
  buf::Buffer b = a;
  auto span = b.mutable_bytes();  // copy-on-write
  span[0] = std::byte{0xFF};
  EXPECT_FALSE(a.aliases(b));
  EXPECT_EQ(b.bytes()[0], std::byte{0xFF});
  EXPECT_NE(a.bytes()[0], std::byte{0xFF});  // other view untouched
}

TEST(Buffer, MutableBytesDetachesSlices) {
  buf::Buffer whole = buf::Buffer::copy_of(pattern_bytes(32));
  buf::Buffer sl = whole.slice(8, 8);
  auto span = sl.mutable_bytes();
  span[0] = std::byte{0xEE};
  EXPECT_FALSE(sl.aliases(whole));  // a slice always detaches before writes
  EXPECT_NE(whole.bytes()[8], std::byte{0xEE});
}

TEST(BufferBuilder, AppendsAcrossWritesAndSeals) {
  buf::BufferBuilder bb;
  auto p1 = pattern_bytes(10, 1);
  auto p2 = pattern_bytes(7, 2);
  bb.write(p1);
  bb.append(p2.data(), p2.size());
  EXPECT_EQ(bb.size(), 17u);
  buf::Buffer out = bb.take();
  ASSERT_EQ(out.size(), 17u);
  EXPECT_EQ(std::memcmp(out.data(), p1.data(), p1.size()), 0);
  EXPECT_EQ(std::memcmp(out.data() + 10, p2.data(), p2.size()), 0);
  EXPECT_EQ(bb.size(), 0u);  // builder is empty again
}

TEST(BufferBuilder, ReusesArenaAcrossEpochsOnceBuffersDrop) {
  buf::BufferBuilder bb;
  auto payload = pattern_bytes(256);
  {
    bb.write(payload);
    buf::Buffer epoch1 = bb.take();
    EXPECT_EQ(bb.stats().arena_allocations, 1u);
  }  // epoch1 dropped -> its arena is reclaimable
  bb.write(payload);
  buf::Buffer epoch2 = bb.take();
  EXPECT_EQ(bb.stats().arena_allocations, 1u);  // no new allocation
  EXPECT_EQ(bb.stats().arena_reuses, 1u);
  ASSERT_EQ(epoch2.size(), payload.size());
  EXPECT_EQ(std::memcmp(epoch2.data(), payload.data(), payload.size()), 0);
}

TEST(BufferBuilder, DoubleBufferedEpochsGoAllocationFree) {
  // ACR's store keeps two checkpoints live (verified + candidate). Model
  // that: hold the previous two buffers while building the next. After the
  // pool warms up, every further epoch reuses a retired arena.
  buf::BufferBuilder bb;
  auto payload = pattern_bytes(512);
  buf::Buffer verified, candidate;
  for (int epoch = 0; epoch < 20; ++epoch) {
    bb.write(payload);
    verified = std::move(candidate);
    candidate = bb.take();
  }
  EXPECT_EQ(bb.stats().buffers_taken, 20u);
  EXPECT_LE(bb.stats().arena_allocations, 3u);  // pool warm-up only
  EXPECT_GE(bb.stats().arena_reuses, 17u);      // steady state recycles
}

TEST(BufferBuilder, LiveBuffersAreNeverRecycledInto) {
  buf::BufferBuilder bb;
  auto p1 = pattern_bytes(64, 1);
  bb.write(p1);
  buf::Buffer held = bb.take();  // stays alive across the next build
  auto p2 = pattern_bytes(64, 9);
  bb.write(p2);
  buf::Buffer fresh = bb.take();
  EXPECT_FALSE(held.aliases(fresh));
  EXPECT_EQ(std::memcmp(held.data(), p1.data(), p1.size()), 0);  // intact
  EXPECT_EQ(bb.stats().arena_allocations, 2u);
}

TEST(TeeSink, ForwardsToBothSinks) {
  buf::BufferBuilder a, b;
  buf::TeeSink tee(a, b);
  auto payload = pattern_bytes(48);
  tee.write(payload);
  buf::Buffer ba = a.take(), bbuf = b.take();
  ASSERT_EQ(ba.size(), payload.size());
  ASSERT_EQ(bbuf.size(), payload.size());
  EXPECT_EQ(std::memcmp(ba.data(), bbuf.data(), payload.size()), 0);
}

TEST(ChecksumSink, StreamingFletcherMatchesOneShotForAnyGranularity) {
  auto payload = pattern_bytes(1031);  // deliberately not a multiple of 4
  std::uint64_t expect = checksum::fletcher64(payload);
  for (std::size_t chunk : {1u, 3u, 9u, 64u, 1031u}) {
    checksum::Fletcher64Sink sink;
    for (std::size_t off = 0; off < payload.size(); off += chunk) {
      std::size_t n = std::min(chunk, payload.size() - off);
      sink.write(std::span<const std::byte>(payload.data() + off, n));
    }
    EXPECT_EQ(sink.digest(), expect) << "chunk=" << chunk;
  }
}

TEST(ChecksumSink, StreamingCrc32cMatchesOneShot) {
  auto payload = pattern_bytes(777);
  checksum::Crc32cSink sink;
  sink.write(std::span<const std::byte>(payload.data(), 500));
  sink.write(std::span<const std::byte>(payload.data() + 500, 277));
  EXPECT_EQ(sink.digest(), checksum::crc32c(payload));
}

TEST(PackerTee, DigestFoldedDuringPackEqualsPostPackChecksum) {
  // The §4.2 one-pass property: the digest the sink folds while the Packer
  // streams records equals a fletcher64 over the finished image.
  struct Blob {
    std::vector<double> xs;
    std::uint64_t iter = 0;
    void pup(pup::Puper& p) {
      p | xs;
      p | iter;
    }
  };
  Blob blob;
  blob.xs.resize(100);
  std::iota(blob.xs.begin(), blob.xs.end(), 0.25);
  blob.iter = 41;

  checksum::Fletcher64Sink sink;
  pup::Packer packer;
  packer.tee(&sink);
  packer | blob;
  pup::Checkpoint ckpt = packer.take();
  EXPECT_EQ(sink.digest(), checksum::fletcher64(ckpt.bytes()));
  EXPECT_EQ(sink.bytes_consumed(), ckpt.size());
}

TEST(CheckpointBuffer, CheckpointsShareTheirBufferOnCopy) {
  pup::Packer packer;
  std::uint64_t v = 7;
  packer | v;
  pup::Checkpoint a = packer.take();
  pup::Checkpoint b = a;  // checkpoint copy = buffer refcount bump
  EXPECT_TRUE(a.buffer().aliases(b.buffer()));
}

// --- zero-copy fan-out through the runtime ---------------------------------

/// Task that keeps the payload Buffer of every message it receives.
class CaptureTask final : public rt::Task {
 public:
  void on_start() override {}
  void on_resume() override {}
  void on_message(const rt::Message& m) override {
    payloads.push_back(m.payload);
  }
  void pup(pup::Puper&) override {}
  std::uint64_t progress() const override { return 0; }

  std::vector<buf::Buffer> payloads;
};

TEST(ClusterFanOut, BroadcastPayloadIsSharedNotCopied) {
  rt::Engine engine;
  rt::ClusterConfig cfg;
  cfg.nodes_per_replica = 4;
  cfg.spare_nodes = 0;
  rt::Cluster cluster(engine, cfg);
  cluster.set_task_factory([](int, int) {
    std::vector<std::unique_ptr<rt::Task>> out;
    out.push_back(std::make_unique<CaptureTask>());
    return out;
  });
  cluster.populate();

  buf::Buffer payload = buf::Buffer::copy_of(pattern_bytes(1024));
  for (int i = 0; i < 4; ++i)
    cluster.send_task(0, rt::TaskAddr{0, 0}, rt::TaskAddr{i, 0}, 5, payload);
  engine.run();

  for (int i = 0; i < 4; ++i) {
    auto& task =
        static_cast<CaptureTask&>(cluster.node_at(0, i).task(0));
    ASSERT_EQ(task.payloads.size(), 1u) << "node " << i;
    // Every recipient sees the one allocation; nothing was copied per node.
    EXPECT_TRUE(task.payloads[0].aliases(payload));
    EXPECT_EQ(task.payloads[0].data(), payload.data());
  }
  EXPECT_EQ(payload.owners(), 1 + 4);  // ours + one per captured delivery
}

}  // namespace
}  // namespace acr
