// Durable-tier soak: correlated bursts over a shallow spare pool WITH the
// L2 tier enabled.
//
// Property (ISSUE acceptance): whenever a burst defeats L1 — buddy-pair
// loss, pool exhaustion — the job restores from the newest fully-flushed
// L2 epoch instead of restarting from scratch. Every seeded run completes
// with the bitwise fault-free answer, and a scratch restart is permitted
// ONLY if no epoch had finished flushing at that moment (checked against
// the trace: no "restart from scratch" rollback after the first
// epoch-durable record). Control seeds with the tier disabled pin the
// no-L2 pipeline to the same digest as the single-tier build.
//
// Runs under the `tier-soak` ctest label (CI runs it with ASan/UBSan).
#include <gtest/gtest.h>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "soak_util.h"

namespace acr {
namespace {

AcrConfig soak_acr_config(bool tier) {
  AcrConfig ac = soak::base_acr_config();
  ac.redundancy = ckpt::Scheme::Partner;
  ac.degrade = DegradeMode::Shrink;
  if (tier) ac.tier.bandwidth = 1e9;
  return ac;
}

/// Fault-free, tier-free run fixing the expected answer.
const soak::Reference& reference() {
  static soak::Reference cached = soak::make_reference(
      soak::small_app(), soak_acr_config(/*tier=*/false),
      "tier soak reference run must complete");
  return cached;
}

struct SoakOutcome {
  soak::Outcome out;
  bool scratch_after_durable = false;
  bool hardware_annihilated = false;
};

SoakOutcome soak_run(std::uint64_t seed, bool tier) {
  apps::Jacobi3DConfig j = soak::small_app();
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 2;  // shallow pool: bursts WILL exhaust it
  cc.seed = seed;
  AcrRuntime runtime(soak_acr_config(tier), cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  runtime.set_burst_plan(soak::default_burst_config(reference().finish_time));
  SoakOutcome o;
  o.out = soak::run_and_digest(runtime);
  // A scratch restart is legitimate only before the first epoch finished
  // flushing; afterwards the ladder must always serve an L2 fetch.
  o.scratch_after_durable = soak::scratch_after_first_durable(runtime);
  // A burst can kill every host of a replica before any repair returns;
  // no checkpoint level can continue without hardware, so that abort is
  // acceptable — but only if the single-tier pipeline aborts there too.
  o.hardware_annihilated = soak::hardware_annihilated(runtime);
  return o;
}

class TierSoak : public ::testing::TestWithParam<int> {};

TEST_P(TierSoak, BurstsRestoreFromL2Bitwise) {
  std::uint64_t seed = 650000 + static_cast<std::uint64_t>(GetParam()) * 7717;
  SoakOutcome o = soak_run(seed, /*tier=*/true);
  if (!o.out.summary.complete) {
    // The only tolerated failure: the burst wiped every host of a replica
    // (nothing any checkpoint level can do), and the single-tier pipeline
    // aborts on this seed as well — the tier never makes a run worse.
    EXPECT_TRUE(o.hardware_annihilated)
        << "aborted or wedged at t=" << o.out.summary.finish_time << " (seed "
        << seed << ", kills=" << o.out.summary.burst_node_kills
        << ", waves=" << o.out.summary.l2_fetch_waves
        << ", scratch=" << o.out.summary.scratch_restarts << ")";
    SoakOutcome control = soak_run(seed, /*tier=*/false);
    EXPECT_FALSE(control.out.summary.complete)
        << "seed " << seed
        << ": tier run aborted where the single-tier run completes";
  } else {
    EXPECT_FALSE(o.out.summary.failed);
    EXPECT_EQ(o.out.digest, reference().digest) << "seed " << seed;
  }
  EXPECT_FALSE(o.scratch_after_durable)
      << "seed " << seed << ": scratch restart while a flushed epoch existed";
}

INSTANTIATE_TEST_SUITE_P(Seeds, TierSoak, ::testing::Range(0, 100));

/// No-L2 control seeds: the same bursts with the tier disabled exercise
/// the unchanged single-tier pipeline and still reach the reference
/// answer (completion is guaranteed by the burst-soak property).
class TierSoakControl : public ::testing::TestWithParam<int> {};

TEST_P(TierSoakControl, NoTierControlMatchesReferenceBitwise) {
  std::uint64_t seed = 650000 + static_cast<std::uint64_t>(GetParam()) * 7717;
  SoakOutcome o = soak_run(seed, /*tier=*/false);
  ASSERT_TRUE(o.out.summary.complete);
  EXPECT_EQ(o.out.summary.l2_flushes, 0u);
  EXPECT_EQ(o.out.summary.l2_fetch_waves, 0u);
  EXPECT_EQ(o.out.digest, reference().digest) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TierSoakControl, ::testing::Range(0, 10));

}  // namespace
}  // namespace acr
