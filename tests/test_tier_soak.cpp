// Durable-tier soak: correlated bursts over a shallow spare pool WITH the
// L2 tier enabled.
//
// Property (ISSUE acceptance): whenever a burst defeats L1 — buddy-pair
// loss, pool exhaustion — the job restores from the newest fully-flushed
// L2 epoch instead of restarting from scratch. Every seeded run completes
// with the bitwise fault-free answer, and a scratch restart is permitted
// ONLY if no epoch had finished flushing at that moment (checked against
// the trace: no "restart from scratch" rollback after the first
// epoch-durable record). Control seeds with the tier disabled pin the
// no-L2 pipeline to the same digest as the single-tier build.
//
// Runs under the `tier-soak` ctest label (CI runs it with ASan/UBSan).
#include <gtest/gtest.h>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "checksum/fletcher.h"
#include "failure/correlated.h"

namespace acr {
namespace {

apps::Jacobi3DConfig soak_app() {
  apps::Jacobi3DConfig cfg;
  cfg.tasks_x = cfg.tasks_y = 2;
  cfg.tasks_z = 4;
  cfg.block_x = cfg.block_y = cfg.block_z = 4;
  cfg.iterations = 40;
  cfg.slots_per_node = 2;  // 8 nodes per replica
  cfg.seconds_per_point = 1e-5;
  return cfg;
}

AcrConfig soak_acr_config(bool tier) {
  AcrConfig ac;
  ac.scheme = ResilienceScheme::Strong;
  ac.redundancy = ckpt::Scheme::Partner;
  ac.degrade = DegradeMode::Shrink;
  ac.checkpoint_interval = 0.003;
  ac.heartbeat_period = 0.0004;
  ac.heartbeat_timeout = 0.0016;
  if (tier) ac.tier.bandwidth = 1e9;
  return ac;
}

std::uint64_t verified_digest(AcrRuntime& runtime) {
  checksum::Fletcher64 f;
  for (int i = 0; i < runtime.cluster().nodes_per_replica(); ++i) {
    NodeAgent& a = runtime.agent_at(0, i);
    NodeAgent& b = runtime.agent_at(1, i);
    const NodeAgent& best = a.verified_epoch() >= b.verified_epoch() ? a : b;
    f.append(best.verified_image());
  }
  return f.digest();
}

struct Reference {
  std::uint64_t digest = 0;
  double finish_time = 0.0;
};

/// Fault-free, tier-free run fixing the expected answer.
const Reference& reference() {
  static Reference cached = [] {
    apps::Jacobi3DConfig j = soak_app();
    rt::ClusterConfig cc;
    cc.nodes_per_replica = j.nodes_needed();
    cc.spare_nodes = 0;
    AcrRuntime runtime(soak_acr_config(/*tier=*/false), cc);
    runtime.set_task_factory(j.factory());
    runtime.setup();
    RunSummary s = runtime.run(1e3);
    ACR_REQUIRE(s.complete, "tier soak reference run must complete");
    Reference ref;
    ref.digest = verified_digest(runtime);
    ref.finish_time = s.finish_time;
    return ref;
  }();
  return cached;
}

struct SoakOutcome {
  RunSummary summary;
  std::uint64_t digest = 0;
  bool scratch_after_durable = false;
  bool hardware_annihilated = false;
};

SoakOutcome soak_run(std::uint64_t seed, bool tier) {
  apps::Jacobi3DConfig j = soak_app();
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 2;  // shallow pool: bursts WILL exhaust it
  cc.seed = seed;
  AcrRuntime runtime(soak_acr_config(tier), cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  failure::BurstConfig bc;
  bc.seed_mtbf = reference().finish_time / 3.0;
  bc.weibull_shape = 0.7;
  bc.follow_prob = 0.5;
  bc.window = 0.001;
  bc.domain_size = 4;
  bc.repair_mean = reference().finish_time / 5.0;
  runtime.set_burst_plan(bc);
  SoakOutcome out;
  out.summary = runtime.run(/*max_virtual_time=*/30.0);
  if (out.summary.complete) {
    runtime.engine().run_until(out.summary.finish_time + 0.05);
    out.digest = verified_digest(runtime);
  }
  // A scratch restart is legitimate only before the first epoch finished
  // flushing; afterwards the ladder must always serve an L2 fetch.
  double first_durable = -1.0;
  for (const auto& e : runtime.trace().events()) {
    if (e.kind == rt::TraceKind::EpochDurable) {
      first_durable = e.time;
      break;
    }
  }
  if (first_durable >= 0.0) {
    for (const auto& e : runtime.trace().events()) {
      if (e.kind == rt::TraceKind::Rollback && e.time >= first_durable &&
          e.detail.find("restart from scratch") != std::string::npos)
        out.scratch_after_durable = true;
    }
  }
  // A burst can kill every host of a replica before any repair returns;
  // no checkpoint level can continue without hardware, so that abort is
  // acceptable — but only if the single-tier pipeline aborts there too.
  for (const auto& e : runtime.trace().events())
    if (e.detail.find("no surviving host") != std::string::npos)
      out.hardware_annihilated = true;
  return out;
}

class TierSoak : public ::testing::TestWithParam<int> {};

TEST_P(TierSoak, BurstsRestoreFromL2Bitwise) {
  std::uint64_t seed = 650000 + static_cast<std::uint64_t>(GetParam()) * 7717;
  SoakOutcome o = soak_run(seed, /*tier=*/true);
  if (!o.summary.complete) {
    // The only tolerated failure: the burst wiped every host of a replica
    // (nothing any checkpoint level can do), and the single-tier pipeline
    // aborts on this seed as well — the tier never makes a run worse.
    EXPECT_TRUE(o.hardware_annihilated)
        << "aborted or wedged at t=" << o.summary.finish_time << " (seed "
        << seed << ", kills=" << o.summary.burst_node_kills
        << ", waves=" << o.summary.l2_fetch_waves
        << ", scratch=" << o.summary.scratch_restarts << ")";
    SoakOutcome control = soak_run(seed, /*tier=*/false);
    EXPECT_FALSE(control.summary.complete)
        << "seed " << seed
        << ": tier run aborted where the single-tier run completes";
  } else {
    EXPECT_FALSE(o.summary.failed);
    EXPECT_EQ(o.digest, reference().digest) << "seed " << seed;
  }
  EXPECT_FALSE(o.scratch_after_durable)
      << "seed " << seed << ": scratch restart while a flushed epoch existed";
}

INSTANTIATE_TEST_SUITE_P(Seeds, TierSoak, ::testing::Range(0, 100));

/// No-L2 control seeds: the same bursts with the tier disabled exercise
/// the unchanged single-tier pipeline and still reach the reference
/// answer (completion is guaranteed by the burst-soak property).
class TierSoakControl : public ::testing::TestWithParam<int> {};

TEST_P(TierSoakControl, NoTierControlMatchesReferenceBitwise) {
  std::uint64_t seed = 650000 + static_cast<std::uint64_t>(GetParam()) * 7717;
  SoakOutcome o = soak_run(seed, /*tier=*/false);
  ASSERT_TRUE(o.summary.complete);
  EXPECT_EQ(o.summary.l2_flushes, 0u);
  EXPECT_EQ(o.summary.l2_fetch_waves, 0u);
  EXPECT_EQ(o.digest, reference().digest) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TierSoakControl, ::testing::Range(0, 10));

}  // namespace
}  // namespace acr
