// XOR-redundancy fault soak.
//
// Property (ISSUE acceptance): under --ckpt-scheme=xor, killing any single
// node per parity group mid-run must be survivable — every run completes
// and its verified answer is bitwise identical to the fault-free answer.
// The group rebuild may legitimately fall back to a scratch restart when a
// member dies inside the commit→parity-exchange window (survivor parity
// lags the verified epoch), so scratch_restarts is not asserted zero; the
// bitwise answer is the contract.
//
// Runs under the `xor-soak` ctest label (CI runs it with ASan/UBSan).
#include <gtest/gtest.h>

#include <vector>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "ckpt/group.h"
#include "common/rng.h"
#include "soak_util.h"

namespace acr {
namespace {

constexpr int kGroupSize = 4;

AcrConfig soak_acr_config() {
  AcrConfig ac = soak::base_acr_config();  // xor requires strong
  ac.redundancy = ckpt::Scheme::Xor;
  ac.xor_group_size = kGroupSize;
  return ac;
}

/// Fault-free run under the *xor* configuration: fixes the expected answer
/// and the nominal completion time the kill schedule is drawn from (and
/// doubles as a check that the parity exchange itself is harmless).
const soak::Reference& reference() {
  static soak::Reference cached = soak::make_reference(
      soak::small_app(), soak_acr_config(),
      "xor soak reference run must complete");
  return cached;
}

/// One soak run: for every parity group in every replica, schedule the
/// death of one uniformly chosen member at a uniformly chosen time within
/// the nominal run. Returns the summary plus the verified digest.
struct SoakOutcome {
  soak::Outcome out;
  int kills = 0;
};

SoakOutcome soak_run(std::uint64_t seed) {
  apps::Jacobi3DConfig j = soak::small_app();
  AcrConfig ac = soak_acr_config();
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 16;
  cc.seed = seed;
  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();

  ckpt::GroupMap groups(cc.nodes_per_replica, kGroupSize);
  ACR_REQUIRE(groups.enabled(), "soak requires grouping");
  Pcg32 rng(seed, 0x50AF);
  SoakOutcome o;
  for (int r = 0; r < 2; ++r) {
    for (int g = 0; g < groups.num_groups(); ++g) {
      std::vector<int> members =
          groups.group_members(g * kGroupSize);  // any member's index works
      int victim = members[rng.bounded(
          static_cast<std::uint32_t>(members.size()))];
      // Anywhere from before the first checkpoint to just shy of the end.
      double when = reference().finish_time * (0.02 + 0.93 * rng.uniform());
      runtime.engine().schedule_at(when, [&runtime, r, victim] {
        if (!runtime.cluster().role_alive(r, victim)) return;
        runtime.cluster().kill_role(r, victim);
      });
      ++o.kills;
    }
  }

  o.out = soak::run_and_digest(runtime);
  return o;
}

class XorSoak : public ::testing::TestWithParam<int> {};

TEST_P(XorSoak, OneKillPerGroupRecoversBitwise) {
  std::uint64_t seed = 120000 + static_cast<std::uint64_t>(GetParam()) * 4813;
  SoakOutcome o = soak_run(seed);
  EXPECT_EQ(o.kills, 4);  // 2 replicas x 2 groups
  ASSERT_TRUE(o.out.summary.complete)
      << "wedged or failed at t=" << o.out.summary.finish_time << " (seed "
      << seed << ", scratch=" << o.out.summary.scratch_restarts << ")";
  EXPECT_EQ(o.out.digest, reference().digest) << "seed " << seed;
  // A kill landing just before completion can legitimately go undetected
  // (the job finishes inside the heartbeat timeout), so only an upper
  // bound holds.
  EXPECT_LE(o.out.summary.hard_failures, static_cast<std::uint64_t>(o.kills))
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, XorSoak, ::testing::Range(0, 110));

// ---------------------------------------------------------------------------
// Targeted scenarios.
// ---------------------------------------------------------------------------

/// Under the partner scheme, losing both buddies of a node index forces a
/// scratch restart (neither replica holds the verified image any more).
/// Under xor the two buddies sit in *different* parity groups (one per
/// replica), so both rebuild independently from their group peers.
TEST(XorTargeted, BuddyPairLossIsSurvivable) {
  apps::Jacobi3DConfig j = soak::small_app();
  AcrConfig ac = soak_acr_config();
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 8;
  cc.seed = 77;
  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  double mid = reference().finish_time * 0.5;
  runtime.engine().schedule_at(mid, [&runtime] {
    runtime.cluster().kill_role(0, 3);
  });
  runtime.engine().schedule_at(mid * 1.2, [&runtime] {
    runtime.cluster().kill_role(1, 3);
  });
  soak::Outcome o = soak::run_and_digest(runtime);
  ASSERT_TRUE(o.summary.complete) << "buddy-pair loss not survived under xor";
  EXPECT_EQ(o.digest, reference().digest);
  EXPECT_GT(o.summary.parity_chunks_sent, 0u) << "parity exchange never ran";
  EXPECT_GE(o.summary.xor_rebuilds, 1u);
}

/// Two dead members in the *same* group exceed single-parity coverage; the
/// manager must fall back to a scratch restart — and the job must still
/// finish with the right answer.
TEST(XorTargeted, TwoDeadInOneGroupFallsBackToScratch) {
  apps::Jacobi3DConfig j = soak::small_app();
  AcrConfig ac = soak_acr_config();
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 8;
  cc.seed = 78;
  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  double mid = reference().finish_time * 0.5;
  // Same group (indices 0..3 of replica 0), near-simultaneous deaths: the
  // second falls while the first group rebuild is still in flight.
  runtime.engine().schedule_at(mid, [&runtime] {
    runtime.cluster().kill_role(0, 1);
  });
  runtime.engine().schedule_at(mid + 1e-5, [&runtime] {
    runtime.cluster().kill_role(0, 2);
  });
  soak::Outcome o = soak::run_and_digest(runtime);
  ASSERT_TRUE(o.summary.complete) << "double-death in one group wedged the job";
  EXPECT_EQ(o.digest, reference().digest);
}

/// The local scheme keeps no cross-node redundancy at all: any hard failure
/// after the first commit still completes, but only ever by scratch restart.
TEST(XorTargeted, LocalSchemeRecoversOnlyFromScratch) {
  apps::Jacobi3DConfig j = soak::small_app();
  AcrConfig ac = soak_acr_config();
  ac.redundancy = ckpt::Scheme::Local;
  ac.xor_group_size = 0;
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 8;
  cc.seed = 79;
  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  double mid = reference().finish_time * 0.5;
  runtime.engine().schedule_at(mid, [&runtime] {
    runtime.cluster().kill_role(0, 5);
  });
  soak::Outcome o = soak::run_and_digest(runtime);
  ASSERT_TRUE(o.summary.complete);
  EXPECT_EQ(o.summary.scratch_restarts, 1u);
  EXPECT_EQ(o.summary.xor_rebuilds, 0u);
  EXPECT_EQ(o.digest, reference().digest);
}

}  // namespace
}  // namespace acr
