// XOR-redundancy fault soak.
//
// Property (ISSUE acceptance): under --ckpt-scheme=xor, killing any single
// node per parity group mid-run must be survivable — every run completes
// and its verified answer is bitwise identical to the fault-free answer.
// The group rebuild may legitimately fall back to a scratch restart when a
// member dies inside the commit→parity-exchange window (survivor parity
// lags the verified epoch), so scratch_restarts is not asserted zero; the
// bitwise answer is the contract.
//
// Runs under the `xor-soak` ctest label (CI runs it with ASan/UBSan).
#include <gtest/gtest.h>

#include <vector>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "checksum/fletcher.h"
#include "ckpt/group.h"
#include "common/rng.h"
#include "failure/distributions.h"

namespace acr {
namespace {

constexpr int kGroupSize = 4;

apps::Jacobi3DConfig soak_app() {
  apps::Jacobi3DConfig cfg;
  cfg.tasks_x = cfg.tasks_y = 2;
  cfg.tasks_z = 4;
  cfg.block_x = cfg.block_y = cfg.block_z = 4;
  cfg.iterations = 40;
  cfg.slots_per_node = 2;  // 8 nodes per replica -> 2 xor groups of 4
  cfg.seconds_per_point = 1e-5;
  return cfg;
}

AcrConfig soak_acr_config() {
  AcrConfig ac;
  ac.scheme = ResilienceScheme::Strong;  // xor requires strong
  ac.redundancy = ckpt::Scheme::Xor;
  ac.xor_group_size = kGroupSize;
  ac.checkpoint_interval = 0.003;
  ac.heartbeat_period = 0.0004;
  ac.heartbeat_timeout = 0.0016;
  return ac;
}

std::uint64_t verified_digest(AcrRuntime& runtime) {
  checksum::Fletcher64 f;
  for (int i = 0; i < runtime.cluster().nodes_per_replica(); ++i) {
    NodeAgent& a = runtime.agent_at(0, i);
    NodeAgent& b = runtime.agent_at(1, i);
    const NodeAgent& best = a.verified_epoch() >= b.verified_epoch() ? a : b;
    f.append(best.verified_image());
  }
  return f.digest();
}

struct Reference {
  std::uint64_t digest = 0;
  double finish_time = 0.0;
};

/// Fault-free run under the *xor* configuration: fixes the expected answer
/// and the nominal completion time the kill schedule is drawn from (and
/// doubles as a check that the parity exchange itself is harmless).
const Reference& reference() {
  static Reference cached = [] {
    apps::Jacobi3DConfig j = soak_app();
    AcrConfig ac = soak_acr_config();
    rt::ClusterConfig cc;
    cc.nodes_per_replica = j.nodes_needed();
    cc.spare_nodes = 0;
    AcrRuntime runtime(ac, cc);
    runtime.set_task_factory(j.factory());
    runtime.setup();
    RunSummary s = runtime.run(1e3);
    ACR_REQUIRE(s.complete, "xor soak reference run must complete");
    ACR_REQUIRE(s.parity_chunks_sent > 0, "xor parity exchange never ran");
    Reference ref;
    ref.digest = verified_digest(runtime);
    ref.finish_time = s.finish_time;
    return ref;
  }();
  return cached;
}

/// One soak run: for every parity group in every replica, schedule the
/// death of one uniformly chosen member at a uniformly chosen time within
/// the nominal run. Returns the summary plus the verified digest.
struct SoakOutcome {
  RunSummary summary;
  std::uint64_t digest = 0;
  int kills = 0;
};

SoakOutcome soak_run(std::uint64_t seed) {
  apps::Jacobi3DConfig j = soak_app();
  AcrConfig ac = soak_acr_config();
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 16;
  cc.seed = seed;
  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();

  ckpt::GroupMap groups(cc.nodes_per_replica, kGroupSize);
  ACR_REQUIRE(groups.enabled(), "soak requires grouping");
  Pcg32 rng(seed, 0x50AF);
  SoakOutcome out;
  for (int r = 0; r < 2; ++r) {
    for (int g = 0; g < groups.num_groups(); ++g) {
      std::vector<int> members =
          groups.group_members(g * kGroupSize);  // any member's index works
      int victim = members[rng.bounded(
          static_cast<std::uint32_t>(members.size()))];
      // Anywhere from before the first checkpoint to just shy of the end.
      double when = reference().finish_time * (0.02 + 0.93 * rng.uniform());
      runtime.engine().schedule_at(when, [&runtime, r, victim] {
        if (!runtime.cluster().role_alive(r, victim)) return;
        runtime.cluster().kill_role(r, victim);
      });
      ++out.kills;
    }
  }

  out.summary = runtime.run(/*max_virtual_time=*/30.0);
  if (out.summary.complete) {
    runtime.engine().run_until(out.summary.finish_time + 0.05);
    out.digest = verified_digest(runtime);
  }
  return out;
}

class XorSoak : public ::testing::TestWithParam<int> {};

TEST_P(XorSoak, OneKillPerGroupRecoversBitwise) {
  std::uint64_t seed = 120000 + static_cast<std::uint64_t>(GetParam()) * 4813;
  SoakOutcome o = soak_run(seed);
  EXPECT_EQ(o.kills, 4);  // 2 replicas x 2 groups
  ASSERT_TRUE(o.summary.complete)
      << "wedged or failed at t=" << o.summary.finish_time << " (seed "
      << seed << ", scratch=" << o.summary.scratch_restarts << ")";
  EXPECT_EQ(o.digest, reference().digest) << "seed " << seed;
  // A kill landing just before completion can legitimately go undetected
  // (the job finishes inside the heartbeat timeout), so only an upper
  // bound holds.
  EXPECT_LE(o.summary.hard_failures, static_cast<std::uint64_t>(o.kills))
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, XorSoak, ::testing::Range(0, 110));

// ---------------------------------------------------------------------------
// Targeted scenarios.
// ---------------------------------------------------------------------------

/// Under the partner scheme, losing both buddies of a node index forces a
/// scratch restart (neither replica holds the verified image any more).
/// Under xor the two buddies sit in *different* parity groups (one per
/// replica), so both rebuild independently from their group peers.
TEST(XorTargeted, BuddyPairLossIsSurvivable) {
  apps::Jacobi3DConfig j = soak_app();
  AcrConfig ac = soak_acr_config();
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 8;
  cc.seed = 77;
  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  double mid = reference().finish_time * 0.5;
  runtime.engine().schedule_at(mid, [&runtime] {
    runtime.cluster().kill_role(0, 3);
  });
  runtime.engine().schedule_at(mid * 1.2, [&runtime] {
    runtime.cluster().kill_role(1, 3);
  });
  RunSummary s = runtime.run(30.0);
  ASSERT_TRUE(s.complete) << "buddy-pair loss not survived under xor";
  runtime.engine().run_until(s.finish_time + 0.05);
  EXPECT_EQ(verified_digest(runtime), reference().digest);
  EXPECT_GE(s.xor_rebuilds, 1u);
}

/// Two dead members in the *same* group exceed single-parity coverage; the
/// manager must fall back to a scratch restart — and the job must still
/// finish with the right answer.
TEST(XorTargeted, TwoDeadInOneGroupFallsBackToScratch) {
  apps::Jacobi3DConfig j = soak_app();
  AcrConfig ac = soak_acr_config();
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 8;
  cc.seed = 78;
  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  double mid = reference().finish_time * 0.5;
  // Same group (indices 0..3 of replica 0), near-simultaneous deaths: the
  // second falls while the first group rebuild is still in flight.
  runtime.engine().schedule_at(mid, [&runtime] {
    runtime.cluster().kill_role(0, 1);
  });
  runtime.engine().schedule_at(mid + 1e-5, [&runtime] {
    runtime.cluster().kill_role(0, 2);
  });
  RunSummary s = runtime.run(30.0);
  ASSERT_TRUE(s.complete) << "double-death in one group wedged the job";
  runtime.engine().run_until(s.finish_time + 0.05);
  EXPECT_EQ(verified_digest(runtime), reference().digest);
}

/// The local scheme keeps no cross-node redundancy at all: any hard failure
/// after the first commit still completes, but only ever by scratch restart.
TEST(XorTargeted, LocalSchemeRecoversOnlyFromScratch) {
  apps::Jacobi3DConfig j = soak_app();
  AcrConfig ac = soak_acr_config();
  ac.redundancy = ckpt::Scheme::Local;
  ac.xor_group_size = 0;
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 8;
  cc.seed = 79;
  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  double mid = reference().finish_time * 0.5;
  runtime.engine().schedule_at(mid, [&runtime] {
    runtime.cluster().kill_role(0, 5);
  });
  RunSummary s = runtime.run(30.0);
  ASSERT_TRUE(s.complete);
  EXPECT_EQ(s.scratch_restarts, 1u);
  EXPECT_EQ(s.xor_rebuilds, 0u);
  runtime.engine().run_until(s.finish_time + 0.05);
  EXPECT_EQ(verified_digest(runtime), reference().digest);
}

}  // namespace
}  // namespace acr
