// Lane-determinism suite for the sharded event engine.
//
// The contract under test (DESIGN.md §16): the laned engine fires the
// exact same events, at the same virtual times, in the same order, with
// the same EventIds, as the serial single-heap engine — at every lane
// count, every lookahead, and every interleaving of in-round scheduling
// and cancellation. Part A pins that on randomized adversarial schedules
// (100+ seeds); part B runs full AcrRuntime scenarios (partner+SDC,
// xor+burst, tier+delta) across ClusterConfig::engine_lanes {1,2,4,8} and
// requires bit-identical RunSummary, trace length, and end-state digest.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "checksum/fletcher.h"
#include "common/rng.h"
#include "failure/correlated.h"
#include "failure/distributions.h"
#include "rt/engine.h"

namespace acr {
namespace {

// ---------------------------------------------------------------------------
// Part A: engine-level order pinning.
// ---------------------------------------------------------------------------

struct Firing {
  double time;
  std::uint64_t tag;
  bool operator==(const Firing& o) const {
    return time == o.time && tag == o.tag;
  }
};

/// Run a randomized self-scheduling workload and record the firing order.
/// Handlers schedule follow-ups both inside the lookahead window (delay <
/// lookahead: lands in the overflow heap mid-round) and beyond it, across
/// random lane keys, and cancel random earlier ids — the full adversarial
/// surface of the laned path.
std::vector<Firing> run_schedule(std::uint64_t seed, int lanes,
                                 double lookahead,
                                 double engine_lookahead = -1.0) {
  rt::Engine engine(lanes);
  if (lanes > 1)
    engine.set_lookahead(engine_lookahead >= 0.0 ? engine_lookahead
                                                 : lookahead);
  Pcg32 rng(seed, 17);
  std::vector<Firing> fired;
  std::vector<rt::Engine::EventId> ids;
  int budget = 400;  // follow-up budget so the run always drains

  // Tags label firings so serial and laned orders can be compared
  // element-wise; deep follow-up chains wrap, which is fine — the wrapped
  // values are identical across runs.
  std::function<void(std::uint64_t)> handler = [&](std::uint64_t tag) {
    fired.push_back({engine.now(), tag});
    std::uint32_t roll = rng.bounded(10);
    if (roll < 4 && budget > 0) {
      --budget;
      // Half the follow-ups land inside the current window, half beyond.
      double delay = roll < 2 ? lookahead * 0.25 * rng.next() * 0x1p-32
                              : lookahead * (1.0 + rng.bounded(8));
      std::uint64_t t = tag * 10 + 1;
      ids.push_back(engine.schedule_after(
          delay, [&handler, t] { handler(t); },
          static_cast<rt::Engine::LaneKey>(rng.next())));
    } else if (roll == 7 && !ids.empty()) {
      engine.cancel(ids[rng.bounded(static_cast<std::uint32_t>(ids.size()))]);
    }
  };

  int initial = 40 + static_cast<int>(rng.bounded(40));
  for (int i = 0; i < initial; ++i) {
    double t = (1.0 + rng.bounded(1000)) * lookahead * 0.13;
    ids.push_back(engine.schedule_at(
        t, [&handler, i] { handler(i); },
        static_cast<rt::Engine::LaneKey>(rng.next())));
  }
  engine.run();
  EXPECT_EQ(engine.pending(), 0u);
  return fired;
}

TEST(EngineLanes, FiringOrderMatchesSerialAcrossRandomizedSchedules) {
  constexpr double kLookahead = 1e-5;
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    std::vector<Firing> serial = run_schedule(seed, 1, kLookahead);
    for (int lanes : {2, 4, 8}) {
      std::vector<Firing> laned = run_schedule(seed, lanes, kLookahead);
      ASSERT_EQ(serial.size(), laned.size())
          << "seed " << seed << " lanes " << lanes;
      for (std::size_t i = 0; i < serial.size(); ++i)
        ASSERT_TRUE(serial[i] == laned[i])
            << "seed " << seed << " lanes " << lanes << " event " << i
            << ": serial (" << serial[i].time << ", " << serial[i].tag
            << ") vs laned (" << laned[i].time << ", " << laned[i].tag << ")";
    }
  }
}

TEST(EngineLanes, ZeroAndHugeLookaheadBothMatchSerial) {
  // The window is a batching knob only: the degenerate window (0 — each
  // round extracts just the earliest deadline's ties) and an effectively
  // unbounded one (every pending event every round) must both reproduce
  // the serial order exactly.
  for (std::uint64_t seed = 200; seed < 230; ++seed) {
    std::vector<Firing> serial = run_schedule(seed, 1, 1e-5);
    for (double window : {0.0, 1e9}) {
      std::vector<Firing> laned = run_schedule(seed, 4, 1e-5, window);
      ASSERT_EQ(serial.size(), laned.size())
          << "seed " << seed << " window " << window;
      for (std::size_t i = 0; i < serial.size(); ++i)
        ASSERT_TRUE(serial[i] == laned[i])
            << "seed " << seed << " window " << window << " event " << i;
    }
  }
}

TEST(EngineLanes, EqualDeadlineFifoPreservedAcrossLaneMerge) {
  // 64 events, one per lane key, all at the same instant: the merge must
  // reproduce pure insertion order even though every lane contributes.
  rt::Engine engine(8);
  engine.set_lookahead(1.0);
  std::vector<int> order;
  for (int i = 0; i < 64; ++i)
    engine.schedule_at(
        1.0, [&order, i] { order.push_back(i); },
        static_cast<rt::Engine::LaneKey>(i));
  engine.run();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EngineLanes, InWindowSchedulingCannotJumpTheGlobalOrder) {
  // An event at t=1 schedules a follow-up at t=1 (inside the window, equal
  // deadline). The follow-up's id is larger than every pre-scheduled id,
  // so it must fire after all other t=1 events — from the overflow heap,
  // merged, never before a lane-run event with a smaller id.
  rt::Engine engine(4);
  engine.set_lookahead(1.0);
  std::vector<int> order;
  engine.schedule_at(1.0, [&] {
    order.push_back(0);
    engine.schedule_at(1.0, [&] { order.push_back(99); });
  });
  for (int i = 1; i < 8; ++i)
    engine.schedule_at(
        1.0, [&order, i] { order.push_back(i); },
        static_cast<rt::Engine::LaneKey>(i));
  engine.run();
  ASSERT_EQ(order.size(), 9u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(order.back(), 99);
}

TEST(EngineLanes, RunUntilBoundaryAndPersistenceLaned) {
  rt::Engine engine(4);
  engine.set_lookahead(0.5);
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  auto boundary = engine.schedule_at(2.0, [&] { ++fired; });
  engine.schedule_at(2.0, [&] { ++fired; }, rt::Engine::LaneKey{3});
  engine.schedule_at(3.0, [&] { ++fired; });
  engine.cancel(boundary);
  // Cancelled event exactly at the boundary t: skipped, not fired, and the
  // clock still lands exactly on t.
  EXPECT_EQ(engine.run_until(2.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.now(), 2.0);
  EXPECT_EQ(engine.pending(), 1u);
  // The t=3 event was extracted into a round that outlived run_until(2);
  // it must survive, staged, and fire on the next call.
  EXPECT_EQ(engine.run_until(4.0), 1u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(engine.now(), 4.0);
  // Empty-queue fast path: no events, the clock still advances.
  EXPECT_EQ(engine.run_until(5.0), 0u);
  EXPECT_EQ(engine.now(), 5.0);
}

TEST(EngineLanes, SerialEngineNeverEntersRounds) {
  rt::Engine engine(1);
  for (int i = 0; i < 100; ++i)
    engine.schedule_at(i * 0.5, [] {});
  engine.run();
  EXPECT_EQ(engine.rounds(), 0u);
  EXPECT_EQ(engine.events_processed(), 100u);
}

TEST(EngineLanes, ReshardRequiresEmptyQueue) {
  rt::Engine engine(1);
  engine.schedule_at(1.0, [] {});
  EXPECT_THROW(engine.set_lanes(4), RequireError);
  engine.run();
  engine.set_lanes(4);
  EXPECT_EQ(engine.lanes(), 4);
}

// ---------------------------------------------------------------------------
// Part B: full-runtime scenarios bitwise identical across engine_lanes.
// ---------------------------------------------------------------------------

void expect_summaries_equal(const RunSummary& a, const RunSummary& b,
                            const char* what) {
  EXPECT_EQ(a.complete, b.complete) << what;
  EXPECT_EQ(a.failed, b.failed) << what;
  EXPECT_EQ(a.finish_time, b.finish_time) << what;  // exact, not approx
  EXPECT_EQ(a.checkpoints, b.checkpoints) << what;
  EXPECT_EQ(a.hard_failures, b.hard_failures) << what;
  EXPECT_EQ(a.sdc_injected, b.sdc_injected) << what;
  EXPECT_EQ(a.sdc_detected, b.sdc_detected) << what;
  EXPECT_EQ(a.recoveries, b.recoveries) << what;
  EXPECT_EQ(a.scratch_restarts, b.scratch_restarts) << what;
  EXPECT_EQ(a.net_frames, b.net_frames) << what;
  EXPECT_EQ(a.net_drops, b.net_drops) << what;
  EXPECT_EQ(a.net_corruptions, b.net_corruptions) << what;
  EXPECT_EQ(a.net_retransmits, b.net_retransmits) << what;
  EXPECT_EQ(a.burst_node_kills, b.burst_node_kills) << what;
  EXPECT_EQ(a.roles_doubled, b.roles_doubled) << what;
  EXPECT_EQ(a.l2_flush_bytes, b.l2_flush_bytes) << what;
  EXPECT_EQ(a.l2_fetches, b.l2_fetches) << what;
  EXPECT_EQ(a.xor_rebuilds, b.xor_rebuilds) << what;
}

std::uint64_t final_state_digest(AcrRuntime& runtime) {
  checksum::Fletcher64 f;
  for (int i = 0; i < runtime.cluster().nodes_per_replica(); ++i) {
    NodeAgent& a = runtime.agent_at(0, i);
    NodeAgent& b = runtime.agent_at(1, i);
    const NodeAgent& best = a.verified_epoch() >= b.verified_epoch() ? a : b;
    f.append(best.verified_image());
  }
  return f.digest();
}

struct ScenarioResult {
  RunSummary summary;
  std::uint64_t state_digest = 0;
  std::size_t trace_events = 0;
};

ScenarioResult finish(AcrRuntime& runtime, RunSummary s) {
  ScenarioResult res;
  res.summary = s;
  if (s.complete) runtime.engine().run_until(s.finish_time + 0.05);
  res.state_digest = final_state_digest(runtime);
  res.trace_events = runtime.trace().events().size();
  return res;
}

/// Partner + SDC + lossy wire: digest compare, flip-delta, retransmits.
ScenarioResult run_partner_sdc(int lanes) {
  apps::Jacobi3DConfig j;
  j.tasks_x = j.tasks_y = 2;
  j.tasks_z = 2;
  j.block_x = j.block_y = j.block_z = 4;
  j.iterations = 25;
  j.slots_per_node = 2;
  j.seconds_per_point = 1e-5;
  AcrConfig ac;
  ac.detection = SdcDetection::Checksum;
  ac.checkpoint_interval = 0.002;
  ac.heartbeat_period = 0.001;
  ac.heartbeat_timeout = 0.005;
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 2;
  cc.net_faults.drop_rate = 0.02;
  cc.net_faults.corrupt_rate = 0.02;
  cc.engine_lanes = lanes;
  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  FaultPlan plan;
  plan.arrivals = std::make_shared<failure::RenewalProcess>(
      std::make_shared<failure::Exponential>(0.003));
  plan.sdc_fraction = 1.0;
  runtime.set_fault_plan(plan);
  return finish(runtime, runtime.run(30.0));
}

/// Xor parity + correlated bursts + shrink: rebuilds, spares, doubling.
ScenarioResult run_xor_burst(int lanes) {
  apps::Jacobi3DConfig j;
  j.tasks_x = j.tasks_y = 2;
  j.tasks_z = 4;
  j.block_x = j.block_y = j.block_z = 4;
  j.iterations = 30;
  j.slots_per_node = 2;
  j.seconds_per_point = 1e-5;
  AcrConfig ac;
  ac.scheme = ResilienceScheme::Strong;
  ac.redundancy = ckpt::Scheme::Xor;
  ac.xor_group_size = 4;
  ac.degrade = DegradeMode::Shrink;
  ac.checkpoint_interval = 0.003;
  ac.heartbeat_period = 0.0004;
  ac.heartbeat_timeout = 0.0016;
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 8;
  cc.engine_lanes = lanes;
  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  failure::BurstConfig bc;
  bc.seed_mtbf = 0.02;
  bc.follow_prob = 0.5;
  bc.window = 0.001;
  bc.domain_size = 4;
  bc.repair_mean = 0.01;
  runtime.set_burst_plan(bc);
  return finish(runtime, runtime.run(30.0));
}

/// Partner + L2 tier + delta/LZ codec under faults: flushes, fetch ladder,
/// chunk maps — the deepest zero-delay-continuation chains in the repo.
ScenarioResult run_tier_delta(int lanes) {
  apps::Jacobi3DConfig j;
  j.tasks_x = j.tasks_y = 2;
  j.tasks_z = 4;
  j.block_x = j.block_y = 12;
  j.block_z = 12;
  j.iterations = 20;
  j.slots_per_node = 4;
  j.seconds_per_point = 2e-7;
  AcrConfig ac;
  ac.scheme = ResilienceScheme::Strong;
  ac.redundancy = ckpt::Scheme::Partner;
  ac.degrade = DegradeMode::Shrink;
  ac.checkpoint_interval = 0.003;
  ac.heartbeat_period = 0.0004;
  ac.heartbeat_timeout = 0.0016;
  ac.tier.bandwidth = 1e9;
  ac.codec.delta = ckpt::DeltaMode::On;
  ac.codec.compress = ckpt::CompressMode::Lz;
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 2;
  cc.engine_lanes = lanes;
  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  FaultPlan plan;
  plan.arrivals = std::make_shared<failure::RenewalProcess>(
      std::make_shared<failure::Exponential>(0.008));
  plan.sdc_fraction = 0.3;
  runtime.set_fault_plan(plan);
  return finish(runtime, runtime.run(30.0));
}

template <typename Scenario>
void check_lane_determinism(Scenario scenario, const char* name) {
  ScenarioResult base = scenario(1);
  for (int lanes : {2, 4, 8}) {
    ScenarioResult got = scenario(lanes);
    std::string what = std::string(name) + " lanes=" + std::to_string(lanes);
    expect_summaries_equal(base.summary, got.summary, what.c_str());
    EXPECT_EQ(base.state_digest, got.state_digest) << what;
    EXPECT_EQ(base.trace_events, got.trace_events) << what;
  }
}

TEST(EngineLanesEndToEnd, PartnerSdcScenarioBitwiseIdentical) {
  check_lane_determinism(run_partner_sdc, "partner+sdc");
}

TEST(EngineLanesEndToEnd, XorBurstScenarioBitwiseIdentical) {
  check_lane_determinism(run_xor_burst, "xor+burst");
}

TEST(EngineLanesEndToEnd, TierDeltaScenarioBitwiseIdentical) {
  check_lane_determinism(run_tier_delta, "tier+delta");
}

}  // namespace
}  // namespace acr
