// Staged-codec soak: incremental (delta) + compressed checkpoints under
// correlated bursts, with the L2 tier enabled.
//
// Property (ISSUE acceptance): with --ckpt-delta=on --ckpt-compress=lz the
// protocol's observable outcome is bitwise identical to the codec-off
// pipeline — every seeded run that completes reaches the fault-free
// reference digest, exactly as the codec-off control seeds do. The codec
// only changes what travels (dirty chunks, compressed payloads, vault v2
// blobs); recovery always reconstructs exact full images, and every
// consumer falls back to full transfers whenever its delta base is gone
// (post-restore, post-rebind, broken tier chain).
//
// The app is sized so each node's checkpoint image spans multiple 256 KiB
// digest chunks — otherwise delta degenerates to full frames and the soak
// would not exercise chunk maps, overlays, or parity delta algebra.
//
// Runs under the `delta-soak` ctest label (CI runs it with ASan/UBSan).
#include <gtest/gtest.h>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "checksum/fletcher.h"
#include "checksum/kernels.h"
#include "failure/correlated.h"
#include "failure/distributions.h"

namespace acr {
namespace {

apps::Jacobi3DConfig soak_app() {
  apps::Jacobi3DConfig cfg;
  cfg.tasks_x = cfg.tasks_y = 2;
  cfg.tasks_z = 4;
  cfg.block_x = cfg.block_y = 24;
  cfg.block_z = 24;  // ~110 KB per task, 4 tasks/node => image > 2 chunks
  cfg.iterations = 30;
  cfg.slots_per_node = 4;  // 4 nodes per replica
  cfg.seconds_per_point = 2e-7;
  return cfg;
}

AcrConfig soak_acr_config(bool codec) {
  AcrConfig ac;
  ac.scheme = ResilienceScheme::Strong;
  ac.redundancy = ckpt::Scheme::Partner;
  ac.degrade = DegradeMode::Shrink;
  ac.checkpoint_interval = 0.003;
  ac.heartbeat_period = 0.0004;
  ac.heartbeat_timeout = 0.0016;
  ac.tier.bandwidth = 1e9;
  if (codec) {
    ac.codec.delta = ckpt::DeltaMode::On;
    ac.codec.compress = ckpt::CompressMode::Lz;
  }
  return ac;
}

std::uint64_t verified_digest(AcrRuntime& runtime) {
  checksum::Fletcher64 f;
  for (int i = 0; i < runtime.cluster().nodes_per_replica(); ++i) {
    NodeAgent& a = runtime.agent_at(0, i);
    NodeAgent& b = runtime.agent_at(1, i);
    const NodeAgent& best = a.verified_epoch() >= b.verified_epoch() ? a : b;
    f.append(best.verified_image());
  }
  return f.digest();
}

struct Reference {
  std::uint64_t digest = 0;
  double finish_time = 0.0;
  std::size_t image_bytes = 0;
};

/// Fault-free, codec-off run fixing the expected answer (and checking the
/// app is big enough to make delta meaningful).
const Reference& reference() {
  static Reference cached = [] {
    apps::Jacobi3DConfig j = soak_app();
    rt::ClusterConfig cc;
    cc.nodes_per_replica = j.nodes_needed();
    cc.spare_nodes = 0;
    AcrRuntime runtime(soak_acr_config(/*codec=*/false), cc);
    runtime.set_task_factory(j.factory());
    runtime.setup();
    RunSummary s = runtime.run(1e3);
    ACR_REQUIRE(s.complete, "delta soak reference run must complete");
    Reference ref;
    ref.digest = verified_digest(runtime);
    ref.finish_time = s.finish_time;
    ref.image_bytes = runtime.agent_at(0, 0).verified_image().size();
    return ref;
  }();
  return cached;
}

struct SoakOutcome {
  RunSummary summary;
  std::uint64_t digest = 0;
  bool hardware_annihilated = false;
};

SoakOutcome soak_run(std::uint64_t seed, bool codec) {
  apps::Jacobi3DConfig j = soak_app();
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 2;
  cc.seed = seed;
  AcrRuntime runtime(soak_acr_config(codec), cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  failure::BurstConfig bc;
  bc.seed_mtbf = reference().finish_time / 3.0;
  bc.weibull_shape = 0.7;
  bc.follow_prob = 0.5;
  bc.window = 0.001;
  bc.domain_size = 4;
  bc.repair_mean = reference().finish_time / 5.0;
  runtime.set_burst_plan(bc);
  SoakOutcome out;
  out.summary = runtime.run(/*max_virtual_time=*/30.0);
  if (out.summary.complete) {
    runtime.engine().run_until(out.summary.finish_time + 0.05);
    out.digest = verified_digest(runtime);
  }
  for (const auto& e : runtime.trace().events())
    if (e.detail.find("no surviving host") != std::string::npos)
      out.hardware_annihilated = true;
  return out;
}

TEST(DeltaSoak, ImagesSpanMultipleChunks) {
  ASSERT_GE(reference().image_bytes, 2 * checksum::kDigestChunk)
      << "soak app too small: delta would degenerate to full frames";
}

class DeltaSoak : public ::testing::TestWithParam<int> {};

TEST_P(DeltaSoak, DeltaCompressRunsReachFaultFreeAnswerBitwise) {
  std::uint64_t seed = 910000 + static_cast<std::uint64_t>(GetParam()) * 7717;
  SoakOutcome o = soak_run(seed, /*codec=*/true);
  if (!o.summary.complete) {
    // Only tolerated when the burst wiped a whole replica's hardware AND
    // the codec-off pipeline aborts on this seed too: the codec must never
    // turn a survivable run into an abort.
    EXPECT_TRUE(o.hardware_annihilated)
        << "seed " << seed << " aborted (kills=" << o.summary.burst_node_kills
        << ", waves=" << o.summary.l2_fetch_waves << ")";
    SoakOutcome control = soak_run(seed, /*codec=*/false);
    EXPECT_FALSE(control.summary.complete)
        << "seed " << seed
        << ": codec run aborted where the codec-off run completes";
  } else {
    EXPECT_FALSE(o.summary.failed);
    EXPECT_EQ(o.digest, reference().digest) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaSoak, ::testing::Range(0, 100));

/// Codec-off control seeds: the identical burst schedule through the
/// legacy full-image pipeline reaches the same reference digest, and ships
/// zero codec traffic.
class DeltaSoakControl : public ::testing::TestWithParam<int> {};

TEST_P(DeltaSoakControl, CodecOffControlMatchesReferenceBitwise) {
  std::uint64_t seed = 910000 + static_cast<std::uint64_t>(GetParam()) * 7717;
  SoakOutcome o = soak_run(seed, /*codec=*/false);
  if (!o.summary.complete) {
    EXPECT_TRUE(o.hardware_annihilated) << "seed " << seed;
    return;
  }
  EXPECT_EQ(o.summary.codec_frames, 0u);
  EXPECT_EQ(o.summary.l2_delta_blobs, 0u);
  EXPECT_EQ(o.digest, reference().digest) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaSoakControl, ::testing::Range(0, 10));

/// Deterministic base-loss drill: run delta+compress fault-free, then
/// restore a node from its buddy mid-run via an injected hard failure at a
/// fixed seed; the restored node's codec bases are invalidated, its next
/// buddy frame is a legacy full transfer, and the answer stays bitwise.
TEST(DeltaSoak, FullImageFallbackAfterBaseLoss) {
  apps::Jacobi3DConfig j = soak_app();
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 2;
  cc.seed = 424242;
  AcrRuntime runtime(soak_acr_config(/*codec=*/true), cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  FaultPlan plan;
  plan.arrivals = std::make_shared<failure::RenewalProcess>(
      std::make_shared<failure::Exponential>(reference().finish_time / 2.0));
  plan.sdc_fraction = 0.0;  // hard failures: the base-loss trigger
  runtime.set_fault_plan(plan);
  RunSummary s = runtime.run(/*max_virtual_time=*/30.0);
  ASSERT_TRUE(s.complete);
  EXPECT_GE(s.recoveries, 1u) << "drill needs at least one restore";
  runtime.engine().run_until(s.finish_time + 0.05);
  EXPECT_EQ(verified_digest(runtime), reference().digest);
  // The recovery forced at least one legacy full transfer while the codec
  // was on: frames stop, then resume once a new base is re-established.
  EXPECT_GT(s.codec_frames, 0u);
}

}  // namespace
}  // namespace acr
