// Staged-codec soak: incremental (delta) + compressed checkpoints under
// correlated bursts, with the L2 tier enabled.
//
// Property (ISSUE acceptance): with --ckpt-delta=on --ckpt-compress=lz the
// protocol's observable outcome is bitwise identical to the codec-off
// pipeline — every seeded run that completes reaches the fault-free
// reference digest, exactly as the codec-off control seeds do. The codec
// only changes what travels (dirty chunks, compressed payloads, vault v2
// blobs); recovery always reconstructs exact full images, and every
// consumer falls back to full transfers whenever its delta base is gone
// (post-restore, post-rebind, broken tier chain).
//
// The app is sized so each node's checkpoint image spans multiple 256 KiB
// digest chunks — otherwise delta degenerates to full frames and the soak
// would not exercise chunk maps, overlays, or parity delta algebra.
//
// Runs under the `delta-soak` ctest label (CI runs it with ASan/UBSan).
#include <gtest/gtest.h>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "checksum/kernels.h"
#include "failure/distributions.h"
#include "soak_util.h"

namespace acr {
namespace {

AcrConfig soak_acr_config(bool codec) {
  AcrConfig ac = soak::base_acr_config();
  ac.redundancy = ckpt::Scheme::Partner;
  ac.degrade = DegradeMode::Shrink;
  ac.tier.bandwidth = 1e9;
  if (codec) {
    ac.codec.delta = ckpt::DeltaMode::On;
    ac.codec.compress = ckpt::CompressMode::Lz;
  }
  return ac;
}

/// Fault-free, codec-off run fixing the expected answer (and checking the
/// app is big enough to make delta meaningful).
const soak::Reference& reference() {
  static soak::Reference cached = soak::make_reference(
      soak::multi_chunk_app(), soak_acr_config(/*codec=*/false),
      "delta soak reference run must complete");
  return cached;
}

struct SoakOutcome {
  soak::Outcome out;
  bool hardware_annihilated = false;
};

SoakOutcome soak_run(std::uint64_t seed, bool codec) {
  apps::Jacobi3DConfig j = soak::multi_chunk_app();
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 2;
  cc.seed = seed;
  AcrRuntime runtime(soak_acr_config(codec), cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  runtime.set_burst_plan(soak::default_burst_config(reference().finish_time));
  SoakOutcome o;
  o.out = soak::run_and_digest(runtime);
  o.hardware_annihilated = soak::hardware_annihilated(runtime);
  return o;
}

TEST(DeltaSoak, ImagesSpanMultipleChunks) {
  ASSERT_GE(reference().image_bytes, 2 * checksum::kDigestChunk)
      << "soak app too small: delta would degenerate to full frames";
}

class DeltaSoak : public ::testing::TestWithParam<int> {};

TEST_P(DeltaSoak, DeltaCompressRunsReachFaultFreeAnswerBitwise) {
  std::uint64_t seed = 910000 + static_cast<std::uint64_t>(GetParam()) * 7717;
  SoakOutcome o = soak_run(seed, /*codec=*/true);
  if (!o.out.summary.complete) {
    // Only tolerated when the burst wiped a whole replica's hardware AND
    // the codec-off pipeline aborts on this seed too: the codec must never
    // turn a survivable run into an abort.
    EXPECT_TRUE(o.hardware_annihilated)
        << "seed " << seed
        << " aborted (kills=" << o.out.summary.burst_node_kills
        << ", waves=" << o.out.summary.l2_fetch_waves << ")";
    SoakOutcome control = soak_run(seed, /*codec=*/false);
    EXPECT_FALSE(control.out.summary.complete)
        << "seed " << seed
        << ": codec run aborted where the codec-off run completes";
  } else {
    EXPECT_FALSE(o.out.summary.failed);
    EXPECT_EQ(o.out.digest, reference().digest) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaSoak, ::testing::Range(0, 100));

/// Codec-off control seeds: the identical burst schedule through the
/// legacy full-image pipeline reaches the same reference digest, and ships
/// zero codec traffic.
class DeltaSoakControl : public ::testing::TestWithParam<int> {};

TEST_P(DeltaSoakControl, CodecOffControlMatchesReferenceBitwise) {
  std::uint64_t seed = 910000 + static_cast<std::uint64_t>(GetParam()) * 7717;
  SoakOutcome o = soak_run(seed, /*codec=*/false);
  if (!o.out.summary.complete) {
    EXPECT_TRUE(o.hardware_annihilated) << "seed " << seed;
    return;
  }
  EXPECT_EQ(o.out.summary.codec_frames, 0u);
  EXPECT_EQ(o.out.summary.l2_delta_blobs, 0u);
  EXPECT_EQ(o.out.digest, reference().digest) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaSoakControl, ::testing::Range(0, 10));

/// Deterministic base-loss drill: run delta+compress fault-free, then
/// restore a node from its buddy mid-run via an injected hard failure at a
/// fixed seed; the restored node's codec bases are invalidated, its next
/// buddy frame is a legacy full transfer, and the answer stays bitwise.
TEST(DeltaSoak, FullImageFallbackAfterBaseLoss) {
  apps::Jacobi3DConfig j = soak::multi_chunk_app();
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 2;
  cc.seed = 424242;
  AcrRuntime runtime(soak_acr_config(/*codec=*/true), cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  FaultPlan plan;
  plan.arrivals = std::make_shared<failure::RenewalProcess>(
      std::make_shared<failure::Exponential>(reference().finish_time / 2.0));
  plan.sdc_fraction = 0.0;  // hard failures: the base-loss trigger
  runtime.set_fault_plan(plan);
  soak::Outcome o = soak::run_and_digest(runtime);
  ASSERT_TRUE(o.summary.complete);
  EXPECT_GE(o.summary.recoveries, 1u) << "drill needs at least one restore";
  EXPECT_EQ(o.digest, reference().digest);
  // The recovery forced at least one legacy full transfer while the codec
  // was on: frames stop, then resume once a new base is re-established.
  EXPECT_GT(o.summary.codec_frames, 0u);
}

}  // namespace
}  // namespace acr
