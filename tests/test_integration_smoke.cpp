// End-to-end smoke tests: the full ACR stack (consensus checkpointing, SDC
// detection, hard-error recovery) over the virtual cluster with the real
// Jacobi3D mini-app.
#include <gtest/gtest.h>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "checksum/fletcher.h"
#include "failure/injector.h"

namespace acr {
namespace {

apps::Jacobi3DConfig small_jacobi() {
  apps::Jacobi3DConfig cfg;
  cfg.tasks_x = 2;
  cfg.tasks_y = 2;
  cfg.tasks_z = 2;
  cfg.block_x = 4;
  cfg.block_y = 4;
  cfg.block_z = 4;
  cfg.iterations = 30;
  cfg.slots_per_node = 2;   // 4 nodes per replica
  cfg.seconds_per_point = 1e-5;
  return cfg;
}

rt::ClusterConfig small_cluster(const apps::Jacobi3DConfig& j) {
  rt::ClusterConfig cfg;
  cfg.nodes_per_replica = j.nodes_needed();
  cfg.spare_nodes = 2;
  return cfg;
}

/// Digest of the application state of one replica (for cross-run checks).
std::uint64_t replica_digest(AcrRuntime& runtime, int replica) {
  checksum::Fletcher64 f;
  for (int i = 0; i < runtime.cluster().nodes_per_replica(); ++i) {
    pup::Checkpoint c = runtime.cluster().node_at(replica, i).pack_state();
    f.append(c.bytes());
  }
  return f.digest();
}

TEST(IntegrationSmoke, FailureFreeRunCompletes) {
  apps::Jacobi3DConfig j = small_jacobi();
  AcrConfig acr_cfg;
  acr_cfg.checkpoint_interval = 0.002;
  acr_cfg.heartbeat_period = 0.001;
  acr_cfg.heartbeat_timeout = 0.005;
  AcrRuntime runtime(acr_cfg, small_cluster(j));
  runtime.set_task_factory(j.factory());
  runtime.setup();
  RunSummary s = runtime.run(1e4);
  EXPECT_TRUE(s.complete);
  EXPECT_FALSE(s.failed);
  EXPECT_GT(s.checkpoints, 0u);
  EXPECT_EQ(s.sdc_detected, 0u);
  EXPECT_EQ(s.hard_failures, 0u);
  // Replicas must agree bit-for-bit at the end of a failure-free run.
  EXPECT_EQ(replica_digest(runtime, 0), replica_digest(runtime, 1));
}

TEST(IntegrationSmoke, InjectedSdcIsDetectedAndRepaired) {
  apps::Jacobi3DConfig j = small_jacobi();
  AcrConfig acr_cfg;
  acr_cfg.checkpoint_interval = 0.002;
  acr_cfg.heartbeat_period = 0.001;
  acr_cfg.heartbeat_timeout = 0.005;
  AcrRuntime runtime(acr_cfg, small_cluster(j));
  runtime.set_task_factory(j.factory());
  runtime.setup();
  // Corrupt an interior solution value in replica 0, node 1, slot 0 — data
  // that is checkpointed and propagates, so detection is guaranteed.
  runtime.engine().schedule_at(0.004, [&runtime]() {
    auto& task = static_cast<apps::Jacobi3DTask&>(
        runtime.cluster().node_at(0, 1).task(0));
    task.value_at(1, 1, 1) += 1.0;
    runtime.cluster().trace().record(runtime.engine().now(),
                                     rt::TraceKind::SdcInjected, 0, 1);
  });
  RunSummary s = runtime.run(1e4);
  EXPECT_TRUE(s.complete);
  EXPECT_GE(s.sdc_detected, 1u);
  EXPECT_EQ(replica_digest(runtime, 0), replica_digest(runtime, 1));
}

TEST(IntegrationSmoke, HardFailureIsRecovered) {
  apps::Jacobi3DConfig j = small_jacobi();
  AcrConfig acr_cfg;
  acr_cfg.checkpoint_interval = 0.002;
  acr_cfg.heartbeat_period = 0.001;
  acr_cfg.heartbeat_timeout = 0.005;
  acr_cfg.scheme = ResilienceScheme::Strong;
  AcrRuntime runtime(acr_cfg, small_cluster(j));
  runtime.set_task_factory(j.factory());
  runtime.setup();
  runtime.engine().schedule_at(0.006, [&runtime]() {
    runtime.cluster().trace().record(runtime.engine().now(),
                                     rt::TraceKind::HardFailureInjected, 1, 2);
    runtime.cluster().kill_role(1, 2);
  });
  RunSummary s = runtime.run(1e4);
  EXPECT_TRUE(s.complete);
  EXPECT_EQ(s.hard_failures, 1u);
  EXPECT_EQ(s.recoveries, 1u);
  EXPECT_EQ(replica_digest(runtime, 0), replica_digest(runtime, 1));
}

/// Golden-run equivalence: with failures injected and recovered, the final
/// application state matches a failure-free reference run bit-for-bit.
TEST(IntegrationSmoke, RecoveredRunMatchesReference) {
  apps::Jacobi3DConfig j = small_jacobi();
  std::uint64_t reference = 0;
  {
    AcrConfig acr_cfg;
    acr_cfg.checkpoint_interval = 0.002;
  acr_cfg.heartbeat_period = 0.001;
  acr_cfg.heartbeat_timeout = 0.005;
    AcrRuntime runtime(acr_cfg, small_cluster(j));
    runtime.set_task_factory(j.factory());
    runtime.setup();
    RunSummary s = runtime.run(1e4);
    ASSERT_TRUE(s.complete);
    reference = replica_digest(runtime, 0);
  }
  {
    AcrConfig acr_cfg;
    acr_cfg.checkpoint_interval = 0.002;
  acr_cfg.heartbeat_period = 0.001;
  acr_cfg.heartbeat_timeout = 0.005;
    AcrRuntime runtime(acr_cfg, small_cluster(j));
    runtime.set_task_factory(j.factory());
    runtime.setup();
    runtime.engine().schedule_at(0.005, [&runtime]() {
      runtime.cluster().trace().record(
          runtime.engine().now(), rt::TraceKind::HardFailureInjected, 0, 3);
      runtime.cluster().kill_role(0, 3);
    });
    runtime.engine().schedule_at(0.009, [&runtime]() {
      auto& task = static_cast<apps::Jacobi3DTask&>(
          runtime.cluster().node_at(1, 0).task(1));
      task.value_at(2, 2, 2) -= 0.5;
      runtime.cluster().trace().record(runtime.engine().now(),
                                       rt::TraceKind::SdcInjected, 1, 0);
    });
    RunSummary s = runtime.run(1e4);
    ASSERT_TRUE(s.complete);
    EXPECT_EQ(replica_digest(runtime, 0), reference);
    EXPECT_EQ(replica_digest(runtime, 1), reference);
  }
}

}  // namespace
}  // namespace acr
