// GF(256) kernel and Reed–Solomon layout-algebra tests.
//
// The field layer is pinned against an independent bit-serial reference
// (Russian-peasant multiplication over 0x11D) — exhaustively for the
// scalar ops, by fuzz for the row kernel over unaligned sizes and tails,
// and portable-vs-SSSE3 when the hardware kernel is available. The
// rs_layout algebra (chunk routing bijection, parity slot/holder duality,
// Cauchy coefficient invertibility) is checked for every (n, m), and an
// in-memory encode → erase-up-to-m → Gaussian-decode round trip proves
// the multi-loss property the RsScheme relies on, without any runtime.
//
// Suites are named Gf256* so CI's TSan engine-soak job can pick them up
// with --gtest_filter='Engine*:Gf256*'.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <set>
#include <span>
#include <vector>

#include "checksum/gf256.h"
#include "ckpt/rs.h"
#include "common/rng.h"
#include "parallel/pool.h"

namespace acr {
namespace {

namespace gf = checksum::gf256;

/// Independent reference product: bit-serial Russian-peasant multiply
/// reducing by the primitive polynomial 0x11D. Shares nothing with the
/// log/exp-table implementation under test.
std::uint8_t ref_mul(std::uint8_t a, std::uint8_t b) {
  unsigned acc = 0;
  unsigned aa = a;
  for (unsigned bb = b; bb != 0; bb >>= 1) {
    if (bb & 1u) acc ^= aa;
    aa <<= 1;
    if (aa & 0x100u) aa ^= 0x11Du;
  }
  return static_cast<std::uint8_t>(acc);
}

/// Pin the global kernel pool's worker count for one test scope.
struct ScopedThreads {
  explicit ScopedThreads(int n) { parallel::set_global_threads(n); }
  ~ScopedThreads() { parallel::set_global_threads(0); }
};

// ---------------------------------------------------------------------------
// Scalar field ops.
// ---------------------------------------------------------------------------

TEST(Gf256Scalar, MulMatchesBitSerialReferenceExhaustively) {
  for (int a = 0; a < 256; ++a)
    for (int b = 0; b < 256; ++b)
      ASSERT_EQ(gf::mul(static_cast<std::uint8_t>(a),
                        static_cast<std::uint8_t>(b)),
                ref_mul(static_cast<std::uint8_t>(a),
                        static_cast<std::uint8_t>(b)))
          << a << " * " << b;
}

TEST(Gf256Scalar, DivInvertsMulExhaustively) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 1; b < 256; ++b) {
      std::uint8_t p = gf::mul(static_cast<std::uint8_t>(a),
                               static_cast<std::uint8_t>(b));
      ASSERT_EQ(gf::div(p, static_cast<std::uint8_t>(b)), a)
          << "(" << a << "*" << b << ")/" << b;
    }
  }
}

TEST(Gf256Scalar, InverseMultipliesToOne) {
  for (int a = 1; a < 256; ++a) {
    std::uint8_t ia = gf::inv(static_cast<std::uint8_t>(a));
    EXPECT_NE(ia, 0);
    EXPECT_EQ(gf::mul(static_cast<std::uint8_t>(a), ia), 1) << "a=" << a;
  }
}

TEST(Gf256Scalar, LogExpRoundTripAndDoubledTable) {
  for (int a = 1; a < 256; ++a)
    EXPECT_EQ(gf::exp(gf::log(static_cast<std::uint8_t>(a))), a);
  // The doubled table lets mul index exp[log a + log b] without a mod —
  // exp must have period 255 over its whole [0, 510) domain.
  for (unsigned e = 0; e < 255; ++e)
    EXPECT_EQ(gf::exp(e), gf::exp(e + 255)) << "e=" << e;
  EXPECT_EQ(gf::exp(0), 1);
  EXPECT_EQ(gf::exp(1), 2);  // generator
}

// ---------------------------------------------------------------------------
// Row kernel.
// ---------------------------------------------------------------------------

/// Scalar model of dst[i] ^= coeff * src[i], via the reference multiply.
void ref_muladd(std::byte* dst, const std::byte* src, std::uint8_t coeff,
                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    dst[i] ^= std::byte{ref_mul(coeff, std::to_integer<std::uint8_t>(src[i]))};
}

std::vector<std::byte> random_bytes(Pcg32& rng, std::size_t n) {
  std::vector<std::byte> v(n);
  for (auto& b : v) b = std::byte(rng.next() & 0xFF);
  return v;
}

TEST(Gf256Row, MuladdRowMatchesScalarReferenceOverUnalignedSizes) {
  Pcg32 rng(2024, 0x6F);
  // Sizes straddling every tail case of the 16-byte SSSE3 stride and the
  // word-at-a-time portable loop.
  const std::size_t sizes[] = {0,  1,  2,  3,   7,   8,   9,    15,  16,
                               17, 31, 33, 100, 255, 256, 1000, 4109};
  for (std::size_t n : sizes) {
    for (int trial = 0; trial < 8; ++trial) {
      std::uint8_t coeff = static_cast<std::uint8_t>(rng.next() & 0xFF);
      std::vector<std::byte> src = random_bytes(rng, n);
      std::vector<std::byte> got = random_bytes(rng, n);
      std::vector<std::byte> want = got;
      checksum::kernels::gf256_muladd_row(got.data(), src.data(), coeff, n);
      ref_muladd(want.data(), src.data(), coeff, n);
      ASSERT_EQ(got, want) << "n=" << n << " coeff=" << int(coeff);
    }
  }
}

TEST(Gf256Row, MuladdRowHandlesMisalignedPointers) {
  Pcg32 rng(7, 0x6F);
  for (std::size_t off = 0; off < 4; ++off) {
    std::vector<std::byte> src = random_bytes(rng, 300 + off);
    std::vector<std::byte> got = random_bytes(rng, 300 + off);
    std::vector<std::byte> want = got;
    std::size_t n = 300 - off;
    checksum::kernels::gf256_muladd_row(got.data() + off, src.data() + off,
                                        0xA7, n);
    ref_muladd(want.data() + off, src.data() + off, 0xA7, n);
    ASSERT_EQ(got, want) << "offset " << off;
  }
}

TEST(Gf256Row, CoeffZeroIsNoOpAndCoeffOneIsXor) {
  Pcg32 rng(11, 0x6F);
  std::vector<std::byte> src = random_bytes(rng, 257);
  std::vector<std::byte> acc = random_bytes(rng, 257);
  std::vector<std::byte> orig = acc;
  checksum::kernels::gf256_muladd_row(acc.data(), src.data(), 0, acc.size());
  EXPECT_EQ(acc, orig);
  checksum::kernels::gf256_muladd_row(acc.data(), src.data(), 1, acc.size());
  for (std::size_t i = 0; i < acc.size(); ++i)
    ASSERT_EQ(acc[i], orig[i] ^ src[i]) << i;
}

TEST(Gf256Row, PortableAndHardwareKernelsAgree) {
  if (!checksum::gf256_hw_available())
    GTEST_SKIP() << "no SSSE3 kernel in this build/CPU";
  Pcg32 rng(99, 0x6F);
  const std::size_t sizes[] = {1, 15, 16, 17, 64, 333, 4096, 4109};
  for (std::size_t n : sizes) {
    for (int trial = 0; trial < 4; ++trial) {
      std::uint8_t coeff = static_cast<std::uint8_t>(rng.next() & 0xFF);
      std::vector<std::byte> src = random_bytes(rng, n);
      std::vector<std::byte> a = random_bytes(rng, n);
      std::vector<std::byte> b = a;
      checksum::kernels::gf256_muladd_row_portable(a.data(), src.data(), coeff,
                                                   n);
      checksum::kernels::gf256_muladd_row_hw(b.data(), src.data(), coeff, n);
      ASSERT_EQ(a, b) << "n=" << n << " coeff=" << int(coeff);
    }
  }
}

TEST(Gf256Row, ChunkedFoldIsThreadCountInvariant) {
  Pcg32 rng(4242, 0x6F);
  // Spans several kDigestChunk grid cells plus a ragged tail, and an acc
  // shorter than add to exercise the zero-extension.
  std::vector<std::byte> add = random_bytes(rng, 3 * 256 * 1024 + 777);
  std::vector<std::byte> acc0 = random_bytes(rng, 256 * 1024 + 13);

  std::vector<std::byte> serial = acc0;
  checksum::gf256_muladd_chunked(serial, add, 0x53);
  ASSERT_EQ(serial.size(), add.size());

  std::vector<std::byte> want(add.size());
  std::copy(acc0.begin(), acc0.end(), want.begin());
  ref_muladd(want.data(), add.data(), 0x53, add.size());
  EXPECT_EQ(serial, want);

  for (int threads : {1, 3, 7}) {
    ScopedThreads scope(threads);
    std::vector<std::byte> got = acc0;
    checksum::gf256_muladd_chunked(got, add, 0x53);
    EXPECT_EQ(got, serial) << threads << " threads";
  }
}

// ---------------------------------------------------------------------------
// Stripe-layout algebra.
// ---------------------------------------------------------------------------

namespace rsl = ckpt::rs_layout;

TEST(Gf256Layout, ChunkRoutingIsABijectionPerMember) {
  for (int n = 2; n <= 9; ++n) {
    for (int m = 1; m < n; ++m) {
      int k = rsl::chunk_count(n, m);
      ASSERT_EQ(k, n - m);
      for (int r = 0; r < n; ++r) {
        std::set<int> stripes;
        for (int t = 0; t < k; ++t) {
          int s = rsl::data_stripe(n, r, t);
          ASSERT_TRUE(rsl::is_data_member(n, m, r, s))
              << "n=" << n << " m=" << m << " r=" << r << " t=" << t;
          ASSERT_EQ(rsl::chunk_index(n, r, s), t);
          stripes.insert(s);
        }
        // k distinct stripes; the other m stripes hold r's parity slots.
        ASSERT_EQ(static_cast<int>(stripes.size()), k);
        int parity_slots = 0;
        for (int s = 0; s < n; ++s) {
          if (stripes.count(s)) continue;
          int q = rsl::parity_slot(n, m, r, s);
          ASSERT_GE(q, 0) << "n=" << n << " m=" << m << " r=" << r
                          << " s=" << s;
          ASSERT_EQ(rsl::parity_holder(n, s, q), r);
          ++parity_slots;
        }
        ASSERT_EQ(parity_slots, m);
      }
    }
  }
}

TEST(Gf256Layout, EveryStripeHasExactlyMParityHoldersAndKDataMembers) {
  for (int n = 2; n <= 9; ++n) {
    for (int m = 1; m < n; ++m) {
      for (int s = 0; s < n; ++s) {
        int data = 0, parity = 0;
        for (int r = 0; r < n; ++r) {
          bool is_data = rsl::is_data_member(n, m, r, s);
          int q = rsl::parity_slot(n, m, r, s);
          ASSERT_NE(is_data, q >= 0);
          is_data ? ++data : ++parity;
        }
        ASSERT_EQ(data, n - m);
        ASSERT_EQ(parity, m);
        for (int q = 0; q < m; ++q)
          ASSERT_EQ(rsl::parity_slot(n, m, rsl::parity_holder(n, s, q), s), q);
      }
    }
  }
}

TEST(Gf256Layout, SingleParityCoefficientsAreInvertibleScalars) {
  // m = 1 keeps the XOR scheme's rotated-stripe LAYOUT but weights rank r
  // by the Cauchy scalar 1/(1+r) — any single coefficient must be a
  // nonzero (hence invertible) field element so one equation always
  // solves one unknown.
  for (int r = 0; r < 16; ++r) {
    std::uint8_t c = rsl::coeff(1, 0, r);
    ASSERT_NE(c, 0) << "r=" << r;
    EXPECT_EQ(gf::mul(c, static_cast<std::uint8_t>(1 + r)), 1)
        << "coeff(1,0," << r << ") != 1/(1+r)";
  }
}

TEST(Gf256Layout, CauchyCoefficientsAreNonZeroAndPairwiseSolvable) {
  // Nonzero entries (any single loss solvable from any one equation) and
  // invertible 2x2 minors (any double loss solvable from any two): the
  // base cases of the general Cauchy-minor argument the round-trip test
  // exercises end to end.
  const int m = 4, cols = 12;
  for (int q = 0; q < m; ++q)
    for (int r = 0; r < cols; ++r) EXPECT_NE(rsl::coeff(m, q, r), 0);
  for (int q1 = 0; q1 < m; ++q1)
    for (int q2 = q1 + 1; q2 < m; ++q2)
      for (int r1 = 0; r1 < cols; ++r1)
        for (int r2 = r1 + 1; r2 < cols; ++r2) {
          std::uint8_t det =
              gf::mul(rsl::coeff(m, q1, r1), rsl::coeff(m, q2, r2)) ^
              gf::mul(rsl::coeff(m, q1, r2), rsl::coeff(m, q2, r1));
          ASSERT_NE(det, 0) << "singular 2x2 minor at q=(" << q1 << "," << q2
                            << ") r=(" << r1 << "," << r2 << ")";
        }
}

// ---------------------------------------------------------------------------
// Encode → erase up to m → decode round trip (pure algebra, no runtime).
// ---------------------------------------------------------------------------

/// In-memory model of one parity group: member images (possibly ragged
/// sizes), the full parity grid, and a per-stripe Gaussian decoder — the
/// same algebra RsScheme runs, restated independently for the test.
struct ModelGroup {
  int n, m, k;
  std::vector<std::vector<std::byte>> images;
  // parity[s][q]: stripe s, slot q (held by member (s + q) % n).
  std::vector<std::vector<std::vector<std::byte>>> parity;

  static std::size_t chunk_len(std::size_t size, int k) {
    return (size + static_cast<std::size_t>(k) - 1) /
           static_cast<std::size_t>(k);
  }

  /// Member r's chunk t as a span (may be short or empty at the tail).
  std::span<const std::byte> chunk(int r, int t) const {
    std::size_t len = chunk_len(images[r].size(), k);
    std::size_t begin = std::min(images[r].size(), t * len);
    std::size_t end = std::min(images[r].size(), (t + 1) * len);
    return std::span<const std::byte>(images[r]).subspan(begin, end - begin);
  }

  void encode() {
    parity.assign(n, std::vector<std::vector<std::byte>>(m));
    for (int s = 0; s < n; ++s) {
      for (int q = 0; q < m; ++q) {
        std::vector<std::byte>& p = parity[s][q];
        for (int r = 0; r < n; ++r) {
          if (!rsl::is_data_member(n, m, r, s)) continue;
          std::span<const std::byte> c = chunk(r, rsl::chunk_index(n, r, s));
          if (p.size() < c.size()) p.resize(c.size());
          checksum::kernels::gf256_muladd_row(p.data(), c.data(),
                                              rsl::coeff(m, q, r), c.size());
        }
      }
    }
  }

  /// Rebuild every dead member's image from the survivors' chunks and
  /// parity blocks, via a per-stripe Gauss–Jordan solve. Data and parity
  /// held by dead members are off limits.
  std::vector<std::vector<std::byte>> decode(const std::set<int>& dead) const {
    std::vector<std::vector<std::byte>> out(n);
    for (int d : dead) out[d].assign(images[d].size(), std::byte{0});
    for (int s = 0; s < n; ++s) {
      std::vector<int> unknowns;  // dead data members of this stripe
      for (int r = 0; r < n; ++r)
        if (rsl::is_data_member(n, m, r, s) && dead.count(r))
          unknowns.push_back(r);
      if (unknowns.empty()) continue;
      std::vector<int> eqs;  // parity slots whose holder survived
      for (int q = 0; q < m; ++q)
        if (!dead.count(rsl::parity_holder(n, s, q))) eqs.push_back(q);
      EXPECT_GE(eqs.size(), unknowns.size()) << "stripe " << s;
      std::size_t u = unknowns.size();
      eqs.resize(u);
      // Syndromes: parity minus the surviving data members' contributions.
      std::size_t width = 0;
      for (int q : eqs) width = std::max(width, parity[s][q].size());
      std::vector<std::vector<std::byte>> rhs(u);
      for (std::size_t i = 0; i < u; ++i) {
        rhs[i] = parity[s][eqs[i]];
        rhs[i].resize(width, std::byte{0});
        for (int r = 0; r < n; ++r) {
          if (!rsl::is_data_member(n, m, r, s) || dead.count(r)) continue;
          std::span<const std::byte> c = chunk(r, rsl::chunk_index(n, r, s));
          checksum::kernels::gf256_muladd_row(rhs[i].data(), c.data(),
                                              rsl::coeff(m, eqs[i], r),
                                              c.size());
        }
      }
      // Gauss–Jordan on the u x u Cauchy minor.
      std::vector<std::vector<std::uint8_t>> a(u, std::vector<std::uint8_t>(u));
      for (std::size_t i = 0; i < u; ++i)
        for (std::size_t j = 0; j < u; ++j)
          a[i][j] = rsl::coeff(m, eqs[i], unknowns[j]);
      for (std::size_t col = 0; col < u; ++col) {
        std::size_t piv = col;
        while (piv < u && a[piv][col] == 0) ++piv;
        EXPECT_LT(piv, u) << "singular Cauchy minor";
        if (piv >= u) return out;
        std::swap(a[piv], a[col]);
        std::swap(rhs[piv], rhs[col]);
        std::uint8_t ip = gf::inv(a[col][col]);
        for (std::size_t j = 0; j < u; ++j) a[col][j] = gf::mul(a[col][j], ip);
        for (std::size_t i = 0; i < rhs[col].size(); ++i)
          rhs[col][i] = std::byte{
              gf::mul(ip, std::to_integer<std::uint8_t>(rhs[col][i]))};
        for (std::size_t row = 0; row < u; ++row) {
          if (row == col || a[row][col] == 0) continue;
          std::uint8_t f = a[row][col];
          for (std::size_t j = 0; j < u; ++j)
            a[row][j] ^= gf::mul(f, a[col][j]);
          checksum::kernels::gf256_muladd_row(rhs[row].data(), rhs[col].data(),
                                              f, rhs[col].size());
        }
      }
      // Write each solved chunk into its member's image slot.
      for (std::size_t j = 0; j < u; ++j) {
        int d = unknowns[j];
        int t = rsl::chunk_index(n, d, s);
        std::size_t len = chunk_len(images[d].size(), k);
        std::size_t begin = std::min(images[d].size(), t * len);
        std::size_t end = std::min(images[d].size(), (t + 1) * len);
        for (std::size_t i = begin; i < end; ++i)
          out[d][i] = rhs[j][i - begin];
      }
    }
    return out;
  }
};

TEST(Gf256RoundTrip, AnyMLossesDecodeBitwiseAcrossGroupShapes) {
  Pcg32 rng(31337, 0x6F);
  for (int n = 3; n <= 6; ++n) {
    for (int m = 1; m < n; ++m) {
      ModelGroup g;
      g.n = n;
      g.m = m;
      g.k = rsl::chunk_count(n, m);
      g.images.resize(n);
      for (int r = 0; r < n; ++r)
        g.images[r] = random_bytes(rng, 64 * static_cast<std::size_t>(g.k));
      g.encode();
      // Every dead set of size exactly m (the worst case; smaller sets are
      // sub-problems of some size-m set).
      std::vector<int> pick(m);
      std::function<void(int, int)> enumerate = [&](int start, int depth) {
        if (depth == m) {
          std::set<int> dead(pick.begin(), pick.end());
          auto rebuilt = g.decode(dead);
          for (int d : dead)
            ASSERT_EQ(rebuilt[d], g.images[d])
                << "n=" << n << " m=" << m << " dead rank " << d;
          return;
        }
        for (int r = start; r < n; ++r) {
          pick[depth] = r;
          enumerate(r + 1, depth + 1);
        }
      };
      enumerate(0, 0);
    }
  }
}

TEST(Gf256RoundTrip, RaggedAndEmptyImagesDecodeBitwise) {
  // Member sizes that don't divide by k, differ across the group, and
  // include an empty image: the zero-extension conventions must hold.
  Pcg32 rng(555, 0x6F);
  ModelGroup g;
  g.n = 5;
  g.m = 2;
  g.k = 3;
  const std::size_t sizes[] = {190, 0, 64, 191, 3};
  g.images.resize(g.n);
  for (int r = 0; r < g.n; ++r) g.images[r] = random_bytes(rng, sizes[r]);
  g.encode();
  for (int d1 = 0; d1 < g.n; ++d1) {
    for (int d2 = d1 + 1; d2 < g.n; ++d2) {
      std::set<int> dead{d1, d2};
      auto rebuilt = g.decode(dead);
      ASSERT_EQ(rebuilt[d1], g.images[d1]) << d1 << "," << d2;
      ASSERT_EQ(rebuilt[d2], g.images[d2]) << d1 << "," << d2;
    }
  }
}

TEST(Gf256RoundTrip, FuzzRandomErasuresLargerGroups) {
  Pcg32 rng(777, 0x6F);
  for (int trial = 0; trial < 40; ++trial) {
    ModelGroup g;
    g.n = 4 + static_cast<int>(rng.bounded(6));  // 4..9
    g.m = 1 + static_cast<int>(rng.bounded(
                  static_cast<std::uint32_t>(g.n - 1)));  // 1..n-1
    g.k = rsl::chunk_count(g.n, g.m);
    g.images.resize(g.n);
    for (int r = 0; r < g.n; ++r)
      g.images[r] = random_bytes(rng, 1 + rng.bounded(2000));
    g.encode();
    int f = 1 + static_cast<int>(
                    rng.bounded(static_cast<std::uint32_t>(g.m)));  // 1..m
    std::set<int> dead;
    while (static_cast<int>(dead.size()) < f)
      dead.insert(static_cast<int>(
          rng.bounded(static_cast<std::uint32_t>(g.n))));
    auto rebuilt = g.decode(dead);
    for (int d : dead)
      ASSERT_EQ(rebuilt[d], g.images[d])
          << "trial " << trial << " n=" << g.n << " m=" << g.m << " f=" << f;
  }
}

}  // namespace
}  // namespace acr
